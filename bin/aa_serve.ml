(* aa_serve — the long-running allocation daemon: an Online placer
   behind a line-oriented request/response protocol, on stdin/stdout
   and/or a socket, with optional write-ahead journaling, crash
   recovery, engine sharding and group commit.

   A stdin session is one request per line, one response line per
   request (blank and #-comment lines get none), until EOF:

     $ printf 'ADMIT power 4 0.5\nQUERY 0\nSTATS\n' | aa_serve -m 2 -C 10

   With --listen the same protocol is served to concurrent socket
   clients (framed or raw lines, see doc/service-protocol.md) while
   stdin remains a degenerate extra connection — and closing stdin
   remains the way to stop the daemon. --shards N partitions servers
   and threads across N engines, each with its own journal
   (<path>.shardK) and worker domain. *)

open Cmdliner
open Aa_numerics
open Aa_service

let fail fmt =
  Printf.ksprintf
    (fun m ->
      Printf.eprintf "aa_serve: %s\n" m;
      exit 1)
    fmt

let check_flags engine servers capacity =
  (match servers with
  | Some m when m <> Engine.servers engine ->
      fail "--servers %d disagrees with the journal header (%d)" m
        (Engine.servers engine)
  | Some _ | None -> ());
  match capacity with
  | Some c when Util.fne_rel ~rel:1e-9 c (Engine.capacity engine) ->
      fail "--capacity %g disagrees with the journal header (%g)" c
        (Engine.capacity engine)
  | Some _ | None -> ()

(* Fault schedules come from --faults and the AA_FAULTS environment
   variable (comma-joined, CLI last so it wins on a same-name clash);
   see doc/fault-injection.md for the spec grammar. *)
let arm_faults spec =
  let env = Sys.getenv_opt "AA_FAULTS" in
  let joined =
    match (env, spec) with
    | None, None -> None
    | Some s, None | None, Some s -> Some s
    | Some e, Some s -> Some (e ^ "," ^ s)
  in
  match joined with
  | None -> ()
  | Some s -> (
      match Aa_fault.Failpoint.arm_spec s with
      | Ok () -> ()
      | Error e -> fail "--faults: %s" e)

let crash name =
  Printf.eprintf "aa_serve: injected crash at failpoint %s\n%!" name;
  exit 70

let string_of_sockaddr = function
  | Unix.ADDR_UNIX p -> "unix:" ^ p
  | Unix.ADDR_INET (ip, port) ->
      Printf.sprintf "%s:%d" (Unix.string_of_inet_addr ip) port

(* The sharded/socket daemon. Engines are built one per shard — servers
   split in contiguous blocks, journals at <path>.shardK (the bare path
   for one shard, so --shards 1 reads and writes exactly the same
   journal as the classic loop) — then a Shard dispatcher serves stdin
   and, with --listen, every socket client concurrently. *)
let serve_sharded ~servers ~capacity ~journal ~replay ~fsync ~clock ~listen ~shards
    ~window ~access_log ~coarsen_eps ~policy =
  let alog =
    match access_log with
    | None -> None
    | Some path -> (
        match Access_log.create ~path with
        | Ok al -> Some al
        | Error e -> fail "--access-log %s: %s" path e)
  in
  let shard_path path k =
    if shards = 1 then path else Printf.sprintf "%s.shard%d" path k
  in
  let counts m =
    try Shard.server_counts ~servers:m ~shards
    with Invalid_argument e -> fail "%s" e
  in
  let engines =
    match (journal, replay) with
    | None, true -> fail "--replay requires --journal"
    | None, false ->
        let counts = counts (Option.value servers ~default:8) in
        let capacity = Option.value capacity ~default:1000.0 in
        Array.init shards (fun k ->
            Engine.create ~clock ~coarsen_eps ~policy ~servers:counts.(k) ~capacity ())
    | Some path, true ->
        Array.init shards (fun k ->
            match
              Engine.of_journal ~clock ~fsync ~coarsen_eps ~policy
                ~path:(shard_path path k) ()
            with
            | Ok e -> e
            | Error e -> fail "%s" e)
    | Some path, false ->
        let counts = counts (Option.value servers ~default:8) in
        let capacity = Option.value capacity ~default:1000.0 in
        Array.init shards (fun k ->
            match
              Journal.create ~fsync ~path:(shard_path path k) ~servers:counts.(k)
                ~capacity ()
            with
            | Ok j ->
                Engine.create ~clock ~journal:j ~coarsen_eps ~policy
                  ~servers:counts.(k) ~capacity ()
            | Error e -> fail "%s" e)
  in
  if replay then begin
    (match servers with
    | Some m ->
        let total = Array.fold_left (fun a e -> a + Engine.servers e) 0 engines in
        if m <> total then
          fail "--servers %d disagrees with the journal headers (total %d)" m total
    | None -> ());
    match capacity with
    | Some c when Util.fne_rel ~rel:1e-9 c (Engine.capacity engines.(0)) ->
        fail "--capacity %g disagrees with the journal header (%g)" c
          (Engine.capacity engines.(0))
    | Some _ | None -> ()
  end;
  let shard = Shard.create ~window_s:window engines in
  Printf.eprintf
    "aa_serve: %d server(s), capacity %g, %d shard(s)%s, %d thread(s) active\n%!"
    (Shard.servers shard) (Shard.capacity shard) shards
    (match journal with
    | None -> ""
    | Some p -> Printf.sprintf ", journal %s%s" p (if shards = 1 then "" else ".shardK"))
    (Array.fold_left (fun a e -> a + Engine.n_active e) 0 engines);
  let listener =
    match listen with
    | None -> None
    | Some addrstr -> (
        match Aa_net.Listener.parse_addr addrstr with
        | Error e -> fail "--listen: %s" e
        | Ok addr -> (
            match Aa_net.Listener.serve ~on_crash:crash ?access_log:alog ~addr shard with
            | Error e -> fail "--listen %s: %s" addrstr e
            | Ok l ->
                Printf.eprintf "aa_serve: listening on %s\n%!"
                  (string_of_sockaddr (Aa_net.Listener.sockaddr l));
                Some l))
  in
  (* stdin is connection 0: post (not handle_line) so the ticket keeps
     its request context and this loop can finish/log it like the
     listener's writer thread does for socket clients *)
  let finish tk ~resp ~bytes =
    match Shard.rctx tk with
    | None -> ()
    | Some c -> (
        let outcome =
          match resp with
          | Some (Protocol.Err { code; _ }) -> "err:" ^ Protocol.code_name code
          | Some _ -> "ok"
          | None -> "crashed"
        in
        ignore (Aa_obs.Rctx.finish c ~outcome);
        match alog with Some al -> Access_log.log al c ~outcome ~bytes | None -> ())
  in
  let rec loop () =
    match In_channel.input_line In_channel.stdin with
    | None -> ()
    | Some line ->
        (match Shard.post_line ~conn:0 shard line with
        | `Blank -> ()
        | `Ticket tk -> (
            match Shard.await shard tk with
            | Shard.Reply resp ->
                let text = Protocol.print_response resp in
                print_endline text;
                flush stdout;
                finish tk ~resp:(Some resp) ~bytes:(String.length text + 1)
            | Shard.Crashed name ->
                finish tk ~resp:None ~bytes:0;
                crash name)
        | `Immediate (Shard.Reply resp) ->
            print_endline (Protocol.print_response resp);
            flush stdout
        | `Immediate (Shard.Crashed name) -> crash name);
        loop ()
  in
  loop ();
  (match Shard.crashed shard with Some name -> crash name | None -> ());
  (match listener with Some l -> Aa_net.Listener.stop l | None -> ());
  Shard.shutdown shard;
  match alog with Some al -> Access_log.close al | None -> ()

let serve servers capacity journal replay fsync faults trace listen shards window
    access_log slow_ms coarsen rebalance_policy drift_frac =
  if trace then Aa_obs.Control.set_enabled true;
  (* request contexts ride along with any of the telemetry surfaces *)
  if trace || access_log <> None || slow_ms <> None then Aa_obs.Rctx.set_enabled true;
  Option.iter Aa_obs.Rctx.set_slow_ms slow_ms;
  arm_faults faults;
  if shards < 1 then fail "--shards must be >= 1";
  if window < 0.0 then fail "--group-commit-window must be >= 0";
  let coarsen_eps = Option.value coarsen ~default:0.0 in
  if coarsen_eps < 0.0 || not (Float.is_finite coarsen_eps) then
    fail "--coarsen must be a finite non-negative eps";
  if not (drift_frac >= 0.0 && drift_frac <= 1.0) then
    fail "--drift-frac must be in [0, 1]";
  let policy =
    match rebalance_policy with
    | "incremental" -> Aa_core.Online.Incremental
    | "full" -> Aa_core.Online.Full
    | "auto" -> Aa_core.Online.Auto { frac = drift_frac }
    | s -> fail "--rebalance-policy: unknown policy %S (expected incremental|full|auto)" s
  in
  let fsync =
    match Journal.fsync_of_string fsync with
    | Ok p -> p
    | Error e -> fail "--fsync: %s" e
  in
  let clock = Aa_obs.Clock.now_s in
  (* telemetry needs tickets that carry request contexts, which only
     the sharded dispatch mints — route through it (n = 1 is
     wire-identical to the classic loop) *)
  if shards > 1 || listen <> None || access_log <> None || slow_ms <> None then
    serve_sharded ~servers ~capacity ~journal ~replay ~fsync ~clock ~listen ~shards
      ~window ~access_log ~coarsen_eps ~policy
  else
  let engine =
    match (journal, replay) with
    | None, true -> fail "--replay requires --journal"
    | None, false ->
        Engine.create ~clock ~coarsen_eps ~policy
          ~servers:(Option.value servers ~default:8)
          ~capacity:(Option.value capacity ~default:1000.0)
          ()
    | Some path, true -> (
        match Engine.of_journal ~clock ~fsync ~coarsen_eps ~policy ~path () with
        | Ok engine ->
            check_flags engine servers capacity;
            engine
        | Error e -> fail "%s" e)
    | Some path, false -> (
        let servers = Option.value servers ~default:8 in
        let capacity = Option.value capacity ~default:1000.0 in
        match Journal.create ~fsync ~path ~servers ~capacity () with
        | Ok j ->
            Engine.create ~clock ~journal:j ~coarsen_eps ~policy ~servers ~capacity ()
        | Error e -> fail "%s" e)
  in
  Printf.eprintf "aa_serve: %d server(s), capacity %g%s, %d thread(s) active\n%!"
    (Engine.servers engine) (Engine.capacity engine)
    (match Engine.journal engine with
    | None -> ""
    | Some j -> Printf.sprintf ", journal %s" (Journal.path j))
    (Engine.n_active engine);
  let rec loop () =
    match In_channel.input_line In_channel.stdin with
    | None -> ()
    | Some line ->
        (match Engine.handle_line engine line with
        | None -> ()
        | Some resp ->
            print_endline (Protocol.print_response resp);
            flush stdout);
        loop ()
  in
  (* An armed crash failpoint simulates a power cut: die without
     closing the journal (exit 70 = EX_SOFTWARE), so the next --replay
     exercises the real recovery path. *)
  (try loop ()
   with Aa_fault.Failpoint.Crash name ->
     Printf.eprintf "aa_serve: injected crash at failpoint %s\n%!" name;
     exit 70);
  match Engine.journal engine with None -> () | Some j -> Journal.close j

let main_cmd =
  let servers =
    Arg.(
      value
      & opt (some int) None
      & info [ "m"; "servers" ] ~docv:"M"
          ~doc:"Number of servers (default 8; with --replay the journal header wins).")
  in
  let capacity =
    Arg.(
      value
      & opt (some float) None
      & info [ "C"; "capacity" ] ~docv:"C"
          ~doc:"Resource per server (default 1000; with --replay the journal header wins).")
  in
  let journal =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"FILE"
          ~doc:
            "Write-ahead journal: every accepted mutation is appended to $(docv) \
             before it is applied; SNAPSHOT compacts the file. Without --replay \
             the file is created; an existing non-empty journal is refused \
             (pass --replay to recover it).")
  in
  let replay =
    Arg.(
      value & flag
      & info [ "replay" ]
          ~doc:
            "Recover state by replaying the journal before serving (the file must \
             exist); new mutations keep appending to it.")
  in
  let trace =
    Arg.(
      value & flag
      & info [ "trace" ]
          ~doc:
            "Enable span tracing and counters at startup, so the TRACE request \
             returns per-request phase spans instead of an empty array.")
  in
  let fsync =
    Arg.(
      value & opt string "always"
      & info [ "fsync" ] ~docv:"POLICY"
          ~doc:
            "Journal durability policy: $(b,always) (fsync every append), \
             $(b,interval) (fsync at most every 0.1 s — a crash can lose up to \
             that window of acknowledged mutations), or $(b,never) (flush to \
             the OS only).")
  in
  let faults =
    Arg.(
      value
      & opt (some string) None
      & info [ "faults" ] ~docv:"SPEC"
          ~doc:
            "Arm fault-injection schedules, e.g. \
             $(b,journal.append=nth:3,journal.sys=p:0.01:seed:42). Also read \
             from the AA_FAULTS environment variable; testing only. See \
             doc/fault-injection.md.")
  in
  let listen =
    Arg.(
      value
      & opt (some string) None
      & info [ "listen" ] ~docv:"ADDR"
          ~doc:
            "Serve concurrent socket clients on $(docv): $(b,HOST:PORT), \
             $(b,:PORT) (loopback; port 0 picks an ephemeral port, printed \
             to stderr) or $(b,unix:PATH). Requests are protocol lines, \
             optionally length-prefix framed (replies mirror the request's \
             framing). stdin/stdout keeps working as one more connection, \
             and closing stdin still stops the daemon.")
  in
  let shards =
    Arg.(
      value & opt int 1
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "Partition servers and threads across $(docv) engine shards, each \
             with its own journal ($(b,FILE.shardK)) and worker domain. \
             Requires at least one server per shard.")
  in
  let window =
    Arg.(
      value & opt float 0.0
      & info [ "group-commit-window" ] ~docv:"SECONDS"
          ~doc:
            "Let each shard worker wait $(docv) after waking so concurrent \
             mutations accumulate into one journal write + fsync (group \
             commit). 0 (default) batches only what is already queued — no \
             added latency, amortization only under load.")
  in
  let access_log =
    Arg.(
      value
      & opt (some string) None
      & info [ "access-log" ] ~docv:"FILE"
          ~doc:
            "Append one JSON line per acked request to $(docv): rid, kind, \
             shard, outcome, reply bytes, total and per-phase latencies \
             (validate/journal/apply) and group-commit wait. Written by the \
             acking thread, flushed per line; see doc/observability.md.")
  in
  let slow_ms =
    Arg.(
      value
      & opt (some float) None
      & info [ "slow-ms" ] ~docv:"MS"
          ~doc:
            "Capture any request slower than $(docv) milliseconds into a \
             bounded keep-list: the SLOW request returns it as JSON, TRACE \
             splices the kept spans into its export, and GET /tracez renders \
             it as text. 0 captures every request.")
  in
  let coarsen =
    Arg.(
      value
      & opt (some float) None
      & info [ "coarsen" ] ~docv:"EPS"
          ~doc:
            "Solve REBALANCE on an $(docv)-coarsened copy of the active \
             instance (certified: each utility drops by at most $(docv)). \
             STATS and /metrics then carry the guaranteed utility interval \
             [utility_lower, utility_upper] and the alpha_bound_gap gauge.")
  in
  let rebalance_policy =
    Arg.(
      value & opt string "incremental"
      & info [ "rebalance-policy" ] ~docv:"POLICY"
          ~doc:
            "Online maintenance strategy: $(b,incremental) (default — splice \
             piece orders between requests; bit-identical placements to \
             $(b,full) without its per-request allocator runs), $(b,full) \
             (re-run the water-filling allocator from scratch on every \
             candidate server), or $(b,auto) (incremental plus a certified \
             drift trigger: once the online utility decays below \
             --drift-frac of the certified bound, re-solve the active set \
             with Algorithm 2, migrating threads).")
  in
  let drift_frac =
    Arg.(
      value & opt float 0.5
      & info [ "drift-frac" ] ~docv:"FRAC"
          ~doc:
            "Re-solve trigger fraction for --rebalance-policy auto, in \
             [0, 1] (default 0.5): re-solve when the online utility U \
             falls below $(docv) * (U + drift_bound). 0 never re-solves; \
             1 re-solves on any certified loss.")
  in
  Cmd.v
    (Cmd.info "aa_serve" ~version:"1.0.0"
       ~doc:"stateful AA allocation daemon (stdin/stdout and socket request loop)")
    Term.(
      const serve $ servers $ capacity $ journal $ replay $ fsync $ faults
      $ trace $ listen $ shards $ window $ access_log $ slow_ms $ coarsen
      $ rebalance_policy $ drift_frac)

let () = exit (Cmd.eval main_cmd)
