(* aa_serve — the long-running allocation daemon: an Online placer
   behind a line-oriented request/response protocol on stdin/stdout,
   with optional write-ahead journaling and crash recovery.

   A session is one request per line, one response line per request
   (blank and #-comment lines get none), until EOF:

     $ printf 'ADMIT power 4 0.5\nQUERY 0\nSTATS\n' | aa_serve -m 2 -C 10

   See doc/service-protocol.md for the wire and journal grammars. *)

open Cmdliner
open Aa_numerics
open Aa_service

let fail fmt =
  Printf.ksprintf
    (fun m ->
      Printf.eprintf "aa_serve: %s\n" m;
      exit 1)
    fmt

let check_flags engine servers capacity =
  (match servers with
  | Some m when m <> Engine.servers engine ->
      fail "--servers %d disagrees with the journal header (%d)" m
        (Engine.servers engine)
  | Some _ | None -> ());
  match capacity with
  | Some c when Util.fne_rel ~rel:1e-9 c (Engine.capacity engine) ->
      fail "--capacity %g disagrees with the journal header (%g)" c
        (Engine.capacity engine)
  | Some _ | None -> ()

(* Fault schedules come from --faults and the AA_FAULTS environment
   variable (comma-joined, CLI last so it wins on a same-name clash);
   see doc/fault-injection.md for the spec grammar. *)
let arm_faults spec =
  let env = Sys.getenv_opt "AA_FAULTS" in
  let joined =
    match (env, spec) with
    | None, None -> None
    | Some s, None | None, Some s -> Some s
    | Some e, Some s -> Some (e ^ "," ^ s)
  in
  match joined with
  | None -> ()
  | Some s -> (
      match Aa_fault.Failpoint.arm_spec s with
      | Ok () -> ()
      | Error e -> fail "--faults: %s" e)

let serve servers capacity journal replay fsync faults trace =
  if trace then Aa_obs.Control.set_enabled true;
  arm_faults faults;
  let fsync =
    match Journal.fsync_of_string fsync with
    | Ok p -> p
    | Error e -> fail "--fsync: %s" e
  in
  let clock = Aa_obs.Clock.now_s in
  let engine =
    match (journal, replay) with
    | None, true -> fail "--replay requires --journal"
    | None, false ->
        Engine.create ~clock
          ~servers:(Option.value servers ~default:8)
          ~capacity:(Option.value capacity ~default:1000.0)
          ()
    | Some path, true -> (
        match Engine.of_journal ~clock ~fsync ~path () with
        | Ok engine ->
            check_flags engine servers capacity;
            engine
        | Error e -> fail "%s" e)
    | Some path, false -> (
        let servers = Option.value servers ~default:8 in
        let capacity = Option.value capacity ~default:1000.0 in
        match Journal.create ~fsync ~path ~servers ~capacity () with
        | Ok j -> Engine.create ~clock ~journal:j ~servers ~capacity ()
        | Error e -> fail "%s" e)
  in
  Printf.eprintf "aa_serve: %d server(s), capacity %g%s, %d thread(s) active\n%!"
    (Engine.servers engine) (Engine.capacity engine)
    (match Engine.journal engine with
    | None -> ""
    | Some j -> Printf.sprintf ", journal %s" (Journal.path j))
    (Engine.n_active engine);
  let rec loop () =
    match In_channel.input_line In_channel.stdin with
    | None -> ()
    | Some line ->
        (match Engine.handle_line engine line with
        | None -> ()
        | Some resp ->
            print_endline (Protocol.print_response resp);
            flush stdout);
        loop ()
  in
  (* An armed crash failpoint simulates a power cut: die without
     closing the journal (exit 70 = EX_SOFTWARE), so the next --replay
     exercises the real recovery path. *)
  (try loop ()
   with Aa_fault.Failpoint.Crash name ->
     Printf.eprintf "aa_serve: injected crash at failpoint %s\n%!" name;
     exit 70);
  match Engine.journal engine with None -> () | Some j -> Journal.close j

let main_cmd =
  let servers =
    Arg.(
      value
      & opt (some int) None
      & info [ "m"; "servers" ] ~docv:"M"
          ~doc:"Number of servers (default 8; with --replay the journal header wins).")
  in
  let capacity =
    Arg.(
      value
      & opt (some float) None
      & info [ "C"; "capacity" ] ~docv:"C"
          ~doc:"Resource per server (default 1000; with --replay the journal header wins).")
  in
  let journal =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"FILE"
          ~doc:
            "Write-ahead journal: every accepted mutation is appended to $(docv) \
             before it is applied; SNAPSHOT compacts the file. Without --replay \
             the file is created; an existing non-empty journal is refused \
             (pass --replay to recover it).")
  in
  let replay =
    Arg.(
      value & flag
      & info [ "replay" ]
          ~doc:
            "Recover state by replaying the journal before serving (the file must \
             exist); new mutations keep appending to it.")
  in
  let trace =
    Arg.(
      value & flag
      & info [ "trace" ]
          ~doc:
            "Enable span tracing and counters at startup, so the TRACE request \
             returns per-request phase spans instead of an empty array.")
  in
  let fsync =
    Arg.(
      value & opt string "always"
      & info [ "fsync" ] ~docv:"POLICY"
          ~doc:
            "Journal durability policy: $(b,always) (fsync every append), \
             $(b,interval) (fsync at most every 0.1 s — a crash can lose up to \
             that window of acknowledged mutations), or $(b,never) (flush to \
             the OS only).")
  in
  let faults =
    Arg.(
      value
      & opt (some string) None
      & info [ "faults" ] ~docv:"SPEC"
          ~doc:
            "Arm fault-injection schedules, e.g. \
             $(b,journal.append=nth:3,journal.sys=p:0.01:seed:42). Also read \
             from the AA_FAULTS environment variable; testing only. See \
             doc/fault-injection.md.")
  in
  Cmd.v
    (Cmd.info "aa_serve" ~version:"1.0.0"
       ~doc:"stateful AA allocation daemon (stdin/stdout request loop)")
    Term.(
      const serve $ servers $ capacity $ journal $ replay $ fsync $ faults
      $ trace)

let () = exit (Cmd.eval main_cmd)
