(* aa_serve — the long-running allocation daemon: an Online placer
   behind a line-oriented request/response protocol on stdin/stdout,
   with optional write-ahead journaling and crash recovery.

   A session is one request per line, one response line per request
   (blank and #-comment lines get none), until EOF:

     $ printf 'ADMIT power 4 0.5\nQUERY 0\nSTATS\n' | aa_serve -m 2 -C 10

   See doc/service-protocol.md for the wire and journal grammars. *)

open Cmdliner
open Aa_numerics
open Aa_service

let fail fmt =
  Printf.ksprintf
    (fun m ->
      Printf.eprintf "aa_serve: %s\n" m;
      exit 1)
    fmt

let check_flags engine servers capacity =
  (match servers with
  | Some m when m <> Engine.servers engine ->
      fail "--servers %d disagrees with the journal header (%d)" m
        (Engine.servers engine)
  | Some _ | None -> ());
  match capacity with
  | Some c when Util.fne ~eps:1e-9 c (Engine.capacity engine) ->
      fail "--capacity %g disagrees with the journal header (%g)" c
        (Engine.capacity engine)
  | Some _ | None -> ()

let serve servers capacity journal replay trace =
  if trace then Aa_obs.Control.set_enabled true;
  let clock = Aa_obs.Clock.now_s in
  let engine =
    match (journal, replay) with
    | None, true -> fail "--replay requires --journal"
    | None, false ->
        Engine.create ~clock
          ~servers:(Option.value servers ~default:8)
          ~capacity:(Option.value capacity ~default:1000.0)
          ()
    | Some path, true -> (
        match Engine.of_journal ~clock ~path () with
        | Ok engine ->
            check_flags engine servers capacity;
            engine
        | Error e -> fail "%s" e)
    | Some path, false -> (
        let servers = Option.value servers ~default:8 in
        let capacity = Option.value capacity ~default:1000.0 in
        match Journal.create ~path ~servers ~capacity with
        | Ok j -> Engine.create ~clock ~journal:j ~servers ~capacity ()
        | Error e -> fail "%s" e)
  in
  Printf.eprintf "aa_serve: %d server(s), capacity %g%s, %d thread(s) active\n%!"
    (Engine.servers engine) (Engine.capacity engine)
    (match Engine.journal engine with
    | None -> ""
    | Some j -> Printf.sprintf ", journal %s" (Journal.path j))
    (Engine.n_active engine);
  let rec loop () =
    match In_channel.input_line In_channel.stdin with
    | None -> ()
    | Some line ->
        (match Engine.handle_line engine line with
        | None -> ()
        | Some resp ->
            print_endline (Protocol.print_response resp);
            flush stdout);
        loop ()
  in
  loop ();
  match Engine.journal engine with None -> () | Some j -> Journal.close j

let main_cmd =
  let servers =
    Arg.(
      value
      & opt (some int) None
      & info [ "m"; "servers" ] ~docv:"M"
          ~doc:"Number of servers (default 8; with --replay the journal header wins).")
  in
  let capacity =
    Arg.(
      value
      & opt (some float) None
      & info [ "C"; "capacity" ] ~docv:"C"
          ~doc:"Resource per server (default 1000; with --replay the journal header wins).")
  in
  let journal =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"FILE"
          ~doc:
            "Write-ahead journal: every accepted mutation is appended to $(docv) \
             before it is applied; SNAPSHOT compacts the file. Without --replay \
             the file is created or truncated.")
  in
  let replay =
    Arg.(
      value & flag
      & info [ "replay" ]
          ~doc:
            "Recover state by replaying the journal before serving (the file must \
             exist); new mutations keep appending to it.")
  in
  let trace =
    Arg.(
      value & flag
      & info [ "trace" ]
          ~doc:
            "Enable span tracing and counters at startup, so the TRACE request \
             returns per-request phase spans instead of an empty array.")
  in
  Cmd.v
    (Cmd.info "aa_serve" ~version:"1.0.0"
       ~doc:"stateful AA allocation daemon (stdin/stdout request loop)")
    Term.(const serve $ servers $ capacity $ journal $ replay $ trace)

let () = exit (Cmd.eval main_cmd)
