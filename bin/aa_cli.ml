(* aa — command-line front end: generate random AA instances, solve them
   with the paper's algorithms or baselines, and rerun the paper's
   experiment sweeps. *)

open Cmdliner
open Aa_numerics
open Aa_core
open Aa_workload

let read_instance path =
  match Aa_io.Format_text.load_instance path with
  | Ok inst -> inst
  | Error e ->
      Printf.eprintf "error: %s\n" e;
      exit 1

let write_output out contents =
  match out with
  | None -> print_string contents
  | Some path -> (
      match Aa_io.Format_text.save path contents with
      | Ok () -> ()
      | Error e ->
          Printf.eprintf "error: %s\n" e;
          exit 1)

(* ---- common options ---- *)

let seed_t =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let output_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write to $(docv) instead of stdout.")

(* ---- observability options ---- *)

let trace_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Enable span tracing and write a Chrome trace (JSON array, loadable in \
           Perfetto or chrome://tracing) to $(docv). Numeric output is unchanged.")

let counters_t =
  Arg.(
    value & flag
    & info [ "counters" ]
        ~doc:"Enable solver/pool counters and dump their totals to stderr on exit.")

(* Obs output goes to stderr and the trace file only, never stdout: the
   assignment/series output must stay byte-identical with and without
   instrumentation (the CLI e2e test pins this). *)
let with_obs ~trace ~counters f =
  if trace <> None || counters then Aa_obs.Control.set_enabled true;
  let r = f () in
  (match trace with
  | None -> ()
  | Some path -> (
      match Aa_io.Format_text.save path (Aa_obs.Trace.to_chrome_json ()) with
      | Ok () ->
          Format.eprintf "wrote trace: %s (%d events)@." path
            (Aa_obs.Trace.n_events ())
      | Error e ->
          Printf.eprintf "error: %s\n" e;
          exit 1));
  if counters then
    List.iter
      (fun (k, v) -> Printf.eprintf "%s %s\n" k v)
      (Aa_obs.Registry.dump ());
  r

(* ---- generate ---- *)

let distribution_t =
  let dist =
    Arg.(
      value
      & opt (enum [ ("uniform", `U); ("normal", `N); ("powerlaw", `P); ("discrete", `D) ]) `U
      & info [ "dist" ] ~docv:"DIST"
          ~doc:"Utility distribution: uniform, normal, powerlaw or discrete.")
  in
  let alpha =
    Arg.(value & opt float 2.0 & info [ "alpha" ] ~doc:"Power-law exponent.")
  in
  let gamma =
    Arg.(
      value & opt float 0.85 & info [ "gamma" ] ~doc:"Discrete: probability of the low value.")
  in
  let theta =
    Arg.(value & opt float 5.0 & info [ "theta" ] ~doc:"Discrete: high/low value ratio.")
  in
  let mu = Arg.(value & opt float 1.0 & info [ "mu" ] ~doc:"Normal: mean.") in
  let sigma =
    Arg.(value & opt float 1.0 & info [ "sigma" ] ~doc:"Normal: standard deviation.")
  in
  let make d alpha gamma theta mu sigma =
    match d with
    | `U -> Gen.Uniform
    | `N -> Gen.Normal { mu; sigma }
    | `P -> Gen.Power_law { alpha }
    | `D -> Gen.Discrete { gamma; theta }
  in
  Term.(const make $ dist $ alpha $ gamma $ theta $ mu $ sigma)

let generate_cmd =
  let servers =
    Arg.(value & opt int 8 & info [ "m"; "servers" ] ~doc:"Number of servers.")
  in
  let capacity =
    Arg.(value & opt float 1000.0 & info [ "C"; "capacity" ] ~doc:"Resource per server.")
  in
  let threads =
    Arg.(value & opt int 40 & info [ "n"; "threads" ] ~doc:"Number of threads.")
  in
  let run dist servers capacity threads seed out =
    let rng = Rng.create ~seed () in
    let inst = Gen.instance rng ~servers ~capacity ~threads dist in
    write_output out (Aa_io.Format_text.print_instance inst)
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a random AA instance (paper §VII workloads).")
    Term.(const run $ distribution_t $ servers $ capacity $ threads $ seed_t $ output_t)

(* ---- solve ---- *)

let solve_cmd =
  let algo_conv =
    let parse s =
      match Solver.of_name s with
      | Some a -> Ok (`Algo a)
      | None -> (
          match String.lowercase_ascii s with
          | "exact" -> Ok `Exact
          | "online" -> Ok `Online
          | "ls" -> Ok `Local_search
          | _ -> Error (`Msg (Printf.sprintf "unknown algorithm %S" s)))
    in
    let print ppf = function
      | `Algo a -> Format.pp_print_string ppf (Solver.name a)
      | `Exact -> Format.pp_print_string ppf "exact"
      | `Online -> Format.pp_print_string ppf "online"
      | `Local_search -> Format.pp_print_string ppf "ls"
    in
    Arg.conv (parse, print)
  in
  let algo =
    Arg.(
      value
      & opt algo_conv (`Algo Solver.Algo2)
      & info [ "algo" ] ~docv:"ALGO"
          ~doc:
            "One of algo1, algo2, uu, ur, ru, rr, online (threads admitted in file order), \
             ls (algo2 + refill + local search), exact (exponential; small n only).")
  in
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"INSTANCE" ~doc:"Instance file.")
  in
  let run algo refine coarsen_eps file seed out trace counters =
    with_obs ~trace ~counters @@ fun () ->
    let inst = read_instance file in
    let rng = Rng.create ~seed () in
    (* Optionally solve a certified eps-coarsened copy (each utility's
       PLC with near-collinear breakpoints dropped); the result is then
       checked and certified against the ORIGINAL instance, so the
       printed ratio reflects any coarsening loss honestly. *)
    let work_inst =
      if coarsen_eps > 0.0 then
        Instance.create ~servers:inst.servers ~capacity:inst.capacity
          (Array.map
             (fun u ->
               Aa_utility.Utility.of_plc
                 (Aa_utility.Plc.coarsen ~eps:coarsen_eps (Aa_utility.Utility.to_plc u)))
             inst.utilities)
      else inst
    in
    let assignment, label =
      match algo with
      | `Algo a -> (Solver.solve ~rng a work_inst, Solver.name a)
      | `Exact -> ((Exact.solve work_inst).assignment, "exact")
      | `Online ->
          (* threads are admitted in file order, placed without migration *)
          ( Online.solve_sequence ~servers:work_inst.servers ~capacity:work_inst.capacity
              work_inst.utilities,
            "online" )
      | `Local_search ->
          let a = Refine.per_server work_inst (Algo2.solve work_inst) in
          (fst (Local_search.improve work_inst a), "algo2+refill+local-search")
    in
    let assignment =
      if refine then Refine.per_server work_inst assignment else assignment
    in
    (match Assignment.check inst assignment with
    | Ok () -> ()
    | Error e ->
        Printf.eprintf "internal error: infeasible assignment: %s\n" e;
        exit 2);
    let so = Superopt.compute inst in
    let cert = Bounds.certify inst so assignment in
    Format.eprintf "%s utility: %.6g (upper bound %.6g, ratio %.4f)@." label cert.achieved
      cert.superopt cert.ratio;
    write_output out (Aa_io.Format_text.print_assignment assignment)
  in
  let refine =
    Arg.(
      value & flag
      & info [ "refine" ]
          ~doc:"Re-divide each server's capacity optimally after assignment (never hurts).")
  in
  let coarsen_eps =
    Arg.(
      value & opt float 0.0
      & info [ "coarsen" ] ~docv:"EPS"
          ~doc:
            "Solve an eps-coarsened copy of the instance: drop PLC breakpoints whose \
             removal changes any utility by at most $(docv) (certified pointwise bound). \
             The assignment is still checked and certified against the original \
             instance. 0 disables coarsening.")
  in
  Cmd.v
    (Cmd.info "solve" ~doc:"Solve an AA instance; assignment goes to stdout/-o, summary to stderr.")
    Term.(const run $ algo $ refine $ coarsen_eps $ file $ seed_t $ output_t $ trace_t $ counters_t)

(* ---- online ---- *)

let online_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"INSTANCE" ~doc:"Instance file.")
  in
  let run file out =
    let inst = read_instance file in
    let assignment =
      Online.solve_sequence ~servers:inst.servers ~capacity:inst.capacity inst.utilities
    in
    (match Assignment.check inst assignment with
    | Ok () -> ()
    | Error e ->
        Printf.eprintf "internal error: infeasible assignment: %s\n" e;
        exit 2);
    let online_u = Assignment.utility inst assignment in
    let offline_u = Assignment.utility inst (Algo2.solve inst) in
    let gap = if offline_u > 0.0 then online_u /. offline_u else 1.0 in
    Format.eprintf
      "online utility: %.6g   offline algo2: %.6g   gap (online/algo2): %.4f@." online_u
      offline_u gap;
    write_output out (Aa_io.Format_text.print_assignment assignment)
  in
  Cmd.v
    (Cmd.info "online"
       ~doc:
         "Admit threads one at a time in file order (no migration, intra-server \
          re-allocation only) and report the gap to offline Algorithm 2.")
    Term.(const run $ file $ output_t)

(* ---- eval ---- *)

let eval_cmd =
  let inst_file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"INSTANCE" ~doc:"Instance file.")
  in
  let sol_file =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"SOLUTION" ~doc:"Assignment file.")
  in
  let run inst_file sol_file =
    let inst = read_instance inst_file in
    match
      In_channel.with_open_text sol_file In_channel.input_all
      |> Aa_io.Format_text.parse_assignment
    with
    | Error e ->
        Printf.eprintf "error: %s\n" e;
        exit 1
    | Ok assignment -> (
        match Assignment.check inst assignment with
        | Error e ->
            Printf.printf "INFEASIBLE: %s\n" e;
            exit 1
        | Ok () ->
            let so = Superopt.compute inst in
            let cert = Bounds.certify inst so assignment in
            Format.printf "feasible; utility %.6g, upper bound %.6g, ratio %.4f@."
              cert.achieved cert.superopt cert.ratio)
  in
  Cmd.v
    (Cmd.info "eval" ~doc:"Check feasibility and score a saved assignment.")
    Term.(const run $ inst_file $ sol_file)

(* ---- sweep / figures ---- *)

(* Pool size for experiment-driving commands. Typed validation at parse
   time: a zero or negative count is a CLI error (exit 124), matching
   aa_serve's up-front flag validation rather than a mid-run crash. *)
let jobs_conv =
  let parse s =
    match int_of_string_opt (String.trim s) with
    | Some j when j >= 1 -> Ok j
    | Some j -> Error (`Msg (Printf.sprintf "JOBS must be >= 1, got %d" j))
    | None -> Error (`Msg (Printf.sprintf "JOBS must be a positive integer, got %S" s))
  in
  Arg.conv (parse, Format.pp_print_int)

let jobs_t =
  Arg.(
    value
    & opt (some jobs_conv) None
    & info [ "j"; "jobs" ] ~docv:"JOBS"
        ~doc:
          "Domain-pool size for the sweep (default: $(b,AA_JOBS) or the runtime's \
           recommended domain count). Results are bit-identical for every value.")

let sweep_cmd =
  let figure =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FIGURE" ~doc:"Figure id (fig1a fig1b fig2a fig2b fig3a fig3b fig3c).")
  in
  let trials =
    Arg.(value & opt int 1000 & info [ "trials" ] ~doc:"Random trials per sweep point.")
  in
  let svg_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "svg" ] ~docv:"FILE" ~doc:"Also render the series as an SVG figure.")
  in
  let run figure trials seed jobs svg trace counters =
    with_obs ~trace ~counters @@ fun () ->
    match Aa_experiments.Figures.find figure with
    | None ->
        Printf.eprintf "unknown figure %S; try the 'figures' command\n" figure;
        exit 1
    | Some spec -> (
        let series = spec.run ?jobs ~trials ~seed () in
        Format.printf "%a@." Aa_experiments.Run.pp_series series;
        match svg with
        | None -> ()
        | Some path -> (
            let doc = Aa_experiments.Svg.render (Aa_experiments.Svg.of_series series) in
            match Aa_io.Format_text.save path doc with
            | Ok () -> Format.eprintf "wrote %s@." path
            | Error e ->
                Printf.eprintf "error: %s\n" e;
                exit 1))
  in
  Cmd.v
    (Cmd.info "sweep" ~doc:"Rerun one of the paper's experiment sweeps.")
    Term.(const run $ figure $ trials $ seed_t $ jobs_t $ svg_out $ trace_t $ counters_t)

let figures_cmd =
  let run () =
    List.iter
      (fun (s : Aa_experiments.Figures.spec) ->
        Format.printf "%-7s %-12s %s@." s.id s.paper s.description)
      Aa_experiments.Figures.all
  in
  Cmd.v (Cmd.info "figures" ~doc:"List the reproducible paper figures.") Term.(const run $ const ())

let main_cmd =
  let doc = "utility-maximizing thread assignment and resource allocation (IPDPS 2016)" in
  Cmd.group (Cmd.info "aa" ~version:"1.0.0" ~doc)
    [ generate_cmd; solve_cmd; online_cmd; eval_cmd; sweep_cmd; figures_cmd ]

let () = exit (Cmd.eval main_cmd)
