(* aa_lint: static analysis for the AA solver stack.

   See [help_text] below for the flag reference and the exit-code
   contract. Exit codes mirror aa_cli's convention: distinct codes for
   "the code is bad" (1), "the run could not complete" (2) and "the
   invocation is bad" (124), so CI and scripts can tell them apart. *)

module A = Aa_analysis

let help_text =
  "usage: aa_lint [options] <file-or-dir>...\n\
   \n\
   Lints .ml/.mli sources with the Aa_analysis rule set: lexical rules,\n\
   structural determinism-contract rules (pool-mutation, unguarded-div)\n\
   and the cross-module unused-export project rule.\n\
   \n\
   options:\n\
  \  --baseline FILE      read known violations from FILE\n\
  \  --update-baseline    rewrite the baseline from current violations\n\
  \  --format FMT         output format: text (default), json, sarif\n\
  \  --enable ID[,ID...]  run only the listed rules (repeatable)\n\
  \  --disable ID[,ID...] drop rules from the active set (repeatable)\n\
  \  --severity ID=LEVEL  override a rule's severity: error or warn\n\
  \  --uses PATH          extra root scanned for references only (repeatable);\n\
  \                       keeps exports consumed by bin/bench/test out of\n\
  \                       the unused-export report\n\
  \  --rules              list rules (id, default severity, summary) and exit\n\
  \  --quiet              print no summary line on success\n\
  \  --help               this text\n\
   \n\
   exit codes:\n\
  \  0    clean, or fresh findings are warn-severity only\n\
  \       (--update-baseline exits 0 once the baseline is written)\n\
  \  1    fresh error-severity findings\n\
  \  2    I/O error: a named path could not be read\n\
  \  124  usage error: unknown flag, unknown rule id, bad --severity or\n\
  \       --format value, missing operand\n"

let usage_error msg =
  prerr_endline ("aa_lint: " ^ msg);
  prerr_endline "usage: aa_lint [options] <file-or-dir>...  (--help for details)";
  exit 124

let list_rules () =
  List.iter
    (fun (r : A.Rules.t) ->
      Printf.printf "%-14s %-6s %s\n" r.id
        (A.Rules.severity_to_string r.default_severity)
        r.summary)
    A.Rules.all;
  List.iter
    (fun (p : A.Rules.project) ->
      Printf.printf "%-14s %-6s %s (project-wide)\n" p.pid
        (A.Rules.severity_to_string p.pdefault_severity)
        p.psummary)
    A.Rules.project_all;
  exit 0

let split_ids s = String.split_on_char ',' s |> List.filter (fun x -> x <> "")

let check_rule_id id =
  if not (List.exists (String.equal id) A.Rules.all_ids) then
    usage_error (Printf.sprintf "unknown rule id %S (see --rules)" id)

let () =
  let baseline_file = ref None in
  let update = ref false in
  let quiet = ref false in
  let format = ref A.Report.Text in
  let enabled = ref None in
  let disabled = ref [] in
  let severities = ref [] in
  let use_paths = ref [] in
  let paths = ref [] in
  let rec parse = function
    | [] -> ()
    | "--rules" :: _ -> list_rules ()
    | ("--help" | "-h") :: _ ->
        print_string help_text;
        exit 0
    | "--baseline" :: file :: rest ->
        baseline_file := Some file;
        parse rest
    | "--update-baseline" :: rest ->
        update := true;
        parse rest
    | "--quiet" :: rest ->
        quiet := true;
        parse rest
    | "--format" :: fmt :: rest -> (
        match A.Report.format_of_string fmt with
        | Some f ->
            format := f;
            parse rest
        | None -> usage_error (Printf.sprintf "bad --format %S (text|json|sarif)" fmt))
    | "--enable" :: ids :: rest ->
        let ids = split_ids ids in
        List.iter check_rule_id ids;
        enabled := Some (ids @ Option.value ~default:[] !enabled);
        parse rest
    | "--disable" :: ids :: rest ->
        let ids = split_ids ids in
        List.iter check_rule_id ids;
        disabled := ids @ !disabled;
        parse rest
    | "--severity" :: spec :: rest -> (
        match String.index_opt spec '=' with
        | Some i -> (
            let id = String.sub spec 0 i in
            let level = String.sub spec (i + 1) (String.length spec - i - 1) in
            check_rule_id id;
            match A.Rules.severity_of_string level with
            | Some s ->
                severities := (id, s) :: !severities;
                parse rest
            | None -> usage_error (Printf.sprintf "bad --severity level %S (error|warn)" level))
        | None -> usage_error (Printf.sprintf "bad --severity %S (expected ID=LEVEL)" spec))
    | "--uses" :: path :: rest ->
        use_paths := path :: !use_paths;
        parse rest
    | [ ("--baseline" | "--format" | "--enable" | "--disable" | "--severity" | "--uses") ] ->
        usage_error "flag needs an operand"
    | arg :: _ when String.length arg > 1 && arg.[0] = '-' ->
        usage_error (Printf.sprintf "unknown flag %S" arg)
    | path :: rest ->
        paths := path :: !paths;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !paths = [] then usage_error "no input paths";
  if !update && !baseline_file = None then
    usage_error "--update-baseline requires --baseline FILE";
  let active id =
    (match !enabled with None -> true | Some ids -> List.exists (String.equal id) ids)
    && not (List.exists (String.equal id) !disabled)
  in
  let rules = List.filter (fun (r : A.Rules.t) -> active r.id) A.Rules.all in
  let project = List.filter (fun (p : A.Rules.project) -> active p.pid) A.Rules.project_all in
  let baseline =
    match !baseline_file with
    | Some f when not !update -> A.Lint.load_baseline f
    | _ -> []
  in
  match
    A.Lint.run_with_lines ~rules ~project ~severities:!severities
      ~use_paths:(List.rev !use_paths) ~baseline (List.rev !paths)
  with
  | exception Sys_error msg ->
      prerr_endline ("aa_lint: " ^ msg);
      exit 2
  | outcome, with_lines ->
      let errors =
        List.filter (fun (x : A.Rules.violation) -> x.severity = A.Rules.Error) outcome.fresh
      in
      if !update then begin
        (* aa-lint: ignore partial-fn -- --update-baseline requires --baseline (checked above) *)
        let file = Option.get !baseline_file in
        let entries = A.Lint.baseline_entries with_lines in
        let oc = open_out file in
        output_string oc "# aa_lint baseline: <rule> <count> <md5> <path>\n";
        output_string oc "# regenerate with: aa_lint --baseline THIS --update-baseline <paths>\n";
        List.iter (fun e -> output_string oc (e ^ "\n")) entries;
        close_out oc;
        Printf.printf "baseline: wrote %d entr%s to %s\n" (List.length entries)
          (if List.length entries = 1 then "y" else "ies")
          file;
        exit 0
      end;
      print_string (A.Report.render !format outcome);
      if !format = A.Report.Text then
        List.iter
          (fun fp -> Printf.printf "stale baseline entry (fix it or refresh): %s\n" fp)
          outcome.stale_baseline;
      if not !quiet then
        Printf.eprintf
          "aa_lint: %d file(s), %d violation(s) (%d error, %d warn), %d baselined, \
           %d suppressed\n"
          outcome.files
          (List.length outcome.fresh)
          (List.length errors)
          (List.length outcome.fresh - List.length errors)
          (List.length outcome.baselined)
          outcome.suppressed;
      exit (if errors <> [] then 1 else 0)
