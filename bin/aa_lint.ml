(* aa_lint: static analysis for the AA solver stack.

   Usage:
     aa_lint [options] <file-or-dir>...
   Options:
     --baseline FILE     read known violations from FILE (default: none)
     --update-baseline   rewrite the baseline from the current violations
     --rules             list rules and exit
     --quiet             print nothing on success
   Exit codes: 0 clean, 1 fresh violations, 2 usage or I/O error. *)

let usage () =
  prerr_endline
    "usage: aa_lint [--baseline FILE] [--update-baseline] [--rules] [--quiet] \
     <file-or-dir>...";
  exit 2

let list_rules () =
  List.iter
    (fun (r : Aa_analysis.Rules.t) -> Printf.printf "%-12s %s\n" r.id r.summary)
    Aa_analysis.Rules.all;
  exit 0

let () =
  let baseline_file = ref None in
  let update = ref false in
  let quiet = ref false in
  let paths = ref [] in
  let rec parse = function
    | [] -> ()
    | "--rules" :: _ -> list_rules ()
    | "--baseline" :: file :: rest ->
        baseline_file := Some file;
        parse rest
    | "--baseline" :: [] -> usage ()
    | "--update-baseline" :: rest ->
        update := true;
        parse rest
    | "--quiet" :: rest ->
        quiet := true;
        parse rest
    | ("--help" | "-h") :: _ -> usage ()
    | arg :: _ when String.length arg > 1 && arg.[0] = '-' -> usage ()
    | path :: rest ->
        paths := path :: !paths;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !paths = [] then usage ();
  if !update && !baseline_file = None then usage ();
  let baseline =
    match !baseline_file with
    | Some f when not !update -> Aa_analysis.Lint.load_baseline f
    | _ -> []
  in
  match Aa_analysis.Lint.run_with_lines ~baseline (List.rev !paths) with
  | exception Sys_error msg ->
      prerr_endline ("aa_lint: " ^ msg);
      exit 2
  | outcome, with_lines ->
      if !update then begin
        (* aa-lint: ignore partial-fn -- --update-baseline requires --baseline (checked above) *)
        let file = Option.get !baseline_file in
        let entries = Aa_analysis.Lint.baseline_entries with_lines in
        let oc = open_out file in
        output_string oc "# aa_lint baseline: <rule> <count> <md5> <path>\n";
        output_string oc "# regenerate with: aa_lint --baseline THIS --update-baseline <paths>\n";
        List.iter (fun e -> output_string oc (e ^ "\n")) entries;
        close_out oc;
        Printf.printf "baseline: wrote %d entr%s to %s\n" (List.length entries)
          (if List.length entries = 1 then "y" else "ies")
          file;
        exit 0
      end;
      List.iter
        (fun v -> Format.printf "%a@." Aa_analysis.Rules.pp_violation v)
        outcome.fresh;
      List.iter
        (fun fp -> Printf.printf "stale baseline entry (fix it or refresh): %s\n" fp)
        outcome.stale_baseline;
      let n_fresh = List.length outcome.fresh in
      if not !quiet then
        Printf.printf
          "aa_lint: %d file(s), %d violation(s), %d baselined, %d suppressed\n"
          outcome.files n_fresh
          (List.length outcome.baselined)
          outcome.suppressed;
      exit (if n_fresh > 0 then 1 else 0)
