open Aa_experiments

(* Small trial counts: these tests validate the harness mechanics and the
   direction of every paper trend, not the published magnitudes (the
   bench regenerates those with full trials). *)

let run_fig id trials =
  match Figures.find id with
  | None -> Alcotest.failf "missing figure %s" id
  | Some spec -> spec.run ~trials ~seed:42 ()

let test_all_figures_present () =
  Alcotest.(check int) "seven figures" 7 (List.length Figures.all);
  List.iter
    (fun id ->
      match Figures.find id with
      | Some _ -> ()
      | None -> Alcotest.failf "missing %s" id)
    [ "fig1a"; "fig1b"; "fig2a"; "fig2b"; "fig3a"; "fig3b"; "fig3c" ]

let test_find_case_insensitive () =
  match Figures.find "FIG1A" with
  | Some s -> Alcotest.(check string) "id" "fig1a" s.id
  | None -> Alcotest.fail "case-insensitive lookup failed"

let test_series_structure () =
  let s = run_fig "fig1a" 5 in
  Alcotest.(check int) "15 beta points" 15 (List.length s.points);
  List.iter
    (fun (p : Run.point) ->
      Alcotest.(check int) "trials" 5 p.trials;
      (* ratios vs SO are in (0, 1]; ratios vs heuristics >= ~1 *)
      Helpers.check_le "vs SO <= 1" p.mean.vs_so 1.0001;
      Helpers.check_ge "vs SO > alpha" p.mean.vs_so Aa_core.Bounds.alpha;
      Alcotest.(check int) "no guarantee violations" 0 p.guarantee_violations)
    s.points

let test_reproducible_with_seed () =
  let a = run_fig "fig3b" 3 in
  let b = run_fig "fig3b" 3 in
  List.iter2
    (fun (p : Run.point) (q : Run.point) ->
      Helpers.check_float "same mean vs SO" p.mean.vs_so q.mean.vs_so;
      Helpers.check_float "same mean vs RR" p.mean.vs_rr q.mean.vs_rr)
    a.points b.points

let test_paper_trends_small () =
  (* 30 trials is plenty to see the qualitative results of §VII *)
  let s = run_fig "fig1a" 30 in
  let points = Array.of_list s.points in
  let first = points.(0) and last = points.(Array.length points - 1) in
  (* Algorithm 2 is near-optimal everywhere *)
  List.iter
    (fun (p : Run.point) -> Helpers.check_ge "vs SO >= 0.97" p.mean.vs_so 0.97)
    s.points;
  (* UU is optimal at beta = 1 (paper) and degrades with beta *)
  Helpers.check_le "UU optimal at beta 1" first.mean.vs_uu 1.01;
  Helpers.check_ge "UU worse at beta 15" last.mean.vs_uu 1.05;
  (* random allocation is worse than uniform allocation (paper §VII-A) *)
  Helpers.check_ge "UR worse than UU at beta 15" last.mean.vs_ur (last.mean.vs_uu -. 0.02)

let test_power_law_magnifies_gap () =
  let uni = run_fig "fig1a" 20 in
  let pl = run_fig "fig2a" 20 in
  let last s = List.nth s.Run.points (List.length s.Run.points - 1) in
  (* heavier tails -> heuristics do worse relative to Algo2 *)
  Helpers.check_ge "power law gap bigger than uniform"
    (last pl).mean.vs_rr
    ((last uni).mean.vs_rr -. 0.05)

let test_pp_series_renders () =
  let s = run_fig "fig3c" 2 in
  let text = Format.asprintf "%a" Run.pp_series s in
  Alcotest.(check bool) "has header" true (String.length text > 100)

(* ---------- SVG figure rendering ---------- *)

let test_nice_ticks () =
  let ticks = Svg.nice_ticks ~lo:0.0 ~hi:10.0 5 in
  Alcotest.(check (list (float 1e-9))) "round steps" [ 0.0; 2.0; 4.0; 6.0; 8.0; 10.0 ] ticks;
  let ticks = Svg.nice_ticks ~lo:0.93 ~hi:1.01 5 in
  List.iter
    (fun t ->
      if t < 0.93 -. 1e-9 || t > 1.01 +. 1e-9 then Alcotest.failf "tick %g out of range" t)
    ticks;
  Alcotest.(check bool) "at least two ticks" true (List.length ticks >= 2)

let test_svg_renders_well_formed () =
  let chart =
    Svg.default ~title:"t<&>\"" ~xlabel:"x" ~ylabel:"y"
      [
        { Svg.label = "a"; points = [ (1.0, 1.0); (2.0, 1.5); (3.0, 1.2) ] };
        { Svg.label = "b"; points = [ (1.0, 2.0); (3.0, 0.5) ] };
      ]
  in
  let doc = Svg.render chart in
  Alcotest.(check bool) "opens svg" true (String.length doc > 100);
  Alcotest.(check bool) "escaped title" true (not (Helpers.contains doc "t<&>"));
  Alcotest.(check int) "one closing tag" 1 (Helpers.count_substring doc "</svg>");
  Alcotest.(check int) "two polylines" 2 (Helpers.count_substring doc "<polyline")

let test_svg_empty_rejected () =
  let chart = Svg.default ~title:"t" ~xlabel:"x" ~ylabel:"y" [ { Svg.label = "a"; points = [] } ] in
  Alcotest.check_raises "no data" (Invalid_argument "Svg.render: no data points") (fun () ->
      ignore (Svg.render chart))

let test_svg_degenerate_ranges () =
  (* single point: ranges padded, no division by zero *)
  let chart =
    Svg.default ~title:"t" ~xlabel:"x" ~ylabel:"y"
      [ { Svg.label = "a"; points = [ (2.0, 5.0) ] } ]
  in
  let doc = Svg.render chart in
  Alcotest.(check bool) "renders" true (String.length doc > 100);
  Alcotest.(check bool) "no nan" true (not (Helpers.contains doc "nan"))

let test_svg_of_series () =
  let s = run_fig "fig3c" 2 in
  let doc = Svg.render (Svg.of_series s) in
  Alcotest.(check bool) "mentions comparators" true (Helpers.contains doc "vs RR")

let () =
  Alcotest.run "experiments"
    [
      ( "figures",
        [
          Alcotest.test_case "all present" `Quick test_all_figures_present;
          Alcotest.test_case "find" `Quick test_find_case_insensitive;
          Alcotest.test_case "series structure" `Quick test_series_structure;
          Alcotest.test_case "reproducible" `Quick test_reproducible_with_seed;
        ] );
      ( "svg",
        [
          Alcotest.test_case "nice ticks" `Quick test_nice_ticks;
          Alcotest.test_case "well formed" `Quick test_svg_renders_well_formed;
          Alcotest.test_case "empty rejected" `Quick test_svg_empty_rejected;
          Alcotest.test_case "degenerate ranges" `Quick test_svg_degenerate_ranges;
          Alcotest.test_case "of_series" `Quick test_svg_of_series;
        ] );
      ( "trends",
        [
          Alcotest.test_case "uniform trends" `Slow test_paper_trends_small;
          Alcotest.test_case "power law gap" `Slow test_power_law_magnifies_gap;
          Alcotest.test_case "pp renders" `Quick test_pp_series_renders;
        ] );
    ]
