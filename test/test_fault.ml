(* Tests for the crash-fault injection harness (Aa_fault.Failpoint) and
   the durability hardening it exercises: v2 journal framing + CRC,
   create-clobber refusal, compact-failure recovery, torn-tail repair,
   engine degraded mode, the aa_serve --faults surface, and the
   crash-at-every-failpoint recovery sweep. *)

open Aa_numerics
open Aa_utility
open Aa_service
module Failpoint = Aa_fault.Failpoint

let cap = 10.0
let u_pow = Utility.Shapes.power ~cap ~coeff:4.0 ~beta:0.5
let u_log = Utility.Shapes.log_utility ~cap ~coeff:3.0 ~rate:1.0
let or_fail = function Ok v -> v | Error e -> Alcotest.fail e
let unit_or_fail (r : (unit, string) result) = or_fail r

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec at i = i + n <= h && (String.sub hay i n = needle || at (i + 1)) in
  at 0

(* Every armed schedule must be torn down, whatever the test did:
   failpoints are process-global and Alcotest runs suites in-process. *)
let with_faults f =
  Fun.protect ~finally:(fun () -> Failpoint.disarm_all ()) f

(* ---------- failpoint schedules ---------- *)

let fires p n = List.init n (fun _ -> Failpoint.fire p)

let test_off_switch () =
  let p = Failpoint.register "t.off" in
  Alcotest.(check bool) "switch off" false (Failpoint.active ());
  Alcotest.(check (list bool)) "unarmed never fires" [ false; false; false ]
    (fires p 3);
  Alcotest.(check int) "unarmed hits are not even counted" 0
    (Failpoint.hits "t.off")

let test_nth_schedule () =
  with_faults @@ fun () ->
  let p = Failpoint.register "t.nth" in
  Failpoint.arm "t.nth" (Failpoint.Nth 3);
  Alcotest.(check bool) "switch on" true (Failpoint.active ());
  Alcotest.(check (list bool)) "fails exactly on the 3rd hit, once"
    [ false; false; true; false; false ]
    (fires p 5);
  Alcotest.(check int) "hits" 5 (Failpoint.hits "t.nth");
  Alcotest.(check int) "fired" 1 (Failpoint.fired "t.nth");
  Failpoint.disarm "t.nth";
  Alcotest.(check bool) "switch back off" false (Failpoint.active ())

let test_every_schedule () =
  with_faults @@ fun () ->
  let p = Failpoint.register "t.every" in
  Failpoint.arm "t.every" (Failpoint.Every 2);
  Alcotest.(check (list bool)) "every 2nd hit"
    [ false; true; false; true; false; true ]
    (fires p 6);
  Alcotest.(check int) "fired" 3 (Failpoint.fired "t.every")

let test_bernoulli_replays () =
  with_faults @@ fun () ->
  let p = Failpoint.register "t.bern" in
  let sched = Failpoint.Bernoulli { p = 0.3; seed = 11 } in
  Failpoint.arm "t.bern" sched;
  let first = fires p 200 in
  Failpoint.arm "t.bern" sched (* re-arm resets the hit counter *);
  Alcotest.(check (list bool)) "seeded coin replays bit-identically" first
    (fires p 200);
  let k = List.length (List.filter Fun.id first) in
  if k < 20 || k > 120 then
    Alcotest.failf "p=0.3 over 200 hits fired %d times (want ~60)" k;
  Failpoint.arm "t.bern" (Failpoint.Bernoulli { p = 0.0; seed = 11 });
  Alcotest.(check (list bool)) "p=0 never fires" [ false; false ] (fires p 2);
  Failpoint.arm "t.bern" (Failpoint.Bernoulli { p = 1.0; seed = 11 });
  Alcotest.(check (list bool)) "p=1 always fires" [ true; true ] (fires p 2)

let test_crash_if () =
  with_faults @@ fun () ->
  let p = Failpoint.register "t.crash" in
  Failpoint.arm "t.crash" (Failpoint.Every 1);
  (match Failpoint.crash_if p with
  | () -> Alcotest.fail "armed crash_if did not raise"
  | exception Failpoint.Crash name ->
      Alcotest.(check string) "crash names its point" "t.crash" name);
  Failpoint.disarm_all ();
  Failpoint.crash_if p (* disarmed: must not raise *)

let test_spec_parsing () =
  with_faults @@ fun () ->
  (match Failpoint.parse_spec "journal.append=nth:3, engine.dispatch=every:2" with
  | Ok [ ("journal.append", Failpoint.Nth 3); ("engine.dispatch", Failpoint.Every 2) ]
    -> ()
  | Ok _ -> Alcotest.fail "parsed into the wrong clauses"
  | Error e -> Alcotest.fail e);
  (* print_schedule round-trips through the parser *)
  List.iter
    (fun s ->
      match Failpoint.parse_spec ("x=" ^ Failpoint.print_schedule s) with
      | Ok [ ("x", s') ] when s' = s -> ()
      | Ok _ | Error _ ->
          Alcotest.failf "%S did not round-trip" (Failpoint.print_schedule s))
    [
      Failpoint.Nth 7;
      Failpoint.Every 1;
      Failpoint.Bernoulli { p = 0.25; seed = 9 };
    ];
  List.iter
    (fun bad ->
      match Failpoint.parse_spec bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted bad spec %S" bad)
    [ ""; "noequals"; "x=wat:1"; "x=nth:0"; "x=p:1.5:seed:2"; "=nth:1" ];
  unit_or_fail (Failpoint.arm_spec "t.spec=nth:2");
  Alcotest.(check bool) "arm_spec arms" true (Failpoint.active ())

let test_registered_lists_production_points () =
  (* Journal and Engine register their points at module init; the
     recovery sweep below iterates this list, so a new failpoint in
     either module gets crash-tested without editing the sweep. *)
  let names = Failpoint.registered () in
  List.iter
    (fun n ->
      if not (List.mem n names) then Alcotest.failf "%s not registered" n)
    [
      "journal.sys"; "journal.append"; "journal.append.torn"; "journal.rewrite";
      "journal.compact"; "journal.group.append"; "journal.group.fsync";
      "engine.dispatch"; "engine.apply";
    ]

(* ---------- crc32 ---------- *)

let test_crc32_known_answer () =
  (* the IEEE 802.3 check value: crc32("123456789") = 0xCBF43926 *)
  Alcotest.(check int) "check value" 0xCBF43926 (Crc32.string "123456789");
  Alcotest.(check string) "hex form" "cbf43926"
    (Crc32.to_hex (Crc32.string "123456789"));
  Alcotest.(check int) "empty string" 0 (Crc32.string "");
  if Crc32.string "depart 12" = Crc32.string "depart 1" then
    Alcotest.fail "prefix collision: the framing check would be useless"

(* ---------- journal durability ---------- *)

let test_create_refuses_clobber () =
  let path = Filename.temp_file "aa_fault_clobber" ".log" in
  (* an existing *empty* file (the temp_file idiom) is fine *)
  let j = or_fail (Journal.create ~path ~servers:2 ~capacity:cap ()) in
  unit_or_fail (Journal.append j (Journal.Admit u_pow));
  Journal.close j;
  (match Journal.create ~path ~servers:2 ~capacity:cap () with
  | Ok _ -> Alcotest.fail "create silently clobbered an existing journal"
  | Error e ->
      if not (contains ~needle:"--replay" e) then
        Alcotest.failf "refusal should point at --replay, said: %s" e);
  (* and the refusal really did leave the file alone *)
  let _, entries = or_fail (Journal.load ~path) in
  Alcotest.(check (list string)) "history preserved"
    [ Journal.print_entry (Journal.Admit u_pow) ]
    (List.map Journal.print_entry entries);
  Sys.remove path

let test_compact_failure_keeps_appending () =
  with_faults @@ fun () ->
  let path = Filename.temp_file "aa_fault_compact" ".log" in
  let j = or_fail (Journal.create ~path ~servers:2 ~capacity:cap ()) in
  unit_or_fail (Journal.append j (Journal.Admit u_pow));
  unit_or_fail (Journal.append j (Journal.Admit u_log));
  Failpoint.arm "journal.rewrite" (Failpoint.Every 1);
  (match
     Journal.compact j
       [ Journal.Place { id = 0; server = 0; active = true; u = u_pow } ]
   with
  | Ok () -> Alcotest.fail "compact should fail under journal.rewrite"
  | Error _ -> ());
  Failpoint.disarm_all ();
  (* the regression: a failed compact used to leave a closed channel
     here, wedging every later append *)
  unit_or_fail (Journal.append j (Journal.Depart 0));
  let _, entries = or_fail (Journal.load ~path) in
  Alcotest.(check int) "full history survives the failed compact" 3
    (List.length entries);
  (* and compaction itself still works once the fault clears *)
  unit_or_fail
    (Journal.compact j
       [ Journal.Place { id = 0; server = 1; active = false; u = u_pow } ]);
  unit_or_fail (Journal.append j (Journal.Admit u_log));
  Journal.close j;
  let _, entries = or_fail (Journal.load ~path) in
  Alcotest.(check (list string)) "compacted state + later appends"
    [ "place 0 1 departed " ^ Aa_io.Format_text.print_thread_spec u_pow;
      Journal.print_entry (Journal.Admit u_log) ]
    (List.map Journal.print_entry entries);
  Sys.remove path

(* The v1 hazard this whole format revision exists for: a torn final
   line of [depart 12] reads back as the valid, wrong entry
   [depart 1]. With v2 length+CRC framing the torn line cannot pass its
   checks and is dropped as a tail. *)
let test_torn_tail_cannot_masquerade () =
  let path = Filename.temp_file "aa_fault_torn" ".log" in
  let j = or_fail (Journal.create ~path ~servers:2 ~capacity:cap ()) in
  unit_or_fail (Journal.append j (Journal.Admit u_pow));
  unit_or_fail (Journal.append j (Journal.Depart 12));
  Journal.close j;
  (* tear the last two bytes off ("2\n"): the remaining payload is the
     parseable-but-wrong "depart 1" *)
  let bytes = In_channel.with_open_bin path In_channel.input_all in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc
        (String.sub bytes 0 (String.length bytes - 2)));
  let _, entries = or_fail (Journal.load ~path) in
  Alcotest.(check (list string)) "torn depart dropped, not misread"
    [ Journal.print_entry (Journal.Admit u_pow) ]
    (List.map Journal.print_entry entries);
  (* contrast: the same tear in a v1 journal IS silently misread — kept
     here as documentation of what the framing buys *)
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc
        "aa-journal 1 servers 2 capacity 10\ndepart 1");
  let _, entries = or_fail (Journal.load ~path) in
  Alcotest.(check (list string)) "v1 false-accept (the fixed hazard)"
    [ "depart 1" ]
    (List.map Journal.print_entry entries);
  Sys.remove path

let test_v1_read_compat_and_upgrade () =
  let path = Filename.temp_file "aa_fault_v1" ".log" in
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc
        "aa-journal 1 servers 2 capacity 10\nadmit power 4 0.5\ndepart 0\n");
  let v, h, entries = or_fail (Journal.load_versioned ~path) in
  Alcotest.(check int) "reads as version 1" 1 v;
  Alcotest.(check int) "servers" 2 h.Journal.servers;
  Alcotest.(check (list string)) "v1 entries"
    [ "admit power 4 0.5"; "depart 0" ]
    (List.map Journal.print_entry entries);
  (* the recovery open rewrites in v2 framing: the on-disk upgrade *)
  let j, recovered = or_fail (Journal.append_to ~fsync:Journal.Never ~path ()) in
  Alcotest.(check int) "append_to recovers both entries" 2
    (List.length recovered);
  unit_or_fail (Journal.append j (Journal.Admit u_log));
  Journal.close j;
  let v, _, entries = or_fail (Journal.load_versioned ~path) in
  Alcotest.(check int) "now version 2 on disk" 2 v;
  Alcotest.(check (list string)) "entries survive the upgrade"
    [ "admit power 4 0.5"; "depart 0"; Journal.print_entry (Journal.Admit u_log) ]
    (List.map Journal.print_entry entries);
  (* framed lines really are framed: line 2 must equal frame_entry *)
  let lines =
    String.split_on_char '\n' (In_channel.with_open_bin path In_channel.input_all)
  in
  (match lines with
  | _header :: l2 :: _ ->
      Alcotest.(check string) "line is <len> <crc> <payload>"
        (Journal.frame_entry (List.hd entries))
        l2
  | _ -> Alcotest.fail "journal shorter than expected");
  Sys.remove path

let test_append_failure_repairs_tail () =
  with_faults @@ fun () ->
  let path = Filename.temp_file "aa_fault_tail" ".log" in
  let j = or_fail (Journal.create ~path ~servers:2 ~capacity:cap ()) in
  unit_or_fail (Journal.append j (Journal.Admit u_pow));
  Failpoint.arm "journal.append.torn" (Failpoint.Nth 1);
  (match Journal.append j (Journal.Depart 0) with
  | Ok () -> Alcotest.fail "torn append should report failure"
  | Error _ -> ());
  (* the next append truncates the torn fragment before writing, so the
     retried entry appears exactly once and the file parses cleanly *)
  unit_or_fail (Journal.append j (Journal.Depart 0));
  Journal.close j;
  let _, entries = or_fail (Journal.load ~path) in
  Alcotest.(check (list string)) "no duplicate, no corruption"
    [ Journal.print_entry (Journal.Admit u_pow); "depart 0" ]
    (List.map Journal.print_entry entries);
  Sys.remove path

let test_fsync_policy_strings () =
  List.iter
    (fun (s, p) ->
      Alcotest.(check string) s s (Journal.fsync_to_string p);
      match Journal.fsync_of_string s with
      | Ok p' when p' = p -> ()
      | Ok _ | Error _ -> Alcotest.failf "%s did not round-trip" s)
    [ ("always", Journal.Always); ("never", Journal.Never) ];
  (match Journal.fsync_of_string "interval" with
  | Ok (Journal.Interval s) -> Helpers.check_float "interval window" 0.1 s
  | Ok _ | Error _ -> Alcotest.fail "interval policy");
  match Journal.fsync_of_string "frob" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted bad fsync policy"

let test_group_commit_amortizes_fsyncs () =
  let path = Filename.temp_file "aa_fault_group" ".log" in
  let j =
    or_fail (Journal.create ~fsync:Journal.Always ~path ~servers:2 ~capacity:cap ())
  in
  unit_or_fail (Journal.begin_group j);
  Alcotest.(check bool) "group open" true (Journal.in_group j);
  (match Journal.begin_group j with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "nested begin_group accepted");
  let before = Journal.fsyncs j in
  unit_or_fail (Journal.append j (Journal.Admit u_pow));
  unit_or_fail (Journal.append j (Journal.Admit u_log));
  unit_or_fail (Journal.append j (Journal.Depart 0));
  Alcotest.(check int) "no fsync while buffering" before (Journal.fsyncs j);
  (match Journal.commit_group j with
  | Ok n -> Alcotest.(check bool) "bytes committed" true (n > 0)
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "one fsync for the whole batch — not three"
    (before + 1) (Journal.fsyncs j);
  Alcotest.(check bool) "group closed" false (Journal.in_group j);
  (* an empty batch must not touch the file at all *)
  unit_or_fail (Journal.begin_group j);
  (match Journal.commit_group j with
  | Ok 0 -> ()
  | Ok n -> Alcotest.failf "empty commit wrote %d bytes" n
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "empty commit does not fsync" (before + 1)
    (Journal.fsyncs j);
  Journal.close j;
  let _, entries = or_fail (Journal.load ~path) in
  Alcotest.(check (list string)) "all three entries durable, in order"
    (List.map Journal.print_entry
       [ Journal.Admit u_pow; Journal.Admit u_log; Journal.Depart 0 ])
    (List.map Journal.print_entry entries);
  Sys.remove path

(* ---------- engine: cap tolerance + degraded mode ---------- *)

let send e line =
  match Engine.handle_line e line with
  | Some r -> r
  | None -> Alcotest.failf "no response to %S" line

let expect_ok e line =
  match send e line with
  | Protocol.Err { message; _ } -> Alcotest.failf "%S failed: %s" line message
  | r -> r

let expect_err code e line =
  match send e line with
  | Protocol.Err { code = c; _ } ->
      Alcotest.(check string) line code (Protocol.code_name c)
  | r -> Alcotest.failf "%S succeeded: %s" line (Protocol.print_response r)

let admit e u = Engine.handle e (Protocol.Admit u)

let test_cap_tolerance_boundaries () =
  (* feq_rel itself *)
  Alcotest.(check bool) "exact zero" true (Util.feq_rel 0.0 0.0);
  Alcotest.(check bool) "2e-9 vs 1e-9 differs" true (Util.fne_rel 1e-9 2e-9);
  Alcotest.(check bool) "1e12 vs 1e12+1 equal at rel 1e-9" true
    (Util.feq_rel 1e12 (1e12 +. 1.0));
  (* tiny capacity: the old absolute eps 1e-9 accepted a cap 2x off *)
  let tiny = Engine.create ~servers:2 ~capacity:1e-9 () in
  (match admit tiny (Utility.Shapes.power ~cap:2e-9 ~coeff:1.0 ~beta:0.5) with
  | Protocol.Err { code; _ } ->
      Alcotest.(check string) "2x cap at 1e-9 scale rejected" "bad-spec"
        (Protocol.code_name code)
  | r -> Alcotest.failf "accepted: %s" (Protocol.print_response r));
  (match admit tiny (Utility.Shapes.power ~cap:1e-9 ~coeff:1.0 ~beta:0.5) with
  | Protocol.Admitted _ -> ()
  | r -> Alcotest.failf "exact tiny cap rejected: %s" (Protocol.print_response r));
  (* huge capacity: one part in 1e12 is within tolerance, 1e-6 is not *)
  let big = Engine.create ~servers:2 ~capacity:1e12 () in
  (match admit big (Utility.Shapes.power ~cap:(1e12 *. (1. +. 1e-12)) ~coeff:1.0 ~beta:0.5) with
  | Protocol.Admitted _ -> ()
  | r -> Alcotest.failf "1e-12 off at 1e12 rejected: %s" (Protocol.print_response r));
  match admit big (Utility.Shapes.power ~cap:(1e12 *. (1. +. 1e-6)) ~coeff:1.0 ~beta:0.5) with
  | Protocol.Err { code; _ } ->
      Alcotest.(check string) "1e-6 off at 1e12 rejected" "bad-spec"
        (Protocol.code_name code)
  | r -> Alcotest.failf "accepted: %s" (Protocol.print_response r)

let counter_value name =
  Option.value ~default:0 (List.assoc_opt name (Aa_obs.Registry.counters ()))

let stats_gauge e key =
  match expect_ok e "STATS" with
  | Protocol.Stats_report kvs -> (
      match List.assoc_opt key kvs with
      | Some v -> v
      | None -> Alcotest.failf "STATS has no %s gauge" key)
  | r -> Alcotest.failf "unexpected %s" (Protocol.print_response r)

let test_degraded_lifecycle () =
  Aa_obs.Control.with_enabled true @@ fun () ->
  with_faults @@ fun () ->
  let path = Filename.temp_file "aa_fault_degraded" ".log" in
  let j = or_fail (Journal.create ~fsync:Journal.Never ~path ~servers:2 ~capacity:cap ()) in
  let e =
    Engine.create ~journal:j ~journal_retries:1 ~retry_backoff_s:1e-6
      ~servers:2 ~capacity:cap ()
  in
  ignore (expect_ok e "ADMIT power 4 0.5");
  let enter0 = counter_value "engine.degraded.enter" in
  let reject0 = counter_value "engine.degraded.rejected" in
  let exit0 = counter_value "engine.degraded.exit" in
  let retry0 = counter_value "engine.journal.retries" in
  Failpoint.arm "journal.append" (Failpoint.Every 1);
  (* retries exhaust (1 retry), engine degrades, request is refused *)
  expect_err "degraded" e "ADMIT power 2 0.5";
  Alcotest.(check bool) "degraded" true (Engine.degraded e);
  Alcotest.(check int) "one retry burned" (retry0 + 1)
    (counter_value "engine.journal.retries");
  Alcotest.(check int) "append attempted twice" 2 (Failpoint.hits "journal.append");
  (* later mutations are rejected without touching the journal *)
  expect_err "degraded" e "DEPART 0";
  Alcotest.(check int) "no further journal traffic" 2
    (Failpoint.hits "journal.append");
  (* read traffic keeps flowing *)
  (match expect_ok e "QUERY 0" with
  | Protocol.Thread_info { active; _ } ->
      Alcotest.(check bool) "thread still there" true active
  | r -> Alcotest.failf "unexpected %s" (Protocol.print_response r));
  Alcotest.(check string) "STATS exposes the mode" "1" (stats_gauge e "degraded");
  Alcotest.(check int) "enter counted once" (enter0 + 1)
    (counter_value "engine.degraded.enter");
  Alcotest.(check int) "rejection counted" (reject0 + 1)
    (counter_value "engine.degraded.rejected");
  (* the journal recovers; SNAPSHOT compaction heals the engine *)
  Failpoint.disarm_all ();
  (match expect_ok e "SNAPSHOT" with
  | Protocol.Snapshot_done { compacted; _ } ->
      Alcotest.(check bool) "compacted" true compacted
  | r -> Alcotest.failf "unexpected %s" (Protocol.print_response r));
  Alcotest.(check bool) "healed" false (Engine.degraded e);
  Alcotest.(check string) "gauge back to 0" "0" (stats_gauge e "degraded");
  Alcotest.(check int) "exit counted" (exit0 + 1)
    (counter_value "engine.degraded.exit");
  ignore (expect_ok e "ADMIT power 2 0.5");
  (* the journal holds exactly the surviving state *)
  let replayed = or_fail (Engine.of_journal ~fsync:Journal.Never ~path ()) in
  Helpers.check_float "replay sees the healed state" (Engine.total_utility e)
    (Engine.total_utility replayed);
  (match Engine.journal replayed with Some j2 -> Journal.close j2 | None -> ());
  Journal.close j;
  Sys.remove path

let test_transient_fault_absorbed_by_retry () =
  with_faults @@ fun () ->
  let path = Filename.temp_file "aa_fault_retry" ".log" in
  let j = or_fail (Journal.create ~fsync:Journal.Never ~path ~servers:2 ~capacity:cap ()) in
  let e =
    Engine.create ~journal:j ~journal_retries:2 ~retry_backoff_s:1e-6
      ~servers:2 ~capacity:cap ()
  in
  Failpoint.arm "journal.append" (Failpoint.Nth 1);
  (match expect_ok e "ADMIT power 4 0.5" with
  | Protocol.Admitted _ -> ()
  | r -> Alcotest.failf "unexpected %s" (Protocol.print_response r));
  Alcotest.(check bool) "not degraded" false (Engine.degraded e);
  Alcotest.(check int) "first attempt failed, retry landed" 2
    (Failpoint.hits "journal.append");
  Failpoint.disarm_all ();
  let _, entries = or_fail (Journal.load ~path) in
  Alcotest.(check int) "entry written exactly once" 1 (List.length entries);
  Journal.close j;
  Sys.remove path

let test_snapshot_failure_is_not_fatal () =
  with_faults @@ fun () ->
  let path = Filename.temp_file "aa_fault_snap" ".log" in
  let j = or_fail (Journal.create ~fsync:Journal.Never ~path ~servers:2 ~capacity:cap ()) in
  let e = Engine.create ~journal:j ~servers:2 ~capacity:cap () in
  ignore (expect_ok e "ADMIT power 4 0.5");
  Failpoint.arm "journal.rewrite" (Failpoint.Every 1);
  expect_err "journal" e "SNAPSHOT";
  Failpoint.disarm_all ();
  (* a failed compaction must not cost the engine its append capability *)
  ignore (expect_ok e "ADMIT power 2 0.5");
  (match expect_ok e "SNAPSHOT" with
  | Protocol.Snapshot_done { compacted; _ } ->
      Alcotest.(check bool) "compacts once the fault clears" true compacted
  | r -> Alcotest.failf "unexpected %s" (Protocol.print_response r));
  Journal.close j;
  Sys.remove path

(* ---------- the crash-at-every-failpoint recovery sweep ---------- *)

type state = { n : int; where : int array; allocs : float array; total : float }

let state_of e =
  let ol = Engine.online e in
  let n = Aa_core.Online.n_admitted ol in
  {
    n;
    where = Array.init n (Aa_core.Online.server_of ol);
    allocs = Array.init n (Aa_core.Online.alloc_of ol);
    total = Aa_core.Online.total_utility ol;
  }

let check_state msg a b =
  Alcotest.(check int) (msg ^ ": n_admitted") a.n b.n;
  Alcotest.(check (array int)) (msg ^ ": servers") a.where b.where;
  Array.iteri
    (fun i x ->
      Helpers.check_float ~eps:1e-9
        (Printf.sprintf "%s: alloc of %d" msg i)
        x b.allocs.(i))
    a.allocs;
  Helpers.check_float ~eps:1e-9 (msg ^ ": total utility") a.total b.total

let random_spec rng =
  match Rng.int rng 4 with
  | 0 ->
      Printf.sprintf "power %.17g %.17g"
        (Rng.uniform rng ~lo:0.5 ~hi:5.0)
        (Rng.uniform rng ~lo:0.3 ~hi:1.0)
  | 1 ->
      Printf.sprintf "log %.17g %.17g"
        (Rng.uniform rng ~lo:0.5 ~hi:5.0)
        (Rng.uniform rng ~lo:0.1 ~hi:2.0)
  | 2 ->
      Printf.sprintf "capped %.17g %.17g"
        (Rng.uniform rng ~lo:0.2 ~hi:4.0)
        (Rng.uniform rng ~lo:1.0 ~hi:cap)
  | _ -> Aa_io.Format_text.print_thread_spec (Helpers.plc_u rng)

(* Drive up to [steps] scripted requests into a journaled engine armed
   with a crash schedule. The run stops at the first simulated process
   death: a [Crash] escaping dispatch, or the engine reporting that its
   journal is gone (degraded / failed compaction) — with retries at 0
   either means the durable prefix ends here. Returns the number of
   ADMITs that were acknowledged before death. *)
let drive e rng steps =
  let acked = ref 0 in
  let active = ref [] in
  (try
     for step = 1 to steps do
       let line =
         if step mod 67 = 0 then "SNAPSHOT"
         else if !active = [] || Rng.float rng 1.0 < 0.5 then
           "ADMIT " ^ random_spec rng
         else begin
           let pick () = List.nth !active (Rng.int rng (List.length !active)) in
           match Rng.int rng 4 with
           | 0 | 1 -> Printf.sprintf "DEPART %d" (pick ())
           | 2 -> Printf.sprintf "UPDATE %d %s" (pick ()) (random_spec rng)
           | _ -> Printf.sprintf "QUERY %d" (pick ())
         end
       in
       match Engine.handle_line e line with
       | Some (Protocol.Admitted { id; _ }) ->
           incr acked;
           active := id :: !active
       | Some (Protocol.Departed { id }) ->
           active := List.filter (fun x -> x <> id) !active
       | Some (Protocol.Err { code; message }) -> (
           match Protocol.code_name code with
           | "degraded" | "journal" -> raise Exit
           | _ -> Alcotest.failf "step %d %S: %s" step line message)
       | Some _ | None -> ()
     done
   with
  | Exit -> ()
  | Failpoint.Crash _ -> ());
  !acked

let test_crash_at_every_failpoint () =
  with_faults @@ fun () ->
  let points =
    List.filter
      (fun n ->
        String.length n >= 7
        && (String.sub n 0 7 = "journal" || String.sub n 0 6 = "engine"))
      (Failpoint.registered ())
  in
  Alcotest.(check bool) "sweep covers the production points" true
    (List.length points >= 7);
  List.iter
    (fun point ->
      List.iter
        (fun k ->
          let msg = Printf.sprintf "%s nth:%d" point k in
          Failpoint.disarm_all ();
          let path = Filename.temp_file "aa_fault_sweep" ".log" in
          let j = or_fail (Journal.create ~path ~servers:3 ~capacity:cap ()) in
          let e =
            Engine.create ~journal:j ~journal_retries:0 ~retry_backoff_s:1e-6
              ~servers:3 ~capacity:cap ()
          in
          let rng = Rng.create ~seed:(Hashtbl.hash (point, k)) () in
          Failpoint.arm point (Failpoint.Nth k);
          let acked = drive e rng 300 in
          (* the process is dead; whatever reached the file is the truth *)
          Failpoint.disarm_all ();
          Journal.close j;
          let _, durable = or_fail (Journal.load ~path) in
          (* recovery must agree with a clean replay of the durable prefix *)
          let recovered =
            match Engine.of_journal ~fsync:Journal.Never ~path () with
            | Ok e2 -> e2
            | Error m -> Alcotest.failf "%s: recovery failed: %s" msg m
          in
          let clean = Engine.create ~servers:3 ~capacity:cap () in
          List.iteri
            (fun i ent ->
              match Engine.apply clean ent with
              | Ok () -> ()
              | Error m -> Alcotest.failf "%s: clean replay entry %d: %s" msg i m)
            durable;
          check_state msg (state_of clean) (state_of recovered);
          (* durability bound: every acknowledged ADMIT survived, and at
             most the single in-flight one may appear unacknowledged *)
          let n = Engine.n_admitted recovered in
          if n < acked || n > acked + 1 then
            Alcotest.failf "%s: %d admits acked but %d recovered" msg acked n;
          (match Engine.journal recovered with
          | Some j2 -> Journal.close j2
          | None -> ());
          Sys.remove path)
        [ 1; 3; 17 ])
    points

(* The sweep above drives one request at a time, which never opens a
   journal group — so the group-commit failpoints pass it vacuously.
   This variant feeds the same script through {!Engine.handle_batch} in
   bursts, the way a shard worker drains its queue, and tracks the
   burst in flight at the crash: its acks were withheld, but complete
   journal lines of the half-written group may legally survive.
   Returns [(acked, pending)] — ADMITs acknowledged before death, and
   ADMITs of the in-flight burst. *)
let drive_batch e rng steps =
  let acked = ref 0 and active = ref [] and pending = ref 0 in
  (try
     let step = ref 0 in
     while !step < steps do
       let burst = 2 + Rng.int rng 7 in
       (* ids usable by this burst: acked actives, minus burst-local
          departs (the engine applies in order, so a second DEPART of
          the same id inside one burst would be a script bug) *)
       let avail = ref !active in
       let reqs = ref [] in
       for _ = 1 to burst do
         incr step;
         let line =
           if !step mod 67 = 0 then "SNAPSHOT"
           else if !avail = [] || Rng.float rng 1.0 < 0.5 then
             "ADMIT " ^ random_spec rng
           else begin
             let pick () = List.nth !avail (Rng.int rng (List.length !avail)) in
             match Rng.int rng 4 with
             | 0 | 1 ->
                 let id = pick () in
                 avail := List.filter (fun x -> x <> id) !avail;
                 Printf.sprintf "DEPART %d" id
             | 2 -> Printf.sprintf "UPDATE %d %s" (pick ()) (random_spec rng)
             | _ -> Printf.sprintf "QUERY %d" (pick ())
           end
         in
         match Protocol.parse_request ~cap line with
         | Ok r -> reqs := r :: !reqs
         | Error r ->
             Alcotest.failf "script line %S rejected: %s" line
               (Protocol.print_response r)
       done;
       let reqs = List.rev !reqs in
       pending :=
         List.length
           (List.filter (function Protocol.Admit _ -> true | _ -> false) reqs);
       let resps = Engine.handle_batch e reqs in
       pending := 0;
       List.iter
         (fun resp ->
           match resp with
           | Protocol.Admitted { id; _ } ->
               incr acked;
               active := id :: !active
           | Protocol.Departed { id } ->
               active := List.filter (fun x -> x <> id) !active
           | Protocol.Err { code; message } -> (
               match Protocol.code_name code with
               | "degraded" | "journal" -> raise Exit
               | _ -> Alcotest.failf "batch step %d: %s" !step message)
           | _ -> ())
         resps
     done
   with
  | Exit -> ()
  | Failpoint.Crash _ -> ());
  (!acked, !pending)

let test_crash_at_group_commit_failpoints () =
  with_faults @@ fun () ->
  List.iter
    (fun point ->
      List.iter
        (fun k ->
          let msg = Printf.sprintf "%s nth:%d (batched)" point k in
          Failpoint.disarm_all ();
          let path = Filename.temp_file "aa_fault_group_sweep" ".log" in
          let j = or_fail (Journal.create ~path ~servers:3 ~capacity:cap ()) in
          let e =
            Engine.create ~journal:j ~journal_retries:0 ~retry_backoff_s:1e-6
              ~servers:3 ~capacity:cap ()
          in
          let rng = Rng.create ~seed:(Hashtbl.hash (point, k)) () in
          Failpoint.arm point (Failpoint.Nth k);
          let acked, pending = drive_batch e rng 300 in
          (* the batched path must actually reach the group failpoint —
             a vacuous pass here would hide a regression in batching *)
          Alcotest.(check int) (msg ^ ": failpoint fired") 1
            (Failpoint.fired point);
          Failpoint.disarm_all ();
          Journal.close j;
          let _, durable = or_fail (Journal.load ~path) in
          let recovered =
            match Engine.of_journal ~fsync:Journal.Never ~path () with
            | Ok e2 -> e2
            | Error m -> Alcotest.failf "%s: recovery failed: %s" msg m
          in
          let clean = Engine.create ~servers:3 ~capacity:cap () in
          List.iteri
            (fun i ent ->
              match Engine.apply clean ent with
              | Ok () -> ()
              | Error m -> Alcotest.failf "%s: clean replay entry %d: %s" msg i m)
            durable;
          check_state msg (state_of clean) (state_of recovered);
          (* acked-durable / unacked-absent: every acknowledged ADMIT
             survived, and only the crashed burst's may appear beyond *)
          let n = Engine.n_admitted recovered in
          if n < acked then
            Alcotest.failf "%s: %d admits acked but only %d recovered" msg
              acked n;
          if n > acked + pending then
            Alcotest.failf
              "%s: %d recovered admits exceed %d acked + %d in flight" msg n
              acked pending;
          (match Engine.journal recovered with
          | Some j2 -> Journal.close j2
          | None -> ());
          Sys.remove path)
        [ 1; 2; 5 ])
    [ "journal.group.append"; "journal.group.fsync" ]

(* ---------- the daemon's fault surface ---------- *)

let serve_bin =
  List.find_opt Sys.file_exists
    [ "../bin/aa_serve.exe"; "_build/default/bin/aa_serve.exe" ]
  |> Option.value ~default:"../bin/aa_serve.exe"

let run_serve ?env ~expect args input =
  Out_channel.with_open_text "fault_serve_in.txt" (fun oc ->
      Out_channel.output_string oc input);
  let cmd = Filename.quote_command serve_bin args in
  let cmd = match env with None -> cmd | Some kv -> kv ^ " " ^ cmd in
  let code =
    Sys.command
      (cmd ^ " < fault_serve_in.txt > fault_serve_out.txt 2> fault_serve_err.txt")
  in
  let out = In_channel.with_open_text "fault_serve_out.txt" In_channel.input_all in
  let err = In_channel.with_open_text "fault_serve_err.txt" In_channel.input_all in
  if code <> expect then
    Alcotest.failf "aa_serve exited %d (want %d); stderr:\n%s" code expect err;
  (out, err)

let count_lines ~prefix s =
  String.split_on_char '\n' s
  |> List.filter (fun l ->
         String.length l >= String.length prefix
         && String.sub l 0 (String.length prefix) = prefix)
  |> List.length

let test_serve_crash_exits_70 () =
  let out, err =
    run_serve ~expect:70
      [ "--servers"; "2"; "--capacity"; "10"; "--faults"; "engine.dispatch=nth:2" ]
      "ADMIT power 4 0.5\nADMIT power 2 0.5\nSTATS\n"
  in
  Alcotest.(check int) "first request answered" 1 (count_lines ~prefix:"OK" out);
  if not (contains ~needle:"injected crash at failpoint engine.dispatch" err)
  then Alcotest.failf "crash not reported on stderr: %s" err

let test_serve_faults_from_env () =
  let _, err =
    run_serve ~env:"AA_FAULTS=engine.dispatch=nth:1" ~expect:70
      [ "--servers"; "2"; "--capacity"; "10" ]
      "STATS\n"
  in
  if not (contains ~needle:"engine.dispatch" err) then
    Alcotest.failf "env-armed crash not reported: %s" err

let test_serve_flag_errors () =
  let _, err =
    run_serve ~expect:1
      [ "--faults"; "frob" ]
      ""
  in
  if not (contains ~needle:"--faults" err) then
    Alcotest.failf "bad --faults not diagnosed: %s" err;
  let _, err = run_serve ~expect:1 [ "--fsync"; "frob" ] "" in
  if not (contains ~needle:"--fsync" err) then
    Alcotest.failf "bad --fsync not diagnosed: %s" err

let test_serve_refuses_journal_clobber () =
  let path = Filename.temp_file "aa_fault_serve" ".log" in
  ignore
    (run_serve ~expect:0
       [ "-m"; "2"; "-C"; "10"; "--journal"; path; "--fsync"; "never" ]
       "ADMIT power 4 0.5\n");
  (* a second fresh run against the same journal must refuse, not wipe *)
  let _, err =
    run_serve ~expect:1
      [ "-m"; "2"; "-C"; "10"; "--journal"; path; "--fsync"; "never" ]
      "ADMIT power 4 0.5\n"
  in
  if not (contains ~needle:"--replay" err) then
    Alcotest.failf "clobber refusal should mention --replay: %s" err;
  (* and --replay recovers it *)
  let out, _ =
    run_serve ~expect:0
      [ "--journal"; path; "--replay"; "--fsync"; "never" ]
      "QUERY 0\n"
  in
  Alcotest.(check int) "recovered thread answers" 1
    (count_lines ~prefix:"OK query" out);
  Sys.remove path

let () =
  Alcotest.run "fault"
    [
      ( "failpoint",
        [
          Alcotest.test_case "off switch" `Quick test_off_switch;
          Alcotest.test_case "nth schedule" `Quick test_nth_schedule;
          Alcotest.test_case "every schedule" `Quick test_every_schedule;
          Alcotest.test_case "bernoulli replays" `Quick test_bernoulli_replays;
          Alcotest.test_case "crash_if" `Quick test_crash_if;
          Alcotest.test_case "spec parsing" `Quick test_spec_parsing;
          Alcotest.test_case "registered points" `Quick
            test_registered_lists_production_points;
        ] );
      ("crc32", [ Alcotest.test_case "known answer" `Quick test_crc32_known_answer ]);
      ( "journal",
        [
          Alcotest.test_case "create refuses clobber" `Quick
            test_create_refuses_clobber;
          Alcotest.test_case "compact failure keeps appending" `Quick
            test_compact_failure_keeps_appending;
          Alcotest.test_case "torn tail cannot masquerade" `Quick
            test_torn_tail_cannot_masquerade;
          Alcotest.test_case "v1 read compat + upgrade" `Quick
            test_v1_read_compat_and_upgrade;
          Alcotest.test_case "append failure repairs tail" `Quick
            test_append_failure_repairs_tail;
          Alcotest.test_case "fsync policy strings" `Quick
            test_fsync_policy_strings;
          Alcotest.test_case "group commit amortizes fsyncs" `Quick
            test_group_commit_amortizes_fsyncs;
        ] );
      ( "engine",
        [
          Alcotest.test_case "cap tolerance boundaries" `Quick
            test_cap_tolerance_boundaries;
          Alcotest.test_case "degraded lifecycle" `Quick test_degraded_lifecycle;
          Alcotest.test_case "transient fault absorbed" `Quick
            test_transient_fault_absorbed_by_retry;
          Alcotest.test_case "snapshot failure not fatal" `Quick
            test_snapshot_failure_is_not_fatal;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "crash at every failpoint" `Quick
            test_crash_at_every_failpoint;
          Alcotest.test_case "crash at group-commit failpoints" `Quick
            test_crash_at_group_commit_failpoints;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "crash exits 70" `Quick test_serve_crash_exits_70;
          Alcotest.test_case "AA_FAULTS env" `Quick test_serve_faults_from_env;
          Alcotest.test_case "flag errors" `Quick test_serve_flag_errors;
          Alcotest.test_case "journal clobber refused" `Quick
            test_serve_refuses_journal_clobber;
        ] );
    ]
