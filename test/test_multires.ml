open Aa_numerics
open Aa_utility
open Aa_core

(* helper: build a thread given server capacities *)
let thread ~capacities ?(shape = `Linear 1.0) demand =
  let rc =
    Array.to_seqi demand
    |> Seq.filter_map (fun (r, d) -> if d > 0.0 then Some (capacities.(r) /. d) else None)
    |> Seq.fold_left Float.min Float.infinity
  in
  let rate_utility =
    match shape with
    | `Linear s -> Utility.Shapes.linear ~cap:rc ~slope:s
    | `Capped (s, frac) -> Utility.Shapes.capped_linear ~cap:rc ~slope:s ~knee:(frac *. rc)
    | `Sqrt c -> Utility.Shapes.power ~cap:rc ~coeff:c ~beta:0.5
  in
  { Multires.rate_utility; demand }

let caps2 = [| 10.0; 4.0 |]

let test_create_validation () =
  Alcotest.check_raises "no consumption"
    (Invalid_argument "Multires.create: thread 0 consumes nothing") (fun () ->
      ignore
        (Multires.create ~servers:1 ~capacities:caps2
           [| thread ~capacities:caps2 [| 0.0; 0.0 |] |]));
  Alcotest.check_raises "demand length"
    (Invalid_argument "Multires.create: thread 0 demand length mismatch") (fun () ->
      ignore
        (Multires.create ~servers:1 ~capacities:caps2 [| thread ~capacities:caps2 [| 1.0 |] |]))

let test_rate_cap () =
  let th = thread ~capacities:caps2 [| 1.0; 1.0 |] in
  let t = Multires.create ~servers:1 ~capacities:caps2 [| th |] in
  (* bottleneck is resource 1: 4/1 *)
  Helpers.check_float "rate cap" 4.0 (Multires.rate_cap t th)

let test_single_resource_matches_plain_aa () =
  (* R = 1, unit demands: must coincide with the single-resource machinery *)
  let capacities = [| 10.0 |] in
  let mk shape = thread ~capacities ~shape [| 1.0 |] in
  let threads = [| mk (`Capped (2.0, 0.3)); mk (`Capped (1.0, 0.4)); mk (`Linear 0.5) |] in
  let t = Multires.create ~servers:2 ~capacities threads in
  let r = Multires.solve t in
  let inst =
    Instance.create ~servers:2 ~capacity:10.0
      (Array.map (fun (th : Multires.thread) -> th.rate_utility) threads)
  in
  let so = Superopt.compute inst in
  Helpers.check_float ~eps:1e-6 "bound = single-resource F^" so.utility r.bound;
  let plain =
    Assignment.utility inst (Refine.per_server inst (Algo2.solve inst))
  in
  Helpers.check_float ~eps:1e-6 "same utility as Algo2+refill" plain r.total

let test_superopt_bound_dominates_solve () =
  let capacities = [| 10.0 |] in
  let mk shape = thread ~capacities ~shape [| 1.0 |] in
  let threads = [| mk (`Capped (2.0, 0.3)); mk (`Capped (1.0, 0.4)); mk (`Linear 0.5) |] in
  let t = Multires.create ~servers:2 ~capacities threads in
  Alcotest.(check int) "n_threads" 3 (Multires.n_threads t);
  let r = Multires.solve t in
  let bound = Multires.superopt_bound t in
  Helpers.check_le "solve <= superopt_bound" r.total
    (bound +. (1e-6 *. Float.max 1.0 bound))

let test_allocate_server_respects_capacities () =
  let threads =
    [|
      thread ~capacities:caps2 ~shape:(`Sqrt 3.0) [| 1.0; 0.5 |];
      thread ~capacities:caps2 ~shape:(`Linear 1.0) [| 2.0; 0.1 |];
      thread ~capacities:caps2 ~shape:(`Capped (2.0, 0.5)) [| 0.5; 1.0 |];
    |]
  in
  let t = Multires.create ~servers:1 ~capacities:caps2 threads in
  let a = Multires.allocate_server t [ 0; 1; 2 ] in
  for r = 0 to 1 do
    Helpers.check_le "usage within capacity" a.usage.(r) (caps2.(r) +. 1e-9)
  done;
  Array.iter (fun rate -> Helpers.check_ge "nonnegative rate" rate 0.0) a.rates

let test_allocate_server_exhausts_bottleneck () =
  (* one linear thread, no competition: rate must reach its cap *)
  let th = thread ~capacities:caps2 [| 1.0; 1.0 |] in
  let t = Multires.create ~servers:1 ~capacities:caps2 [| th |] in
  let a = Multires.allocate_server t [ 0 ] in
  Helpers.check_float ~eps:1e-9 "rate at cap" 4.0 a.rates.(0);
  Helpers.check_float ~eps:1e-9 "bottleneck exhausted" 4.0 a.usage.(1)

let test_complementary_demands_pack_together () =
  (* a CPU-heavy and a memory-heavy thread complement each other: one
     server can nearly satisfy both, which beats splitting them only if
     the allocator exploits the complementarity *)
  let capacities = [| 10.0; 10.0 |] in
  let cpu = thread ~capacities ~shape:(`Linear 1.0) [| 1.0; 0.1 |] in
  let mem = thread ~capacities ~shape:(`Linear 1.0) [| 0.1; 1.0 |] in
  let t = Multires.create ~servers:1 ~capacities [| cpu; mem |] in
  let a = Multires.allocate_server t [ 0; 1 ] in
  (* symmetric optimum: t1 = t2 = 10/1.1 = 9.09 each, total 18.18 *)
  Helpers.check_ge "exploits complementarity" a.utility 18.0

let test_solve_feasible_and_bounded () =
  let rng = Rng.create ~seed:3 () in
  for _ = 1 to 20 do
    let nr = 1 + Rng.int rng 3 in
    let capacities = Array.init nr (fun _ -> Rng.uniform rng ~lo:4.0 ~hi:20.0) in
    let n = 1 + Rng.int rng 8 in
    let threads =
      Array.init n (fun _ ->
          let demand =
            Array.init nr (fun _ -> if Rng.bool rng then Rng.uniform rng ~lo:0.1 ~hi:2.0 else 0.0)
          in
          let demand = if Array.exists (fun d -> d > 0.0) demand then demand
            else (demand.(0) <- 1.0; demand)
          in
          let shape =
            match Rng.int rng 3 with
            | 0 -> `Linear (Rng.uniform rng ~lo:0.2 ~hi:3.0)
            | 1 -> `Capped (Rng.uniform rng ~lo:0.2 ~hi:3.0, Rng.uniform rng ~lo:0.2 ~hi:0.9)
            | _ -> `Sqrt (Rng.uniform rng ~lo:0.5 ~hi:4.0)
          in
          thread ~capacities ~shape demand)
    in
    let t = Multires.create ~servers:(1 + Rng.int rng 3) ~capacities threads in
    let r = Multires.solve t in
    Helpers.check_le "total <= bound" r.total (r.bound +. (1e-6 *. Float.max 1.0 r.bound));
    (* verify per-server resource feasibility from rates *)
    let usage = Array.init t.servers (fun _ -> Array.make nr 0.0) in
    Array.iteri
      (fun i j ->
        Array.iteri
          (fun rr d -> usage.(j).(rr) <- usage.(j).(rr) +. (r.rates.(i) *. d))
          t.threads.(i).demand)
      r.server;
    Array.iter
      (fun u ->
        Array.iteri
          (fun rr used -> Helpers.check_le "within capacity" used (capacities.(rr) +. 1e-6))
          u)
      usage
  done

let test_solve_beats_round_robin_on_average () =
  (* smooth utilities make placement forgiving, so compare means, and
     include high-peak capped threads where placement genuinely matters *)
  let rng = Rng.create ~seed:11 () in
  let sum_solve = ref 0.0 and sum_rr = ref 0.0 in
  for _ = 1 to 25 do
    let capacities = [| 10.0; 10.0 |] in
    let threads =
      Array.init 10 (fun k ->
          let demand = [| Rng.uniform rng ~lo:0.05 ~hi:1.5; Rng.uniform rng ~lo:0.05 ~hi:1.5 |] in
          let shape =
            if k < 3 then `Capped (Rng.uniform rng ~lo:2.0 ~hi:6.0, 0.9)
            else `Sqrt (Rng.uniform rng ~lo:0.5 ~hi:4.0)
          in
          thread ~capacities ~shape demand)
    in
    let t = Multires.create ~servers:3 ~capacities threads in
    sum_solve := !sum_solve +. (Multires.solve t).total;
    sum_rr := !sum_rr +. (Multires.round_robin t).total
  done;
  Helpers.check_ge "at least as good on average" !sum_solve (0.99 *. !sum_rr)

let () =
  Alcotest.run "multires"
    [
      ( "model",
        [
          Alcotest.test_case "validation" `Quick test_create_validation;
          Alcotest.test_case "rate cap" `Quick test_rate_cap;
          Alcotest.test_case "R=1 equivalence" `Quick test_single_resource_matches_plain_aa;
          Alcotest.test_case "superopt bound dominates" `Quick test_superopt_bound_dominates_solve;
        ] );
      ( "allocation",
        [
          Alcotest.test_case "respects capacities" `Quick test_allocate_server_respects_capacities;
          Alcotest.test_case "exhausts bottleneck" `Quick test_allocate_server_exhausts_bottleneck;
          Alcotest.test_case "complementary demands" `Quick test_complementary_demands_pack_together;
        ] );
      ( "solve",
        [
          Alcotest.test_case "feasible and bounded" `Quick test_solve_feasible_and_bounded;
          Alcotest.test_case "beats round robin on average" `Quick test_solve_beats_round_robin_on_average;
        ] );
    ]
