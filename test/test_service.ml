(* Tests for the aa_service subsystem: wire protocol, metrics, journal,
   engine dispatch, crash recovery at every request boundary, the
   malformed-input fuzz loop, and the aa_serve daemon binary. *)

open Aa_numerics
open Aa_utility
open Aa_core
open Aa_service

let cap = 10.0

(* ---------- protocol ---------- *)

let parse s = Protocol.parse_request ~cap s

let check_err expect s =
  match parse s with
  | Ok _ -> Alcotest.failf "accepted %S" s
  | Error (Protocol.Err { code; _ }) ->
      Alcotest.(check string) s expect (Protocol.code_name code)
  | Error r -> Alcotest.failf "%S: non-Err rejection %s" s (Protocol.print_response r)

let test_request_roundtrip () =
  let reqs =
    [
      Protocol.Admit (Utility.Shapes.power ~cap ~coeff:4.0 ~beta:0.5);
      Protocol.Admit (Utility.Shapes.saturating ~cap ~limit:8.0 ~halfway:2.0);
      Protocol.Admit (Utility.Shapes.linear ~cap ~slope:1.5);
      Protocol.Depart 3;
      Protocol.Update (2, Utility.Shapes.log_utility ~cap ~coeff:3.0 ~rate:1.0);
      Protocol.Query 7;
      Protocol.Stats;
      Protocol.Snapshot;
      Protocol.Rebalance;
      Protocol.Trace;
      Protocol.Slow;
    ]
  in
  List.iter
    (fun r ->
      let wire = Protocol.print_request r in
      match parse wire with
      | Error _ -> Alcotest.failf "rejected own output %S" wire
      | Ok r2 -> Alcotest.(check string) wire wire (Protocol.print_request r2))
    reqs

let test_request_errors () =
  List.iter
    (fun (code, s) -> check_err code s)
    [
      ("bad-request", "");
      ("bad-request", "FROB 1");
      ("bad-request", "admit power 4 0.5");
      ("bad-request", "ADMIT");
      ("bad-request", "DEPART");
      ("bad-request", "DEPART x");
      ("bad-request", "DEPART 1 2");
      ("bad-request", "QUERY");
      ("bad-request", "STATS now");
      ("bad-request", "TRACE all");
      ("bad-request", "SLOW now");
      ("bad-request", "SNAPSHOT --force");
      ("bad-request", "UPDATE 0");
      ("bad-request", "UPDATE x linear 1");
      ("bad-spec", "ADMIT wat 1");
      ("bad-spec", "ADMIT power x 1");
      ("bad-spec", "ADMIT plc 0 0 1");
      ("bad-spec", "UPDATE 0 plc 5 1 2 0");
    ]

let test_response_print () =
  Alcotest.(check string) "admit" "OK admit id 4 server 1"
    (Protocol.print_response (Protocol.Admitted { id = 4; server = 1 }));
  Alcotest.(check string) "newlines flattened" "ERR bad-request a b"
    (Protocol.print_response
       (Protocol.Err { code = Protocol.Bad_request; message = "a\nb" }));
  Alcotest.(check string) "empty stats" "OK stats"
    (Protocol.print_response (Protocol.Stats_report []));
  Alcotest.(check string) "stats kvs" "OK stats a=1 b=2"
    (Protocol.print_response (Protocol.Stats_report [ ("a", "1"); ("b", "2") ]));
  Alcotest.(check string) "trace dump is one line"
    "OK trace events 2 [{\"ph\":\"B\"} {\"ph\":\"E\"}]"
    (Protocol.print_response
       (Protocol.Trace_dump { events = 2; json = "[{\"ph\":\"B\"}\n{\"ph\":\"E\"}]" }));
  Alcotest.(check string) "slow dump" "OK slow count 2 [{},{}]"
    (Protocol.print_response (Protocol.Slow_dump { count = 2; json = "[{},{}]" }))

let prop_parse_total =
  QCheck2.Test.make ~name:"parse_request is total on arbitrary input" ~count:500
    QCheck2.Gen.(string_size ~gen:printable (int_range 0 60))
    (fun s ->
      match Protocol.parse_request ~cap s with Ok _ -> true | Error _ -> true)

(* ---------- metrics ---------- *)

let test_histogram_quantiles () =
  let h = Metrics.Histogram.create () in
  Helpers.check_float "empty" 0.0 (Metrics.Histogram.quantile h 0.5);
  for i = 1 to 1000 do
    (* 0.1 ms .. 100 ms, uniformly *)
    Metrics.Histogram.add h (float_of_int i *. 1e-4)
  done;
  Alcotest.(check int) "count" 1000 (Metrics.Histogram.count h);
  let check q expect =
    let got = Metrics.Histogram.quantile h q in
    if Float.abs (got -. expect) > 0.15 *. expect then
      Alcotest.failf "q%g: got %g, want ~%g (log-bucket error should be <15%%)" q got
        expect
  in
  check 0.5 0.05;
  check 0.95 0.095;
  check 0.99 0.099

let test_histogram_extremes () =
  let h = Metrics.Histogram.create () in
  Metrics.Histogram.add h 0.0;
  Metrics.Histogram.add h 1e-12;
  Metrics.Histogram.add h 1e9;
  Alcotest.(check int) "count" 3 (Metrics.Histogram.count h);
  Helpers.check_le "tiny stays tiny" (Metrics.Histogram.quantile h 0.01) 2e-9;
  Helpers.check_ge "huge clamps to the last bucket" (Metrics.Histogram.quantile h 0.99)
    100.0

let test_metrics_report () =
  let m = Metrics.create () in
  Metrics.record m ~kind:"admit" ~ok:true ~latency:1e-4;
  Metrics.record m ~kind:"admit" ~ok:true ~latency:2e-4;
  Metrics.record m ~kind:"query" ~ok:false ~latency:1e-5;
  Metrics.note_gap m 0.97;
  Alcotest.(check int) "requests" 3 (Metrics.requests m);
  let r = Metrics.report m in
  let get k =
    match List.assoc_opt k r with
    | Some v -> v
    | None -> Alcotest.failf "missing key %s" k
  in
  Alcotest.(check string) "ok" "2" (get "ok");
  Alcotest.(check string) "err" "1" (get "err");
  Alcotest.(check string) "admit.ok" "2" (get "admit.ok");
  Alcotest.(check string) "admit.err" "0" (get "admit.err");
  Alcotest.(check string) "query.err" "1" (get "query.err");
  Alcotest.(check string) "gap" "0.970000" (get "rebalance.gap");
  ignore (get "p50");
  ignore (get "p95");
  ignore (get "p99");
  ignore (get "admit.p99")

(* ---------- journal ---------- *)

let u_pow = Utility.Shapes.power ~cap ~coeff:4.0 ~beta:0.5
let u_log = Utility.Shapes.log_utility ~cap ~coeff:3.0 ~rate:1.0

let or_fail = function Ok v -> v | Error e -> Alcotest.fail e
let unit_or_fail (r : (unit, string) result) = or_fail r

let test_journal_roundtrip () =
  let path = Filename.temp_file "aa_journal" ".log" in
  let entries =
    [
      Journal.Admit u_pow;
      Journal.Admit u_log;
      Journal.Depart 0;
      Journal.Update (1, u_pow);
      Journal.Place { id = 0; server = 1; active = false; u = u_pow };
      Journal.Place { id = 1; server = 0; active = true; u = u_log };
    ]
  in
  let j = or_fail (Journal.create ~path ~servers:2 ~capacity:cap ()) in
  List.iter (fun e -> unit_or_fail (Journal.append j e)) entries;
  Journal.close j;
  let h, got = or_fail (Journal.load ~path) in
  Alcotest.(check int) "servers" 2 h.Journal.servers;
  Helpers.check_float "capacity" cap h.Journal.capacity;
  Alcotest.(check (list string)) "entries survive the round trip"
    (List.map Journal.print_entry entries)
    (List.map Journal.print_entry got);
  Sys.remove path

let test_journal_torn_tail () =
  let path = Filename.temp_file "aa_journal" ".log" in
  let j = or_fail (Journal.create ~path ~servers:2 ~capacity:cap ()) in
  unit_or_fail (Journal.append j (Journal.Admit u_pow));
  Journal.close j;
  (* simulate a crash mid-append: a partial final line, no newline *)
  let oc = Out_channel.open_gen [ Open_append; Open_wronly; Open_text ] 0o644 path in
  Out_channel.output_string oc "admit pow";
  Out_channel.close oc;
  (match Journal.load ~path with
  | Error e -> Alcotest.failf "torn tail not tolerated: %s" e
  | Ok (_, got) -> Alcotest.(check int) "torn line dropped" 1 (List.length got));
  (* the recovery open rewrites the file, so appends after it are clean *)
  let j, got = or_fail (Journal.append_to ~path ()) in
  Alcotest.(check int) "recovered entries" 1 (List.length got);
  unit_or_fail (Journal.append j (Journal.Depart 0));
  Journal.close j;
  let _, got = or_fail (Journal.load ~path) in
  Alcotest.(check (list string)) "clean after reopen"
    [ Journal.print_entry (Journal.Admit u_pow); "depart 0" ]
    (List.map Journal.print_entry got);
  Sys.remove path

let test_journal_rejects_garbage () =
  let path = Filename.temp_file "aa_journal" ".log" in
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc "not a journal\n");
  (match Journal.load ~path with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad header accepted");
  (* a malformed line that is NOT a torn tail (newline-terminated) is an error *)
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc
        "aa-journal 1 servers 2 capacity 10\nfrob 1\nadmit linear 1\n");
  (match Journal.load ~path with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "mid-file garbage accepted");
  (match Journal.load ~path:"/nonexistent/dir/j.log" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing file loaded");
  (match Journal.parse_entry ~cap "  # comment only" with
  | Ok None -> ()
  | Ok (Some _) | Error _ -> Alcotest.fail "comment line should parse to None");
  Sys.remove path

(* ---------- engine ---------- *)

let send e line =
  match Engine.handle_line e line with
  | Some r -> r
  | None -> Alcotest.failf "no response to %S" line

let expect_ok e line =
  match send e line with
  | Protocol.Err { message; _ } -> Alcotest.failf "%S failed: %s" line message
  | r -> r

let expect_err code e line =
  match send e line with
  | Protocol.Err { code = c; _ } ->
      Alcotest.(check string) line code (Protocol.code_name c)
  | r -> Alcotest.failf "%S succeeded: %s" line (Protocol.print_response r)

let test_engine_session () =
  let e = Engine.create ~servers:2 ~capacity:cap () in
  (match expect_ok e "ADMIT capped 1 10" with
  | Protocol.Admitted { id; _ } -> Alcotest.(check int) "first id" 0 id
  | r -> Alcotest.failf "unexpected %s" (Protocol.print_response r));
  ignore (expect_ok e "ADMIT capped 1 10");
  (* two identical full-capacity threads spread across both servers *)
  Helpers.check_float "utility" 20.0 (Engine.total_utility e);
  (match expect_ok e "QUERY 0" with
  | Protocol.Thread_info { alloc; value; active; _ } ->
      Helpers.check_float "alloc" 10.0 alloc;
      Helpers.check_float "value" 10.0 value;
      Alcotest.(check bool) "active" true active
  | r -> Alcotest.failf "unexpected %s" (Protocol.print_response r));
  (match expect_ok e "REBALANCE" with
  | Protocol.Rebalance_report { online; offline; gap } ->
      Helpers.check_float "online" 20.0 online;
      Helpers.check_float "offline" 20.0 offline;
      Helpers.check_float "gap" 1.0 gap
  | r -> Alcotest.failf "unexpected %s" (Protocol.print_response r));
  ignore (expect_ok e "DEPART 0");
  Alcotest.(check int) "one active" 1 (Engine.n_active e);
  (match expect_ok e "QUERY 0" with
  | Protocol.Thread_info { alloc; active; _ } ->
      Helpers.check_float "departed holds nothing" 0.0 alloc;
      Alcotest.(check bool) "inactive" false active
  | r -> Alcotest.failf "unexpected %s" (Protocol.print_response r));
  match expect_ok e "STATS" with
  | Protocol.Stats_report kvs ->
      let get k =
        match List.assoc_opt k kvs with
        | Some v -> v
        | None -> Alcotest.failf "missing stats key %s" k
      in
      Alcotest.(check string) "admitted" "2" (get "admitted");
      Alcotest.(check string) "active" "1" (get "active");
      Alcotest.(check string) "admit.ok" "2" (get "admit.ok");
      Alcotest.(check string) "rebalance gap" "1.000000" (get "rebalance.gap")
  | r -> Alcotest.failf "unexpected %s" (Protocol.print_response r)

let test_engine_errors () =
  let e = Engine.create ~servers:2 ~capacity:cap () in
  expect_err "bad-spec" e "ADMIT plc 0 0 5 5";
  (* a plc spec carrying the wrong domain cap *)
  expect_err "no-thread" e "DEPART 0";
  expect_err "no-thread" e "QUERY 3";
  ignore (expect_ok e "ADMIT linear 1");
  ignore (expect_ok e "DEPART 0");
  expect_err "no-thread" e "DEPART 0";
  expect_err "no-thread" e "UPDATE 0 linear 2";
  expect_err "bad-request" e "NOPE";
  expect_err "bad-request" e "DEPART many";
  (* rebalancing an empty active set is fine *)
  match expect_ok e "REBALANCE" with
  | Protocol.Rebalance_report { gap; _ } -> Helpers.check_float "gap" 1.0 gap
  | r -> Alcotest.failf "unexpected %s" (Protocol.print_response r)

let test_engine_rebalance_gap () =
  (* an adversarial arrival order the greedy placer handles suboptimally:
     the REBALANCE gap must report online <= offline and stay sane *)
  let rng = Rng.create ~seed:11 () in
  let e = Engine.create ~servers:3 ~capacity:cap () in
  for _ = 1 to 18 do
    let spec = Aa_io.Format_text.print_thread_spec (Helpers.plc_u rng) in
    ignore (expect_ok e ("ADMIT " ^ spec))
  done;
  match expect_ok e "REBALANCE" with
  | Protocol.Rebalance_report { online; offline; gap } ->
      Helpers.check_ge "online positive" online 0.0;
      Helpers.check_ge "some quality" gap 0.5;
      Helpers.check_float ~eps:1e-9 "gap consistent" (online /. offline) gap
  | r -> Alcotest.failf "unexpected %s" (Protocol.print_response r)

let test_engine_policy_and_drift_stats () =
  let e = Engine.create ~servers:2 ~capacity:cap () in
  ignore (expect_ok e "ADMIT linear 1");
  ignore (expect_ok e "ADMIT linear 1");
  (match expect_ok e "STATS" with
  | Protocol.Stats_report kvs ->
      let get k =
        match List.assoc_opt k kvs with
        | Some v -> v
        | None -> Alcotest.failf "STATS missing %s" k
      in
      Alcotest.(check string) "policy" "incremental" (get "policy");
      Alcotest.(check string) "no auto re-solves" "0" (get "incremental.resolves");
      Alcotest.(check bool) "splices counted" true
        (int_of_string (get "incremental.splices") >= 2);
      Alcotest.(check bool) "drift bound exported" true (get "drift_bound" <> "")
  | r -> Alcotest.failf "unexpected %s" (Protocol.print_response r));
  Alcotest.(check bool) "policy accessor" true (Engine.policy e = Online.Incremental);
  (* a Full-policy engine reaches the identical state *)
  let ef = Engine.create ~policy:Online.Full ~servers:2 ~capacity:cap () in
  ignore (expect_ok ef "ADMIT linear 1");
  ignore (expect_ok ef "ADMIT linear 1");
  Helpers.check_float "bit-identical totals" (Engine.total_utility ef)
    (Engine.total_utility e);
  (* REBALANCE re-certifies the published drift bound; this placement is
     offline-optimal, so the certificate closes completely *)
  ignore (expect_ok e "REBALANCE");
  Helpers.check_float ~eps:1e-9 "bound closed by rebalance" 0.0 (Engine.drift_bound e)

let test_engine_auto_policy_replay () =
  let path = Filename.temp_file "aa_auto" ".log" in
  let policy = Online.Auto { frac = 0.9 } in
  let j = or_fail (Journal.create ~path ~servers:2 ~capacity:cap ()) in
  let e = Engine.create ~journal:j ~policy ~servers:2 ~capacity:cap () in
  (* a steep full-capacity arrival starves a resident, and a departure
     strands a server: the decayed-value trigger re-solves and migrates *)
  ignore (expect_ok e "ADMIT capped 1 10");
  ignore (expect_ok e "ADMIT capped 1 10");
  ignore (expect_ok e "ADMIT capped 2 10");
  ignore (expect_ok e "DEPART 1");
  Alcotest.(check bool) "auto re-solved" true (Engine.resolves e >= 1);
  Helpers.check_float "regret recovered" 30.0 (Engine.total_utility e);
  (* recovery under the same policy replays the same re-solve points:
     counts, placements and totals all reproduce *)
  (match Engine.of_journal ~policy ~path () with
  | Error msg -> Alcotest.failf "replay: %s" msg
  | Ok e2 ->
      Alcotest.(check int) "replayed re-solves" (Engine.resolves e) (Engine.resolves e2);
      Helpers.check_float "replayed total" (Engine.total_utility e)
        (Engine.total_utility e2);
      let ol = Engine.online e and ol2 = Engine.online e2 in
      for i = 0 to Engine.n_admitted e - 1 do
        Alcotest.(check int)
          (Printf.sprintf "server of %d" i)
          (Online.server_of ol i) (Online.server_of ol2 i)
      done);
  Journal.close j;
  Sys.remove path

let test_engine_slow_verb () =
  let module Rctx = Aa_obs.Rctx in
  Rctx.slow_clear ();
  Rctx.set_slow_ms 0.0;
  Fun.protect
    ~finally:(fun () ->
      Rctx.set_slow_ms (-1.0);
      Rctx.slow_clear ())
    (fun () ->
      let e = Engine.create ~servers:2 ~capacity:cap () in
      (match Engine.handle e Protocol.Slow with
      | Protocol.Slow_dump { count = 0; json = "[]" } -> ()
      | Protocol.Slow_dump { count; json } ->
          Alcotest.failf "expected an empty dump, got count %d json %s" count json
      | r -> Alcotest.failf "unexpected %s" (Protocol.print_response r));
      (* a request dispatched under a context and finished lands in the
         keep-list (threshold 0 captures everything) *)
      let c = Rctx.create ~kind:"admit" ~conn:0 in
      (match Engine.handle_batch ~ctxs:[| Some c |] e [ Protocol.Admit u_pow ] with
      | [ Protocol.Admitted _ ] -> ()
      | rs ->
          Alcotest.failf "unexpected batch: %s"
            (String.concat " / " (List.map Protocol.print_response rs)));
      ignore (Rctx.finish c ~outcome:"ok");
      match Engine.handle e Protocol.Slow with
      | Protocol.Slow_dump { count; json } ->
          Alcotest.(check int) "captured" 1 count;
          Alcotest.(check bool) "phase spans kept" true (Helpers.contains json "validate");
          Alcotest.(check bool) "kind recorded" true (Helpers.contains json "admit")
      | r -> Alcotest.failf "unexpected %s" (Protocol.print_response r))

let test_engine_coarsen_interval () =
  let e = Engine.create ~servers:2 ~capacity:cap ~coarsen_eps:0.25 () in
  Alcotest.(check bool)
    "no interval before REBALANCE" true
    (Engine.utility_interval e = None);
  for _ = 1 to 6 do
    ignore (expect_ok e "ADMIT power 2 0.5")
  done;
  (match expect_ok e "REBALANCE" with
  | Protocol.Rebalance_report { offline; _ } -> (
      match Engine.utility_interval e with
      | None -> Alcotest.fail "interval missing after REBALANCE"
      | Some (lo, hi, alpha) ->
          (* the exact utility of the coarse-solved assignment sits in
             the certified envelope, whose width is n_active * eps *)
          Helpers.check_ge "offline >= lower" offline (lo -. 1e-9);
          Helpers.check_ge "upper >= offline" hi (offline -. 1e-9);
          Helpers.check_float ~eps:1e-9 "width = n_active * eps" (6.0 *. 0.25) (hi -. lo);
          Helpers.check_ge "alpha gap >= 0" alpha (-1e-6))
  | r -> Alcotest.failf "unexpected %s" (Protocol.print_response r));
  (match expect_ok e "STATS" with
  | Protocol.Stats_report kvs ->
      List.iter
        (fun k ->
          if List.assoc_opt k kvs = None then Alcotest.failf "STATS missing %s" k)
        [ "utility_lower"; "utility_upper"; "alpha_gap" ]
  | r -> Alcotest.failf "unexpected %s" (Protocol.print_response r));
  (* eps = 0 (the default) degenerates to the exact point interval *)
  let e0 = Engine.create ~servers:2 ~capacity:cap () in
  ignore (expect_ok e0 "ADMIT capped 1 10");
  (match expect_ok e0 "REBALANCE" with
  | Protocol.Rebalance_report { offline; _ } -> (
      match Engine.utility_interval e0 with
      | Some (lo, hi, _) ->
          Helpers.check_float ~eps:1e-9 "lower = exact" offline lo;
          Helpers.check_float ~eps:1e-9 "upper = exact" offline hi
      | None -> Alcotest.fail "interval missing")
  | r -> Alcotest.failf "unexpected %s" (Protocol.print_response r));
  Alcotest.check_raises "negative eps rejected"
    (Invalid_argument "Engine.create: coarsen_eps must be finite and >= 0") (fun () ->
      ignore (Engine.create ~servers:2 ~capacity:cap ~coarsen_eps:(-1.0) ()))

(* ---------- malformed-input fuzz ---------- *)

let garbage_line rng =
  let n = 1 + Rng.int rng 30 in
  String.init n (fun _ -> Char.chr (32 + Rng.int rng 96))

let test_fuzz_never_kills_engine () =
  let rng = Rng.create ~seed:99 () in
  let path = Filename.temp_file "aa_fuzz" ".log" in
  let j = or_fail (Journal.create ~path ~servers:2 ~capacity:cap ()) in
  let e = Engine.create ~journal:j ~servers:2 ~capacity:cap () in
  ignore (expect_ok e "ADMIT power 4 0.5");
  let mutated = ref 1 in
  let errs = ref 0 in
  for _ = 1 to 1600 do
    let line =
      match Rng.int rng 5 with
      | 0 -> garbage_line rng
      | 1 -> "ADMIT " ^ garbage_line rng
      | 2 -> "DEPART " ^ garbage_line rng
      | 3 -> "UPDATE 0 " ^ garbage_line rng
      | _ -> "\t " ^ garbage_line rng
    in
    match Engine.handle_line e line with
    | None -> ()
    | Some (Protocol.Err _) -> incr errs
    | Some (Protocol.Admitted _ | Protocol.Departed _ | Protocol.Updated _) ->
        (* vanishingly rare: garbage that happens to be well-formed *)
        incr mutated
    | Some _ -> ()
  done;
  Helpers.check_ge "at least 1000 rejected garbage lines" (float_of_int !errs) 1000.0;
  (* the engine is still alive and serving *)
  (match expect_ok e "ADMIT power 2 0.5" with
  | Protocol.Admitted _ -> incr mutated
  | r -> Alcotest.failf "unexpected %s" (Protocol.print_response r));
  (* and the journal holds exactly the accepted mutations, nothing else *)
  let _, entries = or_fail (Journal.load ~path) in
  Alcotest.(check int) "journal uncorrupted" !mutated (List.length entries);
  (match Engine.of_journal ~path () with
  | Error msg -> Alcotest.failf "replay after fuzz: %s" msg
  | Ok e2 ->
      Helpers.check_float "state survives" (Engine.total_utility e)
        (Engine.total_utility e2);
      (match Engine.journal e2 with Some j2 -> Journal.close j2 | None -> ()));
  Journal.close j;
  Sys.remove path

(* ---------- crash recovery at every request boundary ---------- *)

type state = {
  n : int;
  where : int array;
  allocs : float array;
  total : float;
}

let state_of e =
  let ol = Engine.online e in
  let n = Online.n_admitted ol in
  {
    n;
    where = Array.init n (Online.server_of ol);
    allocs = Array.init n (Online.alloc_of ol);
    total = Online.total_utility ol;
  }

let check_state msg a b =
  Alcotest.(check int) (msg ^ ": n_admitted") a.n b.n;
  Alcotest.(check (array int)) (msg ^ ": servers") a.where b.where;
  Array.iteri
    (fun i x ->
      Helpers.check_float ~eps:1e-9 (Printf.sprintf "%s: alloc of %d" msg i) x
        b.allocs.(i))
    a.allocs;
  Helpers.check_float ~eps:1e-9 (msg ^ ": total utility") a.total b.total

let random_spec rng =
  match Rng.int rng 4 with
  | 0 ->
      Printf.sprintf "power %.17g %.17g"
        (Rng.uniform rng ~lo:0.5 ~hi:5.0)
        (Rng.uniform rng ~lo:0.3 ~hi:1.0)
  | 1 ->
      Printf.sprintf "log %.17g %.17g"
        (Rng.uniform rng ~lo:0.5 ~hi:5.0)
        (Rng.uniform rng ~lo:0.1 ~hi:2.0)
  | 2 ->
      Printf.sprintf "capped %.17g %.17g"
        (Rng.uniform rng ~lo:0.2 ~hi:4.0)
        (Rng.uniform rng ~lo:1.0 ~hi:cap)
  | _ -> Aa_io.Format_text.print_thread_spec (Helpers.plc_u rng)

(* Drive [steps] scripted requests (admits, departs, updates, queries,
   periodic REBALANCE and journal-compacting SNAPSHOT); after every
   request record the journal bytes and the engine state. *)
let scripted_session e rng steps =
  let journal_path =
    match Engine.journal e with
    | Some j -> Journal.path j
    | None -> Alcotest.fail "scripted_session needs a journaled engine"
  in
  let active = ref [] in
  let boundaries = ref [] in
  for step = 1 to steps do
    let line =
      if step mod 67 = 0 then "SNAPSHOT"
      else if step mod 41 = 0 then "REBALANCE"
      else if !active = [] || Rng.float rng 1.0 < 0.5 then
        "ADMIT " ^ random_spec rng
      else begin
        let pick () = List.nth !active (Rng.int rng (List.length !active)) in
        match Rng.int rng 4 with
        | 0 | 1 -> Printf.sprintf "DEPART %d" (pick ())
        | 2 -> Printf.sprintf "UPDATE %d %s" (pick ()) (random_spec rng)
        | _ -> Printf.sprintf "QUERY %d" (pick ())
      end
    in
    (match Engine.handle_line e line with
    | Some (Protocol.Admitted { id; _ }) -> active := id :: !active
    | Some (Protocol.Departed { id }) ->
        active := List.filter (fun x -> x <> id) !active
    | Some (Protocol.Err { message; _ }) ->
        Alcotest.failf "step %d %S: %s" step line message
    | Some _ -> ()
    | None -> ());
    let bytes = In_channel.with_open_bin journal_path In_channel.input_all in
    boundaries := (bytes, state_of e) :: !boundaries
  done;
  List.rev !boundaries

let test_crash_recovery_every_prefix () =
  let rng = Rng.create ~seed:2024 () in
  let path = Filename.temp_file "aa_crash" ".log" in
  let replay_path = Filename.temp_file "aa_replay" ".log" in
  let j = or_fail (Journal.create ~path ~servers:3 ~capacity:cap ()) in
  let e = Engine.create ~journal:j ~servers:3 ~capacity:cap () in
  let boundaries = scripted_session e rng 200 in
  Alcotest.(check int) "200 request boundaries" 200 (List.length boundaries);
  List.iteri
    (fun k (bytes, st) ->
      (* the journal as a crash at this boundary would leave it *)
      Out_channel.with_open_bin replay_path (fun oc ->
          Out_channel.output_string oc bytes);
      match Engine.of_journal ~path:replay_path () with
      | Error msg -> Alcotest.failf "boundary %d: replay failed: %s" k msg
      | Ok e2 ->
          check_state (Printf.sprintf "boundary %d" k) st (state_of e2);
          (match Engine.journal e2 with
          | Some j2 -> Journal.close j2
          | None -> ()))
    boundaries;
  Journal.close j;
  Sys.remove path;
  Sys.remove replay_path

(* ---------- the daemon binary, end to end ---------- *)

let serve_bin =
  List.find_opt Sys.file_exists
    [ "../bin/aa_serve.exe"; "_build/default/bin/aa_serve.exe" ]
  |> Option.value ~default:"../bin/aa_serve.exe"

let run_serve ?(expect = 0) args input =
  Out_channel.with_open_text "serve_in.txt" (fun oc ->
      Out_channel.output_string oc input);
  let cmd = Filename.quote_command serve_bin args in
  let code = Sys.command (cmd ^ " < serve_in.txt > serve_out.txt 2> serve_err.txt") in
  if code <> expect then begin
    let err = In_channel.with_open_text "serve_err.txt" In_channel.input_all in
    Alcotest.failf "aa_serve %s: exit %d (expected %d)\nstderr: %s"
      (String.concat " " args) code expect err
  end;
  In_channel.with_open_text "serve_out.txt" In_channel.input_all

let response_lines out =
  String.split_on_char '\n' out |> List.filter (fun l -> l <> "")

let check_prefix what prefix line =
  if not (String.starts_with ~prefix line) then
    Alcotest.failf "%s: %S should start with %S" what line prefix

let test_daemon_session () =
  let out =
    run_serve [ "-m"; "2"; "-C"; "10" ]
      "ADMIT power 4 0.5\n# a comment\n\nQUERY 0\nNOPE\nSTATS\n"
  in
  match response_lines out with
  | [ l1; l2; l3; l4 ] ->
      check_prefix "admit" "OK admit id 0 server" l1;
      check_prefix "query" "OK query id 0" l2;
      check_prefix "garbage" "ERR bad-request" l3;
      check_prefix "stats" "OK stats" l4;
      Alcotest.(check bool) "stats counts the garbage" true
        (Helpers.contains l4 "malformed.err=1")
  | ls -> Alcotest.failf "expected 4 responses, got %d:\n%s" (List.length ls) out

let test_daemon_journal_replay () =
  let path = Filename.temp_file "aa_daemon" ".log" in
  let _ =
    run_serve
      [ "-m"; "2"; "-C"; "10"; "--journal"; path ]
      "ADMIT capped 1 10\nADMIT capped 1 10\nDEPART 0\n"
  in
  (* second process: recover, snapshot-compact, keep mutating *)
  let out =
    run_serve [ "--journal"; path; "--replay" ]
      "QUERY 0\nQUERY 1\nSNAPSHOT\nADMIT linear 2\n"
  in
  (match response_lines out with
  | [ q0; q1; snap; admit ] ->
      Alcotest.(check bool) "0 departed" true (Helpers.contains q0 "active 0");
      Alcotest.(check bool) "1 alive with the full server" true
        (Helpers.contains q1 "alloc 10");
      check_prefix "snapshot" "OK snapshot active 1 admitted 2" snap;
      Alcotest.(check bool) "journal compacted" true
        (Helpers.contains snap "compacted 1");
      check_prefix "admit keeps counting ids" "OK admit id 2" admit
  | ls -> Alcotest.failf "expected 4 responses, got %d:\n%s" (List.length ls) out);
  (* third process: replay over the compacted journal *)
  let out2 = run_serve [ "--journal"; path; "--replay" ] "STATS\n" in
  (match response_lines out2 with
  | [ stats ] ->
      Alcotest.(check bool) "admitted=3" true (Helpers.contains stats "admitted=3");
      Alcotest.(check bool) "active=2" true (Helpers.contains stats "active=2")
  | ls -> Alcotest.failf "expected 1 response, got %d" (List.length ls));
  Sys.remove path

let test_daemon_telemetry_flags () =
  (* --slow-ms routes through the sharded dispatch (wire-identical for
     n = 1) and arms the keep-list the SLOW verb reads back *)
  let out =
    run_serve
      [ "-m"; "2"; "-C"; "10"; "--slow-ms"; "0" ]
      "ADMIT capped 1 10\nSLOW\n"
  in
  (match response_lines out with
  | [ admit; slow ] ->
      check_prefix "admit" "OK admit id 0" admit;
      check_prefix "slow" "OK slow count 1" slow
  | ls -> Alcotest.failf "expected 2 responses, got %d:\n%s" (List.length ls) out);
  (* --coarsen: REBALANCE certifies, STATS reports the interval *)
  let out =
    run_serve
      [ "-m"; "2"; "-C"; "10"; "--coarsen"; "0.1" ]
      "ADMIT capped 1 10\nREBALANCE\nSTATS\n"
  in
  (match response_lines out with
  | [ _; _; stats ] ->
      Alcotest.(check bool) "lower bound" true (Helpers.contains stats "utility_lower=");
      Alcotest.(check bool) "upper bound" true (Helpers.contains stats "utility_upper=");
      Alcotest.(check bool) "alpha gap" true (Helpers.contains stats "alpha_gap=")
  | ls -> Alcotest.failf "expected 3 responses, got %d:\n%s" (List.length ls) out);
  ignore (run_serve ~expect:1 [ "--coarsen=-0.5" ] "");
  (* --access-log: one JSONL record per acked request *)
  let log = Filename.temp_file "aa_access" ".jsonl" in
  let _ =
    run_serve
      [ "-m"; "2"; "-C"; "10"; "--access-log"; log ]
      "ADMIT capped 1 10\nQUERY 0\nNOPE\nSTATS\n"
  in
  let records =
    In_channel.with_open_text log In_channel.input_all
    |> String.split_on_char '\n'
    |> List.filter (fun l -> l <> "")
  in
  (* NOPE is rejected at parse (no ticket, no record): 3 acked requests *)
  Alcotest.(check int) "one record per acked request" 3 (List.length records);
  List.iter
    (fun r ->
      List.iter
        (fun key ->
          if not (Helpers.contains r key) then
            Alcotest.failf "record %s missing %s" r key)
        [ "\"rid\":"; "\"kind\":"; "\"shard\":"; "\"outcome\":"; "\"total_ns\":" ])
    records;
  Sys.remove log

let test_daemon_rebalance_policy_flags () =
  let out =
    run_serve
      [ "-m"; "2"; "-C"; "10"; "--rebalance-policy"; "full" ]
      "ADMIT capped 1 10\nSTATS\n"
  in
  (match response_lines out with
  | [ _; stats ] ->
      Alcotest.(check bool) "policy reported" true (Helpers.contains stats "policy=full")
  | ls -> Alcotest.failf "expected 2 responses, got %d:\n%s" (List.length ls) out);
  let out =
    run_serve
      [ "-m"; "2"; "-C"; "10"; "--rebalance-policy"; "auto"; "--drift-frac"; "0.8" ]
      "ADMIT capped 1 10\nSTATS\n"
  in
  (match response_lines out with
  | [ _; stats ] ->
      Alcotest.(check bool) "auto reported" true (Helpers.contains stats "policy=auto");
      Alcotest.(check bool) "drift bound exported" true
        (Helpers.contains stats "drift_bound=")
  | ls -> Alcotest.failf "expected 2 responses, got %d:\n%s" (List.length ls) out);
  (* the sharded dispatcher aggregates the certificate across the fleet *)
  let out =
    run_serve
      [ "-m"; "2"; "-C"; "10"; "--shards"; "2" ]
      "ADMIT capped 1 10\nADMIT capped 1 10\nSTATS\n"
  in
  (match response_lines out with
  | [ _; _; stats ] ->
      Alcotest.(check bool) "fleet drift" true (Helpers.contains stats "drift_bound=");
      Alcotest.(check bool) "fleet splices" true
        (Helpers.contains stats "incremental.splices=");
      Alcotest.(check bool) "fleet resolves" true
        (Helpers.contains stats "incremental.resolves=")
  | ls -> Alcotest.failf "expected 3 responses, got %d:\n%s" (List.length ls) out);
  ignore (run_serve ~expect:1 [ "--rebalance-policy"; "sometimes" ] "");
  ignore (run_serve ~expect:1 [ "--drift-frac"; "1.5" ] "")

let test_daemon_flag_validation () =
  ignore (run_serve ~expect:1 [ "--replay" ] "");
  let path = Filename.temp_file "aa_daemon" ".log" in
  let _ = run_serve [ "-m"; "2"; "-C"; "10"; "--journal"; path ] "ADMIT linear 1\n" in
  (* flags that contradict the journal header must be refused *)
  ignore (run_serve ~expect:1 [ "-m"; "3"; "--journal"; path; "--replay" ] "");
  ignore (run_serve ~expect:1 [ "-C"; "99"; "--journal"; path; "--replay" ] "");
  (* matching flags are fine *)
  let out = run_serve [ "-m"; "2"; "-C"; "10"; "--journal"; path; "--replay" ] "STATS\n" in
  Alcotest.(check int) "one response" 1 (List.length (response_lines out));
  Sys.remove path

let () =
  Alcotest.run "service"
    [
      ( "protocol",
        [
          Alcotest.test_case "request roundtrip" `Quick test_request_roundtrip;
          Alcotest.test_case "request errors" `Quick test_request_errors;
          Alcotest.test_case "response printing" `Quick test_response_print;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "histogram quantiles" `Quick test_histogram_quantiles;
          Alcotest.test_case "histogram extremes" `Quick test_histogram_extremes;
          Alcotest.test_case "report" `Quick test_metrics_report;
        ] );
      ( "journal",
        [
          Alcotest.test_case "roundtrip" `Quick test_journal_roundtrip;
          Alcotest.test_case "torn tail" `Quick test_journal_torn_tail;
          Alcotest.test_case "rejects garbage" `Quick test_journal_rejects_garbage;
        ] );
      ( "engine",
        [
          Alcotest.test_case "session" `Quick test_engine_session;
          Alcotest.test_case "errors" `Quick test_engine_errors;
          Alcotest.test_case "rebalance gap" `Quick test_engine_rebalance_gap;
          Alcotest.test_case "policy + drift stats" `Quick
            test_engine_policy_and_drift_stats;
          Alcotest.test_case "auto policy replay" `Quick test_engine_auto_policy_replay;
          Alcotest.test_case "SLOW verb" `Quick test_engine_slow_verb;
          Alcotest.test_case "coarsen interval" `Quick test_engine_coarsen_interval;
          Alcotest.test_case "malformed fuzz" `Quick test_fuzz_never_kills_engine;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "every prefix replays" `Slow
            test_crash_recovery_every_prefix;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "session" `Quick test_daemon_session;
          Alcotest.test_case "journal + replay" `Quick test_daemon_journal_replay;
          Alcotest.test_case "telemetry flags" `Quick test_daemon_telemetry_flags;
          Alcotest.test_case "rebalance policy flags" `Quick
            test_daemon_rebalance_policy_flags;
          Alcotest.test_case "flag validation" `Quick test_daemon_flag_validation;
        ] );
      Helpers.qsuite "properties" [ prop_parse_total ];
    ]
