(* Tests for the Aa_parallel domain pool and for the determinism
   contract of the parallel sweep engine built on it: the same series,
   bit for bit, whatever the job count. *)

open Aa_parallel
open Aa_experiments

(* ---------- Pool ---------- *)

let test_map_matches_sequential () =
  List.iter
    (fun domains ->
      List.iter
        (fun n ->
          List.iter
            (fun chunk ->
              let expected = Array.init n (fun i -> (i * i) - (3 * i)) in
              let got =
                Pool.with_pool ~domains (fun pool ->
                    Pool.map_chunked pool ~chunk n (fun i -> (i * i) - (3 * i)))
              in
              Alcotest.(check (array int))
                (Printf.sprintf "domains=%d n=%d chunk=%d" domains n chunk)
                expected got)
            [ 1; 3; 64 ])
        [ 0; 1; 7; 100 ])
    [ 1; 2; 4 ]

let test_run_covers_exactly_once () =
  List.iter
    (fun domains ->
      let n = 1000 in
      let hits = Array.make n 0 in
      Pool.with_pool ~domains (fun pool ->
          (* disjoint ranges: per-index increments need no synchronization *)
          Pool.run pool ~n ~chunk:7 (fun ~lo ~hi ->
              for i = lo to hi - 1 do
                hits.(i) <- hits.(i) + 1
              done));
      Array.iteri
        (fun i c ->
          if c <> 1 then Alcotest.failf "domains=%d: index %d hit %d times" domains i c)
        hits)
    [ 1; 4 ]

exception Boom of int

let test_exception_propagates () =
  List.iter
    (fun domains ->
      match
        Pool.with_pool ~domains (fun pool ->
            Pool.map_chunked pool ~chunk:3 100 (fun i ->
                if i mod 40 = 37 then raise (Boom i) else i))
      with
      | _ -> Alcotest.fail "expected Boom to escape map_chunked"
      | exception Boom _ -> ())
    [ 1; 3 ]

let test_pool_reusable_after_error () =
  Pool.with_pool ~domains:3 (fun pool ->
      (match Pool.map_chunked pool 10 (fun i -> if i = 5 then raise (Boom i) else i) with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom _ -> ());
      (* the same pool keeps working, with no stale error resurfacing *)
      for round = 1 to 5 do
        let got = Pool.map_chunked pool ~chunk:2 25 (fun i -> i + round) in
        Alcotest.(check (array int))
          (Printf.sprintf "round %d" round)
          (Array.init 25 (fun i -> i + round))
          got
      done)

let test_pool_explicit_lifecycle () =
  (* the create/shutdown pair underlying with_pool: usable directly, and
     shutdown is idempotent as documented *)
  let pool = Pool.create ~domains:3 () in
  let n = 100 in
  let hits = Array.make n 0 in
  Pool.run pool ~n ~chunk:9 (fun ~lo ~hi ->
      for i = lo to hi - 1 do
        hits.(i) <- hits.(i) + 1
      done);
  Alcotest.(check (array int)) "covered once" (Array.make n 1) hits;
  Pool.shutdown pool;
  Pool.shutdown pool

let test_pool_size_and_validation () =
  Pool.with_pool ~domains:3 (fun pool -> Alcotest.(check int) "size" 3 (Pool.size pool));
  (* <= 1 clamps to the inline sequential pool *)
  Pool.with_pool ~domains:0 (fun pool -> Alcotest.(check int) "clamped" 1 (Pool.size pool));
  Pool.with_pool ~domains:1 (fun pool ->
      Alcotest.check_raises "chunk >= 1" (Invalid_argument "Pool.run: chunk must be >= 1")
        (fun () -> Pool.run pool ~n:3 ~chunk:0 (fun ~lo:_ ~hi:_ -> ()));
      Alcotest.check_raises "negative n" (Invalid_argument "Pool.run: negative n") (fun () ->
          Pool.run pool ~n:(-1) ~chunk:1 (fun ~lo:_ ~hi:_ -> ())))

let test_default_domains_env () =
  let saved = Sys.getenv_opt "AA_JOBS" in
  let restore () =
    match saved with Some v -> Unix.putenv "AA_JOBS" v | None -> Unix.putenv "AA_JOBS" ""
  in
  Fun.protect ~finally:restore (fun () ->
      Unix.putenv "AA_JOBS" "3";
      Alcotest.(check int) "AA_JOBS honored" 3 (Pool.default_domains ());
      Unix.putenv "AA_JOBS" "0";
      Alcotest.(check bool) "AA_JOBS=0 falls back" true (Pool.default_domains () >= 1);
      Unix.putenv "AA_JOBS" "nope";
      Alcotest.(check bool) "garbage falls back" true (Pool.default_domains () >= 1))

(* ---------- deterministic replay ---------- *)

(* Exact float equality on purpose: the determinism contract is
   bit-identical replay, and a tolerance would mask schedule-dependent
   summation order. Comparing the bits also makes NaN = NaN. *)
let check_bits label a b =
  Alcotest.(check int64) label (Int64.bits_of_float a) (Int64.bits_of_float b)

let check_series_identical label (a : Run.series) (b : Run.series) =
  Alcotest.(check int) (label ^ ": points") (List.length a.points) (List.length b.points);
  List.iter2
    (fun (p : Run.point) (q : Run.point) ->
      let f name x y = check_bits (Printf.sprintf "%s: %s at x=%g" label name p.x) x y in
      f "x" p.x q.x;
      f "mean vs_so" p.mean.vs_so q.mean.vs_so;
      f "mean vs_uu" p.mean.vs_uu q.mean.vs_uu;
      f "mean vs_ur" p.mean.vs_ur q.mean.vs_ur;
      f "mean vs_ru" p.mean.vs_ru q.mean.vs_ru;
      f "mean vs_rr" p.mean.vs_rr q.mean.vs_rr;
      f "ci95 vs_so" p.ci95.vs_so q.ci95.vs_so;
      f "ci95 vs_uu" p.ci95.vs_uu q.ci95.vs_uu;
      f "ci95 vs_ur" p.ci95.vs_ur q.ci95.vs_ur;
      f "ci95 vs_ru" p.ci95.vs_ru q.ci95.vs_ru;
      f "ci95 vs_rr" p.ci95.vs_rr q.ci95.vs_rr;
      f "worst_vs_so" p.worst_vs_so q.worst_vs_so;
      f "algo1_vs_so" p.algo1_vs_so q.algo1_vs_so;
      Alcotest.(check int) (label ^ ": violations") p.guarantee_violations
        q.guarantee_violations;
      Alcotest.(check int) (label ^ ": trials") p.trials q.trials)
    a.points b.points

(* A small beta sweep; 70 trials crosses the engine's 64-trial chunk
   boundary, so the partial-accumulator merge path is exercised, not
   just the single-chunk case. *)
let beta_sweep ~jobs =
  Run.run_series ~trials:70 ~seed:42 ~jobs ~id:"det" ~title:"determinism check"
    ~xlabel:"beta"
    ~xs:[ 1.0; 3.0; 6.0 ]
    (fun ~x rng ->
      let threads = int_of_float (Float.round (x *. 4.0)) in
      Aa_workload.Gen.instance rng ~servers:4 ~capacity:500.0 ~threads Aa_workload.Gen.Uniform)

let test_sweep_jobs_bit_identical () =
  let sequential = beta_sweep ~jobs:1 in
  let parallel = beta_sweep ~jobs:4 in
  check_series_identical "jobs=1 vs jobs=4" sequential parallel

let test_figure_jobs_bit_identical () =
  match Figures.find "fig3c" with
  | None -> Alcotest.fail "fig3c missing"
  | Some spec ->
      let a = spec.run ~jobs:1 ~trials:5 ~seed:42 () in
      let b = spec.run ~jobs:3 ~trials:5 ~seed:42 () in
      check_series_identical "fig3c jobs=1 vs jobs=3" a b

(* ---------- bench harness smoke ---------- *)

let bench =
  List.find_opt Sys.file_exists [ "../bench/main.exe"; "_build/default/bench/main.exe" ]
  |> Option.value ~default:"../bench/main.exe"

let test_bench_smoke () =
  if not (Sys.file_exists bench) then Alcotest.failf "bench binary missing at %s" bench;
  let json = "bench_smoke.json" in
  if Sys.file_exists json then Sys.remove json;
  (* timing is included to cover bechamel running on pool workers (its
     heap stabilization must be off whenever jobs > 1) *)
  let cmd =
    Printf.sprintf
      "AA_TRIALS=5 AA_JOBS=2 AA_BENCH_JSON=%s %s fig3c speedup timing > bench_smoke.txt 2>&1"
      (Filename.quote json) (Filename.quote bench)
  in
  let code = Sys.command cmd in
  if code <> 0 then begin
    let out = In_channel.with_open_text "bench_smoke.txt" In_channel.input_all in
    Alcotest.failf "bench exited %d:\n%s" code out
  end;
  Alcotest.(check bool) "trajectory written" true (Sys.file_exists json);
  let doc = In_channel.with_open_text json In_channel.input_all in
  List.iter
    (fun needle ->
      if not (Helpers.contains doc needle) then
        Alcotest.failf "trajectory %s missing %S:\n%s" json needle doc)
    [
      "\"schema\": \"aa-bench-trajectory/6\"";
      "\"regression\":";
      "\"noise_bound\":";
      "\"id\": \"fig3c\"";
      "\"id\": \"speedup-fig1a\"";
      "\"id\": \"speedup-fig1a-oversubscribed\"";
      "\"speedup_vs_j1\"";
      "\"rps\"";
      "\"jobs_requested\": 2";
      "\"trials\": 5";
      "\"obs\": true";
      "\"spans\"";
      "\"counters\"";
    ];
  let out = In_channel.with_open_text "bench_smoke.txt" In_channel.input_all in
  if not (Helpers.contains out "series bit-identical across job counts: true") then
    Alcotest.failf "bench speedup experiment did not confirm determinism:\n%s" out

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "map = sequential map" `Quick test_map_matches_sequential;
          Alcotest.test_case "run covers once" `Quick test_run_covers_exactly_once;
          Alcotest.test_case "exception propagates" `Quick test_exception_propagates;
          Alcotest.test_case "reusable after error" `Quick test_pool_reusable_after_error;
          Alcotest.test_case "size and validation" `Quick test_pool_size_and_validation;
          Alcotest.test_case "explicit lifecycle" `Quick test_pool_explicit_lifecycle;
          Alcotest.test_case "AA_JOBS env" `Quick test_default_domains_env;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "sweep jobs=1 = jobs=4" `Slow test_sweep_jobs_bit_identical;
          Alcotest.test_case "figure jobs=1 = jobs=3" `Quick test_figure_jobs_bit_identical;
        ] );
      ( "bench",
        [ Alcotest.test_case "smoke AA_TRIALS=5 AA_JOBS=2" `Slow test_bench_smoke ] );
    ]
