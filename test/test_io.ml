open Aa_utility
open Aa_core
open Aa_io

let sample_text =
  "# an instance\n\
   servers 2\n\
   capacity 10.0\n\
   thread plc 0 0 2.5 1 10 1.5\n\
   thread power 4.0 0.5   # comment after tokens\n\
   thread log 3.0 1.0\n\
   thread saturating 8.0 2.0\n\
   thread expsat 8.0 0.5\n\
   thread capped 1.5 6.0\n\
   thread linear 0.8\n"

let test_parse_basic () =
  match Format_text.parse_instance sample_text with
  | Error e -> Alcotest.fail e
  | Ok inst ->
      Alcotest.(check int) "servers" 2 inst.servers;
      Helpers.check_float "capacity" 10.0 inst.capacity;
      Alcotest.(check int) "threads" 7 (Instance.n_threads inst);
      Helpers.check_float "plc eval" 1.0 (Utility.eval inst.utilities.(0) 2.5);
      Helpers.check_float "power eval" 8.0 (Utility.eval inst.utilities.(1) 4.0);
      Helpers.check_float "capped eval" 9.0 (Utility.eval inst.utilities.(5) 8.0)

let test_roundtrip () =
  match Format_text.parse_instance sample_text with
  | Error e -> Alcotest.fail e
  | Ok inst -> (
      let text = Format_text.print_instance inst in
      match Format_text.parse_instance text with
      | Error e -> Alcotest.failf "reparse: %s" e
      | Ok inst2 ->
          Alcotest.(check int) "threads" (Instance.n_threads inst) (Instance.n_threads inst2);
          Array.iteri
            (fun i u ->
              for k = 0 to 20 do
                let x = 10.0 *. float_of_int k /. 20.0 in
                Helpers.check_float ~eps:1e-9
                  (Printf.sprintf "thread %d at %g" i x)
                  (Utility.eval u x)
                  (Utility.eval inst2.utilities.(i) x)
              done)
            inst.utilities)

let test_parse_errors () =
  let cases =
    [
      ("servers 2\nthread linear 1\n", "capacity before threads");
      ("capacity 10\nthread linear 1\n", "missing servers");
      ("servers 2\ncapacity 10\n", "no threads");
      ("servers 2\ncapacity 10\nthread wat 1\n", "unknown thread kind");
      ("servers x\ncapacity 10\nthread linear 1\n", "bad int");
      ("servers 2\ncapacity 10\nthread plc 0 0 1\n", "odd breakpoints");
      ("bogus directive\n", "unknown directive");
    ]
  in
  List.iter
    (fun (text, what) ->
      match Format_text.parse_instance text with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted bad input: %s" what)
    cases

let test_error_line_numbers () =
  match Format_text.parse_instance "servers 2\ncapacity 10\nthread wat 1\n" with
  | Error e ->
      let prefix = "line 3:" in
      let has_prefix =
        String.length e >= String.length prefix
        && String.sub e 0 (String.length prefix) = prefix
      in
      Alcotest.(check bool) "mentions line 3" true has_prefix
  | Ok _ -> Alcotest.fail "accepted"

let test_assignment_roundtrip () =
  let a = Assignment.make ~server:[| 1; 0; 1 |] ~alloc:[| 2.5; 0.0; 7.5 |] in
  let text = Format_text.print_assignment a in
  match Format_text.parse_assignment text with
  | Error e -> Alcotest.fail e
  | Ok b ->
      Alcotest.(check (array int)) "servers" a.server b.server;
      Array.iteri (fun i c -> Helpers.check_float "alloc" c b.alloc.(i)) a.alloc

let test_assignment_gap_rejected () =
  match Format_text.parse_assignment "assign 0 0 1.0\nassign 2 1 2.0\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "gap in thread ids accepted"

let test_file_roundtrip () =
  let path = Filename.temp_file "aa_test" ".aa" in
  (match Format_text.parse_instance sample_text with
  | Error e -> Alcotest.fail e
  | Ok inst -> (
      match Format_text.save path (Format_text.print_instance inst) with
      | Error e -> Alcotest.fail e
      | Ok () -> (
          match Format_text.load_instance path with
          | Error e -> Alcotest.fail e
          | Ok inst2 ->
              Alcotest.(check int) "threads" (Instance.n_threads inst)
                (Instance.n_threads inst2))));
  Sys.remove path

let test_load_missing_file () =
  match Format_text.load_instance "/nonexistent/path/x.aa" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "loaded a missing file"

let test_thread_spec_roundtrip () =
  let cap = 10.0 in
  let specs =
    [
      "plc 0 0 2.5 1 10 1.5";
      "power 4 0.5";
      "log 3 1";
      "saturating 8 2";
      "expsat 8 0.5";
      "capped 1.5 6";
      "linear 0.80000000000000004";
    ]
  in
  List.iter
    (fun spec ->
      match Format_text.parse_thread_spec ~cap spec with
      | Error e -> Alcotest.failf "%S: %s" spec e
      | Ok u -> (
          let printed = Format_text.print_thread_spec u in
          match Format_text.parse_thread_spec ~cap printed with
          | Error e -> Alcotest.failf "reparse %S: %s" printed e
          | Ok u2 ->
              (* the second print must be a fixed point: exact %.17g round trip *)
              Alcotest.(check string) spec printed (Format_text.print_thread_spec u2);
              for k = 0 to 20 do
                let x = cap *. float_of_int k /. 20.0 in
                Helpers.check_float
                  (Printf.sprintf "%s at %g" spec x)
                  (Utility.eval u x) (Utility.eval u2 x)
              done))
    specs

let test_thread_spec_errors () =
  let cap = 10.0 in
  List.iter
    (fun spec ->
      match Format_text.parse_thread_spec ~cap spec with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted bad spec %S" spec)
    [
      "";
      "wat 1";
      "power 4";
      "power x 0.5";
      "plc 0 0 1";
      "plc 5 1 2 0";
      "linear";
      "log 3 1 9";
    ]

let prop_thread_spec_roundtrip =
  QCheck2.Test.make ~name:"print/parse thread spec roundtrip" ~count:200
    QCheck2.Gen.(
      let* cap = float_range 1.0 50.0 in
      let* u = Helpers.gen_utility_with_cap cap in
      return (cap, u))
    (fun (cap, u) ->
      match Format_text.parse_thread_spec ~cap (Format_text.print_thread_spec u) with
      | Error _ -> false
      | Ok u2 ->
          List.for_all
            (fun k ->
              let x = cap *. float_of_int k /. 16.0 in
              Aa_numerics.Util.approx_equal ~eps:1e-9 (Utility.eval u x)
                (Utility.eval u2 x))
            (List.init 17 Fun.id))

let prop_instance_roundtrip =
  QCheck2.Test.make ~name:"print/parse instance roundtrip preserves utilities" ~count:100
    Helpers.gen_instance (fun inst ->
      match Format_text.parse_instance (Format_text.print_instance inst) with
      | Error _ -> false
      | Ok inst2 ->
          Instance.n_threads inst = Instance.n_threads inst2
          && inst.servers = inst2.servers
          && Array.for_all2
               (fun u u2 ->
                 List.for_all
                   (fun k ->
                     let x = inst.capacity *. float_of_int k /. 16.0 in
                     Aa_numerics.Util.approx_equal ~eps:1e-6 (Utility.eval u x)
                       (Utility.eval u2 x))
                   (List.init 17 Fun.id))
               inst.utilities inst2.utilities)

let prop_assignment_roundtrip =
  QCheck2.Test.make ~name:"print/parse assignment roundtrip" ~count:100
    QCheck2.Gen.(
      let* n = int_range 1 20 in
      let* servers = list_repeat n (int_range 0 7) in
      let* allocs = list_repeat n (float_range 0.0 100.0) in
      return (Array.of_list servers, Array.of_list allocs))
    (fun (server, alloc) ->
      let a = Assignment.make ~server ~alloc in
      match Format_text.parse_assignment (Format_text.print_assignment a) with
      | Error _ -> false
      | Ok b ->
          b.server = a.server
          && Array.for_all2 (fun x y -> x = y) a.alloc b.alloc)

let () =
  Alcotest.run "io"
    [
      ( "instance",
        [
          Alcotest.test_case "parse" `Quick test_parse_basic;
          Alcotest.test_case "roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "error line numbers" `Quick test_error_line_numbers;
          Alcotest.test_case "file roundtrip" `Quick test_file_roundtrip;
          Alcotest.test_case "missing file" `Quick test_load_missing_file;
        ] );
      ( "thread-spec",
        [
          Alcotest.test_case "roundtrip" `Quick test_thread_spec_roundtrip;
          Alcotest.test_case "errors" `Quick test_thread_spec_errors;
        ] );
      ( "assignment",
        [
          Alcotest.test_case "roundtrip" `Quick test_assignment_roundtrip;
          Alcotest.test_case "gap rejected" `Quick test_assignment_gap_rejected;
        ] );
      Helpers.qsuite "properties"
        [ prop_thread_spec_roundtrip; prop_instance_roundtrip; prop_assignment_roundtrip ];
    ]
