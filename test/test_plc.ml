open Aa_numerics
open Aa_utility

let simple () = Plc.create [| (0.0, 0.0); (2.0, 4.0); (5.0, 5.5); (10.0, 5.5) |]

let test_eval () =
  let f = simple () in
  Helpers.check_float "at 0" 0.0 (Plc.eval f 0.0);
  Helpers.check_float "on first segment" 2.0 (Plc.eval f 1.0);
  Helpers.check_float "at breakpoint" 4.0 (Plc.eval f 2.0);
  Helpers.check_float "second segment" 4.5 (Plc.eval f 3.0);
  Helpers.check_float "flat region" 5.5 (Plc.eval f 7.0);
  Helpers.check_float "at cap" 5.5 (Plc.eval f 10.0);
  Helpers.check_float "clamped left" 0.0 (Plc.eval f (-1.0));
  Helpers.check_float "clamped right" 5.5 (Plc.eval f 20.0)

let test_cap_peak_max_slope () =
  let f = simple () in
  Helpers.check_float "cap" 10.0 (Plc.cap f);
  Helpers.check_float "peak" 5.5 (Plc.peak f);
  Helpers.check_float "max slope" 2.0 (Plc.max_slope f)

let test_slope_right () =
  let f = simple () in
  Helpers.check_float "first" 2.0 (Plc.slope_right f 0.0);
  Helpers.check_float "at breakpoint takes right side" 0.5 (Plc.slope_right f 2.0);
  Helpers.check_float "second" 0.5 (Plc.slope_right f 4.0);
  Helpers.check_float "flat" 0.0 (Plc.slope_right f 6.0);
  Helpers.check_float "at cap" 0.0 (Plc.slope_right f 10.0)

let test_demand () =
  let f = simple () in
  Helpers.check_float "very high price" 0.0 (Plc.demand f 10.0);
  Helpers.check_float "price between slopes" 2.0 (Plc.demand f 1.0);
  Helpers.check_float "price at slope boundary" 2.0 (Plc.demand f 2.0);
  Helpers.check_float "low positive price" 5.0 (Plc.demand f 0.1);
  Helpers.check_float "price equal to second slope" 5.0 (Plc.demand f 0.5);
  Helpers.check_float "zero price" 10.0 (Plc.demand f 0.0)

let test_demand_monotone_in_price () =
  let f = simple () in
  let prev = ref (Plc.demand f 0.0) in
  List.iter
    (fun lambda ->
      let d = Plc.demand f lambda in
      Helpers.check_le "demand nonincreasing" d !prev;
      prev := d)
    [ 0.1; 0.5; 0.7; 1.0; 2.0; 3.0 ]

let test_constant () =
  let f = Plc.constant ~cap:5.0 3.0 in
  Helpers.check_float "value" 3.0 (Plc.eval f 2.0);
  Helpers.check_float "peak" 3.0 (Plc.peak f);
  Helpers.check_float "max slope" 0.0 (Plc.max_slope f);
  Helpers.check_float "demand" 0.0 (Plc.demand f 0.5)

let test_capped_linear () =
  let f = Plc.capped_linear ~cap:10.0 ~slope:2.0 ~knee:3.0 in
  Helpers.check_float "ramp" 4.0 (Plc.eval f 2.0);
  Helpers.check_float "flat" 6.0 (Plc.eval f 8.0);
  let full = Plc.capped_linear ~cap:10.0 ~slope:1.0 ~knee:10.0 in
  Helpers.check_float "knee at cap" 10.0 (Plc.eval full 10.0);
  let zero = Plc.capped_linear ~cap:10.0 ~slope:2.0 ~knee:0.0 in
  Helpers.check_float "zero knee" 0.0 (Plc.peak zero)

let test_two_piece () =
  let g = Plc.two_piece ~cap:10.0 ~peak:6.0 ~chat:4.0 in
  Helpers.check_float "half ramp" 3.0 (Plc.eval g 2.0);
  Helpers.check_float "at chat" 6.0 (Plc.eval g 4.0);
  Helpers.check_float "flat" 6.0 (Plc.eval g 9.0);
  let const = Plc.two_piece ~cap:10.0 ~peak:6.0 ~chat:0.0 in
  Helpers.check_float "chat 0 constant" 6.0 (Plc.eval const 0.0)

let test_create_validation () =
  Alcotest.check_raises "must start at 0"
    (Invalid_argument "Plc.create: domain must start at x = 0") (fun () ->
      ignore (Plc.create [| (1.0, 0.0); (2.0, 1.0) |]));
  Alcotest.check_raises "negative value"
    (Invalid_argument "Plc.create: negative utility value") (fun () ->
      ignore (Plc.create [| (0.0, -1.0); (2.0, 1.0) |]));
  Alcotest.check_raises "decreasing"
    (Invalid_argument "Plc.create: utility must be nondecreasing") (fun () ->
      ignore (Plc.create [| (0.0, 2.0); (2.0, 1.0) |]));
  Alcotest.check_raises "convex" (Invalid_argument "Plc.create: utility must be concave")
    (fun () -> ignore (Plc.create [| (0.0, 0.0); (1.0, 0.5); (2.0, 2.0) |]));
  Alcotest.check_raises "nan" (Invalid_argument "Plc.create: non-finite coordinate")
    (fun () -> ignore (Plc.create [| (0.0, 0.0); (1.0, Float.nan) |]));
  Alcotest.check_raises "infinite" (Invalid_argument "Plc.create: non-finite coordinate")
    (fun () -> ignore (Plc.create [| (0.0, 0.0); (Float.infinity, 1.0) |]))

let test_create_merges_collinear () =
  let f = Plc.create [| (0.0, 0.0); (1.0, 1.0); (2.0, 2.0); (3.0, 3.0) |] in
  Alcotest.(check int) "one segment" 1 (Array.length (Plc.segments f))

let test_create_unsorted_dedup () =
  let f = Plc.create [| (2.0, 4.0); (0.0, 0.0); (2.0, 3.0); (5.0, 5.0) |] in
  Helpers.check_float "keeps max y at duplicate" 4.0 (Plc.eval f 2.0)

let test_segments () =
  let f = simple () in
  let segs = Plc.segments f in
  Alcotest.(check int) "three segments" 3 (Array.length segs);
  Helpers.check_float "slope 0" 2.0 segs.(0).slope;
  Helpers.check_float "slope 1" 0.5 segs.(1).slope;
  Helpers.check_float "slope 2" 0.0 segs.(2).slope;
  Helpers.check_float "x bounds" 2.0 segs.(0).x1

let test_restrict () =
  let f = simple () in
  let g = Plc.restrict f ~cap:3.0 in
  Helpers.check_float "cap" 3.0 (Plc.cap g);
  Helpers.check_float "same values" (Plc.eval f 2.5) (Plc.eval g 2.5);
  Helpers.check_float "boundary" 4.5 (Plc.eval g 3.0)

let test_scale () =
  let f = Plc.scale (simple ()) ~y:2.0 in
  Helpers.check_float "scaled" 8.0 (Plc.eval f 2.0)

let test_equal () =
  Alcotest.(check bool) "same" true (Plc.equal (simple ()) (simple ()));
  Alcotest.(check bool) "different" false
    (Plc.equal (simple ()) (Plc.constant ~cap:10.0 1.0))

let test_flat_accessors () =
  let f = simple () in
  let xs = Plc.Flat.breakpoints f in
  let ys = Plc.Flat.prefix_utility f in
  let slopes = Plc.Flat.slopes f in
  Alcotest.(check int) "n_pieces" 3 (Plc.n_pieces f);
  Alcotest.(check int) "positive_pieces" 2 (Plc.positive_pieces f);
  Alcotest.(check int) "xs/ys same length" (Array.length xs) (Array.length ys);
  Alcotest.(check int) "one slope per piece" (Array.length xs - 1) (Array.length slopes);
  Helpers.check_float "first breakpoint" 0.0 xs.(0);
  Helpers.check_float "last breakpoint is cap" (Plc.cap f) xs.(Array.length xs - 1);
  Array.iteri
    (fun i x -> Helpers.check_float "prefix utility = eval at breakpoint" (Plc.eval f x) ys.(i))
    xs;
  Array.iteri
    (fun k (s : Plc.segment) -> Helpers.check_float "slope matches segment" s.slope slopes.(k))
    (Plc.segments f)

let test_coarsen_basic () =
  (* near-collinear interior points within eps collapse; well-separated
     geometry survives *)
  let f = Plc.create [| (0.0, 0.0); (1.0, 1.0); (2.0, 1.9); (3.0, 2.7); (4.0, 2.7) |] in
  let g = Plc.coarsen ~eps:0.2 f in
  Alcotest.(check bool) "fewer pieces" true (Plc.n_pieces g < Plc.n_pieces f);
  Helpers.check_float "cap preserved" (Plc.cap f) (Plc.cap g);
  Helpers.check_float "peak preserved" (Plc.peak f) (Plc.peak g);
  Alcotest.(check bool) "eps = 0 returns the same value" true (Plc.coarsen ~eps:0.0 f == f);
  Alcotest.check_raises "negative eps" (Invalid_argument "Plc.coarsen: eps must be >= 0")
    (fun () -> ignore (Plc.coarsen ~eps:(-1.0) f))

(* --- properties --- *)

let prop_eval_concave =
  QCheck2.Test.make ~name:"random PLC: midpoint concavity" ~count:500 Helpers.gen_plc
    (fun f ->
      let cap = Plc.cap f in
      let ok = ref true in
      for i = 0 to 20 do
        for j = i to 20 do
          let x = cap *. float_of_int i /. 20.0 in
          let y = cap *. float_of_int j /. 20.0 in
          let mid = 0.5 *. (x +. y) in
          let lhs = Plc.eval f mid in
          let rhs = 0.5 *. (Plc.eval f x +. Plc.eval f y) in
          if lhs < rhs -. 1e-7 then ok := false
        done
      done;
      !ok)

let prop_demand_inverse =
  QCheck2.Test.make ~name:"random PLC: demand is the right inverse of slope" ~count:500
    Helpers.gen_plc (fun f ->
      let ok = ref true in
      Array.iter
        (fun (s : Plc.segment) ->
          if s.slope > 0.0 then begin
            (* at price exactly the slope, demand reaches the segment end *)
            let d = Plc.demand f s.slope in
            if d < s.x1 -. 1e-9 then ok := false;
            (* at a price just above, demand stops at or before the start *)
            let d' = Plc.demand f (s.slope *. (1.0 +. 1e-9)) in
            if d' > s.x0 +. (1e-9 *. Plc.cap f) then ok := false
          end)
        (Plc.segments f);
      !ok)

let prop_slopes_strictly_decreasing =
  QCheck2.Test.make ~name:"random PLC: canonical slopes strictly decreasing" ~count:500
    Helpers.gen_plc (fun f ->
      let segs = Plc.segments f in
      let ok = ref true in
      for i = 1 to Array.length segs - 1 do
        if segs.(i).slope >= segs.(i - 1).slope then ok := false
      done;
      !ok)

let prop_eval_matches_segments =
  QCheck2.Test.make ~name:"random PLC: eval consistent with segment form" ~count:500
    Helpers.gen_plc (fun f ->
      Array.for_all
        (fun (s : Plc.segment) ->
          let mid = 0.5 *. (s.x0 +. s.x1) in
          Util.approx_equal ~eps:1e-9 (Plc.eval f mid) (s.y0 +. (s.slope *. (mid -. s.x0))))
        (Plc.segments f))

(* Reference implementations of the three queries as linear scans over
   the boxed segment list — the shape the flat kernel replaced. *)
let ref_eval f x =
  let segs = Plc.segments f in
  let n = Array.length segs in
  let x = Util.clamp ~lo:0.0 ~hi:(Plc.cap f) x in
  if x >= segs.(n - 1).x1 then Plc.peak f
  else begin
    let k = ref 0 in
    while x >= segs.(!k).x1 do
      incr k
    done;
    let s = segs.(!k) in
    s.y0 +. (s.slope *. (x -. s.x0))
  end

let ref_slope_right f x =
  let segs = Plc.segments f in
  if x >= Plc.cap f then 0.0
  else begin
    let x = Float.max 0.0 x in
    let k = ref 0 in
    while x >= segs.(!k).x1 do
      incr k
    done;
    segs.(!k).slope
  end

let ref_demand f lambda =
  if lambda <= 0.0 then Plc.cap f
  else
    Array.fold_left
      (fun acc (s : Plc.segment) -> if s.slope >= lambda then s.x1 else acc)
      0.0 (Plc.segments f)

let prop_flat_queries_match_reference =
  QCheck2.Test.make ~name:"flat eval/slope_right/demand match segment-scan reference"
    ~count:300 Helpers.gen_plc (fun f ->
      let cap = Plc.cap f in
      let ok = ref true in
      let check a b = if not (Util.feq ~eps:1e-12 a b) then ok := false in
      (* probe breakpoints, segment interiors, and off-grid points *)
      let xs = Plc.Flat.breakpoints f in
      Array.iter
        (fun x ->
          check (Plc.eval f x) (ref_eval f x);
          check (Plc.slope_right f x) (ref_slope_right f x))
        xs;
      for i = 0 to 40 do
        let x = cap *. float_of_int i /. 40.0 in
        check (Plc.eval f x) (ref_eval f x);
        check (Plc.slope_right f x) (ref_slope_right f x)
      done;
      let probe_prices =
        Array.concat
          [
            Array.map (fun (s : Plc.segment) -> s.slope) (Plc.segments f);
            Array.init 20 (fun i ->
                Plc.max_slope f *. (0.01 +. (float_of_int i /. 19.0)));
            [| 0.0; -1.0; Plc.max_slope f *. 2.0 |];
          ]
      in
      Array.iter (fun l -> check (Plc.demand f l) (ref_demand f l)) probe_prices;
      !ok)

let prop_coarsen_certified =
  QCheck2.Test.make
    ~name:"coarsen: 0 <= f - f' <= eps pointwise, canonical result"
    ~count:300
    QCheck2.Gen.(pair Helpers.gen_plc (float_range 0.0 0.5))
    (fun (f, eps_frac) ->
      let eps = eps_frac *. Float.max 1e-6 (Plc.peak f) in
      let g = Plc.coarsen ~eps f in
      let ok = ref true in
      if Plc.n_pieces g > Plc.n_pieces f then ok := false;
      (* same domain and exact endpoint values *)
      if Plc.cap g <> Plc.cap f then ok := false;
      if Plc.peak g <> Plc.peak f then ok := false;
      (* slopes stay strictly decreasing (canonical form) *)
      let gs = Plc.Flat.slopes g in
      for i = 1 to Array.length gs - 1 do
        if gs.(i) >= gs.(i - 1) then ok := false
      done;
      (* certified bound, checked at f's breakpoints (where the max
         deviation lives) and off-grid *)
      let dev x =
        let d = Plc.eval f x -. Plc.eval g x in
        if d < -1e-9 || d > eps +. 1e-9 then ok := false
      in
      Array.iter dev (Plc.Flat.breakpoints f);
      for i = 0 to 60 do
        dev (Plc.cap f *. float_of_int i /. 60.0)
      done;
      !ok)

let () =
  Alcotest.run "utility-plc"
    [
      ( "plc",
        [
          Alcotest.test_case "eval" `Quick test_eval;
          Alcotest.test_case "cap/peak/max_slope" `Quick test_cap_peak_max_slope;
          Alcotest.test_case "slope_right" `Quick test_slope_right;
          Alcotest.test_case "demand" `Quick test_demand;
          Alcotest.test_case "demand monotone" `Quick test_demand_monotone_in_price;
          Alcotest.test_case "constant" `Quick test_constant;
          Alcotest.test_case "capped_linear" `Quick test_capped_linear;
          Alcotest.test_case "two_piece" `Quick test_two_piece;
          Alcotest.test_case "validation" `Quick test_create_validation;
          Alcotest.test_case "merges collinear" `Quick test_create_merges_collinear;
          Alcotest.test_case "unsorted/dedup" `Quick test_create_unsorted_dedup;
          Alcotest.test_case "segments" `Quick test_segments;
          Alcotest.test_case "restrict" `Quick test_restrict;
          Alcotest.test_case "scale" `Quick test_scale;
          Alcotest.test_case "equal" `Quick test_equal;
          Alcotest.test_case "flat accessors" `Quick test_flat_accessors;
          Alcotest.test_case "coarsen" `Quick test_coarsen_basic;
        ] );
      Helpers.qsuite "properties"
        [
          prop_eval_concave;
          prop_demand_inverse;
          prop_slopes_strictly_decreasing;
          prop_eval_matches_segments;
          prop_flat_queries_match_reference;
          prop_coarsen_certified;
        ];
    ]
