(* Tests for the socket transport (Aa_net.Frame / Aa_net.Listener) and
   the sharded dispatch behind it (Aa_service.Shard): framing, routing
   arithmetic, n=1 wire identity, concurrent in-process clients, and an
   end-to-end aa_serve --listen session with two clients. *)

open Aa_utility
open Aa_service
module Frame = Aa_net.Frame
module Listener = Aa_net.Listener

let cap = 10.0
let u_pow = Utility.Shapes.power ~cap ~coeff:4.0 ~beta:0.5
let or_fail = function Ok v -> v | Error e -> Alcotest.fail e

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec at i = i + n <= h && (String.sub hay i n = needle || at (i + 1)) in
  at 0

(* ---------- framing ---------- *)

let test_frame_codec () =
  Alcotest.(check string) "encode" "5 STATS\n" (Frame.encode "STATS");
  (match Frame.decode "5 STATS" with
  | Ok { payload = "STATS"; framed = true } -> ()
  | Ok _ | Error _ -> Alcotest.fail "framed decode");
  (* a line whose first token is not a number is raw, verbatim *)
  (match Frame.decode "ADMIT power 4 0.5" with
  | Ok { payload = "ADMIT power 4 0.5"; framed = false } -> ()
  | Ok _ | Error _ -> Alcotest.fail "raw decode");
  (* declared length must match exactly *)
  (match Frame.decode "4 STATS" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted a length mismatch");
  (match Frame.decode "6 STATS" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted a length mismatch");
  (* a bare number is neither a frame nor a protocol verb *)
  (match Frame.decode "123" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted a bare number");
  (* round trip, including a payload that itself starts with digits *)
  List.iter
    (fun payload ->
      let line = Frame.encode payload in
      let line = String.sub line 0 (String.length line - 1) in
      match Frame.decode line with
      | Ok { payload = p; framed = true } when p = payload -> ()
      | Ok _ | Error _ -> Alcotest.failf "%S did not round-trip" payload)
    [ "STATS"; "42 is not a length"; ""; "QUERY 7" ]

let test_frame_reader () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Frame.write_all b "alpha\r\nbeta\n";
  Frame.write_all b "gam";
  Frame.write_all b "ma\nfinal-no-newline";
  Unix.close b;
  let r = Frame.reader a in
  Alcotest.(check (list (option string)))
    "lines, \\r\\n stripped, torn tail still delivered"
    [ Some "alpha"; Some "beta"; Some "gamma"; Some "final-no-newline"; None ]
    (List.init 5 (fun _ -> Frame.read_line r));
  Unix.close a

(* ---------- shard routing ---------- *)

let test_server_counts () =
  Alcotest.(check (array int)) "7 over 3" [| 3; 2; 2 |]
    (Shard.server_counts ~servers:7 ~shards:3);
  Alcotest.(check (array int)) "4 over 1" [| 4 |]
    (Shard.server_counts ~servers:4 ~shards:1);
  Alcotest.(check (array int)) "8 over 4" [| 2; 2; 2; 2 |]
    (Shard.server_counts ~servers:8 ~shards:4);
  match Shard.server_counts ~servers:2 ~shards:3 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "accepted fewer servers than shards"

let make_shard ?window_s ~servers ~shards () =
  let counts = Shard.server_counts ~servers ~shards in
  Shard.create ?window_s
    (Array.init shards (fun k ->
         Engine.create ~servers:counts.(k) ~capacity:cap ()))

let submit_ok sh req =
  match Shard.submit sh req with
  | Shard.Reply (Protocol.Err { message; _ }) -> Alcotest.fail message
  | Shard.Reply r -> r
  | Shard.Crashed name -> Alcotest.failf "crashed at %s" name

let test_shard_routing () =
  let sh = make_shard ~servers:4 ~shards:2 () in
  Fun.protect ~finally:(fun () -> Shard.shutdown sh) @@ fun () ->
  Alcotest.(check int) "shards accessor" 2 (Shard.shards sh);
  Alcotest.(check int) "one engine per shard" 2
    (Array.length (Shard.engines sh));
  Alcotest.(check bool) "no crash yet" true (Shard.crashed sh = None);
  (* the pipelining interface: post returns a ticket, await resolves it *)
  (match Shard.await sh (Shard.post sh Protocol.Stats) with
  | Shard.Reply (Protocol.Stats_report _) -> ()
  | _ -> Alcotest.fail "post/await did not yield a STATS report");
  (* ADMITs round-robin: ids are dense and interleave the shards
     (g = l*n + s), servers land in the owning shard's block *)
  List.iteri
    (fun i (want_id, lo, hi) ->
      match submit_ok sh (Protocol.Admit u_pow) with
      | Protocol.Admitted { id; server } ->
          Alcotest.(check int) (Printf.sprintf "admit %d id" i) want_id id;
          if server < lo || server >= hi then
            Alcotest.failf "admit %d server %d outside shard block [%d,%d)" i
              server lo hi
      | r -> Alcotest.failf "unexpected %s" (Protocol.print_response r))
    [ (0, 0, 2); (1, 2, 4); (2, 0, 2); (3, 2, 4) ];
  (* point requests route by id arithmetic *)
  (match submit_ok sh (Protocol.Query 3) with
  | Protocol.Thread_info { id = 3; server; _ } ->
      if server < 2 then Alcotest.failf "thread 3 reported server %d" server
  | r -> Alcotest.failf "unexpected %s" (Protocol.print_response r));
  (match submit_ok sh (Protocol.Depart 1) with
  | Protocol.Departed { id = 1 } -> ()
  | r -> Alcotest.failf "unexpected %s" (Protocol.print_response r));
  (* an unknown id still routes somewhere and errs with the shard named *)
  (match Shard.submit sh (Protocol.Query 999) with
  | Shard.Reply (Protocol.Err { message; _ }) ->
      if not (contains ~needle:"[shard 1]" message) then
        Alcotest.failf "error does not name shard 1: %s" message
  | o ->
      Alcotest.failf "unexpected %s"
        (match o with Shard.Reply r -> Protocol.print_response r | _ -> "crash"));
  (* STATS is an aggregated consistent cut with per-shard entries *)
  (match submit_ok sh Protocol.Stats with
  | Protocol.Stats_report kvs ->
      let get k =
        match List.assoc_opt k kvs with
        | Some v -> v
        | None -> Alcotest.failf "STATS missing %s" k
      in
      Alcotest.(check string) "shards" "2" (get "shards");
      Alcotest.(check string) "admitted" "4" (get "admitted");
      Alcotest.(check string) "active" "3" (get "active");
      Alcotest.(check string) "shard.0.admitted" "2" (get "shard.0.admitted");
      Alcotest.(check string) "shard.1.admitted" "2" (get "shard.1.admitted")
  | r -> Alcotest.failf "unexpected %s" (Protocol.print_response r));
  match submit_ok sh Protocol.Rebalance with
  | Protocol.Rebalance_report { online; _ } ->
      if not (online > 0.0) then Alcotest.fail "online utility should be > 0"
  | r -> Alcotest.failf "unexpected %s" (Protocol.print_response r)

let test_single_shard_wire_identity () =
  (* with n = 1 every mapping is the identity: the sharded daemon's
     wire output is byte-identical to the plain engine's (STATS and
     TRACE excluded — latency metrics are schedule-dependent) *)
  let script =
    [
      "ADMIT power 4 0.5"; "ADMIT log 3 1"; "# a comment"; "QUERY 1";
      "UPDATE 0 power 2 0.5"; "DEPART 1"; ""; "QUERY 1"; "SNAPSHOT";
      "REBALANCE"; "DEPART 99"; "frob";
    ]
  in
  let plain = Engine.create ~servers:3 ~capacity:cap () in
  let sh = make_shard ~servers:3 ~shards:1 () in
  Fun.protect ~finally:(fun () -> Shard.shutdown sh) @@ fun () ->
  List.iter
    (fun line ->
      let want =
        Option.map Protocol.print_response (Engine.handle_line plain line)
      in
      let got =
        match Shard.handle_line sh line with
        | None -> None
        | Some (Shard.Reply r) -> Some (Protocol.print_response r)
        | Some (Shard.Crashed name) -> Alcotest.failf "crashed at %s" name
      in
      Alcotest.(check (option string)) line want got)
    script

(* ---------- in-process listener, concurrent clients ---------- *)

let with_client addr f =
  let fd = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd addr;
      f fd (Frame.reader fd))

(* One request, one reply, framed or raw — the reply must mirror the
   request's framing. *)
let roundtrip ~framed fd r line =
  Frame.write_all fd (if framed then Frame.encode line else line ^ "\n");
  match Frame.read_msg r with
  | Some (Ok m) ->
      Alcotest.(check bool)
        (Printf.sprintf "reply framing mirrors request (%s)" line)
        framed m.framed;
      m.payload
  | Some (Error e) -> Alcotest.failf "bad reply to %S: %s" line e
  | None -> Alcotest.failf "connection closed before reply to %S" line

let test_listener_concurrent_clients () =
  let sh = make_shard ~window_s:0.002 ~servers:4 ~shards:2 () in
  let l =
    or_fail
      (Listener.serve ~addr:(Unix.ADDR_INET (Unix.inet_addr_loopback, 0)) sh)
  in
  Fun.protect
    ~finally:(fun () ->
      Listener.stop l;
      Shard.shutdown sh)
  @@ fun () ->
  let addr = Listener.sockaddr l in
  let n_each = 8 in
  let errors = Mutex.create () and errs = ref [] in
  (* two clients admit concurrently — one raw, one framed — and each
     pipelines its burst in a single write so the shard queues actually
     see depth (the group-commit path, minus the journal) *)
  let client framed () =
    try
      with_client addr @@ fun fd r ->
      let lines = List.init n_each (fun _ -> "ADMIT power 4 0.5") in
      String.concat ""
        (List.map
           (fun s -> if framed then Frame.encode s else s ^ "\n")
           lines)
      |> Frame.write_all fd;
      List.iter
        (fun _ ->
          match Frame.read_msg r with
          | Some (Ok m) ->
              if m.framed <> framed then failwith "framing not mirrored";
              if not (contains ~needle:"OK admit" m.payload) then
                failwith ("not an ack: " ^ m.payload)
          | Some (Error e) -> failwith e
          | None -> failwith "closed early")
        lines
    with e ->
      Mutex.lock errors;
      errs := Printexc.to_string e :: !errs;
      Mutex.unlock errors
  in
  let t1 = Thread.create (client false) () in
  let t2 = Thread.create (client true) () in
  Thread.join t1;
  Thread.join t2;
  (match !errs with [] -> () | e :: _ -> Alcotest.fail e);
  (* a third connection observes everything both clients did *)
  with_client addr @@ fun fd r ->
  let reply = roundtrip ~framed:false fd r "STATS" in
  if not (contains ~needle:(Printf.sprintf "admitted=%d" (2 * n_each)) reply)
  then Alcotest.failf "STATS after 2 clients x %d admits: %s" n_each reply

(* ---------- rid-linked cross-shard traces ---------- *)

let test_rebalance_rid_trace () =
  (* a REBALANCE over 4 shards is one request context shared by all
     barrier workers: every per-shard rebalance span must carry the
     same rid while naming its own shard *)
  let module Trace = Aa_obs.Trace in
  Aa_obs.Control.set_enabled true;
  Aa_obs.Rctx.set_enabled true;
  Trace.clear ();
  Fun.protect
    ~finally:(fun () ->
      Aa_obs.Rctx.set_enabled false;
      Aa_obs.Control.set_enabled false;
      Trace.clear ())
  @@ fun () ->
  let sh = make_shard ~servers:8 ~shards:4 () in
  for _ = 1 to 8 do
    ignore (submit_ok sh (Protocol.Admit u_pow))
  done;
  (match submit_ok sh Protocol.Rebalance with
  | Protocol.Rebalance_report _ -> ()
  | r -> Alcotest.failf "unexpected %s" (Protocol.print_response r));
  (* shutdown joins the worker domains: the rings are quiescent *)
  Shard.shutdown sh;
  let evs =
    List.filter
      (fun (e : Trace.event) -> e.name = "rebalance" && e.is_begin)
      (Trace.events ())
  in
  if List.length evs < 4 then
    Alcotest.failf "want >= 4 per-shard rebalance spans, got %d"
      (List.length evs);
  let uniq f = List.sort_uniq compare (List.map f evs) in
  (match uniq (fun (e : Trace.event) -> e.rid) with
  | [ rid ] when rid >= 0 -> ()
  | rids ->
      Alcotest.failf "rebalance spans carry %d distinct rids, want 1"
        (List.length rids));
  let shards_seen = uniq (fun (e : Trace.event) -> e.shard) in
  if List.length shards_seen < 2 then
    Alcotest.failf "rebalance trace names %d shard(s), want >= 2"
      (List.length shards_seen)

(* ---------- end-to-end: aa_serve --listen ---------- *)

let serve_bin =
  List.find_opt Sys.file_exists
    [ "../bin/aa_serve.exe"; "_build/default/bin/aa_serve.exe" ]
  |> Option.value ~default:"../bin/aa_serve.exe"

(* Spawn the daemon with stdin held open on a pipe (closing it is the
   shutdown signal), run [f] against its unix socket, return the exit
   status. Bounded waits everywhere — a wedged daemon fails the test,
   it does not hang the suite. *)
let with_daemon ?(faults = []) args f =
  let sock = Filename.temp_file "aa_net_e2e" ".sock" in
  Sys.remove sock;
  let err_path = Filename.temp_file "aa_net_e2e" ".err" in
  (* cloexec: the daemon must not inherit the write end of its own
     stdin pipe, or closing it here would never deliver EOF *)
  let stdin_r, stdin_w = Unix.pipe ~cloexec:true () in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY; Unix.O_CLOEXEC ] 0 in
  let err_fd =
    Unix.openfile err_path [ Unix.O_WRONLY; Unix.O_TRUNC; Unix.O_CLOEXEC ] 0o600
  in
  let argv =
    Array.of_list
      ((serve_bin :: "--listen" :: ("unix:" ^ sock) :: args) @ faults)
  in
  let pid = Unix.create_process serve_bin argv stdin_r devnull err_fd in
  Unix.close stdin_r;
  Unix.close devnull;
  Unix.close err_fd;
  let addr = Unix.ADDR_UNIX sock in
  let deadline = Unix.gettimeofday () +. 10.0 in
  let rec wait_sock () =
    if Unix.gettimeofday () > deadline then begin
      Unix.kill pid Sys.sigkill;
      Alcotest.fail "daemon did not open its socket within 10s"
    end
    else if not (Sys.file_exists sock) then begin
      Thread.delay 0.02;
      wait_sock ()
    end
  in
  wait_sock ();
  let close_stdin () =
    try Unix.close stdin_w with Unix.Unix_error _ -> ()
  in
  Fun.protect ~finally:close_stdin (fun () -> f addr close_stdin);
  let rec reap tries =
    match Unix.waitpid [ Unix.WNOHANG ] pid with
    | 0, _ ->
        if tries = 0 then begin
          Unix.kill pid Sys.sigkill;
          ignore (Unix.waitpid [] pid);
          Alcotest.fail "daemon did not exit within 10s of stdin closing"
        end
        else begin
          Thread.delay 0.02;
          reap (tries - 1)
        end
    | _, Unix.WEXITED code -> code
    | _, (Unix.WSIGNALED s | Unix.WSTOPPED s) ->
        Alcotest.failf "daemon killed by signal %d" s
  in
  let code = reap 500 in
  let err = In_channel.with_open_text err_path In_channel.input_all in
  if Sys.file_exists sock then Sys.remove sock;
  Sys.remove err_path;
  (code, err)

let test_e2e_two_clients () =
  let code, err =
    with_daemon [ "-m"; "4"; "-C"; "10"; "--shards"; "2" ]
      (fun addr _close ->
        let done1 = ref false and done2 = ref false in
        let client flag framed () =
          with_client addr @@ fun fd r ->
          let a = roundtrip ~framed fd r "ADMIT power 4 0.5" in
          let b = roundtrip ~framed fd r "ADMIT log 3 1" in
          if contains ~needle:"OK admit" a
             && contains ~needle:"OK admit" b
          then flag := true
        in
        let t1 = Thread.create (client done1 false) () in
        let t2 = Thread.create (client done2 true) () in
        Thread.join t1;
        Thread.join t2;
        Alcotest.(check bool) "raw client served" true !done1;
        Alcotest.(check bool) "framed client served" true !done2;
        with_client addr @@ fun fd r ->
        let reply = roundtrip ~framed:false fd r "STATS" in
        if not (contains ~needle:"admitted=4" reply) then
          Alcotest.failf "STATS: %s" reply)
  in
  Alcotest.(check int) "clean exit on stdin close" 0 code;
  if not (contains ~needle:"listening on unix:" err) then
    Alcotest.failf "startup banner missing: %s" err

(* ---------- end-to-end: HTTP ops surface ---------- *)

(* One-shot HTTP GET against the daemon's protocol port: write the
   request, read to EOF (the ops surface closes after one response),
   return (status code, header block, body). *)
let http_get addr target =
  with_client addr @@ fun fd _r ->
  Frame.write_all fd
    (Printf.sprintf "GET %s HTTP/1.1\r\nHost: aa\r\nAccept: */*\r\n\r\n" target);
  let b = Buffer.create 4096 in
  let chunk = Bytes.create 4096 in
  let rec drain () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | n ->
        Buffer.add_subbytes b chunk 0 n;
        drain ()
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> ()
  in
  drain ();
  let resp = Buffer.contents b in
  let split = "\r\n\r\n" in
  let cut =
    let n = String.length split and h = String.length resp in
    let rec at i =
      if i + n > h then
        Alcotest.failf "no header/body split in %S" (String.sub resp 0 (min h 80))
      else if String.sub resp i n = split then i
      else at (i + 1)
    in
    at 0
  in
  let head = String.sub resp 0 cut in
  let body = String.sub resp (cut + 4) (String.length resp - cut - 4) in
  let code =
    match String.split_on_char ' ' head with
    | "HTTP/1.1" :: c :: _ -> int_of_string c
    | _ -> Alcotest.failf "bad status line: %S" head
  in
  (code, head, body)

(* Minimal Prometheus text-format check: every line is a # comment or
   [name value] with a sane metric name and a parseable value. *)
let check_prometheus_exposition body =
  String.split_on_char '\n' body
  |> List.iter (fun line ->
         if line <> "" && line.[0] <> '#' then
           match String.split_on_char ' ' line with
           | [ name; value ] ->
               let name_ok =
                 name <> ""
                 && String.for_all
                      (function
                        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '{'
                        | '}' | '=' | '"' | '+' | '.' | '-' ->
                            true
                        | _ -> false)
                      name
               in
               if not name_ok then Alcotest.failf "bad metric name: %S" line;
               if float_of_string_opt value = None then
                 Alcotest.failf "unparseable sample value: %S" line
           | _ -> Alcotest.failf "not a [name value] sample line: %S" line)

let test_e2e_ops_endpoints () =
  let code, _err =
    with_daemon
      [ "-m"; "4"; "-C"; "10"; "--shards"; "2"; "--trace"; "--coarsen"; "0.1" ]
      (fun addr _close ->
        (* populate, then REBALANCE so the certified gauges are live *)
        (with_client addr @@ fun fd r ->
         for i = 0 to 3 do
           let reply =
             roundtrip ~framed:false fd r "ADMIT power 4 0.5"
           in
           if not (contains ~needle:"OK admit" reply) then
             Alcotest.failf "admit %d: %s" i reply
         done;
         let reply = roundtrip ~framed:false fd r "REBALANCE" in
         if not (contains ~needle:"OK rebalance" reply) then
           Alcotest.failf "REBALANCE: %s" reply);
        (* /metrics: Prometheus exposition with the utility-interval
           gauges, scraped over the same port as the protocol *)
        let code, head, body = http_get addr "/metrics" in
        Alcotest.(check int) "/metrics status" 200 code;
        if not (contains ~needle:"Content-Type: text/plain" head) then
          Alcotest.failf "/metrics content type: %s" head;
        check_prometheus_exposition body;
        List.iter
          (fun needle ->
            if not (contains ~needle body) then
              Alcotest.failf "/metrics missing %s" needle)
          [
            "# TYPE aa_engine_utility gauge"; "aa_engine_utility_lower";
            "aa_engine_utility_upper"; "aa_engine_alpha_bound_gap";
            "aa_obs_trace_overwritten";
          ];
        String.split_on_char '\n' body
        |> List.iter (fun line ->
               match String.split_on_char ' ' line with
               | [ "aa_engine_utility"; v ] ->
                   if not (float_of_string v > 0.0) then
                     Alcotest.failf "utility gauge not live: %s" line
               | _ -> ());
        (* /healthz: liveness JSON with per-shard rows *)
        let code, head, body = http_get addr "/healthz" in
        Alcotest.(check int) "/healthz status" 200 code;
        if not (contains ~needle:"application/json" head) then
          Alcotest.failf "/healthz content type: %s" head;
        List.iter
          (fun needle ->
            if not (contains ~needle body) then
              Alcotest.failf "/healthz missing %s: %s" needle body)
          [ "\"status\":\"ok\""; "\"shards\":2"; "\"shard_health\"" ];
        (* /tracez always answers, even with nothing captured *)
        let code, _, _ = http_get addr "/tracez" in
        Alcotest.(check int) "/tracez status" 200 code;
        let code, _, _ = http_get addr "/nope" in
        Alcotest.(check int) "unknown path" 404 code)
  in
  Alcotest.(check int) "clean exit" 0 code

(* ---------- end-to-end: access log ---------- *)

let alog_keys =
  [
    "\"ts\":"; "\"rid\":"; "\"conn\":"; "\"kind\":"; "\"shard\":";
    "\"outcome\":"; "\"bytes\":"; "\"total_ns\":"; "\"validate_ns\":";
    "\"journal_ns\":"; "\"apply_ns\":"; "\"commit_wait_ns\":";
  ]

let alog_int_field line key =
  let tag = "\"" ^ key ^ "\":" in
  let n = String.length tag and h = String.length line in
  let rec at i =
    if i + n > h then Alcotest.failf "no %s in %S" key line
    else if String.sub line i n = tag then i + n
    else at (i + 1)
  in
  let start = at 0 in
  let stop = ref start in
  while
    !stop < h && (match line.[!stop] with '0' .. '9' | '-' -> true | _ -> false)
  do
    incr stop
  done;
  int_of_string (String.sub line start (!stop - start))

let test_e2e_access_log () =
  let log_path = Filename.temp_file "aa_net_alog" ".jsonl" in
  let n_each = 8 in
  let code, _err =
    with_daemon
      [ "-m"; "4"; "-C"; "10"; "--shards"; "2"; "--access-log"; log_path ]
      (fun addr _close ->
        let errors = Mutex.create () and errs = ref [] in
        (* two clients pipeline their bursts concurrently — the log must
           still come out one complete record per acked request *)
        let client framed () =
          try
            with_client addr @@ fun fd r ->
            let lines = List.init n_each (fun _ -> "ADMIT power 4 0.5") in
            String.concat ""
              (List.map
                 (fun s -> if framed then Frame.encode s else s ^ "\n")
                 lines)
            |> Frame.write_all fd;
            List.iter
              (fun _ ->
                match Frame.read_msg r with
                | Some (Ok m) ->
                    if not (contains ~needle:"OK admit" m.payload) then
                      failwith ("not an ack: " ^ m.payload)
                | Some (Error e) -> failwith e
                | None -> failwith "closed early")
              lines
          with e ->
            Mutex.lock errors;
            errs := Printexc.to_string e :: !errs;
            Mutex.unlock errors
        in
        let t1 = Thread.create (client false) () in
        let t2 = Thread.create (client true) () in
        Thread.join t1;
        Thread.join t2;
        (match !errs with [] -> () | e :: _ -> Alcotest.fail e);
        with_client addr @@ fun fd r ->
        let reply = roundtrip ~framed:false fd r "STATS" in
        if not (contains ~needle:(Printf.sprintf "admitted=%d" (2 * n_each)) reply)
        then Alcotest.failf "STATS: %s" reply)
  in
  Alcotest.(check int) "clean exit" 0 code;
  let raw = In_channel.with_open_text log_path In_channel.input_all in
  Sys.remove log_path;
  (* JSONL with a tolerated torn tail: complete records are exactly the
     newline-terminated lines; anything after the last newline is a torn
     fragment a crash may leave and readers must skip *)
  let records =
    String.split_on_char '\n' raw
    |> List.filteri (fun i line ->
           let complete = contains ~needle:"}" line in
           if (not complete) && line <> "" then begin
             let n_lines = List.length (String.split_on_char '\n' raw) in
             if i <> n_lines - 1 then
               Alcotest.failf "torn record not at the tail: %S" line
           end;
           complete)
  in
  Alcotest.(check int) "one record per acked request"
    ((2 * n_each) + 1)
    (List.length records);
  List.iter
    (fun line ->
      if line.[0] <> '{' || line.[String.length line - 1] <> '}' then
        Alcotest.failf "not a JSON object line: %S" line;
      List.iter
        (fun key ->
          if not (contains ~needle:key line) then
            Alcotest.failf "record missing %s: %S" key line)
        alog_keys;
      if not (contains ~needle:"\"outcome\":\"ok\"" line) then
        Alcotest.failf "outcome not ok: %S" line;
      if alog_int_field line "total_ns" <= 0 then
        Alcotest.failf "total_ns not stamped: %S" line)
    records;
  let rids = List.map (fun l -> alog_int_field l "rid") records in
  Alcotest.(check int) "rids unique"
    (List.length rids)
    (List.length (List.sort_uniq compare rids));
  let kinds k =
    List.length (List.filter (contains ~needle:(Printf.sprintf "\"kind\":%S" k)) records)
  in
  Alcotest.(check int) "admit records" (2 * n_each) (kinds "admit");
  Alcotest.(check int) "stats records" 1 (kinds "stats")

let test_e2e_group_commit_crash_exits_70 () =
  (* a crash failpoint inside the group-commit window: the daemon dies
     with acks withheld and the injected-crash status, exactly like the
     single-engine --faults path *)
  let journal = Filename.temp_file "aa_net_e2e" ".log" in
  Sys.remove journal;
  let code, err =
    with_daemon
      ~faults:[ "--faults"; "journal.group.fsync=nth:1" ]
      [
        "-m"; "4"; "-C"; "10"; "--shards"; "2"; "--journal"; journal;
        "--group-commit-window"; "0.2";
      ]
      (fun addr _close ->
        with_client addr @@ fun fd r ->
        (* one pipelined burst of 3 — the 0.2 s window guarantees the
           worker drains them as one group, which trips the failpoint *)
        Frame.write_all fd
          "ADMIT power 4 0.5\nADMIT power 4 0.5\nADMIT power 4 0.5\n";
        match Frame.read_msg r with
        | None -> () (* connection dropped, acks withheld — the point *)
        | Some (Ok m) -> Alcotest.failf "got an ack: %s" m.payload
        | Some (Error e) -> Alcotest.failf "bad reply: %s" e)
  in
  Alcotest.(check int) "injected-crash exit" 70 code;
  if not (contains ~needle:"injected crash at failpoint journal.group.fsync" err)
  then Alcotest.failf "crash not reported on stderr: %s" err;
  (* every shard journal replays cleanly (torn group tail repaired) *)
  List.iter
    (fun k ->
      let path = Printf.sprintf "%s.shard%d" journal k in
      (match Engine.of_journal ~fsync:Journal.Never ~path () with
      | Ok e -> (
          match Engine.journal e with Some j -> Journal.close j | None -> ())
      | Error m -> Alcotest.failf "shard %d replay: %s" k m);
      Sys.remove path)
    [ 0; 1 ]

let () =
  Alcotest.run "net"
    [
      ( "frame",
        [
          Alcotest.test_case "codec" `Quick test_frame_codec;
          Alcotest.test_case "reader" `Quick test_frame_reader;
        ] );
      ( "shard",
        [
          Alcotest.test_case "server counts" `Quick test_server_counts;
          Alcotest.test_case "routing" `Quick test_shard_routing;
          Alcotest.test_case "n=1 wire identity" `Quick
            test_single_shard_wire_identity;
          Alcotest.test_case "rebalance rid-linked trace" `Quick
            test_rebalance_rid_trace;
        ] );
      ( "listener",
        [
          Alcotest.test_case "concurrent clients" `Quick
            test_listener_concurrent_clients;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "two clients e2e" `Quick test_e2e_two_clients;
          Alcotest.test_case "ops endpoints over the socket" `Quick
            test_e2e_ops_endpoints;
          Alcotest.test_case "access log e2e" `Quick test_e2e_access_log;
          Alcotest.test_case "group-commit crash exits 70" `Quick
            test_e2e_group_commit_crash_exits_70;
        ] );
    ]
