(* Integration tests for the `aa` command-line tool: drive the real
   binary end to end (generate -> solve -> eval) through a shell. *)

(* `dune runtest` runs tests from their build directory; `dune exec`
   from the project root — accept either. *)
let cli =
  List.find_opt Sys.file_exists [ "../bin/aa_cli.exe"; "_build/default/bin/aa_cli.exe" ]
  |> Option.value ~default:"../bin/aa_cli.exe"

let run ?(expect = 0) args =
  let cmd = Filename.quote_command cli args in
  let code = Sys.command (cmd ^ " > cli_stdout.txt 2> cli_stderr.txt") in
  if code <> expect then begin
    let err = In_channel.with_open_text "cli_stderr.txt" In_channel.input_all in
    Alcotest.failf "%s: exit %d (expected %d)\nstderr: %s" (String.concat " " args) code
      expect err
  end;
  In_channel.with_open_text "cli_stdout.txt" In_channel.input_all

let test_exists () =
  if not (Sys.file_exists cli) then Alcotest.failf "CLI binary missing at %s" cli

let test_generate_solve_eval () =
  let _ =
    run [ "generate"; "--dist"; "uniform"; "-n"; "6"; "-m"; "2"; "-C"; "10"; "-o"; "inst.aa" ]
  in
  Alcotest.(check bool) "instance written" true (Sys.file_exists "inst.aa");
  List.iter
    (fun algo ->
      let _ = run [ "solve"; "--algo"; algo; "inst.aa"; "-o"; "sol.aa" ] in
      let out = run [ "eval"; "inst.aa"; "sol.aa" ] in
      let feasible =
        String.length out >= 8 && String.sub out 0 8 = "feasible"
      in
      if not feasible then Alcotest.failf "%s: eval said %S" algo out)
    [ "algo1"; "algo2"; "uu"; "ur"; "ru"; "rr"; "online"; "ls"; "exact" ]

let test_solve_unknown_algo_fails () =
  ignore (run ~expect:124 [ "solve"; "--algo"; "nope"; "inst.aa" ])

let test_eval_rejects_corrupt_solution () =
  Out_channel.with_open_text "bad.aa" (fun oc ->
      Out_channel.output_string oc "assign 0 0 1e9\nassign 1 0 0\nassign 2 0 0\nassign 3 0 0\nassign 4 0 0\nassign 5 0 0\n");
  ignore (run ~expect:1 [ "eval"; "inst.aa"; "bad.aa" ])

let test_generate_all_distributions () =
  List.iter
    (fun dist ->
      let out =
        run
          [ "generate"; "--dist"; dist; "-n"; "3"; "-m"; "2"; "-C"; "50"; "--seed"; "9" ]
      in
      if String.length out < 20 then Alcotest.failf "%s: output too short" dist)
    [ "uniform"; "normal"; "powerlaw"; "discrete" ]

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec scan i = i + nn <= nh && (String.sub haystack i nn = needle || scan (i + 1)) in
  nn = 0 || scan 0

let test_online_subcommand () =
  let _ =
    run
      [ "generate"; "--dist"; "uniform"; "-n"; "8"; "-m"; "3"; "-C"; "20"; "--seed"; "5";
        "-o"; "inst_online.aa" ]
  in
  let _ = run [ "online"; "inst_online.aa"; "-o"; "sol_online.aa" ] in
  let err = In_channel.with_open_text "cli_stderr.txt" In_channel.input_all in
  List.iter
    (fun needle ->
      if not (contains err needle) then
        Alcotest.failf "online summary %S missing %S" err needle)
    [ "online utility:"; "offline algo2:"; "gap (online/algo2):" ];
  let out = run [ "eval"; "inst_online.aa"; "sol_online.aa" ] in
  if not (String.length out >= 8 && String.sub out 0 8 = "feasible") then
    Alcotest.failf "online assignment not feasible: %S" out

let test_figures_lists () =
  let out = run [ "figures" ] in
  List.iter
    (fun id ->
      if not (contains out id) then Alcotest.failf "missing %s in figures output" id)
    [ "fig1a"; "fig3c" ]

let test_sweep_runs () =
  let out = run [ "sweep"; "fig3b"; "--trials"; "2" ] in
  if String.length out < 100 then Alcotest.fail "sweep output too short"

let test_sweep_jobs_flag () =
  let a = run [ "sweep"; "fig3c"; "--trials"; "2"; "--jobs"; "1" ] in
  let b = run [ "sweep"; "fig3c"; "--trials"; "2"; "--jobs"; "2" ] in
  if String.length a < 100 then Alcotest.fail "sweep --jobs output too short";
  Alcotest.(check string) "job count never changes the series" a b

let test_sweep_rejects_bad_jobs () =
  (* zero or garbage pool sizes are CLI errors (typed conv), like
     aa_serve's flag validation — not mid-run crashes *)
  ignore (run ~expect:124 [ "sweep"; "fig3c"; "--trials"; "2"; "--jobs"; "0" ]);
  ignore (run ~expect:124 [ "sweep"; "fig3c"; "--trials"; "2"; "--jobs=-3" ]);
  ignore (run ~expect:124 [ "sweep"; "fig3c"; "--trials"; "2"; "--jobs"; "two" ])

let test_sweep_trace_export () =
  (* tracing must not perturb the numbers: stdout is bit-identical with
     and without --trace, and the trace file is a Chrome-style JSON
     array with events from more than one domain *)
  let plain = run [ "sweep"; "fig3c"; "--trials"; "2"; "--jobs"; "2" ] in
  let traced =
    run
      [ "sweep"; "fig3c"; "--trials"; "2"; "--jobs"; "2"; "--trace"; "sweep_trace.json";
        "--counters" ]
  in
  Alcotest.(check string) "stdout unchanged by --trace" plain traced;
  let err = In_channel.with_open_text "cli_stderr.txt" In_channel.input_all in
  Alcotest.(check bool) "counters on stderr" true (contains err "algo2.solves");
  Alcotest.(check bool) "trace note on stderr" true (contains err "wrote trace:");
  let doc = In_channel.with_open_text "sweep_trace.json" In_channel.input_all in
  Alcotest.(check bool) "trace nonempty" true (String.length doc > 2);
  Alcotest.(check bool) "starts as a JSON array" true (doc.[0] = '[');
  Alcotest.(check bool) "has begin and end events" true
    (contains doc "\"ph\":\"B\"" && contains doc "\"ph\":\"E\"");
  Alcotest.(check bool) "events from a worker domain" true
    (contains doc "\"tid\":1" || contains doc "\"tid\":2" || contains doc "\"tid\":3")

let test_sweep_svg_export () =
  let _ = run [ "sweep"; "fig3c"; "--trials"; "2"; "--svg"; "fig.svg" ] in
  let doc = In_channel.with_open_text "fig.svg" In_channel.input_all in
  Alcotest.(check bool) "svg written" true (contains doc "</svg>")

let () =
  Alcotest.run "cli"
    [
      ( "cli",
        [
          Alcotest.test_case "binary exists" `Quick test_exists;
          Alcotest.test_case "generate/solve/eval" `Quick test_generate_solve_eval;
          Alcotest.test_case "unknown algo" `Quick test_solve_unknown_algo_fails;
          Alcotest.test_case "corrupt solution" `Quick test_eval_rejects_corrupt_solution;
          Alcotest.test_case "all distributions" `Quick test_generate_all_distributions;
          Alcotest.test_case "online subcommand" `Quick test_online_subcommand;
          Alcotest.test_case "figures" `Quick test_figures_lists;
          Alcotest.test_case "sweep" `Quick test_sweep_runs;
          Alcotest.test_case "sweep --jobs" `Quick test_sweep_jobs_flag;
          Alcotest.test_case "sweep bad --jobs" `Quick test_sweep_rejects_bad_jobs;
          Alcotest.test_case "sweep --trace" `Quick test_sweep_trace_export;
          Alcotest.test_case "sweep svg" `Quick test_sweep_svg_export;
        ] );
    ]
