(* Tests for Aa_obs: the clock, the histogram (incl. the merged-stream
   quantile contract), the counter/gauge registry and its determinism
   contract across pool sizes, and span recording with well-formed
   Chrome trace export — including spans recorded from several domains
   at once. *)

open Aa_obs
open Aa_parallel

(* Every test starts from a clean, enabled observability state and
   leaves the switch off; span buffers persist per domain, so clear
   them too. *)
let reset_rctx () =
  Rctx.set_enabled false;
  Rctx.set_slow_ms (-1.0);
  Rctx.slow_clear ();
  Rctx.set_slow_keep 64

let with_obs f () =
  Control.set_enabled false;
  Registry.reset ();
  Trace.clear ();
  reset_rctx ();
  Fun.protect
    ~finally:(fun () ->
      Control.set_enabled false;
      Registry.reset ();
      Trace.clear ();
      reset_rctx ())
    (fun () ->
      Control.set_enabled true;
      f ())

(* ---------- clock ---------- *)

let test_clock_monotonic () =
  let prev = ref (Clock.now_ns ()) in
  for _ = 1 to 10_000 do
    let t = Clock.now_ns () in
    if t < !prev then Alcotest.failf "clock went backwards: %d < %d" t !prev;
    prev := t
  done;
  let s = Clock.now_s () in
  Alcotest.(check bool) "now_s positive" true (s >= 0.0);
  (* wall_s is an absolute epoch timestamp: after 2020, before 2100 *)
  let w = Clock.wall_s () in
  Alcotest.(check bool) "wall_s epoch range" true (w > 1.5e9 && w < 4.2e9)

(* ---------- histogram ---------- *)

let test_histogram_empty_quantiles () =
  let h = Histogram.create () in
  Alcotest.(check int) "count" 0 (Histogram.count h);
  List.iter
    (fun q ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "empty q=%g" q)
        0.0 (Histogram.quantile h q))
    [ 0.0; 0.5; 1.0 ]

let test_histogram_invalid_q () =
  let h = Histogram.create () in
  Histogram.add h 1e-3;
  List.iter
    (fun q ->
      match Histogram.quantile h q with
      | (_ : float) -> Alcotest.failf "q=%g should raise" q
      | exception Invalid_argument _ -> ())
    [ -0.1; 1.1; Float.nan ]

let test_histogram_single_bucket () =
  let h = Histogram.create () in
  for _ = 1 to 5 do
    Histogram.add h 1e-3
  done;
  (* all mass in one bucket: every quantile is that bucket's midpoint,
     within the scheme's ~±6% bucketing error *)
  let q50 = Histogram.quantile h 0.5 and q100 = Histogram.quantile h 1.0 in
  Alcotest.(check (float 0.0)) "q50 = q100" q100 q50;
  Alcotest.(check bool)
    "midpoint near sample" true
    (Float.abs (q50 -. 1e-3) /. 1e-3 < 0.12)

let test_histogram_merge_equals_combined () =
  let a = Histogram.create () and b = Histogram.create () and c = Histogram.create () in
  let samples_a = [ 1e-6; 3e-6; 1e-4; 0.5 ] in
  let samples_b = [ 2e-6; 5e-5; 5e-5; 0.02; 7.0; 900.0 ] in
  List.iter (fun x -> Histogram.add a x; Histogram.add c x) samples_a;
  List.iter (fun x -> Histogram.add b x; Histogram.add c x) samples_b;
  let m = Histogram.merge a b in
  Alcotest.(check int)
    "merged count"
    (List.length samples_a + List.length samples_b)
    (Histogram.count m);
  List.iter
    (fun q ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "q=%g of merge = q of combined stream" q)
        (Histogram.quantile c q) (Histogram.quantile m q))
    [ 0.0; 0.25; 0.5; 0.75; 0.95; 1.0 ];
  (* merge must not alias its inputs *)
  Histogram.add a 1.0;
  Alcotest.(check int)
    "merge unaffected by later adds"
    (List.length samples_a + List.length samples_b)
    (Histogram.count m)

let test_metrics_histogram_is_obs_histogram () =
  (* the re-export is the same module: values flow across freely *)
  let h : Aa_service.Metrics.Histogram.t = Histogram.create () in
  Histogram.add h 0.5;
  Alcotest.(check int) "shared type" 1 (Aa_service.Metrics.Histogram.count h)

(* ---------- registry ---------- *)

let test_counter_basics () =
  let c = Registry.counter "test.basics" in
  Alcotest.(check int) "starts at 0" 0 (Registry.Counter.value c);
  Registry.Counter.incr c;
  Registry.Counter.add c 41;
  Alcotest.(check int) "42" 42 (Registry.Counter.value c);
  Alcotest.(check string) "name" "test.basics" (Registry.Counter.name c);
  let c' = Registry.counter "test.basics" in
  Registry.Counter.incr c';
  Alcotest.(check int) "same handle for same name" 43 (Registry.Counter.value c)

let test_counter_disabled_is_noop () =
  let c = Registry.counter "test.disabled" in
  Control.with_enabled false (fun () ->
      Registry.Counter.incr c;
      Registry.Counter.add c 100);
  Alcotest.(check int) "no effect while off" 0 (Registry.Counter.value c)

let test_gauge_basics () =
  let g = Registry.gauge "test.gauge" in
  Registry.Gauge.set g 2.5;
  Alcotest.(check (float 0.0)) "set" 2.5 (Registry.Gauge.value g);
  Control.with_enabled false (fun () -> Registry.Gauge.set g 9.0);
  Alcotest.(check (float 0.0)) "no set while off" 2.5 (Registry.Gauge.value g);
  Alcotest.(check string) "name" "test.gauge" (Registry.Gauge.name g);
  Alcotest.(check (float 0.0)) "in gauges snapshot" 2.5
    (List.assoc "test.gauge" (Registry.gauges ()))

let test_hist_basics () =
  let h = Registry.histogram ~edges:[| 1.0; 2.0; 4.0 |] "test.hist" in
  Registry.Hist.observe h 0.5;
  Registry.Hist.observe h 2.0;
  Registry.Hist.observe h 3.0;
  Registry.Hist.observe h 100.0;
  Control.with_enabled false (fun () -> Registry.Hist.observe h 9.0);
  Alcotest.(check int) "count" 4 (Registry.Hist.count h);
  Alcotest.(check string) "name" "test.hist" (Registry.Hist.name h);
  Alcotest.(check bool) "in histograms snapshot" true
    (List.mem_assoc "test.hist" (Registry.histograms ()));
  let s = Registry.Hist.snapshot h in
  (* cumulative per-edge counts; the 100.0 observation lands past the
     last edge and shows only in count / the implied +Inf bucket *)
  Alcotest.(check (list (pair (float 0.0) int)))
    "cumulative buckets"
    [ (1.0, 1); (2.0, 2); (4.0, 3) ]
    s.Registry.Hist.le;
  Alcotest.(check int) "snapshot count" 4 s.Registry.Hist.count;
  Alcotest.(check (float 1e-9)) "sum" 105.5 s.Registry.Hist.total;
  let h' = Registry.histogram ~edges:[| 1.0; 2.0; 4.0 |] "test.hist" in
  Registry.Hist.observe h' 0.1;
  Alcotest.(check int) "same handle for same name" 5 (Registry.Hist.count h);
  Alcotest.check_raises "empty edges rejected"
    (Invalid_argument "Registry.histogram: empty edges") (fun () ->
      ignore (Registry.histogram ~edges:[||] "test.hist-bad"));
  Alcotest.check_raises "non-increasing edges rejected"
    (Invalid_argument "Registry.histogram: edges not increasing") (fun () ->
      ignore (Registry.histogram ~edges:[| 2.0; 2.0 |] "test.hist-bad"))

let test_registry_snapshots_sorted () =
  ignore (Registry.counter "test.zz");
  ignore (Registry.counter "test.aa");
  let names = List.map fst (Registry.counters ()) in
  Alcotest.(check (list string)) "sorted" (List.sort compare names) names

let test_expose_format () =
  let c = Registry.counter "test.expose-me" in
  Registry.Counter.add c 7;
  let g = Registry.gauge "test.gauge/odd name" in
  Registry.Gauge.set g 1.5;
  let h = Registry.histogram ~edges:[| 1.0; 8.0 |] "test.expose-hist" in
  Registry.Hist.observe h 3.0;
  let text = Registry.expose () in
  let contains s =
    let n = String.length text and k = String.length s in
    let rec at i = i + k <= n && (String.sub text i k = s || at (i + 1)) in
    at 0
  in
  Alcotest.(check bool)
    "counter TYPE line" true
    (contains "# TYPE aa_test_expose_me counter");
  Alcotest.(check bool) "counter value line" true (contains "aa_test_expose_me 7");
  Alcotest.(check bool)
    "gauge sanitized" true
    (contains "# TYPE aa_test_gauge_odd_name gauge");
  Alcotest.(check bool)
    "histogram TYPE line" true
    (contains "# TYPE aa_test_expose_hist histogram");
  Alcotest.(check bool)
    "histogram bucket line" true
    (contains "aa_test_expose_hist_bucket{le=\"8\"} 1");
  Alcotest.(check bool)
    "histogram +Inf bucket" true
    (contains "aa_test_expose_hist_bucket{le=\"+Inf\"} 1");
  Alcotest.(check bool)
    "histogram count line" true
    (contains "aa_test_expose_hist_count 1");
  (* exposition must never contain unsanitized metric characters; the
     brace/equals/double-quote label syntax of histogram buckets and
     the backslash of HELP-text escaping are the sanctioned
     exceptions *)
  String.iter
    (fun ch ->
      match ch with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ' ' | '\n' | '#' | '.'
      | '-' | '+' | '{' | '}' | '=' | '"' | '\\' ->
          ()
      | _ -> Alcotest.failf "unexpected character %C in exposition" ch)
    text

let contains_in hay s =
  let n = String.length hay and k = String.length s in
  let rec at i = i + k <= n && (String.sub hay i k = s || at (i + 1)) in
  at 0

let test_help_lines_and_escaping () =
  ignore (Registry.counter ~help:"plain help text" "test.help-c");
  let text = Registry.expose () in
  Alcotest.(check bool)
    "HELP precedes TYPE" true
    (contains_in text "# HELP aa_test_help_c plain help text\n# TYPE aa_test_help_c counter");
  (* first registration wins, like histogram edges *)
  ignore (Registry.counter ~help:"usurper" "test.help-c");
  Alcotest.(check bool)
    "first help wins" true
    (contains_in (Registry.expose ()) "# HELP aa_test_help_c plain help text");
  Alcotest.(check bool) "no usurper" false (contains_in (Registry.expose ()) "usurper");
  (* no help registered -> no HELP line *)
  ignore (Registry.counter "test.help-none");
  Alcotest.(check bool)
    "helpless metric has no HELP line" false
    (contains_in (Registry.expose ()) "# HELP aa_test_help_none")

let test_help_hostile_text () =
  (* backslashes and newlines in help must be escaped per the
     Prometheus text format: \\ first, then \n — the exposition stays
     one logical line per HELP *)
  ignore (Registry.gauge ~help:"back\\slash\nsecond line" "test.help-hostile");
  let text = Registry.expose () in
  Alcotest.(check bool)
    "escaped backslash then newline" true
    (contains_in text "# HELP aa_test_help_hostile back\\\\slash\\nsecond line\n");
  (* hostile metric NAME is sanitized in the HELP line too *)
  ignore (Registry.counter ~help:"odd name" "test.help oh/no");
  Alcotest.(check bool)
    "sanitized name in HELP" true
    (contains_in (Registry.expose ()) "# HELP aa_test_help_oh_no odd name")

let test_gauge_fn () =
  let v = ref 2.5 in
  Registry.gauge_fn ~help:"callback gauge" "test.fn-gauge" (fun () -> !v);
  let lookup () = List.assoc_opt "test.fn-gauge" (Registry.gauges ()) in
  Alcotest.(check (option (float 0.0))) "sampled" (Some 2.5) (lookup ());
  v := 7.0;
  Alcotest.(check (option (float 0.0))) "live" (Some 7.0) (lookup ());
  (* reset clears stored gauges but cannot clear a callback *)
  Registry.reset ();
  Alcotest.(check (option (float 0.0))) "survives reset" (Some 7.0) (lookup ());
  (* re-registration replaces *)
  Registry.gauge_fn "test.fn-gauge" (fun () -> 1.0);
  Alcotest.(check (option (float 0.0))) "replaced" (Some 1.0) (lookup ());
  Alcotest.(check bool)
    "exposed as a gauge" true
    (contains_in (Registry.expose ()) "# TYPE aa_test_fn_gauge gauge")

(* ---------- solver counters: deterministic across job counts ---------- *)

let run_fig ~jobs =
  match Aa_experiments.Figures.find "fig1a" with
  | None -> Alcotest.fail "fig1a spec missing"
  | Some spec ->
      Registry.reset ();
      let series = spec.run ~jobs ~trials:12 ~seed:7 () in
      (series, Registry.counters ())

let test_counters_reproducible_across_jobs () =
  let series1, counters1 = run_fig ~jobs:1 in
  let series4, counters4 = run_fig ~jobs:4 in
  (* sanity: the sweep actually exercised the instrumented paths *)
  let total = List.fold_left (fun acc (_, v) -> acc + v) 0 counters1 in
  Alcotest.(check bool) "counters saw work" true (total > 0);
  Alcotest.(check bool)
    "series identical" true
    (List.length series1.points = List.length series4.points);
  List.iter2
    (fun (n1, v1) (n4, v4) ->
      Alcotest.(check string) "same counter set" n1 n4;
      Alcotest.(check int) (Printf.sprintf "counter %s" n1) v1 v4)
    counters1 counters4

(* ---------- spans ---------- *)

let test_span_nesting_and_text_tree () =
  Trace.span "outer" (fun () ->
      Trace.span "inner" (fun () -> ignore (Sys.opaque_identity 1));
      Trace.span "inner2" (fun () -> ignore (Sys.opaque_identity 2)));
  Alcotest.(check int) "balanced" 0 (Trace.unbalanced ());
  Alcotest.(check int) "3 spans = 6 events" 6 (Trace.n_events ());
  let tree = Trace.to_text_tree () in
  let contains s =
    let n = String.length tree and k = String.length s in
    let rec at i = i + k <= n && (String.sub tree i k = s || at (i + 1)) in
    at 0
  in
  Alcotest.(check bool) "outer at depth 0" true (contains "\n  outer");
  Alcotest.(check bool) "inner indented" true (contains "\n    inner")

let test_ring_overwrite_counter () =
  Alcotest.(check int) "starts at zero" 0 (Trace.overwritten ());
  (* capacity spans = 2*capacity events into a capacity-slot ring:
     oldest overwritten *)
  for _ = 1 to Trace.capacity do
    Trace.span "w" (fun () -> ())
  done;
  Alcotest.(check bool) "counts overwrites" true (Trace.overwritten () > 0);
  (* the registry mirrors the total through a callback gauge *)
  (match List.assoc_opt "obs.trace.overwritten" (Registry.gauges ()) with
  | Some v -> Alcotest.(check bool) "gauge mirrors count" true (v > 0.0)
  | None -> Alcotest.fail "obs.trace.overwritten gauge missing");
  Alcotest.(check bool)
    "in the exposition" true
    (contains_in (Registry.expose ()) "# TYPE aa_obs_trace_overwritten gauge");
  Trace.clear ();
  Alcotest.(check int) "clear resets" 0 (Trace.overwritten ())

let test_ring_capacity_of () =
  let cap s = Trace.ring_capacity_of s in
  Alcotest.(check int) "unset = default" 32768 (cap None);
  Alcotest.(check int) "garbage = default" 32768 (cap (Some "lots"));
  Alcotest.(check int) "zero = default" 32768 (cap (Some "0"));
  Alcotest.(check int) "negative = default" 32768 (cap (Some "-4"));
  Alcotest.(check int) "floor 16" 16 (cap (Some "3"));
  Alcotest.(check int) "rounded up to a power of two" 4096 (cap (Some "3000"));
  Alcotest.(check int) "exact power kept" 65536 (cap (Some "65536"));
  Alcotest.(check int) "whitespace tolerated" 1024 (cap (Some " 1024 "));
  Alcotest.(check int) "clamped to 2^26" (1 lsl 26) (cap (Some "999999999999"));
  Alcotest.(check bool)
    "live capacity is a power of two" true
    (Trace.capacity >= 16 && Trace.capacity land (Trace.capacity - 1) = 0)

let test_span_exception_safe () =
  (match Trace.span "boom" (fun () -> failwith "x") with
  | () -> Alcotest.fail "expected the exception to escape"
  | exception Failure _ -> ());
  Alcotest.(check int) "closed on exception" 0 (Trace.unbalanced ())

let test_span_disabled_records_nothing () =
  Control.with_enabled false (fun () ->
      Trace.span "ghost" (fun () -> ());
      Trace.begin_span "ghost2";
      Trace.end_span ());
  Alcotest.(check int) "nothing recorded" 0 (Trace.n_events ())

let test_open_span_synthesized_end () =
  Trace.begin_span "open-at-dump";
  Alcotest.(check int) "one open span" 1 (Trace.unbalanced ());
  let events = Trace.events () in
  let begins = List.filter (fun (e : Trace.event) -> e.is_begin) events in
  let ends = List.filter (fun (e : Trace.event) -> not e.is_begin) events in
  Alcotest.(check int) "export balanced anyway" (List.length begins) (List.length ends);
  (match ends with
  | [ e ] -> Alcotest.(check string) "synthesized end name" "open-at-dump" e.name
  | _ -> Alcotest.fail "expected exactly one end");
  Trace.end_span ();
  Alcotest.(check int) "closed" 0 (Trace.unbalanced ())

let test_orphan_end_ignored () =
  Trace.end_span ();
  (* an end with no begin must neither crash nor corrupt accounting *)
  Alcotest.(check int) "no negative depth" 0 (Trace.unbalanced ());
  Trace.span "after" (fun () -> ());
  Alcotest.(check int) "subsequent spans fine" 2 (Trace.n_events ())

(* A tiny JSON validator: enough for the flat array-of-objects shape of
   Chrome trace events (strings with escapes, numbers, the three
   keywords), so the test fails on any malformed export. *)
let validate_json s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = Alcotest.failf "invalid JSON at byte %d: %s" !pos msg in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let next () =
    match peek () with
    | Some c ->
        incr pos;
        c
    | None -> fail "unexpected end"
  in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\n' | '\t' | '\r') ->
        incr pos;
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    skip_ws ();
    let got = next () in
    if got <> c then fail (Printf.sprintf "expected %C, got %C" c got)
  in
  let parse_string () =
    expect '"';
    let rec go () =
      match next () with
      | '"' -> ()
      | '\\' -> (
          match next () with
          | '"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't' -> go ()
          | 'u' ->
              for _ = 1 to 4 do
                match next () with
                | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> ()
                | c -> fail (Printf.sprintf "bad unicode escape %C" c)
              done;
              go ()
          | c -> fail (Printf.sprintf "bad escape %C" c))
      | c when Char.code c < 0x20 -> fail "raw control character in string"
      | _ -> go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> num_char c | None -> false) do
      incr pos
    done;
    if !pos = start then fail "expected a number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some _ -> ()
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> parse_string ()
    | Some '{' -> parse_object ()
    | Some '[' -> parse_array ()
    | Some ('t' | 'f' | 'n') ->
        let kw = [ "true"; "false"; "null" ] in
        let ok =
          List.exists
            (fun w ->
              let k = String.length w in
              if !pos + k <= n && String.sub s !pos k = w then begin
                pos := !pos + k;
                true
              end
              else false)
            kw
        in
        if not ok then fail "bad keyword"
    | _ -> parse_number ()
  and parse_object () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then incr pos
    else
      let rec members () =
        skip_ws ();
        parse_string ();
        expect ':';
        parse_value ();
        skip_ws ();
        match next () with
        | ',' -> members ()
        | '}' -> ()
        | c -> fail (Printf.sprintf "expected , or } in object, got %C" c)
      in
      members ()
  and parse_array () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then incr pos
    else
      let rec elements () =
        parse_value ();
        skip_ws ();
        match next () with
        | ',' -> elements ()
        | ']' -> ()
        | c -> fail (Printf.sprintf "expected , or ] in array, got %C" c)
      in
      elements ()
  in
  parse_value ();
  skip_ws ();
  if !pos <> n then fail "trailing garbage"

let test_chrome_json_escaping () =
  Trace.span "we\"ird\\name\nwith\tcontrols" (fun () -> ());
  let json = Trace.to_chrome_json () in
  validate_json json;
  validate_json (Trace.to_chrome_json ~compact:true ())

let test_spans_across_pool_domains () =
  let domains = 4 in
  let seen = Array.make 64 0 in
  let run_once () =
    Pool.with_pool ~domains (fun pool ->
        Pool.run pool ~n:512 ~chunk:4 (fun ~lo ~hi ->
            Trace.span "work" (fun () ->
                (* spread real work so several domains claim chunks *)
                let acc = ref 0.0 in
                for i = lo to hi - 1 do
                  for k = 0 to 5_000 do
                    acc := !acc +. Float.of_int (i + k)
                  done
                done;
                ignore (Sys.opaque_identity !acc);
                let d = (Domain.self () :> int) in
                seen.(d mod 64) <- 1)))
  in
  let module IS = Set.Make (Int) in
  let domains_seen () =
    List.fold_left
      (fun s (e : Trace.event) -> IS.add e.domain s)
      IS.empty (Trace.events ())
  in
  (* On a loaded 1-core box the caller can occasionally drain all 128
     chunks before any worker domain wakes; retry a few times — the
     events accumulate in the ring, so one multi-domain run suffices. *)
  let attempts = ref 0 in
  run_once ();
  while IS.cardinal (domains_seen ()) < 2 && !attempts < 4 do
    incr attempts;
    run_once ()
  done;
  Alcotest.(check int) "balanced at quiescence" 0 (Trace.unbalanced ());
  let json = Trace.to_chrome_json () in
  validate_json json;
  let events = Trace.events () in
  let doms =
    List.fold_left (fun s (e : Trace.event) -> IS.add e.domain s) IS.empty events
  in
  (* the pool had 4 slots and 128 chunks of real work; at least two
     domains must have recorded spans (the caller always participates) *)
  Alcotest.(check bool)
    (Printf.sprintf "spans from >= 2 domains (got %d)" (IS.cardinal doms))
    true (IS.cardinal doms >= 2);
  (* per domain, begins and ends pair up *)
  IS.iter
    (fun d ->
      let mine = List.filter (fun (e : Trace.event) -> e.domain = d) events in
      let b = List.length (List.filter (fun (e : Trace.event) -> e.is_begin) mine) in
      let e = List.length (List.filter (fun (e : Trace.event) -> not e.is_begin) mine) in
      Alcotest.(check int) (Printf.sprintf "domain %d balanced" d) b e)
    doms

let test_pool_stats_and_utilization () =
  Pool.with_pool ~domains:2 (fun pool ->
      Pool.run pool ~n:100 ~chunk:5 (fun ~lo ~hi ->
          let acc = ref 0 in
          for i = lo to hi - 1 do
            for k = 0 to 20_000 do
              acc := !acc + i + k
            done
          done;
          ignore (Sys.opaque_identity !acc));
      let stats = Pool.stats pool in
      Alcotest.(check int) "one stat per slot" 2 (Array.length stats);
      let chunks = Array.fold_left (fun acc (s : Pool.stat) -> acc + s.chunks) 0 stats in
      Alcotest.(check int) "all 20 chunks attributed" 20 chunks;
      Array.iter
        (fun (s : Pool.stat) ->
          if s.chunks > 0 && s.busy_ns <= 0 then
            Alcotest.failf "slot %d claimed %d chunks but busy_ns = %d" s.slot
              s.chunks s.busy_ns)
        stats;
      let report = Pool.utilization pool in
      Alcotest.(check bool) "report mentions slots" true
        (String.length report > 0 && String.sub report 0 5 = "pool:"));
  (* registry counters saw the run: 20 chunks in a fixed partition *)
  Alcotest.(check int) "pool.chunks" 20
    (Registry.Counter.value (Registry.counter "pool.chunks"));
  Alcotest.(check int) "pool.runs" 1
    (Registry.Counter.value (Registry.counter "pool.runs"))

let test_pool_stats_zero_when_disabled () =
  Control.with_enabled false (fun () ->
      Pool.with_pool ~domains:2 (fun pool ->
          Pool.run pool ~n:50 ~chunk:5 (fun ~lo:_ ~hi:_ -> ());
          let chunks =
            Array.fold_left (fun acc (s : Pool.stat) -> acc + s.chunks) 0 (Pool.stats pool)
          in
          Alcotest.(check int) "no attribution while off" 0 chunks))

(* ---------- request contexts ---------- *)

let test_rctx_rid_monotonic () =
  let a = Rctx.create ~kind:"admit" ~conn:1 in
  let b = Rctx.create ~kind:"stats" ~conn:2 in
  let c = Rctx.create ~kind:"query" ~conn:1 in
  Alcotest.(check bool) "rids strictly increase" true
    (Rctx.rid a < Rctx.rid b && Rctx.rid b < Rctx.rid c);
  Alcotest.(check string) "kind kept" "stats" (Rctx.kind b);
  Alcotest.(check int) "conn kept" 2 (Rctx.conn b);
  Alcotest.(check int) "unrouted shard" (-1) (Rctx.shard a);
  Rctx.set_shard a 3;
  Alcotest.(check int) "routed shard" 3 (Rctx.shard a)

let test_rctx_phase_accumulation () =
  let c = Rctx.create ~kind:"admit" ~conn:0 in
  (* the clock has ~1 us resolution: spin until it advances so every
     phase measures strictly positive *)
  let spin () =
    let t0 = Aa_obs.Clock.now_ns () in
    while Aa_obs.Clock.now_ns () - t0 = 0 do
      ignore (Sys.opaque_identity 1)
    done
  in
  Rctx.with_current c (fun () ->
      Rctx.phase "validate" spin;
      Rctx.phase "apply" spin;
      Rctx.phase "validate" spin);
  Alcotest.(check bool) "repeat phases accumulate" true (Rctx.phase_ns c "validate" > 0);
  Alcotest.(check bool) "apply timed" true (Rctx.phase_ns c "apply" > 0);
  Alcotest.(check int) "unentered phase is 0" 0 (Rctx.phase_ns c "journal");
  Alcotest.(check (list string))
    "phases sorted by name" [ "apply"; "validate" ]
    (List.map fst (Rctx.phases c));
  (* without a scoped context, phase is exactly Trace.span *)
  Rctx.phase "solo" (fun () -> ());
  let names =
    List.filter_map
      (fun (e : Trace.event) -> if e.is_begin then Some e.name else None)
      (Trace.events ())
  in
  Alcotest.(check bool) "ctx-less phase still spans" true (List.mem "solo" names)

let test_rctx_scoping_and_span_tags () =
  Alcotest.(check bool) "no current at rest" true (Rctx.current () = None);
  let outer = Rctx.create ~kind:"stats" ~conn:7 in
  let inner = Rctx.create ~kind:"admit" ~conn:8 in
  Rctx.with_current ~shard:2 outer (fun () ->
      Trace.span "outer-span" (fun () -> ());
      Rctx.with_current ~shard:5 inner (fun () ->
          Alcotest.(check bool) "inner is current" true (Rctx.current () = Some inner);
          Trace.span "inner-span" (fun () -> ()));
      Alcotest.(check bool) "outer restored" true (Rctx.current () = Some outer);
      Trace.span "outer-again" (fun () -> ()));
  Alcotest.(check bool) "scope cleared" true (Rctx.current () = None);
  Trace.span "untagged" (fun () -> ());
  let find name =
    match
      List.find_opt
        (fun (e : Trace.event) -> e.is_begin && e.name = name)
        (Trace.events ())
    with
    | Some e -> e
    | None -> Alcotest.failf "span %s not recorded" name
  in
  let o = find "outer-span" and i = find "inner-span" in
  Alcotest.(check int) "outer rid" (Rctx.rid outer) o.rid;
  Alcotest.(check int) "outer shard tag" 2 o.shard;
  Alcotest.(check int) "outer conn" 7 o.conn;
  Alcotest.(check int) "inner rid" (Rctx.rid inner) i.rid;
  Alcotest.(check int) "inner shard tag" 5 i.shard;
  let oa = find "outer-again" in
  Alcotest.(check int) "outer ctx restored on ring" (Rctx.rid outer) oa.rid;
  Alcotest.(check int) "untagged rid is -1" (-1) (find "untagged").rid;
  (* exception safety: the scope must unwind *)
  (match Rctx.with_current outer (fun () -> failwith "boom") with
  | () -> Alcotest.fail "expected escape"
  | exception Failure _ -> ());
  Alcotest.(check bool) "cleared after exception" true (Rctx.current () = None)

let test_rctx_commit_wait () =
  let c = Rctx.create ~kind:"admit" ~conn:0 in
  Alcotest.(check int) "no wait before marks" 0 (Rctx.commit_wait_ns c);
  Rctx.mark_handled c;
  Rctx.mark_committed c;
  Alcotest.(check bool) "wait stamped" true (Rctx.commit_wait_ns c >= 0);
  (* mark_committed without mark_handled must not go negative *)
  let d = Rctx.create ~kind:"query" ~conn:0 in
  Rctx.mark_committed d;
  Alcotest.(check int) "no handled, no wait" 0 (Rctx.commit_wait_ns d)

let test_rctx_slow_capture () =
  Alcotest.(check bool) "disarmed by default" false (Rctx.slow_armed ());
  Rctx.set_slow_ms 0.0;
  Alcotest.(check bool) "0 arms" true (Rctx.slow_armed ());
  let run kind =
    let c = Rctx.create ~kind ~conn:4 in
    Rctx.set_shard c 1;
    Rctx.with_current c (fun () ->
        Rctx.phase "validate" (fun () -> ignore (Sys.opaque_identity 1)));
    ignore (Rctx.finish c ~outcome:"ok")
  in
  run "admit";
  Alcotest.(check int) "captured" 1 (Rctx.slow_count ());
  let json = Rctx.slow_json () in
  validate_json json;
  Alcotest.(check bool) "has the span" true (contains_in json "\"name\":\"validate\"");
  Alcotest.(check bool) "has the kind" true (contains_in json "\"kind\":\"admit\"");
  Alcotest.(check bool) "has the outcome" true (contains_in json "\"outcome\":\"ok\"");
  String.iter (fun ch -> if ch = '\n' then Alcotest.fail "newline in slow json") json;
  (* chrome splice fragment must be valid events when bracketed *)
  let frag = Rctx.slow_chrome_events () in
  Alcotest.(check bool) "fragment non-empty" true (String.length frag > 0);
  validate_json ("[" ^ frag ^ "]");
  (* text rendering for /tracez *)
  let txt = Rctx.slow_text () in
  Alcotest.(check bool) "text mentions the rid" true (contains_in txt "rid ");
  Alcotest.(check bool) "text mentions shard tag" true (contains_in txt "[shard 1]");
  (* the keep-list is bounded, oldest first out *)
  Rctx.set_slow_keep 2;
  run "depart";
  run "update";
  run "query";
  Alcotest.(check int) "bounded" 2 (Rctx.slow_count ());
  Alcotest.(check bool) "newest kept" true (contains_in (Rctx.slow_json ()) "query");
  Alcotest.(check bool) "oldest dropped" false (contains_in (Rctx.slow_json ()) "admit");
  Rctx.slow_clear ();
  Alcotest.(check int) "clear empties" 0 (Rctx.slow_count ());
  Alcotest.(check string) "empty json" "[]" (Rctx.slow_json ());
  Alcotest.(check string) "empty fragment" "" (Rctx.slow_chrome_events ());
  (* threshold actually filters: nothing finishes above 10 minutes *)
  Rctx.set_slow_ms 600_000.0;
  run "admit";
  Alcotest.(check int) "fast request not kept" 0 (Rctx.slow_count ());
  Rctx.set_slow_ms (-1.0);
  Alcotest.(check bool) "negative disarms" false (Rctx.slow_armed ())

(* ---------- engine phase spans ---------- *)

let test_engine_phase_spans () =
  let engine =
    Aa_service.Engine.create ~clock:(fun () -> 0.0) ~servers:2 ~capacity:10.0 ()
  in
  let resp = Aa_service.Engine.handle engine (Aa_service.Protocol.Admit
    (Aa_utility.Utility.Shapes.power ~cap:10.0 ~coeff:1.0 ~beta:0.5)) in
  (match resp with
  | Aa_service.Protocol.Admitted _ -> ()
  | r -> Alcotest.failf "unexpected response %s" (Aa_service.Protocol.print_response r));
  let names =
    List.filter_map
      (fun (e : Trace.event) -> if e.is_begin then Some e.name else None)
      (Trace.events ())
  in
  List.iter
    (fun expected ->
      if not (List.mem expected names) then
        Alcotest.failf "missing span %S (got: %s)" expected (String.concat ", " names))
    [ "admit"; "validate"; "journal"; "apply" ];
  Alcotest.(check int) "balanced" 0 (Trace.unbalanced ())

let test_engine_trace_request () =
  let engine =
    Aa_service.Engine.create ~clock:(fun () -> 0.0) ~servers:2 ~capacity:10.0 ()
  in
  ignore
    (Aa_service.Engine.handle engine
       (Aa_service.Protocol.Admit
          (Aa_utility.Utility.Shapes.power ~cap:10.0 ~coeff:1.0 ~beta:0.5)));
  match Aa_service.Engine.handle engine Aa_service.Protocol.Trace with
  | Aa_service.Protocol.Trace_dump { events; json } ->
      Alcotest.(check bool) "has events" true (events > 0);
      validate_json json;
      (* the wire form is a single line *)
      String.iter (fun c -> if c = '\n' then Alcotest.fail "newline in wire JSON") json
  | r -> Alcotest.failf "unexpected response %s" (Aa_service.Protocol.print_response r)

let test_trace_request_disabled () =
  Control.set_enabled false;
  let engine = Aa_service.Engine.create ~clock:(fun () -> 0.0) ~servers:2 ~capacity:10.0 () in
  match Aa_service.Engine.handle engine Aa_service.Protocol.Trace with
  | Aa_service.Protocol.Trace_dump { events; json } ->
      Alcotest.(check int) "no events" 0 events;
      Alcotest.(check string) "empty array" "[]" json
  | r -> Alcotest.failf "unexpected response %s" (Aa_service.Protocol.print_response r)

let () =
  let t name f = Alcotest.test_case name `Quick (with_obs f) in
  Alcotest.run "obs"
    [
      ("clock", [ t "monotonic" test_clock_monotonic ]);
      ( "histogram",
        [
          t "empty quantiles pinned" test_histogram_empty_quantiles;
          t "invalid q raises" test_histogram_invalid_q;
          t "single bucket" test_histogram_single_bucket;
          t "merge = combined stream" test_histogram_merge_equals_combined;
          t "metrics re-export" test_metrics_histogram_is_obs_histogram;
        ] );
      ( "registry",
        [
          t "counter basics" test_counter_basics;
          t "counter disabled no-op" test_counter_disabled_is_noop;
          t "gauge basics" test_gauge_basics;
          t "histogram basics" test_hist_basics;
          t "snapshots sorted" test_registry_snapshots_sorted;
          t "prometheus exposition" test_expose_format;
          t "HELP lines" test_help_lines_and_escaping;
          t "HELP hostile text" test_help_hostile_text;
          t "callback gauges" test_gauge_fn;
          t "reproducible across jobs" test_counters_reproducible_across_jobs;
        ] );
      ( "spans",
        [
          t "nesting and text tree" test_span_nesting_and_text_tree;
          t "exception safe" test_span_exception_safe;
          t "ring overwrite counter" test_ring_overwrite_counter;
          t "ring capacity env grammar" test_ring_capacity_of;
          t "disabled records nothing" test_span_disabled_records_nothing;
          t "open span synthesized end" test_open_span_synthesized_end;
          t "orphan end ignored" test_orphan_end_ignored;
          t "chrome json escaping" test_chrome_json_escaping;
          t "across pool domains" test_spans_across_pool_domains;
        ] );
      ( "pool",
        [
          t "stats and utilization" test_pool_stats_and_utilization;
          t "stats zero when disabled" test_pool_stats_zero_when_disabled;
        ] );
      ( "rctx",
        [
          t "rid monotonic" test_rctx_rid_monotonic;
          t "phase accumulation" test_rctx_phase_accumulation;
          t "scoping and span tags" test_rctx_scoping_and_span_tags;
          t "commit wait marks" test_rctx_commit_wait;
          t "slow capture" test_rctx_slow_capture;
        ] );
      ( "engine",
        [
          t "phase spans" test_engine_phase_spans;
          t "TRACE request" test_engine_trace_request;
          t "TRACE while disabled" test_trace_request_disabled;
        ] );
    ]
