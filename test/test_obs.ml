(* Tests for Aa_obs: the clock, the histogram (incl. the merged-stream
   quantile contract), the counter/gauge registry and its determinism
   contract across pool sizes, and span recording with well-formed
   Chrome trace export — including spans recorded from several domains
   at once. *)

open Aa_obs
open Aa_parallel

(* Every test starts from a clean, enabled observability state and
   leaves the switch off; span buffers persist per domain, so clear
   them too. *)
let with_obs f () =
  Control.set_enabled false;
  Registry.reset ();
  Trace.clear ();
  Fun.protect
    ~finally:(fun () ->
      Control.set_enabled false;
      Registry.reset ();
      Trace.clear ())
    (fun () ->
      Control.set_enabled true;
      f ())

(* ---------- clock ---------- *)

let test_clock_monotonic () =
  let prev = ref (Clock.now_ns ()) in
  for _ = 1 to 10_000 do
    let t = Clock.now_ns () in
    if t < !prev then Alcotest.failf "clock went backwards: %d < %d" t !prev;
    prev := t
  done;
  let s = Clock.now_s () in
  Alcotest.(check bool) "now_s positive" true (s >= 0.0);
  (* wall_s is an absolute epoch timestamp: after 2020, before 2100 *)
  let w = Clock.wall_s () in
  Alcotest.(check bool) "wall_s epoch range" true (w > 1.5e9 && w < 4.2e9)

(* ---------- histogram ---------- *)

let test_histogram_empty_quantiles () =
  let h = Histogram.create () in
  Alcotest.(check int) "count" 0 (Histogram.count h);
  List.iter
    (fun q ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "empty q=%g" q)
        0.0 (Histogram.quantile h q))
    [ 0.0; 0.5; 1.0 ]

let test_histogram_invalid_q () =
  let h = Histogram.create () in
  Histogram.add h 1e-3;
  List.iter
    (fun q ->
      match Histogram.quantile h q with
      | (_ : float) -> Alcotest.failf "q=%g should raise" q
      | exception Invalid_argument _ -> ())
    [ -0.1; 1.1; Float.nan ]

let test_histogram_single_bucket () =
  let h = Histogram.create () in
  for _ = 1 to 5 do
    Histogram.add h 1e-3
  done;
  (* all mass in one bucket: every quantile is that bucket's midpoint,
     within the scheme's ~±6% bucketing error *)
  let q50 = Histogram.quantile h 0.5 and q100 = Histogram.quantile h 1.0 in
  Alcotest.(check (float 0.0)) "q50 = q100" q100 q50;
  Alcotest.(check bool)
    "midpoint near sample" true
    (Float.abs (q50 -. 1e-3) /. 1e-3 < 0.12)

let test_histogram_merge_equals_combined () =
  let a = Histogram.create () and b = Histogram.create () and c = Histogram.create () in
  let samples_a = [ 1e-6; 3e-6; 1e-4; 0.5 ] in
  let samples_b = [ 2e-6; 5e-5; 5e-5; 0.02; 7.0; 900.0 ] in
  List.iter (fun x -> Histogram.add a x; Histogram.add c x) samples_a;
  List.iter (fun x -> Histogram.add b x; Histogram.add c x) samples_b;
  let m = Histogram.merge a b in
  Alcotest.(check int)
    "merged count"
    (List.length samples_a + List.length samples_b)
    (Histogram.count m);
  List.iter
    (fun q ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "q=%g of merge = q of combined stream" q)
        (Histogram.quantile c q) (Histogram.quantile m q))
    [ 0.0; 0.25; 0.5; 0.75; 0.95; 1.0 ];
  (* merge must not alias its inputs *)
  Histogram.add a 1.0;
  Alcotest.(check int)
    "merge unaffected by later adds"
    (List.length samples_a + List.length samples_b)
    (Histogram.count m)

let test_metrics_histogram_is_obs_histogram () =
  (* the re-export is the same module: values flow across freely *)
  let h : Aa_service.Metrics.Histogram.t = Histogram.create () in
  Histogram.add h 0.5;
  Alcotest.(check int) "shared type" 1 (Aa_service.Metrics.Histogram.count h)

(* ---------- registry ---------- *)

let test_counter_basics () =
  let c = Registry.counter "test.basics" in
  Alcotest.(check int) "starts at 0" 0 (Registry.Counter.value c);
  Registry.Counter.incr c;
  Registry.Counter.add c 41;
  Alcotest.(check int) "42" 42 (Registry.Counter.value c);
  Alcotest.(check string) "name" "test.basics" (Registry.Counter.name c);
  let c' = Registry.counter "test.basics" in
  Registry.Counter.incr c';
  Alcotest.(check int) "same handle for same name" 43 (Registry.Counter.value c)

let test_counter_disabled_is_noop () =
  let c = Registry.counter "test.disabled" in
  Control.with_enabled false (fun () ->
      Registry.Counter.incr c;
      Registry.Counter.add c 100);
  Alcotest.(check int) "no effect while off" 0 (Registry.Counter.value c)

let test_gauge_basics () =
  let g = Registry.gauge "test.gauge" in
  Registry.Gauge.set g 2.5;
  Alcotest.(check (float 0.0)) "set" 2.5 (Registry.Gauge.value g);
  Control.with_enabled false (fun () -> Registry.Gauge.set g 9.0);
  Alcotest.(check (float 0.0)) "no set while off" 2.5 (Registry.Gauge.value g);
  Alcotest.(check string) "name" "test.gauge" (Registry.Gauge.name g);
  Alcotest.(check (float 0.0)) "in gauges snapshot" 2.5
    (List.assoc "test.gauge" (Registry.gauges ()))

let test_hist_basics () =
  let h = Registry.histogram ~edges:[| 1.0; 2.0; 4.0 |] "test.hist" in
  Registry.Hist.observe h 0.5;
  Registry.Hist.observe h 2.0;
  Registry.Hist.observe h 3.0;
  Registry.Hist.observe h 100.0;
  Control.with_enabled false (fun () -> Registry.Hist.observe h 9.0);
  Alcotest.(check int) "count" 4 (Registry.Hist.count h);
  Alcotest.(check string) "name" "test.hist" (Registry.Hist.name h);
  Alcotest.(check bool) "in histograms snapshot" true
    (List.mem_assoc "test.hist" (Registry.histograms ()));
  let s = Registry.Hist.snapshot h in
  (* cumulative per-edge counts; the 100.0 observation lands past the
     last edge and shows only in count / the implied +Inf bucket *)
  Alcotest.(check (list (pair (float 0.0) int)))
    "cumulative buckets"
    [ (1.0, 1); (2.0, 2); (4.0, 3) ]
    s.Registry.Hist.le;
  Alcotest.(check int) "snapshot count" 4 s.Registry.Hist.count;
  Alcotest.(check (float 1e-9)) "sum" 105.5 s.Registry.Hist.total;
  let h' = Registry.histogram ~edges:[| 1.0; 2.0; 4.0 |] "test.hist" in
  Registry.Hist.observe h' 0.1;
  Alcotest.(check int) "same handle for same name" 5 (Registry.Hist.count h);
  Alcotest.check_raises "empty edges rejected"
    (Invalid_argument "Registry.histogram: empty edges") (fun () ->
      ignore (Registry.histogram ~edges:[||] "test.hist-bad"));
  Alcotest.check_raises "non-increasing edges rejected"
    (Invalid_argument "Registry.histogram: edges not increasing") (fun () ->
      ignore (Registry.histogram ~edges:[| 2.0; 2.0 |] "test.hist-bad"))

let test_registry_snapshots_sorted () =
  ignore (Registry.counter "test.zz");
  ignore (Registry.counter "test.aa");
  let names = List.map fst (Registry.counters ()) in
  Alcotest.(check (list string)) "sorted" (List.sort compare names) names

let test_expose_format () =
  let c = Registry.counter "test.expose-me" in
  Registry.Counter.add c 7;
  let g = Registry.gauge "test.gauge/odd name" in
  Registry.Gauge.set g 1.5;
  let h = Registry.histogram ~edges:[| 1.0; 8.0 |] "test.expose-hist" in
  Registry.Hist.observe h 3.0;
  let text = Registry.expose () in
  let contains s =
    let n = String.length text and k = String.length s in
    let rec at i = i + k <= n && (String.sub text i k = s || at (i + 1)) in
    at 0
  in
  Alcotest.(check bool)
    "counter TYPE line" true
    (contains "# TYPE aa_test_expose_me counter");
  Alcotest.(check bool) "counter value line" true (contains "aa_test_expose_me 7");
  Alcotest.(check bool)
    "gauge sanitized" true
    (contains "# TYPE aa_test_gauge_odd_name gauge");
  Alcotest.(check bool)
    "histogram TYPE line" true
    (contains "# TYPE aa_test_expose_hist histogram");
  Alcotest.(check bool)
    "histogram bucket line" true
    (contains "aa_test_expose_hist_bucket{le=\"8\"} 1");
  Alcotest.(check bool)
    "histogram +Inf bucket" true
    (contains "aa_test_expose_hist_bucket{le=\"+Inf\"} 1");
  Alcotest.(check bool)
    "histogram count line" true
    (contains "aa_test_expose_hist_count 1");
  (* exposition must never contain unsanitized metric characters; the
     brace/equals/double-quote label syntax of histogram buckets is the
     one sanctioned exception *)
  String.iter
    (fun ch ->
      match ch with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ' ' | '\n' | '#' | '.'
      | '-' | '+' | '{' | '}' | '=' | '"' ->
          ()
      | _ -> Alcotest.failf "unexpected character %C in exposition" ch)
    text

(* ---------- solver counters: deterministic across job counts ---------- *)

let run_fig ~jobs =
  match Aa_experiments.Figures.find "fig1a" with
  | None -> Alcotest.fail "fig1a spec missing"
  | Some spec ->
      Registry.reset ();
      let series = spec.run ~jobs ~trials:12 ~seed:7 () in
      (series, Registry.counters ())

let test_counters_reproducible_across_jobs () =
  let series1, counters1 = run_fig ~jobs:1 in
  let series4, counters4 = run_fig ~jobs:4 in
  (* sanity: the sweep actually exercised the instrumented paths *)
  let total = List.fold_left (fun acc (_, v) -> acc + v) 0 counters1 in
  Alcotest.(check bool) "counters saw work" true (total > 0);
  Alcotest.(check bool)
    "series identical" true
    (List.length series1.points = List.length series4.points);
  List.iter2
    (fun (n1, v1) (n4, v4) ->
      Alcotest.(check string) "same counter set" n1 n4;
      Alcotest.(check int) (Printf.sprintf "counter %s" n1) v1 v4)
    counters1 counters4

(* ---------- spans ---------- *)

let test_span_nesting_and_text_tree () =
  Trace.span "outer" (fun () ->
      Trace.span "inner" (fun () -> ignore (Sys.opaque_identity 1));
      Trace.span "inner2" (fun () -> ignore (Sys.opaque_identity 2)));
  Alcotest.(check int) "balanced" 0 (Trace.unbalanced ());
  Alcotest.(check int) "3 spans = 6 events" 6 (Trace.n_events ());
  let tree = Trace.to_text_tree () in
  let contains s =
    let n = String.length tree and k = String.length s in
    let rec at i = i + k <= n && (String.sub tree i k = s || at (i + 1)) in
    at 0
  in
  Alcotest.(check bool) "outer at depth 0" true (contains "\n  outer");
  Alcotest.(check bool) "inner indented" true (contains "\n    inner")

let test_ring_overwrite_counter () =
  Alcotest.(check int) "starts at zero" 0 (Trace.overwritten ());
  (* 20k spans = 40k events into a 32768-slot ring: oldest overwritten *)
  for _ = 1 to 20_000 do
    Trace.span "w" (fun () -> ())
  done;
  Alcotest.(check bool) "counts overwrites" true (Trace.overwritten () > 0);
  Trace.clear ();
  Alcotest.(check int) "clear resets" 0 (Trace.overwritten ())

let test_span_exception_safe () =
  (match Trace.span "boom" (fun () -> failwith "x") with
  | () -> Alcotest.fail "expected the exception to escape"
  | exception Failure _ -> ());
  Alcotest.(check int) "closed on exception" 0 (Trace.unbalanced ())

let test_span_disabled_records_nothing () =
  Control.with_enabled false (fun () ->
      Trace.span "ghost" (fun () -> ());
      Trace.begin_span "ghost2";
      Trace.end_span ());
  Alcotest.(check int) "nothing recorded" 0 (Trace.n_events ())

let test_open_span_synthesized_end () =
  Trace.begin_span "open-at-dump";
  Alcotest.(check int) "one open span" 1 (Trace.unbalanced ());
  let events = Trace.events () in
  let begins = List.filter (fun (e : Trace.event) -> e.is_begin) events in
  let ends = List.filter (fun (e : Trace.event) -> not e.is_begin) events in
  Alcotest.(check int) "export balanced anyway" (List.length begins) (List.length ends);
  (match ends with
  | [ e ] -> Alcotest.(check string) "synthesized end name" "open-at-dump" e.name
  | _ -> Alcotest.fail "expected exactly one end");
  Trace.end_span ();
  Alcotest.(check int) "closed" 0 (Trace.unbalanced ())

let test_orphan_end_ignored () =
  Trace.end_span ();
  (* an end with no begin must neither crash nor corrupt accounting *)
  Alcotest.(check int) "no negative depth" 0 (Trace.unbalanced ());
  Trace.span "after" (fun () -> ());
  Alcotest.(check int) "subsequent spans fine" 2 (Trace.n_events ())

(* A tiny JSON validator: enough for the flat array-of-objects shape of
   Chrome trace events (strings with escapes, numbers, the three
   keywords), so the test fails on any malformed export. *)
let validate_json s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = Alcotest.failf "invalid JSON at byte %d: %s" !pos msg in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let next () =
    match peek () with
    | Some c ->
        incr pos;
        c
    | None -> fail "unexpected end"
  in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\n' | '\t' | '\r') ->
        incr pos;
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    skip_ws ();
    let got = next () in
    if got <> c then fail (Printf.sprintf "expected %C, got %C" c got)
  in
  let parse_string () =
    expect '"';
    let rec go () =
      match next () with
      | '"' -> ()
      | '\\' -> (
          match next () with
          | '"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't' -> go ()
          | 'u' ->
              for _ = 1 to 4 do
                match next () with
                | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> ()
                | c -> fail (Printf.sprintf "bad unicode escape %C" c)
              done;
              go ()
          | c -> fail (Printf.sprintf "bad escape %C" c))
      | c when Char.code c < 0x20 -> fail "raw control character in string"
      | _ -> go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> num_char c | None -> false) do
      incr pos
    done;
    if !pos = start then fail "expected a number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some _ -> ()
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> parse_string ()
    | Some '{' -> parse_object ()
    | Some '[' -> parse_array ()
    | Some ('t' | 'f' | 'n') ->
        let kw = [ "true"; "false"; "null" ] in
        let ok =
          List.exists
            (fun w ->
              let k = String.length w in
              if !pos + k <= n && String.sub s !pos k = w then begin
                pos := !pos + k;
                true
              end
              else false)
            kw
        in
        if not ok then fail "bad keyword"
    | _ -> parse_number ()
  and parse_object () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then incr pos
    else
      let rec members () =
        skip_ws ();
        parse_string ();
        expect ':';
        parse_value ();
        skip_ws ();
        match next () with
        | ',' -> members ()
        | '}' -> ()
        | c -> fail (Printf.sprintf "expected , or } in object, got %C" c)
      in
      members ()
  and parse_array () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then incr pos
    else
      let rec elements () =
        parse_value ();
        skip_ws ();
        match next () with
        | ',' -> elements ()
        | ']' -> ()
        | c -> fail (Printf.sprintf "expected , or ] in array, got %C" c)
      in
      elements ()
  in
  parse_value ();
  skip_ws ();
  if !pos <> n then fail "trailing garbage"

let test_chrome_json_escaping () =
  Trace.span "we\"ird\\name\nwith\tcontrols" (fun () -> ());
  let json = Trace.to_chrome_json () in
  validate_json json;
  validate_json (Trace.to_chrome_json ~compact:true ())

let test_spans_across_pool_domains () =
  let domains = 4 in
  let seen = Array.make 64 0 in
  Pool.with_pool ~domains (fun pool ->
      Pool.run pool ~n:512 ~chunk:4 (fun ~lo ~hi ->
          Trace.span "work" (fun () ->
              (* spread real work so several domains claim chunks *)
              let acc = ref 0.0 in
              for i = lo to hi - 1 do
                for k = 0 to 5_000 do
                  acc := !acc +. Float.of_int (i + k)
                done
              done;
              ignore (Sys.opaque_identity !acc);
              let d = (Domain.self () :> int) in
              seen.(d mod 64) <- 1)));
  Alcotest.(check int) "balanced at quiescence" 0 (Trace.unbalanced ());
  let json = Trace.to_chrome_json () in
  validate_json json;
  let events = Trace.events () in
  let module IS = Set.Make (Int) in
  let doms =
    List.fold_left (fun s (e : Trace.event) -> IS.add e.domain s) IS.empty events
  in
  (* the pool had 4 slots and 128 chunks of real work; at least two
     domains must have recorded spans (the caller always participates) *)
  Alcotest.(check bool)
    (Printf.sprintf "spans from >= 2 domains (got %d)" (IS.cardinal doms))
    true (IS.cardinal doms >= 2);
  (* per domain, begins and ends pair up *)
  IS.iter
    (fun d ->
      let mine = List.filter (fun (e : Trace.event) -> e.domain = d) events in
      let b = List.length (List.filter (fun (e : Trace.event) -> e.is_begin) mine) in
      let e = List.length (List.filter (fun (e : Trace.event) -> not e.is_begin) mine) in
      Alcotest.(check int) (Printf.sprintf "domain %d balanced" d) b e)
    doms

let test_pool_stats_and_utilization () =
  Pool.with_pool ~domains:2 (fun pool ->
      Pool.run pool ~n:100 ~chunk:5 (fun ~lo ~hi ->
          let acc = ref 0 in
          for i = lo to hi - 1 do
            for k = 0 to 20_000 do
              acc := !acc + i + k
            done
          done;
          ignore (Sys.opaque_identity !acc));
      let stats = Pool.stats pool in
      Alcotest.(check int) "one stat per slot" 2 (Array.length stats);
      let chunks = Array.fold_left (fun acc (s : Pool.stat) -> acc + s.chunks) 0 stats in
      Alcotest.(check int) "all 20 chunks attributed" 20 chunks;
      Array.iter
        (fun (s : Pool.stat) ->
          if s.chunks > 0 && s.busy_ns <= 0 then
            Alcotest.failf "slot %d claimed %d chunks but busy_ns = %d" s.slot
              s.chunks s.busy_ns)
        stats;
      let report = Pool.utilization pool in
      Alcotest.(check bool) "report mentions slots" true
        (String.length report > 0 && String.sub report 0 5 = "pool:"));
  (* registry counters saw the run: 20 chunks in a fixed partition *)
  Alcotest.(check int) "pool.chunks" 20
    (Registry.Counter.value (Registry.counter "pool.chunks"));
  Alcotest.(check int) "pool.runs" 1
    (Registry.Counter.value (Registry.counter "pool.runs"))

let test_pool_stats_zero_when_disabled () =
  Control.with_enabled false (fun () ->
      Pool.with_pool ~domains:2 (fun pool ->
          Pool.run pool ~n:50 ~chunk:5 (fun ~lo:_ ~hi:_ -> ());
          let chunks =
            Array.fold_left (fun acc (s : Pool.stat) -> acc + s.chunks) 0 (Pool.stats pool)
          in
          Alcotest.(check int) "no attribution while off" 0 chunks))

(* ---------- engine phase spans ---------- *)

let test_engine_phase_spans () =
  let engine =
    Aa_service.Engine.create ~clock:(fun () -> 0.0) ~servers:2 ~capacity:10.0 ()
  in
  let resp = Aa_service.Engine.handle engine (Aa_service.Protocol.Admit
    (Aa_utility.Utility.Shapes.power ~cap:10.0 ~coeff:1.0 ~beta:0.5)) in
  (match resp with
  | Aa_service.Protocol.Admitted _ -> ()
  | r -> Alcotest.failf "unexpected response %s" (Aa_service.Protocol.print_response r));
  let names =
    List.filter_map
      (fun (e : Trace.event) -> if e.is_begin then Some e.name else None)
      (Trace.events ())
  in
  List.iter
    (fun expected ->
      if not (List.mem expected names) then
        Alcotest.failf "missing span %S (got: %s)" expected (String.concat ", " names))
    [ "admit"; "validate"; "journal"; "apply" ];
  Alcotest.(check int) "balanced" 0 (Trace.unbalanced ())

let test_engine_trace_request () =
  let engine =
    Aa_service.Engine.create ~clock:(fun () -> 0.0) ~servers:2 ~capacity:10.0 ()
  in
  ignore
    (Aa_service.Engine.handle engine
       (Aa_service.Protocol.Admit
          (Aa_utility.Utility.Shapes.power ~cap:10.0 ~coeff:1.0 ~beta:0.5)));
  match Aa_service.Engine.handle engine Aa_service.Protocol.Trace with
  | Aa_service.Protocol.Trace_dump { events; json } ->
      Alcotest.(check bool) "has events" true (events > 0);
      validate_json json;
      (* the wire form is a single line *)
      String.iter (fun c -> if c = '\n' then Alcotest.fail "newline in wire JSON") json
  | r -> Alcotest.failf "unexpected response %s" (Aa_service.Protocol.print_response r)

let test_trace_request_disabled () =
  Control.set_enabled false;
  let engine = Aa_service.Engine.create ~clock:(fun () -> 0.0) ~servers:2 ~capacity:10.0 () in
  match Aa_service.Engine.handle engine Aa_service.Protocol.Trace with
  | Aa_service.Protocol.Trace_dump { events; json } ->
      Alcotest.(check int) "no events" 0 events;
      Alcotest.(check string) "empty array" "[]" json
  | r -> Alcotest.failf "unexpected response %s" (Aa_service.Protocol.print_response r)

let () =
  let t name f = Alcotest.test_case name `Quick (with_obs f) in
  Alcotest.run "obs"
    [
      ("clock", [ t "monotonic" test_clock_monotonic ]);
      ( "histogram",
        [
          t "empty quantiles pinned" test_histogram_empty_quantiles;
          t "invalid q raises" test_histogram_invalid_q;
          t "single bucket" test_histogram_single_bucket;
          t "merge = combined stream" test_histogram_merge_equals_combined;
          t "metrics re-export" test_metrics_histogram_is_obs_histogram;
        ] );
      ( "registry",
        [
          t "counter basics" test_counter_basics;
          t "counter disabled no-op" test_counter_disabled_is_noop;
          t "gauge basics" test_gauge_basics;
          t "histogram basics" test_hist_basics;
          t "snapshots sorted" test_registry_snapshots_sorted;
          t "prometheus exposition" test_expose_format;
          t "reproducible across jobs" test_counters_reproducible_across_jobs;
        ] );
      ( "spans",
        [
          t "nesting and text tree" test_span_nesting_and_text_tree;
          t "exception safe" test_span_exception_safe;
          t "ring overwrite counter" test_ring_overwrite_counter;
          t "disabled records nothing" test_span_disabled_records_nothing;
          t "open span synthesized end" test_open_span_synthesized_end;
          t "orphan end ignored" test_orphan_end_ignored;
          t "chrome json escaping" test_chrome_json_escaping;
          t "across pool domains" test_spans_across_pool_domains;
        ] );
      ( "pool",
        [
          t "stats and utilization" test_pool_stats_and_utilization;
          t "stats zero when disabled" test_pool_stats_zero_when_disabled;
        ] );
      ( "engine",
        [
          t "phase spans" test_engine_phase_spans;
          t "TRACE request" test_engine_trace_request;
          t "TRACE while disabled" test_trace_request_disabled;
        ] );
    ]
