open Aa_numerics
open Aa_sim

(* ---------- Llcache ---------- *)

let test_hit_after_load () =
  let c = Llcache.create ~sets:4 ~ways:2 in
  Alcotest.(check bool) "cold miss" false (Llcache.access c 17);
  Alcotest.(check bool) "then hit" true (Llcache.access c 17);
  let s = Llcache.stats c in
  Alcotest.(check int) "accesses" 2 s.accesses;
  Alcotest.(check int) "hits" 1 s.hits;
  Alcotest.(check int) "misses" 1 s.misses

let test_geometry_accessors () =
  let c = Llcache.create ~sets:4 ~ways:2 in
  Alcotest.(check int) "sets" 4 (Llcache.sets c);
  Alcotest.(check int) "ways" 2 (Llcache.ways c);
  Alcotest.(check int) "capacity = sets * ways" 8 (Llcache.capacity_lines c)

let test_lru_eviction_order () =
  (* 1 set, 2 ways: a, b, c evicts a (LRU), not b *)
  let c = Llcache.create ~sets:1 ~ways:2 in
  ignore (Llcache.access c 1);
  ignore (Llcache.access c 2);
  ignore (Llcache.access c 3);
  Alcotest.(check bool) "b survives" true (Llcache.access c 2);
  Alcotest.(check bool) "a evicted" false (Llcache.access c 1)

let test_lru_touch_refreshes () =
  let c = Llcache.create ~sets:1 ~ways:2 in
  ignore (Llcache.access c 1);
  ignore (Llcache.access c 2);
  ignore (Llcache.access c 1);
  (* now 2 is LRU *)
  ignore (Llcache.access c 3);
  Alcotest.(check bool) "1 survives" true (Llcache.access c 1);
  Alcotest.(check bool) "2 evicted" false (Llcache.access c 2)

let test_sets_are_independent () =
  let c = Llcache.create ~sets:2 ~ways:1 in
  ignore (Llcache.access c 0);
  ignore (Llcache.access c 1);
  (* different sets: both should still be resident *)
  Alcotest.(check bool) "set 0 hit" true (Llcache.access c 0);
  Alcotest.(check bool) "set 1 hit" true (Llcache.access c 1)

let test_working_set_fits () =
  let c = Llcache.create ~sets:8 ~ways:4 in
  (* working set of 32 lines fits exactly; after a warm round every
     access hits *)
  for pass = 1 to 3 do
    for a = 0 to 31 do
      let hit = Llcache.access c a in
      if pass > 1 && not hit then Alcotest.failf "miss on warm pass %d addr %d" pass a
    done
  done

let test_streaming_never_hits () =
  let c = Llcache.create ~sets:8 ~ways:4 in
  let t = Trace.sequential ~stride:1 () in
  for _ = 1 to 1000 do
    if Llcache.access c (t ()) then Alcotest.fail "streaming should never hit"
  done

let test_reset_stats () =
  let c = Llcache.create ~sets:2 ~ways:1 in
  ignore (Llcache.access c 0);
  Llcache.reset_stats c;
  Alcotest.(check int) "cleared" 0 (Llcache.stats c).accesses;
  Alcotest.(check bool) "contents kept" true (Llcache.access c 0)

(* LRU inclusion (stack) property: a k-way cache's hits are a subset of a
   (k+1)-way cache's hits on the same trace — the reason miss-rate curves
   are monotone. *)
let prop_stack_inclusion =
  QCheck2.Test.make ~name:"LRU stack property: hits(k) subset of hits(k+1)" ~count:100
    QCheck2.Gen.(
      let* seed = int_range 0 10_000 in
      let* ways = int_range 1 4 in
      return (seed, ways))
    (fun (seed, ways) ->
      let rng = Rng.create ~seed () in
      let addrs = Array.init 600 (fun _ -> Rng.int rng 64) in
      let small = Llcache.create ~sets:4 ~ways in
      let big = Llcache.create ~sets:4 ~ways:(ways + 1) in
      Array.for_all
        (fun a ->
          let hs = Llcache.access small a in
          let hb = Llcache.access big a in
          (not hs) || hb)
        addrs)

(* ---------- Trace ---------- *)

let test_sequential_trace () =
  let t = Trace.sequential ~stride:3 () in
  Alcotest.(check (array int)) "strided" [| 0; 3; 6; 9 |] (Trace.take t 4)

let test_working_set_trace_range () =
  let rng = Rng.create ~seed:5 () in
  let t = Trace.working_set rng ~size:10 in
  Array.iter
    (fun a -> if a < 0 || a >= 10 then Alcotest.failf "out of range %d" a)
    (Trace.take t 1000)

let test_zipf_trace_skew () =
  let rng = Rng.create ~seed:7 () in
  let t = Trace.zipf rng ~alpha:1.2 ~universe:100 in
  let counts = Array.make 100 0 in
  Array.iter (fun a -> counts.(a) <- counts.(a) + 1) (Trace.take t 20_000);
  Alcotest.(check bool) "rank 0 most frequent" true (counts.(0) > counts.(50));
  Alcotest.(check bool) "rank 1 more than rank 20" true (counts.(1) > counts.(20))

let test_mixed_trace () =
  let rng = Rng.create ~seed:9 () in
  let t = Trace.mixed rng ~hot:4 ~cold:100 ~hot_fraction:0.9 in
  let hot_hits = ref 0 in
  let n = 10_000 in
  Array.iter (fun a -> if a < 4 then incr hot_hits) (Trace.take t n);
  let frac = float_of_int !hot_hits /. float_of_int n in
  Helpers.check_float ~eps:0.02 "hot fraction" 0.9 frac

(* ---------- Profiler ---------- *)

let test_mrc_monotone () =
  let trace () =
    let rng = Rng.create ~seed:11 () in
    Trace.zipf rng ~alpha:1.0 ~universe:256
  in
  let points = Profiler.mrc ~trace ~sets:16 ~max_ways:8 ~warmup:2_000 ~samples:20_000 in
  Alcotest.(check int) "point count" 9 (Array.length points);
  Helpers.check_float "zero-cache point" 1.0 points.(0).miss_rate;
  for k = 1 to 8 do
    Helpers.check_le "monotone mrc"
      points.(k).miss_rate
      (points.(k - 1).miss_rate +. 1e-9)
  done

let test_mrc_working_set_cliff () =
  (* working set of 32 lines, sets=8: fits at 4 ways *)
  let trace () =
    let rng = Rng.create ~seed:13 () in
    Trace.working_set rng ~size:32
  in
  let points = Profiler.mrc ~trace ~sets:8 ~max_ways:8 ~warmup:1_000 ~samples:10_000 in
  Helpers.check_le "fits: near-zero misses" points.(4).miss_rate 0.01;
  Helpers.check_ge "half cache: many misses" points.(2).miss_rate 0.3

let test_utility_of_mrc () =
  let trace () =
    let rng = Rng.create ~seed:17 () in
    Trace.zipf rng ~alpha:1.1 ~universe:512
  in
  let points = Profiler.mrc ~trace ~sets:16 ~max_ways:8 ~warmup:2_000 ~samples:20_000 in
  let u =
    Profiler.utility_of_mrc ~cache:8.0 ~base_cpi:0.7 ~miss_penalty:200.0
      ~accesses_per_kiloinstruction:300.0 points
  in
  (match Aa_utility.Utility.check u with Ok () -> () | Error e -> Alcotest.fail e);
  Helpers.check_float "domain" 8.0 (Aa_utility.Utility.cap u);
  Helpers.check_ge "more cache is at least as good"
    (Aa_utility.Utility.eval u 8.0)
    (Aa_utility.Utility.eval u 1.0)

(* measured utilities drive the whole AA pipeline end to end *)
let test_profile_to_assignment_end_to_end () =
  let mk_trace seed kind () =
    let rng = Rng.create ~seed () in
    match kind with
    | `Zipf -> Trace.zipf rng ~alpha:1.2 ~universe:512
    | `Ws -> Trace.working_set rng ~size:48
    | `Stream -> Trace.sequential ~stride:1 ()
  in
  let kinds = [| `Zipf; `Ws; `Stream; `Zipf; `Ws; `Stream |] in
  let utilities =
    Array.mapi
      (fun i kind ->
        let points =
          Profiler.mrc ~trace:(mk_trace i kind) ~sets:16 ~max_ways:8 ~warmup:1_000
            ~samples:5_000
        in
        Profiler.utility_of_mrc ~cache:8.0 ~base_cpi:0.7 ~miss_penalty:200.0
          ~accesses_per_kiloinstruction:300.0 points)
      kinds
  in
  let inst = Aa_core.Instance.create ~servers:2 ~capacity:8.0 utilities in
  let lin = Aa_core.Linearized.make inst in
  let a = Aa_core.Algo2.solve ~linearized:lin inst in
  (match Aa_core.Assignment.check inst a with Ok () -> () | Error e -> Alcotest.fail e);
  Helpers.check_ge "guarantee on measured curves"
    (Aa_core.Assignment.utility inst a)
    (Aa_core.Bounds.alpha *. lin.superopt.utility)
    ~eps:1e-6

let () =
  Alcotest.run "llcache"
    [
      ( "cache",
        [
          Alcotest.test_case "hit after load" `Quick test_hit_after_load;
          Alcotest.test_case "geometry accessors" `Quick test_geometry_accessors;
          Alcotest.test_case "LRU eviction" `Quick test_lru_eviction_order;
          Alcotest.test_case "LRU refresh" `Quick test_lru_touch_refreshes;
          Alcotest.test_case "independent sets" `Quick test_sets_are_independent;
          Alcotest.test_case "working set fits" `Quick test_working_set_fits;
          Alcotest.test_case "streaming misses" `Quick test_streaming_never_hits;
          Alcotest.test_case "reset stats" `Quick test_reset_stats;
        ] );
      ( "trace",
        [
          Alcotest.test_case "sequential" `Quick test_sequential_trace;
          Alcotest.test_case "working set range" `Quick test_working_set_trace_range;
          Alcotest.test_case "zipf skew" `Quick test_zipf_trace_skew;
          Alcotest.test_case "mixed" `Quick test_mixed_trace;
        ] );
      ( "profiler",
        [
          Alcotest.test_case "mrc monotone" `Quick test_mrc_monotone;
          Alcotest.test_case "working-set cliff" `Quick test_mrc_working_set_cliff;
          Alcotest.test_case "utility from mrc" `Quick test_utility_of_mrc;
          Alcotest.test_case "end to end" `Slow test_profile_to_assignment_end_to_end;
        ] );
      Helpers.qsuite "properties" [ prop_stack_inclusion ];
    ]
