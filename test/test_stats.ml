open Aa_numerics

let data = [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |]

let test_mean () =
  Helpers.check_float "mean" 5.0 (Stats.mean data);
  Alcotest.check_raises "empty" (Invalid_argument "Stats.mean: empty array") (fun () ->
      ignore (Stats.mean [||]))

let test_variance () =
  (* sample variance with n-1: sum of squares = 32, / 7 *)
  Helpers.check_float ~eps:1e-12 "variance" (32.0 /. 7.0) (Stats.variance data);
  Helpers.check_float "single" 0.0 (Stats.variance [| 3.0 |])

let test_stddev () = Helpers.check_float ~eps:1e-12 "sd" (sqrt (32.0 /. 7.0)) (Stats.stddev data)

let test_quantile () =
  Helpers.check_float "min" 2.0 (Stats.quantile data 0.0);
  Helpers.check_float "max" 9.0 (Stats.quantile data 1.0);
  Helpers.check_float "median interp" 4.5 (Stats.median data);
  let odd = [| 1.0; 2.0; 100.0 |] in
  Helpers.check_float "odd median" 2.0 (Stats.median odd)

let test_geometric_mean () =
  Helpers.check_float ~eps:1e-12 "gm" 4.0 (Stats.geometric_mean [| 2.0; 8.0 |]);
  Alcotest.check_raises "nonpositive"
    (Invalid_argument "Stats.geometric_mean: nonpositive element") (fun () ->
      ignore (Stats.geometric_mean [| 1.0; 0.0 |]))

let test_summary () =
  let s = Stats.summarize data in
  Alcotest.(check int) "n" 8 s.n;
  Helpers.check_float "mean" 5.0 s.mean;
  Helpers.check_float "min" 2.0 s.min;
  Helpers.check_float "max" 9.0 s.max;
  Helpers.check_float ~eps:1e-12 "ci" (1.96 *. Stats.stddev data /. sqrt 8.0) s.ci95

let test_online_matches_batch () =
  let rng = Rng.create ~seed:77 () in
  let xs = Array.init 10_000 (fun _ -> Rng.normal rng ~mu:3.0 ~sigma:2.0) in
  let o = Stats.Online.create () in
  Array.iter (Stats.Online.add o) xs;
  Alcotest.(check int) "count" 10_000 (Stats.Online.count o);
  Helpers.check_float ~eps:1e-9 "mean" (Stats.mean xs) (Stats.Online.mean o);
  Helpers.check_float ~eps:1e-7 "variance" (Stats.variance xs) (Stats.Online.variance o);
  Helpers.check_float ~eps:1e-7 "stddev" (Stats.stddev xs) (Stats.Online.stddev o);
  Helpers.check_float "min" (Stats.quantile xs 0.0) (Stats.Online.min o);
  Helpers.check_float "max" (Stats.quantile xs 1.0) (Stats.Online.max o)

let test_online_empty () =
  let o = Stats.Online.create () in
  Alcotest.check_raises "mean" (Invalid_argument "Stats.Online.mean: no samples") (fun () ->
      ignore (Stats.Online.mean o))

let test_online_merge_matches_sequential () =
  (* Chan-style combine: splitting a stream at any point and merging the
     two accumulators must agree with one sequential pass *)
  let rng = Rng.create ~seed:123 () in
  let xs = Array.init 5_000 (fun _ -> Rng.normal rng ~mu:(-1.0) ~sigma:3.0) in
  let whole = Stats.Online.create () in
  Array.iter (Stats.Online.add whole) xs;
  List.iter
    (fun cut ->
      let a = Stats.Online.create () and b = Stats.Online.create () in
      Array.iteri (fun i x -> Stats.Online.add (if i < cut then a else b) x) xs;
      let m = Stats.Online.merge a b in
      let label s = Printf.sprintf "cut=%d: %s" cut s in
      Alcotest.(check int) (label "count") (Stats.Online.count whole) (Stats.Online.count m);
      Helpers.check_float ~eps:1e-9 (label "mean") (Stats.Online.mean whole)
        (Stats.Online.mean m);
      Helpers.check_float ~eps:1e-7 (label "variance") (Stats.Online.variance whole)
        (Stats.Online.variance m);
      Helpers.check_float (label "min") (Stats.Online.min whole) (Stats.Online.min m);
      Helpers.check_float (label "max") (Stats.Online.max whole) (Stats.Online.max m))
    [ 0; 1; 777; 2_500; 4_999; 5_000 ]

let test_online_merge_empty () =
  let empty () = Stats.Online.create () in
  let m = Stats.Online.merge (empty ()) (empty ()) in
  Alcotest.(check int) "both empty" 0 (Stats.Online.count m);
  let one = empty () in
  Stats.Online.add one 42.0;
  List.iter
    (fun m ->
      Alcotest.(check int) "count" 1 (Stats.Online.count m);
      Helpers.check_float "mean" 42.0 (Stats.Online.mean m);
      Helpers.check_float "variance" 0.0 (Stats.Online.variance m);
      Helpers.check_float "min" 42.0 (Stats.Online.min m);
      Helpers.check_float "max" 42.0 (Stats.Online.max m))
    [ Stats.Online.merge one (empty ()); Stats.Online.merge (empty ()) one ]

let prop_online_merge =
  QCheck2.Test.make ~name:"merge of a random split equals the sequential accumulator"
    ~count:300
    QCheck2.Gen.(
      pair (list_size (int_range 1 200) (float_range (-100.0) 100.0)) (int_range 0 200))
    (fun (xs, cut) ->
      let a = Array.of_list xs in
      let cut = min cut (Array.length a) in
      let left = Stats.Online.create () and right = Stats.Online.create () in
      Array.iteri (fun i x -> Stats.Online.add (if i < cut then left else right) x) a;
      let m = Stats.Online.merge left right in
      let whole = Stats.Online.create () in
      Array.iter (Stats.Online.add whole) a;
      Stats.Online.count m = Stats.Online.count whole
      && Util.approx_equal ~eps:1e-9 (Stats.Online.mean whole) (Stats.Online.mean m)
      && Util.approx_equal ~eps:1e-6 (Stats.Online.variance whole) (Stats.Online.variance m)
      && Stats.Online.min m = Stats.Online.min whole
      && Stats.Online.max m = Stats.Online.max whole)

let prop_online_mean =
  QCheck2.Test.make ~name:"online mean equals batch mean" ~count:300
    QCheck2.Gen.(list_size (int_range 1 200) (float_range (-100.0) 100.0))
    (fun xs ->
      let a = Array.of_list xs in
      let o = Stats.Online.create () in
      Array.iter (Stats.Online.add o) a;
      Util.approx_equal ~eps:1e-9 (Stats.mean a) (Stats.Online.mean o))

let () =
  Alcotest.run "numerics-stats"
    [
      ( "batch",
        [
          Alcotest.test_case "mean" `Quick test_mean;
          Alcotest.test_case "variance" `Quick test_variance;
          Alcotest.test_case "stddev" `Quick test_stddev;
          Alcotest.test_case "quantile" `Quick test_quantile;
          Alcotest.test_case "geometric mean" `Quick test_geometric_mean;
          Alcotest.test_case "summary" `Quick test_summary;
        ] );
      ( "online",
        [
          Alcotest.test_case "matches batch" `Quick test_online_matches_batch;
          Alcotest.test_case "empty" `Quick test_online_empty;
          Alcotest.test_case "merge matches sequential" `Quick
            test_online_merge_matches_sequential;
          Alcotest.test_case "merge with empty sides" `Quick test_online_merge_empty;
        ] );
      Helpers.qsuite "properties" [ prop_online_mean; prop_online_merge ];
    ]
