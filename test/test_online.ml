open Aa_numerics
open Aa_utility
open Aa_core

let cap = 10.0

let test_create_validation () =
  Alcotest.check_raises "servers" (Invalid_argument "Online.create: need at least one server")
    (fun () -> ignore (Online.create ~servers:0 ~capacity:1.0 ()));
  Alcotest.check_raises "capacity"
    (Invalid_argument "Online.create: capacity must be positive") (fun () ->
      ignore (Online.create ~servers:1 ~capacity:0.0 ()))

let test_first_thread_gets_everything_useful () =
  let t = Online.create ~servers:2 ~capacity:cap () in
  let j = Online.admit t (Utility.Shapes.capped_linear ~cap ~slope:1.0 ~knee:4.0) in
  Alcotest.(check bool) "a server" true (j = 0 || j = 1);
  let a = Online.assignment t in
  Helpers.check_float "allocated its knee" 4.0 a.alloc.(0);
  Helpers.check_float "value" 4.0 (Online.total_utility t)

let test_spreads_identical_threads () =
  (* two identical full-capacity threads: the second must go to the other
     server (higher marginal gain there) *)
  let t = Online.create ~servers:2 ~capacity:cap () in
  let u () = Utility.Shapes.capped_linear ~cap ~slope:1.0 ~knee:10.0 in
  let j1 = Online.admit t (u ()) in
  let j2 = Online.admit t (u ()) in
  Alcotest.(check bool) "different servers" true (j1 <> j2);
  Helpers.check_float "full utility" 20.0 (Online.total_utility t)

let test_reallocates_within_server () =
  (* a steep newcomer displaces resources of a resident on its server *)
  let t = Online.create ~servers:1 ~capacity:cap () in
  ignore (Online.admit t (Utility.Shapes.linear ~cap ~slope:1.0));
  let a1 = Online.assignment t in
  Helpers.check_float "resident had it all" cap a1.alloc.(0);
  ignore (Online.admit t (Utility.Shapes.capped_linear ~cap ~slope:5.0 ~knee:4.0));
  let a2 = Online.assignment t in
  Helpers.check_float "resident shrunk" 6.0 a2.alloc.(0);
  Helpers.check_float "newcomer took the steep share" 4.0 a2.alloc.(1);
  Helpers.check_float "value" 26.0 (Online.total_utility t)

let test_assignment_feasible_and_counts () =
  let rng = Rng.create ~seed:3 () in
  let t = Online.create ~servers:3 ~capacity:cap () in
  for _ = 1 to 10 do
    ignore (Online.admit t (Helpers.plc_u rng))
  done;
  Alcotest.(check int) "admitted" 10 (Online.n_admitted t);
  let inst = Online.instance t in
  match Assignment.check inst (Online.assignment t) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_solve_sequence_matches_incremental () =
  let rng = Rng.create ~seed:7 () in
  let us = Array.init 8 (fun _ -> Helpers.plc_u rng) in
  let a = Online.solve_sequence ~servers:2 ~capacity:cap us in
  let t = Online.create ~servers:2 ~capacity:cap () in
  Array.iter (fun u -> ignore (Online.admit t u)) us;
  let b = Online.assignment t in
  Alcotest.(check (array int)) "same servers" b.server a.server;
  Array.iteri (fun i c -> Helpers.check_float "same alloc" c b.alloc.(i)) a.alloc

let test_online_close_to_offline_on_random () =
  let rng = Rng.create ~seed:13 () in
  let worst = ref 1.0 in
  for _ = 1 to 15 do
    let trial = Rng.split rng in
    let inst =
      Aa_workload.Gen.instance trial ~servers:4 ~capacity:100.0 ~threads:16
        Aa_workload.Gen.Uniform
    in
    let online =
      Assignment.utility inst
        (Online.solve_sequence ~servers:4 ~capacity:100.0 inst.utilities)
    in
    let offline = Assignment.utility inst (Algo2.solve inst) in
    let r = online /. offline in
    if r < !worst then worst := r
  done;
  (* online without migration should stay within 25% of offline here *)
  Helpers.check_ge "online within 25% of offline" !worst 0.75

let test_admission_never_decreases_value () =
  let rng = Rng.create ~seed:21 () in
  let t = Online.create ~servers:3 ~capacity:cap () in
  let prev = ref 0.0 in
  for _ = 1 to 12 do
    ignore (Online.admit t (Helpers.plc_u rng));
    let v = Online.total_utility t in
    Helpers.check_ge "monotone total utility" v !prev;
    prev := v
  done

let test_departure_frees_resources () =
  let t = Online.create ~servers:1 ~capacity:cap () in
  let i0 = Online.admit t (Utility.Shapes.capped_linear ~cap ~slope:5.0 ~knee:4.0) in
  ignore i0;
  ignore (Online.admit t (Utility.Shapes.linear ~cap ~slope:1.0));
  (* steep resident holds 4, linear one 6 *)
  Helpers.check_float "before" 26.0 (Online.total_utility t);
  Online.depart t 0;
  Alcotest.(check int) "one active" 1 (Online.n_active t);
  Alcotest.(check bool) "0 inactive" false (Online.is_active t 0);
  (* the linear thread now gets the whole server *)
  Helpers.check_float "after" 10.0 (Online.total_utility t);
  let a = Online.assignment t in
  Helpers.check_float "departed holds nothing" 0.0 a.alloc.(0);
  Helpers.check_float "survivor grew" 10.0 a.alloc.(1)

let test_depart_errors () =
  let t = Online.create ~servers:1 ~capacity:cap () in
  ignore (Online.admit t (Utility.Shapes.linear ~cap ~slope:1.0));
  Online.depart t 0;
  Alcotest.check_raises "double departure"
    (Invalid_argument "Online.depart: unknown or departed thread") (fun () ->
      Online.depart t 0);
  Alcotest.check_raises "unknown" (Invalid_argument "Online.depart: unknown or departed thread")
    (fun () -> Online.depart t 5)

let test_update_utility_reallocates () =
  let t = Online.create ~servers:1 ~capacity:cap () in
  ignore (Online.admit t (Utility.Shapes.capped_linear ~cap ~slope:2.0 ~knee:5.0));
  ignore (Online.admit t (Utility.Shapes.linear ~cap ~slope:1.0));
  (* capped thread holds its knee 5, linear the rest: 10 + 5 *)
  Helpers.check_float "before" 15.0 (Online.total_utility t);
  (* the capped thread's measured curve collapses: it no longer benefits *)
  Online.update_utility t 0 (Utility.Shapes.capped_linear ~cap ~slope:0.1 ~knee:1.0);
  let a = Online.assignment t in
  (* linear slope 1 now dominates slope 0.1 everywhere: it takes all 10 *)
  Helpers.check_float "linear thread takes over" 10.0 a.alloc.(1);
  Helpers.check_float ~eps:1e-9 "value reflects the new curve" 10.0
    (Online.total_utility t)

let test_churn_stays_feasible () =
  let rng = Rng.create ~seed:31 () in
  let t = Online.create ~servers:3 ~capacity:cap () in
  let active = ref [] in
  for step = 1 to 60 do
    if Rng.float rng 1.0 < 0.6 || !active = [] then begin
      ignore (Online.admit t (Helpers.plc_u rng));
      active := (Online.n_admitted t - 1) :: !active
    end
    else begin
      let k = Rng.int rng (List.length !active) in
      let i = List.nth !active k in
      Online.depart t i;
      active := List.filter (fun x -> x <> i) !active
    end;
    if step mod 10 = 0 then begin
      let inst = Online.instance t in
      match Assignment.check inst (Online.assignment t) with
      | Ok () -> ()
      | Error e -> Alcotest.failf "step %d: %s" step e
    end
  done;
  Alcotest.(check int) "active bookkeeping" (List.length !active) (Online.n_active t)

let test_active_views_after_departure () =
  let t = Online.create ~servers:2 ~capacity:cap () in
  let u () = Utility.Shapes.capped_linear ~cap ~slope:1.0 ~knee:10.0 in
  ignore (Online.admit t (u ()));
  ignore (Online.admit t (u ()));
  ignore (Online.admit t (Utility.Shapes.linear ~cap ~slope:2.0));
  Online.depart t 1;
  Alcotest.(check (array int)) "active ids" [| 0; 2 |] (Online.active_ids t);
  let inst = Online.active_instance t in
  Alcotest.(check int) "instance holds survivors only" 2 (Array.length inst.utilities);
  let a = Online.active_assignment t in
  (match Assignment.check inst a with
  | Ok () -> ()
  | Error e -> Alcotest.failf "active snapshot infeasible: %s" e);
  (* departed thread 1 is invisible: the snapshot's value is the live total *)
  Helpers.check_float "snapshot value matches live total" (Online.total_utility t)
    (Assignment.utility inst a)

let test_active_views_errors () =
  let t = Online.create ~servers:1 ~capacity:cap () in
  Alcotest.check_raises "empty instance"
    (Invalid_argument "Online.active_instance: no active threads") (fun () ->
      ignore (Online.active_instance t));
  ignore (Online.admit t (Utility.Shapes.linear ~cap ~slope:1.0));
  Online.depart t 0;
  Alcotest.check_raises "all departed"
    (Invalid_argument "Online.active_assignment: no active threads") (fun () ->
      ignore (Online.active_assignment t));
  Alcotest.check_raises "server_of bounds"
    (Invalid_argument "Online.server_of: unknown thread") (fun () ->
      ignore (Online.server_of t 1));
  Alcotest.check_raises "alloc_of bounds"
    (Invalid_argument "Online.alloc_of: unknown thread") (fun () ->
      ignore (Online.alloc_of t (-1)));
  Helpers.check_float "departed thread holds nothing" 0.0 (Online.alloc_of t 0)

let test_admit_to_replays_placement () =
  let rng = Rng.create ~seed:7 () in
  let t = Online.create ~servers:3 ~capacity:cap () in
  for _ = 1 to 15 do
    ignore (Online.admit t (Helpers.plc_u rng))
  done;
  Online.depart t 3;
  Online.depart t 8;
  (* re-enacting the same placements with admit_to reproduces the state *)
  let t2 = Online.create ~servers:3 ~capacity:cap () in
  for i = 0 to Online.n_admitted t - 1 do
    let j = Online.admit_to t2 ~server:(Online.server_of t i) (Online.thread_utility t i) in
    Alcotest.(check int) "ids count up" i j
  done;
  Online.depart t2 3;
  Online.depart t2 8;
  Helpers.check_float "same total" (Online.total_utility t) (Online.total_utility t2);
  for i = 0 to Online.n_admitted t - 1 do
    Alcotest.(check int) "same server" (Online.server_of t i) (Online.server_of t2 i);
    Helpers.check_float "same alloc" (Online.alloc_of t i) (Online.alloc_of t2 i)
  done;
  Alcotest.check_raises "server range"
    (Invalid_argument "Online.admit_to: server out of range") (fun () ->
      ignore (Online.admit_to t2 ~server:3 (Helpers.plc_u rng)));
  Alcotest.check_raises "cap mismatch"
    (Invalid_argument
       "Online.admit_to: utility domain cap must equal the server capacity")
    (fun () -> ignore (Online.admit_to t2 ~server:0 (Helpers.plc_u ~cap:5.0 rng)))

let test_tiebreak_window_does_not_creep () =
  (* Three servers whose admission gains for the newcomer are exactly
     1, 1 - 2^-40 and 1 - 2^-39: pairwise inside the 1e-12 tie window,
     but 2^-39 > 1e-12 apart end to end. Every float op in the gain
     computation is exact here (Sterbenz), so the gains are these exact
     values. The emptier-server tie rule may move the pick from server 0
     to server 1, but the window is anchored at the best gain seen, so
     it must not creep on to server 2. *)
  List.iter
    (fun policy ->
      let c = 2.0 in
      let t = Online.create ~policy ~servers:3 ~capacity:c () in
      let steep d =
        Utility.Shapes.capped_linear ~cap:c ~slope:5.0 ~knee:(1.0 +. d)
      in
      let filler () = Utility.of_plc (Plc.constant ~cap:c 0.0) in
      ignore (Online.admit_to t ~server:0 (steep 0.0));
      ignore (Online.admit_to t ~server:1 (steep (Float.ldexp 1.0 (-40))));
      ignore (Online.admit_to t ~server:2 (steep (Float.ldexp 1.0 (-39))));
      (* resident counts 3 / 2 / 1: each tie candidate is emptier than
         the incumbent, so a creeping window would walk to server 2 *)
      ignore (Online.admit_to t ~server:0 (filler ()));
      ignore (Online.admit_to t ~server:0 (filler ()));
      ignore (Online.admit_to t ~server:1 (filler ()));
      let j = Online.admit t (Utility.Shapes.linear ~cap:c ~slope:1.0) in
      Alcotest.(check int) "tie window anchored at the best gain" 1 j)
    [ Online.Full; Online.Incremental ]

let test_auto_policy_resolves () =
  let t = Online.create ~policy:(Online.Auto { frac = 0.9 }) ~servers:2 ~capacity:cap () in
  let u () = Utility.Shapes.linear ~cap ~slope:1.0 in
  ignore (Online.admit_to t ~server:0 (u ()));
  (* forcing the second full-capacity thread onto the same server strands
     a certified [cap] of value: 10 < 0.9 * (10 + 10) trips the trigger *)
  ignore (Online.admit_to t ~server:0 (u ()));
  Alcotest.(check int) "auto re-solved once" 1 (Online.resolves t);
  Alcotest.(check bool) "threads migrated apart" true
    (Online.server_of t 0 <> Online.server_of t 1);
  Helpers.check_float "full utility recovered" 20.0 (Online.total_utility t);
  Helpers.check_float "certificate closed by the re-solve" 0.0 (Online.drift_bound t);
  (* Full / Incremental never re-solve on their own *)
  let t2 = Online.create ~servers:2 ~capacity:cap () in
  ignore (Online.admit_to t2 ~server:0 (u ()));
  ignore (Online.admit_to t2 ~server:0 (u ()));
  Alcotest.(check int) "incremental never auto-resolves" 0 (Online.resolves t2);
  Helpers.check_ge "but carries the drift certificate" (Online.drift_bound t2) cap

let test_auto_frac_validation () =
  Alcotest.check_raises "frac"
    (Invalid_argument "Online.create: Auto fraction must be in [0, 1]") (fun () ->
      ignore (Online.create ~policy:(Online.Auto { frac = 1.5 }) ~servers:1 ~capacity:cap ()))

let test_index_consistent_after_churn_and_resolve () =
  let rng = Rng.create ~seed:91 () in
  let t = Online.create ~servers:3 ~capacity:cap () in
  for _ = 1 to 20 do
    ignore (Online.admit t (Helpers.plc_u rng))
  done;
  Online.depart t 5;
  Online.depart t 11;
  Online.update_utility t 3 (Helpers.plc_u rng);
  Alcotest.(check bool) "incremental path spliced" true (Online.splices t > 0);
  Online.resolve t;
  Alcotest.(check int) "explicit resolve counted" 1 (Online.resolves t);
  (* the O(1) per-thread index agrees with the bulk snapshot everywhere *)
  let a = Online.assignment t in
  for i = 0 to Online.n_admitted t - 1 do
    Alcotest.(check int) "server index" a.server.(i) (Online.server_of t i);
    Helpers.check_float "alloc index" a.alloc.(i) (Online.alloc_of t i)
  done;
  Helpers.check_float "departed thread still holds nothing" 0.0 (Online.alloc_of t 5);
  (match Assignment.check (Online.active_instance t) (Online.active_assignment t) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "post-resolve snapshot infeasible: %s" e);
  (* a resolve re-certifies against the pooled bound *)
  Helpers.check_ge "drift bound nonnegative" (Online.drift_bound t) 0.0

(* Random ADMIT/DEPART/UPDATE sequences driven in lockstep through a Full
   and an Incremental instance: placements, per-thread allocations and
   totals must match bit for bit; each server must also match a
   from-scratch [Plc_greedy.allocate] over its residents; and the
   certified drift bound must upper-bound what a full re-solve recovers. *)
let prop_incremental_matches_full =
  QCheck2.Test.make ~name:"online: incremental = full, bit-identical; drift sound"
    ~count:500
    QCheck2.Gen.(
      let* m = int_range 1 4 in
      let* capv = float_range 2.0 40.0 in
      let* ops =
        list_size (int_range 1 30)
          (let* kind = int_range 0 4 in
           let* pick = int_range 0 1000 in
           let* u = Helpers.gen_utility_with_cap capv in
           return (kind, pick, u))
      in
      return (m, capv, ops))
    (fun (m, capv, ops) ->
      let ti = Online.create ~policy:Online.Incremental ~servers:m ~capacity:capv () in
      let tf = Online.create ~policy:Online.Full ~servers:m ~capacity:capv () in
      let bits = Int64.bits_of_float in
      let same a b = Int64.equal (bits a) (bits b) in
      let ok = ref true in
      let check_states () =
        for i = 0 to Online.n_admitted ti - 1 do
          if Online.server_of ti i <> Online.server_of tf i then ok := false;
          if not (same (Online.alloc_of ti i) (Online.alloc_of tf i)) then ok := false
        done;
        if not (same (Online.total_utility ti) (Online.total_utility tf)) then
          ok := false
      in
      List.iter
        (fun (kind, pick, u) ->
          let ids = Online.active_ids ti in
          let n_act = Array.length ids in
          if kind <= 2 || n_act = 0 then begin
            let ji = Online.admit ti u in
            let jf = Online.admit tf u in
            if ji <> jf then ok := false
          end
          else begin
            let i = ids.(pick mod n_act) in
            if kind = 3 then begin
              Online.depart ti i;
              Online.depart tf i
            end
            else begin
              Online.update_utility ti i u;
              Online.update_utility tf i u
            end
          end;
          check_states ())
        ops;
      (* from-scratch allocator reference, per server, over the residents
         in the engine's newest-first order *)
      let ids = Online.active_ids ti in
      for j = 0 to m - 1 do
        let mine =
          Array.to_list ids
          |> List.filter (fun i -> Online.server_of ti i = j)
          |> List.rev
        in
        if mine <> [] then begin
          let plcs =
            Array.of_list
              (List.map (fun i -> Utility.to_plc (Online.thread_utility ti i)) mine)
          in
          let res = Aa_alloc.Plc_greedy.allocate ~exhaust:false ~budget:capv plcs in
          List.iteri
            (fun k i -> if not (same res.alloc.(k) (Online.alloc_of ti i)) then ok := false)
            mine
        end
      done;
      (* drift certificate: a full re-solve cannot beat U + drift *)
      let d = Online.drift_bound ti in
      let u0 = Online.total_utility ti in
      Online.resolve ti;
      let u1 = Online.total_utility ti in
      if u1 > u0 +. d +. (1e-6 *. Float.max 1.0 (Float.abs u1)) then ok := false;
      !ok)

let prop_online_feasible =
  QCheck2.Test.make ~name:"online: always feasible" ~count:150
    QCheck2.Gen.(
      let* m = int_range 1 4 in
      let* n = int_range 1 10 in
      let* capv = float_range 2.0 40.0 in
      let* us = list_repeat n (Helpers.gen_utility_with_cap capv) in
      return (m, capv, Array.of_list us))
    (fun (m, capv, us) ->
      let a = Online.solve_sequence ~servers:m ~capacity:capv us in
      let inst = Instance.create ~servers:m ~capacity:capv us in
      match Assignment.check inst a with Ok () -> true | Error _ -> false)

let prop_online_below_superopt =
  QCheck2.Test.make ~name:"online: below the pooled bound" ~count:150
    QCheck2.Gen.(
      let* m = int_range 1 4 in
      let* n = int_range 1 10 in
      let* capv = float_range 2.0 40.0 in
      let* us = list_repeat n (Helpers.gen_utility_with_cap capv) in
      return (m, capv, Array.of_list us))
    (fun (m, capv, us) ->
      let us = Array.map (fun u -> Utility.of_plc (Utility.to_plc u)) us in
      let a = Online.solve_sequence ~servers:m ~capacity:capv us in
      let inst = Instance.create ~servers:m ~capacity:capv us in
      let so = Superopt.compute inst in
      Assignment.utility inst a <= so.utility +. (1e-6 *. Float.max 1.0 so.utility))

let () =
  Alcotest.run "online"
    [
      ( "mechanics",
        [
          Alcotest.test_case "validation" `Quick test_create_validation;
          Alcotest.test_case "first thread" `Quick test_first_thread_gets_everything_useful;
          Alcotest.test_case "spreads identical" `Quick test_spreads_identical_threads;
          Alcotest.test_case "intra-server reallocation" `Quick test_reallocates_within_server;
          Alcotest.test_case "feasible" `Quick test_assignment_feasible_and_counts;
          Alcotest.test_case "solve_sequence" `Quick test_solve_sequence_matches_incremental;
          Alcotest.test_case "monotone admissions" `Quick test_admission_never_decreases_value;
        ] );
      ( "dynamic",
        [
          Alcotest.test_case "departure" `Quick test_departure_frees_resources;
          Alcotest.test_case "departure errors" `Quick test_depart_errors;
          Alcotest.test_case "utility update" `Quick test_update_utility_reallocates;
          Alcotest.test_case "churn" `Quick test_churn_stays_feasible;
          Alcotest.test_case "active views" `Quick test_active_views_after_departure;
          Alcotest.test_case "active view errors" `Quick test_active_views_errors;
          Alcotest.test_case "admit_to replay" `Quick test_admit_to_replays_placement;
          Alcotest.test_case "tie-break window" `Quick test_tiebreak_window_does_not_creep;
          Alcotest.test_case "auto policy" `Quick test_auto_policy_resolves;
          Alcotest.test_case "auto validation" `Quick test_auto_frac_validation;
          Alcotest.test_case "index after churn" `Quick
            test_index_consistent_after_churn_and_resolve;
        ] );
      ( "quality",
        [ Alcotest.test_case "close to offline" `Slow test_online_close_to_offline_on_random ] );
      Helpers.qsuite "properties"
        [ prop_online_feasible; prop_online_below_superopt; prop_incremental_matches_full ];
    ]
