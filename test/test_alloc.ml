open Aa_numerics
open Aa_utility
open Aa_alloc

(* ---------- Plc_greedy ---------- *)

let test_greedy_simple () =
  (* two threads: slopes 2 then 1; budget covers the steep segments *)
  let f1 = Plc.capped_linear ~cap:10.0 ~slope:2.0 ~knee:3.0 in
  let f2 = Plc.capped_linear ~cap:10.0 ~slope:1.0 ~knee:4.0 in
  let r = Plc_greedy.allocate ~exhaust:false ~budget:5.0 [| f1; f2 |] in
  Helpers.check_float "steep thread first" 3.0 r.alloc.(0);
  Helpers.check_float "rest to second" 2.0 r.alloc.(1);
  Helpers.check_float "utility" 8.0 r.utility;
  Helpers.check_float "lambda" 1.0 r.lambda

let test_greedy_budget_exceeds_all () =
  let f1 = Plc.capped_linear ~cap:10.0 ~slope:1.0 ~knee:2.0 in
  let r = Plc_greedy.allocate ~exhaust:false ~budget:100.0 [| f1 |] in
  Helpers.check_float "only useful part" 2.0 r.alloc.(0);
  let r' = Plc_greedy.allocate ~exhaust:true ~budget:100.0 [| f1 |] in
  Helpers.check_float "exhaust fills to cap" 10.0 r'.alloc.(0);
  Helpers.check_float "same utility" r.utility r'.utility

let test_greedy_zero_budget () =
  let f1 = Plc.capped_linear ~cap:10.0 ~slope:1.0 ~knee:2.0 in
  let r = Plc_greedy.allocate ~budget:0.0 [| f1 |] in
  Helpers.check_float "nothing" 0.0 r.alloc.(0);
  Helpers.check_float "utility" 0.0 r.utility

let test_greedy_exhaust_saturates_budget () =
  let fs =
    [|
      Plc.capped_linear ~cap:10.0 ~slope:2.0 ~knee:1.0;
      Plc.capped_linear ~cap:10.0 ~slope:1.0 ~knee:1.0;
    |]
  in
  let r = Plc_greedy.allocate ~exhaust:true ~budget:15.0 fs in
  Helpers.check_float "uses whole budget" 15.0 (Util.kahan_sum r.alloc)

let test_greedy_respects_caps () =
  let fs = [| Plc.capped_linear ~cap:3.0 ~slope:1.0 ~knee:3.0 |] in
  let r = Plc_greedy.allocate ~exhaust:true ~budget:10.0 fs in
  Helpers.check_float "capped" 3.0 r.alloc.(0)

let test_greedy_negative_budget () =
  Alcotest.check_raises "negative" (Invalid_argument "Plc_greedy.allocate: negative budget")
    (fun () -> ignore (Plc_greedy.allocate ~budget:(-1.0) [||]))

(* ---------- Waterfill ---------- *)

let test_waterfill_equalizes_derivatives () =
  (* two identical log threads must get equal shares *)
  let u = Utility.Shapes.log_utility ~cap:10.0 ~coeff:1.0 ~rate:1.0 in
  let r = Waterfill.allocate ~budget:8.0 [| u; u |] in
  Helpers.check_float ~eps:1e-6 "equal split" r.alloc.(0) r.alloc.(1);
  Helpers.check_float ~eps:1e-6 "uses budget" 8.0 (Util.kahan_sum r.alloc)

let test_waterfill_budget_not_binding () =
  let u = Utility.Shapes.linear ~cap:2.0 ~slope:1.0 in
  let r = Waterfill.allocate ~budget:100.0 [| u; u |] in
  Helpers.check_float "caps" 2.0 r.alloc.(0);
  Helpers.check_float "caps" 2.0 r.alloc.(1)

let test_waterfill_prefers_steeper () =
  let a = Utility.Shapes.power ~cap:10.0 ~coeff:4.0 ~beta:0.5 in
  let b = Utility.Shapes.power ~cap:10.0 ~coeff:1.0 ~beta:0.5 in
  let r = Waterfill.allocate ~budget:6.0 [| a; b |] in
  Alcotest.(check bool) "steeper gets more" true (r.alloc.(0) > r.alloc.(1))

let test_waterfill_matches_kkt () =
  (* for power utilities the optimum is closed-form: with f_i = a_i sqrt(x),
     optimal shares are proportional to a_i^2 *)
  let a1 = 2.0 and a2 = 3.0 in
  let u1 = Utility.Shapes.power ~cap:100.0 ~coeff:a1 ~beta:0.5 in
  let u2 = Utility.Shapes.power ~cap:100.0 ~coeff:a2 ~beta:0.5 in
  let budget = 50.0 in
  let r = Waterfill.allocate ~budget [| u1; u2 |] in
  let w1 = a1 *. a1 and w2 = a2 *. a2 in
  Helpers.check_float ~eps:1e-6 "share 1" (budget *. w1 /. (w1 +. w2)) r.alloc.(0);
  Helpers.check_float ~eps:1e-6 "share 2" (budget *. w2 /. (w1 +. w2)) r.alloc.(1)

(* ---------- Fox / Galil / DP cross-checks ---------- *)

let shapes_pool cap =
  [|
    Utility.Shapes.power ~cap ~coeff:3.0 ~beta:0.5;
    Utility.Shapes.log_utility ~cap ~coeff:2.0 ~rate:0.5;
    Utility.Shapes.saturating ~cap ~limit:6.0 ~halfway:2.0;
    Utility.Shapes.capped_linear ~cap ~slope:1.0 ~knee:(cap /. 2.0);
    Utility.Shapes.linear ~cap ~slope:0.4;
  |]

let test_fox_simple () =
  let cap = 8.0 in
  let fs = [| Utility.Shapes.linear ~cap ~slope:2.0; Utility.Shapes.linear ~cap ~slope:1.0 |] in
  let r = Fox.allocate ~budget:10 ~unit_size:1.0 fs in
  Alcotest.(check int) "steep maxed" 8 r.alloc.(0);
  Alcotest.(check int) "rest" 2 r.alloc.(1);
  Helpers.check_float "utility" 18.0 r.utility

let test_fox_zero_budget () =
  let fs = shapes_pool 8.0 in
  let r = Fox.allocate ~budget:0 ~unit_size:1.0 fs in
  Array.iter (fun u -> Alcotest.(check int) "zero" 0 u) r.alloc

let test_fox_equals_dp () =
  let cap = 12.0 in
  let fs = shapes_pool cap in
  List.iter
    (fun budget ->
      let fox = Fox.allocate ~budget ~unit_size:1.0 fs in
      let dp = Dp.allocate ~budget ~unit_size:1.0 fs in
      Helpers.check_float ~eps:1e-9
        (Printf.sprintf "budget %d" budget)
        dp.utility fox.utility)
    [ 1; 3; 7; 12; 25; 60 ]

let test_galil_equals_dp () =
  let cap = 12.0 in
  let fs = shapes_pool cap in
  List.iter
    (fun budget ->
      let galil = Galil.allocate ~budget ~unit_size:1.0 fs in
      let dp = Dp.allocate ~budget ~unit_size:1.0 fs in
      Helpers.check_float ~eps:1e-7
        (Printf.sprintf "budget %d" budget)
        dp.utility galil.utility;
      Alcotest.(check int)
        "galil uses full budget or all caps"
        (min budget (Array.fold_left (fun acc f -> acc + int_of_float (Float.ceil (Utility.cap f))) 0 fs))
        (Array.fold_left ( + ) 0 galil.alloc))
    [ 1; 3; 7; 12; 25 ]

let test_fox_fractional_units () =
  (* unit_size 0.5: 8 units cover a cap-4 thread *)
  let fs = [| Utility.Shapes.linear ~cap:4.0 ~slope:1.0 |] in
  let r = Fox.allocate ~budget:20 ~unit_size:0.5 fs in
  Alcotest.(check int) "stops at cap" 8 r.alloc.(0);
  Helpers.check_float "utility at cap" 4.0 r.utility

let test_fox_galil_dp_fractional_agree () =
  let fs = shapes_pool 6.0 in
  List.iter
    (fun budget ->
      let fox = Fox.allocate ~budget ~unit_size:0.25 fs in
      let galil = Galil.allocate ~budget ~unit_size:0.25 fs in
      let dp = Dp.allocate ~budget ~unit_size:0.25 fs in
      Helpers.check_float ~eps:1e-7 "fox=dp" dp.utility fox.utility;
      Helpers.check_float ~eps:1e-7 "galil=dp" dp.utility galil.utility)
    [ 5; 17; 40 ]

let test_galil_lambda_consistent () =
  (* at the returned price, total demand brackets the budget *)
  let fs = shapes_pool 12.0 in
  let budget = 20 in
  let r = Galil.allocate ~budget ~unit_size:1.0 fs in
  Alcotest.(check int) "budget used" budget (Array.fold_left ( + ) 0 r.alloc);
  Alcotest.(check bool) "positive clearing price" true (r.lambda > 0.0)

let test_dp_nonconcave () =
  (* DP is the only allocator that must handle non-concave tables *)
  let values = [| [| 0.0; 0.0; 5.0 |]; [| 0.0; 3.0; 3.5 |] |] in
  let r = Dp.allocate_values ~budget:2 values in
  (* best: 2 units to thread 0 (5.0) beats 1+1 (3.0) and 0+2 (3.5) *)
  Helpers.check_float "optimum" 5.0 r.utility;
  Alcotest.(check (array int)) "alloc" [| 2; 0 |] r.alloc

let test_dp_empty_row () =
  Alcotest.check_raises "empty row" (Invalid_argument "Dp.allocate_values: empty row")
    (fun () -> ignore (Dp.allocate_values ~budget:2 [| [||] |]))

(* greedy on PLC == DP on a fine discretization *)
let test_plc_greedy_matches_dp () =
  let cap = 10.0 in
  let fs =
    [|
      Plc.create [| (0.0, 0.0); (2.0, 4.0); (6.0, 6.0); (10.0, 6.5) |];
      Plc.capped_linear ~cap ~slope:1.5 ~knee:4.0;
      Plc.create [| (0.0, 1.0); (5.0, 3.0); (10.0, 3.5) |];
    |]
  in
  let us = Array.map Utility.of_plc fs in
  List.iter
    (fun budget ->
      let greedy = Plc_greedy.allocate ~budget:(float_of_int budget) fs in
      let dp = Dp.allocate ~budget ~unit_size:1.0 us in
      (* integer grid contains all breakpoints here, so values agree *)
      Helpers.check_float ~eps:1e-9
        (Printf.sprintf "budget %d" budget)
        dp.utility greedy.utility)
    [ 0; 1; 2; 5; 9; 14; 30 ]

(* ---------- properties ---------- *)

let gen_plcs_and_budget =
  QCheck2.Gen.(
    let* n = int_range 1 6 in
    let* fs = list_repeat n Helpers.gen_plc in
    let* budget = float_range 0.0 120.0 in
    return (Array.of_list fs, budget))

let prop_greedy_feasible =
  QCheck2.Test.make ~name:"plc greedy: feasible and within caps" ~count:300
    gen_plcs_and_budget (fun (fs, budget) ->
      let r = Plc_greedy.allocate ~budget fs in
      let total = Util.kahan_sum r.alloc in
      total <= budget +. 1e-6
      && Array.for_all2 (fun c f -> c >= 0.0 && c <= Plc.cap f +. 1e-9) r.alloc fs)

let prop_greedy_beats_random_feasible =
  QCheck2.Test.make ~name:"plc greedy: no feasible point beats it" ~count:300
    QCheck2.Gen.(pair gen_plcs_and_budget (int_range 0 10_000))
    (fun ((fs, budget), seed) ->
      let r = Plc_greedy.allocate ~budget fs in
      let rng = Rng.create ~seed () in
      let n = Array.length fs in
      (* random feasible allocation: random simplex point scaled to budget,
         clipped at caps *)
      let ok = ref true in
      for _ = 1 to 20 do
        let parts = Rng.simplex rng n in
        let alloc =
          Array.mapi (fun i p -> Float.min (Plc.cap fs.(i)) (p *. budget)) parts
        in
        let u = Plc_greedy.total_utility fs alloc in
        if u > r.utility +. 1e-6 *. Float.max 1.0 r.utility then ok := false
      done;
      !ok)

(* The pre-flat-kernel allocator, reimplemented verbatim as a reference:
   materialize every positive-slope piece, sort globally by (slope desc,
   thread asc), pour, then optionally exhaust on flat regions. The merge
   kernel must reproduce it bit for bit. *)
let sort_based_allocate ~exhaust ~budget fs =
  let n = Array.length fs in
  let pieces = ref [] in
  for i = 0 to n - 1 do
    Array.iter
      (fun (s : Plc.segment) ->
        if s.slope > 0.0 then pieces := (i, s.x1 -. s.x0, s.slope) :: !pieces)
      (Plc.segments fs.(i))
  done;
  let pieces = Array.of_list !pieces in
  Array.sort
    (fun (t1, _, s1) (t2, _, s2) ->
      match compare s2 s1 with 0 -> compare t1 t2 | c -> c)
    pieces;
  let alloc = Array.make n 0.0 in
  let remaining = ref budget in
  let lambda = ref 0.0 in
  (try
     Array.iter
       (fun (t, len, slope) ->
         if !remaining <= 0.0 then raise Exit;
         let take = Float.min len !remaining in
         alloc.(t) <- alloc.(t) +. take;
         remaining := !remaining -. take;
         if take > 0.0 then lambda := slope)
       pieces
   with Exit -> ());
  if exhaust && !remaining > 0.0 then begin
    let i = ref 0 in
    while !remaining > 0.0 && !i < n do
      let headroom = Plc.cap fs.(!i) -. alloc.(!i) in
      let take = Float.min headroom !remaining in
      if take > 0.0 then begin
        alloc.(!i) <- alloc.(!i) +. take;
        remaining := !remaining -. take
      end;
      incr i
    done
  end;
  let lambda = if !remaining > 0.0 then 0.0 else !lambda in
  (alloc, lambda)

let fsame a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let prop_merge_bit_identical_to_sort =
  QCheck2.Test.make ~name:"plc greedy: merge kernel bit-identical to sort-based reference"
    ~count:500
    QCheck2.Gen.(pair gen_plcs_and_budget bool)
    (fun ((fs, budget), exhaust) ->
      let r = Plc_greedy.allocate ~exhaust ~budget fs in
      let ref_alloc, ref_lambda = sort_based_allocate ~exhaust ~budget fs in
      Array.for_all2 fsame r.alloc ref_alloc && fsame r.lambda ref_lambda)

let prop_scratch_reuse_bit_identical =
  QCheck2.Test.make ~name:"plc greedy: recycled scratch bit-identical to fresh state"
    ~count:200
    QCheck2.Gen.(pair gen_plcs_and_budget gen_plcs_and_budget)
    (fun ((fs1, b1), (fs2, b2)) ->
      let scratch = Plc_greedy.Scratch.create () in
      (* interleave two different shapes through one scratch, twice *)
      let runs =
        List.map
          (fun (fs, b) -> Plc_greedy.allocate ~scratch ~budget:b fs)
          [ (fs1, b1); (fs2, b2); (fs1, b1); (fs2, b2) ]
      in
      let fresh =
        List.map (fun (fs, b) -> Plc_greedy.allocate ~budget:b fs) [ (fs1, b1); (fs2, b2) ]
      in
      let same (a : Plc_greedy.result) (b : Plc_greedy.result) =
        Array.for_all2 fsame a.alloc b.alloc && fsame a.lambda b.lambda
        && fsame a.utility b.utility
      in
      match (runs, fresh) with
      | [ r1; r2; r1'; r2' ], [ f1; f2 ] ->
          same r1 f1 && same r2 f2 && same r1' f1 && same r2' f2
      | _ -> false)

let prop_greedy_monotone_in_budget =
  QCheck2.Test.make ~name:"plc greedy: utility nondecreasing in budget" ~count:200
    gen_plcs_and_budget (fun (fs, budget) ->
      let r1 = Plc_greedy.allocate ~budget fs in
      let r2 = Plc_greedy.allocate ~budget:(budget *. 1.5) fs in
      r2.utility >= r1.utility -. 1e-9)

let prop_waterfill_close_to_greedy =
  QCheck2.Test.make ~name:"waterfill matches exact greedy on PLC" ~count:200
    gen_plcs_and_budget (fun (fs, budget) ->
      let exact = (Plc_greedy.allocate ~budget fs).utility in
      let wf = (Waterfill.allocate ~budget (Array.map Utility.of_plc fs)).utility in
      wf <= exact +. 1e-6 *. Float.max 1.0 exact
      && wf >= exact -. (2e-4 *. Float.max 1.0 exact))

let prop_fox_galil_agree =
  QCheck2.Test.make ~name:"fox and galil agree on random utilities" ~count:150
    QCheck2.Gen.(
      let* n = int_range 1 5 in
      let* us = list_repeat n (Helpers.gen_utility_with_cap 12.0) in
      let* budget = int_range 0 40 in
      return (Array.of_list us, budget))
    (fun (us, budget) ->
      let fox = Fox.allocate ~budget ~unit_size:1.0 us in
      let galil = Galil.allocate ~budget ~unit_size:1.0 us in
      Util.approx_equal ~eps:1e-6 fox.utility galil.utility)

let () =
  Alcotest.run "alloc"
    [
      ( "plc-greedy",
        [
          Alcotest.test_case "simple" `Quick test_greedy_simple;
          Alcotest.test_case "budget exceeds" `Quick test_greedy_budget_exceeds_all;
          Alcotest.test_case "zero budget" `Quick test_greedy_zero_budget;
          Alcotest.test_case "exhaust saturates" `Quick test_greedy_exhaust_saturates_budget;
          Alcotest.test_case "respects caps" `Quick test_greedy_respects_caps;
          Alcotest.test_case "negative budget" `Quick test_greedy_negative_budget;
          Alcotest.test_case "matches DP" `Quick test_plc_greedy_matches_dp;
        ] );
      ( "waterfill",
        [
          Alcotest.test_case "equalizes derivatives" `Quick test_waterfill_equalizes_derivatives;
          Alcotest.test_case "budget not binding" `Quick test_waterfill_budget_not_binding;
          Alcotest.test_case "prefers steeper" `Quick test_waterfill_prefers_steeper;
          Alcotest.test_case "matches KKT" `Quick test_waterfill_matches_kkt;
        ] );
      ( "discrete",
        [
          Alcotest.test_case "fox simple" `Quick test_fox_simple;
          Alcotest.test_case "fox zero budget" `Quick test_fox_zero_budget;
          Alcotest.test_case "fox = dp" `Quick test_fox_equals_dp;
          Alcotest.test_case "galil = dp" `Quick test_galil_equals_dp;
          Alcotest.test_case "fox fractional units" `Quick test_fox_fractional_units;
          Alcotest.test_case "fractional agreement" `Quick test_fox_galil_dp_fractional_agree;
          Alcotest.test_case "galil lambda" `Quick test_galil_lambda_consistent;
          Alcotest.test_case "dp nonconcave" `Quick test_dp_nonconcave;
          Alcotest.test_case "dp empty row" `Quick test_dp_empty_row;
        ] );
      Helpers.qsuite "properties"
        [
          prop_greedy_feasible;
          prop_greedy_beats_random_feasible;
          prop_merge_bit_identical_to_sort;
          prop_scratch_reuse_bit_identical;
          prop_greedy_monotone_in_budget;
          prop_waterfill_close_to_greedy;
          prop_fox_galil_agree;
        ];
    ]
