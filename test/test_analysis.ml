(* The analysis layer: aa_lint (tokenizer, rules, suppression, baseline)
   and the solution certifier. The lint half also runs over the real lib/
   tree here, which is what keeps `dune runtest` green only when the
   source is lint-clean modulo the checked-in baseline. *)

open Aa_utility
open Aa_core
open Aa_analysis

(* ---------- tokenizer ---------- *)

let kinds src = Array.to_list (Array.map (fun (t : Token.t) -> t.kind) (Token.scan src))
let texts src = Array.to_list (Array.map (fun (t : Token.t) -> t.text) (Token.scan src))

let test_scan_basics () =
  Alcotest.(check (list string))
    "texts"
    [ "let"; "x"; "="; "1.0"; "in"; "x" ]
    (texts "let x = 1.0 in x");
  match kinds "let x = 1.0 in x" with
  | [ Token.Keyword; Token.Ident; Token.Op; Token.Float_lit; Token.Keyword; Token.Ident ] -> ()
  | _ -> Alcotest.fail "unexpected kinds"

let test_scan_literals () =
  (match kinds "1 1. 1.5e-3 0x10 1_000" with
  | [ Token.Int_lit; Token.Float_lit; Token.Float_lit; Token.Int_lit; Token.Int_lit ] -> ()
  | _ -> Alcotest.fail "number kinds");
  (match kinds "'a' '\\n' ('b : 'a)" with
  | Token.Char_lit :: Token.Char_lit :: _ -> ()
  | _ -> Alcotest.fail "char kinds");
  match kinds {|"a\"b" {x|raw "quote|x}|} with
  | [ Token.String_lit; Token.String_lit ] -> ()
  | _ -> Alcotest.fail "string kinds"

let test_scan_comments () =
  (match kinds "a (* outer (* inner *) still *) b" with
  | [ Token.Ident; Token.Comment; Token.Ident ] -> ()
  | _ -> Alcotest.fail "nested comment");
  (* a string inside a comment may contain a comment closer *)
  match kinds {|a (* "*)" *) b|} with
  | [ Token.Ident; Token.Comment; Token.Ident ] -> ()
  | _ -> Alcotest.fail "string-in-comment"

let test_scan_positions () =
  let toks = Token.scan "let x =\n  2.5" in
  let last = toks.(Array.length toks - 1) in
  Alcotest.(check int) "line" 2 last.line;
  Alcotest.(check int) "col" 3 last.col

(* ---------- surface parser ---------- *)

let syn src = Syntax.make (Token.scan src)
let unlines = String.concat "\n"

let find_code s text =
  let code = Syntax.code s in
  let r = ref (-1) in
  Array.iteri
    (fun i (t : Token.t) -> if !r < 0 && String.equal t.text text then r := i)
    code;
  if !r < 0 then Alcotest.failf "token %S not found" text;
  !r

let def_names s = List.map (fun (d : Syntax.def) -> d.Syntax.name) (Syntax.defs s)

let test_syntax_nested_lets () =
  let s =
    syn
      (unlines
         [
           "let outer a b =";
           "  let inner x =";
           "    let deep = x + 1 in";
           "    deep";
           "  in";
           "  inner (a + b)";
         ])
  in
  Alcotest.(check (list string))
    "defs in source order" [ "outer"; "inner"; "deep" ] (def_names s);
  (match Syntax.defs s with
  | { Syntax.name = "outer"; params; _ } :: _ ->
      Alcotest.(check (list string)) "outer params" [ "a"; "b" ] params
  | _ -> Alcotest.fail "outer should come first");
  match Syntax.def_before s "inner" (Array.length (Syntax.code s)) with
  | Some d -> Alcotest.(check (list string)) "inner params" [ "x" ] d.Syntax.params
  | None -> Alcotest.fail "def_before missed inner"

let test_syntax_quoted_strings () =
  (* binding-shaped text inside string literals must not produce defs *)
  let s =
    syn
      (unlines
         [
           {|let s = "let bogus = 1 in"|};
           {|let q = {x|let phantom = 2|x}|};
           "let r = s ^ q";
         ])
  in
  Alcotest.(check (list string)) "strings hide nothing" [ "s"; "q"; "r" ] (def_names s)

let test_syntax_functor () =
  let s =
    syn
      (unlines
         [
           "module Make (Cfg : CONFIG) = struct";
           "  let scale x = x * Cfg.factor";
           "  let table = Hashtbl.create 8";
           "end";
         ])
  in
  let names = def_names s in
  Alcotest.(check bool) "scale found inside functor" true (List.mem "scale" names);
  Alcotest.(check bool) "table found inside functor" true (List.mem "table" names)

let test_syntax_locals () =
  let s =
    syn
      (unlines
         [
           "let f x =";
           "  match x with";
           "  | Some (a, b) when a > 0 -> a + b";
           "  | None -> for i = 0 to 3 do ignore i done; 0";
         ])
  in
  let tbl = Syntax.locals_in s ~lo:0 ~hi:(Array.length (Syntax.code s)) in
  List.iter
    (fun v -> Alcotest.(check bool) (v ^ " is local") true (Hashtbl.mem tbl v))
    [ "f"; "x"; "a"; "b"; "i" ];
  Alcotest.(check bool) "constructors are not locals" false (Hashtbl.mem tbl "Some")

let test_syntax_closures () =
  let s = syn "let g p = apply p (fun ~lo ~hi -> lo + hi) (worker ctx)" in
  let lo = find_code s "(" in
  let hi = Syntax.matching_close s lo + 1 in
  (match Syntax.closure_at s ~lo ~hi with
  | Some c -> Alcotest.(check (list string)) "fun params" [ "lo"; "hi" ] c.Syntax.params
  | None -> Alcotest.fail "parenthesized fun literal not recognized");
  let wlo = find_code s "worker" - 1 in
  let whi = Syntax.matching_close s wlo + 1 in
  Alcotest.(check bool)
    "partial application is not a closure literal" true
    (Option.is_none (Syntax.closure_at s ~lo:wlo ~hi:whi));
  let s2 = syn "let h = function [] -> 0 | x :: _ -> x" in
  let flo = find_code s2 "function" in
  match Syntax.closure_at s2 ~lo:flo ~hi:(Array.length (Syntax.code s2)) with
  | Some c -> Alcotest.(check (list string)) "function binds no params" [] c.Syntax.params
  | None -> Alcotest.fail "function literal not recognized"

(* ---------- rules ---------- *)

let lint ?(file = "lib/core/fake.ml") src = Lint.check_source ~file src
let rules_of vs = List.map (fun (x : Rules.violation) -> x.rule) vs

let viols_of rule vs =
  List.filter (fun (x : Rules.violation) -> String.equal x.rule rule) vs

let contains ~needle hay =
  let n = String.length hay and k = String.length needle in
  let rec at i = i + k <= n && (String.sub hay i k = needle || at (i + 1)) in
  at 0

let test_float_eq_flags_comparisons () =
  Alcotest.(check (list string))
    "= against literal" [ "float-eq" ]
    (rules_of (lint "let f x = if x = 0.0 then 1 else 2"));
  Alcotest.(check (list string))
    "<> against literal" [ "float-eq" ]
    (rules_of (lint "let f x = x <> 1.5"));
  Alcotest.(check (list string))
    "negated literal" [ "float-eq" ]
    (rules_of (lint "let f x = if x = -1.0 then 1 else 2"));
  Alcotest.(check (list string))
    "projection chain" [ "float-eq" ]
    (rules_of (lint "let f a i = a.(i) = 0.5"))

let test_float_eq_skips_bindings () =
  Alcotest.(check (list string))
    "let binding" []
    (rules_of (lint "let x = 0.0"));
  Alcotest.(check (list string))
    "record fields" []
    (rules_of (lint "let r = { alloc = caps; lambda = 0.0 }"));
  Alcotest.(check (list string))
    "optional default" []
    (rules_of (lint "let f ?(eps = 1e-9) () = eps"));
  Alcotest.(check (list string))
    "record update" []
    (rules_of (lint "let r2 = { r with lambda = 0.0 }"));
  Alcotest.(check (list string))
    "int comparison" []
    (rules_of (lint "let f x = x = 10"))

let test_partial_fn () =
  Alcotest.(check (list string))
    "List.hd" [ "partial-fn" ]
    (rules_of (lint "let x = List.hd xs"));
  Alcotest.(check (list string))
    "Option.get and Array.get" [ "partial-fn"; "partial-fn" ]
    (rules_of (lint "let x = Option.get o + Array.get a 0"));
  Alcotest.(check (list string))
    "safe variants untouched" []
    (rules_of (lint "let x = List.nth_opt xs 0 and y = a.(0)"))

let test_catch_all () =
  Alcotest.(check (list string))
    "try with wildcard" [ "catch-all" ]
    (rules_of (lint "let x = try f () with _ -> 0"));
  Alcotest.(check (list string))
    "typed handler ok" []
    (rules_of (lint "let x = try f () with Not_found -> 0"));
  Alcotest.(check (list string))
    "match wildcard ok" []
    (rules_of (lint "let x = match y with _ -> 0"));
  Alcotest.(check (list string))
    "record update inside try" []
    (rules_of
       (lint "let x = try g { r with a = 1 } with Failure _ -> r"));
  Alcotest.(check (list string))
    "match inside try, still typed" []
    (rules_of
       (lint "let x = try match y with [] -> 0 | _ -> 1 with Not_found -> 2"))

let test_no_failwith () =
  Alcotest.(check (list string))
    "flagged in lib/core" [ "no-failwith" ]
    (rules_of (lint ~file:"lib/core/solver.ml" "let f () = failwith \"boom\""));
  Alcotest.(check (list string))
    "flagged in lib/alloc" [ "no-failwith" ]
    (rules_of (lint ~file:"lib/alloc/dp.ml" "let f () = failwith \"boom\""));
  Alcotest.(check (list string))
    "allowed elsewhere" []
    (rules_of (lint ~file:"lib/sim/trace.ml" "let f () = failwith \"boom\""))

let test_todo_format () =
  Alcotest.(check (list string))
    "untracked TODO" [ "todo-format" ]
    (rules_of (lint "(* TODO: make this faster *)"));
  Alcotest.(check (list string))
    "tracked TODO ok" []
    (rules_of (lint "(* TODO(#42): make this faster *)"));
  Alcotest.(check (list string))
    "tracked FIXME ok" []
    (rules_of (lint "(* FIXME(lai): rounding *)"));
  let vs = lint "let a = 1\n(* line2\n   FIXME here *)" in
  (match vs with
  | [ v ] -> Alcotest.(check int) "marker line in multiline comment" 3 v.line
  | _ -> Alcotest.fail "expected one violation")

let test_wall_clock () =
  Alcotest.(check (list string))
    "Unix.gettimeofday flagged" [ "wall-clock" ]
    (rules_of (lint "let t = Unix.gettimeofday ()"));
  Alcotest.(check (list string))
    "Unix.time flagged" [ "wall-clock" ]
    (rules_of (lint "let t = Unix.time ()"));
  Alcotest.(check (list string))
    "Sys.time flagged" [ "wall-clock" ]
    (rules_of (lint "let t = Sys.time ()"));
  Alcotest.(check (list string))
    "exempt under lib/obs" []
    (rules_of (lint ~file:"lib/obs/clock.ml" "let t = Unix.gettimeofday ()"));
  Alcotest.(check (list string))
    "Clock wrapper usage ok" []
    (rules_of (lint "let t = Aa_obs.Clock.now_s ()"));
  Alcotest.(check (list string))
    "unrelated Sys call ok" []
    (rules_of (lint "let n = Sys.getenv \"HOME\""))

let test_raw_io () =
  Alcotest.(check (list string))
    "Out_channel.open_text in lib/service" [ "raw-io" ]
    (rules_of
       (lint ~file:"lib/service/engine.ml"
          "let oc = Out_channel.open_text path"));
  Alcotest.(check (list string))
    "Sys.rename in lib/service" [ "raw-io" ]
    (rules_of (lint ~file:"lib/service/metrics.ml" "let () = Sys.rename a b"));
  Alcotest.(check (list string))
    "bare open_out in lib/service" [ "raw-io" ]
    (rules_of (lint ~file:"lib/service/protocol.ml" "let oc = open_out path"));
  Alcotest.(check (list string))
    "journal.ml is exempt" []
    (rules_of
       (lint ~file:"lib/service/journal.ml"
          "let oc = Out_channel.open_text path in Sys.rename a b"));
  Alcotest.(check (list string))
    "other trees untouched" []
    (rules_of (lint ~file:"lib/io/format_text.ml" "let oc = open_out path"));
  Alcotest.(check (list string))
    "qualified non-target ok" []
    (rules_of
       (lint ~file:"lib/service/engine.ml" "let () = Out_channel.flush oc"))

let test_suppression () =
  Alcotest.(check (list string))
    "same-line id" []
    (rules_of
       (lint "let x = List.hd xs (* aa-lint: ignore partial-fn -- nonempty *)"));
  Alcotest.(check (list string))
    "same-line all" []
    (rules_of (lint "let x = try List.hd xs with _ -> y (* aa-lint: ignore all *)"));
  Alcotest.(check (list string))
    "wrong id does not silence" [ "partial-fn" ]
    (rules_of (lint "let x = List.hd xs (* aa-lint: ignore float-eq *)"));
  Alcotest.(check (list string))
    "ignore-next" []
    (rules_of (lint "(* aa-lint: ignore-next partial-fn *)\nlet x = List.hd xs"));
  Alcotest.(check (list string))
    "ignore-next reaches only the next line" [ "partial-fn" ]
    (rules_of
       (lint "(* aa-lint: ignore-next partial-fn *)\nlet a = 1\nlet x = List.hd xs"))

(* ---------- pool-mutation ---------- *)

let pool_lint ?file src = viols_of "pool-mutation" (lint ?file src)

let test_pool_mutation_catches_captured_state () =
  (* the canonical violation: a map_chunked worker folding into a ref
     captured from the enclosing module *)
  let fixture =
    unlines
      [
        "let acc = ref 0.0";
        "let sum pool xs =";
        "  Pool.map_chunked pool ~n:(Array.length xs) ~chunk:4 (fun ~lo ~hi ->";
        "    let s = ref 0.0 in";
        "    for i = lo to hi - 1 do s := !s +. xs.(i) done;";
        "    acc := !acc +. !s;";
        "    !s)";
      ]
  in
  match pool_lint fixture with
  | [ x ] ->
      Alcotest.(check bool) "names acc" true (contains ~needle:"`acc`" x.message);
      Alcotest.(check int) "on the mutation line" 6 x.line
  | vs ->
      Alcotest.failf "expected exactly the acc mutation, got %d finding(s)"
        (List.length vs)

let test_pool_mutation_mutator_calls () =
  (match
     pool_lint
       (unlines
          [
            "let tbl = Hashtbl.create 8";
            "let fill pool =";
            "  Pool.run pool ~n:8 ~chunk:2 (fun ~lo ~hi -> Hashtbl.replace tbl lo hi)";
          ])
   with
  | [ x ] ->
      Alcotest.(check bool) "names the mutator" true
        (contains ~needle:"Hashtbl.replace" x.message)
  | vs -> Alcotest.failf "Hashtbl: expected one finding, got %d" (List.length vs));
  match
    pool_lint
      (unlines
         [
           "let best = Array.make 4 0.0";
           "let f pool =";
           "  Pool.run pool ~n:4 ~chunk:1 (fun ~lo ~hi -> best.(0) <- float_of_int lo)";
         ])
  with
  | [ x ] ->
      Alcotest.(check bool) "a constant subscript is not a disjoint slot" true
        (contains ~needle:"`best`" x.message)
  | vs -> Alcotest.failf "Array: expected one finding, got %d" (List.length vs)

let test_pool_mutation_sanctioned_shapes () =
  let clean what src =
    Alcotest.(check int) what 0 (List.length (pool_lint (unlines src)))
  in
  clean "atomic claims pass"
    [
      "let hits = Atomic.make 0";
      "let f pool =";
      "  Pool.run pool ~n:8 ~chunk:2 (fun ~lo ~hi -> Atomic.incr hits; Atomic.set flag true)";
    ];
  clean "registered scratch buffers pass"
    [
      "let buf = Scratch.create pool ~len:16";
      "let f pool =";
      "  Pool.run pool ~n:16 ~chunk:4 (fun ~lo ~hi -> Array.fill buf lo (hi - lo) 0.0)";
    ];
  clean "disjoint per-index slots pass"
    [
      "let hits = Array.make 8 0";
      "let f pool =";
      "  Pool.run pool ~n:8 ~chunk:2 (fun ~lo ~hi ->";
      "    for i = lo to hi - 1 do hits.(i) <- hits.(i) + 1 done)";
    ];
  clean "local accumulators pass"
    [
      "let f pool =";
      "  Pool.map_chunked pool ~n:8 ~chunk:2 (fun ~lo ~hi ->";
      "    let s = ref 0 in";
      "    for i = lo to hi - 1 do s := !s + i done;";
      "    !s)";
    ]

let test_pool_mutation_named_worker () =
  (* a bare-identifier worker in final position is chased to its binding *)
  (match
     pool_lint
       (unlines
          [
            "let total = ref 0";
            "let f pool =";
            "  let worker ~lo ~hi = total := !total + (hi - lo) in";
            "  Pool.run pool ~n:8 ~chunk:2 worker";
          ])
   with
  | [ x ] -> Alcotest.(check int) "flagged inside the worker body" 3 x.line
  | vs -> Alcotest.failf "worker: expected one finding, got %d" (List.length vs));
  (* pool.ml's own unqualified [run] is not an entry point *)
  Alcotest.(check int) "unqualified call ignored" 0
    (List.length
       (pool_lint
          (unlines
             [
               "let acc = ref 0";
               "let f pool = run pool ~n:4 ~chunk:1 (fun ~lo ~hi -> acc := lo)";
             ])))

(* ---------- unguarded-div ---------- *)

let div_lint ?(file = "lib/numerics/fake.ml") src =
  viols_of "unguarded-div" (lint ~file src)

let test_unguarded_div_flags () =
  (match div_lint "let density mass volume = mass /. volume" with
  | [ x ] -> Alcotest.(check string) "rule id" "unguarded-div" x.rule
  | vs -> Alcotest.failf "bare divisor: expected one finding, got %d" (List.length vs));
  Alcotest.(check int) "literal zero divisor flagged" 1
    (List.length (div_lint "let bad x = x /. 0.0"));
  Alcotest.(check int) "lib/alloc is in scope" 1
    (List.length
       (div_lint ~file:"lib/alloc/fake.ml" "let density mass volume = mass /. volume"))

let test_unguarded_div_guards () =
  let clean what ?file src = Alcotest.(check int) what 0 (List.length (div_lint ?file src)) in
  clean "nonzero literal divisor" "let half x = x /. 2.0";
  clean "comparison guard in the same definition"
    "let safe a b = if b > 0.0 then a /. b else 0.0";
  clean "clamp with max and eps" "let r x d = x /. (max d 1e-9)";
  clean "Util.fne guard" "let s a b = if fne b 0.0 then a /. b else 0.0";
  clean "other trees are out of scope" ~file:"lib/core/fake.ml"
    "let density mass volume = mass /. volume"

(* ---------- unused-export and the cross-module index ---------- *)

let test_index_def_use () =
  let t path src = (path, Token.scan src) in
  let targets =
    [
      t "lib/foo/alpha.mli"
        (unlines
           [
             "val used_fn : int -> int";
             "val dead_fn : int -> int";
             "module Sub : sig";
             "  val inner : int";
             "end";
             "module type SPEC = sig";
             "  val spec_only : int";
             "end";
           ]);
      t "lib/foo/alpha.ml"
        (unlines
           [
             "let used_fn x = x";
             "let dead_fn x = used_fn x + 1";
             "module Sub = struct let inner = 3 end";
           ]);
      t "lib/foo/beta.mli" "val via_open : int";
    ]
  in
  let uses =
    [
      t "bin/main.ml" "let a = Alpha.used_fn 3\nlet b = Alpha.Sub.inner";
      t "lib/foo/gamma.ml" "open Beta\nlet c = via_open + 1";
    ]
  in
  let idx = Index.build ~targets ~uses in
  let exports = Index.exports idx in
  Alcotest.(check (list string))
    "exports in order, module-type members omitted"
    [ "used_fn"; "dead_fn"; "inner"; "via_open" ]
    (List.map (fun (e : Index.export) -> e.Index.e_name) exports);
  let by_name n = List.find (fun (e : Index.export) -> e.Index.e_name = n) exports in
  Alcotest.(check string) "inner's enclosing module" "Sub" (by_name "inner").Index.e_module;
  Alcotest.(check bool) "qualified use counts" true (Index.used idx (by_name "used_fn"));
  Alcotest.(check bool) "nested-path use counts" true (Index.used idx (by_name "inner"));
  Alcotest.(check bool) "open + bare mention counts" true
    (Index.used idx (by_name "via_open"));
  Alcotest.(check bool) "own-module use does not count" false
    (Index.used idx (by_name "dead_fn"));
  Alcotest.(check string) "module_of_path" "Stats"
    (Index.module_of_path "lib/numerics/stats.mli")

let test_unused_export_rule () =
  (match Rules.find_project "unused-export" with
  | None -> Alcotest.fail "unused-export should be registered"
  | Some p ->
      Alcotest.(check bool) "warn by default" true (p.Rules.pdefault_severity = Rules.Warn);
      let idx =
        Index.build ~targets:[ ("lib/foo/omega.mli", Token.scan "val ghost : int") ] ~uses:[]
      in
      (match p.Rules.pcheck idx with
      | [ x ] ->
          Alcotest.(check string) "attaches to the .mli" "lib/foo/omega.mli" x.Rules.file;
          Alcotest.(check bool) "warn severity" true (x.Rules.severity = Rules.Warn);
          Alcotest.(check bool) "names the export" true
            (contains ~needle:"Omega.ghost" x.Rules.message)
      | vs -> Alcotest.failf "expected one finding, got %d" (List.length vs)));
  Alcotest.(check bool) "per-file lookup finds pool-mutation" true
    (Option.is_some (Rules.find "pool-mutation"));
  Alcotest.(check bool) "lookups don't cross namespaces" true
    (Option.is_none (Rules.find "unused-export")
    && Option.is_none (Rules.find_project "float-eq"))

(* ---------- lint runner: files and baseline ---------- *)

let write_file path contents =
  Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc contents)

let test_run_and_baseline () =
  let file = "lint_tmp_baseline.ml" in
  write_file file "let x = List.hd xs\nlet y = if z = 0.0 then 1 else 2\n";
  let outcome, with_lines = Lint.run_with_lines [ file ] in
  Alcotest.(check int) "two fresh" 2 (List.length outcome.fresh);
  Alcotest.(check int) "one file" 1 outcome.files;
  (* adopt the current state as the baseline: everything is absorbed *)
  let entries = Lint.baseline_entries with_lines in
  Alcotest.(check int) "two entries" 2 (List.length entries);
  let baseline =
    List.filter_map
      (fun line ->
        match String.split_on_char ' ' line with
        | [ _rule; count; fp; _path ] -> Some (fp, int_of_string count)
        | _ -> None)
      entries
  in
  let again = Lint.run ~baseline [ file ] in
  Alcotest.(check int) "no fresh after baselining" 0 (List.length again.fresh);
  Alcotest.(check int) "both baselined" 2 (List.length again.baselined);
  Alcotest.(check (list string)) "nothing stale" [] again.stale_baseline;
  (* fix one violation: its baseline entry goes stale, nothing is fresh *)
  write_file file "let x = List.hd xs\nlet y = if z = 0 then 1 else 2\n";
  let after_fix = Lint.run ~baseline [ file ] in
  Alcotest.(check int) "still no fresh" 0 (List.length after_fix.fresh);
  Alcotest.(check int) "one stale entry" 1 (List.length after_fix.stale_baseline);
  Sys.remove file

let test_baseline_survives_line_drift () =
  let file = "lint_tmp_drift.ml" in
  write_file file "let x = List.hd xs\n";
  let _, with_lines = Lint.run_with_lines [ file ] in
  let baseline =
    List.filter_map
      (fun line ->
        match String.split_on_char ' ' line with
        | [ _; c; fp; _ ] -> Some (fp, int_of_string c)
        | _ -> None)
      (Lint.baseline_entries with_lines)
  in
  (* push the violation three lines down: fingerprint still matches *)
  write_file file "(* new header *)\nlet a = 1\nlet b = 2\nlet x = List.hd xs\n";
  let outcome = Lint.run ~baseline [ file ] in
  Alcotest.(check int) "no fresh" 0 (List.length outcome.fresh);
  Alcotest.(check int) "baselined" 1 (List.length outcome.baselined);
  Sys.remove file

let test_severity_override () =
  let file = "lint_tmp_sev.ml" in
  write_file file "let x = List.hd xs\n";
  let outcome = Lint.run ~severities:[ ("partial-fn", Rules.Warn) ] [ file ] in
  (match outcome.fresh with
  | [ x ] -> Alcotest.(check bool) "demoted to warn" true (x.Rules.severity = Rules.Warn)
  | vs -> Alcotest.failf "expected one finding, got %d" (List.length vs));
  Sys.remove file

let test_unused_export_via_runner () =
  (* the full loop: .mli targets, --uses-style reference roots, severity *)
  write_file "lint_uex_t.mli" "val alive : int\nval dead : int\n";
  write_file "lint_uex_t.ml" "let alive = 1\nlet dead = 2\n";
  write_file "lint_uex_use.ml" "let x = Lint_uex_t.alive\n";
  let targets = [ "lint_uex_t.mli"; "lint_uex_t.ml" ] in
  let without = Lint.run ~rules:[] targets in
  Alcotest.(check int) "no use root: both exports unused" 2 (List.length without.fresh);
  let with_uses = Lint.run ~rules:[] ~use_paths:[ "lint_uex_use.ml" ] targets in
  (match with_uses.fresh with
  | [ x ] ->
      Alcotest.(check bool) "dead survives" true (contains ~needle:"dead" x.Rules.message);
      Alcotest.(check string) "reported on the .mli" "lint_uex_t.mli" x.Rules.file;
      Alcotest.(check bool) "warn severity" true (x.Rules.severity = Rules.Warn)
  | vs -> Alcotest.failf "expected one finding, got %d" (List.length vs));
  (match
     (Lint.run ~rules:[] ~severities:[ ("unused-export", Rules.Error) ]
        ~use_paths:[ "lint_uex_use.ml" ] targets)
       .fresh
   with
  | [ x ] ->
      Alcotest.(check bool) "promoted to error" true (x.Rules.severity = Rules.Error)
  | vs -> Alcotest.failf "expected one promoted finding, got %d" (List.length vs));
  List.iter Sys.remove (targets @ [ "lint_uex_use.ml" ])

(* The real tree: zero non-baselined violations over lib/. *)
let lib_dir =
  List.find_opt Sys.file_exists [ "../lib"; "lib" ] |> Option.value ~default:"../lib"

let baseline_file =
  List.find_opt Sys.file_exists [ "../aa-lint.baseline"; "aa-lint.baseline" ]
  |> Option.value ~default:"../aa-lint.baseline"

(* bin/, bench/ and test/ are scanned for references only, mirroring the
   root lint alias: aa_lint --uses bin --uses bench --uses test lib *)
let use_roots =
  let root = Filename.dirname lib_dir in
  List.filter Sys.file_exists
    [ Filename.concat root "bin"; Filename.concat root "bench"; Filename.concat root "test" ]

let test_source_file_discovery () =
  let mls = Lint.ml_files_under lib_dir in
  let all = Lint.source_files_under lib_dir in
  Alcotest.(check bool) "interfaces add files" true (List.length all > List.length mls);
  List.iter
    (fun f -> if not (Filename.check_suffix f ".ml") then Alcotest.failf "%s is not .ml" f)
    mls;
  List.iter
    (fun f ->
      if not (List.mem f all) then Alcotest.failf "%s missing from the source set" f)
    mls

let test_fingerprint_stability () =
  let fp = Lint.fingerprint ~file:"lib/core/x.ml" ~line_text:"let y = List.hd xs" "partial-fn" in
  Alcotest.(check string) "path and whitespace normalized" fp
    (Lint.fingerprint ~file:"../lib/core/x.ml" ~line_text:"  let y = List.hd xs  "
       "partial-fn");
  Alcotest.(check bool) "rule id is part of the key" true
    (fp <> Lint.fingerprint ~file:"lib/core/x.ml" ~line_text:"let y = List.hd xs" "float-eq")

let test_pool_mutation_zero_false_positives () =
  (* acceptance bar: every real Pool.run / map_chunked call site in the
     tree is clean under the determinism-contract exemptions *)
  let dirs =
    List.filter Sys.file_exists
      [ Filename.concat lib_dir "parallel"; Filename.concat lib_dir "experiments" ]
  in
  Alcotest.(check int) "both call-site trees present" 2 (List.length dirs);
  let rule =
    match Rules.find "pool-mutation" with
    | Some r -> r
    | None -> Alcotest.fail "pool-mutation registered"
  in
  let outcome = Lint.run ~rules:[ rule ] ~project:[] dirs in
  Alcotest.(check bool) "several files scanned" true (outcome.files >= 4);
  if outcome.fresh <> [] then
    Alcotest.failf "pool-mutation false positives on real call sites:\n%s"
      (String.concat "\n"
         (List.map
            (fun v -> Format.asprintf "  %a" Rules.pp_violation v)
            outcome.fresh))

let test_lib_is_lint_clean () =
  let baseline = Lint.load_baseline baseline_file in
  let outcome = Lint.run ~use_paths:use_roots ~baseline [ lib_dir ] in
  if outcome.fresh <> [] then
    Alcotest.failf "lib/ has %d non-baselined violation(s):\n%s"
      (List.length outcome.fresh)
      (String.concat "\n"
         (List.map
            (fun v -> Format.asprintf "  %a" Rules.pp_violation v)
            outcome.fresh));
  Alcotest.(check (list string)) "no stale baseline entries" [] outcome.stale_baseline;
  if outcome.files < 80 then
    Alcotest.failf "only %d source files scanned under %s — wrong directory?"
      outcome.files lib_dir

(* ---------- aa_lint executable ---------- *)

let lint_exe =
  List.find_opt Sys.file_exists
    [ "../bin/aa_lint.exe"; "_build/default/bin/aa_lint.exe" ]
  |> Option.value ~default:"../bin/aa_lint.exe"

let run_exe args =
  Sys.command
    (Filename.quote_command lint_exe args ^ " > lint_exe_out.txt 2> lint_exe_err.txt")

let exe_stdout () = In_channel.with_open_text "lint_exe_out.txt" In_channel.input_all
let exe_stderr () = In_channel.with_open_text "lint_exe_err.txt" In_channel.input_all

let test_exe_exit_codes () =
  let bad = "lint_tmp_exe.ml" in
  write_file bad "let x = try List.nth xs 3 with _ -> 0\n";
  Alcotest.(check int) "violations exit 1" 1 (run_exe [ bad ]);
  Alcotest.(check int) "warn-only findings exit 0" 0
    (run_exe [ "--severity"; "partial-fn=warn"; "--severity"; "catch-all=warn"; bad ]);
  Alcotest.(check int) "disabled rules exit 0" 0
    (run_exe [ "--disable"; "partial-fn,catch-all"; bad ]);
  write_file bad "let x = match xs with [] -> 0 | y :: _ -> y\n";
  Alcotest.(check int) "clean exit 0" 0 (run_exe [ bad ]);
  Alcotest.(check string) "clean run prints nothing on stdout" "" (exe_stdout ());
  Alcotest.(check bool) "summary goes to stderr" true
    (contains ~needle:"aa_lint:" (exe_stderr ()));
  Alcotest.(check int) "--rules exits 0" 0 (run_exe [ "--rules" ]);
  Alcotest.(check int) "--help exits 0" 0 (run_exe [ "--help" ]);
  Alcotest.(check bool) "--help documents the exit contract" true
    (contains ~needle:"exit codes" (exe_stdout ()));
  Alcotest.(check int) "missing operand exits 124" 124 (run_exe [ "--baseline" ]);
  Alcotest.(check int) "unknown flag exits 124" 124 (run_exe [ "--frobnicate"; bad ]);
  Alcotest.(check int) "unknown rule id exits 124" 124
    (run_exe [ "--enable"; "no-such-rule"; bad ]);
  Alcotest.(check int) "bad format exits 124" 124 (run_exe [ "--format"; "xml"; bad ]);
  Alcotest.(check int) "bad severity exits 124" 124
    (run_exe [ "--severity"; "partial-fn=loud"; bad ]);
  Alcotest.(check int) "no inputs exits 124" 124 (run_exe []);
  Alcotest.(check int) "missing path exits 2" 2 (run_exe [ "no_such_dir_xyz" ]);
  Sys.remove bad

(* ---------- output formats ---------- *)

(* A deliberately small JSON parser, enough to validate the machine
   formats without trusting the renderer's own escaping. *)
type json =
  | Jnull
  | Jbool of bool
  | Jnum of float
  | Jstr of string
  | Jarr of json list
  | Jobj of (string * json) list

let parse_json s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let fail msg = Alcotest.failf "JSON: %s at offset %d" msg !pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        incr pos;
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected %C" c)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> incr pos
        | '\\' ->
            incr pos;
            (if !pos >= n then fail "dangling escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char b '"'
               | '\\' -> Buffer.add_char b '\\'
               | '/' -> Buffer.add_char b '/'
               | 'n' -> Buffer.add_char b '\n'
               | 't' -> Buffer.add_char b '\t'
               | 'r' -> Buffer.add_char b '\r'
               | 'b' -> Buffer.add_char b '\b'
               | 'f' -> Buffer.add_char b '\012'
               | 'u' ->
                   if !pos + 4 >= n then fail "truncated \\u escape";
                   let code = int_of_string ("0x" ^ String.sub s (!pos + 1) 4) in
                   pos := !pos + 4;
                   Buffer.add_char b (if code < 128 then Char.chr code else '?')
               | c -> fail (Printf.sprintf "bad escape %C" c));
            incr pos;
            go ()
        | c ->
            Buffer.add_char b c;
            incr pos;
            go ()
    in
    go ();
    Buffer.contents b
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> Jstr (parse_string ())
    | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then (
          incr pos;
          Jobj [])
        else begin
          let fields = ref [] in
          let rec members () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                members ()
            | Some '}' -> incr pos
            | _ -> fail "expected ',' or '}'"
          in
          members ();
          Jobj (List.rev !fields)
        end
    | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then (
          incr pos;
          Jarr [])
        else begin
          let items = ref [] in
          let rec elements () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                elements ()
            | Some ']' -> incr pos
            | _ -> fail "expected ',' or ']'"
          in
          elements ();
          Jarr (List.rev !items)
        end
    | Some 't' ->
        pos := !pos + 4;
        Jbool true
    | Some 'f' ->
        pos := !pos + 5;
        Jbool false
    | Some 'n' ->
        pos := !pos + 4;
        Jnull
    | Some _ ->
        let start = !pos in
        while
          !pos < n
          &&
          match s.[!pos] with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
        do
          incr pos
        done;
        if !pos = start then fail "unexpected character";
        (match float_of_string_opt (String.sub s start (!pos - start)) with
        | Some f -> Jnum f
        | None -> fail "bad number")
    | None -> fail "empty input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let member k = function
  | Jobj fields -> (
      match List.assoc_opt k fields with
      | Some v -> v
      | None -> Alcotest.failf "missing JSON member %S" k)
  | _ -> Alcotest.failf "not an object while looking for %S" k

let jstr = function Jstr s -> s | _ -> Alcotest.fail "expected a JSON string"
let jint = function Jnum f -> int_of_float f | _ -> Alcotest.fail "expected a JSON number"
let jarr = function Jarr xs -> xs | _ -> Alcotest.fail "expected a JSON array"

let test_exe_json_format () =
  let bad = "lint_tmp_fmt.ml" in
  write_file bad "let x = List.hd xs\nlet y = if z = 0.0 then 1 else 2\n";
  Alcotest.(check int) "json run exits 1" 1 (run_exe [ "--format"; "json"; bad ]);
  let doc = parse_json (exe_stdout ()) in
  Alcotest.(check string) "schema" "aa-lint/1" (jstr (member "schema" doc));
  Alcotest.(check int) "files" 1 (jint (member "files" doc));
  let summary = member "summary" doc in
  Alcotest.(check int) "fresh" 2 (jint (member "fresh" summary));
  Alcotest.(check int) "errors" 2 (jint (member "errors" summary));
  Alcotest.(check int) "warnings" 0 (jint (member "warnings" summary));
  let vs = jarr (member "violations" doc) in
  Alcotest.(check (list string))
    "rule ids in position order" [ "partial-fn"; "float-eq" ]
    (List.map (fun v -> jstr (member "rule" v)) vs);
  List.iter
    (fun v ->
      Alcotest.(check string) "file" "lint_tmp_fmt.ml" (jstr (member "file" v));
      Alcotest.(check bool) "line is positive" true (jint (member "line" v) >= 1);
      Alcotest.(check string) "severity" "error" (jstr (member "severity" v)))
    vs;
  Alcotest.(check int) "warn-demoted run exits 0" 0
    (run_exe
       [
         "--severity"; "partial-fn=warn"; "--severity"; "float-eq=warn"; "--format";
         "json"; bad;
       ]);
  let demoted = member "summary" (parse_json (exe_stdout ())) in
  Alcotest.(check int) "errors after demotion" 0 (jint (member "errors" demoted));
  Alcotest.(check int) "warnings after demotion" 2 (jint (member "warnings" demoted));
  Sys.remove bad

let test_exe_sarif_format () =
  let bad = "lint_tmp_sarif.ml" in
  write_file bad "let x = List.hd xs\n";
  Alcotest.(check int) "sarif run exits 1" 1 (run_exe [ "--format"; "sarif"; bad ]);
  let doc = parse_json (exe_stdout ()) in
  Alcotest.(check string) "version" "2.1.0" (jstr (member "version" doc));
  let run0 =
    match jarr (member "runs" doc) with [ r ] -> r | _ -> Alcotest.fail "expected one run"
  in
  let driver = member "driver" (member "tool" run0) in
  Alcotest.(check string) "driver name" "aa_lint" (jstr (member "name" driver));
  let rule_ids = List.map (fun r -> jstr (member "id" r)) (jarr (member "rules" driver)) in
  List.iter
    (fun id -> Alcotest.(check bool) (id ^ " in rule metadata") true (List.mem id rule_ids))
    [ "partial-fn"; "pool-mutation"; "unguarded-div"; "unused-export" ];
  (match jarr (member "results" run0) with
  | [ r ] ->
      Alcotest.(check string) "ruleId" "partial-fn" (jstr (member "ruleId" r));
      Alcotest.(check string) "level" "error" (jstr (member "level" r));
      let loc =
        match jarr (member "locations" r) with
        | [ l ] -> l
        | _ -> Alcotest.fail "expected one location"
      in
      let phys = member "physicalLocation" loc in
      Alcotest.(check string) "uri" "lint_tmp_sarif.ml"
        (jstr (member "uri" (member "artifactLocation" phys)));
      Alcotest.(check int) "startLine" 1 (jint (member "startLine" (member "region" phys)))
  | rs -> Alcotest.failf "expected one result, got %d" (List.length rs));
  Sys.remove bad

(* ---------- certifier: valid solutions ---------- *)

let check_certified what inst ?superopt ?min_ratio a =
  match Certify.certify ~eps:1e-6 ?superopt ?min_ratio inst a with
  | Ok _ -> ()
  | Error r -> Alcotest.failf "%s: %s" what (Format.asprintf "%a" Certify.pp_report r)

let prop_certifies algo_name solve =
  QCheck2.Test.make
    ~name:(Printf.sprintf "certifier: %s output certifies on random instances" algo_name)
    ~count:120 ~print:Helpers.print_instance Helpers.gen_instance (fun inst ->
      let inst = Helpers.plc_instance inst in
      let so = Superopt.compute inst in
      let a = solve inst in
      let r = Certify.audit ~eps:1e-6 ~superopt:so ~min_ratio:Bounds.alpha inst a in
      if not (Certify.ok r) then
        QCheck2.Test.fail_reportf "%s" (Format.asprintf "%a" Certify.pp_report r)
      else true)

let prop_heuristics_feasible =
  QCheck2.Test.make
    ~name:"certifier: heuristic outputs are feasible (no ratio guarantee)"
    ~count:120 ~print:Helpers.print_instance Helpers.gen_instance (fun inst ->
      let rng = Helpers.rng_of_seed 11 in
      List.for_all
        (fun a -> Certify.ok (Certify.audit ~eps:1e-6 inst a))
        [ Heuristics.uu inst; Heuristics.rr ~rng inst ])

let prop_coarsened_solutions_certify =
  QCheck2.Test.make
    ~name:"certifier: solving a coarsened instance still audits clean"
    ~count:100 ~print:Helpers.print_instance Helpers.gen_instance (fun inst ->
      let inst = Helpers.plc_instance inst in
      let peak =
        Array.fold_left (fun acc u -> Float.max acc (Utility.peak u)) 0.0 inst.utilities
      in
      let eps = 1e-3 *. Float.max 1e-6 peak in
      let coarse =
        Instance.create ~servers:inst.servers ~capacity:inst.capacity
          (Array.map
             (fun u -> Utility.of_plc (Plc.coarsen ~eps (Utility.to_plc u)))
             inst.utilities)
      in
      let a = Algo2.solve coarse in
      (* the coarsened instance is a legitimate instance in its own
         right, so the full alpha-ratio certificate must hold on it *)
      let rc =
        Certify.audit ~eps:1e-6 ~superopt:(Superopt.compute coarse)
          ~min_ratio:Bounds.alpha coarse a
      in
      if not (Certify.ok rc) then
        QCheck2.Test.fail_reportf "audit vs coarsened instance: %s"
          (Format.asprintf "%a" Certify.pp_report rc);
      (* against the original instance the assignment stays feasible and
         under the upper bound: coarsening only lowers each utility, so
         re-evaluating on the original can only raise the achieved value,
         and any feasible value is at most the original superopt.  (The
         alpha ratio vs the original only holds up to n*eps slack, so we
         deliberately skip min_ratio here.) *)
      let ro = Certify.audit ~eps:1e-6 ~superopt:(Superopt.compute inst) inst a in
      if not (Certify.ok ro) then
        QCheck2.Test.fail_reportf "audit vs original instance: %s"
          (Format.asprintf "%a" Certify.pp_report ro);
      true)

let test_tightness_certifies () =
  let inst = Tightness.instance () in
  let so = Superopt.compute inst in
  Helpers.check_float "F-hat equals the optimum here" Tightness.optimal_utility so.utility;
  List.iter
    (fun (name, solve) ->
      let a = solve inst in
      let r =
        Certify.audit ~superopt:so
          ~min_ratio:(Tightness.expected_ratio -. 1e-9)
          inst a
      in
      if not (Certify.ok r) then
        Alcotest.failf "%s on the V.17 instance: %s" name
          (Format.asprintf "%a" Certify.pp_report r);
      (match r.ratio with
      | Some ratio -> Helpers.check_float "exactly 5/6" Tightness.expected_ratio ratio
      | None -> Alcotest.fail "no ratio reported");
      Helpers.check_ge "5/6 is above alpha" Tightness.expected_ratio Bounds.alpha)
    [ ("Algo1", Algo1.solve ?linearized:None); ("Algo2", fun i -> Algo2.solve i) ]

(* ---------- certifier: corrupted solutions ---------- *)

let linear_instance ~servers ~threads ~cap =
  Instance.create ~servers ~capacity:cap
    (Array.make threads (Utility.Shapes.linear ~cap ~slope:1.0))

let classes r = List.map Certify.violation_class r.Certify.violations

let expect_class what cls r =
  if Certify.ok r then Alcotest.failf "%s: corrupted solution certified" what;
  if not (List.mem cls (classes r)) then
    Alcotest.failf "%s: expected %s among [%s]" what cls (String.concat "; " (classes r))

let valid_base () =
  let inst = linear_instance ~servers:2 ~threads:4 ~cap:10.0 in
  let a = Algo2.solve inst in
  check_certified "base solution" inst a;
  (inst, a)

let copy (a : Assignment.t) =
  Assignment.make ~server:(Array.copy a.server) ~alloc:(Array.copy a.alloc)

let test_reject_budget_exceeded () =
  let inst, a = valid_base () in
  let bad = copy a in
  bad.alloc.(0) <- bad.alloc.(0) +. inst.capacity;
  expect_class "budget" "budget-exceeded" (Certify.audit inst bad)

let test_reject_negative_allocation () =
  let inst, a = valid_base () in
  let bad = copy a in
  bad.alloc.(0) <- -0.5;
  expect_class "negative" "negative-allocation" (Certify.audit inst bad)

let test_reject_server_out_of_range () =
  let inst, a = valid_base () in
  let bad = copy a in
  bad.server.(0) <- inst.servers;
  expect_class "server range" "server-out-of-range" (Certify.audit inst bad)

let test_reject_wrong_arity () =
  let inst, _ = valid_base () in
  let bad = Assignment.make ~server:[| 0 |] ~alloc:[| 1.0 |] in
  expect_class "arity" "wrong-arity" (Certify.audit inst bad)

let test_reject_ratio_below () =
  let inst, a = valid_base () in
  let so = Superopt.compute inst in
  let starved = copy a in
  Array.fill starved.alloc 0 (Array.length starved.alloc) 0.0;
  expect_class "starved" "ratio-below"
    (Certify.audit ~superopt:so ~min_ratio:Bounds.alpha inst starved);
  (* the honest solution still passes with the same bound *)
  check_certified "honest passes" inst ~superopt:so ~min_ratio:Bounds.alpha a

let test_reject_above_upper_bound () =
  let inst = linear_instance ~servers:2 ~threads:3 ~cap:1.0 in
  let so = Superopt.compute inst in
  Helpers.check_float "pooled bound" 2.0 so.utility;
  (* every thread claims a full server: utility 3 > F-hat 2, impossible *)
  let bad = Assignment.make ~server:[| 0; 0; 1 |] ~alloc:[| 1.0; 1.0; 1.0 |] in
  let r = Certify.audit ~superopt:so inst bad in
  expect_class "impossible value" "above-upper-bound" r;
  expect_class "and infeasible too" "budget-exceeded" r

let test_reject_invalid_utility () =
  let cap = 4.0 in
  let decreasing =
    Utility.Smooth
      {
        name = "decreasing";
        cap;
        eval = (fun x -> cap -. x);
        deriv = (fun _ -> -1.0);
        demand = None;
        spec = None;
      }
  in
  let inst = Instance.create ~servers:1 ~capacity:cap [| decreasing |] in
  let a = Assignment.make ~server:[| 0 |] ~alloc:[| 1.0 |] in
  expect_class "decreasing utility" "utility-invalid" (Certify.audit inst a);
  (* the same audit with model checks off only sees feasibility *)
  let r = Certify.audit ~check_utilities:false inst a in
  if not (Certify.ok r) then Alcotest.fail "feasibility alone should pass"

(* ---------- reduction round-trip ---------- *)

let test_reduction_round_trip () =
  (* 2+3 = 5: a perfect partition exists; the reduced AA optimum hits the
     target and certifies at ratio 1 against the pooled bound *)
  let numbers = [| 2.0; 3.0; 5.0 |] in
  let inst = Reduction.instance numbers in
  let target = Reduction.target numbers in
  let exact = Exact.solve inst in
  Helpers.check_float "optimum reaches the target" target exact.utility;
  let so = Superopt.compute inst in
  Helpers.check_float "pooled bound equals the target" target so.utility;
  let r = Certify.audit ~eps:1e-6 ~superopt:so ~min_ratio:1.0 inst exact.assignment in
  if not (Certify.ok r) then
    Alcotest.failf "exact solution fails certification: %s"
      (Format.asprintf "%a" Certify.pp_report r);
  (* the approximation algorithms stay feasible and within alpha *)
  List.iter
    (fun a ->
      check_certified "approx on reduction" inst ~superopt:so ~min_ratio:Bounds.alpha a)
    [ Algo1.solve inst; Algo2.solve inst ];
  Alcotest.(check bool) "partition exists" true (Reduction.partition_exists numbers);
  Alcotest.(check bool)
    "odd sum has no partition" false
    (Reduction.partition_exists [| 1.0; 1.0; 3.0 |])

let () =
  Alcotest.run "analysis"
    [
      ( "tokenizer",
        [
          Alcotest.test_case "basics" `Quick test_scan_basics;
          Alcotest.test_case "literals" `Quick test_scan_literals;
          Alcotest.test_case "comments" `Quick test_scan_comments;
          Alcotest.test_case "positions" `Quick test_scan_positions;
        ] );
      ( "syntax",
        [
          Alcotest.test_case "nested lets" `Quick test_syntax_nested_lets;
          Alcotest.test_case "quoted strings" `Quick test_syntax_quoted_strings;
          Alcotest.test_case "functors" `Quick test_syntax_functor;
          Alcotest.test_case "locals" `Quick test_syntax_locals;
          Alcotest.test_case "closures" `Quick test_syntax_closures;
        ] );
      ( "rules",
        [
          Alcotest.test_case "float-eq comparisons" `Quick test_float_eq_flags_comparisons;
          Alcotest.test_case "float-eq bindings" `Quick test_float_eq_skips_bindings;
          Alcotest.test_case "partial-fn" `Quick test_partial_fn;
          Alcotest.test_case "catch-all" `Quick test_catch_all;
          Alcotest.test_case "no-failwith" `Quick test_no_failwith;
          Alcotest.test_case "todo-format" `Quick test_todo_format;
          Alcotest.test_case "wall-clock" `Quick test_wall_clock;
          Alcotest.test_case "raw-io" `Quick test_raw_io;
          Alcotest.test_case "suppression" `Quick test_suppression;
          Alcotest.test_case "pool-mutation captured state" `Quick
            test_pool_mutation_catches_captured_state;
          Alcotest.test_case "pool-mutation mutator calls" `Quick
            test_pool_mutation_mutator_calls;
          Alcotest.test_case "pool-mutation sanctioned shapes" `Quick
            test_pool_mutation_sanctioned_shapes;
          Alcotest.test_case "pool-mutation named worker" `Quick
            test_pool_mutation_named_worker;
          Alcotest.test_case "unguarded-div flags" `Quick test_unguarded_div_flags;
          Alcotest.test_case "unguarded-div guards" `Quick test_unguarded_div_guards;
        ] );
      ( "project",
        [
          Alcotest.test_case "index def/use" `Quick test_index_def_use;
          Alcotest.test_case "unused-export rule" `Quick test_unused_export_rule;
          Alcotest.test_case "unused-export via runner" `Quick
            test_unused_export_via_runner;
        ] );
      ( "lint",
        [
          Alcotest.test_case "baseline absorb and stale" `Quick test_run_and_baseline;
          Alcotest.test_case "baseline survives drift" `Quick test_baseline_survives_line_drift;
          Alcotest.test_case "severity override" `Quick test_severity_override;
          Alcotest.test_case "source file discovery" `Quick test_source_file_discovery;
          Alcotest.test_case "fingerprint stability" `Quick test_fingerprint_stability;
          Alcotest.test_case "pool-mutation zero false positives" `Quick
            test_pool_mutation_zero_false_positives;
          Alcotest.test_case "lib/ is clean" `Quick test_lib_is_lint_clean;
          Alcotest.test_case "exe exit codes" `Quick test_exe_exit_codes;
          Alcotest.test_case "json format" `Quick test_exe_json_format;
          Alcotest.test_case "sarif format" `Quick test_exe_sarif_format;
        ] );
      ( "certify",
        [
          Alcotest.test_case "tightness V.17 at 5/6" `Quick test_tightness_certifies;
          Alcotest.test_case "reject budget overflow" `Quick test_reject_budget_exceeded;
          Alcotest.test_case "reject negative alloc" `Quick test_reject_negative_allocation;
          Alcotest.test_case "reject bad server" `Quick test_reject_server_out_of_range;
          Alcotest.test_case "reject wrong arity" `Quick test_reject_wrong_arity;
          Alcotest.test_case "reject ratio below" `Quick test_reject_ratio_below;
          Alcotest.test_case "reject impossible value" `Quick test_reject_above_upper_bound;
          Alcotest.test_case "reject invalid utility" `Quick test_reject_invalid_utility;
          Alcotest.test_case "reduction round-trip" `Quick test_reduction_round_trip;
        ] );
      Helpers.qsuite "properties"
        [
          prop_certifies "Algo1" (fun i -> Algo1.solve i);
          prop_certifies "Algo2" (fun i -> Algo2.solve i);
          prop_heuristics_feasible;
          prop_coarsened_solutions_certify;
        ];
    ]
