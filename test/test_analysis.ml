(* The analysis layer: aa_lint (tokenizer, rules, suppression, baseline)
   and the solution certifier. The lint half also runs over the real lib/
   tree here, which is what keeps `dune runtest` green only when the
   source is lint-clean modulo the checked-in baseline. *)

open Aa_utility
open Aa_core
open Aa_analysis

(* ---------- tokenizer ---------- *)

let kinds src = Array.to_list (Array.map (fun (t : Token.t) -> t.kind) (Token.scan src))
let texts src = Array.to_list (Array.map (fun (t : Token.t) -> t.text) (Token.scan src))

let test_scan_basics () =
  Alcotest.(check (list string))
    "texts"
    [ "let"; "x"; "="; "1.0"; "in"; "x" ]
    (texts "let x = 1.0 in x");
  match kinds "let x = 1.0 in x" with
  | [ Token.Keyword; Token.Ident; Token.Op; Token.Float_lit; Token.Keyword; Token.Ident ] -> ()
  | _ -> Alcotest.fail "unexpected kinds"

let test_scan_literals () =
  (match kinds "1 1. 1.5e-3 0x10 1_000" with
  | [ Token.Int_lit; Token.Float_lit; Token.Float_lit; Token.Int_lit; Token.Int_lit ] -> ()
  | _ -> Alcotest.fail "number kinds");
  (match kinds "'a' '\\n' ('b : 'a)" with
  | Token.Char_lit :: Token.Char_lit :: _ -> ()
  | _ -> Alcotest.fail "char kinds");
  match kinds {|"a\"b" {x|raw "quote|x}|} with
  | [ Token.String_lit; Token.String_lit ] -> ()
  | _ -> Alcotest.fail "string kinds"

let test_scan_comments () =
  (match kinds "a (* outer (* inner *) still *) b" with
  | [ Token.Ident; Token.Comment; Token.Ident ] -> ()
  | _ -> Alcotest.fail "nested comment");
  (* a string inside a comment may contain a comment closer *)
  match kinds {|a (* "*)" *) b|} with
  | [ Token.Ident; Token.Comment; Token.Ident ] -> ()
  | _ -> Alcotest.fail "string-in-comment"

let test_scan_positions () =
  let toks = Token.scan "let x =\n  2.5" in
  let last = toks.(Array.length toks - 1) in
  Alcotest.(check int) "line" 2 last.line;
  Alcotest.(check int) "col" 3 last.col

(* ---------- rules ---------- *)

let lint ?(file = "lib/core/fake.ml") src = Lint.check_source ~file src
let rules_of vs = List.map (fun (x : Rules.violation) -> x.rule) vs

let test_float_eq_flags_comparisons () =
  Alcotest.(check (list string))
    "= against literal" [ "float-eq" ]
    (rules_of (lint "let f x = if x = 0.0 then 1 else 2"));
  Alcotest.(check (list string))
    "<> against literal" [ "float-eq" ]
    (rules_of (lint "let f x = x <> 1.5"));
  Alcotest.(check (list string))
    "negated literal" [ "float-eq" ]
    (rules_of (lint "let f x = if x = -1.0 then 1 else 2"));
  Alcotest.(check (list string))
    "projection chain" [ "float-eq" ]
    (rules_of (lint "let f a i = a.(i) = 0.5"))

let test_float_eq_skips_bindings () =
  Alcotest.(check (list string))
    "let binding" []
    (rules_of (lint "let x = 0.0"));
  Alcotest.(check (list string))
    "record fields" []
    (rules_of (lint "let r = { alloc = caps; lambda = 0.0 }"));
  Alcotest.(check (list string))
    "optional default" []
    (rules_of (lint "let f ?(eps = 1e-9) () = eps"));
  Alcotest.(check (list string))
    "record update" []
    (rules_of (lint "let r2 = { r with lambda = 0.0 }"));
  Alcotest.(check (list string))
    "int comparison" []
    (rules_of (lint "let f x = x = 10"))

let test_partial_fn () =
  Alcotest.(check (list string))
    "List.hd" [ "partial-fn" ]
    (rules_of (lint "let x = List.hd xs"));
  Alcotest.(check (list string))
    "Option.get and Array.get" [ "partial-fn"; "partial-fn" ]
    (rules_of (lint "let x = Option.get o + Array.get a 0"));
  Alcotest.(check (list string))
    "safe variants untouched" []
    (rules_of (lint "let x = List.nth_opt xs 0 and y = a.(0)"))

let test_catch_all () =
  Alcotest.(check (list string))
    "try with wildcard" [ "catch-all" ]
    (rules_of (lint "let x = try f () with _ -> 0"));
  Alcotest.(check (list string))
    "typed handler ok" []
    (rules_of (lint "let x = try f () with Not_found -> 0"));
  Alcotest.(check (list string))
    "match wildcard ok" []
    (rules_of (lint "let x = match y with _ -> 0"));
  Alcotest.(check (list string))
    "record update inside try" []
    (rules_of
       (lint "let x = try g { r with a = 1 } with Failure _ -> r"));
  Alcotest.(check (list string))
    "match inside try, still typed" []
    (rules_of
       (lint "let x = try match y with [] -> 0 | _ -> 1 with Not_found -> 2"))

let test_no_failwith () =
  Alcotest.(check (list string))
    "flagged in lib/core" [ "no-failwith" ]
    (rules_of (lint ~file:"lib/core/solver.ml" "let f () = failwith \"boom\""));
  Alcotest.(check (list string))
    "flagged in lib/alloc" [ "no-failwith" ]
    (rules_of (lint ~file:"lib/alloc/dp.ml" "let f () = failwith \"boom\""));
  Alcotest.(check (list string))
    "allowed elsewhere" []
    (rules_of (lint ~file:"lib/sim/trace.ml" "let f () = failwith \"boom\""))

let test_todo_format () =
  Alcotest.(check (list string))
    "untracked TODO" [ "todo-format" ]
    (rules_of (lint "(* TODO: make this faster *)"));
  Alcotest.(check (list string))
    "tracked TODO ok" []
    (rules_of (lint "(* TODO(#42): make this faster *)"));
  Alcotest.(check (list string))
    "tracked FIXME ok" []
    (rules_of (lint "(* FIXME(lai): rounding *)"));
  let vs = lint "let a = 1\n(* line2\n   FIXME here *)" in
  (match vs with
  | [ v ] -> Alcotest.(check int) "marker line in multiline comment" 3 v.line
  | _ -> Alcotest.fail "expected one violation")

let test_wall_clock () =
  Alcotest.(check (list string))
    "Unix.gettimeofday flagged" [ "wall-clock" ]
    (rules_of (lint "let t = Unix.gettimeofday ()"));
  Alcotest.(check (list string))
    "Unix.time flagged" [ "wall-clock" ]
    (rules_of (lint "let t = Unix.time ()"));
  Alcotest.(check (list string))
    "Sys.time flagged" [ "wall-clock" ]
    (rules_of (lint "let t = Sys.time ()"));
  Alcotest.(check (list string))
    "exempt under lib/obs" []
    (rules_of (lint ~file:"lib/obs/clock.ml" "let t = Unix.gettimeofday ()"));
  Alcotest.(check (list string))
    "Clock wrapper usage ok" []
    (rules_of (lint "let t = Aa_obs.Clock.now_s ()"));
  Alcotest.(check (list string))
    "unrelated Sys call ok" []
    (rules_of (lint "let n = Sys.getenv \"HOME\""))

let test_raw_io () =
  Alcotest.(check (list string))
    "Out_channel.open_text in lib/service" [ "raw-io" ]
    (rules_of
       (lint ~file:"lib/service/engine.ml"
          "let oc = Out_channel.open_text path"));
  Alcotest.(check (list string))
    "Sys.rename in lib/service" [ "raw-io" ]
    (rules_of (lint ~file:"lib/service/metrics.ml" "let () = Sys.rename a b"));
  Alcotest.(check (list string))
    "bare open_out in lib/service" [ "raw-io" ]
    (rules_of (lint ~file:"lib/service/protocol.ml" "let oc = open_out path"));
  Alcotest.(check (list string))
    "journal.ml is exempt" []
    (rules_of
       (lint ~file:"lib/service/journal.ml"
          "let oc = Out_channel.open_text path in Sys.rename a b"));
  Alcotest.(check (list string))
    "other trees untouched" []
    (rules_of (lint ~file:"lib/io/format_text.ml" "let oc = open_out path"));
  Alcotest.(check (list string))
    "qualified non-target ok" []
    (rules_of
       (lint ~file:"lib/service/engine.ml" "let () = Out_channel.flush oc"))

let test_suppression () =
  Alcotest.(check (list string))
    "same-line id" []
    (rules_of
       (lint "let x = List.hd xs (* aa-lint: ignore partial-fn -- nonempty *)"));
  Alcotest.(check (list string))
    "same-line all" []
    (rules_of (lint "let x = try List.hd xs with _ -> y (* aa-lint: ignore all *)"));
  Alcotest.(check (list string))
    "wrong id does not silence" [ "partial-fn" ]
    (rules_of (lint "let x = List.hd xs (* aa-lint: ignore float-eq *)"));
  Alcotest.(check (list string))
    "ignore-next" []
    (rules_of (lint "(* aa-lint: ignore-next partial-fn *)\nlet x = List.hd xs"));
  Alcotest.(check (list string))
    "ignore-next reaches only the next line" [ "partial-fn" ]
    (rules_of
       (lint "(* aa-lint: ignore-next partial-fn *)\nlet a = 1\nlet x = List.hd xs"))

(* ---------- lint runner: files and baseline ---------- *)

let write_file path contents =
  Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc contents)

let test_run_and_baseline () =
  let file = "lint_tmp_baseline.ml" in
  write_file file "let x = List.hd xs\nlet y = if z = 0.0 then 1 else 2\n";
  let outcome, with_lines = Lint.run_with_lines [ file ] in
  Alcotest.(check int) "two fresh" 2 (List.length outcome.fresh);
  Alcotest.(check int) "one file" 1 outcome.files;
  (* adopt the current state as the baseline: everything is absorbed *)
  let entries = Lint.baseline_entries with_lines in
  Alcotest.(check int) "two entries" 2 (List.length entries);
  let baseline =
    List.filter_map
      (fun line ->
        match String.split_on_char ' ' line with
        | [ _rule; count; fp; _path ] -> Some (fp, int_of_string count)
        | _ -> None)
      entries
  in
  let again = Lint.run ~baseline [ file ] in
  Alcotest.(check int) "no fresh after baselining" 0 (List.length again.fresh);
  Alcotest.(check int) "both baselined" 2 (List.length again.baselined);
  Alcotest.(check (list string)) "nothing stale" [] again.stale_baseline;
  (* fix one violation: its baseline entry goes stale, nothing is fresh *)
  write_file file "let x = List.hd xs\nlet y = if z = 0 then 1 else 2\n";
  let after_fix = Lint.run ~baseline [ file ] in
  Alcotest.(check int) "still no fresh" 0 (List.length after_fix.fresh);
  Alcotest.(check int) "one stale entry" 1 (List.length after_fix.stale_baseline);
  Sys.remove file

let test_baseline_survives_line_drift () =
  let file = "lint_tmp_drift.ml" in
  write_file file "let x = List.hd xs\n";
  let _, with_lines = Lint.run_with_lines [ file ] in
  let baseline =
    List.filter_map
      (fun line ->
        match String.split_on_char ' ' line with
        | [ _; c; fp; _ ] -> Some (fp, int_of_string c)
        | _ -> None)
      (Lint.baseline_entries with_lines)
  in
  (* push the violation three lines down: fingerprint still matches *)
  write_file file "(* new header *)\nlet a = 1\nlet b = 2\nlet x = List.hd xs\n";
  let outcome = Lint.run ~baseline [ file ] in
  Alcotest.(check int) "no fresh" 0 (List.length outcome.fresh);
  Alcotest.(check int) "baselined" 1 (List.length outcome.baselined);
  Sys.remove file

(* The real tree: zero non-baselined violations over lib/. *)
let lib_dir =
  List.find_opt Sys.file_exists [ "../lib"; "lib" ] |> Option.value ~default:"../lib"

let baseline_file =
  List.find_opt Sys.file_exists [ "../aa-lint.baseline"; "aa-lint.baseline" ]
  |> Option.value ~default:"../aa-lint.baseline"

let test_lib_is_lint_clean () =
  let baseline = Lint.load_baseline baseline_file in
  let outcome = Lint.run ~baseline [ lib_dir ] in
  if outcome.fresh <> [] then
    Alcotest.failf "lib/ has %d non-baselined violation(s):\n%s"
      (List.length outcome.fresh)
      (String.concat "\n"
         (List.map
            (fun v -> Format.asprintf "  %a" Rules.pp_violation v)
            outcome.fresh));
  Alcotest.(check (list string)) "no stale baseline entries" [] outcome.stale_baseline;
  if outcome.files < 40 then
    Alcotest.failf "only %d files scanned under %s — wrong directory?" outcome.files
      lib_dir

(* ---------- aa_lint executable ---------- *)

let lint_exe =
  List.find_opt Sys.file_exists
    [ "../bin/aa_lint.exe"; "_build/default/bin/aa_lint.exe" ]
  |> Option.value ~default:"../bin/aa_lint.exe"

let run_exe args =
  Sys.command (Filename.quote_command lint_exe args ^ " > lint_exe_out.txt 2>&1")

let test_exe_exit_codes () =
  let bad = "lint_tmp_exe.ml" in
  write_file bad "let x = try List.nth xs 3 with _ -> 0\n";
  Alcotest.(check int) "violations exit 1" 1 (run_exe [ bad ]);
  write_file bad "let x = match xs with [] -> 0 | y :: _ -> y\n";
  Alcotest.(check int) "clean exit 0" 0 (run_exe [ bad ]);
  Alcotest.(check int) "--rules exits 0" 0 (run_exe [ "--rules" ]);
  Alcotest.(check int) "usage error exits 2" 2 (run_exe [ "--baseline" ]);
  Alcotest.(check int) "missing path exits 2" 2 (run_exe [ "no_such_dir_xyz" ]);
  Sys.remove bad

(* ---------- certifier: valid solutions ---------- *)

let check_certified what inst ?superopt ?min_ratio a =
  match Certify.certify ~eps:1e-6 ?superopt ?min_ratio inst a with
  | Ok _ -> ()
  | Error r -> Alcotest.failf "%s: %s" what (Format.asprintf "%a" Certify.pp_report r)

let prop_certifies algo_name solve =
  QCheck2.Test.make
    ~name:(Printf.sprintf "certifier: %s output certifies on random instances" algo_name)
    ~count:120 ~print:Helpers.print_instance Helpers.gen_instance (fun inst ->
      let inst = Helpers.plc_instance inst in
      let so = Superopt.compute inst in
      let a = solve inst in
      let r = Certify.audit ~eps:1e-6 ~superopt:so ~min_ratio:Bounds.alpha inst a in
      if not (Certify.ok r) then
        QCheck2.Test.fail_reportf "%s" (Format.asprintf "%a" Certify.pp_report r)
      else true)

let prop_heuristics_feasible =
  QCheck2.Test.make
    ~name:"certifier: heuristic outputs are feasible (no ratio guarantee)"
    ~count:120 ~print:Helpers.print_instance Helpers.gen_instance (fun inst ->
      let rng = Helpers.rng_of_seed 11 in
      List.for_all
        (fun a -> Certify.ok (Certify.audit ~eps:1e-6 inst a))
        [ Heuristics.uu inst; Heuristics.rr ~rng inst ])

let test_tightness_certifies () =
  let inst = Tightness.instance () in
  let so = Superopt.compute inst in
  Helpers.check_float "F-hat equals the optimum here" Tightness.optimal_utility so.utility;
  List.iter
    (fun (name, solve) ->
      let a = solve inst in
      let r =
        Certify.audit ~superopt:so
          ~min_ratio:(Tightness.expected_ratio -. 1e-9)
          inst a
      in
      if not (Certify.ok r) then
        Alcotest.failf "%s on the V.17 instance: %s" name
          (Format.asprintf "%a" Certify.pp_report r);
      (match r.ratio with
      | Some ratio -> Helpers.check_float "exactly 5/6" Tightness.expected_ratio ratio
      | None -> Alcotest.fail "no ratio reported");
      Helpers.check_ge "5/6 is above alpha" Tightness.expected_ratio Bounds.alpha)
    [ ("Algo1", Algo1.solve ?linearized:None); ("Algo2", fun i -> Algo2.solve i) ]

(* ---------- certifier: corrupted solutions ---------- *)

let linear_instance ~servers ~threads ~cap =
  Instance.create ~servers ~capacity:cap
    (Array.make threads (Utility.Shapes.linear ~cap ~slope:1.0))

let classes r = List.map Certify.violation_class r.Certify.violations

let expect_class what cls r =
  if Certify.ok r then Alcotest.failf "%s: corrupted solution certified" what;
  if not (List.mem cls (classes r)) then
    Alcotest.failf "%s: expected %s among [%s]" what cls (String.concat "; " (classes r))

let valid_base () =
  let inst = linear_instance ~servers:2 ~threads:4 ~cap:10.0 in
  let a = Algo2.solve inst in
  check_certified "base solution" inst a;
  (inst, a)

let copy (a : Assignment.t) =
  Assignment.make ~server:(Array.copy a.server) ~alloc:(Array.copy a.alloc)

let test_reject_budget_exceeded () =
  let inst, a = valid_base () in
  let bad = copy a in
  bad.alloc.(0) <- bad.alloc.(0) +. inst.capacity;
  expect_class "budget" "budget-exceeded" (Certify.audit inst bad)

let test_reject_negative_allocation () =
  let inst, a = valid_base () in
  let bad = copy a in
  bad.alloc.(0) <- -0.5;
  expect_class "negative" "negative-allocation" (Certify.audit inst bad)

let test_reject_server_out_of_range () =
  let inst, a = valid_base () in
  let bad = copy a in
  bad.server.(0) <- inst.servers;
  expect_class "server range" "server-out-of-range" (Certify.audit inst bad)

let test_reject_wrong_arity () =
  let inst, _ = valid_base () in
  let bad = Assignment.make ~server:[| 0 |] ~alloc:[| 1.0 |] in
  expect_class "arity" "wrong-arity" (Certify.audit inst bad)

let test_reject_ratio_below () =
  let inst, a = valid_base () in
  let so = Superopt.compute inst in
  let starved = copy a in
  Array.fill starved.alloc 0 (Array.length starved.alloc) 0.0;
  expect_class "starved" "ratio-below"
    (Certify.audit ~superopt:so ~min_ratio:Bounds.alpha inst starved);
  (* the honest solution still passes with the same bound *)
  check_certified "honest passes" inst ~superopt:so ~min_ratio:Bounds.alpha a

let test_reject_above_upper_bound () =
  let inst = linear_instance ~servers:2 ~threads:3 ~cap:1.0 in
  let so = Superopt.compute inst in
  Helpers.check_float "pooled bound" 2.0 so.utility;
  (* every thread claims a full server: utility 3 > F-hat 2, impossible *)
  let bad = Assignment.make ~server:[| 0; 0; 1 |] ~alloc:[| 1.0; 1.0; 1.0 |] in
  let r = Certify.audit ~superopt:so inst bad in
  expect_class "impossible value" "above-upper-bound" r;
  expect_class "and infeasible too" "budget-exceeded" r

let test_reject_invalid_utility () =
  let cap = 4.0 in
  let decreasing =
    Utility.Smooth
      {
        name = "decreasing";
        cap;
        eval = (fun x -> cap -. x);
        deriv = (fun _ -> -1.0);
        demand = None;
        spec = None;
      }
  in
  let inst = Instance.create ~servers:1 ~capacity:cap [| decreasing |] in
  let a = Assignment.make ~server:[| 0 |] ~alloc:[| 1.0 |] in
  expect_class "decreasing utility" "utility-invalid" (Certify.audit inst a);
  (* the same audit with model checks off only sees feasibility *)
  let r = Certify.audit ~check_utilities:false inst a in
  if not (Certify.ok r) then Alcotest.fail "feasibility alone should pass"

(* ---------- reduction round-trip ---------- *)

let test_reduction_round_trip () =
  (* 2+3 = 5: a perfect partition exists; the reduced AA optimum hits the
     target and certifies at ratio 1 against the pooled bound *)
  let numbers = [| 2.0; 3.0; 5.0 |] in
  let inst = Reduction.instance numbers in
  let target = Reduction.target numbers in
  let exact = Exact.solve inst in
  Helpers.check_float "optimum reaches the target" target exact.utility;
  let so = Superopt.compute inst in
  Helpers.check_float "pooled bound equals the target" target so.utility;
  let r = Certify.audit ~eps:1e-6 ~superopt:so ~min_ratio:1.0 inst exact.assignment in
  if not (Certify.ok r) then
    Alcotest.failf "exact solution fails certification: %s"
      (Format.asprintf "%a" Certify.pp_report r);
  (* the approximation algorithms stay feasible and within alpha *)
  List.iter
    (fun a ->
      check_certified "approx on reduction" inst ~superopt:so ~min_ratio:Bounds.alpha a)
    [ Algo1.solve inst; Algo2.solve inst ];
  Alcotest.(check bool) "partition exists" true (Reduction.partition_exists numbers);
  Alcotest.(check bool)
    "odd sum has no partition" false
    (Reduction.partition_exists [| 1.0; 1.0; 3.0 |])

let () =
  Alcotest.run "analysis"
    [
      ( "tokenizer",
        [
          Alcotest.test_case "basics" `Quick test_scan_basics;
          Alcotest.test_case "literals" `Quick test_scan_literals;
          Alcotest.test_case "comments" `Quick test_scan_comments;
          Alcotest.test_case "positions" `Quick test_scan_positions;
        ] );
      ( "rules",
        [
          Alcotest.test_case "float-eq comparisons" `Quick test_float_eq_flags_comparisons;
          Alcotest.test_case "float-eq bindings" `Quick test_float_eq_skips_bindings;
          Alcotest.test_case "partial-fn" `Quick test_partial_fn;
          Alcotest.test_case "catch-all" `Quick test_catch_all;
          Alcotest.test_case "no-failwith" `Quick test_no_failwith;
          Alcotest.test_case "todo-format" `Quick test_todo_format;
          Alcotest.test_case "wall-clock" `Quick test_wall_clock;
          Alcotest.test_case "raw-io" `Quick test_raw_io;
          Alcotest.test_case "suppression" `Quick test_suppression;
        ] );
      ( "lint",
        [
          Alcotest.test_case "baseline absorb and stale" `Quick test_run_and_baseline;
          Alcotest.test_case "baseline survives drift" `Quick test_baseline_survives_line_drift;
          Alcotest.test_case "lib/ is clean" `Quick test_lib_is_lint_clean;
          Alcotest.test_case "exe exit codes" `Quick test_exe_exit_codes;
        ] );
      ( "certify",
        [
          Alcotest.test_case "tightness V.17 at 5/6" `Quick test_tightness_certifies;
          Alcotest.test_case "reject budget overflow" `Quick test_reject_budget_exceeded;
          Alcotest.test_case "reject negative alloc" `Quick test_reject_negative_allocation;
          Alcotest.test_case "reject bad server" `Quick test_reject_server_out_of_range;
          Alcotest.test_case "reject wrong arity" `Quick test_reject_wrong_arity;
          Alcotest.test_case "reject ratio below" `Quick test_reject_ratio_below;
          Alcotest.test_case "reject impossible value" `Quick test_reject_above_upper_bound;
          Alcotest.test_case "reject invalid utility" `Quick test_reject_invalid_utility;
          Alcotest.test_case "reduction round-trip" `Quick test_reduction_round_trip;
        ] );
      Helpers.qsuite "properties"
        [
          prop_certifies "Algo1" (fun i -> Algo1.solve i);
          prop_certifies "Algo2" (fun i -> Algo2.solve i);
          prop_heuristics_feasible;
        ];
    ]
