open Aa_numerics
open Aa_utility
open Aa_core

let cap = 10.0
let mk ?(servers = 2) us = Instance.create ~servers ~capacity:cap us

(* ---------- Algorithm 2 mechanics ---------- *)

let test_algo2_single_thread () =
  let inst = mk ~servers:3 [| Utility.Shapes.linear ~cap ~slope:1.0 |] in
  let a = Algo2.solve inst in
  Helpers.check_float "gets its chat" cap a.alloc.(0);
  Helpers.check_float "utility" cap (Assignment.utility inst a)

let test_algo2_order_peak_then_slope () =
  (* m=1: order is peak-desc for the first thread, slope-desc for the rest *)
  let us =
    [|
      Utility.Shapes.capped_linear ~cap ~slope:1.0 ~knee:4.0 (* peak 4, slope 1 *);
      Utility.Shapes.capped_linear ~cap ~slope:5.0 ~knee:1.0 (* peak 5, slope 5 *);
      Utility.Shapes.capped_linear ~cap ~slope:2.0 ~knee:1.5 (* peak 3, slope 2 *);
    |]
  in
  let inst = mk ~servers:1 us in
  let lin = Linearized.make inst in
  let order = Algo2.order lin in
  (* chat: budget 10 -> thread 1 gets 1 (slope 5), thread 2 gets 1.5
     (slope 2), thread 0 gets 4 (slope 1); all full, 3.5 spare padded.
     peaks: t0=4, t1=5, t2=3 -> first is t1 (peak 5); tail by slope:
     t2 (2) before t0 (1)... but padding distorts slopes; just check the
     first element and that all threads appear. *)
  Alcotest.(check int) "highest peak first" 1 order.(0);
  let sorted = Array.copy order in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" [| 0; 1; 2 |] sorted

let test_algo2_fills_max_remaining () =
  (* two servers; three equal threads wanting 6 each: third lands on the
     fuller-remaining server and is truncated *)
  let us = Array.make 3 (Utility.Shapes.capped_linear ~cap ~slope:1.0 ~knee:6.0) in
  let inst = mk us in
  let a = Algo2.solve inst in
  (match Assignment.check inst a with Ok () -> () | Error e -> Alcotest.fail e);
  let allocs = Array.copy a.alloc in
  Array.sort compare allocs;
  (* chat padding gives [8; 6; 6]; the first two threads get their chat on
     separate servers, the third is truncated to the fullest remainder *)
  Helpers.check_float "third thread truncated to max remaining" 4.0 allocs.(0);
  Helpers.check_float "second" 6.0 allocs.(1);
  Helpers.check_float "first (padded chat)" 8.0 allocs.(2);
  (* utility meets the guarantee: 16 >= alpha * 18 *)
  Helpers.check_ge "guarantee" (Assignment.utility inst a)
    (Bounds.alpha *. (Superopt.compute inst).utility)

let test_algo2_deterministic () =
  let rng = Rng.create ~seed:5 () in
  let inst =
    Aa_workload.Gen.instance rng ~servers:4 ~capacity:100.0 ~threads:20 Aa_workload.Gen.Uniform
  in
  let a = Algo2.solve inst in
  let b = Algo2.solve inst in
  Alcotest.(check (array int)) "same servers" a.server b.server;
  Array.iteri (fun i c -> Helpers.check_float "same alloc" c b.alloc.(i)) a.alloc

let test_algo2_tail_resort_matters () =
  (* build an instance where disabling line 2 changes the outcome *)
  let us =
    [|
      Utility.Shapes.capped_linear ~cap ~slope:1.0 ~knee:10.0 (* peak 10 *);
      Utility.Shapes.capped_linear ~cap ~slope:1.0 ~knee:9.0 (* peak 9 *);
      Utility.Shapes.capped_linear ~cap ~slope:0.95 ~knee:9.5 (* peak ~9 *);
      Utility.Shapes.capped_linear ~cap ~slope:4.0 ~knee:2.0 (* peak 8, steep *);
    |]
  in
  let inst = mk us in
  let with_resort = Assignment.utility inst (Algo2.solve ~tail_resort:true inst) in
  let without = Assignment.utility inst (Algo2.solve ~tail_resort:false inst) in
  Helpers.check_ge "resort at least as good here" with_resort without ~eps:1e-9

let test_algo2_server_rules_feasible () =
  let rng = Rng.create ~seed:11 () in
  let inst =
    Aa_workload.Gen.instance rng ~servers:3 ~capacity:50.0 ~threads:12 Aa_workload.Gen.Uniform
  in
  List.iter
    (fun rule ->
      let a = Algo2.solve ~server_rule:rule inst in
      match Assignment.check inst a with
      | Ok () -> ()
      | Error e -> Alcotest.failf "rule infeasible: %s" e)
    [ `Max_remaining; `Min_remaining; `Round_robin ]

let test_order_matches_copy_reference () =
  (* the tail re-sort is now in place (Util.sort_range); it must produce
     exactly the permutation of the old Array.sub/sort/blit version —
     both comparators are total orders (ties broken by index), so any
     comparison sort agrees *)
  let rng = Rng.create ~seed:7 () in
  for _ = 1 to 20 do
    let trial = Rng.split rng in
    let servers = 1 + Rng.int trial 5 in
    let threads = 1 + Rng.int trial 40 in
    let inst =
      Aa_workload.Gen.instance trial ~servers ~capacity:50.0 ~threads Aa_workload.Gen.Uniform
    in
    let lin = Linearized.make inst in
    let by_peak a b =
      let pa = lin.threads.(a).Linearized.peak and pb = lin.threads.(b).Linearized.peak in
      match compare pb pa with 0 -> compare a b | c -> c
    in
    let by_slope a b =
      let sa = lin.threads.(a).Linearized.slope and sb = lin.threads.(b).Linearized.slope in
      match compare sb sa with 0 -> compare a b | c -> c
    in
    let reference = Array.init threads Fun.id in
    Array.sort by_peak reference;
    if threads > servers then begin
      let tail = Array.sub reference servers (threads - servers) in
      Array.sort by_slope tail;
      Array.blit tail 0 reference servers (threads - servers)
    end;
    Alcotest.(check (array int))
      (Printf.sprintf "m=%d n=%d" servers threads)
      reference (Algo2.order lin)
  done

let test_scratch_solve_bit_identical () =
  (* one scratch recycled across shapes and trials: every solve matches
     the scratch-free solve exactly, including after shape changes *)
  let scratch = Algo2.Scratch.create () in
  let rng = Rng.create ~seed:13 () in
  List.iter
    (fun (servers, threads) ->
      for _ = 1 to 5 do
        let trial = Rng.split rng in
        let inst =
          Aa_workload.Gen.instance trial ~servers ~capacity:80.0 ~threads
            Aa_workload.Gen.Uniform
        in
        let lin = Linearized.make inst in
        let a = Algo2.solve ~linearized:lin inst in
        let b = Algo2.solve ~linearized:lin ~scratch inst in
        Alcotest.(check (array int)) "same servers" a.server b.server;
        Array.iteri (fun i c -> Helpers.check_float "same alloc" c b.alloc.(i)) a.alloc;
        (* the result must not alias scratch storage *)
        Alcotest.(check bool) "fresh arrays" false (a.server == b.server)
      done)
    [ (2, 10); (4, 25); (2, 10); (3, 3) ]

let test_min_remaining_matches_naive_argmin () =
  (* replay the ablation rule by hand: each thread in assignment order
     goes to the argmin of the remaining capacities (ties to the smaller
     server index) and receives min(chat, remaining) *)
  let rng = Rng.create ~seed:17 () in
  for _ = 1 to 10 do
    let trial = Rng.split rng in
    let inst =
      Aa_workload.Gen.instance trial ~servers:3 ~capacity:40.0 ~threads:12
        Aa_workload.Gen.Uniform
    in
    let lin = Linearized.make inst in
    let a = Algo2.solve ~linearized:lin ~server_rule:`Min_remaining inst in
    let remaining = Array.make inst.servers inst.capacity in
    Array.iter
      (fun i ->
        let best = ref 0 in
        for k = 1 to inst.servers - 1 do
          if remaining.(k) < remaining.(!best) then best := k
        done;
        let c = Float.min lin.threads.(i).Linearized.chat remaining.(!best) in
        Alcotest.(check int) "server" !best a.server.(i);
        Helpers.check_float "alloc" c a.alloc.(i);
        remaining.(!best) <- remaining.(!best) -. c)
      (Algo2.order lin)
  done

(* ---------- Algorithm 1 mechanics ---------- *)

let test_algo1_single_server_matches_superopt () =
  (* with m = 1, chat is computed with budget C, so every thread can be
     full: Algorithm 1 achieves exactly F^ *)
  let us =
    [|
      Utility.Shapes.capped_linear ~cap ~slope:2.0 ~knee:3.0;
      Utility.Shapes.capped_linear ~cap ~slope:1.0 ~knee:4.0;
    |]
  in
  let inst = mk ~servers:1 us in
  let so = Superopt.compute inst in
  let a = Algo1.solve inst in
  Helpers.check_float ~eps:1e-9 "achieves F^" so.utility (Assignment.utility inst a)

let test_algo1_prefers_high_peak_when_full () =
  (* one server of size 10; two threads want 10 each; the higher-peak
     thread must get the server *)
  let us =
    [|
      Utility.Shapes.capped_linear ~cap ~slope:1.0 ~knee:10.0 (* peak 10 *);
      Utility.Shapes.capped_linear ~cap ~slope:0.5 ~knee:10.0 (* peak 5 *);
    |]
  in
  let inst = mk ~servers:1 us in
  let a = Algo1.solve inst in
  Helpers.check_ge "high-peak thread wins the resources" a.alloc.(0) a.alloc.(1) ~eps:1e-9;
  Helpers.check_float "and gets a lot" 10.0 (a.alloc.(0) +. a.alloc.(1))

let test_algo1_agrees_with_algo2_quality () =
  let rng = Rng.create ~seed:23 () in
  for _ = 1 to 20 do
    let trial = Rng.split rng in
    let inst =
      Aa_workload.Gen.instance trial ~servers:3 ~capacity:60.0 ~threads:9
        Aa_workload.Gen.Uniform
    in
    let so = Superopt.compute inst in
    let u1 = Assignment.utility inst (Algo1.solve inst) in
    let u2 = Assignment.utility inst (Algo2.solve inst) in
    (* both meet the guarantee; they are close but not identical *)
    Helpers.check_ge "algo1 guarantee" u1 (Bounds.alpha *. so.utility) ~eps:1e-6;
    Helpers.check_ge "algo2 guarantee" u2 (Bounds.alpha *. so.utility) ~eps:1e-6
  done

(* ---------- heuristics ---------- *)

let test_uu_round_robin_equal_split () =
  let us = Array.make 5 (Utility.Shapes.linear ~cap ~slope:1.0) in
  let inst = mk ~servers:2 us in
  let a = Heuristics.uu inst in
  Alcotest.(check (array int)) "round robin" [| 0; 1; 0; 1; 0 |] a.server;
  (* server 0 has 3 threads -> 10/3 each; server 1 has 2 -> 5 each *)
  Helpers.check_float ~eps:1e-9 "share on 0" (10.0 /. 3.0) a.alloc.(0);
  Helpers.check_float ~eps:1e-9 "share on 1" 5.0 a.alloc.(1)

let test_uu_beta_one_optimal () =
  (* paper: for beta = 1, UU places one thread per server with all
     resources — optimal *)
  let rng = Rng.create ~seed:31 () in
  let inst =
    Aa_workload.Gen.instance rng ~servers:4 ~capacity:100.0 ~threads:4 Aa_workload.Gen.Uniform
  in
  let so = Superopt.compute inst in
  let u = Assignment.utility inst (Heuristics.uu inst) in
  Helpers.check_float ~eps:1e-6 "UU optimal at beta 1" so.utility u

let test_ur_allocations_sum_to_capacity () =
  let us = Array.make 6 (Utility.Shapes.linear ~cap ~slope:1.0) in
  let inst = mk ~servers:2 us in
  let rng = Rng.create ~seed:41 () in
  let a = Heuristics.ur ~rng inst in
  let load = Assignment.server_load inst a in
  Helpers.check_float ~eps:1e-9 "server 0 full" cap load.(0);
  Helpers.check_float ~eps:1e-9 "server 1 full" cap load.(1);
  Alcotest.(check (array int)) "round robin placement" [| 0; 1; 0; 1; 0; 1 |] a.server

let test_ru_equal_split_random_place () =
  let us = Array.make 6 (Utility.Shapes.linear ~cap ~slope:1.0) in
  let inst = mk ~servers:2 us in
  let rng = Rng.create ~seed:43 () in
  let a = Heuristics.ru ~rng inst in
  (match Assignment.check inst a with Ok () -> () | Error e -> Alcotest.fail e);
  (* every thread on server j gets C / (threads on j) *)
  Array.iteri
    (fun i j ->
      let k = List.length (Assignment.threads_on a j) in
      Helpers.check_float ~eps:1e-9 "equal share" (cap /. float_of_int k) a.alloc.(i))
    a.server

let test_rr_feasible_many_seeds () =
  let us = Array.make 9 (Utility.Shapes.linear ~cap ~slope:1.0) in
  let inst = mk ~servers:3 us in
  for seed = 0 to 30 do
    let rng = Rng.create ~seed () in
    let a = Heuristics.rr ~rng inst in
    match Assignment.check inst a with
    | Ok () -> ()
    | Error e -> Alcotest.failf "seed %d: %s" seed e
  done

(* ---------- refine post-pass ---------- *)

let test_refine_recovers_stranded_resource () =
  (* Algorithm 2 on the tightness instance leaves the linear thread with
     0.5 although its server has spare capacity only on the other side;
     refill on this instance improves nothing (nothing stranded) — build
     a case where it does: thread truncated below its server optimum *)
  let us =
    [|
      Utility.Shapes.capped_linear ~cap ~slope:1.0 ~knee:6.0;
      Utility.Shapes.linear ~cap ~slope:0.5;
    |]
  in
  let inst = mk ~servers:1 us in
  (* bad hand-made assignment: thread 0 under-allocated, 4 units stranded *)
  let a = Assignment.make ~server:[| 0; 0 |] ~alloc:[| 2.0; 4.0 |] in
  let r = Refine.per_server inst a in
  Helpers.check_ge "utility never decreases" (Assignment.utility inst r)
    (Assignment.utility inst a);
  (* optimal division: 6 to the capped thread, 4 to the linear one *)
  Helpers.check_float "capped thread filled" 6.0 r.alloc.(0);
  Helpers.check_float "linear gets the rest" 4.0 r.alloc.(1)

let prop_refine_sound =
  QCheck2.Test.make ~name:"refine: feasible, same placement, never worse" ~count:200
    Helpers.gen_instance (fun inst ->
      let inst = Helpers.plc_instance inst in
      let rng = Rng.create ~seed:5 () in
      List.for_all
        (fun algo ->
          let a = Solver.solve ~rng algo inst in
          let r = Refine.per_server inst a in
          r.server = a.server
          && (match Assignment.check inst r with Ok () -> true | Error _ -> false)
          && Assignment.utility inst r
             >= Assignment.utility inst a -. (1e-6 *. Float.max 1.0 (Assignment.utility inst a)))
        Solver.all)

(* ---------- the headline guarantee, property-tested ---------- *)

let prop_order_structure =
  QCheck2.Test.make ~name:"Algo2 order: head holds the m largest peaks, tail slope-sorted"
    ~count:200 Helpers.gen_instance (fun inst ->
      let lin = Linearized.make inst in
      let idx = Algo2.order lin in
      let n = Array.length idx in
      let m = inst.servers in
      let peak i = lin.threads.(i).peak in
      let slope i = lin.threads.(i).slope in
      (* the first min(m,n) entries are peak-sorted and dominate the tail *)
      let head = Array.sub idx 0 (min m n) in
      let tail = if n > m then Array.sub idx m (n - m) else [||] in
      let head_sorted =
        Array.for_all Fun.id
          (Array.init (max 0 (Array.length head - 1)) (fun k ->
               peak head.(k) >= peak head.(k + 1)))
      in
      let head_dominates =
        Array.for_all (fun h -> Array.for_all (fun t -> peak h >= peak t) tail) head
      in
      let tail_sorted =
        Array.for_all Fun.id
          (Array.init (max 0 (Array.length tail - 1)) (fun k ->
               slope tail.(k) >= slope tail.(k + 1)))
      in
      head_sorted && head_dominates && tail_sorted)

let prop_guarantee_algo2 =
  QCheck2.Test.make ~name:"Theorem VI.1: Algo2 >= alpha * F^ on random instances"
    ~count:300 ~print:Helpers.print_instance Helpers.gen_instance (fun inst ->
      let lin = Linearized.make inst in
      let a = Algo2.solve ~linearized:lin inst in
      let u = Assignment.utility inst a in
      u >= (Bounds.alpha *. lin.superopt.utility) -. 1e-6)

let prop_guarantee_algo1 =
  QCheck2.Test.make ~name:"Theorem V.16: Algo1 >= alpha * F^ on random instances"
    ~count:200 ~print:Helpers.print_instance Helpers.gen_instance (fun inst ->
      let lin = Linearized.make inst in
      let a = Algo1.solve ~linearized:lin inst in
      let u = Assignment.utility inst a in
      u >= (Bounds.alpha *. lin.superopt.utility) -. 1e-6)

let prop_algo2_beats_heuristics_on_average =
  (* not a per-instance theorem, so test the aggregate over a fixed batch *)
  QCheck2.Test.make ~name:"Algo2 at least matches UU on average" ~count:1
    QCheck2.Gen.(int_range 0 1000)
    (fun seed ->
      let rng = Rng.create ~seed () in
      let total_a2 = ref 0.0 and total_uu = ref 0.0 in
      for _ = 1 to 50 do
        let trial = Rng.split rng in
        let inst =
          Aa_workload.Gen.instance trial ~servers:4 ~capacity:50.0 ~threads:20
            Aa_workload.Gen.Uniform
        in
        total_a2 := !total_a2 +. Assignment.utility inst (Algo2.solve inst);
        total_uu := !total_uu +. Assignment.utility inst (Heuristics.uu inst)
      done;
      !total_a2 >= !total_uu *. 0.999)

let prop_full_allocation_used =
  QCheck2.Test.make ~name:"Algo2 wastes no resource when demand exceeds supply" ~count:200
    Helpers.gen_instance (fun inst ->
      let n = Instance.n_threads inst in
      let m = inst.servers in
      if n < m then true
      else begin
        let lin = Linearized.make inst in
        (* if every thread's chat is positive and total chat = mC, servers
           should end up fully allocated *)
        let total_chat = Util.kahan_sum lin.superopt.chat in
        let a = Algo2.solve ~linearized:lin inst in
        let used = Util.kahan_sum a.alloc in
        (* used >= total_chat - (m-1) * max chat is a weak bound; just check
           used is at least alpha fraction of the pooled budget when
           saturated *)
        if Util.approx_equal ~eps:1e-6 total_chat (float_of_int m *. inst.capacity) then
          used >= 0.5 *. total_chat -. 1e-6
        else true
      end)

(* ---------- the paper's structural lemmas, checked on Algo2 runs ---------- *)

let prop_lemma_v5_at_most_one_unfull_per_server =
  QCheck2.Test.make ~name:"Lemma V.5: at most one unfull thread per server" ~count:200
    Helpers.gen_instance (fun inst ->
      let lin = Linearized.make inst in
      let a = Algo2.solve ~linearized:lin inst in
      let unfull = Array.make inst.servers 0 in
      Array.iteri
        (fun i j ->
          let chat = Float.min lin.threads.(i).chat inst.capacity in
          if a.alloc.(i) < chat -. 1e-9 then unfull.(j) <- unfull.(j) + 1)
        a.server;
      Array.for_all (fun k -> k <= 1) unfull)

let prop_lemma_v8_first_m_threads_full =
  QCheck2.Test.make ~name:"Lemma V.8: the first m assigned threads are full" ~count:200
    Helpers.gen_instance (fun inst ->
      let lin = Linearized.make inst in
      let order = Algo2.order lin in
      let a = Algo2.solve ~linearized:lin inst in
      let m = min inst.servers (Array.length order) in
      let ok = ref true in
      for k = 0 to m - 1 do
        let i = order.(k) in
        let chat = Float.min lin.threads.(i).chat inst.capacity in
        if a.alloc.(i) < chat -. 1e-9 then ok := false
      done;
      !ok)

let test_large_instance_smoke () =
  (* n = 4000 threads on 32 servers: the heap algorithm must stay fast
     and feasible (the paper's complexity claim, qualitatively) *)
  let rng = Rng.create ~seed:99 () in
  let inst =
    Aa_workload.Gen.instance ~resolution:16 rng ~servers:32 ~capacity:1000.0 ~threads:4000
      Aa_workload.Gen.Uniform
  in
  let t0 = Aa_obs.Clock.now_s () in
  let lin = Linearized.make inst in
  let a = Algo2.solve ~linearized:lin inst in
  let elapsed = Aa_obs.Clock.now_s () -. t0 in
  (match Assignment.check inst a with Ok () -> () | Error e -> Alcotest.fail e);
  Helpers.check_ge "guarantee at scale"
    (Assignment.utility inst a)
    (Bounds.alpha *. lin.superopt.utility)
    ~eps:1e-6;
  if elapsed > 10.0 then Alcotest.failf "Algo2 too slow at n=4000: %.1f s" elapsed

let () =
  Alcotest.run "algorithms"
    [
      ( "algo2",
        [
          Alcotest.test_case "single thread" `Quick test_algo2_single_thread;
          Alcotest.test_case "order" `Quick test_algo2_order_peak_then_slope;
          Alcotest.test_case "max remaining" `Quick test_algo2_fills_max_remaining;
          Alcotest.test_case "deterministic" `Quick test_algo2_deterministic;
          Alcotest.test_case "tail resort" `Quick test_algo2_tail_resort_matters;
          Alcotest.test_case "server rules" `Quick test_algo2_server_rules_feasible;
          Alcotest.test_case "in-place order = copy reference" `Quick
            test_order_matches_copy_reference;
          Alcotest.test_case "scratch bit-identical" `Quick test_scratch_solve_bit_identical;
          Alcotest.test_case "min-remaining scan = naive argmin" `Quick
            test_min_remaining_matches_naive_argmin;
        ] );
      ( "algo1",
        [
          Alcotest.test_case "single server optimal" `Quick test_algo1_single_server_matches_superopt;
          Alcotest.test_case "prefers high peak" `Quick test_algo1_prefers_high_peak_when_full;
          Alcotest.test_case "quality vs algo2" `Quick test_algo1_agrees_with_algo2_quality;
        ] );
      ( "heuristics",
        [
          Alcotest.test_case "UU round robin" `Quick test_uu_round_robin_equal_split;
          Alcotest.test_case "UU optimal at beta=1" `Quick test_uu_beta_one_optimal;
          Alcotest.test_case "UR sums to capacity" `Quick test_ur_allocations_sum_to_capacity;
          Alcotest.test_case "RU equal split" `Quick test_ru_equal_split_random_place;
          Alcotest.test_case "RR feasible" `Quick test_rr_feasible_many_seeds;
        ] );
      ( "refine",
        [ Alcotest.test_case "recovers stranded resource" `Quick
            test_refine_recovers_stranded_resource ] );
      ("scale", [ Alcotest.test_case "n=4000 smoke" `Slow test_large_instance_smoke ]);
      Helpers.qsuite "properties"
        [
          prop_order_structure;
          prop_refine_sound;
          prop_lemma_v5_at_most_one_unfull_per_server;
          prop_lemma_v8_first_m_threads_full;
          prop_guarantee_algo2;
          prop_guarantee_algo1;
          prop_algo2_beats_heuristics_on_average;
          prop_full_allocation_used;
        ];
    ]
