lib/io/format_text.ml: Aa_core Aa_utility Array Assignment Buffer In_channel Instance List Out_channel Plc Printf Result String Utility
