lib/io/format_text.mli: Aa_core
