open Aa_numerics
open Aa_utility

let target numbers = Util.kahan_sum numbers

let instance numbers =
  if Array.length numbers < 2 then invalid_arg "Reduction.instance: need >= 2 numbers";
  Array.iter
    (fun c -> if not (c > 0.0) then invalid_arg "Reduction.instance: numbers must be positive")
    numbers;
  let capacity = target numbers /. 2.0 in
  let utilities =
    Array.map
      (fun c ->
        (* f_i(x) = min x c_i, truncated to the server capacity. *)
        Utility.of_plc
          (Plc.capped_linear ~cap:capacity ~slope:1.0 ~knee:(Float.min c capacity)))
      numbers
  in
  Instance.create ~servers:2 ~capacity utilities

let partition_exists ?(eps = 1e-9) numbers =
  let inst = instance numbers in
  let r = Exact.solve inst in
  Util.approx_equal ~eps r.utility (target numbers)
