(** Multi-resource extension of AA (the paper's second future-work item,
    §VIII): servers hold several resource types (CPU, memory, bandwidth,
    …) and threads consume them in fixed proportions.

    Model (the Leontief/DRF consumption model of Ghodsi et al., the
    standard way multi-resource schedulers express demands): thread [i]
    runs at a {e task rate} [t_i >= 0], consuming [t_i * demand.(r)] of
    each resource [r] on its server; its utility is a concave
    nondecreasing function of the task rate alone. Single-resource AA is
    the special case [demand = [|1.|]].

    No approximation guarantee is claimed (even the single-server
    allocation with multiple linear constraints is no longer solved
    exactly by segment greedy); everything here is explicitly heuristic,
    bracketed by a sound upper bound:

    - {!superopt_bound} relaxes to each resource separately (pool
      [m * C_r], ignore the others — every relaxation upper-bounds the
      true optimum) and takes the minimum;
    - {!allocate_server} fills segments by marginal utility per unit of
      {e currently scarcest} resource (progressive filling);
    - {!solve} orders threads by linearized peak as in Algorithm 2 and
      places each on the server with the most dominant-resource headroom,
      then re-fills every server.

    The bench's [multires] experiment measures the heuristic against
    this bound and against a round-robin baseline. *)

type thread = {
  rate_utility : Aa_utility.Utility.t;
      (** concave utility of the task rate, on [[0, rate_cap]] where
          [rate_cap = min_r capacities.(r) / demand.(r)] (the fastest the
          thread can run on one whole server) *)
  demand : float array;  (** per-rate resource consumption, length R *)
}

type t = private {
  servers : int;
  capacities : float array;  (** per-resource capacity of every server *)
  threads : thread array;
}

val create : servers:int -> capacities:float array -> thread array -> t
(** Validates: positive capacities; each thread's demand has length R,
    all entries nonnegative with at least one positive; each
    [rate_utility]'s domain cap equals the thread's [rate_cap] within
    1e-6 relative. *)

val n_threads : t -> int
val rate_cap : t -> thread -> float

type allocation = {
  rates : float array;  (** task rate granted to each thread *)
  usage : float array;  (** per-resource total consumption *)
  utility : float;
}

val allocate_server : ?samples:int -> t -> int list -> allocation
(** Progressive-filling allocation of one server's capacity vector among
    the given thread indices. [rates] and [usage] are indexed like the
    input list / resources respectively. *)

val superopt_bound : ?samples:int -> t -> float
(** Sound upper bound on any feasible assignment's utility (minimum over
    single-resource relaxations). *)

type result = {
  server : int array;
  rates : float array;
  total : float;
  bound : float;  (** the {!superopt_bound} of the instance *)
}

val solve : ?samples:int -> t -> result
(** Heuristic assign-and-allocate: a portfolio of the relaxation-guided
    placement and the balanced round-robin placement, keeping whichever
    scores higher (with several resource types neither dominates the
    other). The result is feasible by construction; [total <= bound],
    and [total >= round_robin t .total] always. *)

val round_robin : ?samples:int -> t -> result
(** Baseline: place threads round-robin, then progressive-fill each
    server. *)
