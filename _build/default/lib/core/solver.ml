open Aa_numerics

type algo = Algo1 | Algo2 | Uu | Ur | Ru | Rr

let all = [ Algo1; Algo2; Uu; Ur; Ru; Rr ]

let name = function
  | Algo1 -> "Algo1"
  | Algo2 -> "Algo2"
  | Uu -> "UU"
  | Ur -> "UR"
  | Ru -> "RU"
  | Rr -> "RR"

let of_name s =
  match String.lowercase_ascii s with
  | "algo1" -> Some Algo1
  | "algo2" -> Some Algo2
  | "uu" -> Some Uu
  | "ur" -> Some Ur
  | "ru" -> Some Ru
  | "rr" -> Some Rr
  | _ -> None

let is_randomized = function
  | Algo1 | Algo2 | Uu -> false
  | Ur | Ru | Rr -> true

let solve ?rng ?linearized algo inst =
  let rng = match rng with Some r -> r | None -> Rng.create () in
  match algo with
  | Algo1 -> Algo1.solve ?linearized inst
  | Algo2 -> Algo2.solve ?linearized inst
  | Uu -> Heuristics.uu inst
  | Ur -> Heuristics.ur ~rng inst
  | Ru -> Heuristics.ru ~rng inst
  | Rr -> Heuristics.rr ~rng inst
