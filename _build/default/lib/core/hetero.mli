(** Heterogeneous-server extension of AA (the paper's first future-work
    item, §VIII): servers may have different capacities.

    The super-optimal bound generalizes directly — pool
    [B = sum_j capacity_j] and cap each thread at the largest server.
    The assignment step generalizes Algorithm 2: threads ordered by
    linearized peak (tail re-sorted by slope) are placed on the server
    with the most remaining resource. The [2(√2−1)] proof does {e not}
    carry over verbatim (Lemmas V.5–V.8 use homogeneity), so the
    guarantee here is empirical: the bench's [hetero] experiment measures
    the achieved ratio against the generalized F̂, and the exact solver
    below verifies small instances. *)

type t = private {
  capacities : float array;  (** per-server resource, all positive *)
  utilities : Aa_utility.Utility.t array;
      (** each defined on [[0, max capacity]] *)
}

val create : capacities:float array -> Aa_utility.Utility.t array -> t
(** Validates: at least one server, positive capacities, at least one
    thread, every utility's domain cap equal to the largest capacity. *)

val n_threads : t -> int
val n_servers : t -> int

val total_capacity : t -> float

val to_homogeneous : t -> Instance.t option
(** The equivalent {!Instance.t} when all capacities are equal. *)

type superopt = { chat : float array; utility : float }

val superopt : ?samples:int -> t -> superopt
(** Pooled bound: maximize [sum f_i(ĉ_i)] s.t. [sum ĉ_i <= sum_j C_j] and
    [ĉ_i <= max_j C_j]. Upper-bounds every feasible assignment. *)

val solve : ?samples:int -> t -> Assignment.t
(** Generalized Algorithm 2. *)

val check : ?eps:float -> t -> Assignment.t -> (unit, string) result
(** Feasibility against per-server capacities. *)

val utility_of : t -> Assignment.t -> float

val uu : t -> Assignment.t
(** Capacity-aware UU baseline: threads are placed round-robin weighted
    by capacity (larger servers receive proportionally more threads) and
    each server's capacity is split equally among its threads. *)

val exact : ?samples:int -> t -> Assignment.t * float
(** Optimal assignment by dynamic programming over (server, thread-set)
    pairs, [O(m 3^n)]; requires [n_threads <= Exact.max_threads]. *)
