(** The four baseline heuristics of Section VII.

    Naming is [assignment]-[allocation]: the first letter says how threads
    are placed on servers (Uniform round-robin or Random), the second how
    each server's capacity is divided among its threads (Uniform equal
    shares or Random shares from a uniform simplex point). *)

val uu : Instance.t -> Assignment.t
(** Round-robin placement, equal shares. Deterministic. *)

val ur : rng:Aa_numerics.Rng.t -> Instance.t -> Assignment.t
(** Round-robin placement, random shares. *)

val ru : rng:Aa_numerics.Rng.t -> Instance.t -> Assignment.t
(** Uniform-random placement, equal shares. *)

val rr : rng:Aa_numerics.Rng.t -> Instance.t -> Assignment.t
(** Uniform-random placement, random shares. *)

val best_of_random :
  ?samples:int -> rng:Aa_numerics.Rng.t -> tries:int -> Instance.t -> Assignment.t
(** The statistical-sampling approach of Radojković et al. (paper §II,
    reference [8]): draw [tries] uniform-random placements, allocate each
    server optimally ({!Aa_alloc.Plc_greedy}), keep the best. No
    guarantee; quality improves slowly with [tries] (the sample must get
    lucky on placement), which is exactly the contrast with Algorithm 2
    the related-work section draws. *)
