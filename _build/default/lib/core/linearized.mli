(** The linearized problem of Section V-A.

    Each concave utility [f_i] is replaced by the two-piece function
    [g_i(x) = (x / ĉ_i) · f_i(ĉ_i)] for [x <= ĉ_i], constant afterwards,
    where [ĉ_i] is the thread's super-optimal allocation. [g_i] minorizes
    [f_i] (Lemma V.4) and agrees with it at [ĉ_i], so an [α]-approximate
    solution of the linearized instance is [α]-approximate for the
    original (Theorem V.16). *)

type thread = {
  index : int;
  chat : float;  (** super-optimal allocation ĉ_i *)
  peak : float;  (** g_i(ĉ_i) = f_i(ĉ_i) *)
  slope : float;
      (** peak / ĉ_i, the ramp slope; [infinity] when [ĉ_i = 0] with
          positive peak, [0] when the peak is 0 *)
  g : Aa_utility.Plc.t;  (** the linearized utility *)
}

type t = {
  instance : Instance.t;
  superopt : Superopt.t;
  threads : thread array;  (** in original thread order *)
}

val make : ?samples:int -> ?exhaust:bool -> Instance.t -> t
(** Computes the super-optimal allocation and linearizes every thread. *)

val of_superopt : Instance.t -> Superopt.t -> t
(** Linearize against an already-computed super-optimal allocation. *)

val g_value : thread -> float -> float
(** [g_value th x]: the linearized utility of allocating [x]. *)

val superoptimal_utility : t -> float
(** [F̂] of the linearized instance = [sum_i peak_i] (equals the concave
    instance's super-optimal utility by construction). *)
