open Aa_numerics

type server_rule = [ `Max_remaining | `Min_remaining | `Round_robin ]

let order ?(tail_resort = true) (lin : Linearized.t) =
  let n = Array.length lin.threads in
  let m = lin.instance.servers in
  let idx = Array.init n Fun.id in
  let by_peak a b =
    let pa = lin.threads.(a).peak and pb = lin.threads.(b).peak in
    match compare pb pa with 0 -> compare a b | c -> c
  in
  Array.sort by_peak idx;
  if tail_resort && n > m then begin
    let tail = Array.sub idx m (n - m) in
    let by_slope a b =
      let sa = lin.threads.(a).slope and sb = lin.threads.(b).slope in
      match compare sb sa with 0 -> compare a b | c -> c
    in
    Array.sort by_slope tail;
    Array.blit tail 0 idx m (n - m)
  end;
  idx

let solve ?linearized ?tail_resort ?(server_rule = `Max_remaining) (inst : Instance.t) =
  let lin = match linearized with Some l -> l | None -> Linearized.make inst in
  let n = Instance.n_threads inst in
  let m = inst.servers in
  let idx = order ?tail_resort lin in
  let server = Array.make n (-1) in
  let alloc = Array.make n 0.0 in
  let heap = Heap.Indexed.create (Array.make m inst.capacity) in
  let rr = ref 0 in
  Array.iter
    (fun i ->
      let j =
        match server_rule with
        | `Max_remaining -> Heap.Indexed.max_element heap
        | `Min_remaining ->
            (* linear scan: ablations need no heap support *)
            let best = ref 0 in
            for k = 1 to m - 1 do
              if Heap.Indexed.priority heap k < Heap.Indexed.priority heap !best then
                best := k
            done;
            !best
        | `Round_robin ->
            let j = !rr mod m in
            incr rr;
            j
      in
      let available = Heap.Indexed.priority heap j in
      let c = Float.min lin.threads.(i).chat available in
      server.(i) <- j;
      alloc.(i) <- c;
      Heap.Indexed.update heap j (available -. c))
    idx;
  Assignment.make ~server ~alloc
