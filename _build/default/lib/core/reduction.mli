(** The Partition → AA reduction of Theorem IV.1, executable.

    Given numbers [c_1 … c_n], build an AA instance with two servers of
    capacity [C = (Σ c_i) / 2] and threads with utilities
    [f_i(x) = min x c_i]. The numbers admit an equal-sum partition iff
    the AA optimum equals [Σ c_i]. *)

val instance : float array -> Instance.t
(** The reduced instance. Requires at least two positive numbers. *)

val target : float array -> float
(** [Σ c_i], the utility achieved exactly when a partition exists. *)

val partition_exists : ?eps:float -> float array -> bool
(** Decides Partition by solving the reduced AA instance exactly
    ({!Exact.solve} — exponential, as it must be unless P = NP).
    [eps] (default 1e-9) is the relative tolerance for comparing the
    optimum with the target. Requires [Array.length <= Exact.max_threads]. *)
