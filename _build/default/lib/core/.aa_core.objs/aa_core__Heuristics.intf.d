lib/core/heuristics.mli: Aa_numerics Assignment Instance
