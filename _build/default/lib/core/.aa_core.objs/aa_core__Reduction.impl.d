lib/core/reduction.ml: Aa_numerics Aa_utility Array Exact Float Instance Plc Util Utility
