lib/core/tightness.ml: Aa_utility Instance Plc Utility
