lib/core/hetero.ml: Aa_alloc Aa_numerics Aa_utility Array Assignment Exact Float Fun Heap Instance Plc Plc_greedy Printf Util Utility
