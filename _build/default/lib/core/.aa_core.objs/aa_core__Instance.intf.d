lib/core/instance.mli: Aa_utility Format
