lib/core/bounds.ml: Assignment Superopt
