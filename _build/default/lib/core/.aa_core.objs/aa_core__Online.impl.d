lib/core/online.ml: Aa_alloc Aa_numerics Aa_utility Array Assignment Dynvec Float Instance List Plc Plc_greedy Util Utility
