lib/core/solver.mli: Aa_numerics Assignment Instance Linearized
