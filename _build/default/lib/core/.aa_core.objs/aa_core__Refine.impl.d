lib/core/refine.ml: Aa_alloc Aa_utility Array Assignment Hetero Instance Plc_greedy
