lib/core/hetero.mli: Aa_utility Assignment Instance
