lib/core/bounds.mli: Assignment Instance Superopt
