lib/core/algo1.mli: Assignment Instance Linearized
