lib/core/algo2.mli: Assignment Instance Linearized
