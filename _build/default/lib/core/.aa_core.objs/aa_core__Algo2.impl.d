lib/core/algo2.ml: Aa_numerics Array Assignment Float Fun Heap Instance Linearized
