lib/core/solver.ml: Aa_numerics Algo1 Algo2 Heuristics Rng String
