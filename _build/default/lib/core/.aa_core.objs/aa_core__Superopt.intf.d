lib/core/superopt.mli: Aa_utility Instance
