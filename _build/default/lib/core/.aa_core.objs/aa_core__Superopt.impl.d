lib/core/superopt.ml: Aa_alloc Aa_utility Instance Plc_greedy Waterfill
