lib/core/linearized.mli: Aa_utility Instance Superopt
