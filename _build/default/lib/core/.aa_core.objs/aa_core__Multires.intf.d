lib/core/multires.mli: Aa_utility
