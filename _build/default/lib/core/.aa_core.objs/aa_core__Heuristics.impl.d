lib/core/heuristics.ml: Aa_alloc Aa_numerics Array Assignment Instance Rng
