lib/core/assignment.ml: Aa_numerics Aa_utility Array Float Format Fun Instance Printf Util Utility
