lib/core/refine.mli: Assignment Hetero Instance
