lib/core/exact.ml: Aa_alloc Array Assignment Float Instance Plc_greedy Printf
