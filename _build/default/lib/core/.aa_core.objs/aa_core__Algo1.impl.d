lib/core/algo1.ml: Array Assignment Instance Linearized
