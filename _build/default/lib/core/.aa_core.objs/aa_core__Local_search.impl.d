lib/core/local_search.ml: Aa_alloc Aa_numerics Array Assignment Float Instance List Plc_greedy
