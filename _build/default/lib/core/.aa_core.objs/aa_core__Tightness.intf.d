lib/core/tightness.mli: Instance
