lib/core/instance.ml: Aa_numerics Aa_utility Array Format Printf Util Utility
