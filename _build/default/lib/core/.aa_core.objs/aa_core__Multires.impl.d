lib/core/multires.ml: Aa_alloc Aa_numerics Aa_utility Array Float Fun List Plc Plc_greedy Printf Util Utility
