lib/core/linearized.ml: Aa_numerics Aa_utility Array Float Instance Plc Superopt Util
