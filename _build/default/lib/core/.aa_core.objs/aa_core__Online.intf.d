lib/core/online.mli: Aa_utility Assignment Instance
