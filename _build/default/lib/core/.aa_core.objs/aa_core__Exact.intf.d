lib/core/exact.mli: Assignment Instance
