lib/core/reduction.mli: Instance
