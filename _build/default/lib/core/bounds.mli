(** Approximation constants and per-run certificates. *)

val alpha : float
(** The proven approximation ratio [2(√2 − 1) ≈ 0.8284] (Theorems V.16
    and VI.1). *)

type certificate = {
  achieved : float;  (** utility of the assignment under the true utilities *)
  superopt : float;  (** F̂, the super-optimal upper bound on F* *)
  ratio : float;  (** achieved / superopt, a lower bound on achieved / F* *)
  meets_guarantee : bool;  (** ratio >= alpha (up to 1e-9 slack) *)
}

val certify : Instance.t -> Superopt.t -> Assignment.t -> certificate
(** Checks an assignment against the paper's guarantee. Because
    [F* <= F̂], [ratio >= alpha] certifies [achieved >= alpha * F*]
    without knowing [F*]. *)
