open Aa_numerics
open Aa_utility

type t = { servers : int; capacity : float; utilities : Utility.t array }

let create ~servers ~capacity utilities =
  if servers < 1 then invalid_arg "Instance.create: need at least one server";
  if not (capacity > 0.0) then invalid_arg "Instance.create: capacity must be positive";
  if Array.length utilities = 0 then invalid_arg "Instance.create: no threads";
  Array.iteri
    (fun i f ->
      if not (Util.approx_equal ~eps:1e-9 (Utility.cap f) capacity) then
        invalid_arg
          (Printf.sprintf
             "Instance.create: thread %d has domain cap %g, expected capacity %g" i
             (Utility.cap f) capacity))
    utilities;
  { servers; capacity; utilities }

let n_threads t = Array.length t.utilities
let beta t = float_of_int (n_threads t) /. float_of_int t.servers
let to_plc ?samples t = Array.map (Utility.to_plc ?samples) t.utilities

let pp ppf t =
  Format.fprintf ppf "AA instance: m=%d servers, C=%g, n=%d threads (β=%.2f)" t.servers
    t.capacity (n_threads t) (beta t)
