open Aa_numerics
open Aa_utility

type t = { server : int array; alloc : float array }

let make ~server ~alloc =
  if Array.length server <> Array.length alloc then
    invalid_arg "Assignment.make: server/alloc length mismatch";
  if Array.length server = 0 then invalid_arg "Assignment.make: empty assignment";
  { server; alloc }

let n_threads t = Array.length t.server

let server_load (inst : Instance.t) t =
  let load = Array.make inst.servers 0.0 in
  Array.iteri (fun i j -> load.(j) <- load.(j) +. t.alloc.(i)) t.server;
  load

let check ?(eps = 1e-9) (inst : Instance.t) t =
  let n = Instance.n_threads inst in
  if n_threads t <> n then
    Error (Printf.sprintf "assignment covers %d threads, instance has %d" (n_threads t) n)
  else begin
    let bad_server =
      Array.exists (fun j -> j < 0 || j >= inst.servers) t.server
    in
    let bad_alloc = Array.exists (fun c -> c < 0.0 || Float.is_nan c) t.alloc in
    if bad_server then Error "server index out of range"
    else if bad_alloc then Error "negative or NaN allocation"
    else begin
      let load = server_load inst t in
      let slack = eps *. inst.capacity *. float_of_int n in
      let over = ref None in
      Array.iteri
        (fun j l -> if l > inst.capacity +. slack && !over = None then over := Some (j, l))
        load;
      match !over with
      | Some (j, l) ->
          Error (Printf.sprintf "server %d overloaded: %.12g > capacity %.12g" j l inst.capacity)
      | None -> Ok ()
    end
  end

let utility (inst : Instance.t) t =
  Util.sum_by
    (fun i -> Utility.eval inst.utilities.(i) t.alloc.(i))
    (Array.init (n_threads t) Fun.id)

let threads_on t j =
  let out = ref [] in
  for i = n_threads t - 1 downto 0 do
    if t.server.(i) = j then out := i :: !out
  done;
  !out

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun i j -> Format.fprintf ppf "thread %d -> server %d, alloc %.6g@," i j t.alloc.(i))
    t.server;
  Format.fprintf ppf "@]"
