(** Hill-climbing post-optimizer over thread placements.

    Starting from any assignment, repeatedly apply the best improving
    {e move} (reassign one thread to another server) or {e swap}
    (exchange the servers of two threads), evaluating every candidate
    with exact per-server re-allocation ({!Aa_alloc.Plc_greedy}). This is
    the standard practical upgrade on top of a constructive algorithm:
    it cannot leave the [α] guarantee (utility never decreases) and it
    closes gaps the greedy order locks in — e.g. it repairs the
    tightness instance of Theorem V.17 from 5/6 to the optimum.

    Cost: a full round is [O(n·m + n²)] candidate evaluations, each a
    per-server water-filling; intended for moderate [n] or as an offline
    polish. *)

type stats = {
  rounds : int;
  moves : int;  (** single-thread reassignments applied *)
  swaps : int;  (** pairwise exchanges applied *)
  initial : float;
  final : float;
}

val improve :
  ?samples:int ->
  ?max_rounds:int ->
  ?enable_swaps:bool ->
  Instance.t ->
  Assignment.t ->
  Assignment.t * stats
(** [improve inst a] hill-climbs from [a] (placement only; allocations
    are recomputed) until a local optimum or [max_rounds] (default 50)
    rounds. [enable_swaps] (default true) also tries pairwise swaps —
    needed to escape placements where no single move helps (the
    tightness instance). The result is feasible and its utility is at
    least that of [Refine.per_server inst a]. *)
