(** Per-server re-allocation post-pass.

    Algorithms 1 and 2 allocate each thread [min ĉ_i (remaining)], which
    can strand resource on a server even when its threads' utilities are
    still increasing, and can leave a truncated thread with less than its
    server-local optimal share. Re-dividing each server's capacity
    optimally among its assigned threads (placement unchanged) never
    decreases utility, costs one water-filling per server, and preserves
    the [α] guarantee.

    The paper's pseudocode omits this step, but its experimental ratios
    (≥ 0.99 of the super-optimal bound) are only reached with it — see
    EXPERIMENTS.md and the A1 ablation. The experiment driver applies it
    to Algorithm 1/2 outputs; the UU/UR/RU/RR baselines are {e not}
    refined, since their allocation rule is the thing being compared. *)

val per_server : ?samples:int -> Instance.t -> Assignment.t -> Assignment.t
(** [per_server inst a] keeps [a]'s placement and replaces each server's
    allocations with an optimal division of its full capacity among its
    threads ({!Aa_alloc.Plc_greedy}). *)

val hetero : ?samples:int -> Hetero.t -> Assignment.t -> Assignment.t
(** Same for heterogeneous instances. *)
