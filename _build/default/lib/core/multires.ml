open Aa_numerics
open Aa_utility
open Aa_alloc

type thread = { rate_utility : Utility.t; demand : float array }
type t = { servers : int; capacities : float array; threads : thread array }

let resources t = Array.length t.capacities

let rate_cap_of ~capacities (th : thread) =
  let best = ref Float.infinity in
  Array.iteri
    (fun r d -> if d > 0.0 then best := Float.min !best (capacities.(r) /. d))
    th.demand;
  !best

let create ~servers ~capacities threads =
  if servers < 1 then invalid_arg "Multires.create: need at least one server";
  if Array.length capacities = 0 then invalid_arg "Multires.create: no resources";
  Array.iter
    (fun c -> if not (c > 0.0) then invalid_arg "Multires.create: capacities must be positive")
    capacities;
  if Array.length threads = 0 then invalid_arg "Multires.create: no threads";
  Array.iteri
    (fun i th ->
      if Array.length th.demand <> Array.length capacities then
        invalid_arg (Printf.sprintf "Multires.create: thread %d demand length mismatch" i);
      Array.iter
        (fun d -> if d < 0.0 || Float.is_nan d then invalid_arg "Multires.create: bad demand")
        th.demand;
      if not (Array.exists (fun d -> d > 0.0) th.demand) then
        invalid_arg (Printf.sprintf "Multires.create: thread %d consumes nothing" i);
      let rc = rate_cap_of ~capacities th in
      if not (Util.approx_equal ~eps:1e-6 (Utility.cap th.rate_utility) rc) then
        invalid_arg
          (Printf.sprintf "Multires.create: thread %d rate-utility cap %g, expected %g" i
             (Utility.cap th.rate_utility) rc))
    threads;
  { servers; capacities; threads }

let n_threads t = Array.length t.threads
let rate_cap t th = rate_cap_of ~capacities:t.capacities th

type allocation = { rates : float array; usage : float array; utility : float }

(* Progressive filling: repeatedly advance, by one (partial) PLC segment,
   the thread whose current marginal utility per unit of its scarcest
   remaining resource is highest. *)
let allocate_server ?samples t ids =
  let ids = Array.of_list ids in
  let k = Array.length ids in
  let nr = resources t in
  let remaining = Array.copy t.capacities in
  let plcs = Array.map (fun i -> Utility.to_plc ?samples t.threads.(i).rate_utility) ids in
  let segs = Array.map Plc.segments plcs in
  let seg_idx = Array.make k 0 in
  let rates = Array.make k 0.0 in
  let exhausted r = remaining.(r) <= 1e-12 *. t.capacities.(r) in
  (* largest extra rate thread j can still take, resource-wise *)
  let headroom j =
    let d = t.threads.(ids.(j)).demand in
    let best = ref Float.infinity in
    for r = 0 to nr - 1 do
      if d.(r) > 0.0 then
        best := Float.min !best (if exhausted r then 0.0 else remaining.(r) /. d.(r))
    done;
    !best
  in
  (* marginal utility per unit of scarcest-resource fraction *)
  let priority j =
    if seg_idx.(j) >= Array.length segs.(j) then None
    else begin
      let s = segs.(j).(seg_idx.(j)) in
      if s.Plc.slope <= 0.0 then None
      else begin
        let d = t.threads.(ids.(j)).demand in
        let cost = ref 0.0 in
        let blocked = ref false in
        for r = 0 to nr - 1 do
          if d.(r) > 0.0 then begin
            if exhausted r then blocked := true
            else cost := Float.max !cost (d.(r) /. remaining.(r))
          end
        done;
        if !blocked || !cost <= 0.0 then None else Some (s.Plc.slope /. !cost)
      end
    end
  in
  (* Steps are capped at a quarter of the thread's current resource
     headroom so that competing threads with complementary demands
     interleave (costs are re-evaluated as resources deplete) instead of
     one thread draining a resource in a single segment-sized gulp; once
     the headroom is negligible the thread takes it whole and stops. *)
  let continue = ref true in
  let guard = ref 0 in
  let seg_count = Array.fold_left (fun acc s -> acc + Array.length s) 0 segs in
  let max_steps = 400 * (seg_count + (nr * k) + 8) in
  while !continue && !guard < max_steps do
    incr guard;
    let best = ref None in
    for j = 0 to k - 1 do
      match priority j with
      | None -> ()
      | Some p -> (
          match !best with Some (p', _) when p' >= p -> () | _ -> best := Some (p, j))
    done;
    match !best with
    | None -> continue := false
    | Some (_, j) ->
        let s = segs.(j).(seg_idx.(j)) in
        let seg_left = s.Plc.x1 -. rates.(j) in
        let room = headroom j in
        let tol = 1e-7 *. Float.max 1.0 (Plc.cap plcs.(j)) in
        let step =
          if room *. 0.25 <= tol then Float.min seg_left room
          else Float.min seg_left (room *. 0.25)
        in
        if step <= 1e-12 *. Float.max 1.0 s.Plc.x1 then
          (* cannot advance: mark the segment as done to move on *)
          seg_idx.(j) <- seg_idx.(j) + 1
        else begin
          rates.(j) <- rates.(j) +. step;
          let d = t.threads.(ids.(j)).demand in
          for r = 0 to nr - 1 do
            remaining.(r) <- Float.max 0.0 (remaining.(r) -. (step *. d.(r)))
          done;
          if rates.(j) >= s.Plc.x1 -. (1e-12 *. Float.max 1.0 s.Plc.x1) then
            seg_idx.(j) <- seg_idx.(j) + 1
        end
  done;
  let usage = Array.make nr 0.0 in
  Array.iteri
    (fun j rate ->
      let d = t.threads.(ids.(j)).demand in
      for r = 0 to nr - 1 do
        usage.(r) <- usage.(r) +. (rate *. d.(r))
      done)
    rates;
  let utility =
    Util.sum_by (fun j -> Plc.eval plcs.(j) rates.(j)) (Array.init k Fun.id)
  in
  { rates; usage; utility }

(* Relaxation to resource r: scale each thread's rate-PLC into a
   consumption-PLC and run the exact pooled allocator; threads that do
   not consume r run free at their rate cap. *)
let relaxation ?samples t r =
  let free = ref 0.0 in
  let consuming = ref [] in
  Array.iteri
    (fun i th ->
      let d = th.demand.(r) in
      if d <= 0.0 then free := !free +. Utility.peak th.rate_utility
      else begin
        let plc = Utility.to_plc ?samples th.rate_utility in
        let scaled =
          Plc.create (Array.map (fun (x, y) -> (x *. d, y)) (Plc.points plc))
        in
        consuming := (i, d, plc, scaled) :: !consuming
      end)
    t.threads;
  let consuming = Array.of_list (List.rev !consuming) in
  let budget = float_of_int t.servers *. t.capacities.(r) in
  let res =
    Plc_greedy.allocate ~exhaust:false ~budget (Array.map (fun (_, _, _, s) -> s) consuming)
  in
  let rates = Array.make (n_threads t) 0.0 in
  Array.iteri
    (fun pos (i, d, _, _) -> rates.(i) <- res.alloc.(pos) /. d)
    consuming;
  Array.iteri
    (fun i th -> if th.demand.(r) <= 0.0 then rates.(i) <- rate_cap t th)
    t.threads;
  (res.utility +. !free, rates)

let superopt_bound ?samples t =
  let best = ref Float.infinity in
  for r = 0 to resources t - 1 do
    let v, _ = relaxation ?samples t r in
    if v < !best then best := v
  done;
  !best

type result = { server : int array; rates : float array; total : float; bound : float }

let finish ?samples t server =
  let m = t.servers in
  let rates = Array.make (n_threads t) 0.0 in
  let total = ref 0.0 in
  for j = 0 to m - 1 do
    let ids = ref [] in
    for i = n_threads t - 1 downto 0 do
      if server.(i) = j then ids := i :: !ids
    done;
    if !ids <> [] then begin
      let a = allocate_server ?samples t !ids in
      List.iteri (fun pos i -> rates.(i) <- a.rates.(pos)) !ids;
      total := !total +. a.utility
    end
  done;
  { server; rates; total = !total; bound = superopt_bound ?samples t }

let round_robin ?samples t =
  let server = Array.init (n_threads t) (fun i -> i mod t.servers) in
  finish ?samples t server

let solve_informed ?samples t =
  let n = n_threads t in
  let m = t.servers in
  let nr = resources t in
  (* linearize against the tightest relaxation's pooled rates *)
  let tight = ref (Float.infinity, [||]) in
  for r = 0 to nr - 1 do
    let v, rates = relaxation ?samples t r in
    if v < fst !tight then tight := (v, rates)
  done;
  let _, chat = !tight in
  let peak = Array.mapi (fun i th -> Utility.eval th.rate_utility chat.(i)) t.threads in
  let slope =
    Array.mapi
      (fun i p -> if chat.(i) > 0.0 then p /. chat.(i) else if p > 0.0 then Float.infinity else 0.0)
      peak
  in
  let idx = Array.init n Fun.id in
  let by_peak a b = match compare peak.(b) peak.(a) with 0 -> compare a b | c -> c in
  Array.sort by_peak idx;
  if n > m then begin
    let tail = Array.sub idx m (n - m) in
    let by_slope a b = match compare slope.(b) slope.(a) with 0 -> compare a b | c -> c in
    Array.sort by_slope tail;
    Array.blit tail 0 idx m (n - m)
  end;
  let remaining = Array.init m (fun _ -> Array.copy t.capacities) in
  let server = Array.make n (-1) in
  Array.iter
    (fun i ->
      let d = t.threads.(i).demand in
      (* server with the most headroom for this thread's demand shape *)
      let score j =
        let best = ref Float.infinity in
        for r = 0 to nr - 1 do
          if d.(r) > 0.0 then best := Float.min !best (remaining.(j).(r) /. d.(r))
        done;
        !best
      in
      let j = Util.argmax score (Array.init m Fun.id) in
      server.(i) <- j;
      let grant = Float.min chat.(i) (score j) in
      for r = 0 to nr - 1 do
        remaining.(j).(r) <- Float.max 0.0 (remaining.(j).(r) -. (grant *. d.(r)))
      done)
    idx;
  (* portfolio: with several resource types the relaxation-guided
     placement can lose to a plain balanced spread, so keep the better
     of the two (both use the same per-server allocator) *)
  let informed = finish ?samples t server in
  let rr = round_robin ?samples t in
  if informed.total >= rr.total then informed else rr

let solve ?samples t = solve_informed ?samples t

