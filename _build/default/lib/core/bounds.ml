let alpha = 2.0 *. (sqrt 2.0 -. 1.0)

type certificate = {
  achieved : float;
  superopt : float;
  ratio : float;
  meets_guarantee : bool;
}

let certify inst (so : Superopt.t) assignment =
  let achieved = Assignment.utility inst assignment in
  let ratio = if so.utility > 0.0 then achieved /. so.utility else 1.0 in
  { achieved; superopt = so.utility; ratio; meets_guarantee = ratio >= alpha -. 1e-9 }
