(** An AA problem instance (paper Section III): [servers] homogeneous
    servers with [capacity] resource each, and one utility function per
    thread, every one defined on [[0, capacity]]. *)

type t = private {
  servers : int;
  capacity : float;
  utilities : Aa_utility.Utility.t array;
}

val create :
  servers:int -> capacity:float -> Aa_utility.Utility.t array -> t
(** Validates: [servers >= 1], [capacity > 0], at least one thread, and
    every utility's domain cap equals [capacity] (within 1e-9 relative).
    Raises [Invalid_argument] otherwise. *)

val n_threads : t -> int

val beta : t -> float
(** Average threads per server, the paper's sweep parameter
    [β = n / m]. *)

val to_plc : ?samples:int -> t -> Aa_utility.Plc.t array
(** Every utility as an exact PLC function (identity on PLC utilities;
    smooth ones are sampled — see {!Aa_utility.Utility.to_plc}). *)

val pp : Format.formatter -> t -> unit
