(** The super-optimal allocation (Definition V.1): the best possible
    division of the {e pooled} resource [m * C] among all threads,
    ignoring server boundaries. Its utility [F̂] upper-bounds the optimal
    assignment utility [F*] (Lemma V.2), and its per-thread allocations
    [ĉ_i] drive the linearization of Section V-A. *)

type t = {
  chat : float array;  (** super-optimal allocation ĉ_i, in [[0, C]] *)
  utility : float;  (** F̂ — upper bound on any assignment's utility *)
  lambda : float;  (** clearing marginal price *)
  plc : Aa_utility.Plc.t array;
      (** the exact PLC forms of the instance utilities used to compute
          the allocation (reused by the algorithms downstream) *)
}

val compute : ?samples:int -> ?exhaust:bool -> Instance.t -> t
(** Computes a super-optimal allocation exactly via
    {!Aa_alloc.Plc_greedy} on the PLC forms of the utilities
    ([samples] controls smooth-to-PLC conversion, default 64).

    For instances whose utilities are already PLC the result is the exact
    F̂. For smooth utilities it is the exact F̂ of their PLC minorants,
    which {e underestimates} the true F̂ by at most the sampling error —
    so a certificate ratio computed against it can marginally exceed 1.
    Use {!compute_waterfill} when a numerically tight bound on smooth
    utilities matters more than exactness.

    [exhaust] (default true) pads allocations along flat segments so that
    [sum ĉ_i = min (m * C) (n * C)] (Lemma V.3); with [false],
    allocations are minimal. Utility is unaffected. *)

val compute_waterfill : ?iters:int -> Instance.t -> t
(** Same quantity computed by continuous water-filling directly on the
    (possibly smooth) utilities — used to cross-check the PLC path and
    in the resolution ablation. *)
