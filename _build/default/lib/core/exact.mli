(** Exact AA solver for small instances.

    AA is NP-hard even for two servers (Theorem IV.1), so this solver is
    exponential: it runs a dynamic program over subsets of threads —
    servers are homogeneous, so a solution is a partition of the threads
    into at most [m] groups, each group allocated optimally (and exactly,
    via {!Aa_alloc.Plc_greedy}) within one server's capacity. [O(3^n)]
    subset-pair enumeration; guarded to [n <= max_threads].

    Used to validate the approximation algorithms and to make the
    NP-hardness reduction executable. *)

val max_threads : int
(** Hard limit (16) on instance size accepted by [solve]. *)

type result = {
  assignment : Assignment.t;
  utility : float;  (** true optimum F* of the instance *)
}

val solve : ?samples:int -> Instance.t -> result
(** [solve inst] computes an optimal assignment. [samples] controls
    smooth-to-PLC conversion (exact for PLC utilities). Raises
    [Invalid_argument] when the instance has more than [max_threads]
    threads. *)
