open Aa_utility

let instance () =
  let cap = 1.0 in
  let f_steep () = Plc.capped_linear ~cap ~slope:2.0 ~knee:0.5 in
  let f_linear = Plc.capped_linear ~cap ~slope:1.0 ~knee:cap in
  Instance.create ~servers:2 ~capacity:cap
    [| Utility.of_plc (f_steep ()); Utility.of_plc (f_steep ()); Utility.of_plc f_linear |]

let optimal_utility = 3.0
let algorithm_utility = 2.5
let expected_ratio = algorithm_utility /. optimal_utility
