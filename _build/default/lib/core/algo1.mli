(** Algorithm 1 (Section V-B): the [O(m n² + n (log mC)²)]
    [2(√2−1)]-approximation.

    Repeatedly: if some unassigned thread fits its super-optimal
    allocation [ĉ_i] on some server (the pair set [U]), assign — among
    those — the thread with the greatest linearized utility [g_i(ĉ_i)];
    otherwise assign the (thread, server) pair with the greatest utility
    [g_i(C_j)] from a server's remaining resource, granting all of it.

    Ties are broken deterministically: larger remaining capacity first,
    then smaller thread/server index. *)

val solve : ?linearized:Linearized.t -> Instance.t -> Assignment.t
(** Runs the full pipeline (super-optimal allocation, linearization,
    greedy assignment). Pass [linearized] to reuse a precomputed
    linearization. The assignment allocates every thread
    [min ĉ_i (remaining)] on its chosen server. *)
