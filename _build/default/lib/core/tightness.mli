(** The tightness example of Theorem V.17: an instance where Algorithms 1
    and 2 achieve exactly 5/6 of the optimal utility, showing the
    [2(√2−1) ≈ 0.828] analysis is nearly tight. *)

val instance : unit -> Instance.t
(** Two servers with one unit of resource; threads 1 and 2 rise with
    slope 2 to utility 1 at x = 1/2; thread 3 is linear with slope 1. *)

val optimal_utility : float
(** 3: threads 1 and 2 share one server, thread 3 gets the other. *)

val algorithm_utility : float
(** 5/2: the greedy order spreads threads 1 and 2 across both servers. *)

val expected_ratio : float
(** 5/6 ≈ 0.833, just above the proven bound [2(√2−1) ≈ 0.828]. *)
