(** Shape-preserving piecewise cubic Hermite interpolation
    (Fritsch–Carlson), a reimplementation of the PCHIP scheme used by the
    paper's Matlab workload generator.

    Given data points with strictly increasing abscissae, the interpolant
    passes through every point, is C¹, and is monotone on every interval
    where the data are monotone — so nondecreasing samples yield a
    nondecreasing utility function. Concavity is {e not} guaranteed in
    general; see {!Aa_utility.Sampled} for the concave-envelope repair. *)

type t

val create : xs:float array -> ys:float array -> t
(** [create ~xs ~ys] interpolates the points [(xs.(i), ys.(i))].
    Requires [xs] strictly increasing and at least two points.
    Raises [Invalid_argument] otherwise. *)

val eval : t -> float -> float
(** Value of the interpolant. Arguments outside the data range are clamped
    to the nearest endpoint. *)

val deriv : t -> float -> float
(** Derivative of the interpolant (one-sided at breakpoints, 0 outside the
    data range). *)

val sample : t -> int -> (float * float) array
(** [sample t k] evaluates the interpolant at [k >= 2] evenly spaced
    points spanning the data range, endpoints included. *)

val breakpoints : t -> (float * float) array
(** The original data points. *)
