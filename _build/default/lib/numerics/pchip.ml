type t = {
  xs : float array;
  ys : float array;
  ds : float array; (* derivative at each breakpoint *)
}

let sign x = if x > 0.0 then 1 else if x < 0.0 then -1 else 0

(* Fritsch–Carlson derivative selection. Interior derivatives are the
   weighted harmonic mean of adjacent secant slopes (0 at local extrema);
   endpoint derivatives use the non-centered three-point formula with the
   usual monotonicity clamps, as in Matlab's pchip. *)
let derivatives xs ys =
  let n = Array.length xs in
  let h = Array.init (n - 1) (fun k -> xs.(k + 1) -. xs.(k)) in
  let delta = Array.init (n - 1) (fun k -> (ys.(k + 1) -. ys.(k)) /. h.(k)) in
  let d = Array.make n 0.0 in
  if n = 2 then begin
    d.(0) <- delta.(0);
    d.(1) <- delta.(0)
  end
  else begin
    for k = 1 to n - 2 do
      if sign delta.(k - 1) * sign delta.(k) <= 0 then d.(k) <- 0.0
      else begin
        let w1 = (2.0 *. h.(k)) +. h.(k - 1) in
        let w2 = h.(k) +. (2.0 *. h.(k - 1)) in
        d.(k) <- (w1 +. w2) /. ((w1 /. delta.(k - 1)) +. (w2 /. delta.(k)))
      end
    done;
    let endpoint h0 h1 d0 d1 =
      let g = (((2.0 *. h0) +. h1) *. d0 -. (h0 *. d1)) /. (h0 +. h1) in
      if sign g <> sign d0 then 0.0
      else if sign d0 <> sign d1 && Float.abs g > 3.0 *. Float.abs d0 then 3.0 *. d0
      else g
    in
    d.(0) <- endpoint h.(0) h.(1) delta.(0) delta.(1);
    d.(n - 1) <- endpoint h.(n - 2) h.(n - 3) delta.(n - 2) delta.(n - 3)
  end;
  d

let create ~xs ~ys =
  let n = Array.length xs in
  if n < 2 then invalid_arg "Pchip.create: need at least two points";
  if Array.length ys <> n then invalid_arg "Pchip.create: xs/ys length mismatch";
  if not (Util.is_sorted_strict xs) then
    invalid_arg "Pchip.create: xs must be strictly increasing";
  { xs = Array.copy xs; ys = Array.copy ys; ds = derivatives xs ys }

(* Index of the interval [xs.(k), xs.(k+1)] containing x (x within range). *)
let interval t x =
  let n = Array.length t.xs in
  let lo = ref 0 and hi = ref (n - 1) in
  while !hi - !lo > 1 do
    let mid = (!lo + !hi) / 2 in
    if t.xs.(mid) <= x then lo := mid else hi := mid
  done;
  !lo

let eval t x =
  let n = Array.length t.xs in
  if x <= t.xs.(0) then t.ys.(0)
  else if x >= t.xs.(n - 1) then t.ys.(n - 1)
  else begin
    let k = interval t x in
    let h = t.xs.(k + 1) -. t.xs.(k) in
    let s = (x -. t.xs.(k)) /. h in
    let s2 = s *. s in
    let s3 = s2 *. s in
    let h00 = (2.0 *. s3) -. (3.0 *. s2) +. 1.0 in
    let h10 = s3 -. (2.0 *. s2) +. s in
    let h01 = (-2.0 *. s3) +. (3.0 *. s2) in
    let h11 = s3 -. s2 in
    (h00 *. t.ys.(k)) +. (h10 *. h *. t.ds.(k)) +. (h01 *. t.ys.(k + 1))
    +. (h11 *. h *. t.ds.(k + 1))
  end

let deriv t x =
  let n = Array.length t.xs in
  if x < t.xs.(0) || x > t.xs.(n - 1) then 0.0
  else if x = t.xs.(n - 1) then t.ds.(n - 1)
  else begin
    let k = interval t x in
    let h = t.xs.(k + 1) -. t.xs.(k) in
    let s = (x -. t.xs.(k)) /. h in
    let s2 = s *. s in
    let h00' = ((6.0 *. s2) -. (6.0 *. s)) /. h in
    let h10' = (3.0 *. s2) -. (4.0 *. s) +. 1.0 in
    let h01' = ((-6.0 *. s2) +. (6.0 *. s)) /. h in
    let h11' = (3.0 *. s2) -. (2.0 *. s) in
    (h00' *. t.ys.(k)) +. (h10' *. t.ds.(k)) +. (h01' *. t.ys.(k + 1))
    +. (h11' *. t.ds.(k + 1))
  end

let sample t k =
  let n = Array.length t.xs in
  let pts = Util.linspace t.xs.(0) t.xs.(n - 1) k in
  Array.map (fun x -> (x, eval t x)) pts

let breakpoints t = Array.init (Array.length t.xs) (fun i -> (t.xs.(i), t.ys.(i)))
