(** Upper concave envelopes and shape checks on sampled functions. *)

val upper_envelope : (float * float) array -> (float * float) array
(** [upper_envelope pts] is the upper concave envelope (upper convex hull)
    of the points, returned sorted by strictly increasing x. Points sharing
    an x keep only the largest y. The result always contains the leftmost
    and rightmost x. Requires at least one point. *)

val is_concave : ?eps:float -> (float * float) array -> bool
(** Whether the piecewise-linear interpolant of the (x-sorted) points has
    nonincreasing slopes, up to tolerance [eps] (default 1e-9) relative to
    the magnitude of the slopes involved. *)

val is_nondecreasing : ?eps:float -> (float * float) array -> bool
(** Whether y never decreases (up to [eps]) as x increases. *)

val max_concavity_violation : (float * float) array -> float
(** Largest slope increase between consecutive segments; [<= 0] means the
    sampled function is concave. Returns [neg_infinity] for fewer than
    three points. *)
