type 'a t = { mutable data : 'a array; mutable len : int }

let create () = { data = [||]; len = 0 }
let length t = t.len

let push t x =
  let cap = Array.length t.data in
  if t.len = cap then begin
    let ncap = if cap = 0 then 8 else 2 * cap in
    let ndata = Array.make ncap x in
    Array.blit t.data 0 ndata 0 t.len;
    t.data <- ndata
  end;
  t.data.(t.len) <- x;
  t.len <- t.len + 1

let check t i = if i < 0 || i >= t.len then invalid_arg "Dynvec: index out of bounds"

let get t i =
  check t i;
  t.data.(i)

let set t i x =
  check t i;
  t.data.(i) <- x

let to_array t = Array.sub t.data 0 t.len

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done
