(** Deterministic, splittable pseudo-random number generation.

    The generator is xoshiro256++ (Blackman–Vigna). Experiments in this
    repository never use OCaml's global [Random] state: every consumer
    receives an explicit [Rng.t], and identical seeds reproduce identical
    experiment tables bit-for-bit. *)

type t
(** Mutable generator state. *)

val create : ?seed:int -> unit -> t
(** [create ~seed ()] builds a generator from a 63-bit seed (default 42).
    The seed is expanded with splitmix64, so nearby seeds give unrelated
    streams. *)

val copy : t -> t
(** Independent copy of the current state. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of [t]'s subsequent output. Used to give
    each trial of an experiment its own stream so that per-trial work is
    order-independent. *)

val bits64 : t -> int64
(** Next raw 64 random bits. *)

val float : t -> float -> float
(** [float t b] is uniform in [[0, b)]. Requires [b > 0]. *)

val uniform : t -> lo:float -> hi:float -> float
(** Uniform in [[lo, hi)]. Requires [lo < hi]. *)

val int : t -> int -> int
(** [int t n] is uniform in [[0, n-1]]. Requires [0 < n]. *)

val bool : t -> bool

val normal : t -> mu:float -> sigma:float -> float
(** Gaussian via the Marsaglia polar method. *)

val truncated_normal : t -> mu:float -> sigma:float -> lo:float -> float
(** Gaussian conditioned on the result being [>= lo], by rejection. *)

val exponential : t -> rate:float -> float
(** Exponential with rate [rate > 0]. *)

val power_law : t -> alpha:float -> xmin:float -> float
(** Pareto-type power law on [[xmin, ∞)] with density proportional to
    [x^-alpha]. Requires [alpha > 1] and [xmin > 0]. *)

val two_point : t -> gamma:float -> lo:float -> hi:float -> float
(** [lo] with probability [gamma], else [hi]. *)

val simplex : t -> int -> float array
(** [simplex t k] is a uniform random point on the [k-1]-simplex: [k]
    nonnegative values summing to 1 (Dirichlet(1,…,1)), used by the
    random-allocation heuristics. Requires [k >= 1]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
