(** Minimal growable vector (OCaml 5.2's [Dynarray] arrives after the
    5.1 toolchain this project targets). Amortized O(1) [push]. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val push : 'a t -> 'a -> unit

val get : 'a t -> int -> 'a
(** Raises [Invalid_argument] when out of bounds. *)

val set : 'a t -> int -> 'a -> unit

val to_array : 'a t -> 'a array
(** Fresh array of the current contents. *)

val iter : ('a -> unit) -> 'a t -> unit
