let bisect ?(iters = 200) ~f ~lo ~hi () =
  if not (lo <= hi) then invalid_arg "Root.bisect: need lo <= hi";
  let lo = ref lo and hi = ref hi in
  for _ = 1 to iters do
    let mid = 0.5 *. (!lo +. !hi) in
    if f mid >= 0.0 then lo := mid else hi := mid
  done;
  0.5 *. (!lo +. !hi)

let bisect_int ~f ~lo ~hi =
  if lo > hi then invalid_arg "Root.bisect_int: need lo <= hi";
  let lo = ref lo and hi = ref hi in
  while !lo < !hi do
    let mid = !lo + ((!hi - !lo) / 2) in
    if f mid then hi := mid else lo := mid + 1
  done;
  !lo

let fixed_budget ~demand ~budget ~max_price =
  bisect ~f:(fun price -> demand price -. budget) ~lo:0.0 ~hi:max_price ()
