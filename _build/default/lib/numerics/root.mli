(** Root bracketing and bisection on monotone functions, the numeric
    engine behind water-filling (finding the common marginal value λ). *)

val bisect :
  ?iters:int -> f:(float -> float) -> lo:float -> hi:float -> unit -> float
(** [bisect ~f ~lo ~hi ()] finds [x] in [[lo, hi]] with [f x = 0] assuming
    [f] is nonincreasing with [f lo >= 0 >= f hi] (the water-filling
    orientation: excess demand decreases as the price rises). Performs
    [iters] (default 200) halvings, enough to resolve any double-precision
    bracket, and returns the midpoint of the final bracket. *)

val bisect_int : f:(int -> bool) -> lo:int -> hi:int -> int
(** [bisect_int ~f ~lo ~hi] returns the smallest [x] in [[lo, hi]] with
    [f x = true], assuming [f] is monotone (false then true) and
    [f hi = true]. Requires [lo <= hi]. *)

val fixed_budget :
  demand:(float -> float) -> budget:float -> max_price:float -> float
(** [fixed_budget ~demand ~budget ~max_price] finds a price [λ >= 0] such
    that [demand λ = budget], where [demand] is nonincreasing in [λ],
    [demand 0 >= budget] and [demand max_price <= budget]. *)
