lib/numerics/root.mli:
