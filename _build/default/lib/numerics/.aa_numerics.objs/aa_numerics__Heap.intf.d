lib/numerics/heap.mli:
