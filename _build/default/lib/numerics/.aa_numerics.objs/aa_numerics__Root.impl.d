lib/numerics/root.ml:
