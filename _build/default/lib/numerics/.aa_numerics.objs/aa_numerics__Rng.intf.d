lib/numerics/rng.mli:
