lib/numerics/heap.ml: Array
