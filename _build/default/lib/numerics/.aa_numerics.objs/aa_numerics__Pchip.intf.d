lib/numerics/pchip.mli:
