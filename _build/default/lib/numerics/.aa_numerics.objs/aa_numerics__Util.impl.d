lib/numerics/util.ml: Array Float
