lib/numerics/pchip.ml: Array Float Util
