lib/numerics/dynvec.mli:
