lib/numerics/util.mli:
