lib/numerics/convex.ml: Array Float List
