lib/numerics/convex.mli:
