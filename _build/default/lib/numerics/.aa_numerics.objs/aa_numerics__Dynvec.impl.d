lib/numerics/dynvec.ml: Array
