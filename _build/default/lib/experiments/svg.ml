type series = { label : string; points : (float * float) list }

type chart = {
  title : string;
  xlabel : string;
  ylabel : string;
  series : series list;
  width : int;
  height : int;
  y_from_zero : bool;
}

let default ~title ~xlabel ~ylabel series =
  { title; xlabel; ylabel; series; width = 640; height = 420; y_from_zero = false }

(* categorical palette, dark-on-white *)
let colors = [| "#1668a8"; "#c8501e"; "#2b8a3e"; "#8a2be2"; "#b8860b"; "#c2185b" |]

let nice_ticks ~lo ~hi count =
  if not (lo < hi) then invalid_arg "Svg.nice_ticks: need lo < hi";
  let count = max 2 count in
  let raw_step = (hi -. lo) /. float_of_int count in
  let mag = 10.0 ** Float.floor (log10 raw_step) in
  let norm = raw_step /. mag in
  let step = (if norm < 1.5 then 1.0 else if norm < 3.5 then 2.0 else if norm < 7.5 then 5.0 else 10.0) *. mag in
  let first = Float.ceil (lo /. step) *. step in
  let rec go acc t =
    (* the tiny slack only absorbs float error, never adds a tick past hi *)
    if t > hi +. (1e-9 *. step) then List.rev acc
    else go ((if Float.abs t < 1e-12 *. step then 0.0 else t) :: acc) (t +. step)
  in
  go [] first

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render c =
  let all_points = List.concat_map (fun s -> s.points) c.series in
  if all_points = [] then invalid_arg "Svg.render: no data points";
  let xs = List.map fst all_points and ys = List.map snd all_points in
  let xmin = List.fold_left Float.min (List.hd xs) xs in
  let xmax = List.fold_left Float.max (List.hd xs) xs in
  let ymin0 = List.fold_left Float.min (List.hd ys) ys in
  let ymax0 = List.fold_left Float.max (List.hd ys) ys in
  let ymin = if c.y_from_zero then 0.0 else ymin0 in
  (* pad degenerate ranges so projection stays finite *)
  let xmin, xmax = if xmax > xmin then (xmin, xmax) else (xmin -. 1.0, xmax +. 1.0) in
  let ymin, ymax =
    if ymax0 > ymin then (ymin, ymax0) else (ymin -. 1.0, ymax0 +. 1.0)
  in
  let pad = 0.04 *. (ymax -. ymin) in
  let ymin = (if c.y_from_zero then 0.0 else ymin -. pad) and ymax = ymax +. pad in
  let left = 62 and right = 160 and top = 40 and bottom = 48 in
  let pw = float_of_int (c.width - left - right) in
  let ph = float_of_int (c.height - top - bottom) in
  let px x = float_of_int left +. (pw *. (x -. xmin) /. (xmax -. xmin)) in
  let py y = float_of_int top +. (ph *. (1.0 -. ((y -. ymin) /. (ymax -. ymin)))) in
  let buf = Buffer.create 8192 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out
    "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" viewBox=\"0 0 %d \
     %d\" font-family=\"sans-serif\">\n"
    c.width c.height c.width c.height;
  out "<rect width=\"%d\" height=\"%d\" fill=\"white\"/>\n" c.width c.height;
  out "<text x=\"%d\" y=\"22\" font-size=\"15\" font-weight=\"bold\">%s</text>\n" left
    (escape c.title);
  (* gridlines + ticks *)
  List.iter
    (fun t ->
      let y = py t in
      out "<line x1=\"%d\" y1=\"%.1f\" x2=\"%d\" y2=\"%.1f\" stroke=\"#ddd\"/>\n" left y
        (c.width - right) y;
      out "<text x=\"%d\" y=\"%.1f\" font-size=\"11\" text-anchor=\"end\">%g</text>\n"
        (left - 6) (y +. 4.0) t)
    (nice_ticks ~lo:ymin ~hi:ymax 6);
  List.iter
    (fun t ->
      let x = px t in
      out "<line x1=\"%.1f\" y1=\"%d\" x2=\"%.1f\" y2=\"%d\" stroke=\"#eee\"/>\n" x top x
        (c.height - bottom);
      out
        "<text x=\"%.1f\" y=\"%d\" font-size=\"11\" text-anchor=\"middle\">%g</text>\n" x
        (c.height - bottom + 16) t)
    (nice_ticks ~lo:xmin ~hi:xmax 8);
  (* axes *)
  out
    "<line x1=\"%d\" y1=\"%d\" x2=\"%d\" y2=\"%d\" stroke=\"black\" stroke-width=\"1.2\"/>\n"
    left (c.height - bottom) (c.width - right) (c.height - bottom);
  out
    "<line x1=\"%d\" y1=\"%d\" x2=\"%d\" y2=\"%d\" stroke=\"black\" stroke-width=\"1.2\"/>\n"
    left top left (c.height - bottom);
  out
    "<text x=\"%d\" y=\"%d\" font-size=\"12\" text-anchor=\"middle\">%s</text>\n"
    (left + (int_of_float pw / 2))
    (c.height - 10) (escape c.xlabel);
  out
    "<text x=\"16\" y=\"%d\" font-size=\"12\" text-anchor=\"middle\" transform=\"rotate(-90 \
     16 %d)\">%s</text>\n"
    (top + (int_of_float ph / 2))
    (top + (int_of_float ph / 2))
    (escape c.ylabel);
  (* series *)
  List.iteri
    (fun k s ->
      let color = colors.(k mod Array.length colors) in
      let pts = List.sort compare s.points in
      let path =
        String.concat " " (List.map (fun (x, y) -> Printf.sprintf "%.1f,%.1f" (px x) (py y)) pts)
      in
      if path <> "" then
        out "<polyline points=\"%s\" fill=\"none\" stroke=\"%s\" stroke-width=\"1.8\"/>\n"
          path color;
      List.iter
        (fun (x, y) ->
          out "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"2.6\" fill=\"%s\"/>\n" (px x) (py y) color)
        pts;
      (* legend entry *)
      let ly = top + 8 + (k * 18) in
      out "<line x1=\"%d\" y1=\"%d\" x2=\"%d\" y2=\"%d\" stroke=\"%s\" stroke-width=\"2\"/>\n"
        (c.width - right + 12)
        ly
        (c.width - right + 34)
        ly color;
      out "<text x=\"%d\" y=\"%d\" font-size=\"11\">%s</text>\n"
        (c.width - right + 40)
        (ly + 4) (escape s.label))
    c.series;
  out "</svg>\n";
  Buffer.contents buf

let of_series (s : Run.series) =
  let pick f = List.map (fun (p : Run.point) -> (p.x, f p.mean)) s.points in
  default ~title:(s.id ^ " — " ^ s.title) ~xlabel:s.xlabel ~ylabel:"Algo2 / comparator"
    [
      { label = "vs SO"; points = pick (fun r -> r.vs_so) };
      { label = "vs UU"; points = pick (fun r -> r.vs_uu) };
      { label = "vs UR"; points = pick (fun r -> r.vs_ur) };
      { label = "vs RU"; points = pick (fun r -> r.vs_ru) };
      { label = "vs RR"; points = pick (fun r -> r.vs_rr) };
    ]
