open Aa_numerics
open Aa_core

type ratios = { vs_so : float; vs_uu : float; vs_ur : float; vs_ru : float; vs_rr : float }

type point = {
  x : float;
  mean : ratios;
  ci95 : ratios;
  worst_vs_so : float;
  algo1_vs_so : float;
  guarantee_violations : int;
  trials : int;
}

type series = { id : string; title : string; xlabel : string; points : point list }

(* One trial: returns the ratios plus Algorithm 1's own ratio. Algorithm
   1/2 outputs get the per-server re-allocation polish (see Refine);
   heuristics keep their own allocation rule. *)
let trial ~rng ~run_algo1 (inst : Instance.t) =
  let lin = Linearized.make inst in
  let fhat = lin.superopt.utility in
  let score a = Assignment.utility inst (Refine.per_server inst a) in
  let a2 = score (Algo2.solve ~linearized:lin inst) in
  let a1 = if run_algo1 then score (Algo1.solve ~linearized:lin inst) else Float.nan in
  let value algo = Assignment.utility inst (Solver.solve ~rng ~linearized:lin algo inst) in
  let uu = value Solver.Uu in
  let ur = value Solver.Ur in
  let ru = value Solver.Ru in
  let rr = value Solver.Rr in
  let safe_div a b = if b > 0.0 then a /. b else 1.0 in
  ( {
      vs_so = safe_div a2 fhat;
      vs_uu = safe_div a2 uu;
      vs_ur = safe_div a2 ur;
      vs_ru = safe_div a2 ru;
      vs_rr = safe_div a2 rr;
    },
    safe_div a1 fhat )

let run_series ?(trials = 1000) ?(seed = 42) ?(run_algo1 = true) ~id ~title ~xlabel ~xs
    build =
  let master = Rng.create ~seed () in
  let points =
    List.map
      (fun x ->
        let acc_so = Stats.Online.create () in
        let acc_uu = Stats.Online.create () in
        let acc_ur = Stats.Online.create () in
        let acc_ru = Stats.Online.create () in
        let acc_rr = Stats.Online.create () in
        let acc_a1 = Stats.Online.create () in
        let violations = ref 0 in
        let point_rng = Rng.split master in
        for _ = 1 to trials do
          let rng = Rng.split point_rng in
          let inst = build ~x rng in
          let run_algo1 = run_algo1 && Instance.n_threads inst <= 400 in
          let r, a1 = trial ~rng ~run_algo1 inst in
          Stats.Online.add acc_so r.vs_so;
          Stats.Online.add acc_uu r.vs_uu;
          Stats.Online.add acc_ur r.vs_ur;
          Stats.Online.add acc_ru r.vs_ru;
          Stats.Online.add acc_rr r.vs_rr;
          if not (Float.is_nan a1) then Stats.Online.add acc_a1 a1;
          if r.vs_so < Bounds.alpha -. 1e-9 then incr violations
        done;
        let mean =
          {
            vs_so = Stats.Online.mean acc_so;
            vs_uu = Stats.Online.mean acc_uu;
            vs_ur = Stats.Online.mean acc_ur;
            vs_ru = Stats.Online.mean acc_ru;
            vs_rr = Stats.Online.mean acc_rr;
          }
        in
        let half acc = (Stats.Online.summary acc).Stats.ci95 in
        let ci95 =
          {
            vs_so = half acc_so;
            vs_uu = half acc_uu;
            vs_ur = half acc_ur;
            vs_ru = half acc_ru;
            vs_rr = half acc_rr;
          }
        in
        {
          x;
          mean;
          ci95;
          worst_vs_so = Stats.Online.min acc_so;
          algo1_vs_so =
            (if Stats.Online.count acc_a1 > 0 then Stats.Online.mean acc_a1 else Float.nan);
          guarantee_violations = !violations;
          trials;
        })
      xs
  in
  { id; title; xlabel; points }

let pp_series ppf s =
  Format.fprintf ppf "@[<v># %s — %s@," s.id s.title;
  Format.fprintf ppf "# ratios are Algo2 utility / comparator utility (mean over trials)@,";
  Format.fprintf ppf "%-8s %10s %10s %10s %10s %10s %12s %10s %6s@," s.xlabel "vs_SO"
    "vs_UU" "vs_UR" "vs_RU" "vs_RR" "worst_vs_SO" "Algo1_SO" "viol";
  List.iter
    (fun p ->
      Format.fprintf ppf "%-8g %10.4f %10.4f %10.4f %10.4f %10.4f %12.4f %10.4f %6d@,"
        p.x p.mean.vs_so p.mean.vs_uu p.mean.vs_ur p.mean.vs_ru p.mean.vs_rr
        p.worst_vs_so p.algo1_vs_so p.guarantee_violations)
    s.points;
  Format.fprintf ppf "@]"
