(** Self-contained SVG line charts — regenerate the paper's figures as
    images, with no plotting dependency.

    Produces a single-[<svg>] document with axes, ticks, gridlines, one
    polyline per series, point markers and a legend. Layout follows the
    paper's figures: the x axis is the sweep parameter, the y axis the
    utility ratio. *)

type series = {
  label : string;
  points : (float * float) list;  (** (x, y), any order *)
}

type chart = {
  title : string;
  xlabel : string;
  ylabel : string;
  series : series list;
  width : int;  (** pixels *)
  height : int;
  y_from_zero : bool;
      (** force the y axis to start at 0 rather than the data minimum *)
}

val default : title:string -> xlabel:string -> ylabel:string -> series list -> chart
(** 640 x 420, y axis from the data range. *)

val render : chart -> string
(** The SVG document as a string. Raises [Invalid_argument] when no
    series has at least one point. *)

val of_series : Run.series -> chart
(** Chart with one line per comparator (vs SO, UU, UR, RU, RR), matching
    the paper's figure layout. *)

val nice_ticks : lo:float -> hi:float -> int -> float list
(** Round tick positions covering [[lo, hi]] with about the requested
    count (exposed for tests). Requires [lo < hi]. *)
