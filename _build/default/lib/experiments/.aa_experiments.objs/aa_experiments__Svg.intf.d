lib/experiments/svg.mli: Run
