lib/experiments/run.ml: Aa_core Aa_numerics Algo1 Algo2 Assignment Bounds Float Format Instance Linearized List Refine Rng Solver Stats
