lib/experiments/figures.mli: Run
