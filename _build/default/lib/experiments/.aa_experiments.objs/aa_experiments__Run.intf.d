lib/experiments/run.mli: Aa_core Aa_numerics Format
