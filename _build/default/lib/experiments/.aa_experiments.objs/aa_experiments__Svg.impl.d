lib/experiments/svg.ml: Array Buffer Float List Printf Run String
