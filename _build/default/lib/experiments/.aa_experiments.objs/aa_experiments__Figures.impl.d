lib/experiments/figures.ml: Aa_workload Float Gen List Run String
