(** Trace-driven set-associative LRU cache with way-partitioning — the
    mechanism behind shared-cache partitioning on multicores (Qureshi &
    Patt's UCP, the paper's reference [4]). A thread bound to a
    partition of [k] ways behaves exactly as if it had a private cache
    of [k * sets] lines, which is what lets the AA model treat cache as
    a divisible per-thread resource.

    Addresses are in units of cache lines; the set index is the address
    modulo [sets] and the rest is the tag. *)

type t

val create : sets:int -> ways:int -> t
(** A cache (or cache partition) with the given geometry. Requires both
    positive. *)

val sets : t -> int
val ways : t -> int

val capacity_lines : t -> int
(** [sets * ways]. *)

val access : t -> int -> bool
(** [access t addr] performs one load; returns [true] on hit. LRU
    replacement within the set. *)

type stats = { accesses : int; hits : int; misses : int }

val stats : t -> stats
val reset_stats : t -> unit
val miss_rate : t -> float
(** Misses per access since the last reset; [nan] with no accesses. *)
