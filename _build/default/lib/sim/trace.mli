(** Synthetic memory-reference traces for driving {!Llcache}.

    Each generator is a closure producing the next line address; all
    randomness comes from an explicit {!Aa_numerics.Rng.t}, so traces
    are reproducible. Addresses are in cache-line units. *)

type t = unit -> int
(** Next line address. *)

val sequential : stride:int -> unit -> t
(** Streaming access: 0, stride, 2*stride, … — no reuse, worst case for
    any cache. Requires [stride >= 1]. *)

val working_set : Aa_numerics.Rng.t -> size:int -> t
(** Uniform references into a working set of [size] lines: miss rate
    falls off a cliff once the partition holds the working set.
    Requires [size >= 1]. *)

val zipf : Aa_numerics.Rng.t -> alpha:float -> universe:int -> t
(** Zipf-distributed references over [universe] lines (rank-[k] line has
    probability ∝ 1/k^alpha): smooth, concave-ish miss-rate curves like
    real workloads. Requires [alpha > 0] and [universe >= 1]. *)

val mixed : Aa_numerics.Rng.t -> hot:int -> cold:int -> hot_fraction:float -> t
(** Hot/cold mixture: with probability [hot_fraction] touch one of [hot]
    lines, otherwise one of [cold] lines beyond them. *)

val take : t -> int -> int array
(** Materialize a prefix (for tests). *)
