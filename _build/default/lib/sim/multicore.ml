open Aa_numerics
open Aa_workload

type thread_result = {
  label : string;
  core : int;
  cache : float;
  instructions : int;
  misses : int;
  achieved_ipc : float;
  predicted_ipc : float;
}

type result = {
  threads : thread_result array;
  total_throughput : float;
  predicted_throughput : float;
}

let run_thread ~rng ~cycles (p : Cache.profile) ~core ~cache =
  let miss_prob = Cache.mpki p cache /. 1000.0 in
  let budget = float_of_int cycles in
  let used = ref 0.0 in
  let instructions = ref 0 in
  let misses = ref 0 in
  while !used < budget do
    let miss = Rng.float rng 1.0 < miss_prob in
    let cost = p.base_cpi +. (if miss then p.miss_penalty else 0.0) in
    used := !used +. cost;
    if !used <= budget then begin
      incr instructions;
      if miss then incr misses
    end
  done;
  {
    label = p.label;
    core;
    cache;
    instructions = !instructions;
    misses = !misses;
    achieved_ipc = float_of_int !instructions /. budget;
    predicted_ipc = Cache.ipc p cache;
  }

let run ~rng ~cycles ~profiles (assignment : Aa_core.Assignment.t) =
  if cycles <= 0 then invalid_arg "Multicore.run: cycles must be positive";
  let n = Aa_core.Assignment.n_threads assignment in
  if Array.length profiles <> n then
    invalid_arg "Multicore.run: one profile per assigned thread required";
  let threads =
    Array.init n (fun i ->
        run_thread ~rng ~cycles profiles.(i) ~core:assignment.server.(i)
          ~cache:assignment.alloc.(i))
  in
  {
    threads;
    total_throughput = Util.sum_by (fun t -> t.achieved_ipc) threads;
    predicted_throughput = Util.sum_by (fun t -> t.predicted_ipc) threads;
  }
