open Aa_numerics

type t = unit -> int

let sequential ~stride () =
  if stride < 1 then invalid_arg "Trace.sequential: stride must be >= 1";
  let next = ref 0 in
  fun () ->
    let a = !next in
    next := !next + stride;
    a

let working_set rng ~size =
  if size < 1 then invalid_arg "Trace.working_set: size must be >= 1";
  fun () -> Rng.int rng size

let zipf rng ~alpha ~universe =
  if not (alpha > 0.0) then invalid_arg "Trace.zipf: alpha must be positive";
  if universe < 1 then invalid_arg "Trace.zipf: universe must be >= 1";
  (* cumulative table; universes used in tests/examples are small enough
     for O(universe) setup and O(log universe) sampling *)
  let weights = Array.init universe (fun k -> 1.0 /. (float_of_int (k + 1) ** alpha)) in
  let cdf = Array.make universe 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i w ->
      acc := !acc +. w;
      cdf.(i) <- !acc)
    weights;
  let total = !acc in
  fun () ->
    let u = Rng.float rng total in
    (* first index with cdf >= u *)
    Root.bisect_int ~f:(fun i -> cdf.(i) >= u) ~lo:0 ~hi:(universe - 1)

let mixed rng ~hot ~cold ~hot_fraction =
  if hot < 1 || cold < 1 then invalid_arg "Trace.mixed: hot and cold must be >= 1";
  if not (0.0 <= hot_fraction && hot_fraction <= 1.0) then
    invalid_arg "Trace.mixed: hot_fraction outside [0,1]";
  fun () ->
    if Rng.float rng 1.0 < hot_fraction then Rng.int rng hot else hot + Rng.int rng cold

let take t k = Array.init k (fun _ -> t ())
