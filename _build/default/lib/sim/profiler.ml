type point = { ways : int; lines : int; miss_rate : float }

let mrc ~trace ~sets ~max_ways ~warmup ~samples =
  if max_ways < 1 then invalid_arg "Profiler.mrc: max_ways must be >= 1";
  if samples < 1 then invalid_arg "Profiler.mrc: samples must be >= 1";
  let measure ways =
    let cache = Llcache.create ~sets ~ways in
    let next = trace () in
    for _ = 1 to warmup do
      ignore (Llcache.access cache (next ()))
    done;
    Llcache.reset_stats cache;
    for _ = 1 to samples do
      ignore (Llcache.access cache (next ()))
    done;
    Llcache.miss_rate cache
  in
  Array.init (max_ways + 1) (fun ways ->
      if ways = 0 then { ways = 0; lines = 0; miss_rate = 1.0 }
      else { ways; lines = ways * sets; miss_rate = measure ways })

let utility_of_mrc ~cache ~base_cpi ~miss_penalty ~accesses_per_kiloinstruction points =
  if Array.length points < 2 then invalid_arg "Profiler.utility_of_mrc: need >= 2 points";
  let max_lines =
    Array.fold_left (fun acc p -> max acc p.lines) 0 points |> float_of_int
  in
  if max_lines <= 0.0 then invalid_arg "Profiler.utility_of_mrc: no nonzero partition";
  let ipc miss_rate =
    1.0
    /. (base_cpi +. (accesses_per_kiloinstruction *. miss_rate *. miss_penalty /. 1000.0))
  in
  let pts =
    Array.map
      (fun p -> (cache *. float_of_int p.lines /. max_lines, ipc p.miss_rate))
      points
  in
  Array.sort (fun (x1, _) (x2, _) -> compare x1 x2) pts;
  (* LRU's stack property makes the true curve monotone; repair any
     finite-sample noise with a running max so the utility model holds *)
  let best = ref 0.0 in
  let pts =
    Array.map
      (fun (x, y) ->
        best := Float.max !best y;
        (x, !best))
      pts
  in
  Aa_utility.Sampled.of_points pts
