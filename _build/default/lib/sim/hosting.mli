(** Discrete-event web-hosting-center simulator — the paper's second
    motivating application (§I): a host runs many service threads across
    identical machines and divides each machine's capacity among its
    services to maximize revenue.

    Each service is an M/M/1 station: Poisson request arrivals,
    exponential service times whose rate scales linearly with the
    resource the AA assignment granted. The revenue model behind the
    utility function is [revenue_per_request * expected throughput],
    with expected throughput [min arrival_rate (capacity_granted / work)]
    — a capped-linear concave utility. The simulator measures realized
    throughput, latency and revenue so assignments can be compared on
    simulated ground truth rather than on the model. *)

type service = {
  label : string;
  arrival_rate : float;  (** requests per second, Poisson *)
  work : float;  (** resource-seconds of work per request *)
  revenue : float;  (** income per completed request *)
}

val utility : cap:float -> service -> Aa_utility.Utility.t
(** The capped-linear revenue-rate utility used to drive AA. *)

val instance :
  machines:int -> capacity:float -> service array -> Aa_core.Instance.t

type stats = {
  label : string;
  arrived : int;
  completed : int;
  throughput : float;  (** completions per second *)
  revenue_rate : float;  (** revenue per second *)
  mean_latency : float;  (** mean sojourn of completed requests; [nan] if none *)
  predicted_revenue_rate : float;  (** the utility model's prediction *)
}

type result = {
  services : stats array;
  total_revenue_rate : float;
  predicted_total : float;
}

val simulate :
  rng:Aa_numerics.Rng.t ->
  duration:float ->
  services:service array ->
  Aa_core.Assignment.t ->
  result
(** [simulate ~rng ~duration ~services assignment] runs all services for
    [duration] simulated seconds; service [i] is processed at rate
    [assignment.alloc.(i) / work_i] requests per second (0 allocation =
    the service starves). Requires [duration > 0] and one service per
    assigned thread. *)
