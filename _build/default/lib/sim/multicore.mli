(** Stochastic multicore execution simulator.

    Validates end-to-end that utilities derived from miss-rate curves
    ({!Aa_workload.Cache}) translate into real throughput once an AA
    assignment is enacted: every thread executes instructions whose cost
    is [base_cpi] cycles plus a miss penalty drawn per-instruction with
    probability [mpki/1000], with the miss rate determined by the cache
    partition the assignment gave the thread. Cores are independent once
    partitions are fixed (partitioned LLC, one thread per partition), so
    measured IPC should converge to the model's prediction — except where
    the concave-envelope repair chorded over a convex region of the IPC
    curve, a gap the simulator makes visible. *)

type thread_result = {
  label : string;
  core : int;
  cache : float;  (** partition size the assignment granted *)
  instructions : int;  (** instructions retired in the simulated window *)
  misses : int;
  achieved_ipc : float;
  predicted_ipc : float;  (** model IPC at this partition size *)
}

type result = {
  threads : thread_result array;
  total_throughput : float;  (** sum of achieved IPC *)
  predicted_throughput : float;
}

val run :
  rng:Aa_numerics.Rng.t ->
  cycles:int ->
  profiles:Aa_workload.Cache.profile array ->
  Aa_core.Assignment.t ->
  result
(** [run ~rng ~cycles ~profiles assignment] simulates every thread for a
    window of [cycles] cycles under its assigned cache partition.
    Requires one profile per assigned thread and [cycles > 0]. *)
