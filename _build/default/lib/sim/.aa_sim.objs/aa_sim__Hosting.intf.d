lib/sim/hosting.mli: Aa_core Aa_numerics Aa_utility
