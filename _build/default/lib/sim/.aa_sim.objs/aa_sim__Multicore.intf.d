lib/sim/multicore.mli: Aa_core Aa_numerics Aa_workload
