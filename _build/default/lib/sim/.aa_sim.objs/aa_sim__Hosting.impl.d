lib/sim/hosting.ml: Aa_core Aa_numerics Aa_utility Array Float Plc Queue Rng Util Utility
