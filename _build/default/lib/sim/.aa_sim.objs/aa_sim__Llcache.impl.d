lib/sim/llcache.ml: Array Float List
