lib/sim/multicore.ml: Aa_core Aa_numerics Aa_workload Array Cache Rng Util
