lib/sim/trace.mli: Aa_numerics
