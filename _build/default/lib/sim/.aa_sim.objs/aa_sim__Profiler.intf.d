lib/sim/profiler.mli: Aa_utility Trace
