lib/sim/profiler.ml: Aa_utility Array Float Llcache
