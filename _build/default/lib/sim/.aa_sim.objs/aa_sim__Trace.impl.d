lib/sim/trace.ml: Aa_numerics Array Rng Root
