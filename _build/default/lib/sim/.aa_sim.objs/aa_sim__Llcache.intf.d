lib/sim/llcache.mli:
