open Aa_numerics
open Aa_utility

type service = { label : string; arrival_rate : float; work : float; revenue : float }

let utility ~cap s =
  if not (s.arrival_rate > 0.0 && s.work > 0.0 && s.revenue >= 0.0) then
    invalid_arg "Hosting.utility: service parameters must be positive";
  (* Revenue rate = revenue * min(arrival, c / work): capped linear with
     slope revenue/work and knee arrival*work. *)
  let knee = Float.min cap (s.arrival_rate *. s.work) in
  Utility.of_plc (Plc.capped_linear ~cap ~slope:(s.revenue /. s.work) ~knee)

let instance ~machines ~capacity services =
  Aa_core.Instance.create ~servers:machines ~capacity
    (Array.map (fun s -> utility ~cap:capacity s) services)

type stats = {
  label : string;
  arrived : int;
  completed : int;
  throughput : float;
  revenue_rate : float;
  mean_latency : float;
  predicted_revenue_rate : float;
}

type result = { services : stats array; total_revenue_rate : float; predicted_total : float }

(* One M/M/1 station simulated in isolation (stations do not interact
   once allocations are fixed). Event loop with two pending times. *)
let simulate_service ~rng ~duration (s : service) ~alloc =
  let mu = alloc /. s.work in
  let next_arrival = ref (Rng.exponential rng ~rate:s.arrival_rate) in
  let queue = Queue.create () in
  let next_departure = ref Float.infinity in
  let now = ref 0.0 in
  let arrived = ref 0 and completed = ref 0 in
  let latency_sum = ref 0.0 in
  let schedule_departure () =
    if (not (Queue.is_empty queue)) && !next_departure = Float.infinity && mu > 0.0 then
      next_departure := !now +. Rng.exponential rng ~rate:mu
  in
  while Float.min !next_arrival !next_departure <= duration do
    if !next_arrival <= !next_departure then begin
      now := !next_arrival;
      incr arrived;
      Queue.push !now queue;
      next_arrival := !now +. Rng.exponential rng ~rate:s.arrival_rate;
      schedule_departure ()
    end
    else begin
      now := !next_departure;
      let entered = Queue.pop queue in
      incr completed;
      latency_sum := !latency_sum +. (!now -. entered);
      next_departure := Float.infinity;
      schedule_departure ()
    end
  done;
  let throughput = float_of_int !completed /. duration in
  {
    label = s.label;
    arrived = !arrived;
    completed = !completed;
    throughput;
    revenue_rate = throughput *. s.revenue;
    mean_latency =
      (if !completed = 0 then Float.nan else !latency_sum /. float_of_int !completed);
    predicted_revenue_rate = s.revenue *. Float.min s.arrival_rate mu;
  }

let simulate ~rng ~duration ~services (assignment : Aa_core.Assignment.t) =
  if not (duration > 0.0) then invalid_arg "Hosting.simulate: duration must be positive";
  let n = Aa_core.Assignment.n_threads assignment in
  if Array.length services <> n then
    invalid_arg "Hosting.simulate: one service per assigned thread required";
  let stats =
    Array.init n (fun i ->
        simulate_service ~rng ~duration services.(i) ~alloc:assignment.alloc.(i))
  in
  {
    services = stats;
    total_revenue_rate = Util.sum_by (fun s -> s.revenue_rate) stats;
    predicted_total = Util.sum_by (fun s -> s.predicted_revenue_rate) stats;
  }
