(* Per set we keep the resident tags as an LRU stack: head = most
   recently used. Sets are small (<= ways elements), so list surgery is
   cheaper and simpler than a doubly-linked intrusive structure. *)

type t = {
  sets : int;
  ways : int;
  lru : int list array; (* resident tags, most recent first *)
  mutable n_accesses : int;
  mutable n_hits : int;
}

let create ~sets ~ways =
  if sets <= 0 || ways <= 0 then invalid_arg "Llcache.create: sets and ways must be positive";
  { sets; ways; lru = Array.make sets []; n_accesses = 0; n_hits = 0 }

let sets t = t.sets
let ways t = t.ways
let capacity_lines t = t.sets * t.ways

let access t addr =
  let addr = abs addr in
  let set = addr mod t.sets in
  let tag = addr / t.sets in
  t.n_accesses <- t.n_accesses + 1;
  let resident = t.lru.(set) in
  let hit = List.mem tag resident in
  if hit then begin
    t.n_hits <- t.n_hits + 1;
    t.lru.(set) <- tag :: List.filter (fun x -> x <> tag) resident
  end
  else begin
    let resident = tag :: resident in
    t.lru.(set) <-
      (if List.length resident > t.ways then List.filteri (fun i _ -> i < t.ways) resident
       else resident)
  end;
  hit

type stats = { accesses : int; hits : int; misses : int }

let stats t =
  { accesses = t.n_accesses; hits = t.n_hits; misses = t.n_accesses - t.n_hits }

let reset_stats t =
  t.n_accesses <- 0;
  t.n_hits <- 0

let miss_rate t =
  if t.n_accesses = 0 then Float.nan
  else float_of_int (t.n_accesses - t.n_hits) /. float_of_int t.n_accesses
