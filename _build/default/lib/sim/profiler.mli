(** Miss-rate-curve measurement, closing the loop the paper describes in
    §II: "miss rate curves can be determined by running threads multiple
    times using different cache allocations" (Qureshi & Patt's UMON).

    A thread's trace is replayed against cache partitions of every
    possible way count; the measured miss rates become an IPC utility
    via {!Aa_utility.Sampled} (concave-envelope repaired), ready for the
    AA algorithms. This is the measured-curve counterpart of the
    analytic {!Aa_workload.Cache} model. *)

type point = { ways : int; lines : int; miss_rate : float }

val mrc :
  trace:(unit -> Trace.t) ->
  sets:int ->
  max_ways:int ->
  warmup:int ->
  samples:int ->
  point array
(** [mrc ~trace ~sets ~max_ways ~warmup ~samples] replays a fresh trace
    (one per partition size — [trace] must build identical generators)
    against partitions of 1..max_ways ways, discarding [warmup] accesses
    before counting [samples]. Also returns the ways-0 point (all
    misses). *)

val utility_of_mrc :
  cache:float ->
  base_cpi:float ->
  miss_penalty:float ->
  accesses_per_kiloinstruction:float ->
  point array ->
  Aa_utility.Utility.t
(** Convert measured miss rates into an IPC-vs-cache utility on
    [[0, cache]] (MB or any unit; points are scaled by [lines]):
    [ipc = 1 / (base_cpi + apki * miss_rate * miss_penalty / 1000)]. *)
