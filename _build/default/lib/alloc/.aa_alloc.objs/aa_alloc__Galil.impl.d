lib/alloc/galil.ml: Aa_numerics Aa_utility Array Float Fox Fun Root Util Utility
