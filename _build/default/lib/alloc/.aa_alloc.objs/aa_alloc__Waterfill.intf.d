lib/alloc/waterfill.mli: Aa_utility
