lib/alloc/mckp.mli: Aa_utility
