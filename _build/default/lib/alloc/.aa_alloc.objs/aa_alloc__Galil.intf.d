lib/alloc/galil.mli: Aa_utility
