lib/alloc/waterfill.ml: Aa_numerics Aa_utility Array Float Fun Root Util Utility
