lib/alloc/plc_greedy.mli: Aa_utility
