lib/alloc/dp.ml: Aa_utility Array Float Utility
