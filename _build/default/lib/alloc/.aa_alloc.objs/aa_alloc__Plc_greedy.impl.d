lib/alloc/plc_greedy.ml: Aa_numerics Aa_utility Array Float Fun Plc Util
