lib/alloc/fox.mli: Aa_utility
