lib/alloc/dp.mli: Aa_utility
