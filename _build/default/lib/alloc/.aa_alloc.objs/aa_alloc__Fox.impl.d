lib/alloc/fox.ml: Aa_numerics Aa_utility Array Float Fun Heap Util Utility
