lib/alloc/mckp.ml: Aa_numerics Aa_utility Array Float List Option Utility
