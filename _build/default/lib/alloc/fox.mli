(** Fox's greedy algorithm for discrete single-pool allocation.

    The resource comes in [budget] indivisible units; thread [i]'s utility
    is [Utility.eval f_i] at integer allocations. For concave utilities,
    repeatedly granting one unit to the thread with the largest marginal
    gain is optimal (Fox 1966, reference [12] of the paper). A binary heap
    brings the cost to [O(budget * log n)] — the [O(nC)] bound quoted in
    the paper is for the naive scan. *)

type result = {
  alloc : int array;  (** units granted to each thread *)
  utility : float;
}

val allocate : budget:int -> unit_size:float -> Aa_utility.Utility.t array -> result
(** [allocate ~budget ~unit_size fs] distributes [budget] units, each
    worth [unit_size] resource, to maximize total utility; thread [i]
    receives at most [ceil (cap f_i / unit_size)] units and its utility
    is evaluated at [min (units * unit_size) (cap f_i)]. Requires
    [budget >= 0], [unit_size > 0]. *)

val utility_of_units : unit_size:float -> Aa_utility.Utility.t -> int -> float
(** Utility of holding a given number of units. *)
