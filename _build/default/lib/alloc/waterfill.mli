(** Continuous water-filling allocation for arbitrary concave utilities.

    Implements the classic equal-marginal-value characterization behind
    Galil's [O(n (log C)^2)] single-server algorithm, generalized to any
    {!Aa_utility.Utility.t}: find a price [λ] such that when every thread
    takes [demand λ] (the largest allocation whose marginal value still
    exceeds [λ]) the budget is met, then resolve ties on the marginal
    plateau. Exact for smooth strictly-concave utilities up to bisection
    precision; for PLC utilities prefer {!Plc_greedy}, which is exact. *)

type result = {
  alloc : float array;
  utility : float;
  lambda : float;  (** clearing price found by bisection *)
}

val allocate : ?iters:int -> budget:float -> Aa_utility.Utility.t array -> result
(** [allocate ~budget fs] computes a water-filling allocation using
    [iters] bisection steps (default 200). The returned allocation is
    feasible ([sum <= budget], [0 <= c_i <= cap]) and saturates the
    budget whenever [sum_i cap_i >= budget]. Requires [budget >= 0]. *)
