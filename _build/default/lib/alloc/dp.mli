(** Exact discrete allocation by dynamic programming.

    [O(n * budget^2)] time and [O(n * budget)] space — far too slow for
    real instances, but an unconditional optimum that does not rely on
    concavity. Used as the test oracle for {!Fox}, {!Galil} and
    {!Plc_greedy}, and to find true optima of small AA instances. *)

type result = { alloc : int array; utility : float }

val allocate : budget:int -> unit_size:float -> Aa_utility.Utility.t array -> result
(** Same discrete model as {!Fox.allocate}: thread [i] holding [u] units
    has utility [eval f_i (min (u * unit_size) (cap f_i))]. Works for
    arbitrary (even non-concave) value tables. *)

val allocate_values : budget:int -> float array array -> result
(** Lower-level entry point: [values.(i).(u)] is thread [i]'s utility at
    [u] units, [0 <= u <= budget] (rows may be shorter; missing entries
    repeat the last). Rows must be nonempty with nonnegative entries. *)
