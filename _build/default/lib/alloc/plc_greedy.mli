(** Exact single-pool allocation for piecewise-linear concave utilities.

    Solves [max sum_i f_i(c_i)] subject to [sum_i c_i <= budget] and
    [0 <= c_i <= cap f_i], for PLC utilities, by pouring the budget into
    linear segments in order of decreasing slope (the continuous analogue
    of Fox's greedy, and exact here because each segment's marginal value
    is constant). Runs in [O(S log S)] for [S] total segments.

    This is the engine behind the paper's super-optimal allocation
    (Definition V.1) in all experiments. *)

type result = {
  alloc : float array;  (** optimal allocation per thread *)
  utility : float;  (** achieved total utility *)
  lambda : float;
      (** marginal price: slope of the last (partially) filled positive
          segment; [0] when the budget covers every useful segment *)
}

val allocate : ?exhaust:bool -> budget:float -> Aa_utility.Plc.t array -> result
(** [allocate ~budget fs] returns an optimal allocation.

    [exhaust] (default [true]) controls what happens to budget left over
    after all positive-slope segments are filled: when true it is handed
    out on flat segments (in thread-index order) so that the whole budget
    is used whenever [sum_i cap >= budget] — matching Lemma V.3's
    [sum ĉ_i = mC]; when false allocations are minimal. The achieved
    utility is identical either way.

    Requires [budget >= 0]. *)

val total_utility : Aa_utility.Plc.t array -> float array -> float
(** [total_utility fs alloc] = compensated [sum_i f_i(alloc.(i))]. *)
