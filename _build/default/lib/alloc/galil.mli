(** Galil-style discrete allocation by binary search on the marginal
    price (reference [16] of the paper).

    Solves the same discrete problem as {!Fox} but in
    [O(n (log budget)(log precision))] instead of [O(budget log n)]:
    bisect the marginal price [λ]; each thread's demand at a price is
    found by binary search over its (nonincreasing) marginal gains; the
    residual plateau at the critical price is granted unit-by-unit. This
    is the [O(n (log mC)^2)]-flavor primitive that makes Algorithm 2's
    overall bound possible. *)

type result = { alloc : int array; utility : float; lambda : float }

val allocate :
  ?iters:int -> budget:int -> unit_size:float -> Aa_utility.Utility.t array -> result
(** Same contract as {!Fox.allocate}; [iters] (default 100) bounds the
    price bisection. For concave utilities the result utility equals
    Fox's (allocations may differ within plateau ties). *)
