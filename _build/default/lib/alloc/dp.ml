open Aa_utility

type result = { alloc : int array; utility : float }

let allocate_values ~budget values =
  if budget < 0 then invalid_arg "Dp.allocate_values: negative budget";
  let n = Array.length values in
  Array.iter
    (fun row -> if Array.length row = 0 then invalid_arg "Dp.allocate_values: empty row")
    values;
  let value i u =
    let row = values.(i) in
    row.(min u (Array.length row - 1))
  in
  (* best.(b) = max utility using the first i threads and b units;
     choice.(i).(b) = units granted to thread i in that optimum. *)
  let best = Array.make (budget + 1) 0.0 in
  let choice = Array.make_matrix n (budget + 1) 0 in
  for i = 0 to n - 1 do
    let prev = Array.copy best in
    for b = 0 to budget do
      let top = ref (prev.(b) +. value i 0) in
      choice.(i).(b) <- 0;
      for u = 1 to b do
        let cand = prev.(b - u) +. value i u in
        if cand > !top then begin
          top := cand;
          choice.(i).(b) <- u
        end
      done;
      best.(b) <- !top
    done
  done;
  let alloc = Array.make n 0 in
  let b = ref budget in
  for i = n - 1 downto 0 do
    alloc.(i) <- choice.(i).(!b);
    b := !b - alloc.(i)
  done;
  { alloc; utility = best.(budget) }

let allocate ~budget ~unit_size fs =
  if not (unit_size > 0.0) then invalid_arg "Dp.allocate: unit_size must be positive";
  let values =
    Array.map
      (fun f ->
        Array.init (budget + 1) (fun u ->
            Utility.eval f (Float.min (float_of_int u *. unit_size) (Utility.cap f))))
      fs
  in
  allocate_values ~budget values
