open Aa_numerics
open Aa_utility

type result = { alloc : int array; utility : float; lambda : float }

let allocate ?(iters = 100) ~budget ~unit_size fs =
  if budget < 0 then invalid_arg "Galil.allocate: negative budget";
  if not (unit_size > 0.0) then invalid_arg "Galil.allocate: unit_size must be positive";
  let n = Array.length fs in
  let value i u = Fox.utility_of_units ~unit_size fs.(i) u in
  let max_units i = int_of_float (Float.ceil (Utility.cap fs.(i) /. unit_size)) in
  (* Marginal gain of thread i's u-th unit (1-based); nonincreasing in u. *)
  let marginal i u = value i u -. value i (u - 1) in
  (* Units demanded at price lambda: the largest u with marginal u >= lambda. *)
  let demand i lambda =
    let hi = max_units i in
    if hi = 0 || marginal i 1 < lambda then 0
    else if marginal i hi >= lambda then hi
    else Root.bisect_int ~f:(fun u -> marginal i (u + 1) < lambda) ~lo:1 ~hi:(hi - 1)
  in
  let total_demand lambda =
    let acc = ref 0 in
    for i = 0 to n - 1 do
      acc := !acc + demand i lambda
    done;
    !acc
  in
  let all_units = total_demand 0.0 in
  if all_units <= budget then begin
    let alloc = Array.init n max_units in
    let utility = Util.sum_by (fun i -> value i alloc.(i)) (Array.init n Fun.id) in
    { alloc; utility; lambda = 0.0 }
  end
  else begin
    (* Bracket and bisect the clearing price. *)
    let hi = ref 1.0 in
    let tries = ref 0 in
    while total_demand !hi > budget && !tries < 200 do
      hi := !hi *. 2.0;
      incr tries
    done;
    let lambda =
      Root.bisect ~iters
        ~f:(fun l -> float_of_int (total_demand l) -. float_of_int budget)
        ~lo:0.0 ~hi:!hi ()
    in
    (* Demands just above the clearing price fit in the budget; the gap is
       filled by units whose marginal sits on the plateau at [lambda]. *)
    let price_above = (lambda *. (1.0 +. 1e-9)) +. 1e-300 in
    let price_below = Float.max 0.0 (lambda *. (1.0 -. 1e-9)) in
    let alloc = Array.init n (fun i -> demand i price_above) in
    let used = Array.fold_left ( + ) 0 alloc in
    let remaining = ref (budget - used) in
    let i = ref 0 in
    while !remaining > 0 && !i < n do
      let target = demand !i price_below in
      while !remaining > 0 && alloc.(!i) < target do
        alloc.(!i) <- alloc.(!i) + 1;
        decr remaining
      done;
      incr i
    done;
    let utility = Util.sum_by (fun i -> value i alloc.(i)) (Array.init n Fun.id) in
    { alloc; utility; lambda }
  end
