(** Multiple-choice knapsack (MCKP), the discrete relative of
    single-server AA (paper §II): one item is picked from every class
    subject to a weight budget, maximizing total value. A utility
    function discretized at a grid of allocations is exactly a class, so
    MCKP solvers double as single-server AA solvers and cross-check the
    continuous allocators.

    Two solvers: exact DP ([O(total_items * budget)]) and the classic
    greedy over LP-dominance-pruned incremental items (Kellerer [17] /
    Gens–Levner [18]) — a 1/2-approximation in general and {e optimal}
    when every class is concave (incremental ratios nonincreasing), which
    is the case for classes derived from concave utilities. *)

type item = { weight : int; value : float }
(** Weights are nonnegative integers; values nonnegative. *)

type klass = item list
(** One choice set. An implicit [(0, 0.)] "take nothing" item is always
    available, so empty classes are allowed. *)

type solution = {
  choice : (int * float) array;
      (** per class, the chosen (weight, value); (0, 0.) when nothing *)
  weight : int;
  value : float;
}

val dp : budget:int -> klass array -> solution
(** Exact optimum. Requires [budget >= 0] and item weights within
    [[0, budget]] (heavier items are ignored). *)

val greedy : budget:int -> klass array -> solution
(** Dominance-pruned greedy. Optimal for classes that are concave {e and
    complete} (an item at every weight step — the condition the paper
    highlights in §II: "the ratios … in each item class is concave and
    there are items for every weight"), as produced by {!of_utility};
    at least half the optimum in general (the classic bound, restored by
    comparing with the best single item). *)

val of_utility : steps:int -> Aa_utility.Utility.t -> klass
(** Discretize a utility at [steps] evenly spaced allocations
    (weight [k] = [k/steps] of the domain), yielding a concave class. *)

val best_of_utilities :
  solver:(budget:int -> klass array -> solution) ->
  steps:int ->
  Aa_utility.Utility.t array ->
  solution
(** Single-server AA through the MCKP lens: discretize every utility with
    a shared grid of [steps] weights spanning one server, then solve. *)
