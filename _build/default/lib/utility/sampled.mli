(** Utilities constructed from measured sample points.

    The paper's workload generator fixes three anchor points and smooths
    them with Matlab's PCHIP; real systems would instead measure a
    thread's performance at a handful of allocations (e.g. miss-rate
    curves from cache-partitioning hardware). Either way the raw
    interpolant is not guaranteed concave, so this module samples it
    densely and takes the upper concave envelope, producing an exact
    {!Plc.t} that satisfies the model assumptions. *)

val of_points : ?resolution:int -> (float * float) array -> Utility.t
(** [of_points pts] interpolates the anchor points with PCHIP, samples
    the interpolant at [resolution] points (default 128) and returns the
    upper concave envelope as a PLC utility. Requirements: at least two
    points, x strictly increasing starting at 0, y nonnegative
    nondecreasing. *)

val envelope_deviation : ?resolution:int -> (float * float) array -> float
(** Maximum absolute difference between the PCHIP interpolant and the
    concave envelope actually used, normalized by the peak value —
    measures how much the concavity repair distorts the generated
    utility (reported in EXPERIMENTS.md; typically well below 1%). *)
