lib/utility/utility.ml: Aa_numerics Array Convex Float Format Plc Printf Root Util
