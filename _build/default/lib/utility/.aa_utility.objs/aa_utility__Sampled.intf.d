lib/utility/sampled.mli: Utility
