lib/utility/plc.mli: Format
