lib/utility/plc.ml: Aa_numerics Array Convex Float Format List Root Util
