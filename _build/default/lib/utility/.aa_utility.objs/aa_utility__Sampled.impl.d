lib/utility/sampled.ml: Aa_numerics Array Convex Float Pchip Plc Utility
