lib/utility/utility.mli: Format Plc
