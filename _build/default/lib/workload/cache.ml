open Aa_numerics
open Aa_utility

type profile = {
  label : string;
  base_cpi : float;
  mpki_peak : float;
  mpki_floor : float;
  locality : float;
  miss_penalty : float;
}

let mpki p c = p.mpki_floor +. ((p.mpki_peak -. p.mpki_floor) *. exp (-.c /. p.locality))
let ipc p c = 1.0 /. (p.base_cpi +. (mpki p c *. p.miss_penalty /. 1000.0))

let utility ?(resolution = 128) ~cache p =
  let xs = Util.linspace 0.0 cache resolution in
  let pts = Array.map (fun c -> (c, ipc p c)) xs in
  Utility.of_plc (Plc.create (Convex.upper_envelope pts))

let streaming label =
  {
    label;
    base_cpi = 0.8;
    mpki_peak = 40.0;
    mpki_floor = 35.0;
    locality = 0.5;
    miss_penalty = 200.0;
  }

let cache_friendly label =
  {
    label;
    base_cpi = 0.6;
    mpki_peak = 15.0;
    mpki_floor = 0.5;
    locality = 0.8;
    miss_penalty = 200.0;
  }

let cache_hungry label =
  {
    label;
    base_cpi = 0.7;
    mpki_peak = 60.0;
    mpki_floor = 2.0;
    locality = 4.0;
    miss_penalty = 200.0;
  }

let random rng label =
  let base = [| streaming; cache_friendly; cache_hungry |] in
  let p = base.(Rng.int rng 3) label in
  let jitter lo hi = Rng.uniform rng ~lo ~hi in
  let mpki_peak = p.mpki_peak *. jitter 0.7 1.3 in
  {
    p with
    base_cpi = p.base_cpi *. jitter 0.8 1.2;
    mpki_peak;
    (* the floor can never exceed the no-cache miss rate *)
    mpki_floor = Float.min mpki_peak (p.mpki_floor *. jitter 0.7 1.3);
    locality = p.locality *. jitter 0.7 1.3;
  }

let instance ?resolution ~cores ~cache profiles =
  let utilities = Array.map (fun p -> utility ?resolution ~cache p) profiles in
  Aa_core.Instance.create ~servers:cores ~capacity:cache utilities
