open Aa_numerics
open Aa_utility

type tier = { size : float; price : float }

let bid_curve ~cap tiers =
  List.iter
    (fun t ->
      if not (t.size > 0.0 && t.price >= 0.0) then
        invalid_arg "Cloud.bid_curve: tiers need positive size, nonnegative price")
    tiers;
  let pts = ref [ (0.0, 0.0) ] in
  let x = ref 0.0 and y = ref 0.0 in
  List.iter
    (fun t ->
      x := !x +. t.size;
      y := !y +. t.price;
      if !x <= cap then pts := (!x, !y) :: !pts)
    tiers;
  if !x < cap then pts := (cap, !y) :: !pts
  else if not (List.exists (fun (px, _) -> px = cap) !pts) then begin
    (* interpolate the boundary point of the tier straddling cap *)
    match !pts with
    | (x1, y1) :: _ ->
        let rate =
          (* unit price of the straddling tier *)
          let rec find acc = function
            | [] -> 0.0
            | t :: rest ->
                let nx = acc +. t.size in
                if nx > cap then t.price /. t.size else find nx rest
          in
          find 0.0 tiers
        in
        pts := (cap, y1 +. (rate *. (cap -. x1))) :: !pts
    | [] -> assert false
  end;
  Utility.of_plc (Plc.create (Array.of_list !pts))

let elastic ~cap ~budget ~beta =
  if not (budget >= 0.0) then invalid_arg "Cloud.elastic: negative budget";
  match Utility.Shapes.power ~cap ~coeff:(budget /. (cap ** beta)) ~beta with
  | u -> u

let random_customer rng ~cap =
  match Rng.int rng 3 with
  | 0 ->
      (* batch: elastic with low beta *)
      elastic ~cap ~budget:(Rng.uniform rng ~lo:5.0 ~hi:50.0)
        ~beta:(Rng.uniform rng ~lo:0.3 ~hi:0.7)
  | 1 ->
      (* interactive: saturating, values the first units highly *)
      Utility.Shapes.saturating ~cap
        ~limit:(Rng.uniform rng ~lo:10.0 ~hi:80.0)
        ~halfway:(Rng.uniform rng ~lo:(cap /. 20.0) ~hi:(cap /. 4.0))
  | _ ->
      (* reserved: pays a fixed unit price up to a requested size *)
      let knee = Rng.uniform rng ~lo:(cap /. 10.0) ~hi:cap in
      Utility.Shapes.capped_linear ~cap
        ~slope:(Rng.uniform rng ~lo:0.05 ~hi:0.5)
        ~knee

let instance rng ~machines ~capacity ~customers =
  if customers < 1 then invalid_arg "Cloud.instance: need at least one customer";
  let utilities = Array.init customers (fun _ -> random_customer rng ~cap:capacity) in
  Aa_core.Instance.create ~servers:machines ~capacity utilities
