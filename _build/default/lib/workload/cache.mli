(** Multicore cache-partitioning workloads — the paper's first motivating
    application (§I): cores are servers, the shared last-level cache is
    the resource, and a thread's utility is its instruction throughput as
    a function of its cache partition, derived from a miss-rate curve.

    Miss-rate curves follow the classic exponential working-set model:
    [mpki(c) = floor + (peak - floor) * exp (-c / locality)], which is
    convex decreasing, making IPC-based utilities concave increasing —
    exactly the diminishing-returns shape the paper assumes (Qureshi &
    Patt's UCP observations, reference [4]). *)

type profile = {
  label : string;
  base_cpi : float;  (** cycles per instruction with no misses *)
  mpki_peak : float;  (** misses per kilo-instruction with no cache *)
  mpki_floor : float;  (** compulsory misses that never go away *)
  locality : float;  (** cache needed to drop the miss rate by 1/e *)
  miss_penalty : float;  (** cycles per miss *)
}

val mpki : profile -> float -> float
(** Miss rate at a given cache allocation. *)

val ipc : profile -> float -> float
(** Instructions per cycle at a given cache allocation:
    [1 / (base_cpi + mpki c * miss_penalty / 1000)]. *)

val utility : ?resolution:int -> cache:float -> profile -> Aa_utility.Utility.t
(** Thread utility = IPC as a function of cache, on [[0, cache]], made
    concave via sampling + upper envelope. Note the raw IPC curve can be
    S-shaped (convex at small allocations where misses dominate the CPI);
    the envelope chords over that region, so the model may promise more
    than the simulator delivers there — the cache-partitioning example
    measures exactly this gap. *)

val streaming : string -> profile
(** Streams through memory: high compulsory misses, caching barely
    helps. *)

val cache_friendly : string -> profile
(** Small working set: modest miss rate that vanishes quickly. *)

val cache_hungry : string -> profile
(** Large working set: huge gains from cache, saturating late. *)

val random : Aa_numerics.Rng.t -> string -> profile
(** A random mixture of the three behaviors. *)

val instance :
  ?resolution:int ->
  cores:int ->
  cache:float ->
  profile array ->
  Aa_core.Instance.t
(** AA instance: [cores] servers with [cache] MB each, one thread per
    profile. *)
