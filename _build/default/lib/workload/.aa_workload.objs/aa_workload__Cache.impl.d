lib/workload/cache.ml: Aa_core Aa_numerics Aa_utility Array Convex Float Plc Rng Util Utility
