lib/workload/cache.mli: Aa_core Aa_numerics Aa_utility
