lib/workload/gen.ml: Aa_core Aa_numerics Aa_utility Array Format Instance Rng Sampled
