lib/workload/cloud.ml: Aa_core Aa_numerics Aa_utility Array List Plc Rng Utility
