lib/workload/cloud.mli: Aa_core Aa_numerics Aa_utility
