lib/workload/gen.mli: Aa_core Aa_numerics Aa_utility Format
