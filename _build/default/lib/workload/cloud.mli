(** Cloud-provider workloads — the paper's third motivating application
    (§I): physical machines are servers, virtual-machine instances are
    threads, and a customer's utility function expresses willingness to
    pay for an instance as a function of the resources backing it. The
    provider maximizes total revenue. *)

type tier = { size : float; price : float }
(** A pricing tier: the customer pays up to [price] for [size] resource. *)

val bid_curve : cap:float -> tier list -> Aa_utility.Utility.t
(** Piecewise-linear concave willingness-to-pay built from tiers:
    cumulative price as a function of cumulative size, tiers sorted by
    decreasing unit price (enforced, raising [Invalid_argument] if the
    tiers are not concave-compatible). *)

val elastic : cap:float -> budget:float -> beta:float -> Aa_utility.Utility.t
(** A scale-free customer: pays [budget * (x / cap) ** beta],
    [beta ∈ (0, 1]] — smaller beta = more value from the first units. *)

val random_customer : Aa_numerics.Rng.t -> cap:float -> Aa_utility.Utility.t
(** Random mix of batch (elastic, low beta), interactive (saturating)
    and reserved (capped-linear) customers. *)

val instance :
  Aa_numerics.Rng.t ->
  machines:int ->
  capacity:float ->
  customers:int ->
  Aa_core.Instance.t
