open Aa_numerics
open Aa_utility
open Aa_core

type distribution =
  | Uniform
  | Normal of { mu : float; sigma : float }
  | Power_law of { alpha : float }
  | Discrete of { gamma : float; theta : float }

let name = function
  | Uniform -> "uniform"
  | Normal _ -> "normal"
  | Power_law _ -> "power-law"
  | Discrete _ -> "discrete"

let pp ppf = function
  | Uniform -> Format.fprintf ppf "uniform(0,1)"
  | Normal { mu; sigma } -> Format.fprintf ppf "normal(%g,%g)" mu sigma
  | Power_law { alpha } -> Format.fprintf ppf "power-law(α=%g)" alpha
  | Discrete { gamma; theta } -> Format.fprintf ppf "discrete(γ=%g,θ=%g)" gamma theta

let draw rng = function
  | Uniform -> Rng.float rng 1.0
  | Normal { mu; sigma } -> Rng.truncated_normal rng ~mu ~sigma ~lo:0.0
  | Power_law { alpha } -> Rng.power_law rng ~alpha ~xmin:1.0
  | Discrete { gamma; theta } ->
      if not (theta >= 1.0) then invalid_arg "Gen.draw: discrete needs theta >= 1";
      Rng.two_point rng ~gamma ~lo:1.0 ~hi:theta

let draw_pair rng dist =
  let a = draw rng dist and b = draw rng dist in
  if a >= b then (a, b) else (b, a)

let utility ?resolution rng ~cap dist =
  let v, w = draw_pair rng dist in
  Sampled.of_points ?resolution [| (0.0, 0.0); (cap /. 2.0, v); (cap, v +. w) |]

let instance ?resolution rng ~servers ~capacity ~threads dist =
  if threads < 1 then invalid_arg "Gen.instance: need at least one thread";
  let utilities = Array.init threads (fun _ -> utility ?resolution rng ~cap:capacity dist) in
  Instance.create ~servers ~capacity utilities
