open Aa_utility
open Aa_alloc
open Aa_alloc.Mckp

let item weight value : item = { weight; value }

(* brute force over all choices (including "nothing" per class) *)
let brute ~budget classes =
  let n = Array.length classes in
  let best = ref 0.0 in
  let rec go i w v =
    if w > budget then ()
    else if i = n then begin
      if v > !best then best := v
    end
    else begin
      go (i + 1) w v;
      List.iter (fun (it : item) -> go (i + 1) (w + it.weight) (v +. it.value)) classes.(i)
    end
  in
  go 0 0 0.0;
  !best

let test_dp_simple () =
  let classes =
    [|
      [ item 2 3.0; item 4 5.0 ];
      [ item 3 4.0; item 1 1.0 ];
    |]
  in
  let s = dp ~budget:5 classes in
  (* best: (2,3) + (3,4) = 7 at weight 5 *)
  Helpers.check_float "value" 7.0 s.value;
  Alcotest.(check int) "weight" 5 s.weight

let test_dp_budget_zero () =
  let s = dp ~budget:0 [| [ item 1 10.0 ] |] in
  Helpers.check_float "nothing fits" 0.0 s.value

let test_dp_skips_heavy_items () =
  let s = dp ~budget:3 [| [ item 10 100.0; item 2 1.0 ] |] in
  Helpers.check_float "uses the light one" 1.0 s.value

let test_greedy_optimal_on_concave_class () =
  (* incremental ratios decreasing: 5, 3, 1 *)
  let classes = [| [ item 1 5.0; item 2 8.0; item 3 9.0 ] |] in
  List.iter
    (fun budget ->
      let g = greedy ~budget classes in
      let e = dp ~budget classes in
      Helpers.check_float (Printf.sprintf "budget %d" budget) e.value g.value)
    [ 0; 1; 2; 3; 5 ]

let test_greedy_half_bound_on_trap () =
  (* classic trap: greedy prefers the high-ratio small item, then cannot
     fit the big valuable one *)
  let classes = [| [ item 1 2.0 ]; [ item 10 10.0 ] |] in
  let g = greedy ~budget:10 classes in
  let e = dp ~budget:10 classes in
  Helpers.check_float "exact takes the big item" 10.0 e.value;
  Helpers.check_ge "greedy >= half of optimal" g.value (0.5 *. e.value)

let test_solution_consistency () =
  let classes = [| [ item 2 3.0; item 4 5.0 ]; [ item 3 4.0 ] |] in
  List.iter
    (fun (solver : budget:int -> klass array -> solution) ->
      let s = solver ~budget:6 classes in
      let w = Array.fold_left (fun acc (w, _) -> acc + w) 0 s.choice in
      let v = Array.fold_left (fun acc (_, v) -> acc +. v) 0.0 s.choice in
      Alcotest.(check int) "weight consistent" s.weight w;
      Helpers.check_float ~eps:1e-9 "value consistent" s.value v;
      Alcotest.(check bool) "within budget" true (w <= 6))
    [ dp; greedy ]

let test_of_utility_class () =
  let u = Utility.Shapes.linear ~cap:10.0 ~slope:1.0 in
  let klass = of_utility ~steps:5 u in
  Alcotest.(check int) "steps" 5 (List.length klass);
  let (it : item) = List.nth klass 2 in
  Alcotest.(check int) "weight" 3 it.weight;
  Helpers.check_float "value at 6/10 of cap" 6.0 it.value

let test_single_server_aa_via_mckp () =
  (* MCKP on a fine grid matches the exact continuous allocator *)
  let cap = 10.0 in
  let us =
    [|
      Utility.Shapes.capped_linear ~cap ~slope:2.0 ~knee:3.0;
      Utility.Shapes.capped_linear ~cap ~slope:1.0 ~knee:4.0;
      Utility.Shapes.linear ~cap ~slope:0.5;
    |]
  in
  let steps = 100 in
  let s = best_of_utilities ~solver:dp ~steps us in
  let plc = Array.map (Utility.to_plc ~samples:64) us in
  let exact = Plc_greedy.allocate ~budget:cap plc in
  (* grid granularity cap/steps bounds the gap *)
  Helpers.check_ge "mckp close to continuous optimum" s.value (exact.utility -. 0.2);
  Helpers.check_le "and never above it" s.value (exact.utility +. 1e-9)

let prop_dp_matches_bruteforce =
  QCheck2.Test.make ~name:"dp equals brute force" ~count:150
    QCheck2.Gen.(
      let* n = int_range 1 4 in
      let* budget = int_range 0 12 in
      let* classes =
        list_repeat n
          (list_size (int_range 0 4)
             (let* w = int_range 0 8 in
              let* v = float_range 0.0 10.0 in
              return (item w v)))
      in
      return (budget, Array.of_list classes))
    (fun (budget, classes) ->
      Aa_numerics.Util.approx_equal ~eps:1e-9 (brute ~budget classes)
        (dp ~budget classes).value)

let prop_greedy_within_half =
  QCheck2.Test.make ~name:"greedy within 1/2 of optimum, never above" ~count:200
    QCheck2.Gen.(
      let* n = int_range 1 5 in
      let* budget = int_range 0 20 in
      let* classes =
        list_repeat n
          (list_size (int_range 0 5)
             (let* w = int_range 0 12 in
              let* v = float_range 0.0 10.0 in
              return (item w v)))
      in
      return (budget, Array.of_list classes))
    (fun (budget, classes) ->
      let g = (greedy ~budget classes).value in
      let e = (dp ~budget classes).value in
      g <= e +. 1e-9 && g >= (0.5 *. e) -. 1e-9)

let prop_greedy_optimal_for_concave_utilities =
  QCheck2.Test.make ~name:"greedy = dp on classes from concave utilities" ~count:100
    QCheck2.Gen.(
      let* n = int_range 1 4 in
      let* us = list_repeat n (Helpers.gen_utility_with_cap 10.0) in
      let* steps = int_range 2 12 in
      return (Array.of_list us, steps))
    (fun (us, steps) ->
      let g = best_of_utilities ~solver:greedy ~steps us in
      let e = best_of_utilities ~solver:dp ~steps us in
      Aa_numerics.Util.approx_equal ~eps:1e-6 g.value e.value)

let () =
  Alcotest.run "mckp"
    [
      ( "dp",
        [
          Alcotest.test_case "simple" `Quick test_dp_simple;
          Alcotest.test_case "zero budget" `Quick test_dp_budget_zero;
          Alcotest.test_case "heavy items" `Quick test_dp_skips_heavy_items;
        ] );
      ( "greedy",
        [
          Alcotest.test_case "concave class optimal" `Quick test_greedy_optimal_on_concave_class;
          Alcotest.test_case "half bound" `Quick test_greedy_half_bound_on_trap;
          Alcotest.test_case "solution consistency" `Quick test_solution_consistency;
        ] );
      ( "utilities",
        [
          Alcotest.test_case "of_utility" `Quick test_of_utility_class;
          Alcotest.test_case "single-server AA" `Quick test_single_server_aa_via_mckp;
        ] );
      Helpers.qsuite "properties"
        [ prop_dp_matches_bruteforce; prop_greedy_within_half; prop_greedy_optimal_for_concave_utilities ];
    ]
