open Aa_numerics
open Aa_utility
open Aa_core

(* ---------- exact solver ---------- *)

let test_exact_single_server_equals_pooled () =
  let cap = 10.0 in
  let inst =
    Instance.create ~servers:1 ~capacity:cap
      [|
        Utility.Shapes.capped_linear ~cap ~slope:2.0 ~knee:3.0;
        Utility.Shapes.capped_linear ~cap ~slope:1.0 ~knee:5.0;
      |]
  in
  let r = Exact.solve inst in
  (* one server: optimum = optimal pooled allocation with budget C *)
  let pooled =
    Aa_alloc.Plc_greedy.allocate ~budget:cap (Instance.to_plc inst)
  in
  Helpers.check_float ~eps:1e-9 "pooled" pooled.utility r.utility

let test_exact_separates_competing_threads () =
  (* two steep threads + one linear: the known optimum groups the steep
     pair (Theorem V.17's instance) *)
  let inst = Tightness.instance () in
  let r = Exact.solve inst in
  Helpers.check_float ~eps:1e-9 "optimal utility 3" Tightness.optimal_utility r.utility;
  (match Assignment.check inst r.assignment with Ok () -> () | Error e -> Alcotest.fail e);
  (* threads 0 and 1 share a server; thread 2 is alone *)
  let s0 = r.assignment.server.(0) and s1 = r.assignment.server.(1) in
  let s2 = r.assignment.server.(2) in
  Alcotest.(check bool) "steep pair together" true (s0 = s1);
  Alcotest.(check bool) "linear alone" true (s2 <> s0)

let test_exact_respects_server_count () =
  let cap = 4.0 in
  (* three threads that each want the whole server; two servers *)
  let us = Array.make 3 (Utility.Shapes.capped_linear ~cap ~slope:1.0 ~knee:cap) in
  let inst = Instance.create ~servers:2 ~capacity:cap us in
  let r = Exact.solve inst in
  (* best: two threads get 4.0 each... no — three threads, two servers:
     one server holds two threads splitting 4, total 4 + 4 = 8 *)
  Helpers.check_float ~eps:1e-9 "optimum" 8.0 r.utility

let test_exact_more_servers_than_threads () =
  let cap = 5.0 in
  let us = Array.make 2 (Utility.Shapes.linear ~cap ~slope:1.0) in
  let inst = Instance.create ~servers:4 ~capacity:cap us in
  let r = Exact.solve inst in
  Helpers.check_float "each alone at cap" 10.0 r.utility

let test_exact_guard () =
  let cap = 1.0 in
  let us = Array.make (Exact.max_threads + 1) (Utility.Shapes.linear ~cap ~slope:1.0) in
  let inst = Instance.create ~servers:2 ~capacity:cap us in
  try
    ignore (Exact.solve inst);
    Alcotest.fail "guard did not trigger"
  with Invalid_argument _ -> ()

(* ---------- reduction (Theorem IV.1) ---------- *)

let test_reduction_positive_cases () =
  List.iter
    (fun numbers ->
      let numbers = Array.of_list numbers in
      Alcotest.(check bool)
        (Printf.sprintf "partitionable %s"
           (String.concat "," (List.map string_of_float (Array.to_list numbers))))
        true
        (Reduction.partition_exists numbers))
    [ [ 1.0; 1.0 ]; [ 1.0; 2.0; 3.0 ]; [ 2.0; 2.0; 2.0; 2.0 ]; [ 5.0; 3.0; 2.0; 4.0; 2.0 ] ]

let test_reduction_negative_cases () =
  List.iter
    (fun numbers ->
      let numbers = Array.of_list numbers in
      Alcotest.(check bool) "not partitionable" false (Reduction.partition_exists numbers))
    [ [ 1.0; 2.0 ]; [ 1.0; 1.0; 3.0 ]; [ 2.0; 3.0; 4.0 ]; [ 1.0; 5.0; 2.0 ] ]

let test_reduction_instance_shape () =
  let numbers = [| 3.0; 1.0; 2.0 |] in
  let inst = Reduction.instance numbers in
  Alcotest.(check int) "two servers" 2 inst.servers;
  Helpers.check_float "capacity" 3.0 inst.capacity;
  Helpers.check_float "target" 6.0 (Reduction.target numbers);
  (* f_i(c_i) = c_i and flat beyond *)
  Helpers.check_float "utility at own size" 1.0 (Utility.eval inst.utilities.(1) 1.0);
  Helpers.check_float "flat beyond" 1.0 (Utility.eval inst.utilities.(1) 2.0)

let prop_reduction_matches_bruteforce =
  QCheck2.Test.make ~name:"reduction decides partition correctly" ~count:60
    QCheck2.Gen.(list_size (int_range 2 8) (int_range 1 12))
    (fun ints ->
      let numbers = Array.of_list (List.map float_of_int ints) in
      (* brute-force partition over subsets *)
      let total = Array.fold_left ( +. ) 0.0 numbers in
      let n = Array.length numbers in
      let exists = ref false in
      for mask = 0 to (1 lsl n) - 1 do
        let s = ref 0.0 in
        for i = 0 to n - 1 do
          if mask land (1 lsl i) <> 0 then s := !s +. numbers.(i)
        done;
        if Float.abs ((2.0 *. !s) -. total) < 1e-9 then exists := true
      done;
      Reduction.partition_exists numbers = !exists)

(* ---------- tightness (Theorem V.17) ---------- *)

let test_tightness_algorithms_hit_5_6 () =
  let inst = Tightness.instance () in
  let u2 = Assignment.utility inst (Algo2.solve inst) in
  Helpers.check_float ~eps:1e-9 "Algo2 = 5/2" Tightness.algorithm_utility u2;
  let u1 = Assignment.utility inst (Algo1.solve inst) in
  Helpers.check_float ~eps:1e-9 "Algo1 = 5/2" Tightness.algorithm_utility u1;
  let opt = (Exact.solve inst).utility in
  Helpers.check_float ~eps:1e-9 "optimal = 3" Tightness.optimal_utility opt;
  Helpers.check_float ~eps:1e-9 "ratio 5/6" Tightness.expected_ratio (u2 /. opt);
  (* the example sits above the proven bound *)
  Helpers.check_ge "5/6 > alpha" Tightness.expected_ratio Bounds.alpha

(* ---------- exact vs approximation on random instances ---------- *)

let prop_exact_at_least_algo2 =
  QCheck2.Test.make ~name:"OPT >= Algo2 and Algo2 >= alpha * OPT" ~count:60
    ~print:Helpers.print_instance Helpers.gen_small_instance (fun inst ->
      let inst = Helpers.plc_instance inst in
      let opt = (Exact.solve inst).utility in
      let u2 = Assignment.utility inst (Algo2.solve inst) in
      let scale = Float.max 1.0 opt in
      u2 <= opt +. (1e-6 *. scale) && u2 >= (Bounds.alpha *. opt) -. (1e-6 *. scale))

let prop_exact_below_superopt =
  QCheck2.Test.make ~name:"Lemma V.2: OPT <= F^" ~count:60 Helpers.gen_small_instance
    (fun inst ->
      let inst = Helpers.plc_instance inst in
      let opt = (Exact.solve inst).utility in
      let so = Superopt.compute inst in
      opt <= so.utility +. (1e-6 *. Float.max 1.0 so.utility))

let prop_exact_assignment_feasible_and_consistent =
  QCheck2.Test.make ~name:"exact solver: assignment matches claimed utility" ~count:60
    Helpers.gen_small_instance (fun inst ->
      let inst = Helpers.plc_instance inst in
      let r = Exact.solve inst in
      match Assignment.check inst r.assignment with
      | Error _ -> false
      | Ok () ->
          Util.approx_equal ~eps:1e-6 r.utility (Assignment.utility inst r.assignment))

let () =
  Alcotest.run "exact-and-hardness"
    [
      ( "exact",
        [
          Alcotest.test_case "single server pooled" `Quick test_exact_single_server_equals_pooled;
          Alcotest.test_case "separates competitors" `Quick test_exact_separates_competing_threads;
          Alcotest.test_case "server count" `Quick test_exact_respects_server_count;
          Alcotest.test_case "more servers than threads" `Quick test_exact_more_servers_than_threads;
          Alcotest.test_case "size guard" `Quick test_exact_guard;
        ] );
      ( "reduction",
        [
          Alcotest.test_case "positive" `Quick test_reduction_positive_cases;
          Alcotest.test_case "negative" `Quick test_reduction_negative_cases;
          Alcotest.test_case "instance shape" `Quick test_reduction_instance_shape;
        ] );
      ( "tightness",
        [ Alcotest.test_case "5/6 example" `Quick test_tightness_algorithms_hit_5_6 ] );
      Helpers.qsuite "properties"
        [
          prop_reduction_matches_bruteforce;
          prop_exact_at_least_algo2;
          prop_exact_below_superopt;
          prop_exact_assignment_feasible_and_consistent;
        ];
    ]
