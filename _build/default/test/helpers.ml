(* Shared helpers and QCheck generators for the test suites. *)

open Aa_numerics
open Aa_utility

let check_float ?(eps = 1e-9) msg expected actual =
  if not (Util.approx_equal ~eps expected actual) then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

let check_le ?(eps = 1e-9) msg a b =
  if a > b +. (eps *. Float.max 1.0 (Float.abs b)) then
    Alcotest.failf "%s: %.12g should be <= %.12g" msg a b

let check_ge ?(eps = 1e-9) msg a b = check_le ~eps msg b a

let qsuite name props =
  (name, List.map (QCheck_alcotest.to_alcotest ~verbose:false) props)

(* --- generators --- *)

(* A random concave nondecreasing PLC on [0, cap]: decreasing positive
   slopes with random segment lengths. *)
let gen_plc_parts =
  QCheck2.Gen.(
    let* cap = float_range 1.0 100.0 in
    let* k = int_range 1 6 in
    let* raw_slopes = list_repeat k (float_range 0.01 10.0) in
    let* raw_lens = list_repeat k (float_range 0.05 1.0) in
    let* y0 = float_range 0.0 2.0 in
    return (cap, raw_slopes, raw_lens, y0))

let plc_of_parts (cap, raw_slopes, raw_lens, y0) =
  let slopes = List.sort (fun a b -> compare b a) raw_slopes in
  let total_len = List.fold_left ( +. ) 0.0 raw_lens in
  let scale = cap /. total_len in
  let pts = ref [ (0.0, y0) ] in
  let x = ref 0.0 and y = ref y0 in
  List.iter2
    (fun s l ->
      x := !x +. (l *. scale);
      y := !y +. (s *. l *. scale);
      pts := (!x, !y) :: !pts)
    slopes raw_lens;
  (* force the exact endpoint to avoid float drift *)
  let pts =
    match !pts with (_, y) :: rest -> (cap, y) :: rest | [] -> assert false
  in
  Plc.create (Array.of_list (List.rev pts))

let gen_plc = QCheck2.Gen.map plc_of_parts gen_plc_parts

(* Random utilities of all representations sharing one cap. *)
let gen_utility_with_cap cap =
  QCheck2.Gen.(
    let* choice = int_range 0 5 in
    match choice with
    | 0 ->
        let* parts = gen_plc_parts in
        let cap', s, l, y0 = parts in
        ignore cap';
        return (Utility.of_plc (plc_of_parts (cap, s, l, y0)))
    | 1 ->
        let* coeff = float_range 0.1 10.0 in
        let* beta = float_range 0.2 1.0 in
        return (Utility.Shapes.power ~cap ~coeff ~beta)
    | 2 ->
        let* coeff = float_range 0.1 10.0 in
        let* rate = float_range 0.05 3.0 in
        return (Utility.Shapes.log_utility ~cap ~coeff ~rate)
    | 3 ->
        let* limit = float_range 0.5 20.0 in
        let* halfway = float_range (cap /. 50.0) cap in
        return (Utility.Shapes.saturating ~cap ~limit ~halfway)
    | 4 ->
        let* limit = float_range 0.5 20.0 in
        let* rate = float_range (0.2 /. cap) (10.0 /. cap) in
        return (Utility.Shapes.exp_saturating ~cap ~limit ~rate)
    | _ ->
        let* slope = float_range 0.0 5.0 in
        let* knee = float_range 0.0 cap in
        return (Utility.Shapes.capped_linear ~cap ~slope ~knee))

(* A random AA instance: m in 1..5, n in 1..12, mixed utility shapes. *)
let gen_instance =
  QCheck2.Gen.(
    let* servers = int_range 1 5 in
    let* n = int_range 1 12 in
    let* cap = float_range 1.0 50.0 in
    let* utilities = list_repeat n (gen_utility_with_cap cap) in
    return (Aa_core.Instance.create ~servers ~capacity:cap (Array.of_list utilities)))

(* Small instances that the exact solver can handle comfortably. *)
let gen_small_instance =
  QCheck2.Gen.(
    let* servers = int_range 1 3 in
    let* n = int_range 1 7 in
    let* cap = float_range 1.0 20.0 in
    let* utilities = list_repeat n (gen_utility_with_cap cap) in
    return (Aa_core.Instance.create ~servers ~capacity:cap (Array.of_list utilities)))

let print_instance inst = Format.asprintf "%a" Aa_core.Instance.pp inst
let rng_of_seed seed = Rng.create ~seed ()

(* Replace every utility by its exact PLC form so that the exact solver,
   the super-optimal bound and assignment evaluation all agree on the
   same function (no smooth-vs-sampled gap in comparisons). *)
let plc_instance (inst : Aa_core.Instance.t) =
  Aa_core.Instance.create ~servers:inst.servers ~capacity:inst.capacity
    (Array.map (fun u -> Utility.of_plc (Utility.to_plc u)) inst.utilities)

(* Quick random PLC utility from an explicit rng (for tests that stream
   arrivals rather than use QCheck generators). *)
let plc_u ?(cap = 10.0) rng =
  let k = 1 + Rng.int rng 4 in
  let slopes = Array.init k (fun _ -> Rng.uniform rng ~lo:0.1 ~hi:5.0) in
  Array.sort (fun a b -> compare b a) slopes;
  let pts = Array.make (k + 1) (0.0, 0.0) in
  let x = ref 0.0 and y = ref 0.0 in
  for i = 0 to k - 1 do
    x := (if i = k - 1 then cap else !x +. (cap /. float_of_int k));
    y := !y +. (slopes.(i) *. (cap /. float_of_int k));
    pts.(i + 1) <- (!x, !y)
  done;
  Utility.of_plc (Plc.create pts)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec scan i = i + nn <= nh && (String.sub haystack i nn = needle || scan (i + 1)) in
  nn = 0 || scan 0

let count_substring haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  if nn = 0 then 0
  else begin
    let acc = ref 0 in
    for i = 0 to nh - nn do
      if String.sub haystack i nn = needle then incr acc
    done;
    !acc
  end
