open Aa_numerics
open Aa_core

let test_repairs_tightness_instance () =
  (* Algorithm 2 is stuck at 5/6 on Theorem V.17's instance; one swap
     fixes it *)
  let inst = Tightness.instance () in
  let a2 = Algo2.solve inst in
  Helpers.check_float "greedy is at 5/2" 2.5 (Assignment.utility inst a2);
  let improved, stats = Local_search.improve inst a2 in
  Helpers.check_float ~eps:1e-9 "local search reaches the optimum" 3.0
    (Assignment.utility inst improved);
  Alcotest.(check bool) "used a swap or moves" true (stats.swaps + stats.moves > 0);
  match Assignment.check inst improved with Ok () -> () | Error e -> Alcotest.fail e

let test_moves_only_suffice_on_tightness () =
  (* moving the linear thread off the shared server already frees a full
     server for a steep thread: the move neighborhood alone reaches 3 *)
  let inst = Tightness.instance () in
  let a2 = Algo2.solve inst in
  let improved, stats = Local_search.improve ~enable_swaps:false inst a2 in
  Helpers.check_float ~eps:1e-9 "optimum with moves only" 3.0
    (Assignment.utility inst improved);
  Alcotest.(check int) "no swaps were available" 0 stats.swaps

let test_already_optimal_is_stable () =
  let inst = Tightness.instance () in
  let opt = (Exact.solve inst).assignment in
  let improved, stats = Local_search.improve inst opt in
  Helpers.check_float ~eps:1e-9 "stays at optimum" 3.0 (Assignment.utility inst improved);
  Alcotest.(check int) "no moves applied" 0 (stats.moves + stats.swaps)

let test_stats_consistent () =
  let rng = Rng.create ~seed:5 () in
  let inst =
    Aa_workload.Gen.instance rng ~servers:3 ~capacity:50.0 ~threads:9 Aa_workload.Gen.Uniform
  in
  let start = Heuristics.rr ~rng inst in
  let improved, stats = Local_search.improve inst start in
  Helpers.check_ge "final >= initial" stats.final stats.initial;
  Helpers.check_float ~eps:1e-6 "final matches assignment"
    (Assignment.utility inst improved)
    stats.final;
  Alcotest.(check bool) "round counter sane" true (stats.rounds >= 1)

let prop_never_worse_and_feasible =
  QCheck2.Test.make ~name:"local search: feasible, never below refill" ~count:60
    Helpers.gen_small_instance (fun inst ->
      let inst = Helpers.plc_instance inst in
      let rng = Rng.create ~seed:1 () in
      List.for_all
        (fun algo ->
          let a = Solver.solve ~rng algo inst in
          let improved, _ = Local_search.improve ~max_rounds:10 inst a in
          let base = Assignment.utility inst (Refine.per_server inst a) in
          (match Assignment.check inst improved with Ok () -> true | Error _ -> false)
          && Assignment.utility inst improved
             >= base -. (1e-6 *. Float.max 1.0 base))
        [ Solver.Algo2; Solver.Uu; Solver.Rr ])

let prop_reaches_near_optimum_small =
  QCheck2.Test.make ~name:"local search from Algo2 is within 1% of exact on small instances"
    ~count:40 Helpers.gen_small_instance (fun inst ->
      let inst = Helpers.plc_instance inst in
      let opt = (Exact.solve inst).utility in
      let improved, _ = Local_search.improve inst (Algo2.solve inst) in
      let u = Assignment.utility inst improved in
      u >= (0.99 *. opt) -. 1e-6)

(* sampled-assignment baseline (paper §II, Radojković et al.) *)

let test_best_of_random_improves_with_tries () =
  let rng = Rng.create ~seed:7 () in
  let inst =
    Aa_workload.Gen.instance rng ~servers:4 ~capacity:100.0 ~threads:20
      (Aa_workload.Gen.Power_law { alpha = 2.0 })
  in
  let u tries =
    let rng = Rng.create ~seed:11 () in
    Assignment.utility inst (Heuristics.best_of_random ~rng ~tries inst)
  in
  Helpers.check_ge "100 tries >= 1 try" (u 100) (u 1);
  (* sampling with per-server optimal allocation beats plain RR *)
  let rr = Assignment.utility inst (Heuristics.rr ~rng:(Rng.create ~seed:11 ()) inst) in
  Helpers.check_ge "sampled beats plain RR" (u 20) rr

let test_best_of_random_below_algo2_usually () =
  (* the related-work contrast: sampling needs luck, Algorithm 2 does not *)
  let master = Rng.create ~seed:13 () in
  let a2_total = ref 0.0 and sample_total = ref 0.0 in
  for _ = 1 to 10 do
    let rng = Rng.split master in
    let inst =
      Aa_workload.Gen.instance rng ~servers:8 ~capacity:1000.0 ~threads:80
        (Aa_workload.Gen.Power_law { alpha = 2.0 })
    in
    a2_total :=
      !a2_total +. Assignment.utility inst (Refine.per_server inst (Algo2.solve inst));
    sample_total :=
      !sample_total +. Assignment.utility inst (Heuristics.best_of_random ~rng ~tries:30 inst)
  done;
  Helpers.check_ge "Algo2 ahead of 30-sample search" !a2_total !sample_total

let () =
  Alcotest.run "local-search"
    [
      ( "hill-climb",
        [
          Alcotest.test_case "repairs tightness" `Quick test_repairs_tightness_instance;
          Alcotest.test_case "moves suffice" `Quick test_moves_only_suffice_on_tightness;
          Alcotest.test_case "optimum stable" `Quick test_already_optimal_is_stable;
          Alcotest.test_case "stats" `Quick test_stats_consistent;
        ] );
      ( "sampled-baseline",
        [
          Alcotest.test_case "improves with tries" `Quick test_best_of_random_improves_with_tries;
          Alcotest.test_case "below Algo2" `Slow test_best_of_random_below_algo2_usually;
        ] );
      Helpers.qsuite "properties" [ prop_never_worse_and_feasible; prop_reaches_near_optimum_small ];
    ]
