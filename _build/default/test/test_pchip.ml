open Aa_numerics

let mk xs ys = Pchip.create ~xs ~ys

let test_interpolates () =
  let p = mk [| 0.0; 1.0; 3.0; 7.0 |] [| 0.0; 2.0; 3.0; 3.5 |] in
  Helpers.check_float "x0" 0.0 (Pchip.eval p 0.0);
  Helpers.check_float "x1" 2.0 (Pchip.eval p 1.0);
  Helpers.check_float "x2" 3.0 (Pchip.eval p 3.0);
  Helpers.check_float "x3" 3.5 (Pchip.eval p 7.0)

let test_two_points_is_linear () =
  let p = mk [| 0.0; 2.0 |] [| 1.0; 5.0 |] in
  Helpers.check_float "mid" 3.0 (Pchip.eval p 1.0);
  Helpers.check_float "quarter" 2.0 (Pchip.eval p 0.5);
  Helpers.check_float "deriv" 2.0 (Pchip.deriv p 1.0)

let test_clamps_outside () =
  let p = mk [| 0.0; 1.0 |] [| 0.0; 1.0 |] in
  Helpers.check_float "left" 0.0 (Pchip.eval p (-5.0));
  Helpers.check_float "right" 1.0 (Pchip.eval p 9.0);
  Helpers.check_float "deriv outside" 0.0 (Pchip.deriv p 9.0)

let test_monotone_data_monotone_interpolant () =
  (* the defining property of PCHIP vs natural splines *)
  let p = mk [| 0.0; 1.0; 2.0; 3.0; 4.0 |] [| 0.0; 0.1; 0.11; 5.0; 5.01 |] in
  let prev = ref (Pchip.eval p 0.0) in
  for i = 1 to 400 do
    let x = 4.0 *. float_of_int i /. 400.0 in
    let y = Pchip.eval p x in
    if y < !prev -. 1e-12 then Alcotest.failf "not monotone at x=%g (%g < %g)" x y !prev;
    prev := y
  done

let test_flat_data_flat () =
  let p = mk [| 0.0; 1.0; 2.0 |] [| 3.0; 3.0; 3.0 |] in
  Helpers.check_float "mid" 3.0 (Pchip.eval p 0.7);
  Helpers.check_float "deriv" 0.0 (Pchip.deriv p 0.7)

let test_local_extremum_zero_derivative () =
  (* at a data-local max the FC scheme forces derivative 0 *)
  let p = mk [| 0.0; 1.0; 2.0 |] [| 0.0; 1.0; 0.0 |] in
  Helpers.check_float "deriv at peak" 0.0 (Pchip.deriv p 1.0);
  (* interpolant never overshoots the data maximum *)
  for i = 0 to 100 do
    let x = 2.0 *. float_of_int i /. 100.0 in
    Helpers.check_le "no overshoot" (Pchip.eval p x) 1.0
  done

let test_derivative_matches_finite_difference () =
  let p = mk [| 0.0; 1.0; 3.0; 7.0 |] [| 0.0; 2.0; 3.0; 3.5 |] in
  let h = 1e-6 in
  List.iter
    (fun x ->
      let fd = (Pchip.eval p (x +. h) -. Pchip.eval p (x -. h)) /. (2.0 *. h) in
      Helpers.check_float ~eps:1e-4 (Printf.sprintf "deriv at %g" x) fd (Pchip.deriv p x))
    [ 0.5; 1.5; 2.5; 4.0; 6.5 ]

let test_sample () =
  let p = mk [| 0.0; 4.0 |] [| 0.0; 8.0 |] in
  let s = Pchip.sample p 5 in
  Alcotest.(check int) "count" 5 (Array.length s);
  let x0, y0 = s.(0) and x4, y4 = s.(4) in
  Helpers.check_float "first x" 0.0 x0;
  Helpers.check_float "first y" 0.0 y0;
  Helpers.check_float "last x" 4.0 x4;
  Helpers.check_float "last y" 8.0 y4

let test_breakpoints () =
  let p = mk [| 0.0; 1.0 |] [| 2.0; 3.0 |] in
  Alcotest.(check int) "count" 2 (Array.length (Pchip.breakpoints p))

let test_invalid () =
  Alcotest.check_raises "one point" (Invalid_argument "Pchip.create: need at least two points")
    (fun () -> ignore (mk [| 0.0 |] [| 1.0 |]));
  Alcotest.check_raises "unsorted"
    (Invalid_argument "Pchip.create: xs must be strictly increasing") (fun () ->
      ignore (mk [| 0.0; 0.0 |] [| 1.0; 2.0 |]));
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Pchip.create: xs/ys length mismatch") (fun () ->
      ignore (mk [| 0.0; 1.0 |] [| 1.0 |]))

let prop_monotone =
  QCheck2.Test.make ~name:"monotone data gives monotone interpolant" ~count:300
    QCheck2.Gen.(
      let* k = int_range 2 10 in
      let* deltas = list_repeat k (float_range 0.01 3.0) in
      let* steps = list_repeat k (float_range 0.0 2.0) in
      return (deltas, steps))
    (fun (deltas, steps) ->
      let xs = Array.make (List.length deltas + 1) 0.0 in
      let ys = Array.make (List.length deltas + 1) 0.0 in
      List.iteri (fun i d -> xs.(i + 1) <- xs.(i) +. d) deltas;
      List.iteri (fun i s -> ys.(i + 1) <- ys.(i) +. s) steps;
      let p = Pchip.create ~xs ~ys in
      let n = Array.length xs in
      let ok = ref true in
      let prev = ref (Pchip.eval p 0.0) in
      for i = 1 to 300 do
        let x = xs.(n - 1) *. float_of_int i /. 300.0 in
        let y = Pchip.eval p x in
        if y < !prev -. 1e-9 then ok := false;
        prev := y
      done;
      !ok)

let () =
  Alcotest.run "numerics-pchip"
    [
      ( "pchip",
        [
          Alcotest.test_case "interpolates data" `Quick test_interpolates;
          Alcotest.test_case "two points linear" `Quick test_two_points_is_linear;
          Alcotest.test_case "clamps outside" `Quick test_clamps_outside;
          Alcotest.test_case "monotone" `Quick test_monotone_data_monotone_interpolant;
          Alcotest.test_case "flat" `Quick test_flat_data_flat;
          Alcotest.test_case "extremum" `Quick test_local_extremum_zero_derivative;
          Alcotest.test_case "derivative" `Quick test_derivative_matches_finite_difference;
          Alcotest.test_case "sample" `Quick test_sample;
          Alcotest.test_case "breakpoints" `Quick test_breakpoints;
          Alcotest.test_case "invalid input" `Quick test_invalid;
        ] );
      Helpers.qsuite "properties" [ prop_monotone ];
    ]
