open Aa_numerics

let data = [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |]

let test_mean () =
  Helpers.check_float "mean" 5.0 (Stats.mean data);
  Alcotest.check_raises "empty" (Invalid_argument "Stats.mean: empty array") (fun () ->
      ignore (Stats.mean [||]))

let test_variance () =
  (* sample variance with n-1: sum of squares = 32, / 7 *)
  Helpers.check_float ~eps:1e-12 "variance" (32.0 /. 7.0) (Stats.variance data);
  Helpers.check_float "single" 0.0 (Stats.variance [| 3.0 |])

let test_stddev () = Helpers.check_float ~eps:1e-12 "sd" (sqrt (32.0 /. 7.0)) (Stats.stddev data)

let test_quantile () =
  Helpers.check_float "min" 2.0 (Stats.quantile data 0.0);
  Helpers.check_float "max" 9.0 (Stats.quantile data 1.0);
  Helpers.check_float "median interp" 4.5 (Stats.median data);
  let odd = [| 1.0; 2.0; 100.0 |] in
  Helpers.check_float "odd median" 2.0 (Stats.median odd)

let test_geometric_mean () =
  Helpers.check_float ~eps:1e-12 "gm" 4.0 (Stats.geometric_mean [| 2.0; 8.0 |]);
  Alcotest.check_raises "nonpositive"
    (Invalid_argument "Stats.geometric_mean: nonpositive element") (fun () ->
      ignore (Stats.geometric_mean [| 1.0; 0.0 |]))

let test_summary () =
  let s = Stats.summarize data in
  Alcotest.(check int) "n" 8 s.n;
  Helpers.check_float "mean" 5.0 s.mean;
  Helpers.check_float "min" 2.0 s.min;
  Helpers.check_float "max" 9.0 s.max;
  Helpers.check_float ~eps:1e-12 "ci" (1.96 *. Stats.stddev data /. sqrt 8.0) s.ci95

let test_online_matches_batch () =
  let rng = Rng.create ~seed:77 () in
  let xs = Array.init 10_000 (fun _ -> Rng.normal rng ~mu:3.0 ~sigma:2.0) in
  let o = Stats.Online.create () in
  Array.iter (Stats.Online.add o) xs;
  Alcotest.(check int) "count" 10_000 (Stats.Online.count o);
  Helpers.check_float ~eps:1e-9 "mean" (Stats.mean xs) (Stats.Online.mean o);
  Helpers.check_float ~eps:1e-7 "variance" (Stats.variance xs) (Stats.Online.variance o);
  Helpers.check_float "min" (Stats.quantile xs 0.0) (Stats.Online.min o);
  Helpers.check_float "max" (Stats.quantile xs 1.0) (Stats.Online.max o)

let test_online_empty () =
  let o = Stats.Online.create () in
  Alcotest.check_raises "mean" (Invalid_argument "Stats.Online.mean: no samples") (fun () ->
      ignore (Stats.Online.mean o))

let prop_online_mean =
  QCheck2.Test.make ~name:"online mean equals batch mean" ~count:300
    QCheck2.Gen.(list_size (int_range 1 200) (float_range (-100.0) 100.0))
    (fun xs ->
      let a = Array.of_list xs in
      let o = Stats.Online.create () in
      Array.iter (Stats.Online.add o) a;
      Util.approx_equal ~eps:1e-9 (Stats.mean a) (Stats.Online.mean o))

let () =
  Alcotest.run "numerics-stats"
    [
      ( "batch",
        [
          Alcotest.test_case "mean" `Quick test_mean;
          Alcotest.test_case "variance" `Quick test_variance;
          Alcotest.test_case "stddev" `Quick test_stddev;
          Alcotest.test_case "quantile" `Quick test_quantile;
          Alcotest.test_case "geometric mean" `Quick test_geometric_mean;
          Alcotest.test_case "summary" `Quick test_summary;
        ] );
      ( "online",
        [
          Alcotest.test_case "matches batch" `Quick test_online_matches_batch;
          Alcotest.test_case "empty" `Quick test_online_empty;
        ] );
      Helpers.qsuite "properties" [ prop_online_mean ];
    ]
