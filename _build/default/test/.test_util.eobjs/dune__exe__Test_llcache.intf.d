test/test_llcache.mli:
