test/test_multires.ml: Aa_core Aa_numerics Aa_utility Alcotest Algo2 Array Assignment Float Helpers Instance Multires Refine Rng Seq Superopt Utility
