test/test_convex.ml: Aa_numerics Alcotest Array Convex Hashtbl Helpers QCheck2 Rng
