test/test_llcache.ml: Aa_core Aa_numerics Aa_sim Aa_utility Alcotest Array Helpers Llcache Profiler QCheck2 Rng Trace
