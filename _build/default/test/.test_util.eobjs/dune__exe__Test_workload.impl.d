test/test_workload.ml: Aa_core Aa_numerics Aa_utility Aa_workload Alcotest Array Cache Cloud Gen Helpers Instance List Printf QCheck2 Rng Sampled Utility
