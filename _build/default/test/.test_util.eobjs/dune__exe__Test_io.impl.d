test/test_io.ml: Aa_core Aa_io Aa_numerics Aa_utility Alcotest Array Assignment Filename Format_text Fun Helpers Instance List Printf QCheck2 String Sys Utility
