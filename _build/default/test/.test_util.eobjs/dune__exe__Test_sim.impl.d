test/test_sim.ml: Aa_core Aa_numerics Aa_sim Aa_utility Aa_workload Alcotest Algo2 Array Assignment Cache Float Helpers Hosting Multicore Rng
