test/test_heap.ml: Aa_numerics Alcotest Array Heap Helpers List QCheck2 Rng
