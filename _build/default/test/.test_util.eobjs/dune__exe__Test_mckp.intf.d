test/test_mckp.mli:
