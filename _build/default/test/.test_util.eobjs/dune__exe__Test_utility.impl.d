test/test_utility.ml: Aa_numerics Aa_utility Alcotest Float Helpers List Plc QCheck2 Sampled Util Utility
