test/test_stats.ml: Aa_numerics Alcotest Array Helpers QCheck2 Rng Stats Util
