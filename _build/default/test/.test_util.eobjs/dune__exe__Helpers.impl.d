test/helpers.ml: Aa_core Aa_numerics Aa_utility Alcotest Array Float Format List Plc QCheck2 QCheck_alcotest Rng String Util Utility
