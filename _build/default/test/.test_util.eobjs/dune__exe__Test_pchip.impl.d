test/test_pchip.ml: Aa_numerics Alcotest Array Helpers List Pchip Printf QCheck2
