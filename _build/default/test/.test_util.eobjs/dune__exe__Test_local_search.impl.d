test/test_local_search.ml: Aa_core Aa_numerics Aa_workload Alcotest Algo2 Assignment Exact Float Helpers Heuristics List Local_search QCheck2 Refine Rng Solver Tightness
