test/test_experiments.ml: Aa_core Aa_experiments Alcotest Array Figures Format Helpers List Run String Svg
