test/test_hetero.mli:
