test/test_cli.ml: Alcotest Filename In_channel List Option Out_channel String Sys
