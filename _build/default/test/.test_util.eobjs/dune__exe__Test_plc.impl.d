test/test_plc.ml: Aa_numerics Aa_utility Alcotest Array Float Helpers List Plc QCheck2 Util
