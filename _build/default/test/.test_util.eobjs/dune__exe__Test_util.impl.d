test/test_util.ml: Aa_numerics Alcotest Array Dynvec Float Fun Helpers Root Util
