test/test_online.ml: Aa_core Aa_numerics Aa_utility Aa_workload Alcotest Algo2 Array Assignment Float Helpers Instance List Online QCheck2 Rng Superopt Utility
