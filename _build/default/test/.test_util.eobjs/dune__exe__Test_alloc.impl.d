test/test_alloc.ml: Aa_alloc Aa_numerics Aa_utility Alcotest Array Dp Float Fox Galil Helpers List Plc Plc_greedy Printf QCheck2 Rng Util Utility Waterfill
