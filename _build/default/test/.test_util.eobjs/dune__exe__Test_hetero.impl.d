test/test_hetero.ml: Aa_core Aa_numerics Aa_utility Aa_workload Alcotest Algo2 Array Assignment Float Helpers Hetero QCheck2 Rng Utility
