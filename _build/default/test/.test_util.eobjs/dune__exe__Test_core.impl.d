test/test_core.ml: Aa_core Aa_numerics Aa_utility Alcotest Algo2 Array Assignment Bounds Float Helpers Instance Linearized List Plc QCheck2 Rng Solver Superopt Util Utility
