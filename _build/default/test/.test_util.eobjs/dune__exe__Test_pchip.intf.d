test/test_pchip.mli:
