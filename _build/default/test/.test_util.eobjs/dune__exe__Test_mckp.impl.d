test/test_mckp.ml: Aa_alloc Aa_numerics Aa_utility Alcotest Array Helpers List Plc_greedy Printf QCheck2 Utility
