test/test_multires.mli:
