test/test_rng.ml: Aa_numerics Alcotest Array Fun Helpers Printf Rng Stats Util
