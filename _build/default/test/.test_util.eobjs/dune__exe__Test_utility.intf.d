test/test_utility.mli:
