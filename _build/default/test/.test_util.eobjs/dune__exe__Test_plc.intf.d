test/test_plc.mli:
