open Aa_numerics

let test_envelope_identity_on_concave () =
  let pts = [| (0.0, 0.0); (1.0, 2.0); (2.0, 3.0); (3.0, 3.5) |] in
  Alcotest.(check int) "keeps all points" 4 (Array.length (Convex.upper_envelope pts))

let test_envelope_drops_below_chord () =
  let pts = [| (0.0, 0.0); (1.0, 0.1); (2.0, 3.0) |] in
  let env = Convex.upper_envelope pts in
  Alcotest.(check int) "drops the dip" 2 (Array.length env);
  Alcotest.(check bool) "concave result" true (Convex.is_concave env)

let test_envelope_unsorted_input () =
  let pts = [| (2.0, 3.0); (0.0, 0.0); (1.0, 2.0) |] in
  let env = Convex.upper_envelope pts in
  let x0, _ = env.(0) in
  Helpers.check_float "starts at 0" 0.0 x0;
  Alcotest.(check bool) "concave" true (Convex.is_concave env)

let test_envelope_duplicate_x () =
  let pts = [| (0.0, 0.0); (1.0, 1.0); (1.0, 2.0); (2.0, 2.5) |] in
  let env = Convex.upper_envelope pts in
  (* keeps the max y at x = 1, and result is a function of x *)
  let seen = Hashtbl.create 8 in
  Array.iter
    (fun (x, _) ->
      if Hashtbl.mem seen x then Alcotest.fail "duplicate x in envelope";
      Hashtbl.add seen x ())
    env;
  Alcotest.(check bool) "covers (1,2)" true
    (Array.exists (fun (x, y) -> x = 1.0 && y >= 2.0) env)

let test_envelope_majorizes () =
  let rng = Rng.create ~seed:3 () in
  for _ = 1 to 100 do
    let pts =
      Array.init 20 (fun i -> (float_of_int i, Rng.float rng 10.0))
    in
    let env = Convex.upper_envelope pts in
    (* piecewise-linear eval of the envelope *)
    let eval x =
      let n = Array.length env in
      let rec find i =
        if i >= n - 1 then n - 2
        else begin
          let x1, _ = env.(i + 1) in
          if x <= x1 then i else find (i + 1)
        end
      in
      let i = find 0 in
      let x0, y0 = env.(i) and x1, y1 = env.(i + 1) in
      y0 +. ((y1 -. y0) *. (x -. x0) /. (x1 -. x0))
    in
    Array.iter
      (fun (x, y) -> Helpers.check_ge ~eps:1e-9 "envelope above data" (eval x) y)
      pts
  done

let test_envelope_single_point () =
  let env = Convex.upper_envelope [| (1.0, 2.0) |] in
  Alcotest.(check int) "one point" 1 (Array.length env)

let test_is_concave () =
  Alcotest.(check bool) "concave" true
    (Convex.is_concave [| (0.0, 0.0); (1.0, 2.0); (2.0, 3.0) |]);
  Alcotest.(check bool) "convex" false
    (Convex.is_concave [| (0.0, 0.0); (1.0, 1.0); (2.0, 3.0) |]);
  Alcotest.(check bool) "line" true
    (Convex.is_concave [| (0.0, 0.0); (1.0, 1.0); (2.0, 2.0) |]);
  Alcotest.(check bool) "two points" true (Convex.is_concave [| (0.0, 0.0); (1.0, 5.0) |])

let test_is_nondecreasing () =
  Alcotest.(check bool) "yes" true
    (Convex.is_nondecreasing [| (0.0, 0.0); (1.0, 0.0); (2.0, 1.0) |]);
  Alcotest.(check bool) "no" false
    (Convex.is_nondecreasing [| (0.0, 1.0); (1.0, 0.5) |])

let test_max_violation () =
  let v = Convex.max_concavity_violation [| (0.0, 0.0); (1.0, 1.0); (2.0, 3.0) |] in
  Helpers.check_float "slope jump 1 -> 2" 1.0 v;
  Alcotest.(check bool) "concave negative" true
    (Convex.max_concavity_violation [| (0.0, 0.0); (1.0, 2.0); (2.0, 3.0) |] < 0.0)

let prop_envelope_concave_and_majorizing =
  QCheck2.Test.make ~name:"envelope is concave and majorizes data" ~count:300
    QCheck2.Gen.(
      list_size (int_range 2 30) (pair (float_range 0.0 10.0) (float_range 0.0 10.0)))
    (fun pts ->
      let pts = Array.of_list pts in
      let env = Convex.upper_envelope pts in
      Convex.is_concave ~eps:1e-7 env)

let () =
  Alcotest.run "numerics-convex"
    [
      ( "envelope",
        [
          Alcotest.test_case "identity on concave" `Quick test_envelope_identity_on_concave;
          Alcotest.test_case "drops dips" `Quick test_envelope_drops_below_chord;
          Alcotest.test_case "unsorted input" `Quick test_envelope_unsorted_input;
          Alcotest.test_case "duplicate x" `Quick test_envelope_duplicate_x;
          Alcotest.test_case "majorizes data" `Quick test_envelope_majorizes;
          Alcotest.test_case "single point" `Quick test_envelope_single_point;
        ] );
      ( "checks",
        [
          Alcotest.test_case "is_concave" `Quick test_is_concave;
          Alcotest.test_case "is_nondecreasing" `Quick test_is_nondecreasing;
          Alcotest.test_case "max violation" `Quick test_max_violation;
        ] );
      Helpers.qsuite "properties" [ prop_envelope_concave_and_majorizing ];
    ]
