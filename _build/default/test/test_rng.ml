open Aa_numerics

let test_determinism () =
  let a = Rng.create ~seed:123 () in
  let b = Rng.create ~seed:123 () in
  for i = 0 to 99 do
    Alcotest.(check int64)
      (Printf.sprintf "draw %d" i)
      (Rng.bits64 a) (Rng.bits64 b)
  done

let test_seeds_differ () =
  let a = Rng.create ~seed:1 () in
  let b = Rng.create ~seed:2 () in
  Alcotest.(check bool) "different streams" true (Rng.bits64 a <> Rng.bits64 b)

let test_copy_independent () =
  let a = Rng.create ~seed:5 () in
  let b = Rng.copy a in
  let x = Rng.bits64 a in
  let y = Rng.bits64 b in
  Alcotest.(check int64) "copy replays" x y

let test_split () =
  let a = Rng.create ~seed:9 () in
  let b = Rng.split a in
  (* the split stream differs from the parent's continuation *)
  Alcotest.(check bool) "independent" true (Rng.bits64 a <> Rng.bits64 b)

let test_float_range () =
  let rng = Rng.create ~seed:11 () in
  for _ = 1 to 10_000 do
    let x = Rng.float rng 3.5 in
    if not (0.0 <= x && x < 3.5) then Alcotest.failf "float out of range: %g" x
  done

let test_uniform_moments () =
  let rng = Rng.create ~seed:13 () in
  let xs = Array.init 100_000 (fun _ -> Rng.uniform rng ~lo:2.0 ~hi:4.0) in
  Helpers.check_float ~eps:0.01 "mean" 3.0 (Stats.mean xs);
  Helpers.check_float ~eps:0.02 "variance" (1.0 /. 3.0) (Stats.variance xs)

let test_int_range () =
  let rng = Rng.create ~seed:17 () in
  let counts = Array.make 7 0 in
  for _ = 1 to 70_000 do
    let k = Rng.int rng 7 in
    counts.(k) <- counts.(k) + 1
  done;
  Array.iteri
    (fun i c ->
      if c < 9_000 || c > 11_000 then Alcotest.failf "bucket %d count %d far from 10000" i c)
    counts

let test_normal_moments () =
  let rng = Rng.create ~seed:19 () in
  let xs = Array.init 200_000 (fun _ -> Rng.normal rng ~mu:1.0 ~sigma:2.0) in
  Helpers.check_float ~eps:0.02 "mean" 1.0 (Stats.mean xs);
  Helpers.check_float ~eps:0.05 "stddev" 2.0 (Stats.stddev xs)

let test_truncated_normal () =
  let rng = Rng.create ~seed:23 () in
  for _ = 1 to 10_000 do
    let x = Rng.truncated_normal rng ~mu:0.5 ~sigma:1.0 ~lo:0.0 in
    if x < 0.0 then Alcotest.failf "negative truncated normal: %g" x
  done

let test_exponential () =
  let rng = Rng.create ~seed:29 () in
  let xs = Array.init 200_000 (fun _ -> Rng.exponential rng ~rate:4.0) in
  Helpers.check_float ~eps:0.005 "mean 1/rate" 0.25 (Stats.mean xs);
  Array.iter (fun x -> if x < 0.0 then Alcotest.fail "negative exponential") xs

let test_power_law () =
  let rng = Rng.create ~seed:31 () in
  (* alpha = 3: mean of Pareto(xmin=1, tail 2) = 2 *)
  let xs = Array.init 400_000 (fun _ -> Rng.power_law rng ~alpha:3.0 ~xmin:1.0) in
  Array.iter (fun x -> if x < 1.0 then Alcotest.fail "below xmin") xs;
  Helpers.check_float ~eps:0.03 "mean" 2.0 (Stats.mean xs)

let test_two_point () =
  let rng = Rng.create ~seed:37 () in
  let low = ref 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let x = Rng.two_point rng ~gamma:0.8 ~lo:1.0 ~hi:5.0 in
    if x = 1.0 then incr low
    else if x <> 5.0 then Alcotest.failf "unexpected value %g" x
  done;
  let frac = float_of_int !low /. float_of_int n in
  Helpers.check_float ~eps:0.01 "gamma" 0.8 frac

let test_simplex () =
  let rng = Rng.create ~seed:41 () in
  for _ = 1 to 1_000 do
    let k = 1 + Rng.int rng 10 in
    let parts = Rng.simplex rng k in
    Alcotest.(check int) "length" k (Array.length parts);
    Array.iter (fun p -> if p < 0.0 then Alcotest.fail "negative part") parts;
    Helpers.check_float ~eps:1e-9 "sums to 1" 1.0 (Util.kahan_sum parts)
  done

let test_shuffle_permutes () =
  let rng = Rng.create ~seed:43 () in
  let a = Array.init 50 Fun.id in
  let b = Array.copy a in
  Rng.shuffle rng b;
  let sorted = Array.copy b in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same elements" a sorted;
  Alcotest.(check bool) "actually moved" true (b <> a)

let test_invalid_args () =
  let rng = Rng.create () in
  Alcotest.check_raises "float 0" (Invalid_argument "Rng.float: bound must be positive")
    (fun () -> ignore (Rng.float rng 0.0));
  Alcotest.check_raises "int 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0));
  Alcotest.check_raises "power_law alpha" (Invalid_argument "Rng.power_law: need alpha > 1")
    (fun () -> ignore (Rng.power_law rng ~alpha:1.0 ~xmin:1.0))

let () =
  Alcotest.run "numerics-rng"
    [
      ( "stream",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "seeds differ" `Quick test_seeds_differ;
          Alcotest.test_case "copy" `Quick test_copy_independent;
          Alcotest.test_case "split" `Quick test_split;
        ] );
      ( "distributions",
        [
          Alcotest.test_case "float range" `Quick test_float_range;
          Alcotest.test_case "uniform moments" `Quick test_uniform_moments;
          Alcotest.test_case "int buckets" `Quick test_int_range;
          Alcotest.test_case "normal moments" `Quick test_normal_moments;
          Alcotest.test_case "truncated normal" `Quick test_truncated_normal;
          Alcotest.test_case "exponential" `Quick test_exponential;
          Alcotest.test_case "power law" `Quick test_power_law;
          Alcotest.test_case "two point" `Quick test_two_point;
          Alcotest.test_case "simplex" `Quick test_simplex;
          Alcotest.test_case "shuffle" `Quick test_shuffle_permutes;
          Alcotest.test_case "invalid args" `Quick test_invalid_args;
        ] );
    ]
