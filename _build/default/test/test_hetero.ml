open Aa_numerics
open Aa_utility
open Aa_core

let mk ~capacities utilities = Hetero.create ~capacities utilities

let cap3 = [| 10.0; 5.0; 3.0 |]

let us3 cmax =
  [|
    Utility.Shapes.capped_linear ~cap:cmax ~slope:2.0 ~knee:4.0;
    Utility.Shapes.power ~cap:cmax ~coeff:2.0 ~beta:0.5;
    Utility.Shapes.linear ~cap:cmax ~slope:0.5;
    Utility.Shapes.saturating ~cap:cmax ~limit:5.0 ~halfway:2.0;
  |]

let test_create_and_accessors () =
  let t = mk ~capacities:cap3 (us3 10.0) in
  Alcotest.(check int) "servers" 3 (Hetero.n_servers t);
  Alcotest.(check int) "threads" 4 (Hetero.n_threads t);
  Helpers.check_float "total" 18.0 (Hetero.total_capacity t)

let test_create_validation () =
  Alcotest.check_raises "bad capacity"
    (Invalid_argument "Hetero.create: capacities must be positive") (fun () ->
      ignore (mk ~capacities:[| 10.0; 0.0 |] (us3 10.0)));
  (try
     ignore (mk ~capacities:cap3 (us3 5.0));
     Alcotest.fail "wrong domain accepted"
   with Invalid_argument _ -> ())

let test_to_homogeneous () =
  let t = mk ~capacities:[| 4.0; 4.0 |] (us3 4.0) in
  (match Hetero.to_homogeneous t with
  | Some inst ->
      Alcotest.(check int) "servers" 2 inst.servers;
      Helpers.check_float "capacity" 4.0 inst.capacity
  | None -> Alcotest.fail "homogeneous not recognized");
  match Hetero.to_homogeneous (mk ~capacities:cap3 (us3 10.0)) with
  | Some _ -> Alcotest.fail "heterogeneous mistaken for homogeneous"
  | None -> ()

let test_superopt_upper_bound () =
  let t = mk ~capacities:cap3 (us3 10.0) in
  let so = Hetero.superopt t in
  let a = Hetero.solve t in
  (match Hetero.check t a with Ok () -> () | Error e -> Alcotest.fail e);
  Helpers.check_le "achieved <= F^" (Hetero.utility_of t a) (so.utility +. 1e-9)

let test_solve_matches_algo2_on_homogeneous () =
  (* when capacities are equal the generalized solver must coincide in
     value with Algorithm 2 *)
  let rng = Rng.create ~seed:11 () in
  for _ = 1 to 10 do
    let trial = Rng.split rng in
    let inst =
      Aa_workload.Gen.instance trial ~servers:3 ~capacity:30.0 ~threads:9
        Aa_workload.Gen.Uniform
    in
    let t = Hetero.create ~capacities:(Array.make 3 30.0) inst.utilities in
    let a_h = Hetero.solve t in
    let a_2 = Algo2.solve inst in
    Helpers.check_float ~eps:1e-9 "same utility" (Assignment.utility inst a_2)
      (Hetero.utility_of t a_h)
  done

let test_uu_capacity_aware () =
  let t = mk ~capacities:[| 6.0; 3.0 |] (Array.make 3 (Utility.Shapes.linear ~cap:6.0 ~slope:1.0)) in
  let a = Hetero.uu t in
  (match Hetero.check t a with Ok () -> () | Error e -> Alcotest.fail e);
  (* the capacity-6 server should take 2 of the 3 threads *)
  let counts = Array.make 2 0 in
  Array.iter (fun j -> counts.(j) <- counts.(j) + 1) a.server;
  Alcotest.(check int) "big server takes two" 2 counts.(0)

let test_exact_small () =
  (* two servers 4 and 2; two threads each wanting 4: optimum puts one
     per server: 4 + 2 = 6 *)
  let cmax = 4.0 in
  let us = Array.make 2 (Utility.Shapes.capped_linear ~cap:cmax ~slope:1.0 ~knee:4.0) in
  let t = mk ~capacities:[| 4.0; 2.0 |] us in
  let a, opt = Hetero.exact t in
  Helpers.check_float ~eps:1e-9 "optimum" 6.0 opt;
  (match Hetero.check t a with Ok () -> () | Error e -> Alcotest.fail e);
  Helpers.check_float ~eps:1e-9 "assignment value" opt (Hetero.utility_of t a)

let test_exact_prefers_big_server_for_hungry_thread () =
  let cmax = 8.0 in
  let us =
    [|
      Utility.Shapes.capped_linear ~cap:cmax ~slope:10.0 ~knee:8.0 (* hungry, valuable *);
      Utility.Shapes.capped_linear ~cap:cmax ~slope:1.0 ~knee:2.0;
    |]
  in
  let t = mk ~capacities:[| 8.0; 2.0 |] us in
  let a, opt = Hetero.exact t in
  Alcotest.(check int) "hungry thread on the big server" 0 a.server.(0);
  Helpers.check_float ~eps:1e-9 "optimum" 82.0 opt

(* properties *)

let gen_hetero =
  QCheck2.Gen.(
    let* m = int_range 1 3 in
    let* caps = list_repeat m (float_range 2.0 20.0) in
    let caps = Array.of_list caps in
    let cmax = Array.fold_left Float.max caps.(0) caps in
    let* n = int_range 1 6 in
    let* us = list_repeat n (Helpers.gen_utility_with_cap cmax) in
    return (Hetero.create ~capacities:caps (Array.of_list us)))

let prop_solve_feasible =
  QCheck2.Test.make ~name:"hetero solve: feasible" ~count:200 gen_hetero (fun t ->
      match Hetero.check t (Hetero.solve t) with Ok () -> true | Error _ -> false)

let prop_exact_bounds =
  QCheck2.Test.make ~name:"hetero: solve <= exact <= superopt" ~count:80 gen_hetero
    (fun t ->
      (* compare on exact PLC forms *)
      let t =
        Hetero.create ~capacities:t.capacities
          (Array.map (fun u -> Utility.of_plc (Utility.to_plc u)) t.utilities)
      in
      let _, opt = Hetero.exact t in
      let so = (Hetero.superopt t).utility in
      let heuristic = Hetero.utility_of t (Hetero.solve t) in
      let scale = Float.max 1.0 so in
      heuristic <= opt +. (1e-6 *. scale) && opt <= so +. (1e-6 *. scale))

let prop_generalized_ratio_healthy =
  (* no proof for hetero, but empirically the generalized Algorithm 2
     should stay above ~0.6 of the pooled bound on these workloads *)
  QCheck2.Test.make ~name:"hetero: empirical ratio above 0.6" ~count:100 gen_hetero
    (fun t ->
      let so = (Hetero.superopt t).utility in
      if so <= 0.0 then true
      else Hetero.utility_of t (Hetero.solve t) >= 0.6 *. so -. 1e-6)

let () =
  Alcotest.run "hetero"
    [
      ( "basics",
        [
          Alcotest.test_case "create" `Quick test_create_and_accessors;
          Alcotest.test_case "validation" `Quick test_create_validation;
          Alcotest.test_case "to_homogeneous" `Quick test_to_homogeneous;
        ] );
      ( "solve",
        [
          Alcotest.test_case "upper bound" `Quick test_superopt_upper_bound;
          Alcotest.test_case "matches Algo2 when homogeneous" `Quick
            test_solve_matches_algo2_on_homogeneous;
          Alcotest.test_case "uu capacity aware" `Quick test_uu_capacity_aware;
        ] );
      ( "exact",
        [
          Alcotest.test_case "small" `Quick test_exact_small;
          Alcotest.test_case "hungry thread placement" `Quick
            test_exact_prefers_big_server_for_hungry_thread;
        ] );
      Helpers.qsuite "properties"
        [ prop_solve_feasible; prop_exact_bounds; prop_generalized_ratio_healthy ];
    ]
