open Aa_numerics

let test_clamp () =
  Helpers.check_float "inside" 3.0 (Util.clamp ~lo:0.0 ~hi:10.0 3.0);
  Helpers.check_float "below" 0.0 (Util.clamp ~lo:0.0 ~hi:10.0 (-4.0));
  Helpers.check_float "above" 10.0 (Util.clamp ~lo:0.0 ~hi:10.0 14.0);
  Helpers.check_float "degenerate" 5.0 (Util.clamp ~lo:5.0 ~hi:5.0 7.0)

let test_approx_equal () =
  Alcotest.(check bool) "exact" true (Util.approx_equal 1.0 1.0);
  Alcotest.(check bool) "close abs" true (Util.approx_equal ~eps:1e-6 0.0 1e-9);
  Alcotest.(check bool) "close rel" true (Util.approx_equal ~eps:1e-6 1e12 (1e12 +. 1.0));
  Alcotest.(check bool) "far" false (Util.approx_equal 1.0 1.1)

let test_kahan () =
  (* 10^7 additions of 0.1 lose precision with naive summation *)
  let a = Array.make 10_000_000 0.1 in
  Helpers.check_float ~eps:1e-9 "kahan" 1_000_000.0 (Util.kahan_sum a);
  Helpers.check_float "empty" 0.0 (Util.kahan_sum [||]);
  Helpers.check_float "sum_by" 6.0 (Util.sum_by float_of_int [| 1; 2; 3 |])

let test_linspace () =
  let a = Util.linspace 0.0 10.0 5 in
  Alcotest.(check int) "len" 5 (Array.length a);
  Helpers.check_float "first" 0.0 a.(0);
  Helpers.check_float "mid" 5.0 a.(2);
  Helpers.check_float "last exact" 10.0 a.(4);
  Alcotest.check_raises "k=1 rejected" (Invalid_argument "Util.linspace: need k >= 2")
    (fun () -> ignore (Util.linspace 0.0 1.0 1))

let test_logspace () =
  let a = Util.logspace 1.0 1000.0 4 in
  Helpers.check_float "first" 1.0 a.(0);
  Helpers.check_float ~eps:1e-9 "second" 10.0 a.(1);
  Helpers.check_float "last" 1000.0 a.(3)

let test_argmax () =
  Alcotest.(check int) "simple" 2 (Util.argmax Fun.id [| 1.0; 2.0; 5.0; 3.0 |]);
  Alcotest.(check int) "first of ties" 0 (Util.argmax Fun.id [| 5.0; 5.0 |]);
  Alcotest.check_raises "empty" (Invalid_argument "Util.argmax: empty array") (fun () ->
      ignore (Util.argmax Fun.id [||]))

let test_is_sorted_strict () =
  Alcotest.(check bool) "yes" true (Util.is_sorted_strict [| 1.0; 2.0; 3.0 |]);
  Alcotest.(check bool) "dup" false (Util.is_sorted_strict [| 1.0; 1.0 |]);
  Alcotest.(check bool) "desc" false (Util.is_sorted_strict [| 2.0; 1.0 |]);
  Alcotest.(check bool) "empty" true (Util.is_sorted_strict [||]);
  Alcotest.(check bool) "single" true (Util.is_sorted_strict [| 0.0 |])

let test_float_down () =
  Alcotest.(check bool) "below" true (Util.float_down 1.0 < 1.0);
  Alcotest.(check bool) "tight" true (1.0 -. Util.float_down 1.0 < 1e-15);
  Helpers.check_float "inf" Float.infinity (Util.float_down Float.infinity)

let test_bisect () =
  (* nonincreasing f with root at x = 2 *)
  let f x = 2.0 -. x in
  Helpers.check_float ~eps:1e-12 "root" 2.0 (Root.bisect ~f ~lo:0.0 ~hi:10.0 ())

let test_bisect_int () =
  let first_true = Root.bisect_int ~f:(fun x -> x * x >= 170) ~lo:0 ~hi:100 in
  Alcotest.(check int) "sqrt ceil" 14 first_true;
  Alcotest.(check int) "all true" 5 (Root.bisect_int ~f:(fun _ -> true) ~lo:5 ~hi:20);
  Alcotest.(check int) "singleton" 7 (Root.bisect_int ~f:(fun _ -> true) ~lo:7 ~hi:7)

let test_fixed_budget () =
  (* demand(p) = 10 - p, budget 4 -> price 6 *)
  let price = Root.fixed_budget ~demand:(fun p -> 10.0 -. p) ~budget:4.0 ~max_price:10.0 in
  Helpers.check_float ~eps:1e-10 "price" 6.0 price

let test_dynvec_basic () =
  let v = Dynvec.create () in
  Alcotest.(check int) "empty" 0 (Dynvec.length v);
  for i = 0 to 99 do
    Dynvec.push v (i * i)
  done;
  Alcotest.(check int) "length" 100 (Dynvec.length v);
  Alcotest.(check int) "get" 49 (Dynvec.get v 7);
  Dynvec.set v 7 (-1);
  Alcotest.(check int) "set" (-1) (Dynvec.get v 7);
  Alcotest.(check int) "to_array" 100 (Array.length (Dynvec.to_array v));
  let sum = ref 0 in
  Dynvec.iter (fun x -> sum := !sum + x) v;
  Alcotest.(check bool) "iter covers all" true (!sum < 328350)

let test_dynvec_bounds () =
  let v = Dynvec.create () in
  Dynvec.push v 1;
  Alcotest.check_raises "get oob" (Invalid_argument "Dynvec: index out of bounds") (fun () ->
      ignore (Dynvec.get v 1));
  Alcotest.check_raises "negative" (Invalid_argument "Dynvec: index out of bounds") (fun () ->
      ignore (Dynvec.get v (-1)))

let () =
  Alcotest.run "numerics-util"
    [
      ( "util",
        [
          Alcotest.test_case "clamp" `Quick test_clamp;
          Alcotest.test_case "approx_equal" `Quick test_approx_equal;
          Alcotest.test_case "kahan_sum" `Quick test_kahan;
          Alcotest.test_case "linspace" `Quick test_linspace;
          Alcotest.test_case "logspace" `Quick test_logspace;
          Alcotest.test_case "argmax" `Quick test_argmax;
          Alcotest.test_case "is_sorted_strict" `Quick test_is_sorted_strict;
          Alcotest.test_case "float_down" `Quick test_float_down;
        ] );
      ( "root",
        [
          Alcotest.test_case "bisect" `Quick test_bisect;
          Alcotest.test_case "bisect_int" `Quick test_bisect_int;
          Alcotest.test_case "fixed_budget" `Quick test_fixed_budget;
        ] );
      ( "dynvec",
        [
          Alcotest.test_case "basic" `Quick test_dynvec_basic;
          Alcotest.test_case "bounds" `Quick test_dynvec_bounds;
        ] );
    ]
