open Aa_numerics
open Aa_utility
open Aa_core
open Aa_workload

let all_dists =
  [
    Gen.Uniform;
    Gen.Normal { mu = 1.0; sigma = 1.0 };
    Gen.Power_law { alpha = 2.0 };
    Gen.Discrete { gamma = 0.85; theta = 5.0 };
  ]

(* ---------- paper generator ---------- *)

let test_draw_pair_ordered () =
  let rng = Rng.create ~seed:1 () in
  List.iter
    (fun dist ->
      for _ = 1 to 1_000 do
        let v, w = Gen.draw_pair rng dist in
        if w > v then Alcotest.failf "%s: w %g > v %g" (Gen.name dist) w v;
        if v < 0.0 then Alcotest.failf "%s: negative draw" (Gen.name dist)
      done)
    all_dists

let test_generated_utilities_valid () =
  let rng = Rng.create ~seed:2 () in
  List.iter
    (fun dist ->
      for _ = 1 to 50 do
        let u = Gen.utility rng ~cap:1000.0 dist in
        (match Utility.check u with
        | Ok () -> ()
        | Error e -> Alcotest.failf "%s: %s" (Gen.name dist) e);
        Helpers.check_float "anchored at 0" 0.0 (Utility.eval u 0.0);
        Helpers.check_float "cap" 1000.0 (Utility.cap u)
      done)
    all_dists

let test_generator_anchors () =
  (* f(C/2) ~ v and f(C) ~ v + w up to the concave envelope repair *)
  let rng = Rng.create ~seed:3 () in
  for _ = 1 to 50 do
    let v, w = Gen.draw_pair rng Gen.Uniform in
    let u =
      Sampled.of_points [| (0.0, 0.0); (500.0, v); (1000.0, v +. w) |]
    in
    (* the concave-envelope repair samples on a grid that need not contain
       x = C/2 exactly, so allow a small relative slack around the anchor *)
    Helpers.check_ge ~eps:1e-3 "mid near v" (Utility.eval u 500.0) v;
    Helpers.check_float ~eps:1e-6 "end anchored" (v +. w) (Utility.eval u 1000.0)
  done

let test_instance_shape () =
  let rng = Rng.create ~seed:4 () in
  let inst = Gen.instance rng ~servers:8 ~capacity:1000.0 ~threads:40 Gen.Uniform in
  Alcotest.(check int) "servers" 8 inst.servers;
  Alcotest.(check int) "threads" 40 (Instance.n_threads inst);
  Helpers.check_float "beta" 5.0 (Instance.beta inst)

let test_instance_deterministic_per_seed () =
  let mk () =
    Gen.instance (Rng.create ~seed:99 ()) ~servers:2 ~capacity:10.0 ~threads:4 Gen.Uniform
  in
  let a = mk () and b = mk () in
  for i = 0 to 3 do
    for k = 0 to 10 do
      let x = float_of_int k in
      Helpers.check_float "same utility" (Utility.eval a.utilities.(i) x)
        (Utility.eval b.utilities.(i) x)
    done
  done

let test_discrete_theta_validation () =
  let rng = Rng.create ~seed:5 () in
  Alcotest.check_raises "theta < 1" (Invalid_argument "Gen.draw: discrete needs theta >= 1")
    (fun () -> ignore (Gen.draw_pair rng (Gen.Discrete { gamma = 0.5; theta = 0.5 })))

(* ---------- cache workloads ---------- *)

let test_mpki_monotone_decreasing () =
  List.iter
    (fun p ->
      let prev = ref (Cache.mpki p 0.0) in
      for i = 1 to 50 do
        let c = 8.0 *. float_of_int i /. 50.0 in
        let m = Cache.mpki p c in
        Helpers.check_le "mpki decreasing" m (!prev +. 1e-12);
        prev := m
      done)
    [ Cache.streaming "s"; Cache.cache_friendly "f"; Cache.cache_hungry "h" ]

let test_ipc_increasing () =
  let p = Cache.cache_hungry "h" in
  Helpers.check_ge "more cache, more IPC" (Cache.ipc p 8.0) (Cache.ipc p 0.0);
  Helpers.check_le "ipc bounded by base" (Cache.ipc p 1000.0) (1.0 /. p.base_cpi)

let test_cache_utility_valid () =
  let rng = Rng.create ~seed:6 () in
  for i = 0 to 20 do
    let p = Cache.random rng (Printf.sprintf "t%d" i) in
    let u = Cache.utility ~cache:8.0 p in
    match Utility.check u with
    | Ok () -> ()
    | Error e -> Alcotest.failf "%s: %s" p.label e
  done

let test_cache_instance () =
  let profiles = [| Cache.streaming "a"; Cache.cache_hungry "b" |] in
  let inst = Cache.instance ~cores:2 ~cache:4.0 profiles in
  Alcotest.(check int) "cores" 2 inst.servers;
  Helpers.check_float "cache" 4.0 inst.capacity

(* ---------- cloud workloads ---------- *)

let test_bid_curve () =
  let u =
    Cloud.bid_curve ~cap:10.0
      [ { Cloud.size = 2.0; price = 8.0 }; { Cloud.size = 4.0; price = 8.0 } ]
  in
  Helpers.check_float "first tier" 8.0 (Utility.eval u 2.0);
  Helpers.check_float "mid second tier" 12.0 (Utility.eval u 4.0);
  Helpers.check_float "all tiers" 16.0 (Utility.eval u 6.0);
  Helpers.check_float "flat" 16.0 (Utility.eval u 10.0)

let test_bid_curve_rejects_convex () =
  (* increasing unit price = convex: must be rejected *)
  try
    ignore
      (Cloud.bid_curve ~cap:10.0
         [ { Cloud.size = 2.0; price = 1.0 }; { Cloud.size = 2.0; price = 10.0 } ]);
    Alcotest.fail "convex tiers accepted"
  with Invalid_argument _ -> ()

let test_elastic () =
  let u = Cloud.elastic ~cap:8.0 ~budget:16.0 ~beta:0.5 in
  Helpers.check_float ~eps:1e-9 "full budget at cap" 16.0 (Utility.eval u 8.0);
  Helpers.check_float ~eps:1e-9 "half at quarter" 8.0 (Utility.eval u 2.0)

let test_random_customers_valid () =
  let rng = Rng.create ~seed:7 () in
  for _ = 1 to 40 do
    let u = Cloud.random_customer rng ~cap:64.0 in
    match Utility.check u with Ok () -> () | Error e -> Alcotest.fail e
  done

let test_cloud_instance () =
  let rng = Rng.create ~seed:8 () in
  let inst = Cloud.instance rng ~machines:4 ~capacity:64.0 ~customers:10 in
  Alcotest.(check int) "machines" 4 inst.servers;
  Alcotest.(check int) "customers" 10 (Instance.n_threads inst)

(* ---------- properties ---------- *)

let prop_generated_concave_everywhere =
  QCheck2.Test.make ~name:"paper generator: concave nondecreasing for all distributions"
    ~count:100
    QCheck2.Gen.(pair (int_range 0 3) (int_range 0 10_000))
    (fun (di, seed) ->
      let dist = List.nth all_dists di in
      let rng = Rng.create ~seed () in
      let u = Gen.utility rng ~cap:100.0 dist in
      match Utility.check u with Ok () -> true | Error _ -> false)

let () =
  Alcotest.run "workload"
    [
      ( "generator",
        [
          Alcotest.test_case "pairs ordered" `Quick test_draw_pair_ordered;
          Alcotest.test_case "utilities valid" `Quick test_generated_utilities_valid;
          Alcotest.test_case "anchors" `Quick test_generator_anchors;
          Alcotest.test_case "instance shape" `Quick test_instance_shape;
          Alcotest.test_case "deterministic" `Quick test_instance_deterministic_per_seed;
          Alcotest.test_case "theta validation" `Quick test_discrete_theta_validation;
        ] );
      ( "cache",
        [
          Alcotest.test_case "mpki decreasing" `Quick test_mpki_monotone_decreasing;
          Alcotest.test_case "ipc increasing" `Quick test_ipc_increasing;
          Alcotest.test_case "utilities valid" `Quick test_cache_utility_valid;
          Alcotest.test_case "instance" `Quick test_cache_instance;
        ] );
      ( "cloud",
        [
          Alcotest.test_case "bid curve" `Quick test_bid_curve;
          Alcotest.test_case "rejects convex tiers" `Quick test_bid_curve_rejects_convex;
          Alcotest.test_case "elastic" `Quick test_elastic;
          Alcotest.test_case "random customers" `Quick test_random_customers_valid;
          Alcotest.test_case "instance" `Quick test_cloud_instance;
        ] );
      Helpers.qsuite "properties" [ prop_generated_concave_everywhere ];
    ]
