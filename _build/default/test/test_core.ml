open Aa_numerics
open Aa_utility
open Aa_core

let cap = 10.0

let mk_inst ?(servers = 2) utilities = Instance.create ~servers ~capacity:cap utilities

let basic () =
  mk_inst
    [|
      Utility.Shapes.power ~cap ~coeff:3.0 ~beta:0.5;
      Utility.Shapes.capped_linear ~cap ~slope:1.0 ~knee:6.0;
      Utility.Shapes.linear ~cap ~slope:0.5;
    |]

(* ---------- Instance ---------- *)

let test_instance_create () =
  let inst = basic () in
  Alcotest.(check int) "threads" 3 (Instance.n_threads inst);
  Helpers.check_float "beta" 1.5 (Instance.beta inst);
  Alcotest.(check int) "plc count" 3 (Array.length (Instance.to_plc inst))

let test_instance_validation () =
  Alcotest.check_raises "no servers" (Invalid_argument "Instance.create: need at least one server")
    (fun () -> ignore (mk_inst ~servers:0 [| Utility.Shapes.linear ~cap ~slope:1.0 |]));
  Alcotest.check_raises "no threads" (Invalid_argument "Instance.create: no threads") (fun () ->
      ignore (mk_inst [||]));
  (try
     ignore (mk_inst [| Utility.Shapes.linear ~cap:5.0 ~slope:1.0 |]);
     Alcotest.fail "cap mismatch accepted"
   with Invalid_argument _ -> ())

(* ---------- Assignment ---------- *)

let test_assignment_utility_and_load () =
  let inst = basic () in
  let a = Assignment.make ~server:[| 0; 0; 1 |] ~alloc:[| 4.0; 6.0; 10.0 |] in
  (match Assignment.check inst a with Ok () -> () | Error e -> Alcotest.fail e);
  Helpers.check_float "utility" ((3.0 *. 2.0) +. 6.0 +. 5.0) (Assignment.utility inst a);
  let load = Assignment.server_load inst a in
  Helpers.check_float "load 0" 10.0 load.(0);
  Helpers.check_float "load 1" 10.0 load.(1);
  Alcotest.(check (list int)) "threads on 0" [ 0; 1 ] (Assignment.threads_on a 0)

let test_assignment_check_failures () =
  let inst = basic () in
  let over = Assignment.make ~server:[| 0; 0; 1 |] ~alloc:[| 6.0; 6.0; 1.0 |] in
  (match Assignment.check inst over with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "overload accepted");
  let bad_server = Assignment.make ~server:[| 0; 2; 1 |] ~alloc:[| 1.0; 1.0; 1.0 |] in
  (match Assignment.check inst bad_server with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "server index out of range accepted");
  let negative = Assignment.make ~server:[| 0; 0; 1 |] ~alloc:[| -1.0; 1.0; 1.0 |] in
  (match Assignment.check inst negative with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "negative alloc accepted");
  let wrong_n = Assignment.make ~server:[| 0 |] ~alloc:[| 1.0 |] in
  match Assignment.check inst wrong_n with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "wrong thread count accepted"

(* ---------- Superopt ---------- *)

let test_superopt_upper_bounds_feasible () =
  let inst = basic () in
  let so = Superopt.compute inst in
  (* any feasible assignment utility is below F^ (Lemma V.2) *)
  let a = Assignment.make ~server:[| 0; 0; 1 |] ~alloc:[| 4.0; 6.0; 10.0 |] in
  Helpers.check_le "F <= F^" (Assignment.utility inst a) (so.utility +. 1e-9)

let test_superopt_budget_saturation () =
  (* Lemma V.3: with n >= m and exhaust, sum chat = m*C *)
  let inst = basic () in
  let so = Superopt.compute ~exhaust:true inst in
  Helpers.check_float ~eps:1e-9 "sum = mC" 20.0 (Util.kahan_sum so.chat)

let test_superopt_fewer_threads_than_servers () =
  let inst = mk_inst ~servers:5 [| Utility.Shapes.linear ~cap ~slope:1.0 |] in
  let so = Superopt.compute inst in
  Helpers.check_float "everyone capped" cap so.chat.(0);
  Helpers.check_float "utility" cap so.utility

let test_superopt_waterfill_agrees () =
  let inst = basic () in
  let a = Superopt.compute inst in
  let b = Superopt.compute_waterfill inst in
  Helpers.check_float ~eps:1e-3 "same value" a.utility b.utility

let test_superopt_chat_within_caps () =
  let inst = basic () in
  let so = Superopt.compute inst in
  Array.iter (fun c -> if c < 0.0 || c > cap +. 1e-9 then Alcotest.failf "chat %g" c) so.chat

(* ---------- Linearized ---------- *)

let test_linearized_structure () =
  let inst = basic () in
  let lin = Linearized.make inst in
  Alcotest.(check int) "threads" 3 (Array.length lin.threads);
  Array.iteri
    (fun i (th : Linearized.thread) ->
      Alcotest.(check int) "index" i th.index;
      (* peak = f(chat) on the PLC form *)
      Helpers.check_float "peak" (Plc.eval lin.superopt.plc.(i) th.chat) th.peak;
      (* g agrees with f at chat and 0 *)
      Helpers.check_float "g(chat)" th.peak (Linearized.g_value th th.chat);
      if th.chat > 0.0 then Helpers.check_float "g(0)" 0.0 (Linearized.g_value th 0.0))
    lin.threads

let test_linearized_superoptimal_utility () =
  let inst = basic () in
  let lin = Linearized.make inst in
  Helpers.check_float ~eps:1e-9 "sum of peaks = F^" lin.superopt.utility
    (Linearized.superoptimal_utility lin)

let test_linearized_g_minorizes_f () =
  let inst = basic () in
  let lin = Linearized.make inst in
  Array.iteri
    (fun i (th : Linearized.thread) ->
      for k = 0 to 100 do
        let x = cap *. float_of_int k /. 100.0 in
        let g = Linearized.g_value th x in
        let f = Utility.eval inst.utilities.(i) x in
        if g > f +. 1e-7 then Alcotest.failf "thread %d: g(%g)=%g > f=%g" i x g f
      done)
    lin.threads

(* ---------- Solver umbrella ---------- *)

let test_solver_names () =
  List.iter
    (fun algo ->
      match Solver.of_name (Solver.name algo) with
      | Some a when a = algo -> ()
      | _ -> Alcotest.failf "roundtrip failed for %s" (Solver.name algo))
    Solver.all;
  Alcotest.(check bool) "unknown" true (Solver.of_name "nope" = None)

let test_solver_all_feasible () =
  let inst = basic () in
  let rng = Rng.create ~seed:3 () in
  List.iter
    (fun algo ->
      let a = Solver.solve ~rng algo inst in
      match Assignment.check inst a with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s infeasible: %s" (Solver.name algo) e)
    Solver.all

(* ---------- Bounds ---------- *)

let test_alpha_value () = Helpers.check_float ~eps:1e-12 "alpha" (2.0 *. (sqrt 2.0 -. 1.0)) Bounds.alpha

let test_certificate () =
  let inst = basic () in
  let so = Superopt.compute inst in
  let a = Algo2.solve inst in
  let cert = Bounds.certify inst so a in
  Helpers.check_float "achieved" (Assignment.utility inst a) cert.achieved;
  Alcotest.(check bool) "guarantee met" true cert.meets_guarantee;
  Helpers.check_le "ratio sane" cert.ratio 1.0

(* ---------- properties ---------- *)

let prop_superopt_bounds_any_algo =
  (* stated on the exact PLC forms: for smooth utilities the PLC-based F^
     is an upper bound only up to sampling error (see Superopt docs) *)
  QCheck2.Test.make ~name:"F^ upper-bounds every algorithm's utility" ~count:200
    Helpers.gen_instance (fun inst ->
      let inst = Helpers.plc_instance inst in
      let so = Superopt.compute inst in
      let rng = Rng.create ~seed:1 () in
      List.for_all
        (fun algo ->
          let a = Solver.solve ~rng algo inst in
          Assignment.utility inst a <= so.utility +. (1e-6 *. Float.max 1.0 so.utility))
        Solver.all)

let prop_superopt_saturation =
  QCheck2.Test.make ~name:"Lemma V.3: sum chat = min(mC, nC)" ~count:200 Helpers.gen_instance
    (fun inst ->
      let so = Superopt.compute ~exhaust:true inst in
      let m = float_of_int inst.servers in
      let n = float_of_int (Instance.n_threads inst) in
      let expect = Float.min (m *. inst.capacity) (n *. inst.capacity) in
      Util.approx_equal ~eps:1e-6 expect (Util.kahan_sum so.chat))

let prop_all_algorithms_feasible =
  QCheck2.Test.make ~name:"all algorithms produce feasible assignments" ~count:200
    Helpers.gen_instance (fun inst ->
      let rng = Rng.create ~seed:7 () in
      List.for_all
        (fun algo ->
          match Assignment.check inst (Solver.solve ~rng algo inst) with
          | Ok () -> true
          | Error _ -> false)
        Solver.all)

let () =
  Alcotest.run "core"
    [
      ( "instance",
        [
          Alcotest.test_case "create" `Quick test_instance_create;
          Alcotest.test_case "validation" `Quick test_instance_validation;
        ] );
      ( "assignment",
        [
          Alcotest.test_case "utility and load" `Quick test_assignment_utility_and_load;
          Alcotest.test_case "check failures" `Quick test_assignment_check_failures;
        ] );
      ( "superopt",
        [
          Alcotest.test_case "upper bound" `Quick test_superopt_upper_bounds_feasible;
          Alcotest.test_case "saturation" `Quick test_superopt_budget_saturation;
          Alcotest.test_case "n < m" `Quick test_superopt_fewer_threads_than_servers;
          Alcotest.test_case "waterfill agrees" `Quick test_superopt_waterfill_agrees;
          Alcotest.test_case "chat within caps" `Quick test_superopt_chat_within_caps;
        ] );
      ( "linearized",
        [
          Alcotest.test_case "structure" `Quick test_linearized_structure;
          Alcotest.test_case "superoptimal utility" `Quick test_linearized_superoptimal_utility;
          Alcotest.test_case "g minorizes f" `Quick test_linearized_g_minorizes_f;
        ] );
      ( "solver",
        [
          Alcotest.test_case "names" `Quick test_solver_names;
          Alcotest.test_case "all feasible" `Quick test_solver_all_feasible;
        ] );
      ( "bounds",
        [
          Alcotest.test_case "alpha" `Quick test_alpha_value;
          Alcotest.test_case "certificate" `Quick test_certificate;
        ] );
      Helpers.qsuite "properties"
        [ prop_superopt_bounds_any_algo; prop_superopt_saturation; prop_all_algorithms_feasible ];
    ]
