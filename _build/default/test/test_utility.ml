open Aa_numerics
open Aa_utility

let cap = 10.0

let all_shapes () =
  [
    ("power", Utility.Shapes.power ~cap ~coeff:3.0 ~beta:0.5);
    ("power-linear", Utility.Shapes.power ~cap ~coeff:2.0 ~beta:1.0);
    ("log", Utility.Shapes.log_utility ~cap ~coeff:2.0 ~rate:0.7);
    ("saturating", Utility.Shapes.saturating ~cap ~limit:6.0 ~halfway:2.0);
    ("expsat", Utility.Shapes.exp_saturating ~cap ~limit:5.0 ~rate:0.4);
    ("linear", Utility.Shapes.linear ~cap ~slope:1.2);
    ("capped", Utility.Shapes.capped_linear ~cap ~slope:2.0 ~knee:4.0);
  ]

let test_shapes_are_valid () =
  List.iter
    (fun (name, u) ->
      match Utility.check u with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: %s" name e)
    (all_shapes ())

let test_shape_values () =
  Helpers.check_float "power" (3.0 *. sqrt 4.0)
    (Utility.eval (Utility.Shapes.power ~cap ~coeff:3.0 ~beta:0.5) 4.0);
  Helpers.check_float "log" (2.0 *. log 8.0)
    (Utility.eval (Utility.Shapes.log_utility ~cap ~coeff:2.0 ~rate:0.7) 10.0);
  Helpers.check_float "saturating" 3.0
    (Utility.eval (Utility.Shapes.saturating ~cap ~limit:6.0 ~halfway:2.0) 2.0);
  Helpers.check_float "expsat" (5.0 *. (1.0 -. exp (-2.0)))
    (Utility.eval (Utility.Shapes.exp_saturating ~cap ~limit:5.0 ~rate:0.4) 5.0);
  Helpers.check_float "linear" 6.0 (Utility.eval (Utility.Shapes.linear ~cap ~slope:1.2) 5.0)

let test_eval_clamps () =
  let u = Utility.Shapes.linear ~cap ~slope:1.0 in
  Helpers.check_float "below" 0.0 (Utility.eval u (-3.0));
  Helpers.check_float "above" cap (Utility.eval u 100.0);
  Helpers.check_float "peak" cap (Utility.peak u)

let test_deriv_closed_forms () =
  List.iter
    (fun (name, u) ->
      let h = 1e-6 in
      List.iter
        (fun x ->
          let fd = (Utility.eval u (x +. h) -. Utility.eval u (x -. h)) /. (2.0 *. h) in
          let d = Utility.deriv u x in
          if not (Util.approx_equal ~eps:1e-3 fd d) then
            Alcotest.failf "%s deriv at %g: fd %g vs closed %g" name x fd d)
        [ 1.0; 3.0; 7.0 ])
    (all_shapes ())

let test_demand_is_inverse_of_deriv () =
  List.iter
    (fun (name, u) ->
      List.iter
        (fun lambda ->
          let d = Utility.demand u lambda in
          (* derivative at demand is >= lambda (just left of it) and
             < lambda just right of it *)
          if d > 1e-6 && d < cap -. 1e-6 then begin
            let left = Utility.deriv u (d *. (1.0 -. 1e-7)) in
            let right = Utility.deriv u (Float.min cap (d +. 1e-6)) in
            if left < lambda *. (1.0 -. 1e-4) then
              Alcotest.failf "%s: deriv left of demand %g < lambda %g" name left lambda;
            if right > lambda *. (1.0 +. 1e-2) && right > lambda +. 1e-9 then
              Alcotest.failf "%s: deriv right of demand %g > lambda %g" name right lambda
          end)
        [ 0.05; 0.2; 0.5; 1.0; 2.0 ])
    (all_shapes ())

let test_demand_at_zero_price () =
  List.iter
    (fun (name, u) ->
      if not (Util.approx_equal (Utility.demand u 0.0) cap) then
        Alcotest.failf "%s: demand at price 0 should be cap" name)
    (all_shapes ())

let test_to_plc_minorizes_smooth () =
  (* the PLC conversion must never exceed a concave function *)
  List.iter
    (fun (name, u) ->
      let p = Utility.to_plc ~samples:48 u in
      for i = 0 to 200 do
        let x = cap *. float_of_int i /. 200.0 in
        let diff = Plc.eval p x -. Utility.eval u x in
        if diff > 1e-7 then Alcotest.failf "%s: PLC exceeds f at %g by %g" name x diff
      done)
    (all_shapes ())

let test_to_plc_is_close () =
  List.iter
    (fun (name, u) ->
      let p = Utility.to_plc ~samples:128 u in
      let peak = Utility.peak u in
      for i = 0 to 100 do
        let x = cap *. float_of_int i /. 100.0 in
        let gap = Utility.eval u x -. Plc.eval p x in
        if gap > 0.01 *. Float.max 1.0 peak then
          Alcotest.failf "%s: PLC too far from f at %g (gap %g)" name x gap
      done)
    (all_shapes ())

let test_linearize_properties () =
  List.iter
    (fun (name, u) ->
      let chat = 4.0 in
      let g = Utility.linearize u ~chat in
      Helpers.check_float (name ^ ": g(chat) = f(chat)") (Utility.eval u chat)
        (Plc.eval g chat);
      Helpers.check_float (name ^ ": flat after chat") (Utility.eval u chat)
        (Plc.eval g cap);
      (* minorization (Lemma V.4) *)
      for i = 0 to 100 do
        let x = cap *. float_of_int i /. 100.0 in
        if Plc.eval g x > Utility.eval u x +. 1e-9 then
          Alcotest.failf "%s: g exceeds f at %g" name x
      done)
    (all_shapes ())

let test_linearize_chat_zero () =
  let u = Utility.Shapes.linear ~cap ~slope:2.0 in
  let g = Utility.linearize u ~chat:0.0 in
  Helpers.check_float "constant at f(0)" 0.0 (Plc.eval g 5.0)

let test_linearize_invalid () =
  let u = Utility.Shapes.linear ~cap ~slope:1.0 in
  Alcotest.check_raises "chat beyond cap"
    (Invalid_argument "Utility.linearize: chat outside [0, cap]") (fun () ->
      ignore (Utility.linearize u ~chat:(cap +. 1.0)))

let test_check_catches_bad () =
  (* a convex function sneaked in via the Smooth constructor *)
  let bad =
    Utility.Smooth
      {
        name = "convex";
        cap;
        eval = (fun x -> x *. x);
        deriv = (fun x -> 2.0 *. x);
        demand = None;
        spec = None;
      }
  in
  (match Utility.check bad with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "convex function accepted");
  let decreasing =
    Utility.Smooth
      {
        name = "decreasing";
        cap;
        eval = (fun x -> 10.0 -. x);
        deriv = (fun _ -> -1.0);
        demand = None;
        spec = None;
      }
  in
  match Utility.check decreasing with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "decreasing function accepted"

let test_shape_validation () =
  Alcotest.check_raises "power beta" (Invalid_argument "Shapes.power: beta outside (0, 1]")
    (fun () -> ignore (Utility.Shapes.power ~cap ~coeff:1.0 ~beta:1.5));
  Alcotest.check_raises "log rate" (Invalid_argument "Shapes.log_utility: rate must be positive")
    (fun () -> ignore (Utility.Shapes.log_utility ~cap ~coeff:1.0 ~rate:0.0))

let test_sampled_of_points () =
  let u = Sampled.of_points [| (0.0, 0.0); (5.0, 3.0); (10.0, 4.0) |] in
  (match Utility.check u with Ok () -> () | Error e -> Alcotest.fail e);
  Helpers.check_float "hits anchor 0" 0.0 (Utility.eval u 0.0);
  Helpers.check_ge "near anchor mid" (Utility.eval u 5.0) 2.99;
  Helpers.check_float ~eps:1e-6 "hits last anchor" 4.0 (Utility.eval u 10.0);
  Helpers.check_float "cap" 10.0 (Utility.cap u)

let test_sampled_envelope_deviation_small () =
  (* anchors with decreasing slopes: PCHIP is near-concave, deviation small *)
  let dev = Sampled.envelope_deviation [| (0.0, 0.0); (5.0, 3.0); (10.0, 4.0) |] in
  Helpers.check_le "deviation below 2%" dev 0.02

let test_sampled_rejects_bad_domain () =
  Alcotest.check_raises "domain" (Invalid_argument "Sampled.of_points: domain must start at 0")
    (fun () -> ignore (Sampled.of_points [| (1.0, 0.0); (2.0, 1.0) |]))

let prop_generated_utilities_valid =
  QCheck2.Test.make ~name:"generator produces valid utilities" ~count:300
    (Helpers.gen_utility_with_cap 20.0) (fun u ->
      match Utility.check u with Ok () -> true | Error _ -> false)

let prop_to_plc_minorizes =
  QCheck2.Test.make ~name:"to_plc minorizes within tolerance" ~count:200
    (Helpers.gen_utility_with_cap 20.0) (fun u ->
      let p = Utility.to_plc u in
      let ok = ref true in
      for i = 0 to 50 do
        let x = 20.0 *. float_of_int i /. 50.0 in
        if Plc.eval p x > Utility.eval u x +. 1e-6 then ok := false
      done;
      !ok)

let () =
  Alcotest.run "utility-unified"
    [
      ( "shapes",
        [
          Alcotest.test_case "all valid" `Quick test_shapes_are_valid;
          Alcotest.test_case "values" `Quick test_shape_values;
          Alcotest.test_case "clamping" `Quick test_eval_clamps;
          Alcotest.test_case "derivatives" `Quick test_deriv_closed_forms;
          Alcotest.test_case "demand inverse" `Quick test_demand_is_inverse_of_deriv;
          Alcotest.test_case "demand zero price" `Quick test_demand_at_zero_price;
          Alcotest.test_case "validation" `Quick test_shape_validation;
        ] );
      ( "conversion",
        [
          Alcotest.test_case "to_plc minorizes" `Quick test_to_plc_minorizes_smooth;
          Alcotest.test_case "to_plc close" `Quick test_to_plc_is_close;
        ] );
      ( "linearize",
        [
          Alcotest.test_case "properties" `Quick test_linearize_properties;
          Alcotest.test_case "chat zero" `Quick test_linearize_chat_zero;
          Alcotest.test_case "invalid" `Quick test_linearize_invalid;
        ] );
      ( "check",
        [ Alcotest.test_case "catches invalid" `Quick test_check_catches_bad ] );
      ( "sampled",
        [
          Alcotest.test_case "of_points" `Quick test_sampled_of_points;
          Alcotest.test_case "deviation" `Quick test_sampled_envelope_deviation_small;
          Alcotest.test_case "bad domain" `Quick test_sampled_rejects_bad_domain;
        ] );
      Helpers.qsuite "properties" [ prop_generated_utilities_valid; prop_to_plc_minorizes ];
    ]
