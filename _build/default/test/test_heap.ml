open Aa_numerics

let int_cmp = (compare : int -> int -> int)

let test_poly_basic () =
  let h = Heap.Poly.create ~cmp:int_cmp in
  Alcotest.(check bool) "empty" true (Heap.Poly.is_empty h);
  List.iter (Heap.Poly.push h) [ 3; 1; 4; 1; 5; 9; 2; 6 ];
  Alcotest.(check int) "length" 8 (Heap.Poly.length h);
  Alcotest.(check int) "peek" 9 (Heap.Poly.peek h);
  Alcotest.(check int) "pop max" 9 (Heap.Poly.pop h);
  Alcotest.(check int) "next" 6 (Heap.Poly.pop h);
  Alcotest.(check int) "length after" 6 (Heap.Poly.length h)

let test_poly_sorts () =
  let rng = Rng.create ~seed:5 () in
  let a = Array.init 1000 (fun _ -> Rng.int rng 10_000) in
  let h = Heap.Poly.of_array ~cmp:int_cmp a in
  let out = Array.init 1000 (fun _ -> Heap.Poly.pop h) in
  let expected = Array.copy a in
  Array.sort (fun x y -> compare y x) expected;
  Alcotest.(check (array int)) "heapsort descending" expected out

let test_poly_empty_errors () =
  let h = Heap.Poly.create ~cmp:int_cmp in
  Alcotest.check_raises "pop" Not_found (fun () -> ignore (Heap.Poly.pop h));
  Alcotest.check_raises "peek" Not_found (fun () -> ignore (Heap.Poly.peek h))

let test_poly_min_heap_via_cmp () =
  let h = Heap.Poly.create ~cmp:(fun a b -> int_cmp b a) in
  List.iter (Heap.Poly.push h) [ 3; 1; 4 ];
  Alcotest.(check int) "min first" 1 (Heap.Poly.pop h)

let test_indexed_basic () =
  let h = Heap.Indexed.create [| 5.0; 9.0; 2.0 |] in
  Alcotest.(check int) "size" 3 (Heap.Indexed.size h);
  Alcotest.(check int) "max" 1 (Heap.Indexed.max_element h);
  Helpers.check_float "priority" 9.0 (Heap.Indexed.priority h 1);
  Heap.Indexed.update h 1 1.0;
  Alcotest.(check int) "new max" 0 (Heap.Indexed.max_element h);
  Heap.Indexed.update h 2 100.0;
  Alcotest.(check int) "raised" 2 (Heap.Indexed.max_element h)

let test_indexed_ties_by_index () =
  let h = Heap.Indexed.create [| 4.0; 4.0; 4.0 |] in
  Alcotest.(check int) "lowest index wins" 0 (Heap.Indexed.max_element h);
  Heap.Indexed.update h 0 3.0;
  Alcotest.(check int) "next index" 1 (Heap.Indexed.max_element h)

let test_indexed_empty () =
  let h = Heap.Indexed.create [||] in
  Alcotest.check_raises "max of empty" Not_found (fun () ->
      ignore (Heap.Indexed.max_element h))

(* Model check: drive the indexed heap with random updates and compare
   the max element against a linear scan. *)
let prop_indexed_model =
  QCheck2.Test.make ~name:"indexed heap matches linear scan" ~count:200
    QCheck2.Gen.(
      let* n = int_range 1 12 in
      let* prios = list_repeat n (float_range 0.0 100.0) in
      let* updates = list_size (int_range 0 50) (pair (int_range 0 (n - 1)) (float_range 0.0 100.0)) in
      return (prios, updates))
    (fun (prios, updates) ->
      let prios = Array.of_list prios in
      let h = Heap.Indexed.create prios in
      let model = Array.copy prios in
      List.for_all
        (fun (e, p) ->
          Heap.Indexed.update h e p;
          model.(e) <- p;
          let best = ref 0 in
          Array.iteri (fun i v -> if v > model.(!best) then best := i) model;
          let hm = Heap.Indexed.max_element h in
          model.(hm) = model.(!best))
        updates)

let prop_poly_sorted =
  QCheck2.Test.make ~name:"poly heap drains in sorted order" ~count:200
    QCheck2.Gen.(list_size (int_range 0 100) (float_range (-50.0) 50.0))
    (fun xs ->
      let h = Heap.Poly.create ~cmp:compare in
      List.iter (Heap.Poly.push h) xs;
      let rec drain acc =
        if Heap.Poly.is_empty h then List.rev acc else drain (Heap.Poly.pop h :: acc)
      in
      let out = drain [] in
      out = List.sort (fun a b -> compare b a) xs)

let () =
  Alcotest.run "numerics-heap"
    [
      ( "poly",
        [
          Alcotest.test_case "basic" `Quick test_poly_basic;
          Alcotest.test_case "heapsort" `Quick test_poly_sorts;
          Alcotest.test_case "empty errors" `Quick test_poly_empty_errors;
          Alcotest.test_case "custom order" `Quick test_poly_min_heap_via_cmp;
        ] );
      ( "indexed",
        [
          Alcotest.test_case "basic" `Quick test_indexed_basic;
          Alcotest.test_case "ties" `Quick test_indexed_ties_by_index;
          Alcotest.test_case "empty" `Quick test_indexed_empty;
        ] );
      Helpers.qsuite "properties" [ prop_indexed_model; prop_poly_sorted ];
    ]
