open Aa_numerics
open Aa_core
open Aa_workload
open Aa_sim

(* ---------- multicore simulator ---------- *)

let test_multicore_matches_model () =
  (* long window: measured IPC converges to the analytic model *)
  let rng = Rng.create ~seed:1 () in
  let profiles = [| Cache.cache_friendly "a"; Cache.cache_hungry "b" |] in
  let assignment = Assignment.make ~server:[| 0; 1 |] ~alloc:[| 4.0; 8.0 |] in
  let r = Multicore.run ~rng ~cycles:4_000_000 ~profiles assignment in
  Array.iter
    (fun (t : Multicore.thread_result) ->
      let rel = Float.abs (t.achieved_ipc -. t.predicted_ipc) /. t.predicted_ipc in
      if rel > 0.05 then
        Alcotest.failf "%s: measured %g vs predicted %g (%.1f%% off)" t.label t.achieved_ipc
          t.predicted_ipc (100.0 *. rel))
    r.threads

let test_multicore_more_cache_helps () =
  let rng = Rng.create ~seed:2 () in
  let p = Cache.cache_hungry "h" in
  let run cache =
    let a = Assignment.make ~server:[| 0 |] ~alloc:[| cache |] in
    (Multicore.run ~rng ~cycles:1_000_000 ~profiles:[| p |] a).threads.(0).achieved_ipc
  in
  Helpers.check_ge "8MB beats 0MB" (run 8.0) (run 0.0)

let test_multicore_counts_consistent () =
  let rng = Rng.create ~seed:3 () in
  let profiles = [| Cache.streaming "s" |] in
  let a = Assignment.make ~server:[| 0 |] ~alloc:[| 2.0 |] in
  let r = Multicore.run ~rng ~cycles:100_000 ~profiles a in
  let t = r.threads.(0) in
  Helpers.check_le "misses <= instructions" (float_of_int t.misses)
    (float_of_int t.instructions);
  Helpers.check_float "ipc consistent"
    (float_of_int t.instructions /. 100_000.0)
    t.achieved_ipc;
  Helpers.check_float "throughput is the sum" t.achieved_ipc r.total_throughput

let test_multicore_validation () =
  let rng = Rng.create ~seed:4 () in
  let a = Assignment.make ~server:[| 0 |] ~alloc:[| 1.0 |] in
  Alcotest.check_raises "cycles" (Invalid_argument "Multicore.run: cycles must be positive")
    (fun () -> ignore (Multicore.run ~rng ~cycles:0 ~profiles:[| Cache.streaming "s" |] a));
  Alcotest.check_raises "profiles"
    (Invalid_argument "Multicore.run: one profile per assigned thread required") (fun () ->
      ignore (Multicore.run ~rng ~cycles:10 ~profiles:[||] a))

(* ---------- hosting simulator ---------- *)

let svc label arrival work revenue =
  { Hosting.label; arrival_rate = arrival; work; revenue }

let test_hosting_utility_shape () =
  let s = svc "a" 10.0 2.0 3.0 in
  let u = Hosting.utility ~cap:100.0 s in
  (* below saturation: revenue rate = revenue/work per resource unit *)
  Helpers.check_float ~eps:1e-9 "slope" 15.0 (Aa_utility.Utility.eval u 10.0);
  (* saturates at arrival * work = 20 resource: revenue rate 30 *)
  Helpers.check_float ~eps:1e-9 "saturated" 30.0 (Aa_utility.Utility.eval u 50.0)

let test_hosting_simulation_matches_model_underload () =
  (* mu >> lambda: throughput ~ arrival rate *)
  let rng = Rng.create ~seed:5 () in
  let services = [| svc "fast" 20.0 1.0 2.0 |] in
  let inst = Hosting.instance ~machines:1 ~capacity:100.0 services in
  ignore inst;
  let a = Assignment.make ~server:[| 0 |] ~alloc:[| 100.0 |] in
  let r = Hosting.simulate ~rng ~duration:2_000.0 ~services a in
  let s = r.services.(0) in
  let rel = Float.abs (s.throughput -. 20.0) /. 20.0 in
  Helpers.check_le "throughput near arrival rate" rel 0.05;
  Helpers.check_le "low latency" s.mean_latency 0.1

let test_hosting_simulation_matches_model_overload () =
  (* mu << lambda: throughput ~ service rate alloc/work *)
  let rng = Rng.create ~seed:6 () in
  let services = [| svc "slow" 100.0 1.0 1.0 |] in
  let a = Assignment.make ~server:[| 0 |] ~alloc:[| 30.0 |] in
  let r = Hosting.simulate ~rng ~duration:2_000.0 ~services a in
  let s = r.services.(0) in
  let rel = Float.abs (s.throughput -. 30.0) /. 30.0 in
  Helpers.check_le "throughput near service rate" rel 0.05

let test_hosting_zero_allocation_starves () =
  let rng = Rng.create ~seed:7 () in
  let services = [| svc "starved" 5.0 1.0 1.0 |] in
  let a = Assignment.make ~server:[| 0 |] ~alloc:[| 0.0 |] in
  let r = Hosting.simulate ~rng ~duration:100.0 ~services a in
  Alcotest.(check int) "no completions" 0 r.services.(0).completed;
  Alcotest.(check bool) "arrivals happened" true (r.services.(0).arrived > 0)

let test_hosting_latency_increases_with_load () =
  let rng = Rng.create ~seed:8 () in
  let services = [| svc "q" 9.0 1.0 1.0 |] in
  let lat alloc =
    let a = Assignment.make ~server:[| 0 |] ~alloc:[| alloc |] in
    (Hosting.simulate ~rng ~duration:3_000.0 ~services a).services.(0).mean_latency
  in
  (* rho = 0.9 vs rho = 0.45 *)
  Helpers.check_ge "heavier load, more latency" (lat 10.0) (lat 20.0)

let test_hosting_predicted_total () =
  let rng = Rng.create ~seed:9 () in
  let services = [| svc "a" 10.0 1.0 2.0; svc "b" 50.0 0.5 0.1 |] in
  let a = Assignment.make ~server:[| 0; 0 |] ~alloc:[| 10.0; 25.0 |] in
  let r = Hosting.simulate ~rng ~duration:1_000.0 ~services a in
  (* predicted: min(10, 10/1)*2 + min(50, 25/0.5)*0.1 = 20 + 5 = 25 *)
  Helpers.check_float ~eps:1e-9 "prediction" 25.0 r.predicted_total;
  let rel = Float.abs (r.total_revenue_rate -. 25.0) /. 25.0 in
  Helpers.check_le "simulation near prediction" rel 0.1

let test_hosting_validation () =
  let rng = Rng.create ~seed:10 () in
  let a = Assignment.make ~server:[| 0 |] ~alloc:[| 1.0 |] in
  Alcotest.check_raises "duration" (Invalid_argument "Hosting.simulate: duration must be positive")
    (fun () ->
      ignore (Hosting.simulate ~rng ~duration:0.0 ~services:[| svc "x" 1.0 1.0 1.0 |] a))

(* end-to-end: AA assignment on the hosting model beats starving services *)
let test_hosting_end_to_end () =
  let rng = Rng.create ~seed:11 () in
  let services =
    [| svc "gold" 10.0 2.0 10.0; svc "bulk" 100.0 0.5 0.2; svc "slow" 3.0 10.0 5.0 |]
  in
  let inst = Hosting.instance ~machines:2 ~capacity:30.0 services in
  let a2 = Algo2.solve inst in
  (match Assignment.check inst a2 with Ok () -> () | Error e -> Alcotest.fail e);
  let r = Hosting.simulate ~rng ~duration:1_000.0 ~services a2 in
  (* model prediction and simulation agree within 15% *)
  let rel = Float.abs (r.total_revenue_rate -. r.predicted_total) /. r.predicted_total in
  Helpers.check_le "sim vs model" rel 0.15

let () =
  Alcotest.run "simulators"
    [
      ( "multicore",
        [
          Alcotest.test_case "matches model" `Slow test_multicore_matches_model;
          Alcotest.test_case "cache helps" `Quick test_multicore_more_cache_helps;
          Alcotest.test_case "counts consistent" `Quick test_multicore_counts_consistent;
          Alcotest.test_case "validation" `Quick test_multicore_validation;
        ] );
      ( "hosting",
        [
          Alcotest.test_case "utility shape" `Quick test_hosting_utility_shape;
          Alcotest.test_case "underload" `Slow test_hosting_simulation_matches_model_underload;
          Alcotest.test_case "overload" `Slow test_hosting_simulation_matches_model_overload;
          Alcotest.test_case "starvation" `Quick test_hosting_zero_allocation_starves;
          Alcotest.test_case "latency vs load" `Slow test_hosting_latency_increases_with_load;
          Alcotest.test_case "prediction" `Quick test_hosting_predicted_total;
          Alcotest.test_case "validation" `Quick test_hosting_validation;
          Alcotest.test_case "end to end" `Quick test_hosting_end_to_end;
        ] );
    ]
