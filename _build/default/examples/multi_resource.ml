(* Multi-resource placement — the paper's other future-work direction
   (§VIII): servers hold CPU, memory and network bandwidth; jobs consume
   them in fixed proportions (Leontief demands, as in DRF-style
   schedulers) and earn concave utility from their task rate.

   Run with: dune exec examples/multi_resource.exe *)

open Aa_numerics
open Aa_utility
open Aa_core

let resource_names = [| "cpu"; "mem-GB"; "net-Gb" |]
let capacities = [| 32.0; 128.0; 10.0 |]
let machines = 4

(* job archetypes: demand per unit of task rate *)
let archetypes =
  [|
    ("web", [| 0.5; 1.0; 0.20 |]);
    ("analytics", [| 4.0; 16.0; 0.05 |]);
    ("cache", [| 0.2; 8.0; 0.50 |]);
    ("video", [| 1.0; 2.0; 1.50 |]);
    ("batch", [| 2.0; 4.0; 0.01 |]);
  |]

let make_job rng =
  let name, base = archetypes.(Rng.int rng (Array.length archetypes)) in
  let demand = Array.map (fun d -> d *. Rng.uniform rng ~lo:0.7 ~hi:1.3) base in
  let rate_cap =
    Array.to_seqi demand
    |> Seq.filter_map (fun (r, d) -> if d > 0.0 then Some (capacities.(r) /. d) else None)
    |> Seq.fold_left Float.min Float.infinity
  in
  let rate_utility =
    Utility.Shapes.power ~cap:rate_cap
      ~coeff:(Rng.uniform rng ~lo:1.0 ~hi:6.0)
      ~beta:(Rng.uniform rng ~lo:0.4 ~hi:0.9)
  in
  (name, { Multires.rate_utility; demand })

let () =
  let rng = Rng.create ~seed:77 () in
  let jobs = Array.init 18 (fun _ -> make_job rng) in
  let t = Multires.create ~servers:machines ~capacities (Array.map snd jobs) in
  Format.printf "%d machines x (%s) = (%s), %d jobs@." machines
    (String.concat ", " (Array.to_list resource_names))
    (String.concat ", " (Array.to_list (Array.map (Printf.sprintf "%g") capacities)))
    (Multires.n_threads t);

  let r = Multires.solve t in
  let rr = Multires.round_robin t in
  Format.printf
    "@.portfolio heuristic: %.2f (%.1f%% of the per-resource relaxation bound %.2f)@."
    r.total
    (100.0 *. r.total /. r.bound)
    r.bound;
  Format.printf "round-robin baseline: %.2f (heuristic is +%.1f%%)@." rr.total
    (100.0 *. ((r.total /. rr.total) -. 1.0));

  (* per-machine utilization *)
  let usage = Array.init machines (fun _ -> Array.make 3 0.0) in
  Array.iteri
    (fun i j ->
      Array.iteri
        (fun res d -> usage.(j).(res) <- usage.(j).(res) +. (r.rates.(i) *. d))
        t.threads.(i).demand)
    r.server;
  Format.printf "@.machine utilization under the heuristic:@.";
  Array.iteri
    (fun j u ->
      Format.printf "  machine %d: %s@." j
        (String.concat "  "
           (List.init 3 (fun res ->
                Printf.sprintf "%s %5.1f%%" resource_names.(res)
                  (100.0 *. u.(res) /. capacities.(res))))))
    usage;

  Format.printf "@.sample placements:@.";
  for i = 0 to 7 do
    let name, _ = jobs.(i) in
    Format.printf "  %-10s -> machine %d, rate %6.2f, utility %6.2f@." name r.server.(i)
      r.rates.(i)
      (Utility.eval t.threads.(i).rate_utility r.rates.(i))
  done
