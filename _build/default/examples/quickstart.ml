(* Quickstart: define utilities, build an AA instance, run the paper's
   algorithms and check the result against the exact optimum.

   Run with: dune exec examples/quickstart.exe *)

open Aa_utility
open Aa_core

let () =
  (* Two servers with 10 units of resource each, five threads with
     different concave utility shapes. *)
  let cap = 10.0 in
  let utilities =
    [|
      (* a thread that loves its first units of resource *)
      Utility.Shapes.power ~cap ~coeff:4.0 ~beta:0.5;
      (* a logarithmic thread *)
      Utility.Shapes.log_utility ~cap ~coeff:3.0 ~rate:1.0;
      (* saturating: near its peak after ~4 units *)
      Utility.Shapes.saturating ~cap ~limit:8.0 ~halfway:2.0;
      (* wants exactly 6 units, nothing more *)
      Utility.Shapes.capped_linear ~cap ~slope:1.5 ~knee:6.0;
      (* linear: every unit worth the same *)
      Utility.Shapes.linear ~cap ~slope:0.8;
    |]
  in
  let inst = Instance.create ~servers:2 ~capacity:cap utilities in
  Format.printf "%a@.@." Instance.pp inst;

  (* The super-optimal allocation pools all resources (Definition V.1):
     its utility upper-bounds any real assignment. *)
  let so = Superopt.compute inst in
  Format.printf "super-optimal utility (upper bound) F^ = %.4f@." so.utility;
  Array.iteri (fun i c -> Format.printf "  thread %d: c^_%d = %.3f@." i i c) so.chat;

  (* Algorithm 2: the paper's fast 0.828-approximation. *)
  let a2 = Algo2.solve inst in
  let cert = Bounds.certify inst so a2 in
  Format.printf "@.Algorithm 2 assignment:@.%a" Assignment.pp a2;
  Format.printf "utility = %.4f (%.2f%% of the upper bound; guarantee alpha = %.4f: %s)@."
    cert.achieved (100.0 *. cert.ratio) Bounds.alpha
    (if cert.meets_guarantee then "met" else "VIOLATED");

  (* This instance is small enough to solve exactly. *)
  let exact = Exact.solve inst in
  Format.printf "@.exact optimum F* = %.4f; Algorithm 2 achieved %.2f%% of it@."
    exact.utility
    (100.0 *. cert.achieved /. exact.utility);

  (* Feasibility is checkable for any assignment. *)
  (match Assignment.check inst a2 with
  | Ok () -> Format.printf "assignment is feasible@."
  | Error e -> Format.printf "INFEASIBLE: %s@." e);

  (* Compare against the four baseline heuristics of Section VII. *)
  let rng = Aa_numerics.Rng.create ~seed:7 () in
  Format.printf "@.baseline heuristics:@.";
  List.iter
    (fun algo ->
      let a = Solver.solve ~rng algo inst in
      Format.printf "  %-6s utility = %.4f@." (Solver.name algo)
        (Assignment.utility inst a))
    [ Solver.Uu; Solver.Ur; Solver.Ru; Solver.Rr ]
