(* Measured cache partitioning — the full workflow of the paper's
   multicore scenario with *measured* miss-rate curves instead of an
   analytic model (paper §II: "miss rate curves can be determined by
   running threads multiple times using different cache allocations"):

     1. profile: replay each thread's memory trace against an LRU cache
        partition of every size (Aa_sim.Profiler / Llcache);
     2. model:   turn the measured curves into concave IPC utilities;
     3. assign:  run Algorithm 2;
     4. validate: replay the traces once more under the chosen partition
        sizes and compare delivered hit rates against the plan.

   Run with: dune exec examples/measured_partitioning.exe *)

open Aa_numerics
open Aa_core
open Aa_sim

let sets = 64
let max_ways = 16
let cache_mb = 16.0 (* the AA resource: one core's partitionable LLC *)
let cores = 2

type workload = { name : string; kind : [ `Zipf of float | `Ws of int | `Stream ] }

let workloads =
  [|
    { name = "db-index"; kind = `Zipf 1.3 };
    { name = "kernel-build"; kind = `Zipf 0.9 };
    { name = "fft-small"; kind = `Ws 512 };
    { name = "fft-large"; kind = `Ws 1600 };
    { name = "backup"; kind = `Stream };
    { name = "web-cache"; kind = `Zipf 1.1 };
  |]

let trace_of w seed () =
  let rng = Rng.create ~seed () in
  match w.kind with
  | `Zipf alpha -> Trace.zipf rng ~alpha ~universe:4096
  | `Ws size -> Trace.working_set rng ~size
  | `Stream -> Trace.sequential ~stride:1 ()

let () =
  (* 1. profile *)
  Format.printf "profiling %d workloads at %d partition sizes...@." (Array.length workloads)
    (max_ways + 1);
  let curves =
    Array.mapi
      (fun i w ->
        Profiler.mrc ~trace:(trace_of w i) ~sets ~max_ways ~warmup:10_000 ~samples:50_000)
      workloads
  in
  Array.iteri
    (fun i w ->
      let m k = curves.(i).(k).Profiler.miss_rate in
      Format.printf "  %-12s miss rate: %4.2f @1w  %4.2f @4w  %4.2f @8w  %4.2f @16w@." w.name
        (m 1) (m 4) (m 8) (m 16))
    workloads;

  (* 2. model *)
  let utilities =
    Array.map
      (fun points ->
        Profiler.utility_of_mrc ~cache:cache_mb ~base_cpi:0.7 ~miss_penalty:200.0
          ~accesses_per_kiloinstruction:300.0 points)
      curves
  in
  let inst = Instance.create ~servers:cores ~capacity:cache_mb utilities in

  (* 3. assign *)
  let lin = Linearized.make inst in
  let a = Refine.per_server inst (Algo2.solve ~linearized:lin inst) in
  let cert = Bounds.certify inst lin.superopt a in
  Format.printf "@.Algorithm 2 partition plan (%.1f%% of the upper bound):@."
    (100.0 *. cert.ratio);
  Array.iteri
    (fun i w ->
      Format.printf "  %-12s -> core %d, %5.2f MB (predicted IPC %.3f)@." w.name
        a.server.(i) a.alloc.(i)
        (Aa_utility.Utility.eval utilities.(i) a.alloc.(i)))
    workloads;

  (* 4. validate: replay under the granted way counts *)
  Format.printf "@.validation replay:@.";
  let total_planned = ref 0.0 and total_measured = ref 0.0 in
  Array.iteri
    (fun i w ->
      let ways =
        int_of_float (Float.round (a.alloc.(i) /. cache_mb *. float_of_int max_ways))
      in
      let measured_mr =
        if ways = 0 then 1.0
        else begin
          let cache = Llcache.create ~sets ~ways in
          let next = trace_of w i () in
          for _ = 1 to 10_000 do
            ignore (Llcache.access cache (next ()))
          done;
          Llcache.reset_stats cache;
          for _ = 1 to 50_000 do
            ignore (Llcache.access cache (next ()))
          done;
          Llcache.miss_rate cache
        end
      in
      let ipc_of mr = 1.0 /. (0.7 +. (300.0 *. mr *. 200.0 /. 1000.0)) in
      let planned = Aa_utility.Utility.eval utilities.(i) a.alloc.(i) in
      let measured = ipc_of measured_mr in
      total_planned := !total_planned +. planned;
      total_measured := !total_measured +. measured;
      Format.printf "  %-12s %2d ways: measured IPC %.3f vs planned %.3f@." w.name ways
        measured planned)
    workloads;
  Format.printf "@.total: measured %.3f IPC vs planned %.3f IPC (%.1f%% delivered)@."
    !total_measured !total_planned
    (100.0 *. !total_measured /. !total_planned)
