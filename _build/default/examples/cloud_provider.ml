(* Cloud provider — the paper's third motivating application (§I): a
   provider places VM instances (threads) on physical machines (servers)
   and sizes each instance, maximizing revenue expressed by customers'
   willingness-to-pay curves.

   The example demonstrates the failure mode the paper's introduction
   highlights: treating customer *requests* as fixed sizes (an
   assignment-only policy, "first fit by request") versus jointly
   assigning and sizing with Algorithm 2.

   Run with: dune exec examples/cloud_provider.exe *)

open Aa_numerics
open Aa_utility
open Aa_core
open Aa_workload

let machines = 6
let capacity = 64.0 (* e.g. vCPUs per machine *)
let customers = 40

(* Assignment-only baseline: each customer requests the allocation that
   maximizes its utility (its cap, for nondecreasing utilities — so we
   use the smallest allocation achieving 95% of peak); first-fit place
   the requests and give each instance exactly what it asked for, or
   nothing if it does not fit anywhere. *)
let first_fit_by_request (inst : Instance.t) =
  let n = Instance.n_threads inst in
  let request i =
    let f = inst.utilities.(i) in
    let target = 0.95 *. Utility.peak f in
    (* smallest x with f(x) >= target, by bisection on the range *)
    let rec search lo hi k =
      if k = 0 then hi
      else begin
        let mid = 0.5 *. (lo +. hi) in
        if Utility.eval f mid >= target then search lo mid (k - 1)
        else search mid hi (k - 1)
      end
    in
    search 0.0 (Utility.cap f) 60
  in
  let remaining = Array.make inst.servers inst.capacity in
  let server = Array.make n 0 in
  let alloc = Array.make n 0.0 in
  for i = 0 to n - 1 do
    let want = request i in
    let placed = ref false in
    for j = 0 to inst.servers - 1 do
      if (not !placed) && remaining.(j) >= want then begin
        server.(i) <- j;
        alloc.(i) <- want;
        remaining.(j) <- remaining.(j) -. want;
        placed := true
      end
    done
    (* unplaced customers stay with 0 resources on server 0 *)
  done;
  Assignment.make ~server ~alloc

let () =
  let rng = Rng.create ~seed:99 () in
  let inst = Cloud.instance rng ~machines ~capacity ~customers in
  Format.printf "%a@.@." Instance.pp inst;

  let so = Superopt.compute inst in
  let score name a =
    (match Assignment.check inst a with
    | Ok () -> ()
    | Error e -> failwith e);
    let u = Assignment.utility inst a in
    Format.printf "%-22s revenue = %8.2f (%.1f%% of upper bound %.2f)@." name u
      (100.0 *. u /. so.utility) so.utility;
    u
  in
  let a2 = score "Algorithm 2" (Algo2.solve inst) in
  let a1 = score "Algorithm 1" (Algo1.solve inst) in
  let ff = score "first-fit by request" (first_fit_by_request inst) in
  let uu = score "UU heuristic" (Heuristics.uu inst) in
  ignore a1;
  Format.printf
    "@.joint assign+allocate beats sizing-by-request by %.1f%% and UU by %.1f%%@."
    (100.0 *. ((a2 /. ff) -. 1.0))
    (100.0 *. ((a2 /. uu) -. 1.0));

  (* Show a couple of sized instances for color. *)
  let a = Algo2.solve inst in
  Format.printf "@.sample of Algorithm 2's sizing decisions:@.";
  for i = 0 to 7 do
    Format.printf "  customer %2d (%a): %5.2f vCPU on machine %d -> pays %.2f@." i
      Utility.pp inst.utilities.(i) a.alloc.(i) a.server.(i)
      (Utility.eval inst.utilities.(i) a.alloc.(i))
  done
