(* Web hosting center — the paper's second motivating application (§I).
   Service threads with different request rates, job sizes and revenue
   run on identical machines; the host divides each machine's capacity
   to maximize revenue. Assignments are evaluated on a discrete-event
   M/M/1 simulation, so the comparison is on realized revenue, not on
   the utility model.

   Run with: dune exec examples/web_hosting.exe *)

open Aa_numerics
open Aa_core
open Aa_sim

let machines = 3
let capacity = 70.0 (* resource units per machine; total demand exceeds 3x this *)

let services =
  [|
    (* label, arrivals/s, resource-seconds per request, $/request *)
    { Hosting.label = "search"; arrival_rate = 40.0; work = 1.0; revenue = 1.0 };
    { Hosting.label = "checkout"; arrival_rate = 10.0; work = 3.0; revenue = 8.0 };
    { Hosting.label = "api"; arrival_rate = 120.0; work = 0.5; revenue = 0.3 };
    { Hosting.label = "reports"; arrival_rate = 2.0; work = 20.0; revenue = 15.0 };
    { Hosting.label = "static"; arrival_rate = 200.0; work = 0.1; revenue = 0.05 };
    { Hosting.label = "ml-infer"; arrival_rate = 15.0; work = 2.0; revenue = 2.5 };
    { Hosting.label = "upload"; arrival_rate = 5.0; work = 6.0; revenue = 4.0 };
    { Hosting.label = "admin"; arrival_rate = 1.0; work = 2.0; revenue = 1.0 };
  |]

let () =
  let rng = Rng.create ~seed:7 () in
  let inst = Hosting.instance ~machines ~capacity services in
  Format.printf "%a@.@." Instance.pp inst;
  let duration = 500.0 in
  let evaluate name assignment =
    match Assignment.check inst assignment with
    | Error e -> failwith e
    | Ok () ->
        let r = Hosting.simulate ~rng ~duration ~services assignment in
        Format.printf "%s: simulated revenue %.2f $/s (model predicted %.2f $/s)@." name
          r.total_revenue_rate r.predicted_total;
        Array.iter
          (fun (s : Hosting.stats) ->
            Format.printf
              "  %-9s %5d arrived, %5d done, %7.2f req/s, %6.2f $/s, latency %6.3f s@."
              s.label s.arrived s.completed s.throughput s.revenue_rate s.mean_latency)
          r.services;
        r.total_revenue_rate
  in
  let a2 = evaluate "Algorithm 2" (Algo2.solve inst) in
  Format.printf "@.";
  let uu = evaluate "UU baseline" (Heuristics.uu inst) in
  Format.printf "@.";
  let rr = evaluate "RR baseline" (Heuristics.rr ~rng inst) in
  Format.printf
    "@.revenue: Algorithm 2 = %.2f $/s, UU = %.2f $/s (+%.1f%%), RR = %.2f $/s (+%.1f%%)@."
    a2 uu
    (100.0 *. ((a2 /. uu) -. 1.0))
    rr
    (100.0 *. ((a2 /. rr) -. 1.0))
