(* Cache partitioning on a multicore — the paper's first motivating
   application (§I). Cores are servers; each core's last-level cache is
   partitioned among the threads bound to it. Thread utilities are IPC
   as a function of cache size, derived from miss-rate curves.

   The example assigns threads with Algorithm 2 and with the round-robin
   UU baseline, then *executes* both assignments on the stochastic
   multicore simulator to show the utility-model gains are real.

   Run with: dune exec examples/cache_partitioning.exe *)

open Aa_numerics
open Aa_core
open Aa_workload
open Aa_sim

let cores = 4
let cache_mb = 8.0
let n_threads = 12

let () =
  let rng = Rng.create ~seed:2016 () in
  let profiles =
    Array.init n_threads (fun i -> Cache.random rng (Printf.sprintf "t%02d" i))
  in
  let inst = Cache.instance ~cores ~cache:cache_mb profiles in
  Format.printf "%a@." Instance.pp inst;
  Format.printf "threads: %s@.@."
    (String.concat ", "
       (Array.to_list (Array.map (fun (p : Cache.profile) -> p.label) profiles)));

  let so = Superopt.compute inst in
  let run name assignment =
    let model = Assignment.utility inst assignment in
    let sim = Multicore.run ~rng ~cycles:2_000_000 ~profiles assignment in
    Format.printf "%s: model throughput %.3f IPC, simulated %.3f IPC (upper bound %.3f)@."
      name model sim.total_throughput so.utility;
    Array.iter
      (fun (t : Multicore.thread_result) ->
        Format.printf
          "  %s on core %d with %4.2f MB: predicted %.3f IPC, measured %.3f IPC, %d misses@."
          t.label t.core t.cache t.predicted_ipc t.achieved_ipc t.misses)
      sim.threads;
    sim.total_throughput
  in
  let algo2 = run "Algorithm 2" (Algo2.solve inst) in
  Format.printf "@.";
  let uu = run "UU baseline" (Heuristics.uu inst) in
  Format.printf "@.Algorithm 2 delivers %.1f%% more simulated throughput than UU.@."
    (100.0 *. ((algo2 /. uu) -. 1.0));

  (* why partition at all: an unpartitioned shared cache degrades to an
     equal effective share under contention (each co-running thread
     claims lines at the same rate), which is UU's allocation with none
     of UU's isolation — the worst of both worlds *)
  let unpartitioned =
    let server = Array.init n_threads (fun i -> i mod cores) in
    let counts = Array.make cores 0 in
    Array.iter (fun j -> counts.(j) <- counts.(j) + 1) server;
    let alloc = Array.map (fun j -> cache_mb /. float_of_int counts.(j)) server in
    Assignment.make ~server ~alloc
  in
  let sim = Multicore.run ~rng ~cycles:2_000_000 ~profiles unpartitioned in
  Format.printf
    "unpartitioned shared cache (contention model): %.3f IPC — partitioning + AA buys \
     %.1f%%@."
    sim.total_throughput
    (100.0 *. ((algo2 /. sim.total_throughput) -. 1.0))
