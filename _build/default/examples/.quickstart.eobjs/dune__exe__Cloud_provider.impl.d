examples/cloud_provider.ml: Aa_core Aa_numerics Aa_utility Aa_workload Algo1 Algo2 Array Assignment Cloud Format Heuristics Instance Rng Superopt Utility
