examples/quickstart.ml: Aa_core Aa_numerics Aa_utility Algo2 Array Assignment Bounds Exact Format Instance List Solver Superopt Utility
