examples/elastic_datacenter.mli:
