examples/web_hosting.ml: Aa_core Aa_numerics Aa_sim Algo2 Array Assignment Format Heuristics Hosting Instance Rng
