examples/cloud_provider.mli:
