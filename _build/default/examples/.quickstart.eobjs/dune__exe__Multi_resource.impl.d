examples/multi_resource.ml: Aa_core Aa_numerics Aa_utility Array Float Format List Multires Printf Rng Seq String Utility
