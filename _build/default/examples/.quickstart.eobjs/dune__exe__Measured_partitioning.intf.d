examples/measured_partitioning.mli:
