examples/cache_partitioning.mli:
