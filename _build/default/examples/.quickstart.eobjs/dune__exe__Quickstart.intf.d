examples/quickstart.mli:
