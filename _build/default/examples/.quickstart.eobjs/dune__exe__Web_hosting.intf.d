examples/web_hosting.mli:
