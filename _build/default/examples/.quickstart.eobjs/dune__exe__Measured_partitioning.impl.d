examples/measured_partitioning.ml: Aa_core Aa_numerics Aa_sim Aa_utility Algo2 Array Bounds Float Format Instance Linearized Llcache Profiler Refine Rng Trace
