examples/cache_partitioning.ml: Aa_core Aa_numerics Aa_sim Aa_workload Algo2 Array Assignment Cache Format Heuristics Instance Multicore Printf Rng String Superopt
