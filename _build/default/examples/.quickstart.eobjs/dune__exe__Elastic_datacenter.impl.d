examples/elastic_datacenter.ml: Aa_core Aa_numerics Aa_workload Algo2 Array Assignment Exact Format Gen Hetero Online Rng Superopt Tightness
