(** Summary statistics for experiment reporting. *)

type summary = {
  n : int;
  mean : float;
  stddev : float;  (** sample standard deviation (n-1 denominator) *)
  min : float;
  max : float;
  ci95 : float;  (** half-width of the 95% normal confidence interval *)
}

val mean : float array -> float
(** Arithmetic mean. Raises [Invalid_argument] on an empty array. *)

val variance : float array -> float
(** Unbiased sample variance; 0 for arrays of length < 2. *)

val stddev : float array -> float

val quantile : float array -> float -> float
(** [quantile a q] for [q] in [[0,1]], linear interpolation between order
    statistics. Does not modify [a]. *)

val median : float array -> float

val geometric_mean : float array -> float
(** Requires all elements positive. *)

val summarize : float array -> summary

val pp_summary : Format.formatter -> summary -> unit (* aa-lint: ignore unused-export -- debug printer, kept for toplevel/driver use *)

(** Streaming (Welford) accumulator, used by long experiment sweeps to
    avoid retaining every trial. *)
module Online : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val variance : t -> float
  val stddev : t -> float
  val min : t -> float
  val max : t -> float
  val summary : t -> summary

  val merge : t -> t -> t
  (** [merge a b] is a fresh accumulator equivalent to one fed [a]'s
      stream followed by [b]'s, combining means and M2 moments with
      Chan et al.'s parallel update. Neither input is mutated. Used by
      the parallel experiment engine to combine per-chunk partials;
      merging partials in a fixed order gives schedule-independent
      results. *)
end
