(* Convergence telemetry: iteration counts are the primary cost metric
   of every λ-search in the tree (the paper's O(log mC) factors), and
   they are a pure function of the bracket and f — safe to count. *)
let c_bisect_calls = Aa_obs.Registry.counter "root.bisect.calls"
let c_bisect_iters = Aa_obs.Registry.counter "root.bisect.iters"

let bisect ?(iters = 200) ~f ~lo ~hi () =
  if not (lo <= hi) then invalid_arg "Root.bisect: need lo <= hi";
  Aa_obs.Registry.Counter.incr c_bisect_calls;
  let lo = ref lo and hi = ref hi in
  (* Stop early once the bracket collapses to float resolution: past that
     point midpoints repeat and the remaining iterations are pure waste. *)
  let i = ref 0 in
  let converged = ref false in
  while (not !converged) && !i < iters do
    let mid = 0.5 *. (!lo +. !hi) in
    if Util.feq ~eps:1e-15 mid !lo && Util.feq ~eps:1e-15 mid !hi then
      converged := true
    else begin
      if f mid >= 0.0 then lo := mid else hi := mid;
      incr i
    end
  done;
  Aa_obs.Registry.Counter.add c_bisect_iters !i;
  0.5 *. (!lo +. !hi)

let bisect_int ~f ~lo ~hi =
  if lo > hi then invalid_arg "Root.bisect_int: need lo <= hi";
  let lo = ref lo and hi = ref hi in
  while !lo < !hi do
    let mid = !lo + ((!hi - !lo) / 2) in
    if f mid then hi := mid else lo := mid + 1
  done;
  !lo

let fixed_budget ~demand ~budget ~max_price =
  bisect ~f:(fun price -> demand price -. budget) ~lo:0.0 ~hi:max_price ()
