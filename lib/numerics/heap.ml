module Poly = struct
  type 'a t = { mutable data : 'a array; mutable len : int; cmp : 'a -> 'a -> int }

  let create ~cmp = { data = [||]; len = 0; cmp }
  let length t = t.len
  let is_empty t = t.len = 0

  let grow t x =
    let cap = Array.length t.data in
    if t.len = cap then begin
      let ncap = if cap = 0 then 8 else 2 * cap in
      let ndata = Array.make ncap x in
      Array.blit t.data 0 ndata 0 t.len;
      t.data <- ndata
    end

  let rec sift_up t i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if t.cmp t.data.(i) t.data.(parent) > 0 then begin
        let tmp = t.data.(i) in
        t.data.(i) <- t.data.(parent);
        t.data.(parent) <- tmp;
        sift_up t parent
      end
    end

  let rec sift_down t i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let largest = ref i in
    if l < t.len && t.cmp t.data.(l) t.data.(!largest) > 0 then largest := l;
    if r < t.len && t.cmp t.data.(r) t.data.(!largest) > 0 then largest := r;
    if !largest <> i then begin
      let tmp = t.data.(i) in
      t.data.(i) <- t.data.(!largest);
      t.data.(!largest) <- tmp;
      sift_down t !largest
    end

  let push t x =
    grow t x;
    t.data.(t.len) <- x;
    t.len <- t.len + 1;
    sift_up t (t.len - 1)

  let peek t =
    if t.len = 0 then raise Not_found;
    t.data.(0)

  let pop t =
    if t.len = 0 then raise Not_found;
    let top = t.data.(0) in
    t.len <- t.len - 1;
    if t.len > 0 then begin
      t.data.(0) <- t.data.(t.len);
      sift_down t 0
    end;
    top

  let of_array ~cmp a =
    let t = { data = Array.copy a; len = Array.length a; cmp } in
    for i = (t.len / 2) - 1 downto 0 do
      sift_down t i
    done;
    t
end

module Indexed = struct
  type t = {
    prio : float array; (* priority of each element *)
    heap : int array; (* heap positions -> elements *)
    pos : int array; (* elements -> heap positions *)
    n : int;
  }

  (* Sift swaps are the heap-op count behind Algorithm 2's
     O(n log m) assignment phase — a pure function of the key
     sequence, so the total is schedule-independent. *)
  let c_swaps = Aa_obs.Registry.counter "heap.sift_swaps"
  let c_updates = Aa_obs.Registry.counter "heap.updates"

  (* Element a beats element b when its priority is higher, or equal with a
     smaller index: makes consumers (Algorithm 2) deterministic. *)
  let beats t a b = t.prio.(a) > t.prio.(b) || (t.prio.(a) = t.prio.(b) && a < b)

  let swap t i j =
    Aa_obs.Registry.Counter.incr c_swaps;
    let a = t.heap.(i) and b = t.heap.(j) in
    t.heap.(i) <- b;
    t.heap.(j) <- a;
    t.pos.(b) <- i;
    t.pos.(a) <- j

  let rec sift_up t i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if beats t t.heap.(i) t.heap.(parent) then begin
        swap t i parent;
        sift_up t parent
      end
    end

  let rec sift_down t i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let best = ref i in
    if l < t.n && beats t t.heap.(l) t.heap.(!best) then best := l;
    if r < t.n && beats t t.heap.(r) t.heap.(!best) then best := r;
    if !best <> i then begin
      swap t i !best;
      sift_down t !best
    end

  let create prios =
    let n = Array.length prios in
    let t =
      { prio = Array.copy prios; heap = Array.init n (fun i -> i); pos = Array.init n (fun i -> i); n }
    in
    for i = (n / 2) - 1 downto 0 do
      sift_down t i
    done;
    t

  let size t = t.n

  let max_element t =
    if t.n = 0 then raise Not_found;
    t.heap.(0)

  let priority t e = t.prio.(e)

  let update t e p =
    Aa_obs.Registry.Counter.incr c_updates;
    let old = t.prio.(e) in
    t.prio.(e) <- p;
    let i = t.pos.(e) in
    if p > old then sift_up t i else sift_down t i

  (* With all priorities equal, the identity arrangement is a heap (ties
     break toward the smaller index, which identity satisfies), and it
     is exactly what [create (Array.make n p)] builds — so refilled and
     fresh heaps are indistinguishable to consumers. *)
  let refill t p =
    for i = 0 to t.n - 1 do
      t.prio.(i) <- p;
      t.heap.(i) <- i;
      t.pos.(i) <- i
    done

  (* Restore the identity arrangement first, then run exactly the
     bottom-up heapify of [create]: same sift_down sequence from the
     same start state, so a reset heap is indistinguishable from
     [create prios] — swap counters included. *)
  let reset t prios =
    if Array.length prios <> t.n then invalid_arg "Heap.Indexed.reset: size mismatch";
    for i = 0 to t.n - 1 do
      t.prio.(i) <- prios.(i);
      t.heap.(i) <- i;
      t.pos.(i) <- i
    done;
    for i = (t.n / 2) - 1 downto 0 do
      sift_down t i
    done
end
