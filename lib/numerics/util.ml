let clamp ~lo ~hi x =
  assert (lo <= hi);
  if x < lo then lo else if x > hi then hi else x

let approx_equal ?(eps = 1e-9) a b =
  a = b (* also covers equal infinities *)
  ||
  let diff = Float.abs (a -. b) in
  diff <= eps || diff <= eps *. Float.max (Float.abs a) (Float.abs b)

let feq ?eps a b = approx_equal ?eps a b
let fne ?eps a b = not (approx_equal ?eps a b)

let kahan_sum a =
  let sum = ref 0.0 and comp = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    let y = a.(i) -. !comp in
    let t = !sum +. y in
    comp := t -. !sum -. y;
    sum := t
  done;
  !sum

let sum_by f a =
  let sum = ref 0.0 and comp = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    let y = f a.(i) -. !comp in
    let t = !sum +. y in
    comp := t -. !sum -. y;
    sum := t
  done;
  !sum

let linspace a b k =
  if k < 2 then invalid_arg "Util.linspace: need k >= 2";
  let step = (b -. a) /. float_of_int (k - 1) in
  Array.init k (fun i -> if i = k - 1 then b else a +. (float_of_int i *. step))

let logspace a b k =
  if not (0.0 < a && a <= b) then invalid_arg "Util.logspace: need 0 < a <= b";
  let pts = linspace (log a) (log b) k in
  pts.(k - 1) <- log b;
  Array.map exp pts

let argmax f a =
  if Array.length a = 0 then invalid_arg "Util.argmax: empty array";
  let best = ref 0 and best_v = ref (f a.(0)) in
  for i = 1 to Array.length a - 1 do
    let v = f a.(i) in
    if v > !best_v then begin
      best := i;
      best_v := v
    end
  done;
  !best

let float_down x =
  if Float.is_nan x || x = Float.infinity || x = Float.neg_infinity then x
  else Float.pred x

let is_sorted_strict a =
  let n = Array.length a in
  let rec loop i = i >= n || (a.(i - 1) < a.(i) && loop (i + 1)) in
  loop 1
