let clamp ~lo ~hi x =
  assert (lo <= hi);
  if x < lo then lo else if x > hi then hi else x

let approx_equal ?(eps = 1e-9) a b =
  a = b (* also covers equal infinities *)
  ||
  let diff = Float.abs (a -. b) in
  diff <= eps || diff <= eps *. Float.max (Float.abs a) (Float.abs b)

let feq ?eps a b = approx_equal ?eps a b
let fne ?eps a b = not (approx_equal ?eps a b)

let feq_rel ?(rel = 1e-9) a b =
  a = b (* also covers equal infinities and +-0 *)
  || Float.abs (a -. b) <= rel *. Float.max (Float.abs a) (Float.abs b)

let fne_rel ?rel a b = not (feq_rel ?rel a b)

let kahan_sum a =
  let sum = ref 0.0 and comp = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    let y = a.(i) -. !comp in
    let t = !sum +. y in
    comp := t -. !sum -. y;
    sum := t
  done;
  !sum

let sum_by f a =
  let sum = ref 0.0 and comp = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    let y = f a.(i) -. !comp in
    let t = !sum +. y in
    comp := t -. !sum -. y;
    sum := t
  done;
  !sum

let linspace a b k =
  if k < 2 then invalid_arg "Util.linspace: need k >= 2";
  let step = (b -. a) /. float_of_int (k - 1) in
  Array.init k (fun i -> if i = k - 1 then b else a +. (float_of_int i *. step))

let logspace a b k =
  if not (0.0 < a && a <= b) then invalid_arg "Util.logspace: need 0 < a <= b";
  let pts = linspace (log a) (log b) k in
  pts.(k - 1) <- log b;
  Array.map exp pts

let argmax f a =
  if Array.length a = 0 then invalid_arg "Util.argmax: empty array";
  let best = ref 0 and best_v = ref (f a.(0)) in
  for i = 1 to Array.length a - 1 do
    let v = f a.(i) in
    if v > !best_v then begin
      best := i;
      best_v := v
    end
  done;
  !best

let float_down x =
  if Float.is_nan x || x = Float.infinity || x = Float.neg_infinity then x
  else Float.pred x

let is_sorted_strict a =
  let n = Array.length a in
  let rec loop i = i >= n || (a.(i - 1) < a.(i) && loop (i + 1)) in
  loop 1

(* In-place heapsort of a.(lo .. lo+len-1): allocation-free, so hot
   paths can re-sort a slice without Array.sub/blit round trips. With a
   total-order comparator the result matches Array.sort on the slice. *)
let sort_range cmp a ~lo ~len =
  if lo < 0 || len < 0 || lo + len > Array.length a then
    invalid_arg "Util.sort_range: range out of bounds";
  let swap i j =
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  in
  (* sift-down on the max-heap stored at a.(lo ..  lo+limit-1) *)
  let rec sift limit i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let top = ref i in
    if l < limit && cmp a.(lo + l) a.(lo + !top) > 0 then top := l;
    if r < limit && cmp a.(lo + r) a.(lo + !top) > 0 then top := r;
    if !top <> i then begin
      swap (lo + i) (lo + !top);
      sift limit !top
    end
  in
  for i = (len / 2) - 1 downto 0 do
    sift len i
  done;
  for last = len - 1 downto 1 do
    swap lo (lo + last);
    sift last 0
  done
