let dedup_sorted pts =
  (* keep the max y among points with equal x; pts sorted by x *)
  let out = ref [] in
  Array.iter
    (fun (x, y) ->
      match !out with
      | (x', y') :: rest when x' = x -> out := (x, Float.max y y') :: rest
      | _ -> out := (x, y) :: !out)
    pts;
  Array.of_list (List.rev !out)

let sort_by_x pts =
  let a = Array.copy pts in
  Array.sort (fun (x1, _) (x2, _) -> compare x1 x2) a;
  a

(* cross product of (b - a) x (c - a); > 0 means c is above line ab,
   i.e. keeping b would make the chain convex from below. *)
let cross (ax, ay) (bx, by) (cx, cy) =
  ((bx -. ax) *. (cy -. ay)) -. ((by -. ay) *. (cx -. ax))

let upper_envelope pts =
  if Array.length pts = 0 then invalid_arg "Convex.upper_envelope: no points";
  let pts = dedup_sorted (sort_by_x pts) in
  let n = Array.length pts in
  if n <= 2 then pts
  else begin
    (* Andrew's monotone chain, keeping the hull that lies above the data:
       pop the middle point whenever it is at or below the chord. *)
    let stack = Array.make n pts.(0) in
    let top = ref 0 in
    for i = 1 to n - 1 do
      while !top >= 1 && cross stack.(!top - 1) stack.(!top) pts.(i) >= 0.0 do
        decr top
      done;
      incr top;
      stack.(!top) <- pts.(i)
    done;
    Array.sub stack 0 (!top + 1)
  end

let slopes pts =
  let n = Array.length pts in
  Array.init (max 0 (n - 1)) (fun i ->
      let x0, y0 = pts.(i) and x1, y1 = pts.(i + 1) in
      (* aa-lint: ignore-next unguarded-div -- callers pass points with distinct xs (envelope output / sorted samples) *)
      (y1 -. y0) /. (x1 -. x0))

let is_concave ?(eps = 1e-9) pts =
  let s = slopes pts in
  let ok = ref true in
  for i = 1 to Array.length s - 1 do
    let tol = eps *. Float.max 1.0 (Float.max (Float.abs s.(i - 1)) (Float.abs s.(i))) in
    if s.(i) > s.(i - 1) +. tol then ok := false
  done;
  !ok

let is_nondecreasing ?(eps = 1e-9) pts =
  let ok = ref true in
  for i = 1 to Array.length pts - 1 do
    let _, y0 = pts.(i - 1) and _, y1 = pts.(i) in
    if y1 < y0 -. eps then ok := false
  done;
  !ok

let max_concavity_violation pts =
  let s = slopes pts in
  if Array.length s < 2 then Float.neg_infinity
  else begin
    let worst = ref Float.neg_infinity in
    for i = 1 to Array.length s - 1 do
      let v = s.(i) -. s.(i - 1) in
      if v > !worst then worst := v
    done;
    !worst
  end
