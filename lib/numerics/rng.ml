type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* splitmix64, used for seeding and splitting: a single 64-bit state is
   enough to produce well-distributed initial states for xoshiro. *)
let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let of_seed64 seed64 =
  let state = ref seed64 in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

let create ?(seed = 42) () = of_seed64 (Int64.of_int seed)
let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 t =
  let open Int64 in
  let result = add (rotl (add t.s0 t.s3) 23) t.s0 in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t = of_seed64 (bits64 t)

(* Uniform in [0, 1): use the top 53 bits. *)
let unit_float t =
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits *. 0x1.0p-53

let float t b =
  if not (b > 0.0) then invalid_arg "Rng.float: bound must be positive";
  unit_float t *. b

let uniform t ~lo ~hi =
  if not (lo < hi) then invalid_arg "Rng.uniform: need lo < hi";
  lo +. (unit_float t *. (hi -. lo))

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection-free for our purposes: modulo bias is < 2^-40 for n < 2^23. *)
  Int64.to_int (Int64.rem (Int64.shift_right_logical (bits64 t) 1) (Int64.of_int n))

let bool t = Int64.logand (bits64 t) 1L = 1L

let rec normal t ~mu ~sigma =
  let u = uniform t ~lo:(-1.0) ~hi:1.0 in
  let v = uniform t ~lo:(-1.0) ~hi:1.0 in
  let s = (u *. u) +. (v *. v) in
  if s >= 1.0 || Util.feq s 0.0 then normal t ~mu ~sigma
  else mu +. (sigma *. u *. sqrt (-2.0 *. log s /. s))

let rec truncated_normal t ~mu ~sigma ~lo =
  let x = normal t ~mu ~sigma in
  if x >= lo then x else truncated_normal t ~mu ~sigma ~lo

let exponential t ~rate =
  if not (rate > 0.0) then invalid_arg "Rng.exponential: rate must be positive";
  -.log1p (-.unit_float t) /. rate

let power_law t ~alpha ~xmin =
  if not (alpha > 1.0) then invalid_arg "Rng.power_law: need alpha > 1";
  if not (xmin > 0.0) then invalid_arg "Rng.power_law: need xmin > 0";
  (* Inverse CDF of the Pareto density alpha' x^-(alpha) on [xmin, inf). *)
  let u = unit_float t in
  xmin *. ((1.0 -. u) ** (-1.0 /. (alpha -. 1.0)))

let two_point t ~gamma ~lo ~hi = if unit_float t < gamma then lo else hi

let simplex t k =
  if k < 1 then invalid_arg "Rng.simplex: need k >= 1";
  if k = 1 then [| 1.0 |]
  else begin
    (* Spacings between k-1 sorted uniforms on [0,1]. *)
    let cuts = Array.init (k - 1) (fun _ -> unit_float t) in
    Array.sort compare cuts;
    let parts = Array.make k 0.0 in
    parts.(0) <- cuts.(0);
    for i = 1 to k - 2 do
      parts.(i) <- cuts.(i) -. cuts.(i - 1)
    done;
    parts.(k - 1) <- 1.0 -. cuts.(k - 2);
    parts
  end

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
