type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  ci95 : float;
}

let mean a =
  if Array.length a = 0 then invalid_arg "Stats.mean: empty array";
  Util.kahan_sum a /. float_of_int (Array.length a)

let variance a =
  let n = Array.length a in
  if n < 2 then 0.0
  else begin
    let m = mean a in
    let acc = Util.sum_by (fun x -> (x -. m) *. (x -. m)) a in
    acc /. float_of_int (n - 1)
  end

let stddev a = sqrt (variance a)

let quantile a q =
  let n = Array.length a in
  if n = 0 then invalid_arg "Stats.quantile: empty array";
  if not (0.0 <= q && q <= 1.0) then invalid_arg "Stats.quantile: q outside [0,1]";
  let sorted = Array.copy a in
  Array.sort compare sorted;
  let pos = q *. float_of_int (n - 1) in
  let k = int_of_float (Float.floor pos) in
  if k >= n - 1 then sorted.(n - 1)
  else begin
    let frac = pos -. float_of_int k in
    (sorted.(k) *. (1.0 -. frac)) +. (sorted.(k + 1) *. frac)
  end

let median a = quantile a 0.5

let geometric_mean a =
  if Array.length a = 0 then invalid_arg "Stats.geometric_mean: empty array";
  let logs =
    Array.map
      (fun x ->
        if x <= 0.0 then invalid_arg "Stats.geometric_mean: nonpositive element";
        log x)
      a
  in
  exp (mean logs)

let summarize a =
  let n = Array.length a in
  if n = 0 then invalid_arg "Stats.summarize: empty array";
  let sd = stddev a in
  {
    n;
    mean = mean a;
    stddev = sd;
    min = Array.fold_left Float.min a.(0) a;
    max = Array.fold_left Float.max a.(0) a;
    ci95 = 1.96 *. sd /. sqrt (float_of_int n);
  }

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.6g ±%.2g sd=%.3g min=%.6g max=%.6g" s.n s.mean
    s.ci95 s.stddev s.min s.max

module Online = struct
  type t = {
    mutable count : int;
    mutable mean : float;
    mutable m2 : float;
    mutable min : float;
    mutable max : float;
  }

  let create () =
    { count = 0; mean = 0.0; m2 = 0.0; min = Float.infinity; max = Float.neg_infinity }

  let add t x =
    t.count <- t.count + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.count);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x

  let count t = t.count

  let mean t =
    if t.count = 0 then invalid_arg "Stats.Online.mean: no samples";
    t.mean

  let variance t = if t.count < 2 then 0.0 else t.m2 /. float_of_int (t.count - 1)
  let stddev t = sqrt (variance t)

  let min t =
    if t.count = 0 then invalid_arg "Stats.Online.min: no samples";
    t.min

  let max t =
    if t.count = 0 then invalid_arg "Stats.Online.max: no samples";
    t.max

  let summary t =
    {
      n = t.count;
      mean = mean t;
      stddev = stddev t;
      min = t.min;
      max = t.max;
      ci95 = 1.96 *. stddev t /. sqrt (float_of_int t.count);
    }

  (* Chan et al.'s parallel combination of two Welford accumulators:
     the pairwise update generalized from one sample to a batch. *)
  let merge a b =
    if a.count = 0 && b.count = 0 then create ()
    else begin
      let na = float_of_int a.count and nb = float_of_int b.count in
      let n = na +. nb in
      let delta = b.mean -. a.mean in
      {
        count = a.count + b.count;
        (* aa-lint: ignore-next unguarded-div -- n = count a + count b > 0 in this branch *)
        mean = a.mean +. (delta *. (nb /. n));
        (* aa-lint: ignore-next unguarded-div -- n > 0, as above *)
        m2 = a.m2 +. b.m2 +. (delta *. delta *. na *. nb /. n);
        min = Float.min a.min b.min;
        max = Float.max a.max b.max;
      }
    end
end
