(** Binary heaps.

    Two flavors are provided: a polymorphic push/pop heap used by the Fox
    greedy allocator, and an indexed float-priority heap over a fixed
    element set [0 .. n-1] with key updates, used by Algorithm 2 to track
    the server with the most remaining resources in [O(log m)] per step. *)

(** Polymorphic heap; the element ordering is supplied at creation.
    [create ~cmp] yields a max-heap when [cmp] orders ascending. *)
module Poly : sig
  type 'a t

  val create : cmp:('a -> 'a -> int) -> 'a t
  (** Empty heap whose maximum element (w.r.t. [cmp]) is popped first. *)

  val length : 'a t -> int
  val is_empty : 'a t -> bool
  val push : 'a t -> 'a -> unit

  val pop : 'a t -> 'a
  (** Removes and returns the maximum. Raises [Not_found] when empty. *)

  val peek : 'a t -> 'a
  (** Returns the maximum without removing it. Raises [Not_found] when
      empty. *)

  val of_array : cmp:('a -> 'a -> int) -> 'a array -> 'a t
  (** Heapify in [O(n)]. *)
end

(** Max-heap over elements [0 .. n-1] with mutable float priorities. *)
module Indexed : sig
  type t

  val create : float array -> t
  (** [create prios] builds a heap over [0 .. Array.length prios - 1]
      keyed by the given priorities, in [O(n)]. *)

  val size : t -> int

  val max_element : t -> int
  (** Element with the largest priority (ties broken by smaller index).
      Raises [Not_found] when the heap is empty. *)

  val priority : t -> int -> float
  (** Current priority of an element. *)

  val update : t -> int -> float -> unit
  (** [update t e p] changes element [e]'s priority to [p], restoring the
      heap in [O(log n)]. *)

  val refill : t -> float -> unit
  (** [refill t p] resets every element's priority to [p], leaving the
      heap identical to [create (Array.make (size t) p)] — in [O(n)]
      with no allocation. Lets Algorithm 2's scratch state reuse one
      heap across trials of the same shape. *)

  val reset : t -> float array -> unit
  (** [reset t prios] reloads arbitrary priorities and re-heapifies,
      leaving the heap indistinguishable from [create prios] (same
      layout, same sift-swap count) — in [O(n)] with no allocation.
      Raises [Invalid_argument] if [Array.length prios <> size t]. The
      merge-based greedy allocator uses this to recycle one heap across
      same-shape solves. *)
end
