(** Small numeric helpers shared across the library. *)

val clamp : lo:float -> hi:float -> float -> float
(** [clamp ~lo ~hi x] is [x] restricted to the interval [[lo, hi]].
    Requires [lo <= hi]. *)

val approx_equal : ?eps:float -> float -> float -> bool
(** [approx_equal ?eps a b] holds when [a] and [b] differ by at most [eps]
    in absolute terms, or by [eps] relative to the larger magnitude.
    [eps] defaults to [1e-9]. *)

val feq : ?eps:float -> float -> float -> bool
(** Tolerant float equality — the comparison [aa_lint] requires in place
    of [=] on floats. Alias of {!approx_equal}; the short name keeps
    numeric guard clauses readable. *)

val fne : ?eps:float -> float -> float -> bool
(** Negation of {!feq}, replacing [<>] on floats. *)

val feq_rel : ?rel:float -> float -> float -> bool
(** Purely {e relative} tolerant equality: [|a - b| <= rel * max |a| |b|]
    (plus exact equality, covering zeros and equal infinities). [rel]
    defaults to [1e-9]. Unlike {!feq}, there is no absolute-epsilon
    branch, so the test scales with the operands at both extremes —
    [feq ~eps:1e-9 1e-12 2e-12] accepts values 2x apart (the absolute
    branch swallows them) and at magnitude [1e12] nothing short of bit
    equality passes the absolute branch alone. Use for quantities with
    arbitrary scale, e.g. capacity caps. *)

val fne_rel : ?rel:float -> float -> float -> bool
(** Negation of {!feq_rel}. *)

val kahan_sum : float array -> float
(** Compensated (Kahan) summation, stable for long sums of small terms. *)

val sum_by : ('a -> float) -> 'a array -> float
(** [sum_by f a] is the compensated sum of [f a.(i)] over all elements. *)

val linspace : float -> float -> int -> float array
(** [linspace a b k] is [k] evenly spaced points from [a] to [b]
    inclusive. Requires [k >= 2]. *)

val logspace : float -> float -> int -> float array
(** [logspace a b k] is [k] logarithmically spaced points from [a] to [b]
    inclusive. Requires [0 < a <= b] and [k >= 2]. *)

val argmax : ('a -> float) -> 'a array -> int
(** Index of the first element maximizing [f]. Raises [Invalid_argument]
    on an empty array. *)

val float_down : float -> float
(** Largest representable float strictly below the argument (predecessor);
    identity on infinities and nan. *)

val is_sorted_strict : float array -> bool
(** Whether the array is strictly increasing. *)

val sort_range : ('a -> 'a -> int) -> 'a array -> lo:int -> len:int -> unit
(** [sort_range cmp a ~lo ~len] sorts the slice [a.(lo .. lo+len-1)] in
    place (heapsort: O(len log len), no allocation). Not stable; with a
    comparator that is a total order the result is the unique sorted
    permutation, identical to [Array.sort] on a copied slice. *)
