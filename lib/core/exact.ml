open Aa_alloc

let max_threads = 16

type result = { assignment : Assignment.t; utility : float }

let solve ?samples (inst : Instance.t) =
  let n = Instance.n_threads inst in
  if n > max_threads then
    invalid_arg
      (Printf.sprintf "Exact.solve: %d threads exceeds the limit of %d" n max_threads);
  let m = inst.servers in
  let plc = Instance.to_plc ?samples inst in
  let full = (1 lsl n) - 1 in
  (* Optimal pooled utility of a thread group within one server. *)
  let group_value = Array.make (full + 1) Float.nan in
  let group_alloc = Array.make (full + 1) [||] in
  let members mask =
    let out = ref [] in
    for i = n - 1 downto 0 do
      if mask land (1 lsl i) <> 0 then out := i :: !out
    done;
    Array.of_list !out
  in
  let scratch = Plc_greedy.Scratch.create () in
  let value_of mask =
    if Float.is_nan group_value.(mask) then begin
      let ids = members mask in
      let fs = Array.map (fun i -> plc.(i)) ids in
      let r = Plc_greedy.allocate ~scratch ~exhaust:false ~budget:inst.capacity fs in
      group_value.(mask) <- r.utility;
      group_alloc.(mask) <- r.alloc
    end;
    group_value.(mask)
  in
  (* dp.(k).(mask): best utility covering [mask] with at most k servers;
     choice.(k).(mask): the group given its own server in that optimum. *)
  let servers_needed = min m n in
  let dp = Array.make_matrix (servers_needed + 1) (full + 1) Float.neg_infinity in
  let choice = Array.make_matrix (servers_needed + 1) (full + 1) 0 in
  for k = 0 to servers_needed do
    dp.(k).(0) <- 0.0
  done;
  for k = 1 to servers_needed do
    for mask = 1 to full do
      (* Force the group to contain the lowest thread of [mask] so each
         partition is enumerated once. *)
      let low = mask land -mask in
      let rest = mask lxor low in
      (* iterate over submasks s of rest; group = s | low *)
      let s = ref rest in
      let continue = ref true in
      while !continue do
        let group = !s lor low in
        let cand = value_of group +. dp.(k - 1).(mask lxor group) in
        if cand > dp.(k).(mask) then begin
          dp.(k).(mask) <- cand;
          choice.(k).(mask) <- group
        end;
        if !s = 0 then continue := false else s := (!s - 1) land rest
      done
    done
  done;
  (* Reconstruct. *)
  let server = Array.make n (-1) in
  let alloc = Array.make n 0.0 in
  let rec rebuild k mask next_server =
    if mask <> 0 then begin
      let group = choice.(k).(mask) in
      ignore (value_of group);
      let ids = members group in
      Array.iteri
        (fun pos i ->
          server.(i) <- next_server;
          alloc.(i) <- group_alloc.(group).(pos))
        ids;
      rebuild (k - 1) (mask lxor group) (next_server + 1)
    end
  in
  rebuild servers_needed full 0;
  (* Threads in no group (can't happen: dp covers full) default to 0 on
     server 0; guard anyway. *)
  Array.iteri (fun i j -> if j < 0 then server.(i) <- 0) server;
  { assignment = Assignment.make ~server ~alloc; utility = dp.(servers_needed).(full) }
