open Aa_alloc

let redivide ~plcs ~capacity_of ~servers (a : Assignment.t) =
  let n = Assignment.n_threads a in
  let alloc = Array.make n 0.0 in
  let scratch = Plc_greedy.Scratch.create () in
  for j = 0 to servers - 1 do
    let ids = ref [] in
    for i = n - 1 downto 0 do
      if a.server.(i) = j then ids := i :: !ids
    done;
    match !ids with
    | [] -> ()
    | ids ->
        let ids = Array.of_list ids in
        let fs = Array.map (fun i -> plcs.(i)) ids in
        let r = Plc_greedy.allocate ~scratch ~exhaust:false ~budget:(capacity_of j) fs in
        Array.iteri (fun pos i -> alloc.(i) <- r.alloc.(pos)) ids
  done;
  Assignment.make ~server:(Array.copy a.server) ~alloc

let per_server ?samples (inst : Instance.t) a =
  redivide ~plcs:(Instance.to_plc ?samples inst)
    ~capacity_of:(fun _ -> inst.capacity)
    ~servers:inst.servers a

let hetero ?samples (t : Hetero.t) a =
  let plcs = Array.map (Aa_utility.Utility.to_plc ?samples) t.utilities in
  redivide ~plcs ~capacity_of:(fun j -> t.capacities.(j)) ~servers:(Hetero.n_servers t) a
