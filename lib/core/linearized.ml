open Aa_numerics
open Aa_utility

type thread = { index : int; chat : float; peak : float; slope : float; g : Plc.t }
type t = { instance : Instance.t; superopt : Superopt.t; threads : thread array }

let of_superopt (inst : Instance.t) (so : Superopt.t) =
  let threads =
    Array.mapi
      (fun i chat ->
        (* float accumulation in the pooled allocator can overshoot the
           domain cap by an ulp; the theory has chat in [0, C] *)
        let chat = Util.clamp ~lo:0.0 ~hi:inst.capacity chat in
        let peak = Plc.eval so.plc.(i) chat in
        let degenerate = Util.feq chat 0.0 in
        let slope =
          if not degenerate then peak /. chat
          else if peak > 0.0 then Float.infinity
          else 0.0
        in
        let g =
          if degenerate then Plc.constant ~cap:inst.capacity peak
          else Plc.two_piece ~cap:inst.capacity ~peak ~chat
        in
        { index = i; chat; peak; slope; g })
      so.chat
  in
  { instance = inst; superopt = so; threads }

let make ?samples ?exhaust inst = of_superopt inst (Superopt.compute ?samples ?exhaust inst)
let g_value th x = Plc.eval th.g x
let superoptimal_utility t = Util.sum_by (fun th -> th.peak) t.threads
