open Aa_numerics

type server_rule = [ `Max_remaining | `Min_remaining | `Round_robin ]

(* Reusable per-worker buffers for [solve]: the assignment order and the
   remaining-capacity heap are shaped by (n, m) only, so experiment
   loops running thousands of same-shape trials can recycle them
   instead of re-allocating per call. The returned Assignment arrays
   escape to the caller and are always fresh. *)
module Scratch = struct
  type t = { mutable idx : int array; mutable heap : Heap.Indexed.t option }

  let create () = { idx = [||]; heap = None }

  let idx_for t n =
    if Array.length t.idx <> n then t.idx <- Array.make n 0;
    t.idx

  let heap_for t m capacity =
    match t.heap with
    | Some h when Heap.Indexed.size h = m ->
        Heap.Indexed.refill h capacity;
        h
    | Some _ | None ->
        let h = Heap.Indexed.create (Array.make m capacity) in
        t.heap <- Some h;
        h
end

let c_solves = Aa_obs.Registry.counter "algo2.solves"
let c_sorts = Aa_obs.Registry.counter "algo2.sorts"
let c_assigned = Aa_obs.Registry.counter "algo2.threads_assigned"

let by_peak (lin : Linearized.t) a b =
  let pa = lin.threads.(a).peak and pb = lin.threads.(b).peak in
  match compare pb pa with 0 -> compare a b | c -> c

let by_slope (lin : Linearized.t) a b =
  let sa = lin.threads.(a).slope and sb = lin.threads.(b).slope in
  match compare sb sa with 0 -> compare a b | c -> c

(* Fill [idx] with 0..n-1 ordered by nonincreasing peak, the tail beyond
   the first [m] re-sorted by nonincreasing slope — all in place: the
   tail re-sort uses an allocation-free range sort rather than an
   Array.sub/blit copy (both comparators are total orders, so any
   comparison sort yields the same permutation). *)
let order_into ?(tail_resort = true) (lin : Linearized.t) idx =
  let n = Array.length lin.threads in
  let m = lin.instance.servers in
  for i = 0 to n - 1 do
    idx.(i) <- i
  done;
  Array.sort (by_peak lin) idx;
  Aa_obs.Registry.Counter.incr c_sorts;
  if tail_resort && n > m then begin
    Util.sort_range (by_slope lin) idx ~lo:m ~len:(n - m);
    Aa_obs.Registry.Counter.incr c_sorts
  end

let order ?tail_resort (lin : Linearized.t) =
  let idx = Array.make (Array.length lin.threads) 0 in
  order_into ?tail_resort lin idx;
  idx

let solve ?linearized ?tail_resort ?(server_rule = `Max_remaining) ?scratch
    (inst : Instance.t) =
  Aa_obs.Registry.Counter.incr c_solves;
  Aa_obs.Trace.begin_span "algo2";
  let lin = match linearized with Some l -> l | None -> Linearized.make inst in
  let n = Instance.n_threads inst in
  let m = inst.servers in
  let idx, heap =
    match scratch with
    | Some s -> (Scratch.idx_for s n, Scratch.heap_for s m inst.capacity)
    | None -> (Array.make n 0, Heap.Indexed.create (Array.make m inst.capacity))
  in
  order_into ?tail_resort lin idx;
  let server = Array.make n (-1) in
  let alloc = Array.make n 0.0 in
  let rr = ref 0 in
  Array.iter
    (fun i ->
      let j =
        match server_rule with
        | `Max_remaining -> Heap.Indexed.max_element heap
        | `Min_remaining ->
            (* heap-free linear scan: the ablation wants the argmin of the
               remaining capacities, ties to the smaller index, and a
               max-heap cannot pop its minimum — O(m) per thread is fine
               for an ablation-only rule (see the scan test) *)
            let best = ref 0 in
            for k = 1 to m - 1 do
              if Heap.Indexed.priority heap k < Heap.Indexed.priority heap !best then
                best := k
            done;
            !best
        | `Round_robin ->
            let j = !rr mod m in
            incr rr;
            j
      in
      let available = Heap.Indexed.priority heap j in
      let c = Float.min lin.threads.(i).chat available in
      server.(i) <- j;
      alloc.(i) <- c;
      Heap.Indexed.update heap j (available -. c))
    idx;
  Aa_obs.Registry.Counter.add c_assigned n;
  Aa_obs.Trace.end_span ();
  Assignment.make ~server ~alloc
