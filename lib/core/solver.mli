(** Umbrella entry point: one function to run any of the paper's
    algorithms or baselines on an instance. *)

type algo =
  | Algo1  (** Section V greedy, [O(mn² + n (log mC)²)] *)
  | Algo2  (** Section VI heap algorithm, [O(n (log mC)²)] *)
  | Uu  (** round-robin placement, equal shares *)
  | Ur  (** round-robin placement, random shares *)
  | Ru  (** random placement, equal shares *)
  | Rr  (** random placement, random shares *)

val all : algo list
(** Every algorithm, in the order above. *)

val name : algo -> string
(** Short display name ("Algo1", "UU", …). *)

val of_name : string -> algo option
(** Inverse of [name], case-insensitive. *)

val is_randomized : algo -> bool (* aa-lint: ignore unused-export -- driver API: tells callers whether solve needs ~rng *)

val solve : ?rng:Aa_numerics.Rng.t -> ?linearized:Linearized.t -> algo -> Instance.t -> Assignment.t
(** Runs the chosen algorithm. [rng] is required by the randomized
    heuristics (defaults to a fresh seed-42 generator). [linearized]
    lets Algo1/Algo2 reuse a precomputed linearization; others ignore
    it. *)
