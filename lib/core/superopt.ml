open Aa_alloc

type t = {
  chat : float array;
  utility : float;
  lambda : float;
  plc : Aa_utility.Plc.t array;
}

let budget (inst : Instance.t) = float_of_int inst.servers *. inst.capacity

let compute ?samples ?exhaust (inst : Instance.t) =
  Aa_obs.Trace.span "superopt" @@ fun () ->
  let plc = Instance.to_plc ?samples inst in
  let r = Plc_greedy.allocate ?exhaust ~budget:(budget inst) plc in
  { chat = r.alloc; utility = r.utility; lambda = r.lambda; plc }

let compute_waterfill ?iters (inst : Instance.t) =
  Aa_obs.Trace.span "superopt.waterfill" @@ fun () ->
  let r = Waterfill.allocate ?iters ~budget:(budget inst) inst.utilities in
  { chat = r.alloc; utility = r.utility; lambda = r.lambda; plc = Instance.to_plc inst }
