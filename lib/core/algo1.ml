(* Pair scans count the (thread, server) probes of the O(n^2 m)
   candidate search — the quantity Algorithm 2 exists to avoid. A
   local accumulator keeps the hot loop free of atomics. *)
let c_solves = Aa_obs.Registry.counter "algo1.solves"
let c_scans = Aa_obs.Registry.counter "algo1.pair_scans"

let solve ?linearized (inst : Instance.t) =
  Aa_obs.Registry.Counter.incr c_solves;
  Aa_obs.Trace.begin_span "algo1";
  let scans = ref 0 in
  let lin = match linearized with Some l -> l | None -> Linearized.make inst in
  let n = Instance.n_threads inst in
  let m = inst.servers in
  let remaining = Array.make m inst.capacity in
  let unassigned = Array.make n true in
  let server = Array.make n (-1) in
  let alloc = Array.make n 0.0 in
  for _ = 1 to n do
    (* U: unassigned threads that fit their super-optimal allocation on
       some server. Pick the one with the greatest linearized peak. *)
    let best_full = ref None in
    for i = 0 to n - 1 do
      if unassigned.(i) then begin
        let th = lin.threads.(i) in
        scans := !scans + m;
        for j = 0 to m - 1 do
          if remaining.(j) >= th.chat then begin
            let better =
              match !best_full with
              | None -> true
              | Some (i', j', _) ->
                  let p' = lin.threads.(i').peak in
                  th.peak > p'
                  || (th.peak = p'
                     && (remaining.(j) > remaining.(j')
                        || (remaining.(j) = remaining.(j') && (i, j) < (i', j'))))
            in
            if better then best_full := Some (i, j, th.chat)
          end
        done
      end
    done;
    let pick =
      match !best_full with
      | Some _ as p -> p
      | None ->
          (* No thread fits fully: give some thread all the remaining
             resource of the server where it is worth the most. *)
          let best = ref None in
          for i = 0 to n - 1 do
            if unassigned.(i) then begin
              let th = lin.threads.(i) in
              scans := !scans + m;
              for j = 0 to m - 1 do
                let v = Linearized.g_value th remaining.(j) in
                let better =
                  match !best with
                  | None -> true
                  | Some (i', j', _) ->
                      let v' =
                        Linearized.g_value lin.threads.(i') remaining.(j')
                      in
                      v > v'
                      || (v = v'
                         && (remaining.(j) > remaining.(j')
                            || (remaining.(j) = remaining.(j') && (i, j) < (i', j'))))
                in
                if better then best := Some (i, j, remaining.(j))
              done
            end
          done;
          !best
    in
    match pick with
    | None -> assert false (* there is always an unassigned thread in the loop *)
    | Some (i, j, c) ->
        unassigned.(i) <- false;
        server.(i) <- j;
        alloc.(i) <- c;
        remaining.(j) <- remaining.(j) -. c
  done;
  Aa_obs.Registry.Counter.add c_scans !scans;
  Aa_obs.Trace.end_span ();
  Assignment.make ~server ~alloc
