open Aa_numerics

let round_robin n m = Array.init n (fun i -> i mod m)
let random_servers ~rng n m = Array.init n (fun _ -> Rng.int rng m)

(* Divide each server's capacity among its assigned threads with the
   given splitter (k -> fractions summing to 1). *)
let allocate_shares (inst : Instance.t) server split =
  let n = Array.length server in
  let alloc = Array.make n 0.0 in
  for j = 0 to inst.servers - 1 do
    let members = ref [] in
    for i = n - 1 downto 0 do
      if server.(i) = j then members := i :: !members
    done;
    let members = Array.of_list !members in
    let k = Array.length members in
    if k > 0 then begin
      let fracs = split k in
      Array.iteri (fun idx i -> alloc.(i) <- inst.capacity *. fracs.(idx)) members
    end
  done;
  alloc

let equal_split k = Array.make k (1.0 /. float_of_int k)

let solve_with (inst : Instance.t) ~place ~split =
  let n = Instance.n_threads inst in
  let server = place n inst.servers in
  let alloc = allocate_shares inst server split in
  Assignment.make ~server ~alloc

let uu inst = solve_with inst ~place:round_robin ~split:equal_split

let ur ~rng inst =
  solve_with inst ~place:round_robin ~split:(fun k -> Rng.simplex rng k)

let ru ~rng inst =
  solve_with inst ~place:(random_servers ~rng) ~split:equal_split

let rr ~rng inst =
  solve_with inst ~place:(random_servers ~rng) ~split:(fun k -> Rng.simplex rng k)

let best_of_random ?samples ~rng ~tries (inst : Instance.t) =
  if tries < 1 then invalid_arg "Heuristics.best_of_random: tries must be >= 1";
  let n = Instance.n_threads inst in
  let plcs = Instance.to_plc ?samples inst in
  let scratch = Aa_alloc.Plc_greedy.Scratch.create () in
  let best = ref None in
  for _ = 1 to tries do
    let server = random_servers ~rng n inst.servers in
    let alloc = Array.make n 0.0 in
    let total = ref 0.0 in
    for j = 0 to inst.servers - 1 do
      let ids = ref [] in
      for i = n - 1 downto 0 do
        if server.(i) = j then ids := i :: !ids
      done;
      match !ids with
      | [] -> ()
      | ids ->
          let ids = Array.of_list ids in
          let fs = Array.map (fun i -> plcs.(i)) ids in
          let r = Aa_alloc.Plc_greedy.allocate ~scratch ~exhaust:false ~budget:inst.capacity fs in
          Array.iteri (fun pos i -> alloc.(i) <- r.alloc.(pos)) ids;
          total := !total +. r.utility
    done;
    match !best with
    | Some (v, _) when v >= !total -> ()
    | _ -> best := Some (!total, Assignment.make ~server ~alloc)
  done;
  match !best with Some (_, a) -> a | None -> assert false
