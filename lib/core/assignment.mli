(** A solution to an AA instance: the server each thread runs on, and the
    resource it is allocated there (the paper's vector
    [(r_1, c_1), …, (r_n, c_n)]). *)

type t = {
  server : int array;  (** [server.(i)]: index in [[0, m-1]] of thread i's server *)
  alloc : float array;  (** [alloc.(i)]: resource allocated to thread i *)
}

val make : server:int array -> alloc:float array -> t
(** Requires the arrays to have equal nonzero length. *)

val n_threads : t -> int

val check : ?eps:float -> Instance.t -> t -> (unit, string) result
(** Feasibility: one entry per thread, server indices in range,
    allocations nonnegative, and each server's total allocation at most
    [capacity] (within [eps] relative slack, default 1e-9 — allocations
    produced by float arithmetic may overshoot by rounding only). *)

val utility : Instance.t -> t -> float
(** Total utility [sum_i f_i(c_i)] of the assignment. *)

val server_load : Instance.t -> t -> float array
(** Resource in use on each server. *)

val threads_on : t -> int -> int list
(** Threads assigned to the given server, in increasing index order. *)

val pp : Format.formatter -> t -> unit (* aa-lint: ignore unused-export -- debug printer, kept for toplevel/driver use *)
