(** Online AA (the paper's second future-work item, §VIII): threads
    arrive one at a time and must be placed immediately, without
    migration. Within a server, resources may be re-divided among the
    threads already there (cache partitions and VM sizes can be adjusted
    in place; moving a thread cannot).

    The policy is marginal-gain greedy: for each server, compute the
    optimal (water-filling) value of its resident threads with and
    without the newcomer, and place the thread where the increase is
    largest — ties to the emptier server. Each admission costs
    [O(m · S log S)] where [S] bounds a server's total PLC segments.

    There is no constant competitive ratio for this problem (an
    adversary can fill servers with low-value threads first); the bench's
    [online] experiment measures the empirical gap to offline
    Algorithm 2. *)

type t

val create : servers:int -> capacity:float -> t

val servers : t -> int
val capacity : t -> float
val n_admitted : t -> int

val admit : ?samples:int -> t -> Aa_utility.Utility.t -> int
(** Places one thread, returning the chosen server. The thread's utility
    must have domain cap equal to the server capacity. Allocations of
    the chosen server's resident threads are re-optimized. *)

val admit_to : ?samples:int -> t -> server:int -> Aa_utility.Utility.t -> int
(** [admit_to t ~server u] admits a thread onto an explicit server,
    bypassing the greedy placement rule, and returns the new thread id
    (its admission index). Used by deterministic replay — a journal that
    records each thread's historical server can reconstruct the engine
    exactly, placement decisions included. Raises [Invalid_argument] on
    a server out of range or a domain-cap mismatch. *)

val depart : t -> int -> unit
(** [depart t i] removes the thread admitted [i]-th (0-based); its
    server's capacity is re-divided among the remaining residents.
    Raises [Invalid_argument] for unknown or already-departed threads.
    Departed threads keep their historical server in {!assignment} but
    hold 0 resources and contribute nothing to {!total_utility}. *)

val update_utility : ?samples:int -> t -> int -> Aa_utility.Utility.t -> unit
(** [update_utility t i u] replaces thread [i]'s utility — the paper's
    "utility functions … may change over time; integrate online
    performance measurements" (§VIII). The thread stays on its server
    (no migration); that server's allocations are re-optimized under the
    new curve. Raises for unknown/departed threads or cap mismatch. *)

val n_active : t -> int
(** Admitted and not departed. *)

val is_active : t -> int -> bool

val assignment : t -> Assignment.t
(** Current assignment of all admitted threads, in admission order.
    Raises [Invalid_argument] if nothing was admitted. *)

val instance : t -> Instance.t
(** The offline instance formed by the admitted threads (for comparing
    against offline algorithms). Raises if nothing was admitted.
    Includes departed threads — use {!active_instance} for a view of the
    live set only. *)

val server_of : t -> int -> int
(** The server a thread was admitted to (historical for departed
    threads). Raises [Invalid_argument] for unknown ids. *)

val alloc_of : t -> int -> float
(** The thread's current allocation; [0.] for departed threads. Raises
    [Invalid_argument] for unknown ids. *)

val thread_utility : t -> int -> Aa_utility.Utility.t
(** The utility most recently registered for a thread (admission value,
    or the last {!update_utility}). Raises for unknown ids. *)

val active_ids : t -> int array
(** Admission indices of the non-departed threads, increasing. *)

val active_instance : t -> Instance.t
(** The offline instance formed by the active (non-departed) threads
    only, ordered as {!active_ids} — the set an offline re-solve
    (service REBALANCE) should compete on. Raises [Invalid_argument]
    when no thread is active. *)

val active_assignment : t -> Assignment.t
(** Current servers and allocations of the active threads, indexed as
    {!active_ids} (thread [k] of {!active_instance} is admission id
    [(active_ids t).(k)]). Raises when no thread is active. *)

val total_utility : t -> float
(** Utility of the current assignment. *)

val solve_sequence :
  ?samples:int ->
  servers:int ->
  capacity:float ->
  Aa_utility.Utility.t array ->
  Assignment.t
(** Convenience: admit the whole array in order and return the final
    assignment. *)
