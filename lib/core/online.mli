(** Online AA (the paper's second future-work item, §VIII): threads
    arrive one at a time and must be placed immediately, without
    migration. Within a server, resources may be re-divided among the
    threads already there (cache partitions and VM sizes can be adjusted
    in place; moving a thread cannot).

    The policy is marginal-gain greedy: for each server, compute the
    optimal (water-filling) value of its resident threads with and
    without the newcomer, and place the thread where the increase is
    largest — ties to the emptier server.

    Two maintenance strategies produce bit-identical placements and
    allocations:

    - {!Full} re-runs {!Aa_alloc.Plc_greedy.allocate} from scratch on
      every candidate server of every admission — [O(m · S log S)] per
      admission where [S] bounds a server's total PLC segments.
    - {!Incremental} (the default) keeps each server's merged piece
      order alive between requests: ADMIT evaluates candidates with an
      allocator-free two-stream merge walk and splices the winner's
      pieces in, DEPART/UPDATE re-fill only the affected server —
      [O(m · S)] per admission with no allocator calls at all. Because
      resident lists are newest-first, the merged (slope desc, admission
      id desc) order replays the from-scratch k-way merge bit for bit.

    Every mutation also accrues a {e certified drift bound}: an upper
    bound on [F̂ − U], the gap between the pooled super-optimal bound
    (Lemma V.2) and the online utility — exact for PLC utilities,
    relative to the PLC-minorant forms for smooth ones. {!Auto} uses it
    to trigger a full re-solve (Algorithm 2 with migration) once the
    online value certifiably decays below a configured fraction of what
    the bound says might be attainable.

    There is no constant competitive ratio for this problem (an
    adversary can fill servers with low-value threads first); the bench's
    [online] experiment measures the empirical gap to offline
    Algorithm 2. *)

type t

type policy =
  | Full  (** from-scratch allocator run per candidate server (reference) *)
  | Incremental  (** splice-maintained piece orders; never migrates *)
  | Auto of { frac : float }
      (** incremental maintenance plus a certified decay trigger: after
          any mutation, if [U < frac · (U + drift)] a full re-solve
          (with migration) runs at the mutation boundary. [frac = 0.]
          never re-solves; [frac = 1.] re-solves on any certified loss. *)

val create : ?policy:policy -> servers:int -> capacity:float -> unit -> t
(** [policy] defaults to {!Incremental}. Raises [Invalid_argument] for
    [servers < 1], a non-positive [capacity], or an {!Auto} fraction
    outside [[0, 1]]. *)

val servers : t -> int
val capacity : t -> float
val n_admitted : t -> int
val policy : t -> policy

val admit : ?samples:int -> t -> Aa_utility.Utility.t -> int
(** Places one thread, returning its server. The thread's utility must
    have domain cap equal to the server capacity. Allocations of the
    chosen server's resident threads are re-optimized. Under {!Auto} the
    admission may trigger a re-solve, in which case the returned server
    is the thread's post-migration home. *)

val admit_to : ?samples:int -> t -> server:int -> Aa_utility.Utility.t -> int
(** [admit_to t ~server u] admits a thread onto an explicit server,
    bypassing the greedy placement rule, and returns the new thread id
    (its admission index). Used by deterministic replay — a journal that
    records each thread's historical server can reconstruct the engine
    exactly, placement decisions included. Raises [Invalid_argument] on
    a server out of range or a domain-cap mismatch. *)

val depart : t -> int -> unit
(** [depart t i] removes the thread admitted [i]-th (0-based); its
    server's capacity is re-divided among the remaining residents.
    Raises [Invalid_argument] for unknown or already-departed threads.
    Departed threads keep their historical server in {!assignment} but
    hold 0 resources and contribute nothing to {!total_utility}. *)

val update_utility : ?samples:int -> t -> int -> Aa_utility.Utility.t -> unit
(** [update_utility t i u] replaces thread [i]'s utility — the paper's
    "utility functions … may change over time; integrate online
    performance measurements" (§VIII). The thread stays on its server
    (no migration, unless an {!Auto} re-solve fires); that server's
    allocations are re-optimized under the new curve. Raises for
    unknown/departed threads or cap mismatch. *)

val n_active : t -> int
(** Admitted and not departed. *)

val is_active : t -> int -> bool

val drift_bound : t -> float
(** Certified upper bound on [F̂ − U] for the current active set: how far
    the online utility may certifiably sit below the pooled
    super-optimal bound (and hence below any assignment, offline
    re-solves included). Accrued per mutation, tightened by
    {!note_bound}, reset exactly by {!resolve}. *)

val splices : t -> int
(** Incremental piece-order splices performed (admissions and utility
    updates under {!Incremental}/{!Auto}); [0] under {!Full}. *)

val resolves : t -> int
(** Full re-solves performed ({!resolve} calls, including {!Auto}
    triggers). *)

val resolve : t -> unit
(** Re-solve the active set from scratch with Algorithm 2 — the one
    operation allowed to migrate threads — then recompute the exact
    pooled bound and reset the drift certificate to [max 0 (F̂ − U)].
    With no active threads, clears all servers and zeroes the drift. *)

val note_bound : t -> upper:float -> unit
(** [note_bound t ~upper] tightens the published {!drift_bound} given a
    freshly computed pooled upper bound (e.g. the service REBALANCE
    already runs {!Superopt.compute}); keeps whichever certificate is
    smaller. Never loosens the bound, and never affects {!Auto}
    triggering — re-solve points stay a pure function of the mutation
    sequence so journal replay reproduces them. *)

val assignment : t -> Assignment.t
(** Current assignment of all admitted threads, in admission order.
    Raises [Invalid_argument] if nothing was admitted. *)

val instance : t -> Instance.t
(** The offline instance formed by the admitted threads (for comparing
    against offline algorithms). Raises if nothing was admitted.
    Includes departed threads — use {!active_instance} for a view of the
    live set only. *)

val server_of : t -> int -> int
(** The server a thread was admitted to (historical for departed
    threads). Raises [Invalid_argument] for unknown ids. *)

val alloc_of : t -> int -> float
(** The thread's current allocation; [0.] for departed threads. O(1) via
    the admission-id index. Raises [Invalid_argument] for unknown ids. *)

val thread_utility : t -> int -> Aa_utility.Utility.t
(** The utility most recently registered for a thread (admission value,
    or the last {!update_utility}). Raises for unknown ids. *)

val active_ids : t -> int array
(** Admission indices of the non-departed threads, increasing. *)

val active_instance : t -> Instance.t
(** The offline instance formed by the active (non-departed) threads
    only, ordered as {!active_ids} — the set an offline re-solve
    (service REBALANCE) should compete on. Raises [Invalid_argument]
    when no thread is active. *)

val active_assignment : t -> Assignment.t
(** Current servers and allocations of the active threads, indexed as
    {!active_ids} (thread [k] of {!active_instance} is admission id
    [(active_ids t).(k)]). Raises when no thread is active. *)

val total_utility : t -> float
(** Utility of the current assignment. *)

val solve_sequence :
  ?samples:int ->
  ?policy:policy ->
  servers:int ->
  capacity:float ->
  Aa_utility.Utility.t array ->
  Assignment.t
(** Convenience: admit the whole array in order and return the final
    assignment. *)
