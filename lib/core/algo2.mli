(** Algorithm 2 (Section VI): the faster [O(n (log mC)²)]
    [2(√2−1)]-approximation.

    Threads are sorted by nonincreasing linearized peak [g_i(ĉ_i)]; the
    tail beyond the first [m] is re-sorted by nonincreasing ramp slope
    [g_i(ĉ_i)/ĉ_i]. Threads are then assigned in this order, each to the
    server with the most remaining resource (a max-heap), receiving
    [min ĉ_i (remaining)]. *)

type server_rule =
  [ `Max_remaining  (** the paper's rule *)
  | `Min_remaining  (** ablation: worst-fit inverted *)
  | `Round_robin  (** ablation: ignore remaining resource *) ]

(** Reusable solve buffers (assignment order, capacity heap) for tight
    same-shape trial loops; see {!solve}'s [scratch]. A scratch value
    must not be shared across domains running concurrently — give each
    worker its own. *)
module Scratch : sig
  type t

  val create : unit -> t
  (** Empty scratch; buffers are (re)grown on first use per shape. *)
end

val solve :
  ?linearized:Linearized.t ->
  ?tail_resort:bool ->
  ?server_rule:server_rule ->
  ?scratch:Scratch.t ->
  Instance.t ->
  Assignment.t
(** [solve inst] runs the full pipeline. [tail_resort] (default true)
    applies line 2 of the pseudocode — disabling it is the A1 ablation.
    [server_rule] (default [`Max_remaining]) selects the server choice
    rule; only the default carries the approximation guarantee.
    [scratch] recycles the internal order/heap buffers across calls of
    the same shape [(n, m)] — results are bit-identical with or without
    it; the returned assignment never aliases scratch storage. *)

val order : ?tail_resort:bool -> Linearized.t -> int array
(** The assignment order used by [solve] (exposed for tests): thread
    indices sorted by peak, tail re-sorted by slope. Deterministic;
    ties broken by original index. *)
