open Aa_alloc

type stats = { rounds : int; moves : int; swaps : int; initial : float; final : float }

(* Exact pooled value of one server's thread set. *)
let server_value ?scratch ~plcs ~capacity members =
  match members with
  | [] -> 0.0
  | _ ->
      let fs = Array.of_list (List.map (fun i -> plcs.(i)) members) in
      (Plc_greedy.allocate ?scratch ~exhaust:false ~budget:capacity fs).utility

let improve ?samples ?(max_rounds = 50) ?(enable_swaps = true) (inst : Instance.t)
    (a : Assignment.t) =
  let n = Instance.n_threads inst in
  let m = inst.servers in
  let plcs = Instance.to_plc ?samples inst in
  (* one recycled allocator scratch for the whole climb: candidate
     evaluation dominates, and every call here is sequential *)
  let scratch = Plc_greedy.Scratch.create () in
  let server_value ~plcs ~capacity members = server_value ~scratch ~plcs ~capacity members in
  let server = Array.copy a.server in
  let members = Array.make m [] in
  Array.iteri (fun i j -> members.(j) <- i :: members.(j)) server;
  let value = Array.init m (fun j -> server_value ~plcs ~capacity:inst.capacity members.(j)) in
  let total () = Aa_numerics.Util.kahan_sum value in
  let initial = total () in
  let moves = ref 0 and swaps = ref 0 and rounds = ref 0 in
  let improved = ref true in
  while !improved && !rounds < max_rounds do
    incr rounds;
    improved := false;
    (* best single-thread move *)
    let apply_best_move () =
      let best = ref None in
      for i = 0 to n - 1 do
        let j1 = server.(i) in
        let without = List.filter (fun k -> k <> i) members.(j1) in
        let v1_without = server_value ~plcs ~capacity:inst.capacity without in
        for j2 = 0 to m - 1 do
          if j2 <> j1 then begin
            let v2_with = server_value ~plcs ~capacity:inst.capacity (i :: members.(j2)) in
            let delta = v1_without +. v2_with -. value.(j1) -. value.(j2) in
            match !best with
            | Some (d, _, _, _, _) when d >= delta -> ()
            | _ ->
                if delta > 1e-9 *. Float.max 1.0 (total ()) then
                  best := Some (delta, i, j2, v1_without, v2_with)
          end
        done
      done;
      match !best with
      | None -> false
      | Some (_, i, j2, v1_without, v2_with) ->
          let j1 = server.(i) in
          members.(j1) <- List.filter (fun k -> k <> i) members.(j1);
          members.(j2) <- i :: members.(j2);
          server.(i) <- j2;
          value.(j1) <- v1_without;
          value.(j2) <- v2_with;
          incr moves;
          true
    in
    let apply_best_swap () =
      if not enable_swaps then false
      else begin
        let best = ref None in
        for i1 = 0 to n - 1 do
          for i2 = i1 + 1 to n - 1 do
            let j1 = server.(i1) and j2 = server.(i2) in
            if j1 <> j2 then begin
              let m1 = i2 :: List.filter (fun k -> k <> i1) members.(j1) in
              let m2 = i1 :: List.filter (fun k -> k <> i2) members.(j2) in
              let v1 = server_value ~plcs ~capacity:inst.capacity m1 in
              let v2 = server_value ~plcs ~capacity:inst.capacity m2 in
              let delta = v1 +. v2 -. value.(j1) -. value.(j2) in
              match !best with
              | Some (d, _, _, _, _) when d >= delta -> ()
              | _ ->
                  if delta > 1e-9 *. Float.max 1.0 (total ()) then
                    best := Some (delta, i1, i2, v1, v2)
            end
          done
        done;
        match !best with
        | None -> false
        | Some (_, i1, i2, v1, v2) ->
            let j1 = server.(i1) and j2 = server.(i2) in
            members.(j1) <- i2 :: List.filter (fun k -> k <> i1) members.(j1);
            members.(j2) <- i1 :: List.filter (fun k -> k <> i2) members.(j2);
            server.(i1) <- j2;
            server.(i2) <- j1;
            value.(j1) <- v1;
            value.(j2) <- v2;
            incr swaps;
            true
      end
    in
    if apply_best_move () then improved := true
    else if apply_best_swap () then improved := true
  done;
  (* materialize allocations per server *)
  let alloc = Array.make n 0.0 in
  for j = 0 to m - 1 do
    match members.(j) with
    | [] -> ()
    | ms ->
        let ms = Array.of_list ms in
        let fs = Array.map (fun i -> plcs.(i)) ms in
        let r = Plc_greedy.allocate ~scratch ~exhaust:false ~budget:inst.capacity fs in
        Array.iteri (fun pos i -> alloc.(i) <- r.alloc.(pos)) ms
  done;
  let result = Assignment.make ~server ~alloc in
  ( result,
    { rounds = !rounds; moves = !moves; swaps = !swaps; initial; final = total () } )
