open Aa_numerics
open Aa_utility
open Aa_alloc

type resident = {
  thread : int;
  mutable plc : Plc.t;
  mutable alloc : float;
  mutable acc : float; (* scratch for what-if fills; meaningless between calls *)
}

(* Per-server merged piece order, struct-of-arrays: the first [len]
   entries of the parallel [ss] (slope) / [ww] (width) / [ow] (owner)
   arrays are the residents' strictly-positive-slope linear pieces,
   sorted by (slope desc, admission id desc). Because resident lists are
   newest-first (admission id descending), this key is exactly the
   (slope desc, thread-array-index asc) pop order of the
   [Plc_greedy.allocate] k-way merge over those residents — so a linear
   walk of these arrays replays the from-scratch water-fill bit for bit.
   The flat layout keeps splices at memmove speed: inserting a thread's
   pieces shifts blocks with [Array.blit] instead of moving boxed
   records one by one.

   Only a prefix of the canonical order is stored: pieces past the
   water line — where the cumulative width already covers the server
   capacity — can never be consumed by a fill, so splices truncate the
   dead tail and the arrays stay O(consumed pieces) instead of O(all
   resident pieces). [complete] records whether anything was truncated;
   a removal that drags the stored width below the capacity (plus a
   relative slack that dominates float accumulation error) then forces
   a rebuild from the resident PLCs. Truncation never changes a fill:
   the stored prefix always carries at least the capacity in width, so
   the water-fill exhausts its budget strictly inside it. *)
type order = {
  mutable ss : float array;
  mutable ww : float array;
  mutable ow : resident array;
  mutable len : int;
  mutable complete : bool;
}

type policy = Full | Incremental | Auto of { frac : float }

type t = {
  m : int;
  c : float;
  policy : policy;
  mutable n : int; (* admitted threads *)
  residents : resident list array; (* per server, newest first *)
  counts : int array; (* per server, [List.length residents.(j)] *)
  orders : order array; (* per server merged piece order (incremental policies) *)
  values : float array; (* current optimal value of each server *)
  utilities : Utility.t Dynvec.t;
  servers_of : int Dynvec.t; (* admission order -> server *)
  departed : bool Dynvec.t;
  byid : resident Dynvec.t; (* admission order -> resident record, O(1) lookups *)
  scratch : Plc_greedy.Scratch.t; (* recycled allocator state (Full policy) *)
  mutable drift : float; (* published certified bound on F-hat - U *)
  mutable drift_trig : float; (* resolve-trigger accumulator; replay-deterministic *)
  mutable splices : int;
  mutable resolves : int;
}

let create ?(policy = Incremental) ~servers ~capacity () =
  if servers < 1 then invalid_arg "Online.create: need at least one server";
  if not (capacity > 0.0) then invalid_arg "Online.create: capacity must be positive";
  (match policy with
  | Auto { frac } ->
      if not (frac >= 0.0 && frac <= 1.0) then
        invalid_arg "Online.create: Auto fraction must be in [0, 1]"
  | Full | Incremental -> ());
  {
    m = servers;
    c = capacity;
    policy;
    n = 0;
    residents = Array.make servers [];
    counts = Array.make servers 0;
    orders =
      Array.init servers (fun _ ->
          { ss = [||]; ww = [||]; ow = [||]; len = 0; complete = true });
    values = Array.make servers 0.0;
    utilities = Dynvec.create ();
    servers_of = Dynvec.create ();
    departed = Dynvec.create ();
    byid = Dynvec.create ();
    scratch = Plc_greedy.Scratch.create ();
    drift = 0.0;
    drift_trig = 0.0;
    splices = 0;
    resolves = 0;
  }

let servers t = t.m
let capacity t = t.c
let n_admitted t = t.n
let policy t = t.policy
let drift_bound t = t.drift
let splices t = t.splices
let resolves t = t.resolves

let is_active t i = i >= 0 && i < t.n && not (Dynvec.get t.departed i)

let n_active t =
  let k = ref 0 in
  Dynvec.iter (fun d -> if not d then incr k) t.departed;
  !k

(* --- merged piece order maintenance -------------------------------- *)

let ensure_room o extra filler =
  let need = o.len + extra in
  if need > Array.length o.ss then begin
    let ncap = Int.max need (Int.max 8 (2 * Array.length o.ss)) in
    let nss = Array.make ncap 0.0 in
    let nww = Array.make ncap 0.0 in
    let now_ = Array.make ncap filler in
    Array.blit o.ss 0 nss 0 o.len;
    Array.blit o.ww 0 nww 0 o.len;
    Array.blit o.ow 0 now_ 0 o.len;
    o.ss <- nss;
    o.ww <- nww;
    o.ow <- now_
  end

(* Truncation slack: the stored prefix keeps width >= cap * (1 + 2e-9).
   The 2e-9 margin is orders of magnitude above the discrepancy between
   the truncation's prefix sum and fill's sequential
   remaining-subtraction, so a fill can never run off the end of a
   truncated order. *)
let keep_factor = 1.000000002

(* Merge the strictly-positive-slope pieces of [r.plc] into [o], keyed
   (slope desc, admission id desc). The pieces arrive slope-descending,
   so their insertion points are found right to left by binary search
   and the blocks between them shift with one [Array.blit] each:
   O(np log len) compares plus memmove traffic, instead of a
   compare-and-move per element. The dead tail past the water line is
   then truncated, keeping the order O(consumed pieces). *)
let splice ~cap o r =
  let xs = Plc.Flat.breakpoints r.plc in
  let ss = Plc.Flat.slopes r.plc in
  let np = Plc.positive_pieces r.plc in
  if np > 0 then begin
    ensure_room o np r;
    (* elements of the sorted prefix strictly before a (slope, id) key *)
    let stays_before i s =
      o.ss.(i) > s || (Float.compare o.ss.(i) s = 0 && o.ow.(i).thread > r.thread)
    in
    let src_end = ref (o.len - 1) in
    let dst = ref (o.len + np - 1) in
    for j = np - 1 downto 0 do
      let s = ss.(j) in
      (* smallest index in [0, src_end] whose element sorts after the key *)
      let lo = ref 0 and hi = ref (!src_end + 1) in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if stays_before mid s then lo := mid + 1 else hi := mid
      done;
      let cnt = !src_end - !lo + 1 in
      if cnt > 0 then begin
        let d = !dst - cnt + 1 in
        Array.blit o.ss !lo o.ss d cnt;
        Array.blit o.ww !lo o.ww d cnt;
        Array.blit o.ow !lo o.ow d cnt;
        dst := !dst - cnt
      end;
      o.ss.(!dst) <- s;
      o.ww.(!dst) <- xs.(j + 1) -. xs.(j);
      o.ow.(!dst) <- r;
      decr dst;
      src_end := !lo - 1
    done;
    o.len <- o.len + np;
    (* truncate past the water line: a piece whose preceding width
       already covers the slacked capacity can never be filled *)
    let keep = cap *. keep_factor in
    let cum = ref 0.0 and k = ref 0 in
    while !k < o.len && !cum < keep do
      cum := !cum +. o.ww.(!k);
      incr k
    done;
    if !k < o.len then begin
      o.len <- !k;
      o.complete <- false
    end
  end

(* Drop [r]'s pieces from [o], preserving the order of the rest. Only
   sound on a [complete] order: removing width from a truncated one can
   pull once-dead pieces back above the water line, and later splices
   rely on dropped pieces staying dead — truncated orders rebuild on
   removal instead. *)
let unsplice o r =
  let k = ref 0 in
  for i = 0 to o.len - 1 do
    if o.ow.(i) != r then begin
      if !k < i then begin
        o.ss.(!k) <- o.ss.(i);
        o.ww.(!k) <- o.ww.(i);
        o.ow.(!k) <- o.ow.(i)
      end;
      incr k
    end
  done;
  o.len <- !k

(* Utility of server [j]'s committed allocations, with the exact Kahan
   recurrence [Util.sum_by] applies in [Plc_greedy.allocate] — same terms,
   same order (the resident list is the from-scratch thread array). *)
let value_of rs =
  let sum = ref 0.0 and comp = ref 0.0 in
  List.iter
    (fun r ->
      let y = Plc.eval r.plc r.alloc -. !comp in
      let s = !sum +. y in
      comp := s -. !sum -. y;
      sum := s)
    rs;
  !sum

(* Water-fill server [j] from its merged piece order. Bit-identical to
   [Plc_greedy.allocate ~exhaust:false] over the same residents: the same
   takes, in the same order, accumulated with the same float operations. *)
let fill t j =
  let o = t.orders.(j) in
  let rs = t.residents.(j) in
  List.iter (fun r -> r.alloc <- 0.0) rs;
  let remaining = ref t.c in
  let i = ref 0 in
  while !remaining > 0.0 && !i < o.len do
    let take = Float.min o.ww.(!i) !remaining in
    let r = o.ow.(!i) in
    r.alloc <- r.alloc +. take;
    remaining := !remaining -. take;
    incr i
  done;
  t.values.(j) <- value_of rs

(* What-if value of admitting PLC [p] (with the next admission id, i.e. the
   largest) on server [j], via a two-stream merge walk over the committed
   piece order and the newcomer's positive pieces — no committed state is
   touched and no allocator call is made. The newcomer wins slope ties
   (largest id = lowest thread-array index in the from-scratch merge). *)
let what_if t j ~xs ~ss ~np p =
  let o = t.orders.(j) in
  let rs = t.residents.(j) in
  List.iter (fun r -> r.acc <- 0.0) rs;
  let nalloc = ref 0.0 in
  let remaining = ref t.c in
  let i = ref 0 and k = ref 0 in
  while !remaining > 0.0 && (!i < o.len || !k < np) do
    let newcomer_first = !k < np && (!i >= o.len || ss.(!k) >= o.ss.(!i)) in
    if newcomer_first then begin
      let take = Float.min (xs.(!k + 1) -. xs.(!k)) !remaining in
      nalloc := !nalloc +. take;
      remaining := !remaining -. take;
      incr k
    end
    else begin
      let take = Float.min o.ww.(!i) !remaining in
      let r = o.ow.(!i) in
      r.acc <- r.acc +. take;
      remaining := !remaining -. take;
      incr i
    end
  done;
  let sum = ref 0.0 and comp = ref 0.0 in
  let add v =
    let y = v -. !comp in
    let s = !sum +. y in
    comp := s -. !sum -. y;
    sum := s
  in
  add (Plc.eval p !nalloc);
  List.iter (fun r -> add (Plc.eval r.plc r.acc)) rs;
  !sum

(* --- committed-state mutations -------------------------------------- *)

(* Recreate server [j]'s order from its residents' PLCs. The result is
   the minimal canonical prefix carrying the slacked capacity,
   whichever history led here. *)
let rebuild t j =
  let o = t.orders.(j) in
  o.len <- 0;
  o.complete <- true;
  List.iter (fun r -> splice ~cap:t.c o r) t.residents.(j)

(* Optimal division of server j's capacity among the given residents via a
   from-scratch allocator run (Full policy); commits allocations and value. *)
let commit t j residents =
  match residents with
  | [] ->
      t.residents.(j) <- [];
      t.values.(j) <- 0.0
  | rs ->
      let plcs = Array.of_list (List.map (fun r -> r.plc) rs) in
      let res = Plc_greedy.allocate ~scratch:t.scratch ~exhaust:false ~budget:t.c plcs in
      List.iteri (fun k r -> r.alloc <- res.alloc.(k)) rs;
      t.residents.(j) <- rs;
      t.values.(j) <- res.utility

(* Register a new thread on server [j] with PLC form [p]: splice its pieces
   in (or re-divide from scratch under Full) and record the admission-order
   bookkeeping. *)
let enroll t j u p =
  let r = { thread = t.n; plc = p; alloc = 0.0; acc = 0.0 } in
  Dynvec.push t.utilities u;
  Dynvec.push t.servers_of j;
  Dynvec.push t.departed false;
  Dynvec.push t.byid r;
  t.n <- t.n + 1;
  t.counts.(j) <- t.counts.(j) + 1;
  match t.policy with
  | Full -> commit t j (r :: t.residents.(j))
  | Incremental | Auto _ ->
      t.residents.(j) <- r :: t.residents.(j);
      splice ~cap:t.c t.orders.(j) r;
      fill t j;
      t.splices <- t.splices + 1

(* Each mutation accrues a certified upper bound on how much further the
   online solution may have fallen behind the pooled bound F-hat (Lemma
   V.2): admitting/updating a thread raises F-hat by at most the new
   curve's peak while realizing [delta] online; a departure lowers the
   online value by [delta] while F-hat cannot increase. Clamping each
   increment at 0 only loosens (never unsounds) the bound. *)
let accrue_drift t d =
  let d = Float.max 0.0 d in
  t.drift <- t.drift +. d;
  t.drift_trig <- t.drift_trig +. d

let total_utility t = Util.kahan_sum t.values

let check_id t name i =
  if i < 0 || i >= t.n then invalid_arg (name ^ ": unknown thread")

let server_of t i =
  check_id t "Online.server_of" i;
  Dynvec.get t.servers_of i

let thread_utility t i =
  check_id t "Online.thread_utility" i;
  Dynvec.get t.utilities i

let alloc_of t i =
  check_id t "Online.alloc_of" i;
  if Dynvec.get t.departed i then 0.0 else (Dynvec.get t.byid i).alloc

let active_ids t =
  let ids = ref [] in
  for i = t.n - 1 downto 0 do
    if not (Dynvec.get t.departed i) then ids := i :: !ids
  done;
  Array.of_list !ids

let active_instance t =
  let ids = active_ids t in
  if Array.length ids = 0 then invalid_arg "Online.active_instance: no active threads";
  Instance.create ~servers:t.m ~capacity:t.c (Array.map (Dynvec.get t.utilities) ids)

let resolve t =
  t.resolves <- t.resolves + 1;
  let ids = active_ids t in
  for j = 0 to t.m - 1 do
    t.residents.(j) <- [];
    t.counts.(j) <- 0;
    t.orders.(j).len <- 0;
    t.orders.(j).complete <- true;
    t.values.(j) <- 0.0
  done;
  if Array.length ids = 0 then begin
    t.drift <- 0.0;
    t.drift_trig <- 0.0
  end
  else begin
    let inst = active_instance t in
    let x = Algo2.solve inst in
    (* [ids] ascends, so prepending rebuilds the newest-first invariant *)
    Array.iteri
      (fun k i ->
        let r = Dynvec.get t.byid i in
        let j = x.Assignment.server.(k) in
        Dynvec.set t.servers_of i j;
        t.residents.(j) <- r :: t.residents.(j);
        t.counts.(j) <- t.counts.(j) + 1)
      ids;
    (match t.policy with
    | Full -> Array.iteri (fun j rs -> commit t j rs) t.residents
    | Incremental | Auto _ ->
        for j = 0 to t.m - 1 do
          rebuild t j;
          fill t j
        done);
    let fhat = (Superopt.compute inst).Superopt.utility in
    let d = Float.max 0.0 (fhat -. total_utility t) in
    t.drift <- d;
    t.drift_trig <- d
  end

let note_bound t ~upper =
  t.drift <- Float.min t.drift (Float.max 0.0 (upper -. total_utility t))

(* Auto trigger: re-solve once the certified online value has decayed below
   [frac] of what the bound says might be attainable. Driven by the pure
   accumulator [drift_trig] (never tightened by out-of-band REBALANCE
   certificates), so journal replay reproduces re-solve points exactly. *)
let maybe_resolve t =
  match t.policy with
  | Auto { frac } ->
      if t.drift_trig > 0.0 then begin
        let u = total_utility t in
        if u < frac *. (u +. t.drift_trig) then resolve t
      end
  | Full | Incremental -> ()

let check_cap name t u =
  if not (Util.approx_equal ~eps:1e-9 (Utility.cap u) t.c) then
    invalid_arg (name ^ ": utility domain cap must equal the server capacity")

let admit ?samples t u =
  check_cap "Online.admit" t u;
  let p = Utility.to_plc ?samples u in
  let xs = Plc.Flat.breakpoints p in
  let ss = Plc.Flat.slopes p in
  let np = Plc.positive_pieces p in
  (* marginal gain of placing the newcomer on each server *)
  let best = ref (-1) in
  let best_gain = ref Float.neg_infinity in
  for j = 0 to t.m - 1 do
    let v =
      match t.policy with
      | Full ->
          let plcs = Array.of_list (p :: List.map (fun r -> r.plc) t.residents.(j)) in
          (Plc_greedy.allocate ~scratch:t.scratch ~exhaust:false ~budget:t.c plcs).utility
      | Incremental | Auto _ -> what_if t j ~xs ~ss ~np p
    in
    let gain = v -. t.values.(j) in
    let emptier =
      match !best with -1 -> true | b -> t.counts.(j) < t.counts.(b)
    in
    if gain > !best_gain +. 1e-12 then begin
      best := j;
      best_gain := gain
    end
    else if Util.approx_equal ~eps:1e-12 gain !best_gain && emptier then
      (* Tie: prefer the emptier server but keep the incumbent gain as the
         tie anchor — updating it here would let the 1e-12 window creep
         across servers whose end-to-end gains differ by far more. *)
      best := j
  done;
  let j = !best in
  let id = t.n in
  let before = t.values.(j) in
  enroll t j u p;
  accrue_drift t (Plc.peak p -. (t.values.(j) -. before));
  maybe_resolve t;
  Dynvec.get t.servers_of id

let admit_to ?samples t ~server u =
  if server < 0 || server >= t.m then invalid_arg "Online.admit_to: server out of range";
  check_cap "Online.admit_to" t u;
  let p = Utility.to_plc ?samples u in
  let id = t.n in
  let before = t.values.(server) in
  enroll t server u p;
  accrue_drift t (Plc.peak p -. (t.values.(server) -. before));
  maybe_resolve t;
  id

let depart t i =
  if not (is_active t i) then invalid_arg "Online.depart: unknown or departed thread";
  let j = Dynvec.get t.servers_of i in
  Dynvec.set t.departed i true;
  t.counts.(j) <- t.counts.(j) - 1;
  let before = t.values.(j) in
  (match t.policy with
  | Full -> commit t j (List.filter (fun r -> r.thread <> i) t.residents.(j))
  | Incremental | Auto _ ->
      let r = Dynvec.get t.byid i in
      t.residents.(j) <- List.filter (fun r' -> r'.thread <> i) t.residents.(j);
      let o = t.orders.(j) in
      if o.complete then unsplice o r else rebuild t j;
      fill t j);
  accrue_drift t (before -. t.values.(j));
  maybe_resolve t

let update_utility ?samples t i u =
  if not (is_active t i) then
    invalid_arg "Online.update_utility: unknown or departed thread";
  check_cap "Online.update_utility" t u;
  let j = Dynvec.get t.servers_of i in
  Dynvec.set t.utilities i u;
  let p = Utility.to_plc ?samples u in
  let r = Dynvec.get t.byid i in
  r.plc <- p;
  let before = t.values.(j) in
  (match t.policy with
  | Full -> commit t j t.residents.(j)
  | Incremental | Auto _ ->
      let o = t.orders.(j) in
      if o.complete then begin
        unsplice o r;
        splice ~cap:t.c o r
      end
      else rebuild t j;
      fill t j;
      t.splices <- t.splices + 1);
  accrue_drift t (Plc.peak p -. (t.values.(j) -. before));
  maybe_resolve t

let assignment t =
  if t.n = 0 then invalid_arg "Online.assignment: no threads admitted";
  let server = Array.init t.n (Dynvec.get t.servers_of) in
  let alloc =
    Array.init t.n (fun i ->
        if Dynvec.get t.departed i then 0.0 else (Dynvec.get t.byid i).alloc)
  in
  Assignment.make ~server ~alloc

let instance t =
  if t.n = 0 then invalid_arg "Online.instance: no threads admitted";
  Instance.create ~servers:t.m ~capacity:t.c (Array.init t.n (Dynvec.get t.utilities))

let active_assignment t =
  let ids = active_ids t in
  if Array.length ids = 0 then invalid_arg "Online.active_assignment: no active threads";
  Assignment.make
    ~server:(Array.map (Dynvec.get t.servers_of) ids)
    ~alloc:(Array.map (alloc_of t) ids)

let solve_sequence ?samples ?policy ~servers ~capacity us =
  let t = create ?policy ~servers ~capacity () in
  Array.iter (fun u -> ignore (admit ?samples t u)) us;
  assignment t
