open Aa_numerics
open Aa_utility
open Aa_alloc

type resident = { thread : int; mutable plc : Plc.t; mutable alloc : float }

type t = {
  m : int;
  c : float;
  mutable n : int; (* admitted threads *)
  residents : resident list array; (* per server, newest first *)
  values : float array; (* current optimal value of each server *)
  utilities : Utility.t Dynvec.t;
  servers_of : int Dynvec.t; (* admission order -> server *)
  departed : bool Dynvec.t;
  scratch : Plc_greedy.Scratch.t; (* recycled allocator state *)
}

let create ~servers ~capacity =
  if servers < 1 then invalid_arg "Online.create: need at least one server";
  if not (capacity > 0.0) then invalid_arg "Online.create: capacity must be positive";
  {
    m = servers;
    c = capacity;
    n = 0;
    residents = Array.make servers [];
    values = Array.make servers 0.0;
    utilities = Dynvec.create ();
    servers_of = Dynvec.create ();
    departed = Dynvec.create ();
    scratch = Plc_greedy.Scratch.create ();
  }

let servers t = t.m
let capacity t = t.c
let n_admitted t = t.n

let is_active t i = i >= 0 && i < t.n && not (Dynvec.get t.departed i)

let n_active t =
  let k = ref 0 in
  Dynvec.iter (fun d -> if not d then incr k) t.departed;
  !k

(* Optimal division of server j's capacity among the given residents;
   commits the allocations and the server value. *)
let commit t j residents =
  match residents with
  | [] ->
      t.residents.(j) <- [];
      t.values.(j) <- 0.0
  | rs ->
      let plcs = Array.of_list (List.map (fun r -> r.plc) rs) in
      let res = Plc_greedy.allocate ~scratch:t.scratch ~exhaust:false ~budget:t.c plcs in
      List.iteri (fun k r -> r.alloc <- res.alloc.(k)) rs;
      t.residents.(j) <- rs;
      t.values.(j) <- res.utility

(* Register a new thread on server [j] with PLC form [p]: re-divide the
   server and record the admission-order bookkeeping. *)
let enroll t j u p =
  let resident = { thread = t.n; plc = p; alloc = 0.0 } in
  commit t j (resident :: t.residents.(j));
  Dynvec.push t.utilities u;
  Dynvec.push t.servers_of j;
  Dynvec.push t.departed false;
  t.n <- t.n + 1

let admit ?samples t u =
  if not (Util.approx_equal ~eps:1e-9 (Utility.cap u) t.c) then
    invalid_arg "Online.admit: utility domain cap must equal the server capacity";
  let p = Utility.to_plc ?samples u in
  (* marginal gain of placing the newcomer on each server *)
  let best = ref (-1) in
  let best_gain = ref Float.neg_infinity in
  for j = 0 to t.m - 1 do
    let plcs = Array.of_list (p :: List.map (fun r -> r.plc) t.residents.(j)) in
    let v = (Plc_greedy.allocate ~scratch:t.scratch ~exhaust:false ~budget:t.c plcs).utility in
    let gain = v -. t.values.(j) in
    let emptier =
      match !best with
      | -1 -> true
      | b -> List.length t.residents.(j) < List.length t.residents.(b)
    in
    if gain > !best_gain +. 1e-12 || (Util.approx_equal ~eps:1e-12 gain !best_gain && emptier)
    then begin
      best := j;
      best_gain := gain
    end
  done;
  let j = !best in
  enroll t j u p;
  j

let admit_to ?samples t ~server u =
  if server < 0 || server >= t.m then invalid_arg "Online.admit_to: server out of range";
  if not (Util.approx_equal ~eps:1e-9 (Utility.cap u) t.c) then
    invalid_arg "Online.admit_to: utility domain cap must equal the server capacity";
  enroll t server u (Utility.to_plc ?samples u);
  t.n - 1

let depart t i =
  if not (is_active t i) then invalid_arg "Online.depart: unknown or departed thread";
  let j = Dynvec.get t.servers_of i in
  Dynvec.set t.departed i true;
  commit t j (List.filter (fun r -> r.thread <> i) t.residents.(j))

let update_utility ?samples t i u =
  if not (is_active t i) then invalid_arg "Online.update_utility: unknown or departed thread";
  if not (Util.approx_equal ~eps:1e-9 (Utility.cap u) t.c) then
    invalid_arg "Online.update_utility: utility domain cap must equal the server capacity";
  let j = Dynvec.get t.servers_of i in
  Dynvec.set t.utilities i u;
  List.iter
    (fun r -> if r.thread = i then r.plc <- Utility.to_plc ?samples u)
    t.residents.(j);
  commit t j t.residents.(j)

let assignment t =
  if t.n = 0 then invalid_arg "Online.assignment: no threads admitted";
  let server = Array.init t.n (Dynvec.get t.servers_of) in
  let alloc = Array.make t.n 0.0 in
  Array.iteri
    (fun j _ -> List.iter (fun r -> alloc.(r.thread) <- r.alloc) t.residents.(j))
    t.residents;
  Assignment.make ~server ~alloc

let instance t =
  if t.n = 0 then invalid_arg "Online.instance: no threads admitted";
  Instance.create ~servers:t.m ~capacity:t.c (Array.init t.n (Dynvec.get t.utilities))

let check_id t name i =
  if i < 0 || i >= t.n then invalid_arg (name ^ ": unknown thread")

let server_of t i =
  check_id t "Online.server_of" i;
  Dynvec.get t.servers_of i

let thread_utility t i =
  check_id t "Online.thread_utility" i;
  Dynvec.get t.utilities i

let alloc_of t i =
  check_id t "Online.alloc_of" i;
  if Dynvec.get t.departed i then 0.0
  else
    let j = Dynvec.get t.servers_of i in
    List.fold_left (fun acc r -> if r.thread = i then r.alloc else acc) 0.0 t.residents.(j)

let active_ids t =
  let ids = ref [] in
  for i = t.n - 1 downto 0 do
    if not (Dynvec.get t.departed i) then ids := i :: !ids
  done;
  Array.of_list !ids

let active_instance t =
  let ids = active_ids t in
  if Array.length ids = 0 then invalid_arg "Online.active_instance: no active threads";
  Instance.create ~servers:t.m ~capacity:t.c (Array.map (Dynvec.get t.utilities) ids)

let active_assignment t =
  let ids = active_ids t in
  if Array.length ids = 0 then invalid_arg "Online.active_assignment: no active threads";
  Assignment.make
    ~server:(Array.map (Dynvec.get t.servers_of) ids)
    ~alloc:(Array.map (alloc_of t) ids)

let total_utility t = Util.kahan_sum t.values

let solve_sequence ?samples ~servers ~capacity us =
  let t = create ~servers ~capacity in
  Array.iter (fun u -> ignore (admit ?samples t u)) us;
  assignment t
