open Aa_numerics
open Aa_utility
open Aa_alloc

type t = { capacities : float array; utilities : Utility.t array }

let create ~capacities utilities =
  if Array.length capacities = 0 then invalid_arg "Hetero.create: need at least one server";
  Array.iter
    (fun c -> if not (c > 0.0) then invalid_arg "Hetero.create: capacities must be positive")
    capacities;
  if Array.length utilities = 0 then invalid_arg "Hetero.create: no threads";
  let cmax = Array.fold_left Float.max capacities.(0) capacities in
  Array.iteri
    (fun i f ->
      if not (Util.approx_equal ~eps:1e-9 (Utility.cap f) cmax) then
        invalid_arg
          (Printf.sprintf "Hetero.create: thread %d has domain cap %g, expected %g" i
             (Utility.cap f) cmax))
    utilities;
  { capacities; utilities }

let n_threads t = Array.length t.utilities
let n_servers t = Array.length t.capacities
let total_capacity t = Util.kahan_sum t.capacities

let to_homogeneous t =
  let c0 = t.capacities.(0) in
  if Array.for_all (fun c -> c = c0) t.capacities then
    Some (Instance.create ~servers:(n_servers t) ~capacity:c0 t.utilities)
  else None

type superopt = { chat : float array; utility : float }

let plc ?samples t = Array.map (Utility.to_plc ?samples) t.utilities

let superopt ?samples t =
  let r = Plc_greedy.allocate ~exhaust:true ~budget:(total_capacity t) (plc ?samples t) in
  { chat = r.alloc; utility = r.utility }

let solve ?samples t =
  let n = n_threads t in
  let m = n_servers t in
  let plcs = plc ?samples t in
  let so = Plc_greedy.allocate ~exhaust:true ~budget:(total_capacity t) plcs in
  let cmax = Array.fold_left Float.max t.capacities.(0) t.capacities in
  let peak = Array.mapi (fun i chat -> Plc.eval plcs.(i) (Util.clamp ~lo:0.0 ~hi:cmax chat)) so.alloc in
  let slope =
    Array.mapi
      (fun i chat ->
        if chat > 0.0 then peak.(i) /. chat
        else if peak.(i) > 0.0 then Float.infinity
        else 0.0)
      so.alloc
  in
  (* Algorithm 2's order: peak-descending, tail (beyond m) re-sorted by
     ramp slope. *)
  let idx = Array.init n Fun.id in
  let by_peak a b = match compare peak.(b) peak.(a) with 0 -> compare a b | c -> c in
  Array.sort by_peak idx;
  if n > m then begin
    let tail = Array.sub idx m (n - m) in
    let by_slope a b = match compare slope.(b) slope.(a) with 0 -> compare a b | c -> c in
    Array.sort by_slope tail;
    Array.blit tail 0 idx m (n - m)
  end;
  let heap = Heap.Indexed.create (Array.copy t.capacities) in
  let server = Array.make n (-1) in
  let alloc = Array.make n 0.0 in
  Array.iter
    (fun i ->
      let j = Heap.Indexed.max_element heap in
      let available = Heap.Indexed.priority heap j in
      let c = Float.min so.alloc.(i) available in
      server.(i) <- j;
      alloc.(i) <- c;
      Heap.Indexed.update heap j (available -. c))
    idx;
  Assignment.make ~server ~alloc

let check ?(eps = 1e-9) t (a : Assignment.t) =
  let n = n_threads t in
  if Assignment.n_threads a <> n then Error "thread count mismatch"
  else if Array.exists (fun j -> j < 0 || j >= n_servers t) a.server then
    Error "server index out of range"
  else if Array.exists (fun c -> c < 0.0 || Float.is_nan c) a.alloc then
    Error "negative or NaN allocation"
  else begin
    let load = Array.make (n_servers t) 0.0 in
    Array.iteri (fun i j -> load.(j) <- load.(j) +. a.alloc.(i)) a.server;
    let bad = ref None in
    Array.iteri
      (fun j l ->
        let slack = eps *. t.capacities.(j) *. float_of_int n in
        if l > t.capacities.(j) +. slack && !bad = None then bad := Some (j, l))
      load;
    match !bad with
    | Some (j, l) ->
        Error (Printf.sprintf "server %d overloaded: %g > %g" j l t.capacities.(j))
    | None -> Ok ()
  end

let utility_of t (a : Assignment.t) =
  Util.sum_by (fun i -> Utility.eval t.utilities.(i) a.alloc.(i)) (Array.init (n_threads t) Fun.id)

let uu t =
  let n = n_threads t in
  let m = n_servers t in
  let total = total_capacity t in
  (* weighted round robin: server j receives a share of threads
     proportional to its capacity, via largest-remainder assignment in
     arrival order *)
  let credit = Array.make m 0.0 in
  let server = Array.make n 0 in
  for i = 0 to n - 1 do
    for j = 0 to m - 1 do
      credit.(j) <- credit.(j) +. (t.capacities.(j) /. total)
    done;
    let best = Util.argmax Fun.id credit in
    server.(i) <- best;
    credit.(best) <- credit.(best) -. 1.0
  done;
  let counts = Array.make m 0 in
  Array.iter (fun j -> counts.(j) <- counts.(j) + 1) server;
  let alloc =
    Array.map (fun j -> t.capacities.(j) /. float_of_int (max 1 counts.(j))) server
  in
  Assignment.make ~server ~alloc

let exact ?samples t =
  let n = n_threads t in
  if n > Exact.max_threads then
    invalid_arg
      (Printf.sprintf "Hetero.exact: %d threads exceeds the limit of %d" n Exact.max_threads);
  let m = n_servers t in
  let plcs = plc ?samples t in
  let full = (1 lsl n) - 1 in
  let members mask =
    let out = ref [] in
    for i = n - 1 downto 0 do
      if mask land (1 lsl i) <> 0 then out := i :: !out
    done;
    Array.of_list !out
  in
  (* per-server pooled values, memoized *)
  let value = Array.init m (fun _ -> Array.make (full + 1) Float.nan) in
  let valloc = Array.init m (fun _ -> Array.make (full + 1) [||]) in
  let scratch = Plc_greedy.Scratch.create () in
  let value_of j mask =
    if Float.is_nan value.(j).(mask) then begin
      let ids = members mask in
      let fs = Array.map (fun i -> plcs.(i)) ids in
      let r = Plc_greedy.allocate ~scratch ~exhaust:false ~budget:t.capacities.(j) fs in
      value.(j).(mask) <- r.utility;
      valloc.(j).(mask) <- r.alloc
    end;
    value.(j).(mask)
  in
  (* dp.(j).(mask): best utility assigning exactly the threads in mask to
     servers 0..j-1 *)
  let dp = Array.make_matrix (m + 1) (full + 1) Float.neg_infinity in
  let choice = Array.make_matrix (m + 1) (full + 1) 0 in
  dp.(0).(0) <- 0.0;
  for j = 1 to m do
    for mask = 0 to full do
      (* enumerate submasks s of mask assigned to server j-1 *)
      let s = ref mask in
      let continue = ref true in
      while !continue do
        if dp.(j - 1).(mask lxor !s) > Float.neg_infinity then begin
          let cand = dp.(j - 1).(mask lxor !s) +. value_of (j - 1) !s in
          if cand > dp.(j).(mask) then begin
            dp.(j).(mask) <- cand;
            choice.(j).(mask) <- !s
          end
        end;
        if !s = 0 then continue := false else s := (!s - 1) land mask
      done
    done
  done;
  let server = Array.make n 0 in
  let alloc = Array.make n 0.0 in
  let mask = ref full in
  for j = m downto 1 do
    let s = choice.(j).(!mask) in
    ignore (value_of (j - 1) s);
    Array.iteri
      (fun pos i ->
        server.(i) <- j - 1;
        alloc.(i) <- valloc.(j - 1).(s).(pos))
      (members s);
    mask := !mask lxor s
  done;
  (Assignment.make ~server ~alloc, dp.(m).(full))
