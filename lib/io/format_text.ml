open Aa_utility
open Aa_core

let ( let* ) = Result.bind

let tokens line =
  (* strip comments, split on whitespace *)
  let line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun s -> s <> "")

let float_of tok =
  try Ok (float_of_string tok) with Failure _ -> Error (tok ^ ": not a number")

let int_of tok =
  try Ok (int_of_string tok) with Failure _ -> Error (tok ^ ": not an integer")

let rec floats_of = function
  | [] -> Ok []
  | tok :: rest ->
      let* x = float_of tok in
      let* xs = floats_of rest in
      Ok (x :: xs)

let rec pairs_of = function
  | [] -> Ok []
  | [ _ ] -> Error "odd number of breakpoint values"
  | x :: y :: rest ->
      let* rest = pairs_of rest in
      Ok ((x, y) :: rest)

(* The single-utility grammar of `thread …` lines, shared with the
   service wire protocol (ADMIT/UPDATE carry one spec each). *)
let parse_thread ~cap args =
  try
    match args with
    | "plc" :: nums ->
        let* values = floats_of nums in
        let* pts = pairs_of values in
        Ok (Utility.of_plc (Plc.create (Array.of_list pts)))
    | [ "power"; c; b ] ->
        let* c = float_of c in
        let* b = float_of b in
        Ok (Utility.Shapes.power ~cap ~coeff:c ~beta:b)
    | [ "log"; c; r ] ->
        let* c = float_of c in
        let* r = float_of r in
        Ok (Utility.Shapes.log_utility ~cap ~coeff:c ~rate:r)
    | [ "saturating"; l; h ] ->
        let* l = float_of l in
        let* h = float_of h in
        Ok (Utility.Shapes.saturating ~cap ~limit:l ~halfway:h)
    | [ "expsat"; l; r ] ->
        let* l = float_of l in
        let* r = float_of r in
        Ok (Utility.Shapes.exp_saturating ~cap ~limit:l ~rate:r)
    | [ "capped"; s; k ] ->
        let* s = float_of s in
        let* k = float_of k in
        Ok (Utility.Shapes.capped_linear ~cap ~slope:s ~knee:k)
    | [ "linear"; s ] ->
        let* s = float_of s in
        Ok (Utility.Shapes.linear ~cap ~slope:s)
    | kind :: _ -> Error ("unknown thread kind: " ^ kind)
    | [] -> Error "empty thread declaration"
  with Invalid_argument msg -> Error msg

let parse_thread_spec ~cap spec = parse_thread ~cap (tokens spec)

let parse_instance text =
  let lines = String.split_on_char '\n' text in
  let servers = ref None in
  let capacity = ref None in
  let threads = ref [] in
  let err lineno msg = Error (Printf.sprintf "line %d: %s" lineno msg) in
  let rec go lineno = function
    | [] -> Ok ()
    | line :: rest -> (
        match tokens line with
        | [] -> go (lineno + 1) rest
        | [ "servers"; n ] -> (
            match int_of n with
            | Ok n ->
                servers := Some n;
                go (lineno + 1) rest
            | Error e -> err lineno e)
        | [ "capacity"; c ] -> (
            match float_of c with
            | Ok c ->
                capacity := Some c;
                go (lineno + 1) rest
            | Error e -> err lineno e)
        | "thread" :: args -> (
            match !capacity with
            | None -> err lineno "capacity must be declared before threads"
            | Some cap -> (
                match parse_thread ~cap args with
                | Ok u ->
                    threads := u :: !threads;
                    go (lineno + 1) rest
                | Error e -> err lineno e))
        | tok :: _ -> err lineno ("unknown directive: " ^ tok))
  in
  let* () = go 1 lines in
  match (!servers, !capacity, List.rev !threads) with
  | None, _, _ -> Error "missing 'servers' declaration"
  | _, None, _ -> Error "missing 'capacity' declaration"
  | _, _, [] -> Error "no threads declared"
  | Some m, Some c, ts -> (
      try Ok (Instance.create ~servers:m ~capacity:c (Array.of_list ts))
      with Invalid_argument msg -> Error msg)

let plc_spec p =
  let buf = Buffer.create 64 in
  Buffer.add_string buf "plc";
  Array.iter
    (fun (x, y) -> Buffer.add_string buf (Printf.sprintf " %.17g %.17g" x y))
    (Plc.points p);
  Buffer.contents buf

(* Shapes-constructed utilities carry their parameters; anything else
   falls back to PLC breakpoints. *)
let print_thread_spec u =
  match u with
  | Utility.Plc p -> plc_spec p
  | Utility.Smooth s -> (
      match s.spec with
      | Some (Utility.Spec_power { coeff; beta }) ->
          Printf.sprintf "power %.17g %.17g" coeff beta
      | Some (Utility.Spec_log { coeff; rate }) ->
          Printf.sprintf "log %.17g %.17g" coeff rate
      | Some (Utility.Spec_saturating { limit; halfway }) ->
          Printf.sprintf "saturating %.17g %.17g" limit halfway
      | Some (Utility.Spec_exp_saturating { limit; rate }) ->
          Printf.sprintf "expsat %.17g %.17g" limit rate
      | None -> plc_spec (Utility.to_plc u))

let print_instance (inst : Instance.t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "servers %d\n" inst.servers);
  Buffer.add_string buf (Printf.sprintf "capacity %.17g\n" inst.capacity);
  Array.iter
    (fun u ->
      Buffer.add_string buf "thread ";
      Buffer.add_string buf (print_thread_spec u);
      Buffer.add_char buf '\n')
    inst.utilities;
  Buffer.contents buf

let parse_assignment text =
  let lines = String.split_on_char '\n' text in
  let rows = ref [] in
  let err lineno msg = Error (Printf.sprintf "line %d: %s" lineno msg) in
  let rec go lineno = function
    | [] -> Ok ()
    | line :: rest -> (
        match tokens line with
        | [] -> go (lineno + 1) rest
        | [ "assign"; i; j; c ] -> (
            match (int_of i, int_of j, float_of c) with
            | Ok i, Ok j, Ok c ->
                rows := (i, j, c) :: !rows;
                go (lineno + 1) rest
            | Error e, _, _ | _, Error e, _ | _, _, Error e -> err lineno e)
        | tok :: _ -> err lineno ("unknown directive: " ^ tok))
  in
  let* () = go 1 lines in
  let rows = List.sort compare (List.rev !rows) in
  let n = List.length rows in
  if n = 0 then Error "no assignments"
  else begin
    let server = Array.make n 0 and alloc = Array.make n 0.0 in
    let ok = ref (Ok ()) in
    List.iteri
      (fun expect (i, j, c) ->
        if i <> expect && !ok = Ok () then
          ok := Error (Printf.sprintf "thread ids must be 0..%d without gaps" (n - 1))
        else begin
          server.(expect) <- j;
          alloc.(expect) <- c
        end)
      rows;
    let* () = !ok in
    Ok (Assignment.make ~server ~alloc)
  end

let print_assignment (a : Assignment.t) =
  let buf = Buffer.create 256 in
  Array.iteri
    (fun i j -> Buffer.add_string buf (Printf.sprintf "assign %d %d %.17g\n" i j a.alloc.(i)))
    a.server;
  Buffer.contents buf

let load_instance path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> parse_instance text
  | exception Sys_error e -> Error e

let save path contents =
  match Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc contents) with
  | () -> Ok ()
  | exception Sys_error e -> Error e
