(** Plain-text serialization of AA instances and solutions.

    Instance format (line-oriented; [#] starts a comment):
    {v
    servers 4
    capacity 8.0
    thread plc 0 0 2.5 1 8 1.5      # breakpoints: x y pairs
    thread power 4.0 0.5            # coeff beta
    thread log 3.0 1.0              # coeff rate
    thread saturating 8.0 2.0       # limit halfway
    thread expsat 8.0 0.5           # limit rate
    thread capped 1.5 6.0           # slope knee
    thread linear 0.8               # slope
    v}

    Solution format: one [assign <thread> <server> <alloc>] line per
    thread.

    Smooth utilities print as their closed-form spec, so instances
    written by {!print_instance} round-trip exactly. *)

val parse_instance : string -> (Aa_core.Instance.t, string) result
(** Parse the text of an instance file. Errors carry a line number. *)

val parse_thread_spec :
  cap:float -> string -> (Aa_utility.Utility.t, string) result
(** Parse one utility spec — the part of a [thread] line after the
    keyword, e.g. ["power 4.0 0.5"] or ["plc 0 0 2.5 1 8 1.5"]. [cap]
    is the domain cap used for the smooth shapes; a [plc] spec carries
    its own cap in the breakpoints (callers enforcing a fixed capacity
    must check {!Aa_utility.Utility.cap} on the result). Whitespace and
    [#] comments are tolerated, as in instance files. This is the
    grammar the aa_serve wire protocol embeds in ADMIT / UPDATE. *)

val print_thread_spec : Aa_utility.Utility.t -> string
(** Render one utility as a spec string (no [thread] keyword, no
    newline) that {!parse_thread_spec} reparses exactly: smooth shapes
    built by {!Aa_utility.Utility.Shapes} print their constructor with
    [%.17g] parameters, everything else prints PLC breakpoints. *)

val print_instance : Aa_core.Instance.t -> string
(** Render an instance in the format above. PLC utilities print their
    breakpoints; smooth shapes print their constructor when the utility
    was built by {!Aa_utility.Utility.Shapes} (recognized by name),
    otherwise they are converted to PLC breakpoints. *)

val parse_assignment : string -> (Aa_core.Assignment.t, string) result
val print_assignment : Aa_core.Assignment.t -> string

val load_instance : string -> (Aa_core.Instance.t, string) result
(** Read and parse a file. *)

val save : string -> string -> (unit, string) result
(** [save path contents] writes a file, reporting system errors. *)
