(** One entry per figure of the paper's evaluation (Section VII), per the
    experiment index in DESIGN.md. All use [m = 8] servers and
    [C = 1000], as in the paper. *)

type spec = {
  id : string;  (** DESIGN.md id: "fig1a" … "fig3c" *)
  paper : string;  (** the paper's figure label *)
  description : string;
  run : ?jobs:int -> trials:int -> seed:int -> unit -> Run.series;
      (** [jobs] sizes the domain pool, as in {!Run.run_series}; the
          series is bit-identical for every value. *)
}

val servers : int
(** 8, the paper's fixed server count. *)

val capacity : float
(** 1000, the paper's per-server resource. *)

val fig1a : spec
(** Uniform distribution, sweep β = n/m in 1..15. *)

val fig1b : spec
(** Normal(1,1) distribution, sweep β. *)

val fig2a : spec
(** Power law with α = 2, sweep β. *)

val fig2b : spec
(** Power law with β = 5, sweep α in 1.5..4. *)

val fig3a : spec
(** Discrete(γ = 0.85, θ = 5), sweep β. *)

val fig3b : spec
(** Discrete(θ = 5), β = 5, sweep γ in 0.05..0.95. *)

val fig3c : spec
(** Discrete(γ = 0.85), β = 5, sweep θ in 1..20. *)

val all : spec list
(** The seven figures, in paper order. *)

val find : string -> spec option
(** Look up by id, case-insensitive. *)
