(** One entry per figure of the paper's evaluation (Section VII), per the
    experiment index in DESIGN.md. All use [m = 8] servers and
    [C = 1000], as in the paper. *)

type spec = {
  id : string;  (** DESIGN.md id: "fig1a" … "fig3c" *)
  paper : string;  (** the paper's figure label *)
  description : string;
  run : ?jobs:int -> trials:int -> seed:int -> unit -> Run.series;
      (** [jobs] sizes the domain pool, as in {!Run.run_series}; the
          series is bit-identical for every value. *)
}

val all : spec list
(** The seven figures, in paper order: fig1a (uniform, sweep β = n/m in
    1..15), fig1b (normal(1,1), sweep β), fig2a (power law α = 2, sweep
    β), fig2b (power law β = 5, sweep α in 1.5..4), fig3a (discrete
    γ = 0.85 θ = 5, sweep β), fig3b (discrete θ = 5 β = 5, sweep γ in
    0.05..0.95), fig3c (discrete γ = 0.85 β = 5, sweep θ in 1..20).
    Individual figures are reached through this list or {!find} — the
    per-figure values are no longer exported. *)

val find : string -> spec option
(** Look up by id, case-insensitive. *)
