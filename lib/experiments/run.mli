(** Experiment driver reproducing the paper's Section VII methodology.

    Every trial draws a fresh random instance, solves it with Algorithm 2
    and with the four heuristics, computes the super-optimal utility F̂,
    and records the per-trial utility ratios Algorithm 2 / other. Points
    on a sweep report the mean ratio over all trials (the quantity the
    paper plots), its 95% confidence half-width, and guarantee
    diagnostics.

    Sweep points and per-point trials fan out together across a domain
    pool ({!Aa_parallel.Pool}). Determinism is a contract, not an
    accident: every trial's RNG stream is derived by sequential
    splitting keyed by its (point, trial) position, trials are grouped
    into fixed-size chunks whose boundaries depend only on the trial
    count, and per-chunk accumulators ({!Aa_numerics.Stats.Online})
    are merged in chunk order — so the resulting series is bit-identical
    for every [jobs] value, including the sequential [jobs = 1]. *)

type ratios = {
  vs_so : float;  (** Algo2 / F̂ — at most 1, paper reports >= 0.99 *)
  vs_uu : float;
  vs_ur : float;
  vs_ru : float;
  vs_rr : float;
}

type point = {
  x : float;  (** sweep coordinate (β, α, γ or θ) *)
  mean : ratios;
  ci95 : ratios;
  worst_vs_so : float;  (** minimum Algo2/F̂ ratio seen in any trial *)
  algo1_vs_so : float;
      (** mean Algorithm 1 / F̂ ratio (the paper evaluates only Algorithm
          2; we track Algorithm 1 to confirm they coincide in quality) *)
  guarantee_violations : int;
      (** trials where Algo2 fell below α·F̂ — must be 0 *)
  trials : int;
}

type series = {
  id : string;  (** experiment id from DESIGN.md, e.g. "fig1a" *)
  title : string;
  xlabel : string;
  points : point list;
}

val run_series :
  ?trials:int ->
  ?seed:int ->
  ?run_algo1:bool ->
  ?jobs:int ->
  id:string ->
  title:string ->
  xlabel:string ->
  xs:float list ->
  (x:float -> Aa_numerics.Rng.t -> Aa_core.Instance.t) ->
  series
(** [run_series ~xs build] sweeps [xs], running [trials] (default 1000,
    the paper's count) per point. [run_algo1] (default true) also scores
    Algorithm 1 against F̂ (skipped automatically above 400 threads where
    its O(mn²) scan dominates). [jobs] sizes the domain pool (default
    {!Aa_parallel.Pool.default_domains}: [AA_JOBS] or the runtime's
    recommended domain count); any value yields bit-identical points.
    [build] must be a pure function of [x] and the supplied rng — it
    runs concurrently on pool domains. *)

val pp_series : Format.formatter -> series -> unit
(** Table rendering: one row per sweep point, one column per
    comparator — the data behind the corresponding paper figure. *)
