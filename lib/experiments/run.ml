open Aa_numerics
open Aa_core
open Aa_parallel

type ratios = { vs_so : float; vs_uu : float; vs_ur : float; vs_ru : float; vs_rr : float }

type point = {
  x : float;
  mean : ratios;
  ci95 : ratios;
  worst_vs_so : float;
  algo1_vs_so : float;
  guarantee_violations : int;
  trials : int;
}

type series = { id : string; title : string; xlabel : string; points : point list }

(* One trial: returns the ratios plus Algorithm 1's own ratio. Algorithm
   1/2 outputs get the per-server re-allocation polish (see Refine);
   heuristics keep their own allocation rule. *)
let trial ~rng ~run_algo1 ?scratch (inst : Instance.t) =
  let lin = Linearized.make inst in
  let fhat = lin.superopt.utility in
  let score a = Assignment.utility inst (Refine.per_server inst a) in
  let a2 = score (Algo2.solve ~linearized:lin ?scratch inst) in
  let a1 = if run_algo1 then score (Algo1.solve ~linearized:lin inst) else Float.nan in
  let value algo = Assignment.utility inst (Solver.solve ~rng ~linearized:lin algo inst) in
  let uu = value Solver.Uu in
  let ur = value Solver.Ur in
  let ru = value Solver.Ru in
  let rr = value Solver.Rr in
  let safe_div a b = if b > 0.0 then a /. b else 1.0 in
  ( {
      vs_so = safe_div a2 fhat;
      vs_uu = safe_div a2 uu;
      vs_ur = safe_div a2 ur;
      vs_ru = safe_div a2 ru;
      vs_rr = safe_div a2 rr;
    },
    safe_div a1 fhat )

(* Per-chunk partial aggregates; merged per point in chunk order. *)
type acc = {
  so : Stats.Online.t;
  uu : Stats.Online.t;
  ur : Stats.Online.t;
  ru : Stats.Online.t;
  rr : Stats.Online.t;
  a1 : Stats.Online.t;
  mutable violations : int;
}

let acc_create () =
  {
    so = Stats.Online.create ();
    uu = Stats.Online.create ();
    ur = Stats.Online.create ();
    ru = Stats.Online.create ();
    rr = Stats.Online.create ();
    a1 = Stats.Online.create ();
    violations = 0;
  }

let acc_merge a b =
  {
    so = Stats.Online.merge a.so b.so;
    uu = Stats.Online.merge a.uu b.uu;
    ur = Stats.Online.merge a.ur b.ur;
    ru = Stats.Online.merge a.ru b.ru;
    rr = Stats.Online.merge a.rr b.rr;
    a1 = Stats.Online.merge a.a1 b.a1;
    violations = a.violations + b.violations;
  }

(* Trials per work chunk. Fixed (never derived from the domain count),
   because chunk boundaries are part of the deterministic-replay
   contract: partial accumulators are merged in chunk order, so the
   floating-point result depends on (trials, chunk_trials) only. *)
let chunk_trials = 64

let run_series ?(trials = 1000) ?(seed = 42) ?(run_algo1 = true) ?jobs ~id ~title ~xlabel
    ~xs build =
  let xs = Array.of_list xs in
  let npoints = Array.length xs in
  (* Every trial's RNG stream comes from sequential splitting keyed by
     (point, trial) position — the exact splitting sequence of the old
     sequential driver — so the instance drawn for trial t of point p is
     the same for any job count, including 1. *)
  let master = Rng.create ~seed () in
  let streams = Array.make npoints [||] in
  for p = 0 to npoints - 1 do
    let point_rng = Rng.split master in
    let per_trial = Array.make trials point_rng in
    for t = 0 to trials - 1 do
      per_trial.(t) <- Rng.split point_rng
    done;
    streams.(p) <- per_trial
  done;
  let chunks_per_point = (trials + chunk_trials - 1) / chunk_trials in
  let nchunks = npoints * chunks_per_point in
  (* Both layers fan out at once: the flat chunk index enumerates every
     (point, trial-range) pair, so a slow point's tail overlaps the next
     point's head instead of serializing behind it. *)
  let run_chunk ci =
    let p = ci / chunks_per_point in
    let lo = ci mod chunks_per_point * chunk_trials in
    let hi = min (lo + chunk_trials) trials in
    let x = xs.(p) in
    let scratch = Algo2.Scratch.create () in
    let acc = acc_create () in
    for t = lo to hi - 1 do
      let rng = streams.(p).(t) in
      let inst = build ~x rng in
      let run_algo1 = run_algo1 && Instance.n_threads inst <= 400 in
      let r, a1 = trial ~rng ~run_algo1 ~scratch inst in
      Stats.Online.add acc.so r.vs_so;
      Stats.Online.add acc.uu r.vs_uu;
      Stats.Online.add acc.ur r.vs_ur;
      Stats.Online.add acc.ru r.vs_ru;
      Stats.Online.add acc.rr r.vs_rr;
      if not (Float.is_nan a1) then Stats.Online.add acc.a1 a1;
      if r.vs_so < Bounds.alpha -. 1e-9 then acc.violations <- acc.violations + 1
    done;
    acc
  in
  let partials =
    Pool.with_pool ?domains:jobs (fun pool -> Pool.map_chunked pool nchunks run_chunk)
  in
  let points = ref [] in
  for p = npoints - 1 downto 0 do
    let acc = ref (acc_create ()) in
    for c = 0 to chunks_per_point - 1 do
      acc := acc_merge !acc partials.((p * chunks_per_point) + c)
    done;
    let acc = !acc in
    let mean =
      {
        vs_so = Stats.Online.mean acc.so;
        vs_uu = Stats.Online.mean acc.uu;
        vs_ur = Stats.Online.mean acc.ur;
        vs_ru = Stats.Online.mean acc.ru;
        vs_rr = Stats.Online.mean acc.rr;
      }
    in
    let half o = (Stats.Online.summary o).Stats.ci95 in
    let ci95 =
      {
        vs_so = half acc.so;
        vs_uu = half acc.uu;
        vs_ur = half acc.ur;
        vs_ru = half acc.ru;
        vs_rr = half acc.rr;
      }
    in
    points :=
      {
        x = xs.(p);
        mean;
        ci95;
        worst_vs_so = Stats.Online.min acc.so;
        algo1_vs_so =
          (if Stats.Online.count acc.a1 > 0 then Stats.Online.mean acc.a1 else Float.nan);
        guarantee_violations = acc.violations;
        trials;
      }
      :: !points
  done;
  { id; title; xlabel; points = !points }

let pp_series ppf s =
  Format.fprintf ppf "@[<v># %s — %s@," s.id s.title;
  Format.fprintf ppf "# ratios are Algo2 utility / comparator utility (mean over trials)@,";
  Format.fprintf ppf "%-8s %10s %10s %10s %10s %10s %12s %10s %6s@," s.xlabel "vs_SO"
    "vs_UU" "vs_UR" "vs_RU" "vs_RR" "worst_vs_SO" "Algo1_SO" "viol";
  List.iter
    (fun p ->
      Format.fprintf ppf "%-8g %10.4f %10.4f %10.4f %10.4f %10.4f %12.4f %10.4f %6d@,"
        p.x p.mean.vs_so p.mean.vs_uu p.mean.vs_ur p.mean.vs_ru p.mean.vs_rr
        p.worst_vs_so p.algo1_vs_so p.guarantee_violations)
    s.points;
  Format.fprintf ppf "@]"
