open Aa_workload

type spec = {
  id : string;
  paper : string;
  description : string;
  run : ?jobs:int -> trials:int -> seed:int -> unit -> Run.series;
}

let servers = 8
let capacity = 1000.0

let betas = List.init 15 (fun i -> float_of_int (i + 1))

let build_beta dist ~x rng =
  let threads = int_of_float (Float.round (x *. float_of_int servers)) in
  Gen.instance rng ~servers ~capacity ~threads dist

let beta_series dist ~id ~paper ~description =
  {
    id;
    paper;
    description;
    run =
      (fun ?jobs ~trials ~seed () ->
        Run.run_series ~trials ~seed ?jobs ~id ~title:description ~xlabel:"beta" ~xs:betas
          (build_beta dist));
  }

let fig1a =
  beta_series Gen.Uniform ~id:"fig1a" ~paper:"Fig. 1(a)"
    ~description:"uniform distribution, ratio vs beta"

let fig1b =
  beta_series
    (Gen.Normal { mu = 1.0; sigma = 1.0 })
    ~id:"fig1b" ~paper:"Fig. 1(b)" ~description:"normal(1,1) distribution, ratio vs beta"

let fig2a =
  beta_series
    (Gen.Power_law { alpha = 2.0 })
    ~id:"fig2a" ~paper:"Fig. 2(a)" ~description:"power law (alpha=2), ratio vs beta"

let fig2b =
  {
    id = "fig2b";
    paper = "Fig. 2(b)";
    description = "power law at beta=5, ratio vs alpha";
    run =
      (fun ?jobs ~trials ~seed () ->
        let xs = [ 1.5; 2.0; 2.5; 3.0; 3.5; 4.0 ] in
        Run.run_series ~trials ~seed ?jobs ~id:"fig2b" ~title:"power law at beta=5, ratio vs alpha"
          ~xlabel:"alpha" ~xs
          (fun ~x rng ->
            Gen.instance rng ~servers ~capacity ~threads:(5 * servers)
              (Gen.Power_law { alpha = x })));
  }

let fig3a =
  beta_series
    (Gen.Discrete { gamma = 0.85; theta = 5.0 })
    ~id:"fig3a" ~paper:"Fig. 3(a)"
    ~description:"discrete (gamma=0.85, theta=5), ratio vs beta"

let fig3b =
  {
    id = "fig3b";
    paper = "Fig. 3(b)";
    description = "discrete (theta=5) at beta=5, ratio vs gamma";
    run =
      (fun ?jobs ~trials ~seed () ->
        let xs = List.init 10 (fun i -> 0.05 +. (0.1 *. float_of_int i)) in
        Run.run_series ~trials ~seed ?jobs ~id:"fig3b"
          ~title:"discrete (theta=5) at beta=5, ratio vs gamma" ~xlabel:"gamma" ~xs
          (fun ~x rng ->
            Gen.instance rng ~servers ~capacity ~threads:(5 * servers)
              (Gen.Discrete { gamma = x; theta = 5.0 })));
  }

let fig3c =
  {
    id = "fig3c";
    paper = "Fig. 3 (theta sweep)";
    description = "discrete (gamma=0.85) at beta=5, ratio vs theta";
    run =
      (fun ?jobs ~trials ~seed () ->
        let xs = [ 1.0; 2.0; 4.0; 6.0; 8.0; 10.0; 15.0; 20.0 ] in
        Run.run_series ~trials ~seed ?jobs ~id:"fig3c"
          ~title:"discrete (gamma=0.85) at beta=5, ratio vs theta" ~xlabel:"theta" ~xs
          (fun ~x rng ->
            Gen.instance rng ~servers ~capacity ~threads:(5 * servers)
              (Gen.Discrete { gamma = 0.85; theta = x })));
  }

let all = [ fig1a; fig1b; fig2a; fig2b; fig3a; fig3b; fig3c ]

let find id =
  let id = String.lowercase_ascii id in
  List.find_opt (fun s -> String.lowercase_ascii s.id = id) all
