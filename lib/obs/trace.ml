(* Nestable timed spans over per-domain ring buffers.

   Each domain that records spans owns a private ring (created lazily
   through domain-local storage and registered under a mutex once), so
   the hot path — begin/end of a span — is two array writes and a clock
   sample with no cross-domain synchronization at all; "lock-free-ish"
   means the only lock is at buffer creation. When a ring wraps, the
   oldest events are overwritten (a long-running daemon keeps its most
   recent history) and the overwrite count is reported.

   Export sanitizes each buffer into a well-formed span stream: an end
   whose begin was overwritten is dropped, and spans still open at dump
   time get a synthesized end at the buffer's last timestamp — so the
   Chrome trace_event output always balances B/E per thread, which is
   what keeps Perfetto and chrome://tracing happy even for a dump taken
   mid-request. Exports and [clear] walk other domains' buffers and are
   meant for quiescence (or a single-domain daemon dumping itself);
   they never crash on a torn read, but a span recorded concurrently
   with the dump may be missing from it. *)

let default_capacity = 1 lsl 15

(* Ring size from the environment (AA_TRACE_RING): rounded up to a
   power of two (slot indexing is a mask), clamped to [16, 2^26].
   Unparseable or non-positive values fall back to the default — a bad
   env var must never take the daemon down. *)
let ring_capacity_of = function
  | None -> default_capacity
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | None -> default_capacity
      | Some n when n <= 0 -> default_capacity
      | Some n ->
          let n = min n (1 lsl 26) in
          let rec pow2 p = if p >= n then p else pow2 (p * 2) in
          pow2 16)

let capacity = ring_capacity_of (Sys.getenv_opt "AA_TRACE_RING")

type buf = {
  dom : int;
  names : string array;
  ts : int array;
  is_begin : bool array;
  rids : int array;  (* request ctx per slot; -1 = untagged *)
  shards : int array;
  conns : int array;
  mutable head : int;  (* total events ever written; slot = head mod capacity *)
  mutable depth : int;  (* spans currently open on this domain *)
  mutable cur_rid : int;  (* ctx applied to subsequent records *)
  mutable cur_shard : int;
  mutable cur_conn : int;
}

let reg_lock = Mutex.create ()
let buffers : buf list ref = ref []

let make_buf () =
  let b =
    {
      dom = (Domain.self () :> int);
      names = Array.make capacity "";
      ts = Array.make capacity 0;
      is_begin = Array.make capacity false;
      rids = Array.make capacity (-1);
      shards = Array.make capacity (-1);
      conns = Array.make capacity (-1);
      head = 0;
      depth = 0;
      cur_rid = -1;
      cur_shard = -1;
      cur_conn = -1;
    }
  in
  Mutex.lock reg_lock;
  buffers := b :: !buffers;
  Mutex.unlock reg_lock;
  b

let key = Domain.DLS.new_key make_buf

let set_ctx ~rid ~shard ~conn =
  let b = Domain.DLS.get key in
  b.cur_rid <- rid;
  b.cur_shard <- shard;
  b.cur_conn <- conn

let clear_ctx () = set_ctx ~rid:(-1) ~shard:(-1) ~conn:(-1)

let record name is_begin =
  let b = Domain.DLS.get key in
  let i = b.head land (capacity - 1) in
  b.names.(i) <- name;
  b.is_begin.(i) <- is_begin;
  b.ts.(i) <- Clock.now_ns ();
  b.rids.(i) <- b.cur_rid;
  b.shards.(i) <- b.cur_shard;
  b.conns.(i) <- b.cur_conn;
  b.head <- b.head + 1;
  b

let begin_span name =
  if Control.on () then begin
    let b = record name true in
    b.depth <- b.depth + 1
  end

let end_span () =
  if Control.on () then begin
    let b = record "" false in
    if b.depth > 0 then b.depth <- b.depth - 1
  end

let span name f =
  if not (Control.on ()) then f ()
  else begin
    begin_span name;
    match f () with
    | r ->
        end_span ();
        r
    | exception e ->
        end_span ();
        raise e
  end

(* --- export --------------------------------------------------------- *)

type event = {
  domain : int;
  name : string;
  is_begin : bool;
  ts_ns : int;
  rid : int;  (* request ctx at record time; -1 = untagged *)
  shard : int;
  conn : int;
}

let all_buffers () =
  Mutex.lock reg_lock;
  let l = !buffers in
  Mutex.unlock reg_lock;
  List.sort (fun a b -> compare a.dom b.dom) l

(* One buffer's events in chronological order, sanitized to a balanced
   B/E stream (see the header comment). *)
let buffer_events (b : buf) =
  let head = b.head in
  let lo = max 0 (head - capacity) in
  let out = ref [] in
  let stack = ref [] in
  let last_ts = ref 0 in
  for i = lo to head - 1 do
    let s = i land (capacity - 1) in
    let ts = b.ts.(s) in
    if ts > !last_ts then last_ts := ts;
    let ctx = (b.rids.(s), b.shards.(s), b.conns.(s)) in
    if b.is_begin.(s) then begin
      stack := (b.names.(s), ctx) :: !stack;
      let rid, shard, conn = ctx in
      out :=
        { domain = b.dom; name = b.names.(s); is_begin = true; ts_ns = ts; rid; shard; conn }
        :: !out
    end
    else
      match !stack with
      | [] -> () (* orphan end: its begin was overwritten *)
      | (n, (rid, shard, conn)) :: rest ->
          stack := rest;
          out := { domain = b.dom; name = n; is_begin = false; ts_ns = ts; rid; shard; conn } :: !out
  done;
  (* spans still open at dump time: synthesize their ends *)
  List.iter
    (fun (n, (rid, shard, conn)) ->
      out :=
        { domain = b.dom; name = n; is_begin = false; ts_ns = !last_ts; rid; shard; conn } :: !out)
    !stack;
  List.rev !out

let events () = List.concat_map buffer_events (all_buffers ())
let n_events () = List.length (events ())
let recorded () = List.fold_left (fun acc b -> acc + b.head) 0 (all_buffers ())

let overwritten () =
  List.fold_left (fun acc b -> acc + max 0 (b.head - capacity)) 0 (all_buffers ())

(* Silent event loss must be visible: a callback gauge so /metrics
   always carries the current overwrite total without a store on the
   span hot path. Registered here (Trace already depends on Registry),
   sampled at exposition time. *)
let () =
  Registry.gauge_fn
    ~help:"Span ring events overwritten across all per-domain trace buffers"
    "obs.trace.overwritten"
    (fun () -> float_of_int (overwritten ()))

let unbalanced () = List.fold_left (fun acc b -> acc + b.depth) 0 (all_buffers ())

let clear () =
  List.iter
    (fun b ->
      b.head <- 0;
      b.depth <- 0)
    (all_buffers ())

let add_escaped b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 -> Printf.bprintf b "\\u%04x" (Char.code c)
      | c -> Buffer.add_char b c)
    s

(* Chrome trace_event JSON (the "JSON array format"): load the file in
   Perfetto (ui.perfetto.dev) or chrome://tracing. [ts] is microseconds
   with ns precision; each domain renders as one thread (tid). *)
let to_chrome_json ?(compact = false) () =
  let evs = events () in
  let b = Buffer.create 4096 in
  let sep = if compact then "" else "\n" in
  Buffer.add_char b '[';
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b sep;
      Buffer.add_string b "{\"name\":\"";
      add_escaped b e.name;
      Printf.bprintf b "\",\"cat\":\"aa\",\"ph\":\"%s\",\"ts\":%.3f,\"pid\":1,\"tid\":%d"
        (if e.is_begin then "B" else "E")
        (float_of_int e.ts_ns /. 1000.0)
        e.domain;
      if e.rid >= 0 then
        Printf.bprintf b ",\"args\":{\"rid\":%d,\"shard\":%d,\"conn\":%d}" e.rid e.shard e.conn;
      Buffer.add_char b '}')
    evs;
  Buffer.add_string b sep;
  Buffer.add_char b ']';
  Buffer.contents b

(* Aligned text rendering of the same data: one block per domain, spans
   indented by nesting depth, durations from the matching end. *)
let to_text_tree ?(limit = 10_000) () =
  let out = Buffer.create 1024 in
  List.iter
    (fun buf ->
      let evs = buffer_events buf in
      if evs <> [] then begin
        let ov = max 0 (buf.head - capacity) in
        Printf.bprintf out "domain %d: %d event(s)%s\n" buf.dom (List.length evs)
          (if ov > 0 then Printf.sprintf ", %d overwritten" ov else "");
        (* rebuild the nesting: nodes in begin order, duration at end *)
        let module N = struct
          type node = { name : string; t0 : int; mutable t1 : int; depth : int }
        end in
        let nodes = ref [] in
        let stack = ref [] in
        List.iter
          (fun e ->
            if e.is_begin then begin
              let nd =
                { N.name = e.name; t0 = e.ts_ns; t1 = e.ts_ns; depth = List.length !stack }
              in
              nodes := nd :: !nodes;
              stack := nd :: !stack
            end
            else
              match !stack with
              | nd :: rest ->
                  nd.N.t1 <- e.ts_ns;
                  stack := rest
              | [] -> ())
          evs;
        let printed = ref 0 in
        List.iter
          (fun (nd : N.node) ->
            incr printed;
            if !printed <= limit then begin
              let label = String.make (2 + (2 * nd.depth)) ' ' ^ nd.name in
              let pad =
                if String.length label >= 44 then " " else String.make (44 - String.length label) ' '
              in
              Printf.bprintf out "%s%s%12.3f ms\n" label pad
                (float_of_int (nd.t1 - nd.t0) /. 1e6)
            end)
          (List.rev !nodes);
        if !printed > limit then
          Printf.bprintf out "  … %d more span(s) truncated\n" (!printed - limit)
      end)
    (all_buffers ());
  Buffer.contents out
