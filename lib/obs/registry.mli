(** Process-wide registry of named monotonic counters and gauges.

    Handles are obtained once (typically at module initialization) with
    {!counter} / {!gauge}; the same name always yields the same handle.
    Mutation is guarded by {!Control.on}: while observability is off,
    [Counter.incr]/[Gauge.set] are a single branch and allocate nothing.

    {b Determinism contract}: counter probe sites may only add
    quantities that are a pure function of the computation performed
    (bisection iterations, heap sift swaps, threads assigned, chunks in
    a fixed partition). Atomic addition commutes, so counter totals are
    then bit-identical across every [AA_JOBS] value — the property the
    obs test suite pins. Gauges are last-write-wins observations (e.g.
    per-domain pool busy time) and may legitimately vary with the
    schedule; comparisons across job counts must use {!counters} only. *)

module Counter : sig
  type t

  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int
  val name : t -> string
end

module Gauge : sig
  type t

  val set : t -> float -> unit
  val value : t -> float
  val name : t -> string
end

(** Prometheus-style histogram against a fixed, caller-chosen list of
    bucket upper bounds. Where {!Histogram} is a log-bucketed latency
    sketch, [Hist] exposes exact counts per explicit edge — the right
    shape for small-integer distributions such as group-commit batch
    sizes. Like gauges, observations are schedule-dependent and live
    outside the counter determinism contract. *)
module Hist : sig
  type t

  val observe : t -> float -> unit
  val name : t -> string
  val count : t -> int

  type snapshot = { le : (float * int) list; count : int; total : float }
  (** Cumulative count at each edge (in edge order), total observation
      count (the implicit [+Inf] bucket) and sum of observed values. *)

  val snapshot : t -> snapshot
end

val counter : ?help:string -> string -> Counter.t
(** Find or register the counter with this name. Names use dotted
    lower-case paths, e.g. ["algo2.heap_ops"]. [help], when given on the
    first registration, becomes the metric's [# HELP] line in
    {!expose}; later helps for the same name are ignored. *)

val gauge : ?help:string -> string -> Gauge.t

val gauge_fn : ?help:string -> string -> (unit -> float) -> unit
(** Register a callback gauge: the function is sampled each time
    {!gauges} (and hence {!dump} / {!expose}) takes a snapshot, instead
    of storing a value. Re-registering the same name replaces the
    callback. Callback gauges are skipped by {!reset} — they carry no
    state of their own. The callback runs outside the registry lock and
    must not call back into registration. *)

val histogram : ?edges:float array -> ?help:string -> string -> Hist.t
(** Find or register the histogram with this name. [edges] must be
    strictly increasing; the default covers powers of two 1..256. Edges
    passed on a second lookup of the same name are ignored (the first
    registration wins). *)

val counters : unit -> (string * int) list
(** Snapshot of every registered counter, sorted by name. *)

val gauges : unit -> (string * float) list
(** Snapshot of every registered gauge, sorted by name. Callback gauges
    ({!gauge_fn}) are sampled at snapshot time and merged in. *)

val histograms : unit -> (string * Hist.snapshot) list
(** Snapshot of every registered histogram, sorted by name. *)

val dump : unit -> (string * string) list
(** Counters then gauges, each sorted by name, values rendered. *)

val reset : unit -> unit
(** Zero every counter and gauge. Call only at quiescence (no domain
    mid-probe); meant for tests and between bench experiments. *)

val expose : unit -> string
(** Prometheus text exposition: [# TYPE aa_<name> counter] /
    [aa_<name> <value>] lines, names sanitized to [[a-zA-Z0-9_]] with
    an [aa_] prefix. Histograms emit cumulative [_bucket{le="..."}]
    lines plus [_sum] and [_count]. Metrics registered with [?help] get
    a [# HELP] line first, with backslash and newline escaped per the
    text-format rules ([\ ] → [\\ ], LF → [\n]). *)
