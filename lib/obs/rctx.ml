(* Request contexts: the identity a request carries through the stack.

   A context is created once at the edge (listener reader thread, or
   the daemon's stdin loop) and handed down by value — through shard
   routing, engine dispatch, group commit and back to the writer that
   acks the client. While a domain works on behalf of a request it
   scopes itself with [with_current]: the context lands in domain-local
   storage and the Trace ring's per-domain tag, so every span recorded
   in scope carries [(rid, shard, conn)]. Cross-shard barriers share
   ONE context across N worker domains — each worker re-scopes it with
   its own shard id, so the export shows one rid spanning all shards —
   which is why every mutable accumulation below takes [t.lock].

   Rids and everything derived from them are schedule-dependent
   diagnostics: they live on the gauge/log side of the determinism
   contract and must never feed a counter. *)

type t = {
  rid : int;
  conn : int;
  kind : string;
  t0_ns : int;
  lock : Mutex.t;
  mutable shard : int;  (* -1 until routed; stays -1 for barrier ops *)
  mutable phase_ns : (string * int) list;  (* accumulated per phase name *)
  mutable captured : (string * int * int * int) list;  (* name, t0, t1, shard *)
  mutable handled_ns : int;  (* when the engine finished dispatch; 0 = not yet *)
  mutable commit_wait_ns : int;  (* group-commit wait after dispatch *)
  mutable total_ns : int;  (* stamped by finish; 0 until then *)
}

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b
let next_rid = Atomic.make 0

(* Slow capture: threshold in ns, negative = disarmed. *)
let slow_threshold_ns = Atomic.make (-1)
let slow_armed () = Atomic.get slow_threshold_ns >= 0

let set_slow_ms ms =
  Atomic.set slow_threshold_ns
    (if ms < 0.0 then -1 else int_of_float (ms *. 1e6))

let create ~kind ~conn =
  {
    rid = Atomic.fetch_and_add next_rid 1;
    conn;
    kind;
    t0_ns = Clock.now_ns ();
    lock = Mutex.create ();
    shard = -1;
    phase_ns = [];
    captured = [];
    handled_ns = 0;
    commit_wait_ns = 0;
    total_ns = 0;
  }

let set_shard t s = t.shard <- s
let rid t = t.rid
let conn t = t.conn
let kind t = t.kind
let shard t = t.shard
let commit_wait_ns t = t.commit_wait_ns
let total_ns t = if t.total_ns > 0 then t.total_ns else Clock.now_ns () - t.t0_ns

let phases t =
  Mutex.lock t.lock;
  let p = t.phase_ns in
  Mutex.unlock t.lock;
  List.sort (fun (a, _) (b, _) -> String.compare a b) p

let phase_ns t name =
  Mutex.lock t.lock;
  let v = match List.assoc_opt name t.phase_ns with Some v -> v | None -> 0 in
  Mutex.unlock t.lock;
  v

(* --- the current context (domain-local) ----------------------------- *)

type scoped = { ctx : t; eff_shard : int }

let cur_key : scoped option ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref None)
let current () = match !(Domain.DLS.get cur_key) with Some s -> Some s.ctx | None -> None

let with_current ?shard t f =
  let r = Domain.DLS.get cur_key in
  let prev = !r in
  let eff = match shard with Some s -> s | None -> t.shard in
  r := Some { ctx = t; eff_shard = eff };
  Trace.set_ctx ~rid:t.rid ~shard:eff ~conn:t.conn;
  let restore () =
    r := prev;
    match prev with
    | Some p -> Trace.set_ctx ~rid:p.ctx.rid ~shard:p.eff_shard ~conn:p.ctx.conn
    | None -> Trace.clear_ctx ()
  in
  match f () with
  | v ->
      restore ();
      v
  | exception e ->
      restore ();
      raise e

let phase name f =
  match !(Domain.DLS.get cur_key) with
  | None -> Trace.span name f
  | Some { ctx; eff_shard } ->
      let t0 = Clock.now_ns () in
      let fin () =
        let t1 = Clock.now_ns () in
        Mutex.lock ctx.lock;
        let prior = match List.assoc_opt name ctx.phase_ns with Some v -> v | None -> 0 in
        ctx.phase_ns <- (name, prior + (t1 - t0)) :: List.remove_assoc name ctx.phase_ns;
        if slow_armed () then ctx.captured <- (name, t0, t1, eff_shard) :: ctx.captured;
        Mutex.unlock ctx.lock
      in
      Trace.span name (fun () ->
          match f () with
          | v ->
              fin ();
              v
          | exception e ->
              fin ();
              raise e)

let mark_handled t = t.handled_ns <- Clock.now_ns ()

let mark_committed t =
  if t.handled_ns > 0 then t.commit_wait_ns <- Clock.now_ns () - t.handled_ns

(* --- slow keep-list ------------------------------------------------- *)

type slow = {
  s_rid : int;
  s_conn : int;
  s_kind : string;
  s_shard : int;
  s_outcome : string;
  s_total_ns : int;
  s_spans : (string * int * int * int) list;  (* name, t0, t1, shard; chronological *)
}

let slow_lock = Mutex.create ()
let slow_keep : slow Queue.t = Queue.create ()
let slow_max = ref 64

let set_slow_keep n =
  Mutex.lock slow_lock;
  slow_max := max 1 n;
  while Queue.length slow_keep > !slow_max do
    ignore (Queue.pop slow_keep)
  done;
  Mutex.unlock slow_lock

let finish t ~outcome =
  let total = Clock.now_ns () - t.t0_ns in
  t.total_ns <- total;
  if slow_armed () && total >= Atomic.get slow_threshold_ns then begin
    Mutex.lock t.lock;
    let spans = List.rev t.captured in
    Mutex.unlock t.lock;
    let s =
      {
        s_rid = t.rid;
        s_conn = t.conn;
        s_kind = t.kind;
        s_shard = t.shard;
        s_outcome = outcome;
        s_total_ns = total;
        s_spans = spans;
      }
    in
    Mutex.lock slow_lock;
    Queue.push s slow_keep;
    while Queue.length slow_keep > !slow_max do
      ignore (Queue.pop slow_keep)
    done;
    Mutex.unlock slow_lock
  end;
  total

let slow_entries () =
  Mutex.lock slow_lock;
  let l = List.of_seq (Queue.to_seq slow_keep) in
  Mutex.unlock slow_lock;
  List.rev l (* most recent first *)

let slow_count () =
  Mutex.lock slow_lock;
  let n = Queue.length slow_keep in
  Mutex.unlock slow_lock;
  n

let slow_clear () =
  Mutex.lock slow_lock;
  Queue.clear slow_keep;
  Mutex.unlock slow_lock

let add_escaped b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 -> Printf.bprintf b "\\u%04x" (Char.code c)
      | c -> Buffer.add_char b c)
    s

(* One-line JSON array for the SLOW verb: [{rid,kind,conn,shard,outcome,
   total_ns,spans:[{name,t0_ns,dur_ns,shard}]}] — most recent first. *)
let slow_json () =
  let b = Buffer.create 512 in
  Buffer.add_char b '[';
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char b ',';
      Printf.bprintf b "{\"rid\":%d,\"kind\":\"" s.s_rid;
      add_escaped b s.s_kind;
      Printf.bprintf b "\",\"conn\":%d,\"shard\":%d,\"outcome\":\"" s.s_conn s.s_shard;
      add_escaped b s.s_outcome;
      Printf.bprintf b "\",\"total_ns\":%d,\"spans\":[" s.s_total_ns;
      List.iteri
        (fun j (name, t0, t1, shard) ->
          if j > 0 then Buffer.add_char b ',';
          Printf.bprintf b "{\"name\":\"";
          add_escaped b name;
          Printf.bprintf b "\",\"t0_ns\":%d,\"dur_ns\":%d,\"shard\":%d}" t0 (t1 - t0) shard)
        s.s_spans;
      Buffer.add_string b "]}")
    (slow_entries ());
  Buffer.add_char b ']';
  Buffer.contents b

(* Chrome trace_event "complete" (ph:X) objects for the slow keep-list,
   comma-joined WITHOUT brackets — the TRACE exporter splices them into
   its own array so a dump holds both the live ring and the preserved
   slow subtrees. tid = shard the span ran on (-1 → 0). *)
let slow_chrome_events () =
  let b = Buffer.create 512 in
  let first = ref true in
  List.iter
    (fun s ->
      List.iter
        (fun (name, t0, t1, shard) ->
          if not !first then Buffer.add_char b ',';
          first := false;
          Buffer.add_string b "{\"name\":\"";
          add_escaped b name;
          Printf.bprintf b
            "\",\"cat\":\"aa.slow\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":2,\"tid\":%d,\"args\":{\"rid\":%d,\"conn\":%d}}"
            (float_of_int t0 /. 1000.0)
            (float_of_int (t1 - t0) /. 1000.0)
            (max 0 shard) s.s_rid s.s_conn)
        s.s_spans)
    (slow_entries ());
  Buffer.contents b

(* Text rendering for /tracez: one block per slow request, spans
   indented under it with shard tags and millisecond durations. *)
let slow_text () =
  let b = Buffer.create 512 in
  let entries = slow_entries () in
  Printf.bprintf b "slow requests: %d (threshold %s)\n" (List.length entries)
    (let t = Atomic.get slow_threshold_ns in
     if t < 0 then "off" else Printf.sprintf "%.3f ms" (float_of_int t /. 1e6));
  List.iter
    (fun s ->
      Printf.bprintf b "rid %d %s conn=%d shard=%d %s %12.3f ms\n" s.s_rid s.s_kind s.s_conn
        s.s_shard s.s_outcome
        (float_of_int s.s_total_ns /. 1e6);
      List.iter
        (fun (name, t0, t1, shard) ->
          let label = "  " ^ name ^ if shard >= 0 then Printf.sprintf " [shard %d]" shard else "" in
          let pad =
            if String.length label >= 36 then " " else String.make (36 - String.length label) ' '
          in
          Printf.bprintf b "%s%s%12.3f ms\n" label pad (float_of_int (t1 - t0) /. 1e6))
        s.s_spans)
    entries;
  Buffer.contents b
