(** The observability clock — and the only sanctioned wall-clock read in
    the tree (enforced by the [wall-clock] lint rule): deterministic
    replay holds because time flows into spans and reports, never into
    solver results.

    [now_ns] is nondecreasing across all domains (a monotonized
    [Unix.gettimeofday]); backwards wall-clock steps read as zero-length
    intervals. *)

val now_ns : unit -> int
(** Nanoseconds since process start (module initialization),
    nondecreasing across domains. *)

val now_s : unit -> float
(** [now_ns] in seconds — the default latency clock of
    {!Aa_service.Engine}. *)

val wall_s : unit -> float
(** Raw [Unix.gettimeofday]: seconds since the Unix epoch, {e not}
    monotonic. For timestamps meant to be compared across processes
    (e.g. the bench trajectory's [generated_unix]); use {!now_ns} for
    intervals. *)
