(* Named monotonic counters and gauges, registered process-wide.

   Registration (module-initialization time) takes a mutex; the hot
   path — incrementing a counter you already hold — is one atomic load
   of the Control switch and, only when observability is on, one
   fetch-and-add. Counters must stay schedule-independent: probe sites
   only add quantities that are a pure function of the work performed
   (iterations, heap ops, threads assigned), so the totals are
   identical for every AA_JOBS value — atomic addition commutes.
   Gauges carry last-write-wins observations (pool utilization) and
   are allowed to be schedule-dependent; reproducibility checks compare
   counters only. *)

module Counter = struct
  type t = { name : string; v : int Atomic.t }

  let add t n = if Control.on () && n <> 0 then ignore (Atomic.fetch_and_add t.v n)
  let incr t = if Control.on () then ignore (Atomic.fetch_and_add t.v 1)
  let value t = Atomic.get t.v
  let name t = t.name
end

module Gauge = struct
  type t = { name : string; v : float Atomic.t }

  let set t x = if Control.on () then Atomic.set t.v x
  let value t = Atomic.get t.v
  let name t = t.name
end

let lock = Mutex.create ()
let counters_reg : Counter.t list ref = ref []
let gauges_reg : Gauge.t list ref = ref []

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let counter name =
  locked (fun () ->
      match List.find_opt (fun (c : Counter.t) -> String.equal c.name name) !counters_reg with
      | Some c -> c
      | None ->
          let c = { Counter.name; v = Atomic.make 0 } in
          counters_reg := c :: !counters_reg;
          c)

let gauge name =
  locked (fun () ->
      match List.find_opt (fun (g : Gauge.t) -> String.equal g.name name) !gauges_reg with
      | Some g -> g
      | None ->
          let g = { Gauge.name; v = Atomic.make 0.0 } in
          gauges_reg := g :: !gauges_reg;
          g)

let by_name name_of a b = String.compare (name_of a) (name_of b)

let counters () =
  locked (fun () -> !counters_reg)
  |> List.sort (by_name Counter.name)
  |> List.map (fun (c : Counter.t) -> (c.name, Counter.value c))

let gauges () =
  locked (fun () -> !gauges_reg)
  |> List.sort (by_name Gauge.name)
  |> List.map (fun (g : Gauge.t) -> (g.name, Gauge.value g))

let dump () =
  List.map (fun (k, v) -> (k, string_of_int v)) (counters ())
  @ List.map (fun (k, v) -> (k, Printf.sprintf "%.6g" v)) (gauges ())

let reset () =
  locked (fun () ->
      List.iter (fun (c : Counter.t) -> Atomic.set c.v 0) !counters_reg;
      List.iter (fun (g : Gauge.t) -> Atomic.set g.v 0.0) !gauges_reg)

(* Prometheus text exposition: metric names restricted to
   [a-zA-Z0-9_:], so dots and dashes become underscores; every metric
   carries the [aa_] namespace prefix. *)
let sanitize name =
  String.map
    (fun c ->
      if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') then c
      else '_')
    name

let expose () =
  let b = Buffer.create 1024 in
  List.iter
    (fun (name, v) ->
      let n = "aa_" ^ sanitize name in
      Printf.bprintf b "# TYPE %s counter\n%s %d\n" n n v)
    (counters ());
  List.iter
    (fun (name, v) ->
      let n = "aa_" ^ sanitize name in
      Printf.bprintf b "# TYPE %s gauge\n%s %.9g\n" n n v)
    (gauges ());
  Buffer.contents b
