(* Named monotonic counters and gauges, registered process-wide.

   Registration (module-initialization time) takes a mutex; the hot
   path — incrementing a counter you already hold — is one atomic load
   of the Control switch and, only when observability is on, one
   fetch-and-add. Counters must stay schedule-independent: probe sites
   only add quantities that are a pure function of the work performed
   (iterations, heap ops, threads assigned), so the totals are
   identical for every AA_JOBS value — atomic addition commutes.
   Gauges carry last-write-wins observations (pool utilization) and
   are allowed to be schedule-dependent; reproducibility checks compare
   counters only. *)

module Counter = struct
  type t = { name : string; v : int Atomic.t }

  let add t n = if Control.on () && n <> 0 then ignore (Atomic.fetch_and_add t.v n)
  let incr t = if Control.on () then ignore (Atomic.fetch_and_add t.v 1)
  let value t = Atomic.get t.v
  let name t = t.name
end

module Gauge = struct
  type t = { name : string; v : float Atomic.t }

  let set t x = if Control.on () then Atomic.set t.v x
  let value t = Atomic.get t.v
  let name t = t.name
end

(* Prometheus-style histogram: cumulative observation counts against a
   fixed, caller-chosen edge list, plus exact sum and count. Unlike
   {!Histogram} (log-bucketed latencies), edges here are explicit so a
   metric over small integers (group-commit batch sizes) exposes
   meaningful buckets. Observations are schedule-dependent (what lands
   in one batch depends on arrival timing), so like gauges these are
   quarantined from the counter determinism contract. *)
module Hist = struct
  type t = {
    name : string;
    edges : float array; (* strictly increasing upper bounds; +Inf implied *)
    buckets : int array; (* length edges + 1; non-cumulative *)
    lock : Mutex.t;
    mutable n : int;
    mutable sum : float;
  }

  let observe t x =
    if Control.on () then begin
      Mutex.lock t.lock;
      let rec find i =
        if i >= Array.length t.edges then i else if x <= t.edges.(i) then i else find (i + 1)
      in
      let b = find 0 in
      t.buckets.(b) <- t.buckets.(b) + 1;
      t.n <- t.n + 1;
      t.sum <- t.sum +. x;
      Mutex.unlock t.lock
    end

  let name t = t.name

  type snapshot = { le : (float * int) list; (* cumulative, edges order *) count : int; total : float }

  let snapshot t =
    Mutex.lock t.lock;
    let acc = ref 0 in
    let le =
      Array.to_list
        (Array.mapi
           (fun i e ->
             acc := !acc + t.buckets.(i);
             (e, !acc))
           t.edges)
    in
    let s = { le; count = t.n; total = t.sum } in
    Mutex.unlock t.lock;
    s

  let count t =
    Mutex.lock t.lock;
    let n = t.n in
    Mutex.unlock t.lock;
    n
end

let lock = Mutex.create ()
let counters_reg : Counter.t list ref = ref []
let gauges_reg : Gauge.t list ref = ref []
let hists_reg : Hist.t list ref = ref []

(* Callback gauges: sampled at snapshot time instead of stored. Used for
   values another module already tracks (ring overwrite totals) without
   a write on its hot path. Keyed by name; re-registration replaces. *)
let gauge_fns_reg : (string * (unit -> float)) list ref = ref []

(* HELP text per metric name (first registration wins, like edges). *)
let helps : (string, string) Hashtbl.t = Hashtbl.create 16

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let set_help name help =
  match help with
  | None -> ()
  | Some h -> if not (Hashtbl.mem helps name) then Hashtbl.add helps name h

let counter ?help name =
  locked (fun () ->
      set_help name help;
      match List.find_opt (fun (c : Counter.t) -> String.equal c.name name) !counters_reg with
      | Some c -> c
      | None ->
          let c = { Counter.name; v = Atomic.make 0 } in
          counters_reg := c :: !counters_reg;
          c)

let gauge ?help name =
  locked (fun () ->
      set_help name help;
      match List.find_opt (fun (g : Gauge.t) -> String.equal g.name name) !gauges_reg with
      | Some g -> g
      | None ->
          let g = { Gauge.name; v = Atomic.make 0.0 } in
          gauges_reg := g :: !gauges_reg;
          g)

let gauge_fn ?help name f =
  locked (fun () ->
      set_help name help;
      gauge_fns_reg := (name, f) :: List.remove_assoc name !gauge_fns_reg)

let default_edges = [| 1.; 2.; 4.; 8.; 16.; 32.; 64.; 128.; 256. |]

let histogram ?(edges = default_edges) ?help name =
  if Array.length edges = 0 then invalid_arg "Registry.histogram: empty edges";
  Array.iteri
    (fun i e -> if i > 0 && e <= edges.(i - 1) then invalid_arg "Registry.histogram: edges not increasing")
    edges;
  locked (fun () ->
      set_help name help;
      match List.find_opt (fun (h : Hist.t) -> String.equal h.name name) !hists_reg with
      | Some h -> h
      | None ->
          let h =
            {
              Hist.name;
              edges = Array.copy edges;
              buckets = Array.make (Array.length edges + 1) 0;
              lock = Mutex.create ();
              n = 0;
              sum = 0.0;
            }
          in
          hists_reg := h :: !hists_reg;
          h)

let by_name name_of a b = String.compare (name_of a) (name_of b)

let counters () =
  locked (fun () -> !counters_reg)
  |> List.sort (by_name Counter.name)
  |> List.map (fun (c : Counter.t) -> (c.name, Counter.value c))

let gauges () =
  let stored =
    locked (fun () -> !gauges_reg)
    |> List.map (fun (g : Gauge.t) -> (g.name, Gauge.value g))
  in
  (* Sample callbacks outside the registry lock: a callback may itself
     take locks (ring buffers), and must not deadlock registration. *)
  let fns = locked (fun () -> !gauge_fns_reg) in
  let sampled = List.map (fun (name, f) -> (name, f ())) fns in
  List.sort (fun (a, _) (b, _) -> String.compare a b) (stored @ sampled)

let histograms () =
  locked (fun () -> !hists_reg)
  |> List.sort (by_name Hist.name)
  |> List.map (fun (h : Hist.t) -> (h.Hist.name, Hist.snapshot h))

let dump () =
  List.map (fun (k, v) -> (k, string_of_int v)) (counters ())
  @ List.map (fun (k, v) -> (k, Printf.sprintf "%.6g" v)) (gauges ())

let reset () =
  locked (fun () ->
      List.iter (fun (c : Counter.t) -> Atomic.set c.v 0) !counters_reg;
      List.iter (fun (g : Gauge.t) -> Atomic.set g.v 0.0) !gauges_reg;
      List.iter
        (fun (h : Hist.t) ->
          Mutex.lock h.Hist.lock;
          Array.fill h.Hist.buckets 0 (Array.length h.Hist.buckets) 0;
          h.Hist.n <- 0;
          h.Hist.sum <- 0.0;
          Mutex.unlock h.Hist.lock)
        !hists_reg)

(* Prometheus text exposition: metric names restricted to
   [a-zA-Z0-9_:], so dots and dashes become underscores; every metric
   carries the [aa_] namespace prefix. *)
let sanitize name =
  String.map
    (fun c ->
      if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') then c
      else '_')
    name

(* HELP text escaping per the Prometheus text format: backslash first
   (so escaped newlines are not double-escaped), then newline. *)
let escape_help s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let help_line b name n =
  match locked (fun () -> Hashtbl.find_opt helps name) with
  | None -> ()
  | Some h -> Printf.bprintf b "# HELP %s %s\n" n (escape_help h)

let expose () =
  let b = Buffer.create 1024 in
  List.iter
    (fun (name, v) ->
      let n = "aa_" ^ sanitize name in
      help_line b name n;
      Printf.bprintf b "# TYPE %s counter\n%s %d\n" n n v)
    (counters ());
  List.iter
    (fun (name, v) ->
      let n = "aa_" ^ sanitize name in
      help_line b name n;
      Printf.bprintf b "# TYPE %s gauge\n%s %.9g\n" n n v)
    (gauges ());
  List.iter
    (fun (name, (s : Hist.snapshot)) ->
      let n = "aa_" ^ sanitize name in
      help_line b name n;
      Printf.bprintf b "# TYPE %s histogram\n" n;
      List.iter
        (fun (le, c) -> Printf.bprintf b "%s_bucket{le=\"%.9g\"} %d\n" n le c)
        s.Hist.le;
      Printf.bprintf b "%s_bucket{le=\"+Inf\"} %d\n" n s.Hist.count;
      Printf.bprintf b "%s_sum %.9g\n" n s.Hist.total;
      Printf.bprintf b "%s_count %d\n" n s.Hist.count)
    (histograms ());
  Buffer.contents b
