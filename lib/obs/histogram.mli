(** Log-bucketed histogram (seconds), shared by the service latency
    metrics and the observability layer. Everything is O(1) per sample —
    values go into fixed log-scale buckets (20 per decade from 1 ns to
    1000 s), so quantiles carry ~±6% relative bucketing error, plenty
    for an operational view. Fixed buckets make {!merge} exact. *)

type t

val create : unit -> t

val add : t -> float -> unit
(** Record one sample; values at or below 1 ns land in the first
    bucket, values beyond ~1000 s in the last. *)

val count : t -> int

val merge : t -> t -> t
(** Elementwise sum into a fresh histogram. Buckets are fixed and
    identical across instances, so merging per-domain histograms is
    deterministic and loses nothing: quantiles of the merge equal
    quantiles of the combined sample stream. *)

val quantile : t -> float -> float
(** [quantile t q]: the geometric midpoint of the bucket holding the
    [q]-th order statistic. Pinned edge behavior: [0.] when the
    histogram is empty (for any valid [q], including [0.] and [1.]);
    [Invalid_argument] when [q] is outside [[0, 1]] (NaN included). *)
