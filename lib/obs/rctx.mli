(** Request contexts: per-request identity carried through the daemon.

    A context — [(rid, conn, kind)] plus routing and timing state — is
    created once where a request enters the process and handed down by
    value through shard routing, engine dispatch and group commit. A
    domain working on behalf of a request scopes itself with
    {!with_current}: the context lands in domain-local storage and the
    {!Trace} per-domain tag, so every span recorded in scope carries
    [(rid, shard, conn)]. Cross-shard barrier operations share one
    context across N worker domains (each re-scoped with its own shard
    id), which is what makes STATS/SNAPSHOT/REBALANCE export as a
    single rid-linked trace.

    {b Determinism contract}: rids, phase timings and slow captures are
    schedule-dependent diagnostics — gauge/log side only, never
    counters. Nothing here writes to stdout.

    Overhead: with the layer disabled ({!enabled} false) no context is
    created and {!phase} degrades to [Trace.span] (one atomic load when
    tracing is also off). With contexts on, a phase costs two clock
    samples and one mutex-guarded list update on its request's own
    context. *)

type t

val enabled : unit -> bool

val set_enabled : bool -> unit
(** Master switch for context creation at the edges (listener, stdin
    loop). Off by default; [aa_serve] turns it on when any of
    [--access-log], [--slow-ms] or [--trace] is given. *)

val create : kind:string -> conn:int -> t
(** New context with the next request id (process-wide monotonic
    counter) and a start timestamp. [kind] is the protocol verb
    lower-cased ("admit", "stats", …); [conn] the transport connection
    id (0 for stdin). *)

val set_shard : t -> int -> unit
(** Record the owning shard, set at routing time. Stays [-1] for
    cross-shard barrier operations. *)

val rid : t -> int
val conn : t -> int
val kind : t -> string
val shard : t -> int

val with_current : ?shard:int -> t -> (unit -> 'a) -> 'a
(** Scope the calling domain to this context (exception-safe, restores
    the previous scope — nesting works). [?shard] overrides the trace
    shard tag for the scope: barrier workers pass their own shard id so
    one rid spans N shards. *)

val current : unit -> t option
(** The calling domain's scoped context, if any. *)

val phase : string -> (unit -> 'a) -> 'a
(** [phase name f] times [f] against the current context: the duration
    is accumulated under [name] (repeat phases sum), recorded as a
    {!Trace} span, and — when slow capture is armed — kept as a span
    tuple for the keep-list. Without a scoped context this is exactly
    [Trace.span name f]. *)

val mark_handled : t -> unit
(** Stamp "engine dispatch finished" — the writer-visible latency after
    this point is group-commit wait. *)

val mark_committed : t -> unit
(** Stamp "group commit durable"; sets {!commit_wait_ns} to the gap
    since {!mark_handled}. No-op if [mark_handled] was never called
    (non-mutating requests). *)

val finish : t -> outcome:string -> int
(** Close the context: stamps and returns total ns since creation, and
    pushes a slow entry onto the keep-list when slow capture is armed
    and the total meets the threshold. Call exactly once per request,
    from the thread that acks it (listener writer / stdin loop). *)

val total_ns : t -> int
(** Total stamped by {!finish}, or elapsed-so-far before it. *)

val commit_wait_ns : t -> int

val phases : t -> (string * int) list
(** Accumulated phase durations, sorted by name. *)

val phase_ns : t -> string -> int
(** One phase's accumulated ns (0 if never entered). *)

(** {2 Slow-request capture} *)

val set_slow_ms : float -> unit
(** Arm slow capture: a finished request whose total latency is at
    least this many milliseconds has its span subtree preserved into a
    bounded keep-list. [0.] captures everything; negative disarms
    (the default). *)

val slow_armed : unit -> bool

val set_slow_keep : int -> unit
(** Keep-list bound (default 64, minimum 1); oldest entries drop
    first. *)

val slow_count : unit -> int
val slow_clear : unit -> unit

val slow_json : unit -> string
(** One-line JSON array of kept slow requests, most recent first:
    [{rid,kind,conn,shard,outcome,total_ns,spans:[{name,t0_ns,dur_ns,
    shard}]}] — the SLOW verb's payload. *)

val slow_chrome_events : unit -> string
(** The kept spans as Chrome [trace_event] complete events (ph "X"),
    comma-joined without surrounding brackets, for splicing into
    {!Trace.to_chrome_json} output ([pid] 2, [tid] = shard). Empty
    string when nothing is kept. *)

val slow_text : unit -> string
(** Human-readable rendering for [/tracez]: one block per kept request,
    spans indented with shard tags and millisecond durations. *)
