(* The single on/off switch for every probe in the tree. Probes read it
   with one atomic load; when it is false they fall through without
   allocating, taking a clock sample, or touching any shared state —
   that is the whole deal that lets instrumentation live permanently in
   hot paths. *)

let enabled = Atomic.make false
let on () = Atomic.get enabled
let set_enabled v = Atomic.set enabled v

let with_enabled v f =
  let prev = Atomic.get enabled in
  Atomic.set enabled v;
  Fun.protect ~finally:(fun () -> Atomic.set enabled prev) f
