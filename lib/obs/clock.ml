(* The one place in the tree allowed to read a wall clock (the
   [wall-clock] lint rule pins everything else to this module): solver
   results must be a pure function of their inputs, so time never flows
   into them — it flows into spans, latency histograms and utilization
   reports, all of which live behind Aa_obs.

   OCaml's stdlib exposes no monotonic clock, so [now_ns] monotonizes
   [Unix.gettimeofday] against a process-wide high-water mark: a
   backwards step (NTP, VM migration) reads as a zero-length interval
   instead of a negative one. Timestamps are nanoseconds since module
   initialization, kept in a native int (63 bits of ns ≈ 292 years) so
   the high-water CAS works on an unboxed value. *)

let raw_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

let epoch = raw_ns ()
let high_water = Atomic.make 0

let now_ns () =
  let t = raw_ns () - epoch in
  let rec fix () =
    let last = Atomic.get high_water in
    if t <= last then last
    else if Atomic.compare_and_set high_water last t then t
    else fix ()
  in
  fix ()

let now_s () = float_of_int (now_ns ()) *. 1e-9
let wall_s () = Unix.gettimeofday ()
