(** The global observability switch.

    Every probe ({!Registry} counters and gauges, {!Trace} spans, the
    pool and engine hooks threaded through the libraries) checks this
    flag first and does nothing — no allocation, no clock read, no
    atomic write — while it is off. Off is the default, so shipping
    instrumented code costs one predictable branch per probe site. *)

val on : unit -> bool
(** One atomic load; inlineable guard for probe sites. *)

val set_enabled : bool -> unit
(** Flip the switch. Takes effect immediately on every domain.

    Flip only at quiescence with respect to spans: a span whose
    [begin] ran while the switch was on and whose [end] runs after a
    flip to off is never closed (the end is gated on the flag), which
    {!Trace.unbalanced} will report. Exports stay well-formed either
    way, but keep the flag constant while other domains may have spans
    open. *)

val with_enabled : bool -> (unit -> 'a) -> 'a
(** Run with the switch forced to the given value, restoring the
    previous state afterwards (also on exception). The quiescence
    caveat of {!set_enabled} applies at both transitions. *)
