(* Log-bucketed histogram, factored out of Aa_service.Metrics so every
   layer (service latencies, pool chunk times, bench summaries) shares
   one bucketing scheme and merged per-domain histograms stay exact:
   with identical fixed buckets, merge is an elementwise integer sum,
   so the merged quantiles equal the quantiles of the combined stream
   no matter how samples were sharded across domains. *)

(* 20 log-scale buckets per decade, 12 decades: 1 ns .. 1000 s. *)
let per_decade = 20
let n_buckets = 12 * per_decade
let floor_s = 1e-9

type t = { counts : int array; mutable n : int }

let create () = { counts = Array.make n_buckets 0; n = 0 }

let bucket_of x =
  if not (x > floor_s) then 0
  else begin
    let i = int_of_float (float_of_int per_decade *. Float.log10 (x /. floor_s)) in
    if i < 0 then 0 else if i >= n_buckets then n_buckets - 1 else i
  end

let add t x =
  let b = bucket_of x in
  t.counts.(b) <- t.counts.(b) + 1;
  t.n <- t.n + 1

let count t = t.n

let merge a b =
  { counts = Array.init n_buckets (fun i -> a.counts.(i) + b.counts.(i)); n = a.n + b.n }

let midpoint i =
  floor_s *. (10.0 ** ((float_of_int i +. 0.5) /. float_of_int per_decade))

exception Found of float

let quantile t q =
  if not (q >= 0.0 && q <= 1.0) then
    invalid_arg (Printf.sprintf "Histogram.quantile: q = %g outside [0, 1]" q);
  if t.n = 0 then 0.0
  else begin
    let target = Float.max 1.0 (Float.round (q *. float_of_int t.n)) in
    let seen = ref 0 in
    match
      Array.iteri
        (fun i c ->
          seen := !seen + c;
          if float_of_int !seen >= target then raise (Found (midpoint i)))
        t.counts
    with
    | () -> midpoint (n_buckets - 1)
    | exception Found x -> x
  end
