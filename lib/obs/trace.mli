(** Nestable timed spans over per-domain ring buffers.

    A span is a named region between {!begin_span} and {!end_span}
    (prefer the exception-safe {!span} wrapper outside hot loops),
    timestamped on the {!Clock}. Each domain records into its own
    fixed-size ring — no cross-domain synchronization on the hot path —
    and all probes are no-ops while {!Control.on} is false. When a ring
    wraps, the oldest events are overwritten ({!overwritten} counts
    them, and the [obs.trace.overwritten] callback gauge surfaces the
    total in the Prometheus exposition).

    Ring size: {!capacity} slots per domain, default 32768, overridable
    through the [AA_TRACE_RING] environment variable (read once at
    program start; rounded up to a power of two, bad values ignored).

    Events carry an optional request context [(rid, shard, conn)]: set
    {!set_ctx} on a domain and subsequent records are tagged with it
    until {!clear_ctx}. [Rctx] drives this; untagged events read -1.

    Exporters sanitize every buffer into a balanced B/E stream: ends
    whose begins were overwritten are dropped, spans still open at dump
    time get synthesized ends — so {!to_chrome_json} is always loadable
    in Perfetto / chrome://tracing, even dumped mid-request. Exports,
    {!clear} and the accounting reads walk other domains' buffers and
    are meant for quiescence (or a single-domain daemon dumping
    itself): never a crash, but spans recorded concurrently with the
    dump may be missed. *)

val capacity : int
(** Slots per per-domain ring, fixed at program start (see
    [AA_TRACE_RING] above). Always a power of two. *)

val ring_capacity_of : string option -> int
(** The capacity an [AA_TRACE_RING] value would select — [None] and
    unparseable or non-positive strings give the default, anything else
    is clamped to [16, 2^26] and rounded up to a power of two. Exposed
    for tests; {!capacity} is [ring_capacity_of] of the actual
    environment. *)

val set_ctx : rid:int -> shard:int -> conn:int -> unit
(** Tag subsequent records on the calling domain with this request
    context. [-1] in any position means "none". *)

val clear_ctx : unit -> unit
(** Reset the calling domain's context to untagged. *)

val begin_span : string -> unit
(** Open a span on the calling domain. Allocation-free on the hot path
    (the name should be a literal or pre-built string); no-op while
    observability is off. Must be balanced by {!end_span} on the same
    domain — [begin_span]/[end_span] pairs must not straddle a chunk
    boundary handed to another domain. *)

val end_span : unit -> unit
(** Close the innermost open span on the calling domain. *)

val span : string -> (unit -> 'a) -> 'a
(** [span name f] runs [f] inside a span, closing it also on exception.
    The closure makes this the convenient form everywhere except
    allocation-sensitive inner loops, where the [begin_span]/[end_span]
    pair keeps the disabled path allocation-free. *)

type event = {
  domain : int;
  name : string;
  is_begin : bool;
  ts_ns : int;
  rid : int;  (** request id at record time; -1 = untagged *)
  shard : int;
  conn : int;
}

val events : unit -> event list
(** The sanitized, per-domain-chronological event stream behind the
    exporters: per domain, every begin has a matching end (in
    particular [end] events carry their span's name). *)

val n_events : unit -> int
val recorded : unit -> int
(** Raw events ever written, including overwritten ones — cheap (no
    buffer walk), monotonic; what the bench uses for per-experiment
    span deltas. *)

val overwritten : unit -> int
val unbalanced : unit -> int
(** Spans currently open across all domains. Zero at quiescence; the
    bench treats a nonzero value at exit as a hard error. *)

val clear : unit -> unit
(** Drop all recorded events (buffers stay allocated). Quiescence only. *)

val to_chrome_json : ?compact:bool -> unit -> string
(** Chrome [trace_event] JSON array ([{"name":…,"ph":"B"|"E","ts":…,
    "pid":1,"tid":<domain>}]): load in Perfetto (ui.perfetto.dev) or
    chrome://tracing. [ts] is microseconds at ns precision. [compact]
    puts everything on one line (the wire form of the TRACE request).
    Context-tagged events additionally carry
    [args:{rid,shard,conn}]. *)

val to_text_tree : ?limit:int -> unit -> string
(** Human-readable rendering: one block per domain, spans indented by
    nesting depth with millisecond durations; at most [limit] spans per
    domain (default 10000). *)
