type kind =
  | Ident
  | Uident
  | Int_lit
  | Float_lit
  | String_lit
  | Char_lit
  | Keyword
  | Op
  | Comment

type t = { kind : kind; text : string; line : int; col : int }

let keywords =
  [
    "and"; "as"; "assert"; "asr"; "begin"; "class"; "constraint"; "do";
    "done"; "downto"; "else"; "end"; "exception"; "external"; "false";
    "for"; "fun"; "function"; "functor"; "if"; "in"; "include"; "inherit";
    "initializer"; "land"; "lazy"; "let"; "lor"; "lsl"; "lsr"; "lxor";
    "match"; "method"; "mod"; "module"; "mutable"; "new"; "nonrec";
    "object"; "of"; "open"; "or"; "private"; "rec"; "sig"; "struct";
    "then"; "to"; "true"; "try"; "type"; "val"; "virtual"; "when";
    "while"; "with";
  ]

let keyword_set = Hashtbl.create 64
let () = List.iter (fun k -> Hashtbl.replace keyword_set k ()) keywords
let is_lower c = (c >= 'a' && c <= 'z') || c = '_'
let is_upper c = c >= 'A' && c <= 'Z'
let is_digit c = c >= '0' && c <= '9'
let is_ident_char c = is_lower c || is_upper c || is_digit c || c = '\''

(* Maximal-munch symbolic operators, as in the OCaml lexer. *)
let is_symbol_char c = String.contains "!$%&*+-./:<=>?@^|~#" c

type cursor = { src : string; mutable pos : int; mutable line : int; mutable col : int }

let peek cur k = if cur.pos + k < String.length cur.src then Some cur.src.[cur.pos + k] else None

let advance cur =
  (match cur.src.[cur.pos] with
  | '\n' ->
      cur.line <- cur.line + 1;
      cur.col <- 1
  | _ -> cur.col <- cur.col + 1);
  cur.pos <- cur.pos + 1

let take cur n =
  for _ = 1 to n do
    if cur.pos < String.length cur.src then advance cur
  done

(* Consume a double-quoted string body; the opening quote is already
   consumed. Any backslash escapes the next character, which is enough to
   step over escaped quotes and escaped backslashes correctly. *)
let skip_string cur =
  let fin = ref false in
  while (not !fin) && cur.pos < String.length cur.src do
    match cur.src.[cur.pos] with
    | '\\' -> take cur 2
    | '"' ->
        advance cur;
        fin := true
    | _ -> advance cur
  done

(* Quoted string literal {id|...|id}; cursor sits on the opening brace. *)
let try_quoted_string cur =
  let n = String.length cur.src in
  let i = ref (cur.pos + 1) in
  while !i < n && is_lower cur.src.[!i] do incr i done;
  if !i < n && cur.src.[!i] = '|' then begin
    let id = String.sub cur.src (cur.pos + 1) (!i - cur.pos - 1) in
    let closing = "|" ^ id ^ "}" in
    let rec find j =
      if j + String.length closing > n then n
      else if String.sub cur.src j (String.length closing) = closing then
        j + String.length closing
      else find (j + 1)
    in
    let stop = find (!i + 1) in
    take cur (stop - cur.pos);
    true
  end
  else false

(* Comment body; the opening "(*" is already consumed. OCaml comments nest
   and treat string literals inside them as opaque. *)
let skip_comment cur =
  let depth = ref 1 in
  while !depth > 0 && cur.pos < String.length cur.src do
    match (cur.src.[cur.pos], peek cur 1) with
    | '(', Some '*' ->
        take cur 2;
        incr depth
    | '*', Some ')' ->
        take cur 2;
        decr depth
    | '"', _ ->
        advance cur;
        skip_string cur
    | _ -> advance cur
  done

let scan_number cur =
  let is_float = ref false in
  let hex =
    match (cur.src.[cur.pos], peek cur 1) with
    | '0', Some ('x' | 'X') ->
        take cur 2;
        true
    | _ -> false
  in
  let digit c =
    is_digit c || c = '_'
    || (hex && ((c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')))
  in
  let rec digits () =
    match peek cur 0 with
    | Some c when digit c ->
        advance cur;
        digits ()
    | _ -> ()
  in
  digits ();
  (match (peek cur 0, peek cur 1) with
  | Some '.', Some '.' -> () (* range-like punctuation, leave it *)
  | Some '.', _ ->
      is_float := true;
      advance cur;
      digits ()
  | _ -> ());
  (match peek cur 0 with
  | Some ('e' | 'E') when not hex ->
      (match peek cur 1 with
      | Some c when is_digit c ->
          is_float := true;
          advance cur;
          digits ()
      | Some ('+' | '-') ->
          is_float := true;
          take cur 2;
          digits ()
      | _ -> ())
  | Some ('p' | 'P') when hex ->
      is_float := true;
      advance cur;
      (match peek cur 0 with Some ('+' | '-') -> advance cur | _ -> ());
      digits ()
  | _ -> ());
  (* int-width suffixes *)
  (match peek cur 0 with
  | Some ('l' | 'L' | 'n') when not !is_float -> advance cur
  | _ -> ());
  !is_float

(* Char literal vs type variable: after a quote, ['\...'] or ['c'] is a
   char literal; anything else (['a] in [fun (x : 'a) -> ...]) is not. *)
let is_char_literal cur =
  match (peek cur 1, peek cur 2) with
  | Some '\\', _ -> true
  | Some _, Some '\'' -> true
  | _ -> false

let skip_char_literal cur =
  advance cur;
  (* opening quote *)
  (match peek cur 0 with
  | Some '\\' ->
      take cur 2;
      let rec num () =
        match peek cur 0 with
        | Some c when is_digit c || ((c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')) || c = 'x'
          ->
            advance cur;
            num ()
        | _ -> ()
      in
      num ()
  | Some _ -> advance cur
  | None -> ());
  match peek cur 0 with Some '\'' -> advance cur | _ -> ()

let scan src =
  let cur = { src; pos = 0; line = 1; col = 1 } in
  let toks = ref [] in
  let n = String.length src in
  let emit kind start_pos start_line start_col =
    let text = String.sub src start_pos (cur.pos - start_pos) in
    toks := { kind; text; line = start_line; col = start_col } :: !toks
  in
  while cur.pos < n do
    let c = src.[cur.pos] in
    let sp, sl, sc = (cur.pos, cur.line, cur.col) in
    if c = ' ' || c = '\t' || c = '\r' || c = '\n' then advance cur
    else if c = '(' && peek cur 1 = Some '*' then begin
      take cur 2;
      skip_comment cur;
      emit Comment sp sl sc
    end
    else if c = '"' then begin
      advance cur;
      skip_string cur;
      emit String_lit sp sl sc
    end
    else if c = '{' && try_quoted_string cur then emit String_lit sp sl sc
    else if c = '\'' && is_char_literal cur then begin
      skip_char_literal cur;
      emit Char_lit sp sl sc
    end
    else if is_digit c then begin
      let f = scan_number cur in
      emit (if f then Float_lit else Int_lit) sp sl sc
    end
    else if is_lower c || is_upper c then begin
      advance cur;
      while (match peek cur 0 with Some c -> is_ident_char c | None -> false) do
        advance cur
      done;
      let text = String.sub src sp (cur.pos - sp) in
      let kind =
        if Hashtbl.mem keyword_set text then Keyword
        else if is_upper c then Uident
        else Ident
      in
      toks := { kind; text; line = sl; col = sc } :: !toks
    end
    else if is_symbol_char c then begin
      advance cur;
      while (match peek cur 0 with Some c -> is_symbol_char c | None -> false) do
        advance cur
      done;
      emit Op sp sl sc
    end
    else begin
      (* parens, brackets, braces, comma, semicolon, quote, backtick, … *)
      advance cur;
      (* [;;] reads better as one token *)
      if c = ';' && peek cur 0 = Some ';' then advance cur;
      emit Op sp sl sc
    end
  done;
  Array.of_list (List.rev !toks)

let code_only toks = Array.of_seq (Seq.filter (fun t -> t.kind <> Comment) (Array.to_seq toks))

let end_line t =
  let extra = ref 0 in
  String.iter (fun c -> if c = '\n' then incr extra) t.text;
  t.line + !extra

let is_op t s = t.kind = Op && String.equal t.text s
let is_kw t s = t.kind = Keyword && String.equal t.text s
