(** Lint rules for the AA solver stack.

    Each per-file rule is a pure function from a token stream to
    violations. The original rule family is deliberately lexical; the
    v2 rules ([pool-mutation], [unguarded-div]) layer {!Syntax}'s
    structural view on top, and {e project rules} ([unused-export]) run
    once over the cross-module {!Index} instead of per file. All of
    them trade type information for a zero-dependency analysis that
    runs in milliseconds over the whole tree, and rely on per-line
    suppression ({!Lint}) plus the baseline for the cases a human has
    reviewed. *)

type severity = Error | Warn
(** [Error] findings fail the build (exit 1); [Warn] findings are
    reported but do not affect the exit code. Overridable per rule from
    the driver. *)

val severity_to_string : severity -> string
(** ["error"] / ["warn"]. *)

val severity_of_string : string -> severity option
(** Accepts ["error"], ["warn"], ["warning"]. *)

type violation = {
  rule : string;  (** rule id, e.g. ["float-eq"] *)
  severity : severity;
  file : string;
  line : int;
  col : int;
  message : string;
}

type t = {
  id : string;
  summary : string;  (** one line for [aa_lint --rules] *)
  default_severity : severity;
  check : file:string -> Token.t array -> violation list;
}

type project = {
  pid : string;
  psummary : string;
  pdefault_severity : severity;
  pcheck : Index.t -> violation list;
      (** runs once over the whole-tree def/use index *)
}

val all : t list
(** Every per-file rule, in id order:
    - [catch-all]: [try ... with _ ->] swallowing every exception.
    - [float-eq]: [=] / [<>] against a float literal — use [Util.feq] /
      [Util.fne].
    - [no-failwith]: [failwith] in [lib/core] / [lib/alloc] library code.
    - [partial-fn]: [List.hd], [List.nth], [Option.get], explicit
      [Array.get] — match instead, or suppress with a guard rationale.
    - [pool-mutation]: a closure passed to [Aa_parallel.Pool.run] /
      [Pool.map_chunked] mutates state captured from outside the
      closure ([<-], [:=], [incr]/[decr], [Array.set]/[unsafe_set],
      [Hashtbl]/[Buffer]/[Queue]/[Stack] mutators). The determinism
      contract sanctions exactly four shapes of worker-side mutation —
      locally-bound state, [Atomic] operations, buffers registered
      through [Scratch.create], and disjoint per-index array slots
      (subscripts built from closure-local identifiers) — and this rule
      flags everything else.
    - [raw-io]: [Out_channel.open_*], bare [open_out*] or [Sys.rename]
      in [lib/service] outside [journal.ml] — file durability (framing,
      fsync, atomic rename) is Journal's job; writes that bypass it
      don't survive the crash tests.
    - [todo-format]: TODO/FIXME/XXX comments without a [(owner|#issue)]
      tracking tag.
    - [unguarded-div]: a float division in [lib/numerics] / [lib/alloc]
      whose divisor is neither a nonzero literal nor visibly guarded
      (comparison against the divisor's identifiers, [Util.feq]/[fne],
      [max]/[abs]/[eps] adjacency) within the same top-level
      definition. A silent NaN propagates into allocation scores and
      voids the alpha-approximation guarantee.
    - [wall-clock]: [Unix.gettimeofday], [Unix.time] or [Sys.time]
      anywhere except [lib/obs] — clock reads go through [Aa_obs.Clock]
      so deterministic-replay code stays clock-free and all spans share
      one time base. *)

val project_all : project list
(** Project-wide rules:
    - [unused-export]: a [val]/[external] declared in a target [.mli]
      that no other compilation unit references (qualified, via alias,
      open + bare mention, or include) — see {!Index} for the matching
      rules and the use-set extension ([--uses]) that keeps
      entry-point-only API out of the report. Default severity
      [Warn]. *)

val all_ids : string list
(** Ids of every rule, per-file then project — the universe for
    [--enable] / [--disable] / [--severity] validation. *)

val find : string -> t option
(** Look a per-file rule up by id. *)

val find_project : string -> project option
(** Look a project rule up by id. *)

val pp_violation : Format.formatter -> violation -> unit
(** [file:line:col: message [rule]] — one line, grep- and editor-friendly. *)
