(** Lint rules for the AA solver stack.

    Each rule is a pure function from a token stream to violations. The
    rules are deliberately lexical: they trade type information for a
    zero-dependency analysis that runs in milliseconds over the whole
    tree, and rely on per-line suppression ({!Lint}) for the cases a
    human has reviewed. *)

type violation = {
  rule : string;  (** rule id, e.g. ["float-eq"] *)
  file : string;
  line : int;
  col : int;
  message : string;
}

type t = {
  id : string;
  summary : string;  (** one line for [aa_lint --rules] *)
  check : file:string -> Token.t array -> violation list;
}

val all : t list
(** Every rule, in id order:
    - [float-eq]: [=] / [<>] against a float literal — use [Util.feq] /
      [Util.fne].
    - [partial-fn]: [List.hd], [List.nth], [Option.get], explicit
      [Array.get] — match instead, or suppress with a guard rationale.
    - [catch-all]: [try ... with _ ->] swallowing every exception.
    - [no-failwith]: [failwith] in [lib/core] / [lib/alloc] library code.
    - [raw-io]: [Out_channel.open_*], bare [open_out*] or [Sys.rename]
      in [lib/service] outside [journal.ml] — file durability (framing,
      fsync, atomic rename) is Journal's job; writes that bypass it
      don't survive the crash tests.
    - [todo-format]: TODO/FIXME/XXX comments without a [(owner|#issue)]
      tracking tag.
    - [wall-clock]: [Unix.gettimeofday], [Unix.time] or [Sys.time]
      anywhere except [lib/obs] — clock reads go through [Aa_obs.Clock]
      so deterministic-replay code stays clock-free and all spans share
      one time base. *)

val find : string -> t option
(** Look a rule up by id. *)

val pp_violation : Format.formatter -> violation -> unit
(** [file:line:col: message [rule]] — one line, grep- and editor-friendly. *)
