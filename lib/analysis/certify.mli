(** Machine-checkable certification of AA solutions.

    The solvers in this repo are approximate and their guarantee
    ([α = 2(√2−1)], Theorems V.16 / VI.1) is easy to break silently — a
    float [=] or an off-by-one in a greedy loop produces plausible
    numbers with no failing test. [audit] re-derives every property a
    correct solution must have directly from the instance, and returns a
    structured violation report rather than a bool, so tests (and
    production monitors) can assert on the {e class} of failure. *)

type violation =
  | Wrong_arity of { expected : int; got : int }
      (** solution vector length differs from the instance thread count
          (each thread must be assigned exactly once) *)
  | Server_out_of_range of { thread : int; server : int; servers : int }
  | Negative_allocation of { thread : int; alloc : float }
  | Allocation_above_capacity of { thread : int; alloc : float; capacity : float }
  | Budget_exceeded of { server : int; used : float; capacity : float }
      (** per-server budget [Σ_{i on j} c_i <= C] *)
  | Utility_invalid of { thread : int; reason : string }
      (** sampled table of [f_i] is negative, decreasing or non-concave *)
  | Above_upper_bound of { achieved : float; bound : float }
      (** achieved utility exceeds the super-optimal bound F̂ — the
          solution's claimed value cannot be real *)
  | Ratio_below of { achieved : float; bound : float; ratio : float; min_ratio : float }
      (** achieved / F̂ fell under the required ratio (e.g. α) *)

type report = {
  achieved : float;  (** total utility of the audited solution *)
  superopt : float option;  (** F̂ when a bound was supplied *)
  ratio : float option;  (** achieved / F̂ (None when F̂ = 0 or absent) *)
  violations : violation list;  (** empty iff the solution certifies *)
}

val audit :
  ?eps:float ->
  ?samples:int ->
  ?check_utilities:bool ->
  ?superopt:Aa_core.Superopt.t ->
  ?min_ratio:float ->
  Aa_core.Instance.t ->
  Aa_core.Assignment.t ->
  report
(** [audit inst sol] checks feasibility (arity, server range,
    nonnegativity, per-thread and per-server capacity) and, with
    [check_utilities] (default true), that every instance utility is
    nonnegative, nondecreasing and concave on a [samples]-point table
    (default 129).

    Passing [superopt] adds the bound checks: [achieved <= F̂] always,
    and [achieved >= min_ratio * F̂] when [min_ratio] is given (pass
    {!Aa_core.Bounds.alpha} for Algorithms 1/2; heuristics carry no
    guarantee, so omit it for them).

    [eps] (default 1e-9) is the relative slack for every float
    comparison; exact comparisons would reject correct solutions over
    rounding noise, which is precisely the failure mode this module
    exists to prevent. *)

val ok : report -> bool
(** No violations. *)

val certify :
  ?eps:float ->
  ?samples:int ->
  ?check_utilities:bool ->
  ?superopt:Aa_core.Superopt.t ->
  ?min_ratio:float ->
  Aa_core.Instance.t ->
  Aa_core.Assignment.t ->
  (report, report) result
(** [Ok] with the clean report, or [Error] carrying the violations. *)

val violation_class : violation -> string
(** Stable machine-readable tag ("wrong-arity", "budget-exceeded", …) —
    what tests assert against. *)

val pp_violation : Format.formatter -> violation -> unit (* aa-lint: ignore unused-export -- debug printer, kept for toplevel/driver use *)
val pp_report : Format.formatter -> report -> unit
