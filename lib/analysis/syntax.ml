(* Structural surface parsing over the token stream. Everything here is
   a bounded, tolerant approximation: extents err long, binder
   collection errs wide, and nothing raises on malformed input. See the
   .mli for the bias rationale. *)

type def = {
  name : string;
  params : string list;
  head : int;
  rhs_lo : int;
  rhs_hi : int;
}

type t = {
  code : Token.t array;
  close : int array;
  item_starts : int array;
  all_defs : def array;
}

let code t = t.code
let is_kw (t : Token.t) s = t.kind = Token.Keyword && String.equal t.text s
let is_op (t : Token.t) s = t.kind = Token.Op && String.equal t.text s

let opener_of = function ")" -> Some "(" | "]" -> Some "[" | "}" -> Some "{" | _ -> None
let is_opener (t : Token.t) = is_op t "(" || is_op t "[" || is_op t "{"
let is_closer (t : Token.t) = is_op t ")" || is_op t "]" || is_op t "}"

(* --- delimiter matching --------------------------------------------- *)

let compute_close code =
  let n = Array.length code in
  let close = Array.init n (fun i -> i) in
  let stack = ref [] in
  for i = 0 to n - 1 do
    let t : Token.t = code.(i) in
    if is_opener t then begin
      close.(i) <- n;
      stack := (t.text, i) :: !stack
    end
    else
      match opener_of t.Token.text with
      | Some opener when t.kind = Token.Op ->
          (* pop to the matching opener; skipped (unclosed) openers get
             this closer too — tolerant of lexing artifacts *)
          let rec pop () =
            match !stack with
            | (o, j) :: rest ->
                close.(j) <- i;
                stack := rest;
                if not (String.equal o opener) then pop ()
            | [] -> ()
          in
          pop ()
      | _ -> ()
  done;
  close

let matching_close t i =
  if i >= 0 && i < Array.length t.close && is_opener t.code.(i) then t.close.(i) else i

(* --- top-level items ------------------------------------------------- *)

let item_kws =
  [ "let"; "type"; "module"; "open"; "exception"; "external"; "include"; "val"; "class"; "and" ]

let compute_items code =
  let starts = ref [ 0 ] in
  let depth = ref 0 in
  Array.iteri
    (fun i (t : Token.t) ->
      if is_opener t then incr depth
      else if is_closer t then depth := max 0 (!depth - 1)
      else if
        t.kind = Token.Keyword && t.col = 1 && !depth = 0 && i > 0
        && List.exists (String.equal t.text) item_kws
      then starts := i :: !starts)
    code;
  Array.of_list (List.rev !starts)

let item_range t i =
  let starts = t.item_starts in
  let n = Array.length starts in
  (* greatest start <= i, by binary search *)
  let rec bs lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi + 1) / 2 in
      if starts.(mid) <= i then bs mid hi else bs lo (mid - 1)
  in
  if n = 0 then (0, Array.length t.code)
  else
    let k = bs 0 (n - 1) in
    let lo = if starts.(k) <= i then starts.(k) else 0 in
    let hi = if k + 1 < n && starts.(k) <= i then starts.(k + 1) else Array.length t.code in
    (lo, hi)

(* --- binding heads --------------------------------------------------- *)

(* Parse a binding head starting after a [let]/[and] at [i]: collect the
   bound identifiers up to the [=] at bracket depth 0. Returns
   [(idents, rhs_lo)] or [None] when this is not a value binding. Once a
   depth-0 [:] is seen, later identifiers belong to the type annotation
   and are no longer collected. *)
let parse_head code i =
  let n = Array.length code in
  let j = ref (i + 1) in
  while
    !j < n && (is_kw code.(!j) "rec" || (code.(!j).kind = Token.Ident && code.(!j).text = "nonrec"))
  do
    incr j
  done;
  if !j < n && (is_kw code.(!j) "open" || is_kw code.(!j) "module" || is_kw code.(!j) "exception")
  then None
  else begin
    let idents = ref [] in
    let depth = ref 0 in
    let in_annot = ref false in
    let result = ref None in
    let stop = ref false in
    let k = ref !j in
    while (not !stop) && !k < n && !k - i < 160 do
      let t : Token.t = code.(!k) in
      if is_op t "=" && !depth = 0 then begin
        result := Some (List.rev !idents, !k + 1);
        stop := true
      end
      else if is_opener t then incr depth
      else if is_closer t then
        if !depth = 0 then stop := true else decr depth
      else if is_op t ":" && !depth = 0 then in_annot := true
      else if
        t.kind = Token.Keyword
        && List.exists (String.equal t.text)
             [ "in"; "let"; "fun"; "function"; "if"; "match"; "try"; "struct"; "sig"; "do" ]
      then stop := true
      else if
        t.kind = Token.Ident && (not !in_annot)
        && (not (String.equal t.text "_"))
        && not (!k > 0 && is_op code.(!k - 1) ".")
      then idents := t.text :: !idents;
      incr k
    done;
    !result
  end

(* Right-hand-side extent from [rhs_lo]: balanced via the close table,
   terminated by the [in] that closes this binding, a sibling [and], a
   closer of an enclosing group, [;;], or the next column-1 item. *)
let rhs_extent code close rhs_lo =
  let n = Array.length code in
  let lets = ref 0 in
  let blocks = ref 0 in
  let j = ref rhs_lo in
  let stop = ref (-1) in
  while !stop < 0 && !j < n do
    let t : Token.t = code.(!j) in
    if
      t.kind = Token.Keyword && t.col = 1 && !j > rhs_lo
      && List.exists (String.equal t.text) item_kws
    then stop := !j
    else if is_opener t then j := (if close.(!j) >= n then n else close.(!j) + 1)
    else if is_closer t then stop := !j
    else if is_kw t "let" then begin
      incr lets;
      incr j
    end
    else if is_kw t "in" then
      if !lets > 0 then begin
        decr lets;
        incr j
      end
      else stop := !j
    else if is_kw t "and" && !lets = 0 && !blocks = 0 then stop := !j
    else if
      is_kw t "struct" || is_kw t "sig" || is_kw t "object" || is_kw t "begin" || is_kw t "do"
    then begin
      incr blocks;
      incr j
    end
    else if is_kw t "end" || is_kw t "done" then
      if !blocks > 0 then begin
        decr blocks;
        incr j
      end
      else stop := !j
    else if is_op t ";;" then stop := !j
    else incr j
  done;
  if !stop < 0 then n else !stop

let compute_defs code close =
  let out = ref [] in
  Array.iteri
    (fun i (t : Token.t) ->
      if is_kw t "let" || is_kw t "and" then
        match parse_head code i with
        | Some (name :: params, rhs_lo) ->
            out :=
              { name; params; head = i; rhs_lo; rhs_hi = rhs_extent code close rhs_lo }
              :: !out
        | Some ([], _) | None -> ())
    code;
  Array.of_list (List.rev !out)

let defs t = Array.to_list t.all_defs

let def_before t name i =
  let best = ref None in
  Array.iter
    (fun d -> if d.head < i && String.equal d.name name then best := Some d)
    t.all_defs;
  !best

(* --- local binders in a region --------------------------------------- *)

let arm_stop_kws = [ "let"; "fun"; "if"; "then"; "else"; "do"; "in"; "function"; "match"; "try" ]

let locals_in t ~lo ~hi =
  let code = t.code in
  let n = Array.length code in
  let hi = min hi n in
  let tbl = Hashtbl.create 32 in
  let add (tok : Token.t) k =
    if
      tok.kind = Token.Ident
      && (not (String.equal tok.text "_"))
      && not (k > 0 && is_op code.(k - 1) ".")
    then Hashtbl.replace tbl tok.text ()
  in
  (* collect identifiers from [from] until [terminator] at depth 0 (or a
     stop token); returns the index scanning ended at *)
  let collect ~terminator ~stops from =
    let depth = ref 0 in
    let k = ref from in
    let fin = ref (-1) in
    while !fin < 0 && !k < hi && !k - from < 160 do
      let t : Token.t = code.(!k) in
      if is_op t terminator && !depth = 0 then fin := !k
      else if is_opener t then begin
        incr depth;
        incr k
      end
      else if is_closer t then
        if !depth = 0 then fin := !k
        else begin
          decr depth;
          incr k
        end
      else if
        (t.kind = Token.Keyword && List.exists (String.equal t.text) stops)
        || (is_op t ";" && !depth = 0)
      then fin := !k
      else begin
        add t !k;
        incr k
      end
    done;
    if !fin < 0 then !k else !fin
  in
  let i = ref lo in
  while !i < hi do
    let t : Token.t = code.(!i) in
    if is_kw t "let" || is_kw t "and" then
      (* head idents only; the [=] terminator keeps rhs code out *)
      i := max (!i + 1) (collect ~terminator:"=" ~stops:arm_stop_kws (!i + 1))
    else if is_kw t "fun" then
      i := max (!i + 1) (collect ~terminator:"->" ~stops:[ "in"; "let" ] (!i + 1))
    else if
      is_kw t "function" || is_kw t "with"
      || (is_op t "|"
         && (not (!i > 0 && is_op code.(!i - 1) "["))
         && not (!i + 1 < n && is_op code.(!i + 1) "]"))
    then
      (* an arm pattern: binders up to [->], none after [when] or [=]
         (record-[with] fields stop there) *)
      i := max (!i + 1) (collect ~terminator:"->" ~stops:("when" :: arm_stop_kws) (!i + 1))
    else if (is_kw t "for" || is_kw t "as") && !i + 1 < hi then begin
      add code.(!i + 1) (!i + 1);
      i := !i + 2
    end
    else incr i
  done;
  tbl

(* --- closures -------------------------------------------------------- *)

type closure = { params : string list; body_lo : int; body_hi : int }

let closure_at t ~lo ~hi =
  let code = t.code in
  let hi = min hi (Array.length code) in
  (* unwrap one or more layers of exactly-enclosing parens *)
  let rec unwrap lo hi =
    if lo < hi && is_op code.(lo) "(" && matching_close t lo = hi - 1 then unwrap (lo + 1) (hi - 1)
    else (lo, hi)
  in
  if lo >= hi then None
  else
    let lo', hi' = unwrap lo hi in
    if lo' >= hi' then None
    else if is_kw code.(lo') "function" then
      Some { params = []; body_lo = lo' + 1; body_hi = hi' }
    else if is_kw code.(lo') "fun" then begin
      (* parameters up to the [->] at depth 0 *)
      let depth = ref 0 in
      let arrow = ref (-1) in
      let k = ref (lo' + 1) in
      let params = ref [] in
      while !arrow < 0 && !k < hi' do
        let tok : Token.t = code.(!k) in
        if is_op tok "->" && !depth = 0 then arrow := !k
        else begin
          if is_opener tok then incr depth
          else if is_closer tok then decr depth
          else if
            tok.kind = Token.Ident
            && (not (String.equal tok.text "_"))
            && not (is_op code.(!k - 1) ".")
          then params := tok.text :: !params;
          incr k
        end
      done;
      if !arrow < 0 then None
      else Some { params = List.rev !params; body_lo = !arrow + 1; body_hi = hi' }
    end
    else None

let make toks =
  let code = Token.code_only toks in
  let close = compute_close code in
  {
    code;
    close;
    item_starts = compute_items code;
    all_defs = compute_defs code close;
  }
