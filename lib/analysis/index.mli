(** Cross-module def/use index for everything exported through an
    [.mli].

    [build] scans two file sets: the {e target} files (whose [.mli]
    declarations become export candidates) and an extra {e use} set
    scanned for references only — typically [bin/], [bench/] and
    [test/], so a value consumed only by an executable or a test is not
    reported unused.

    Use detection is deliberately generous (the same
    fewer-false-positives bias as {!Syntax}): a value counts as used if
    any other compilation unit references it qualified ([M.f], through
    a [module X = M] alias, or via a longer path ending in [M.f]),
    opens [M] ([open], [let open], [M.(...)]) and mentions the bare
    name anywhere, or [include]s [M] (which re-exports everything). A
    module name shared by two files (e.g. two [Trace]s in different
    libraries) pools their uses, again erring toward "used". *)

type export = {
  e_module : string;  (** innermost enclosing module, e.g. [Online] for [Stats.Online.t] *)
  e_name : string;
  e_file : string;  (** the declaring [.mli] *)
  e_line : int;
  e_col : int;
}

type t

val build : targets:(string * Token.t array) list -> uses:(string * Token.t array) list -> t
(** [(path, tokens)] pairs; tokens as produced by {!Token.scan}. *)

val exports : t -> export list
(** [val]/[external] declarations from the target [.mli] files, in
    file-then-source order. Operator exports ([val ( <| ) : ...]) are
    omitted — their uses are not traceable lexically. Declarations
    inside [module type] signatures are omitted too (they are interface
    requirements, not concrete exports). *)

val used : t -> export -> bool
(** True when any file other than the export's own compilation unit
    references it, per the generous matching described above. *)

val module_of_path : string -> string
(** ["lib/numerics/stats.mli"] → ["Stats"]. *)
