(** A structural surface parser over the {!Token} stream.

    This is the layer between "token soup" and a real AST: it recovers
    the shapes semantic lint rules need — top-level item boundaries,
    [let]-binding definitions with their right-hand-side extents,
    locally-bound names within a region, matched delimiters, and
    closure literals — without type information or compiler-libs.

    Like the tokenizer it degrades rather than fails: every query is an
    approximation with a deliberate bias. Binding collection
    over-approximates (more names count as local), extents err long,
    and item detection assumes the repo's formatting convention that
    top-level items start in column 1. The bias is chosen so that
    rules built on it under-report rather than emit false positives;
    per-line suppression and the baseline catch the rest. *)

type t

val make : Token.t array -> t
(** Build the structural view from a raw token stream (comments are
    dropped internally). Never raises. *)

val code : t -> Token.t array
(** The comment-free token stream every index below refers to. *)

val matching_close : t -> int -> int
(** For an opener token at [i] — [( ] [\[] [{] — the index of its
    matching closer, or [Array.length (code t)] when unclosed. For any
    other token, [i] itself. *)

val item_range : t -> int -> int * int
(** [[lo, hi)] code-token range of the top-level structure item
    containing index [i]. Items are detected at column-1 keywords
    ([let]/[type]/[module]/[open]/[val]/...) outside brackets — the
    repo's (and ocamlformat's) layout invariant. Used as the search
    window for "is there a guard nearby" questions. *)

type def = {
  name : string;  (** first lowercase identifier of the binding head *)
  params : string list;  (** remaining head identifiers (over-approx) *)
  head : int;  (** index of the [let] / [and] keyword *)
  rhs_lo : int;  (** first token after the head's [=] *)
  rhs_hi : int;  (** one past the last rhs token (approximate extent) *)
}

val defs : t -> def list
(** Every [let]/[and] value binding in the file, any nesting depth, in
    source order. Pattern bindings contribute their first identifier as
    [name]. Bindings with no identifier ([let () = ...]) are omitted. *)

val def_before : t -> string -> int -> def option
(** The closest definition of [name] whose head precedes code index
    [i] — lexical-scope resolution for "what does this identifier refer
    to here", good enough to chase a named closure argument or the
    right-hand side an accumulator was initialized from. *)

val locals_in : t -> lo:int -> hi:int -> (string, unit) Hashtbl.t
(** Identifiers bound anywhere within the code-token range [[lo, hi)]:
    [let]/[and] heads, [fun] parameters (labelled and optional
    included), [function]/[match]/[try] arm patterns, [for] loop
    variables and [as] aliases. Over-approximates by design. *)

type closure = {
  params : string list;  (** [] for [function] *)
  body_lo : int;
  body_hi : int;  (** one past the end of the closure body *)
}

val closure_at : t -> lo:int -> hi:int -> closure option
(** Interpret the code-token range [[lo, hi)] — typically one
    parenthesized argument group — as a closure literal: a leading
    [fun ... ->] or [function], possibly wrapped in one layer of
    parentheses. Returns its parameter names and body extent, or [None]
    if the range is not a closure literal. *)
