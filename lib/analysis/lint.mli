(** Lint driver: runs {!Rules} over files, applies per-line suppression
    comments and a checked-in baseline.

    {2 Suppression}

    A comment containing [aa-lint: ignore <ids>] suppresses the listed
    rules (comma- or space-separated ids, or [all]) on every line the
    comment touches:

    {[ let x = List.hd xs (* aa-lint: ignore partial-fn -- xs nonempty above *) ]}

    [aa-lint: ignore-next <ids>] on its own line suppresses them on the
    line after the comment instead. Everything after [--] is rationale
    and is ignored by the parser (and encouraged for the reader).

    {2 Baseline}

    The baseline file records known violations as
    [<rule> <count> <md5> <path>] lines, where the fingerprint hashes the
    rule id, the normalized path and the trimmed source line — so entries
    survive unrelated edits that only shift line numbers. Violations
    matching a baseline entry are reported separately and do not fail the
    run; baseline entries that no longer match anything are reported as
    stale so the file can shrink monotonically. *)

type outcome = {
  fresh : Rules.violation list;  (** neither suppressed nor baselined *)
  baselined : Rules.violation list;
  suppressed : int;  (** count silenced by suppression comments *)
  stale_baseline : string list;  (** fingerprints with no matching violation *)
  files : int;  (** files scanned *)
}

val check_source : ?rules:Rules.t list -> file:string -> string -> Rules.violation list
(** Lint one compilation unit held in memory (suppression comments
    applied; no baseline). [rules] defaults to {!Rules.all}. *)

val ml_files_under : string -> string list
(** The [.ml] files under a directory (recursive, sorted), skipping
    [_build] and dot-directories. A path to a regular file is returned
    as-is. *)

val source_files_under : string -> string list
(** Like {!ml_files_under} but including [.mli] interfaces — the file
    set the lint engine actually scans, so project rules can attach
    findings to interface files. *)

val fingerprint : file:string -> line_text:string -> string -> string
(** [fingerprint ~file ~line_text rule_id] — the baseline hash. *)

val normalize_path : string -> string
(** [/]-separated path with leading [./] and [../] segments stripped, so
    fingerprints agree between repo-root and sandboxed runs. *)

val load_baseline : string -> (string * int) list
(** [fingerprint, count] pairs; missing file is an empty baseline.
    Lines starting with [#] are comments. *)

val baseline_entries : (string * Rules.violation) list -> string list
(** Serialized baseline lines (sorted, counts merged) from
    [(line_text, violation)] pairs — for [--update-baseline]. *)

val run :
  ?rules:Rules.t list ->
  ?project:Rules.project list ->
  ?severities:(string * Rules.severity) list ->
  ?use_paths:string list ->
  ?baseline:(string * int) list ->
  string list ->
  outcome
(** Lint files and/or directories ([.ml] and [.mli] are collected;
    per-file rules run on implementations, project rules run once over
    the cross-module {!Index} built from every target). Unreadable
    paths raise [Sys_error].

    [project] defaults to {!Rules.project_all} (pass [[]] to disable).
    [severities] overrides rule severities by id. [use_paths] names
    extra roots scanned for {e references only} — typically [bin/],
    [bench/] and [test/] — so exports consumed solely by executables or
    tests are not reported unused. Suppression comments apply to
    project findings the same way they do to per-file ones (place them
    in the [.mli]). *)

val run_with_lines :
  ?rules:Rules.t list ->
  ?project:Rules.project list ->
  ?severities:(string * Rules.severity) list ->
  ?use_paths:string list ->
  ?baseline:(string * int) list ->
  string list ->
  outcome * (string * Rules.violation) list
(** {!run}, also returning every unsuppressed violation paired with its
    source line text (input for {!baseline_entries}). *)
