open Aa_numerics
open Aa_core

type violation =
  | Wrong_arity of { expected : int; got : int }
  | Server_out_of_range of { thread : int; server : int; servers : int }
  | Negative_allocation of { thread : int; alloc : float }
  | Allocation_above_capacity of { thread : int; alloc : float; capacity : float }
  | Budget_exceeded of { server : int; used : float; capacity : float }
  | Utility_invalid of { thread : int; reason : string }
  | Above_upper_bound of { achieved : float; bound : float }
  | Ratio_below of { achieved : float; bound : float; ratio : float; min_ratio : float }

type report = {
  achieved : float;
  superopt : float option;
  ratio : float option;
  violations : violation list;
}

(* a <= b up to relative slack *)
let le ~eps a b = a <= b +. (eps *. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b)))

let audit ?(eps = 1e-9) ?(samples = 129) ?(check_utilities = true) ?superopt
    ?min_ratio (inst : Instance.t) (sol : Assignment.t) =
  let n = Instance.n_threads inst in
  let got = Array.length sol.server in
  let out = ref [] in
  let add x = out := x :: !out in
  if got <> n || Array.length sol.alloc <> got then
    add (Wrong_arity { expected = n; got });
  let upto = min n got in
  (* per-thread checks *)
  for i = 0 to upto - 1 do
    let s = sol.server.(i) and c = sol.alloc.(i) in
    if s < 0 || s >= inst.servers then
      add (Server_out_of_range { thread = i; server = s; servers = inst.servers });
    if (not (Float.is_finite c)) || c < -.eps then
      add (Negative_allocation { thread = i; alloc = c });
    if Float.is_finite c && not (le ~eps c inst.capacity) then
      add (Allocation_above_capacity { thread = i; alloc = c; capacity = inst.capacity })
  done;
  (* per-server budget *)
  let used = Array.make inst.servers 0.0 in
  for i = 0 to upto - 1 do
    let s = sol.server.(i) in
    if s >= 0 && s < inst.servers && Float.is_finite sol.alloc.(i) then
      used.(s) <- used.(s) +. sol.alloc.(i)
  done;
  Array.iteri
    (fun j u ->
      if not (le ~eps u inst.capacity) then
        add (Budget_exceeded { server = j; used = u; capacity = inst.capacity }))
    used;
  (* utility model validity, on a sampled table *)
  if check_utilities then
    Array.iteri
      (fun i u ->
        match Aa_utility.Utility.check ~samples u with
        | Ok () -> ()
        | Error reason -> add (Utility_invalid { thread = i; reason }))
      inst.utilities;
  (* achieved utility: evaluate the true utilities at the (clamped-sane)
     allocations actually granted *)
  let achieved =
    if got = n then Assignment.utility inst sol
    else
      Util.sum_by
        (fun i -> Aa_utility.Utility.eval inst.utilities.(i) sol.alloc.(i))
        (Array.init upto Fun.id)
  in
  let superopt_u = Option.map (fun (so : Superopt.t) -> so.utility) superopt in
  let ratio =
    match superopt_u with
    | Some f when f > 0.0 -> Some (achieved /. f)
    | _ -> None
  in
  (match superopt_u with
  | Some f ->
      if not (le ~eps achieved f) then
        add (Above_upper_bound { achieved; bound = f });
      (match min_ratio with
      | Some r ->
          if not (le ~eps (r *. f) achieved) then
            add
              (Ratio_below
                 {
                   achieved;
                   bound = f;
                   ratio = (if f > 0.0 then achieved /. f else 1.0);
                   min_ratio = r;
                 })
      | None -> ())
  | None -> ());
  { achieved; superopt = superopt_u; ratio; violations = List.rev !out }

let ok r = r.violations = []

let certify ?eps ?samples ?check_utilities ?superopt ?min_ratio inst sol =
  let r = audit ?eps ?samples ?check_utilities ?superopt ?min_ratio inst sol in
  if ok r then Ok r else Error r

let violation_class = function
  | Wrong_arity _ -> "wrong-arity"
  | Server_out_of_range _ -> "server-out-of-range"
  | Negative_allocation _ -> "negative-allocation"
  | Allocation_above_capacity _ -> "allocation-above-capacity"
  | Budget_exceeded _ -> "budget-exceeded"
  | Utility_invalid _ -> "utility-invalid"
  | Above_upper_bound _ -> "above-upper-bound"
  | Ratio_below _ -> "ratio-below"

let pp_violation ppf = function
  | Wrong_arity { expected; got } ->
      Format.fprintf ppf "wrong arity: %d threads in instance, %d in solution" expected got
  | Server_out_of_range { thread; server; servers } ->
      Format.fprintf ppf "thread %d on server %d, outside [0, %d)" thread server servers
  | Negative_allocation { thread; alloc } ->
      Format.fprintf ppf "thread %d allocated %g (negative or non-finite)" thread alloc
  | Allocation_above_capacity { thread; alloc; capacity } ->
      Format.fprintf ppf "thread %d allocated %g > capacity %g" thread alloc capacity
  | Budget_exceeded { server; used; capacity } ->
      Format.fprintf ppf "server %d uses %g > capacity %g" server used capacity
  | Utility_invalid { thread; reason } ->
      Format.fprintf ppf "utility of thread %d violates the model: %s" thread reason
  | Above_upper_bound { achieved; bound } ->
      Format.fprintf ppf "achieved %g exceeds the super-optimal bound %g" achieved bound
  | Ratio_below { achieved; bound; ratio; min_ratio } ->
      Format.fprintf ppf "achieved %g is %.6f of bound %g, below required %.6f"
        achieved ratio bound min_ratio

let pp_report ppf r =
  Format.fprintf ppf "achieved %g" r.achieved;
  Option.iter (fun f -> Format.fprintf ppf ", F-hat %g" f) r.superopt;
  Option.iter (fun x -> Format.fprintf ppf ", ratio %.6f" x) r.ratio;
  if r.violations = [] then Format.fprintf ppf ": certified"
  else begin
    Format.fprintf ppf ": %d violation(s)" (List.length r.violations);
    List.iter (fun v -> Format.fprintf ppf "@,  - %a" pp_violation v) r.violations
  end
