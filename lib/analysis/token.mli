(** A lightweight OCaml tokenizer (stdlib only, no compiler-libs).

    Built for static analysis, not compilation: it is lossy about literal
    values but exact about token boundaries, comment/string nesting and
    source positions — which is all a lint rule needs. Unrecognized bytes
    degrade to single-character {!Op} tokens rather than failing, so the
    scanner always terminates with a best-effort stream. *)

type kind =
  | Ident  (** lowercase identifier or [_] *)
  | Uident  (** capitalized identifier (module / constructor) *)
  | Int_lit
  | Float_lit
  | String_lit  (** including delimiters; also [{id|...|id}] quotes *)
  | Char_lit
  | Keyword  (** OCaml reserved word *)
  | Op  (** symbolic operator or punctuation *)
  | Comment  (** full text including [(*]/[*)]; nesting respected *)

type t = {
  kind : kind;
  text : string;
  line : int;  (** 1-based line of the first character *)
  col : int;  (** 1-based column of the first character *)
}

val scan : string -> t array
(** Tokenize a whole compilation unit. Comments may nest and may contain
    string literals (as in the OCaml lexer); strings handle backslash
    escapes. Never raises. *)

val code_only : t array -> t array
(** The stream without {!Comment} tokens — what most rules match on. *)

val end_line : t -> int
(** Last source line covered by the token (tokens spanning several lines:
    comments and multi-line strings). *)

val is_op : t -> string -> bool
val is_kw : t -> string -> bool
