type violation = {
  rule : string;
  file : string;
  line : int;
  col : int;
  message : string;
}

type t = {
  id : string;
  summary : string;
  check : file:string -> Token.t array -> violation list;
}

let v ~rule ~file (tok : Token.t) message =
  { rule; file; line = tok.line; col = tok.col; message }

(* Does [path] live under directory [dir] (using / separators, any
   prefix)? Tolerates leading ./ and ../ segments. *)
let under dir path =
  let path = String.concat "/" (String.split_on_char '\\' path) in
  let needle = dir ^ "/" in
  let n = String.length path and k = String.length needle in
  let rec at i = i + k <= n && (String.sub path i k = needle || at (i + 1)) in
  at 0

(* --- float-eq ------------------------------------------------------ *)

(* Walk left over one operand (identifier chains, projections, balanced
   parens/brackets, literals) and return the index of the token just
   before it, or -1. Used to tell a comparison [x = 0.0] from a binding
   [let x = 0.0] or a record field [{ lambda = 0.0 }]. *)
let rec skip_operand_left (code : Token.t array) j =
  if j < 0 then -1
  else
    let t = code.(j) in
    match t.kind with
    | Token.Ident | Token.Uident | Token.Int_lit | Token.Float_lit
    | Token.String_lit | Token.Char_lit ->
        skip_operand_left code (j - 1)
    | Token.Op when t.text = "." || t.text = "!" -> skip_operand_left code (j - 1)
    | Token.Op when t.text = ")" || t.text = "]" ->
        let opener = if t.text = ")" then "(" else "[" in
        let depth = ref 1 and i = ref (j - 1) in
        while !depth > 0 && !i >= 0 do
          if Token.is_op code.(!i) t.text then incr depth
          else if Token.is_op code.(!i) opener then decr depth;
          if !depth > 0 then decr i
        done;
        skip_operand_left code (!i - 1)
    | _ -> j

(* Token index [i] holds [=]; is it a binding / field / default rather
   than a comparison? *)
let equals_is_binding (code : Token.t array) i =
  let j = skip_operand_left code (i - 1) in
  if j < 0 then true
  else
    let p = code.(j) in
    match p.kind with
    | Token.Keyword -> (
        match p.text with
        | "let" | "and" | "rec" | "val" | "type" | "module" | "method"
        | "external" | "exception" | "for" | "with" ->
            true
        | _ -> false)
    | Token.Op -> (
        match p.text with
        | "{" | ";" | "?" | "~" -> true
        | "(" -> j > 0 && Token.is_op code.(j - 1) "?"
        | _ -> false)
    | _ -> false

let float_eq_rule =
  let id = "float-eq" in
  let check ~file toks =
    let code = Token.code_only toks in
    let out = ref [] in
    let float_at k =
      k >= 0 && k < Array.length code
      && (code.(k).kind = Token.Float_lit
         || (* a negated literal: [x = -1.0] lexes the sign separately *)
         (Token.is_op code.(k) "-"
         && k + 1 < Array.length code
         && code.(k + 1).kind = Token.Float_lit))
    in
    Array.iteri
      (fun i (t : Token.t) ->
        let cmp = Token.is_op t "=" || Token.is_op t "<>" in
        if cmp && (float_at (i - 1) || float_at (i + 1)) then
          if t.text = "<>" || not (equals_is_binding code i) then
            out :=
              v ~rule:id ~file t
                (Printf.sprintf
                   "float `%s` comparison against a literal; use \
                    Aa_numerics.Util.%s (tolerant compare)"
                   t.text
                   (if t.text = "=" then "feq" else "fne"))
              :: !out)
      code;
    List.rev !out
  in
  { id; summary = "float =/<> against a literal (use Util.feq / Util.fne)"; check }

(* --- partial-fn ----------------------------------------------------- *)

let partial_targets =
  [
    ("List", "hd", "match on the list (or carry the nonempty witness)");
    ("List", "nth", "index a precomputed array, or match");
    ("Option", "get", "pattern-match; the None case needs a decision");
    ( "Array",
      "get",
      "verify the bounds; in hot loops prefer a.(i), or Array.unsafe_get \
       with a proof comment" );
  ]

let partial_fn_rule =
  let id = "partial-fn" in
  let check ~file toks =
    let code = Token.code_only toks in
    let out = ref [] in
    Array.iteri
      (fun i (t : Token.t) ->
        if t.kind = Token.Uident && i + 2 < Array.length code then
          match
            List.find_opt
              (fun (m, f, _) ->
                String.equal t.text m
                && Token.is_op code.(i + 1) "."
                && code.(i + 2).kind = Token.Ident
                && String.equal code.(i + 2).text f)
              partial_targets
          with
          | Some (m, f, hint) ->
              out :=
                v ~rule:id ~file t
                  (Printf.sprintf "partial function %s.%s: %s" m f hint)
                :: !out
          | None -> ())
      code;
    List.rev !out
  in
  { id; summary = "unguarded partial function (List.hd/nth, Option.get, Array.get)"; check }

(* --- catch-all ------------------------------------------------------ *)

let catch_all_rule =
  let id = "catch-all" in
  let check ~file toks =
    let code = Token.code_only toks in
    let out = ref [] in
    (* (opener, brace depth at push); [with] pops the nearest opener at
       the same brace depth — a [with] at deeper brace depth is a record
       update [{ e with ... }] and pops nothing. *)
    let stack = ref [] in
    let braces = ref 0 in
    Array.iteri
      (fun i (t : Token.t) ->
        if Token.is_op t "{" then incr braces
        else if Token.is_op t "}" then braces := max 0 (!braces - 1)
        else if Token.is_kw t "try" then stack := (`Try, !braces) :: !stack
        else if Token.is_kw t "match" then stack := (`Match, !braces) :: !stack
        else if Token.is_kw t "with" then
          match !stack with
          | (opener, d) :: rest when d = !braces ->
              stack := rest;
              if opener = `Try then begin
                (* first handler pattern, skipping an optional leading | *)
                let j = if i + 1 < Array.length code && Token.is_op code.(i + 1) "|" then i + 2 else i + 1 in
                if
                  j + 1 < Array.length code
                  && code.(j).kind = Token.Ident
                  && String.equal code.(j).text "_"
                  && Token.is_op code.(j + 1) "->"
                then
                  out :=
                    v ~rule:id ~file t
                      "catch-all `try ... with _ ->` swallows Out_of_memory, \
                       Stack_overflow and typos alike; match the exceptions \
                       you mean"
                    :: !out
              end
          | _ -> ())
      code;
    List.rev !out
  in
  { id; summary = "try ... with _ -> (swallows every exception)"; check }

(* --- no-failwith ---------------------------------------------------- *)

let no_failwith_rule =
  let id = "no-failwith" in
  let check ~file toks =
    if not (under "lib/core" file || under "lib/alloc" file) then []
    else
      let code = Token.code_only toks in
      let out = ref [] in
      Array.iter
        (fun (t : Token.t) ->
          if t.kind = Token.Ident && String.equal t.text "failwith" then
            out :=
              v ~rule:id ~file t
                "failwith in library code: raise a typed exception (or \
                 Invalid_argument with context) so callers can match it"
              :: !out)
        code;
      List.rev !out
  in
  { id; summary = "failwith in lib/core or lib/alloc (use typed exceptions)"; check }

(* --- todo-format ---------------------------------------------------- *)

let todo_markers = [ "TODO"; "FIXME"; "XXX" ]

let todo_format_rule =
  let id = "todo-format" in
  let boundary text k =
    (* [k] starts a marker occurrence: require word boundaries around it *)
    let before_ok =
      k = 0
      ||
      let c = text.[k - 1] in
      not ((c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '_')
    in
    before_ok
  in
  let check ~file toks =
    let out = ref [] in
    Array.iter
      (fun (t : Token.t) ->
        if t.kind = Token.Comment then
          List.iter
            (fun marker ->
              let ml = String.length marker in
              let n = String.length t.text in
              let rec scan k =
                if k + ml > n then ()
                else if String.sub t.text k ml = marker && boundary t.text k then begin
                  let after = if k + ml < n then Some t.text.[k + ml] else None in
                  let word_char =
                    match after with
                    | Some c ->
                        (c >= 'A' && c <= 'Z')
                        || (c >= 'a' && c <= 'z')
                        || (c >= '0' && c <= '9')
                        || c = '_'
                    | None -> false
                  in
                  let tracked = word_char || after = Some '(' in
                  if not tracked then begin
                    (* line of the marker inside a possibly multi-line comment *)
                    let line = ref t.line in
                    String.iter (fun c -> if c = '\n' then incr line)
                      (String.sub t.text 0 k);
                    out :=
                      {
                        rule = id;
                        file;
                        line = !line;
                        col = (if !line = t.line then t.col + k else 1);
                        message =
                          Printf.sprintf
                            "untracked %s: write %s(owner) or %s(#issue) so it \
                             can be burned down"
                            marker marker marker;
                      }
                      :: !out
                  end;
                  scan (k + ml)
                end
                else scan (k + 1)
              in
              scan 0)
            todo_markers)
      toks;
    List.rev !out
  in
  { id; summary = "TODO/FIXME/XXX without a (owner|#issue) tracking tag"; check }

(* --- wall-clock ------------------------------------------------------ *)

(* (module, function) pairs that read the wall clock directly. *)
let wall_clock_targets = [ ("Unix", "gettimeofday"); ("Unix", "time"); ("Sys", "time") ]

let wall_clock_rule =
  let id = "wall-clock" in
  let check ~file toks =
    (* Aa_obs.Clock is the one sanctioned wall-clock reader; everything
       else must go through it so clock reads stay out of the
       deterministic-replay paths and spans share one time base. *)
    if under "lib/obs" file then []
    else
      let code = Token.code_only toks in
      let out = ref [] in
      Array.iteri
        (fun i (t : Token.t) ->
          if
            t.kind = Token.Uident
            && i + 2 < Array.length code
            && List.exists
                 (fun (m, f) ->
                   String.equal t.text m
                   && Token.is_op code.(i + 1) "."
                   && code.(i + 2).kind = Token.Ident
                   && String.equal code.(i + 2).text f)
                 wall_clock_targets
          then
            out :=
              v ~rule:id ~file t
                (Printf.sprintf
                   "direct wall-clock read %s.%s: use Aa_obs.Clock (now_s/now_ns \
                    are monotonized, wall_s for absolute timestamps) so clock \
                    reads stay in one place"
                   t.text code.(i + 2).text)
              :: !out)
        code;
      List.rev !out
  in
  {
    id;
    summary = "Unix.gettimeofday/Unix.time/Sys.time outside lib/obs (use Aa_obs.Clock)";
    check;
  }

(* --- raw-io ---------------------------------------------------------- *)

(* Module.function pairs that write files or rename paths directly. *)
let raw_io_targets =
  [ ("Out_channel", "open_text"); ("Out_channel", "open_bin");
    ("Out_channel", "open_gen"); ("Sys", "rename") ]

(* Bare stdlib writers (no module prefix). *)
let raw_io_bare = [ "open_out"; "open_out_bin"; "open_out_gen" ]

let raw_io_rule =
  let id = "raw-io" in
  let check ~file toks =
    (* Journal.ml owns the durability story of lib/service — framing,
       fsync policy, tmp+rename atomicity, torn-tail repair. Any other
       module opening output files or renaming paths there is bypassing
       it, and its writes won't survive the crash tests. *)
    if not (under "lib/service" file) || Filename.basename file = "journal.ml"
    then []
    else
      let code = Token.code_only toks in
      let out = ref [] in
      let flag (t : Token.t) what =
        out :=
          v ~rule:id ~file t
            (Printf.sprintf
               "raw file I/O %s in lib/service: durability (framing, fsync, \
                atomic rename) lives in Journal; route writes through it" what)
          :: !out
      in
      Array.iteri
        (fun i (t : Token.t) ->
          if
            t.kind = Token.Uident
            && i + 2 < Array.length code
            && List.exists
                 (fun (m, f) ->
                   String.equal t.text m
                   && Token.is_op code.(i + 1) "."
                   && code.(i + 2).kind = Token.Ident
                   && String.equal code.(i + 2).text f)
                 raw_io_targets
          then flag t (t.text ^ "." ^ code.(i + 2).text)
          else if
            t.kind = Token.Ident
            && List.exists (String.equal t.text) raw_io_bare
            && not (i > 0 && Token.is_op code.(i - 1) ".")
          then flag t t.text)
        code;
      List.rev !out
  in
  {
    id;
    summary =
      "Out_channel.open_* / open_out* / Sys.rename in lib/service outside \
       journal.ml (route through Journal)";
    check;
  }

let all =
  [
    catch_all_rule;
    float_eq_rule;
    no_failwith_rule;
    partial_fn_rule;
    raw_io_rule;
    todo_format_rule;
    wall_clock_rule;
  ]

let find id = List.find_opt (fun r -> String.equal r.id id) all

let pp_violation ppf x =
  Format.fprintf ppf "%s:%d:%d: %s [%s]" x.file x.line x.col x.message x.rule
