type severity = Error | Warn

let severity_to_string = function Error -> "error" | Warn -> "warn"

let severity_of_string = function
  | "error" -> Some Error
  | "warn" | "warning" -> Some Warn
  | _ -> None

type violation = {
  rule : string;
  severity : severity;
  file : string;
  line : int;
  col : int;
  message : string;
}

type t = {
  id : string;
  summary : string;
  default_severity : severity;
  check : file:string -> Token.t array -> violation list;
}

type project = {
  pid : string;
  psummary : string;
  pdefault_severity : severity;
  pcheck : Index.t -> violation list;
}

let v ?(severity = Error) ~rule ~file (tok : Token.t) message =
  { rule; severity; file; line = tok.line; col = tok.col; message }

(* Does [path] live under directory [dir] (using / separators, any
   prefix)? Tolerates leading ./ and ../ segments. *)
let under dir path =
  let path = String.concat "/" (String.split_on_char '\\' path) in
  let needle = dir ^ "/" in
  let n = String.length path and k = String.length needle in
  let rec at i = i + k <= n && (String.sub path i k = needle || at (i + 1)) in
  at 0

(* --- float-eq ------------------------------------------------------ *)

(* Walk left over one operand (identifier chains, projections, balanced
   parens/brackets, literals) and return the index of the token just
   before it, or -1. Used to tell a comparison [x = 0.0] from a binding
   [let x = 0.0] or a record field [{ lambda = 0.0 }]. *)
let rec skip_operand_left (code : Token.t array) j =
  if j < 0 then -1
  else
    let t : Token.t = code.(j) in
    match t.kind with
    | Token.Ident | Token.Uident | Token.Int_lit | Token.Float_lit
    | Token.String_lit | Token.Char_lit ->
        skip_operand_left code (j - 1)
    | Token.Op when t.text = "." || t.text = "!" -> skip_operand_left code (j - 1)
    | Token.Op when t.text = ")" || t.text = "]" ->
        let opener = if t.text = ")" then "(" else "[" in
        let depth = ref 1 and i = ref (j - 1) in
        while !depth > 0 && !i >= 0 do
          if Token.is_op code.(!i) t.text then incr depth
          else if Token.is_op code.(!i) opener then decr depth;
          if !depth > 0 then decr i
        done;
        skip_operand_left code (!i - 1)
    | _ -> j

(* Token index [i] holds [=]; is it a binding / field / default rather
   than a comparison? *)
let equals_is_binding (code : Token.t array) i =
  let j = skip_operand_left code (i - 1) in
  if j < 0 then true
  else
    let p = code.(j) in
    match p.kind with
    | Token.Keyword -> (
        match p.text with
        | "let" | "and" | "rec" | "val" | "type" | "module" | "method"
        | "external" | "exception" | "for" | "with" ->
            true
        | _ -> false)
    | Token.Op -> (
        match p.text with
        | "{" | ";" | "?" | "~" -> true
        | "(" -> j > 0 && Token.is_op code.(j - 1) "?"
        | _ -> false)
    | _ -> false

let float_eq_rule =
  let id = "float-eq" in
  let check ~file toks =
    let code = Token.code_only toks in
    let out = ref [] in
    let float_at k =
      k >= 0 && k < Array.length code
      && (code.(k).kind = Token.Float_lit
         || (* a negated literal: [x = -1.0] lexes the sign separately *)
         (Token.is_op code.(k) "-"
         && k + 1 < Array.length code
         && code.(k + 1).kind = Token.Float_lit))
    in
    Array.iteri
      (fun i (t : Token.t) ->
        let cmp = Token.is_op t "=" || Token.is_op t "<>" in
        if cmp && (float_at (i - 1) || float_at (i + 1)) then
          if t.text = "<>" || not (equals_is_binding code i) then
            out :=
              v ~rule:id ~file t
                (Printf.sprintf
                   "float `%s` comparison against a literal; use \
                    Aa_numerics.Util.%s (tolerant compare)"
                   t.text
                   (if t.text = "=" then "feq" else "fne"))
              :: !out)
      code;
    List.rev !out
  in
  {
    id;
    summary = "float =/<> against a literal (use Util.feq / Util.fne)";
    default_severity = Error;
    check;
  }

(* --- partial-fn ----------------------------------------------------- *)

let partial_targets =
  [
    ("List", "hd", "match on the list (or carry the nonempty witness)");
    ("List", "nth", "index a precomputed array, or match");
    ("Option", "get", "pattern-match; the None case needs a decision");
    ( "Array",
      "get",
      "verify the bounds; in hot loops prefer a.(i), or Array.unsafe_get \
       with a proof comment" );
  ]

let partial_fn_rule =
  let id = "partial-fn" in
  let check ~file toks =
    let code = Token.code_only toks in
    let out = ref [] in
    Array.iteri
      (fun i (t : Token.t) ->
        if t.kind = Token.Uident && i + 2 < Array.length code then
          match
            List.find_opt
              (fun (m, f, _) ->
                String.equal t.text m
                && Token.is_op code.(i + 1) "."
                && code.(i + 2).kind = Token.Ident
                && String.equal code.(i + 2).text f)
              partial_targets
          with
          | Some (m, f, hint) ->
              out :=
                v ~rule:id ~file t
                  (Printf.sprintf "partial function %s.%s: %s" m f hint)
                :: !out
          | None -> ())
      code;
    List.rev !out
  in
  {
    id;
    summary = "unguarded partial function (List.hd/nth, Option.get, Array.get)";
    default_severity = Error;
    check;
  }

(* --- catch-all ------------------------------------------------------ *)

let catch_all_rule =
  let id = "catch-all" in
  let check ~file toks =
    let code = Token.code_only toks in
    let out = ref [] in
    (* (opener, brace depth at push); [with] pops the nearest opener at
       the same brace depth — a [with] at deeper brace depth is a record
       update [{ e with ... }] and pops nothing. *)
    let stack = ref [] in
    let braces = ref 0 in
    Array.iteri
      (fun i (t : Token.t) ->
        if Token.is_op t "{" then incr braces
        else if Token.is_op t "}" then braces := max 0 (!braces - 1)
        else if Token.is_kw t "try" then stack := (`Try, !braces) :: !stack
        else if Token.is_kw t "match" then stack := (`Match, !braces) :: !stack
        else if Token.is_kw t "with" then
          match !stack with
          | (opener, d) :: rest when d = !braces ->
              stack := rest;
              if opener = `Try then begin
                (* first handler pattern, skipping an optional leading | *)
                let j = if i + 1 < Array.length code && Token.is_op code.(i + 1) "|" then i + 2 else i + 1 in
                if
                  j + 1 < Array.length code
                  && code.(j).kind = Token.Ident
                  && String.equal code.(j).text "_"
                  && Token.is_op code.(j + 1) "->"
                then
                  out :=
                    v ~rule:id ~file t
                      "catch-all `try ... with _ ->` swallows Out_of_memory, \
                       Stack_overflow and typos alike; match the exceptions \
                       you mean"
                    :: !out
              end
          | _ -> ())
      code;
    List.rev !out
  in
  {
    id;
    summary = "try ... with _ -> (swallows every exception)";
    default_severity = Error;
    check;
  }

(* --- no-failwith ---------------------------------------------------- *)

let no_failwith_rule =
  let id = "no-failwith" in
  let check ~file toks =
    if not (under "lib/core" file || under "lib/alloc" file) then []
    else
      let code = Token.code_only toks in
      let out = ref [] in
      Array.iter
        (fun (t : Token.t) ->
          if t.kind = Token.Ident && String.equal t.text "failwith" then
            out :=
              v ~rule:id ~file t
                "failwith in library code: raise a typed exception (or \
                 Invalid_argument with context) so callers can match it"
              :: !out)
        code;
      List.rev !out
  in
  {
    id;
    summary = "failwith in lib/core or lib/alloc (use typed exceptions)";
    default_severity = Error;
    check;
  }

(* --- todo-format ---------------------------------------------------- *)

let todo_markers = [ "TODO"; "FIXME"; "XXX" ]

let todo_format_rule =
  let id = "todo-format" in
  let boundary text k =
    (* [k] starts a marker occurrence: require word boundaries around it *)
    let before_ok =
      k = 0
      ||
      let c = text.[k - 1] in
      not ((c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '_')
    in
    before_ok
  in
  let check ~file toks =
    let out = ref [] in
    Array.iter
      (fun (t : Token.t) ->
        if t.kind = Token.Comment then
          List.iter
            (fun marker ->
              let ml = String.length marker in
              let n = String.length t.text in
              let rec scan k =
                if k + ml > n then ()
                else if String.sub t.text k ml = marker && boundary t.text k then begin
                  let after = if k + ml < n then Some t.text.[k + ml] else None in
                  let word_char =
                    match after with
                    | Some c ->
                        (c >= 'A' && c <= 'Z')
                        || (c >= 'a' && c <= 'z')
                        || (c >= '0' && c <= '9')
                        || c = '_'
                    | None -> false
                  in
                  let tracked = word_char || after = Some '(' in
                  if not tracked then begin
                    (* line of the marker inside a possibly multi-line comment *)
                    let line = ref t.line in
                    String.iter (fun c -> if c = '\n' then incr line)
                      (String.sub t.text 0 k);
                    out :=
                      {
                        rule = id;
                        severity = Error;
                        file;
                        line = !line;
                        col = (if !line = t.line then t.col + k else 1);
                        message =
                          Printf.sprintf
                            "untracked %s: write %s(owner) or %s(#issue) so it \
                             can be burned down"
                            marker marker marker;
                      }
                      :: !out
                  end;
                  scan (k + ml)
                end
                else scan (k + 1)
              in
              scan 0)
            todo_markers)
      toks;
    List.rev !out
  in
  {
    id;
    summary = "TODO/FIXME/XXX without a (owner|#issue) tracking tag";
    default_severity = Error;
    check;
  }

(* --- wall-clock ------------------------------------------------------ *)

(* (module, function) pairs that read the wall clock directly. *)
let wall_clock_targets = [ ("Unix", "gettimeofday"); ("Unix", "time"); ("Sys", "time") ]

let wall_clock_rule =
  let id = "wall-clock" in
  let check ~file toks =
    (* Aa_obs.Clock is the one sanctioned wall-clock reader; everything
       else must go through it so clock reads stay out of the
       deterministic-replay paths and spans share one time base. *)
    if under "lib/obs" file then []
    else
      let code = Token.code_only toks in
      let out = ref [] in
      Array.iteri
        (fun i (t : Token.t) ->
          if
            t.kind = Token.Uident
            && i + 2 < Array.length code
            && List.exists
                 (fun (m, f) ->
                   String.equal t.text m
                   && Token.is_op code.(i + 1) "."
                   && code.(i + 2).kind = Token.Ident
                   && String.equal code.(i + 2).text f)
                 wall_clock_targets
          then
            out :=
              v ~rule:id ~file t
                (Printf.sprintf
                   "direct wall-clock read %s.%s: use Aa_obs.Clock (now_s/now_ns \
                    are monotonized, wall_s for absolute timestamps) so clock \
                    reads stay in one place"
                   t.text code.(i + 2).text)
              :: !out)
        code;
      List.rev !out
  in
  {
    id;
    summary = "Unix.gettimeofday/Unix.time/Sys.time outside lib/obs (use Aa_obs.Clock)";
    default_severity = Error;
    check;
  }

(* --- raw-io ---------------------------------------------------------- *)

(* Module.function pairs that write files or rename paths directly. *)
let raw_io_targets =
  [ ("Out_channel", "open_text"); ("Out_channel", "open_bin");
    ("Out_channel", "open_gen"); ("Sys", "rename") ]

(* Bare stdlib writers (no module prefix). *)
let raw_io_bare = [ "open_out"; "open_out_bin"; "open_out_gen" ]

let raw_io_rule =
  let id = "raw-io" in
  let check ~file toks =
    (* Journal.ml owns the durability story of lib/service — framing,
       fsync policy, tmp+rename atomicity, torn-tail repair. Any other
       module opening output files or renaming paths there is bypassing
       it, and its writes won't survive the crash tests. *)
    if not (under "lib/service" file) || Filename.basename file = "journal.ml"
    then []
    else
      let code = Token.code_only toks in
      let out = ref [] in
      let flag (t : Token.t) what =
        out :=
          v ~rule:id ~file t
            (Printf.sprintf
               "raw file I/O %s in lib/service: durability (framing, fsync, \
                atomic rename) lives in Journal; route writes through it" what)
          :: !out
      in
      Array.iteri
        (fun i (t : Token.t) ->
          if
            t.kind = Token.Uident
            && i + 2 < Array.length code
            && List.exists
                 (fun (m, f) ->
                   String.equal t.text m
                   && Token.is_op code.(i + 1) "."
                   && code.(i + 2).kind = Token.Ident
                   && String.equal code.(i + 2).text f)
                 raw_io_targets
          then flag t (t.text ^ "." ^ code.(i + 2).text)
          else if
            t.kind = Token.Ident
            && List.exists (String.equal t.text) raw_io_bare
            && not (i > 0 && Token.is_op code.(i - 1) ".")
          then flag t t.text)
        code;
      List.rev !out
  in
  {
    id;
    summary =
      "Out_channel.open_* / open_out* / Sys.rename in lib/service outside \
       journal.ml (route through Journal)";
    default_severity = Error;
    check;
  }

(* --- pool-mutation --------------------------------------------------- *)

let is_op = Token.is_op

let is_opener (t : Token.t) = is_op t "(" || is_op t "[" || is_op t "{"

(* Worker closures handed to the domain pool run concurrently; the
   determinism contract allows exactly four mutation shapes inside them:
   locally-bound state, Atomic operations, registered Algo2.Scratch
   buffers, and disjoint per-index array slots. Everything else is a
   cross-domain race that breaks bit-identical replay. *)

let pool_entry_points = [ "run"; "map_chunked" ]

(* (module, function) pairs that mutate their first argument. *)
let mutator_targets =
  [
    ("Array", [ "set"; "unsafe_set"; "fill"; "blit" ]);
    ("Bytes", [ "set"; "unsafe_set"; "fill"; "blit" ]);
    ("Hashtbl", [ "add"; "replace"; "remove"; "clear"; "reset"; "filter_map_inplace" ]);
    ("Buffer",
     [ "add_char"; "add_string"; "add_bytes"; "add_substring"; "add_buffer";
       "clear"; "reset"; "truncate" ]);
    ("Queue", [ "add"; "push"; "pop"; "take"; "clear"; "transfer" ]);
    ("Stack", [ "push"; "pop"; "clear" ]);
  ]

let is_mutator m f =
  match List.assoc_opt m mutator_targets with
  | Some fns -> List.exists (String.equal f) fns
  | None -> false

let pool_mutation_rule =
  let id = "pool-mutation" in
  let check ~file toks =
    let syn = Syntax.make toks in
    let code = Syntax.code syn in
    let n = Array.length code in
    let out = ref [] in
    let is_lit (t : Token.t) =
      match t.kind with
      | Token.Int_lit | Token.Float_lit | Token.String_lit | Token.Char_lit -> true
      | _ -> false
    in
    (* One juxtaposed operand starting at [j]: a bracketed group, a
       literal, a [!]-deref, or an identifier chain with [.x] / [.(e)] /
       [.[e]] projections. Returns one past its end ([j] if none). *)
    let rec operand_end j =
      if j >= n then j
      else
        let t : Token.t = code.(j) in
        if is_opener t then
          let c = Syntax.matching_close syn j in
          if c >= n then n else c + 1
        else if is_lit t then j + 1
        else if is_op t "!" then (
          let e = operand_end (j + 1) in
          if e = j + 1 then j else e)
        else if t.kind = Token.Ident || t.kind = Token.Uident then begin
          let k = ref (j + 1) in
          let continue_ = ref true in
          while !continue_ && !k < n do
            if is_op code.(!k) "." && !k + 1 < n then begin
              let nx : Token.t = code.(!k + 1) in
              if nx.kind = Token.Ident || nx.kind = Token.Uident then k := !k + 2
              else if is_op nx "(" || is_op nx "[" then begin
                let c = Syntax.matching_close syn (!k + 1) in
                k := (if c >= n then n else c + 1)
              end
              else continue_ := false
            end
            else continue_ := false
          done;
          !k
        end
        else j
    in
    (* Argument groups of a call whose head ends just before [start]:
       labelled args ([~x], [~x:e], [?x:e]) and positional operands, up
       to the first token that cannot start an argument. *)
    let parse_args start =
      let args = ref [] in
      let j = ref start in
      let continue_ = ref true in
      while !continue_ && !j < n do
        let t : Token.t = code.(!j) in
        if is_op t "~" || is_op t "?" then begin
          if !j + 1 < n && code.(!j + 1).kind = Token.Ident then
            if !j + 2 < n && is_op code.(!j + 2) ":" then begin
              let e = operand_end (!j + 3) in
              if e = !j + 3 then continue_ := false
              else begin
                args := (!j + 3, e) :: !args;
                j := e
              end
            end
            else j := !j + 2 (* punned label *)
          else continue_ := false
        end
        else
          let e = operand_end !j in
          if e = !j then continue_ := false
          else begin
            args := (!j, e) :: !args;
            j := e
          end
      done;
      List.rev !args
    in
    (* Is [root]'s binding a registered scratch buffer (rhs mentions
       [Scratch.create])? *)
    let scratch_bound root at =
      match Syntax.def_before syn root at with
      | None -> false
      | Some d ->
          let found = ref false in
          for k = d.Syntax.rhs_lo to min d.Syntax.rhs_hi (Array.length code) - 1 do
            if
              code.(k).kind = Token.Uident
              && String.equal code.(k).text "Scratch"
              && k + 2 < n
              && is_op code.(k + 1) "."
              && code.(k + 2).kind = Token.Ident
              && String.equal code.(k + 2).text "create"
            then found := true
          done;
          !found
    in
    (* First lowercase identifier in [lo, hi) that is not a projection
       component — the root of an access path like [t.busy_ns.(i)]. *)
    let root_in lo hi =
      let r = ref None in
      let k = ref lo in
      while !r = None && !k < hi && !k < n do
        if code.(!k).kind = Token.Ident && not (!k > 0 && is_op code.(!k - 1) ".") then
          r := Some (code.(!k), !k);
        incr k
      done;
      !r
    in
    (* For an [<-] at [i]: if the lvalue ends in a [.()] / [.[]]
       subscript, the token range of the subscript's contents. *)
    let slot_subscript i =
      if i = 0 then None
      else
        let last : Token.t = code.(i - 1) in
        if not (is_op last ")" || is_op last "]") then None
        else begin
          (* walk left to the matching opener *)
          let opener = if is_op last ")" then "(" else "[" in
          let depth = ref 1 and k = ref (i - 2) in
          while !depth > 0 && !k >= 0 do
            if Token.is_op code.(!k) last.Token.text then incr depth
            else if Token.is_op code.(!k) opener then decr depth;
            if !depth > 0 then decr k
          done;
          if !k > 0 && is_op code.(!k - 1) "." then Some (!k + 1, i - 1) else None
        end
    in
    let analyze_body ~extra_locals ~body_lo ~body_hi =
      let body_hi = min body_hi n in
      let locals = Syntax.locals_in syn ~lo:body_lo ~hi:body_hi in
      List.iter (fun p -> Hashtbl.replace locals p ()) extra_locals;
      let local name = Hashtbl.mem locals name in
      let flag (tok : Token.t) what root =
        out :=
          v ~rule:id ~file tok
            (Printf.sprintf
               "%s mutates `%s`, which is captured from outside this pool \
                worker closure; cross-domain mutation breaks deterministic \
                replay — use a local accumulator, an Atomic, a registered \
                Scratch buffer, or a disjoint per-index slot"
               what root)
          :: !out
      in
      let k = ref body_lo in
      while !k < body_hi do
        let t : Token.t = code.(!k) in
        (if is_op t "<-" then begin
           let before = skip_operand_left code (!k - 1) in
           match root_in (before + 1) !k with
           | Some (rt, _) when not (local rt.Token.text) ->
               if not (scratch_bound rt.Token.text !k) then begin
                 (* disjoint-slot exemption: subscript made of
                    closure-local identifiers *)
                 let slot_ok =
                   match slot_subscript !k with
                   | None -> false
                   | Some (lo, hi) ->
                       let idents = ref 0 and foreign = ref false in
                       for p = lo to hi - 1 do
                         if code.(p).kind = Token.Ident && not (is_op code.(p - 1) ".")
                         then begin
                           incr idents;
                           if not (local code.(p).text) then foreign := true
                         end
                       done;
                       !idents > 0 && not !foreign
                 in
                 if not slot_ok then flag rt "assignment `<-`" rt.Token.text
               end
           | _ -> ()
         end
         else if is_op t ":=" then begin
           let before = skip_operand_left code (!k - 1) in
           match root_in (before + 1) !k with
           | Some (rt, _)
             when (not (local rt.Token.text)) && not (scratch_bound rt.Token.text !k) ->
               flag rt "assignment `:=`" rt.Token.text
           | _ -> ()
         end
         else if
           t.kind = Token.Ident
           && (String.equal t.text "incr" || String.equal t.text "decr")
           && not (!k > 0 && is_op code.(!k - 1) ".")
         then begin
           match root_in (!k + 1) (operand_end (!k + 1)) with
           | Some (rt, _)
             when (not (local rt.Token.text)) && not (scratch_bound rt.Token.text !k) ->
               flag t (Printf.sprintf "`%s`" t.text) rt.Token.text
           | _ -> ()
         end
         else if
           t.kind = Token.Uident
           && (not (String.equal t.text "Atomic"))
           && !k + 2 < n
           && is_op code.(!k + 1) "."
           && code.(!k + 2).kind = Token.Ident
           && is_mutator t.text code.(!k + 2).text
         then begin
           match root_in (!k + 3) (operand_end (!k + 3)) with
           | Some (rt, _)
             when (not (local rt.Token.text)) && not (scratch_bound rt.Token.text !k) ->
               flag t
                 (Printf.sprintf "`%s.%s`" t.text code.(!k + 2).text)
                 rt.Token.text
           | _ -> ()
         end);
        incr k
      done
    in
    (* Find qualified [Pool.run] / [Pool.map_chunked] call sites. *)
    Array.iteri
      (fun i (t : Token.t) ->
        if
          t.kind = Token.Uident
          && String.equal t.text "Pool"
          && i + 2 < n
          && is_op code.(i + 1) "."
          && code.(i + 2).kind = Token.Ident
          && List.exists (String.equal code.(i + 2).text) pool_entry_points
        then begin
          let args = parse_args (i + 3) in
          (* literal closures anywhere in the argument list *)
          List.iter
            (fun (lo, hi) ->
              match Syntax.closure_at syn ~lo ~hi with
              | Some c ->
                  analyze_body ~extra_locals:c.Syntax.params ~body_lo:c.Syntax.body_lo
                    ~body_hi:c.Syntax.body_hi
              | None -> ())
            args;
          (* a bare-identifier worker in final position: chase its
             definition and analyze the rhs as the closure body *)
          match List.rev args with
          | (lo, hi) :: _
            when hi = lo + 1
                 && code.(lo).kind = Token.Ident
                 && Syntax.closure_at syn ~lo ~hi = None -> (
              match Syntax.def_before syn code.(lo).text lo with
              | Some d when d.Syntax.params <> [] ->
                  analyze_body ~extra_locals:d.Syntax.params ~body_lo:d.Syntax.rhs_lo
                    ~body_hi:d.Syntax.rhs_hi
              | _ -> ())
          | _ -> ()
        end)
      code;
    List.rev !out
  in
  {
    id;
    summary =
      "mutation of captured non-Atomic/non-Scratch state inside a \
       Pool.run/map_chunked worker closure";
    default_severity = Error;
    check;
  }

(* --- unguarded-div --------------------------------------------------- *)

(* Float division in the numeric kernels whose divisor is not visibly
   guarded against zero. A silent NaN/inf propagates through utilities
   and allocation scores and voids the paper's alpha-approximation
   guarantee, so the guard must be in the same top-level definition. *)

let guard_fns = [ "feq"; "fne"; "feq_rel"; "approx_equal"; "max"; "min"; "abs"; "is_nan" ]
let guard_cmp_after = [ ">"; ">="; "<"; "<="; "<>"; "=" ]
let guard_cmp_before = [ ">"; ">="; "<"; "<="; "<>" ]

let unguarded_div_rule =
  let id = "unguarded-div" in
  let check ~file toks =
    if not (under "lib/numerics" file || under "lib/alloc" file) then []
    else begin
      let syn = Syntax.make toks in
      let code = Syntax.code syn in
      let n = Array.length code in
      let out = ref [] in
      let is_lit (t : Token.t) =
        t.kind = Token.Int_lit || t.kind = Token.Float_lit
      in
      (* One simple group: bracketed, literal, or ident chain with
         projections. *)
      let group_end j =
        if j >= n then j
        else
          let t : Token.t = code.(j) in
          if is_opener t then (
            let c = Syntax.matching_close syn j in
            if c >= n then n else c + 1)
          else if is_lit t then j + 1
          else if t.kind = Token.Ident || t.kind = Token.Uident then begin
            let k = ref (j + 1) in
            let continue_ = ref true in
            while !continue_ && !k < n do
              if is_op code.(!k) "." && !k + 1 < n then begin
                let nx : Token.t = code.(!k + 1) in
                if nx.kind = Token.Ident || nx.kind = Token.Uident then k := !k + 2
                else if is_op nx "(" || is_op nx "[" then begin
                  let c = Syntax.matching_close syn (!k + 1) in
                  k := (if c >= n then n else c + 1)
                end
                else continue_ := false
              end
              else continue_ := false
            done;
            !k
          end
          else j
      in
      (* The divisor expression right of a [/.] at [i]: an optional
         prefix sign, then up to three juxtaposed groups (covers
         [float_of_int (k - 1)]-style applications). *)
      let divisor_range i =
        let j = ref (i + 1) in
        if !j < n && (is_op code.(!j) "-" || is_op code.(!j) "-.") then incr j;
        let lo = !j in
        let groups = ref 0 in
        let continue_ = ref true in
        while !continue_ && !groups < 3 do
          let e = group_end !j in
          if e = !j then continue_ := false
          else begin
            j := e;
            incr groups
          end
        done;
        (lo, !j)
      in
      let nonzero_literal lo hi =
        lo < hi
        && is_lit code.(lo)
        && hi = lo + 1
        &&
        match float_of_string_opt code.(lo).Token.text with
        | Some f -> f <> 0.0 (* aa-lint: ignore float-eq *)
        | None -> true
      in
      for i = 0 to n - 1 do
        if is_op code.(i) "/." then begin
          let lo, hi = divisor_range i in
          let hi = min hi n in
          if not (nonzero_literal lo hi) then begin
            (* candidate identifiers inside the divisor (including
               within parens), plus inline safety markers *)
            let idents = ref [] in
            let inline_safe = ref false in
            for k = lo to hi - 1 do
              let t : Token.t = code.(k) in
              if t.kind = Token.Ident then begin
                if List.exists (String.equal t.text) guard_fns
                   || String.equal t.text "eps" || String.equal t.text "epsilon"
                then inline_safe := true
                else idents := t.text :: !idents
              end
            done;
            if not !inline_safe then begin
              let ilo, ihi = Syntax.item_range syn i in
              let guarded name =
                let ok = ref false in
                for k = ilo to min ihi n - 1 do
                  if
                    (k < lo || k >= hi)
                    && code.(k).kind = Token.Ident
                    && String.equal code.(k).text name
                  then begin
                    (* comparison on either side *)
                    (if k + 1 < n && code.(k + 1).kind = Token.Op then
                       let op = code.(k + 1).Token.text in
                       if
                         List.exists (String.equal op) guard_cmp_after
                         && not
                              (String.equal op "="
                              && equals_is_binding code (k + 1))
                       then ok := true);
                    (if k > 0 && code.(k - 1).kind = Token.Op
                        && List.exists (String.equal code.(k - 1).Token.text) guard_cmp_before
                     then ok := true);
                    (* guard-function application within a few tokens *)
                    for d = 1 to 4 do
                      if
                        k - d >= ilo
                        && code.(k - d).kind = Token.Ident
                        && List.exists (String.equal code.(k - d).Token.text) guard_fns
                      then ok := true
                    done
                  end
                done;
                !ok
              in
              let any_guarded = List.exists guarded !idents in
              if not any_guarded then
                out :=
                  v ~rule:id ~file code.(i)
                    "float division whose divisor has no zero-guard in this \
                     definition; compare with Util.fne / clamp with `max eps` \
                     before dividing (silent NaN voids the alpha guarantee)"
                  :: !out
            end
          end
        end
      done;
      List.rev !out
    end
  in
  {
    id;
    summary =
      "float division without a nearby divisor zero-guard (lib/numerics, lib/alloc)";
    default_severity = Error;
    check;
  }

(* --- unused-export (project rule) ------------------------------------ *)

let unused_export_rule =
  let pid = "unused-export" in
  let pcheck index =
    List.filter_map
      (fun (e : Index.export) ->
        if Index.used index e then None
        else
          Some
            {
              rule = pid;
              severity = Warn;
              file = e.Index.e_file;
              line = e.Index.e_line;
              col = e.Index.e_col;
              message =
                Printf.sprintf
                  "`%s.%s` is exported by the .mli but never referenced \
                   outside its module; drop the export (or the value) to keep \
                   the public surface honest"
                  e.Index.e_module e.Index.e_name;
            })
      (Index.exports index)
  in
  {
    pid;
    psummary = ".mli export never referenced outside its module";
    pdefault_severity = Warn;
    pcheck;
  }

let all =
  [
    catch_all_rule;
    float_eq_rule;
    no_failwith_rule;
    partial_fn_rule;
    pool_mutation_rule;
    raw_io_rule;
    todo_format_rule;
    unguarded_div_rule;
    wall_clock_rule;
  ]

let project_all = [ unused_export_rule ]

let all_ids = List.map (fun r -> r.id) all @ List.map (fun p -> p.pid) project_all

let find id = List.find_opt (fun r -> String.equal r.id id) all
let find_project id = List.find_opt (fun p -> String.equal p.pid id) project_all

let pp_violation ppf x =
  Format.fprintf ppf "%s:%d:%d: %s [%s]" x.file x.line x.col x.message x.rule
