(** Rendering lint outcomes for people and machines.

    [Text] is the grep/editor-friendly one-line-per-finding format the
    driver has always printed. [Json] is a stable machine-readable
    envelope ([aa-lint/1]) with per-severity counts. [Sarif] is SARIF
    2.1.0, the interchange format GitHub code scanning and most
    editors ingest — fresh findings only, with rule metadata from
    {!Rules.all} and {!Rules.project_all}. *)

type format = Text | Json | Sarif

val format_of_string : string -> format option
(** ["text"] / ["json"] / ["sarif"] (case-insensitive). *)

val render : format -> Lint.outcome -> string
(** The full report for stdout. [Text] lists fresh findings one per
    line (warnings tagged [(warn)]) and is empty when there are none;
    [Json] and [Sarif] always emit a complete document, trailing
    newline included. *)
