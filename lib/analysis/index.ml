(* Def/use index over .mli exports. All matching is lexical; see the
   .mli for the over-approximation contract. *)

type export = {
  e_module : string;
  e_name : string;
  e_file : string;
  e_line : int;
  e_col : int;
}

type t = {
  exports_ : export list;
  (* (module, value) -> file-modules that reference it qualified *)
  qualified : (string * string, (string, unit) Hashtbl.t) Hashtbl.t;
  (* module -> file-modules that open it *)
  opens : (string, (string, unit) Hashtbl.t) Hashtbl.t;
  (* module -> file-modules that include it *)
  includes : (string, (string, unit) Hashtbl.t) Hashtbl.t;
  (* file-module -> bare lowercase identifiers it mentions *)
  bare : (string, (string, unit) Hashtbl.t) Hashtbl.t;
}

let module_of_path path =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename path))

let is_op (t : Token.t) s = t.kind = Token.Op && String.equal t.text s
let is_kw (t : Token.t) s = t.kind = Token.Keyword && String.equal t.text s

let tbl_add tbl key sub =
  let inner =
    match Hashtbl.find_opt tbl key with
    | Some h -> h
    | None ->
        let h = Hashtbl.create 4 in
        Hashtbl.replace tbl key h;
        h
  in
  Hashtbl.replace inner sub ()

let tbl_mem tbl key sub =
  match Hashtbl.find_opt tbl key with Some h -> Hashtbl.mem h sub | None -> false

(* --- export collection (one .mli) ------------------------------------ *)

(* Walk the signature maintaining the enclosing-module stack. [`Skip]
   frames mark [module type ... = sig] bodies, whose vals are interface
   requirements rather than exports. *)
let collect_exports ~path code out =
  let n = Array.length code in
  let file_mod = module_of_path path in
  let stack = ref [] in
  (* the most recent [module X] / [module type X] head awaiting its
     sig/struct opener *)
  let pending = ref None in
  let innermost () =
    let rec go = function
      | `Skip :: _ -> None
      | `Mod m :: _ -> Some m
      | `Anon :: rest -> go rest
      | [] -> Some file_mod
    in
    go !stack
  in
  for i = 0 to n - 1 do
    let t : Token.t = code.(i) in
    if is_kw t "module" then begin
      if i + 1 < n && is_kw code.(i + 1) "type" then pending := Some `Skip
      else
        match
          (* skip past [rec] to the module name *)
          let j = if i + 1 < n && is_kw code.(i + 1) "rec" then i + 2 else i + 1 in
          if j < n && code.(j).kind = Token.Uident then Some code.(j).text else None
        with
        | Some name -> pending := Some (`Mod name)
        | None -> pending := Some `Anon
    end
    else if is_kw t "sig" || is_kw t "struct" || is_kw t "object" then begin
      stack := Option.value !pending ~default:`Anon :: !stack;
      pending := None
    end
    else if is_kw t "begin" then stack := `Anon :: !stack
    else if is_kw t "end" then begin
      (match !stack with _ :: rest -> stack := rest | [] -> ());
      pending := None
    end
    else if (is_kw t "val" || is_kw t "external") && i + 1 < n then begin
      match innermost () with
      | None -> () (* inside a module type *)
      | Some m ->
          let d = code.(i + 1) in
          if d.kind = Token.Ident then
            out :=
              { e_module = m; e_name = d.text; e_file = path; e_line = d.line; e_col = d.col }
              :: !out
    end
  done

(* --- use collection (any file) ---------------------------------------- *)

let collect_uses ~path code t =
  let n = Array.length code in
  let file_mod = module_of_path path in
  let bare =
    match Hashtbl.find_opt t.bare file_mod with
    | Some h -> h
    | None ->
        let h = Hashtbl.create 64 in
        Hashtbl.replace t.bare file_mod h;
        h
  in
  (* single-file [module X = M] aliases, resolved when recording uses *)
  let aliases = Hashtbl.create 4 in
  let resolve m = Option.value (Hashtbl.find_opt aliases m) ~default:m in
  for i = 0 to n - 1 do
    let t0 : Token.t = code.(i) in
    if t0.kind = Token.Ident && not (i > 0 && is_op code.(i - 1) ".") then
      Hashtbl.replace bare t0.text ()
    else if t0.kind = Token.Uident then begin
      (* qualified value use: [M.f] with f lowercase *)
      if i + 2 < n && is_op code.(i + 1) "." then begin
        if code.(i + 2).kind = Token.Ident then
          tbl_add t.qualified (resolve t0.text, code.(i + 2).text) file_mod
        else if is_op code.(i + 2) "(" then
          (* local open [M.( ... )] *)
          tbl_add t.opens (resolve t0.text) file_mod
      end
    end
    else if is_kw t0 "open" || is_kw t0 "include" then begin
      (* last component of the path being opened/included *)
      let j = ref (i + 1) in
      let last = ref None in
      let continue_ = ref true in
      while !continue_ && !j < n do
        if code.(!j).kind = Token.Uident then begin
          last := Some code.(!j).text;
          if !j + 1 < n && is_op code.(!j + 1) "." then j := !j + 2 else continue_ := false
        end
        else continue_ := false
      done;
      match !last with
      | Some m ->
          let m = resolve m in
          tbl_add (if is_kw t0 "open" then t.opens else t.includes) m file_mod
      | None -> ()
    end
    else if
      is_kw t0 "module"
      && i + 3 < n
      && code.(i + 1).kind = Token.Uident
      && is_op code.(i + 2) "="
      && code.(i + 3).kind = Token.Uident
    then begin
      (* [module X = Path.To.M]: record the alias to the path's tail *)
      let j = ref (i + 3) in
      let last = ref code.(i + 3).text in
      while !j + 2 < n && is_op code.(!j + 1) "." && code.(!j + 2).kind = Token.Uident do
        j := !j + 2;
        last := code.(!j).text
      done;
      Hashtbl.replace aliases code.(i + 1).text !last
    end
  done

let build ~targets ~uses =
  let t =
    {
      exports_ = [];
      qualified = Hashtbl.create 256;
      opens = Hashtbl.create 32;
      includes = Hashtbl.create 8;
      bare = Hashtbl.create 64;
    }
  in
  let out = ref [] in
  List.iter
    (fun (path, toks) ->
      let code = Token.code_only toks in
      if Filename.check_suffix path ".mli" then collect_exports ~path code out;
      collect_uses ~path code t)
    targets;
  List.iter (fun (path, toks) -> collect_uses ~path (Token.code_only toks) t) uses;
  { t with exports_ = List.rev !out }

let exports t = t.exports_

let used t e =
  let own = module_of_path e.e_file in
  let other tbl key =
    match Hashtbl.find_opt tbl key with
    | None -> false
    | Some h -> Hashtbl.fold (fun m () acc -> acc || not (String.equal m own)) h false
  in
  other t.qualified (e.e_module, e.e_name)
  || other t.includes e.e_module
  ||
  match Hashtbl.find_opt t.opens e.e_module with
  | None -> false
  | Some openers ->
      Hashtbl.fold
        (fun m () acc ->
          acc
          || ((not (String.equal m own)) && tbl_mem t.bare m e.e_name))
        openers false
