type outcome = {
  fresh : Rules.violation list;
  baselined : Rules.violation list;
  suppressed : int;
  stale_baseline : string list;
  files : int;
}

(* --- suppression comments ------------------------------------------- *)

type suppression = All | Only of string list

let is_id_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '-' || c = '_'

(* Parse the id list following an [aa-lint: ignore] marker: ids separated
   by commas/spaces, terminated by a double dash (rationale), the comment
   closer, or end of text. *)
let parse_ids text from =
  let n = String.length text in
  let rec go i acc =
    if i >= n then acc
    else if i + 1 < n && text.[i] = '-' && text.[i + 1] = '-' then acc
    else if i + 1 < n && text.[i] = '*' && text.[i + 1] = ')' then acc
    else if is_id_char text.[i] then begin
      let j = ref i in
      while !j < n && is_id_char text.[!j] do incr j done;
      go !j (String.sub text i (!j - i) :: acc)
    end
    else if text.[i] = ',' || text.[i] = ' ' || text.[i] = '\t' || text.[i] = '\n' then
      go (i + 1) acc
    else acc
  in
  match go from [] with
  | ids when List.mem "all" ids -> All
  | [] -> All (* bare [aa-lint: ignore] silences the whole line *)
  | ids -> Only ids

let find_substring text needle =
  let n = String.length text and k = String.length needle in
  let rec at i = if i + k > n then None else if String.sub text i k = needle then Some i else at (i + 1) in
  at 0

(* Map line -> suppression, from the comment tokens of one file. *)
let suppressions toks =
  let tbl = Hashtbl.create 8 in
  let add line sup =
    match (Hashtbl.find_opt tbl line, sup) with
    | Some All, _ | _, All -> Hashtbl.replace tbl line All
    | Some (Only a), Only b -> Hashtbl.replace tbl line (Only (a @ b))
    | None, s -> Hashtbl.replace tbl line s
  in
  Array.iter
    (fun (t : Token.t) ->
      if t.kind = Token.Comment then
        match find_substring t.text "aa-lint: ignore-next" with
        | Some i ->
            add (Token.end_line t + 1) (parse_ids t.text (i + String.length "aa-lint: ignore-next"))
        | None -> (
            match find_substring t.text "aa-lint: ignore" with
            | Some i ->
                let sup = parse_ids t.text (i + String.length "aa-lint: ignore") in
                for line = t.line to Token.end_line t do
                  add line sup
                done
            | None -> ()))
    toks;
  tbl

let suppressed_at tbl (x : Rules.violation) =
  match Hashtbl.find_opt tbl x.line with
  | Some All -> true
  | Some (Only ids) -> List.mem x.rule ids
  | None -> false

(* --- paths and fingerprints ----------------------------------------- *)

let normalize_path path =
  let parts =
    String.split_on_char '/' (String.concat "/" (String.split_on_char '\\' path))
  in
  let rec strip = function
    | ("." | ".." | "") :: rest -> strip rest
    | rest -> rest
  in
  String.concat "/" (strip parts)

let fingerprint ~file ~line_text rule_id =
  let key =
    String.concat "\x00" [ rule_id; normalize_path file; String.trim line_text ]
  in
  Digest.to_hex (Digest.string key)

(* --- filesystem walk ------------------------------------------------ *)

let rec walk acc path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.fold_left
         (fun acc entry ->
           if entry = "_build" || (String.length entry > 0 && entry.[0] = '.') then acc
           else walk acc (Filename.concat path entry))
         acc
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let ml_files_under path =
  if Sys.file_exists path && not (Sys.is_directory path) then [ path ]
  else List.rev (walk [] path)

let rec walk_src acc path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.fold_left
         (fun acc entry ->
           if entry = "_build" || (String.length entry > 0 && entry.[0] = '.') then acc
           else walk_src acc (Filename.concat path entry))
         acc
  else if Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli" then
    path :: acc
  else acc

let source_files_under path =
  if Sys.file_exists path && not (Sys.is_directory path) then [ path ]
  else List.rev (walk_src [] path)

(* --- running -------------------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let check_tokens ?(rules = Rules.all) ~file toks =
  let raw = List.concat_map (fun (r : Rules.t) -> r.check ~file toks) rules in
  let tbl = suppressions toks in
  let kept, dropped = List.partition (fun x -> not (suppressed_at tbl x)) raw in
  (kept, List.length dropped)

let check_source ?rules ~file contents =
  fst (check_tokens ?rules ~file (Token.scan contents))

let load_baseline path =
  if not (Sys.file_exists path) then []
  else
    let contents = read_file path in
    String.split_on_char '\n' contents
    |> List.filter_map (fun line ->
           let line = String.trim line in
           if line = "" || line.[0] = '#' then None
           else
             match String.split_on_char ' ' line with
             | _rule :: count :: fp :: _path ->
                 Option.map (fun c -> (fp, c)) (int_of_string_opt count)
             | _ -> None)

let baseline_entries pairs =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (line_text, (x : Rules.violation)) ->
      let fp = fingerprint ~file:x.file ~line_text x.rule in
      let key = (x.rule, normalize_path x.file, fp) in
      Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key)))
    pairs;
  Hashtbl.fold (fun (rule, path, fp) count acc -> Printf.sprintf "%s %d %s %s" rule count fp path :: acc) tbl []
  |> List.sort String.compare

let run_with_lines ?rules ?(project = Rules.project_all) ?(severities = [])
    ?(use_paths = []) ?(baseline = []) paths =
  let files = List.concat_map source_files_under paths in
  (* scan every target once; tokens feed both the per-file rules and the
     cross-module index *)
  let scanned =
    List.map
      (fun file ->
        let contents = read_file file in
        (file, contents, Token.scan contents))
      files
  in
  (* project-rule violations, grouped by file *)
  let project_viols = Hashtbl.create 16 in
  if project <> [] then begin
    let in_targets = Hashtbl.create 64 in
    List.iter (fun f -> Hashtbl.replace in_targets (normalize_path f) ()) files;
    let use_files =
      List.concat_map source_files_under use_paths
      |> List.filter (fun f -> not (Hashtbl.mem in_targets (normalize_path f)))
    in
    let uses = List.map (fun f -> (f, Token.scan (read_file f))) use_files in
    let index =
      Index.build ~targets:(List.map (fun (f, _, toks) -> (f, toks)) scanned) ~uses
    in
    List.iter
      (fun (p : Rules.project) ->
        List.iter
          (fun (x : Rules.violation) ->
            let key = normalize_path x.file in
            Hashtbl.replace project_viols key
              (x :: Option.value ~default:[] (Hashtbl.find_opt project_viols key)))
          (p.pcheck index))
      project
  end;
  let override (x : Rules.violation) =
    match List.assoc_opt x.rule severities with
    | Some s -> { x with Rules.severity = s }
    | None -> x
  in
  let budget = Hashtbl.create 16 in
  List.iter
    (fun (fp, count) ->
      Hashtbl.replace budget fp (count + Option.value ~default:0 (Hashtbl.find_opt budget fp)))
    baseline;
  let suppressed = ref 0 in
  let with_lines = ref [] in
  let fresh = ref [] and baselined = ref [] in
  List.iter
    (fun (file, contents, toks) ->
      let lines = Array.of_list (String.split_on_char '\n' contents) in
      (* per-file rules run on .ml implementations; project rules may
         attach findings to any target (typically the .mli) *)
      let raw =
        if Filename.check_suffix file ".ml" then
          List.concat_map
            (fun (r : Rules.t) -> r.Rules.check ~file toks)
            (Option.value rules ~default:Rules.all)
        else []
      in
      let from_project =
        List.rev
          (Option.value ~default:[] (Hashtbl.find_opt project_viols (normalize_path file)))
      in
      let tbl = suppressions toks in
      let kept, dropped =
        List.partition (fun x -> not (suppressed_at tbl x)) (raw @ from_project)
      in
      let kept =
        List.map override kept
        |> List.sort (fun (a : Rules.violation) b ->
               compare (a.line, a.col) (b.line, b.col))
      in
      suppressed := !suppressed + List.length dropped;
      List.iter
        (fun (x : Rules.violation) ->
          let line_text =
            if x.line >= 1 && x.line <= Array.length lines then lines.(x.line - 1) else ""
          in
          with_lines := (line_text, x) :: !with_lines;
          let fp = fingerprint ~file:x.file ~line_text x.rule in
          match Hashtbl.find_opt budget fp with
          | Some n when n > 0 ->
              Hashtbl.replace budget fp (n - 1);
              baselined := x :: !baselined
          | _ -> fresh := x :: !fresh)
        kept)
    scanned;
  let stale =
    Hashtbl.fold (fun fp n acc -> if n > 0 then fp :: acc else acc) budget []
    |> List.sort String.compare
  in
  ( {
      fresh = List.rev !fresh;
      baselined = List.rev !baselined;
      suppressed = !suppressed;
      stale_baseline = stale;
      files = List.length files;
    },
    List.rev !with_lines )

let run ?rules ?project ?severities ?use_paths ?baseline paths =
  fst (run_with_lines ?rules ?project ?severities ?use_paths ?baseline paths)
