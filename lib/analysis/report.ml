type format = Text | Json | Sarif

let format_of_string s =
  match String.lowercase_ascii s with
  | "text" -> Some Text
  | "json" -> Some Json
  | "sarif" -> Some Sarif
  | _ -> None

(* --- JSON plumbing (stdlib-only, same idiom as Aa_obs.Trace) --------- *)

let js s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let violation_json (x : Rules.violation) =
  Printf.sprintf "{\"rule\":%s,\"severity\":%s,\"file\":%s,\"line\":%d,\"col\":%d,\"message\":%s}"
    (js x.rule)
    (js (Rules.severity_to_string x.severity))
    (js (Lint.normalize_path x.file))
    x.line x.col (js x.message)

let count_severity sev xs =
  List.length (List.filter (fun (x : Rules.violation) -> x.Rules.severity = sev) xs)

(* --- text ------------------------------------------------------------ *)

let render_text (o : Lint.outcome) =
  let b = Buffer.create 256 in
  List.iter
    (fun (x : Rules.violation) ->
      Buffer.add_string b
        (Format.asprintf "%a%s@." Rules.pp_violation x
           (match x.Rules.severity with Rules.Warn -> " (warn)" | Rules.Error -> "")))
    o.Lint.fresh;
  Buffer.contents b

(* --- json ------------------------------------------------------------ *)

let render_json (o : Lint.outcome) =
  let arr xs f = "[" ^ String.concat "," (List.map f xs) ^ "]" in
  Printf.sprintf
    "{\"schema\":\"aa-lint/1\",\"files\":%d,\"summary\":{\"fresh\":%d,\"errors\":%d,\"warnings\":%d,\"baselined\":%d,\"suppressed\":%d,\"stale_baseline\":%d},\"violations\":%s,\"baselined\":%s,\"stale_baseline\":%s}\n"
    o.Lint.files
    (List.length o.Lint.fresh)
    (count_severity Rules.Error o.Lint.fresh)
    (count_severity Rules.Warn o.Lint.fresh)
    (List.length o.Lint.baselined)
    o.Lint.suppressed
    (List.length o.Lint.stale_baseline)
    (arr o.Lint.fresh violation_json)
    (arr o.Lint.baselined violation_json)
    (arr o.Lint.stale_baseline js)

(* --- sarif ----------------------------------------------------------- *)

let sarif_level = function Rules.Error -> "error" | Rules.Warn -> "warning"

let render_sarif (o : Lint.outcome) =
  let rule_meta id summary sev =
    Printf.sprintf
      "{\"id\":%s,\"shortDescription\":{\"text\":%s},\"defaultConfiguration\":{\"level\":%s}}"
      (js id) (js summary)
      (js (sarif_level sev))
  in
  let rules =
    List.map (fun (r : Rules.t) -> rule_meta r.Rules.id r.Rules.summary r.Rules.default_severity)
      Rules.all
    @ List.map
        (fun (p : Rules.project) ->
          rule_meta p.Rules.pid p.Rules.psummary p.Rules.pdefault_severity)
        Rules.project_all
  in
  let result (x : Rules.violation) =
    Printf.sprintf
      "{\"ruleId\":%s,\"level\":%s,\"message\":{\"text\":%s},\"locations\":[{\"physicalLocation\":{\"artifactLocation\":{\"uri\":%s},\"region\":{\"startLine\":%d,\"startColumn\":%d}}}]}"
      (js x.rule)
      (js (sarif_level x.severity))
      (js x.message)
      (js (Lint.normalize_path x.file))
      (max 1 x.line) (max 1 x.col)
  in
  Printf.sprintf
    "{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{\"name\":\"aa_lint\",\"rules\":[%s]}},\"results\":[%s]}]}\n"
    (String.concat "," rules)
    (String.concat "," (List.map result o.Lint.fresh))

let render fmt o =
  match fmt with Text -> render_text o | Json -> render_json o | Sarif -> render_sarif o
