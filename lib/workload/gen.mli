(** The paper's random workload generator (Section VII).

    For each thread, two values [v >= w] are drawn from a chosen
    distribution; the utility is the smooth concave interpolation of the
    three anchor points [(0, 0)], [(C/2, v)], [(C, v + w)]. Because
    [w <= v], the anchors have nonincreasing slopes, so the PCHIP
    interpolant (after the {!Aa_utility.Sampled} concave-envelope repair)
    is a valid nondecreasing concave utility.

    The original text's anchor description is corrupted in our source;
    [C/2] for the middle anchor is the unique natural reading that makes
    every draw concave — see DESIGN.md §3. *)

type distribution =
  | Uniform  (** v, w ~ U(0, 1) *)
  | Normal of { mu : float; sigma : float }
      (** Gaussian truncated to nonnegative values; the paper uses
          mu = 1, sigma = 1 *)
  | Power_law of { alpha : float }
      (** Pareto with density ∝ x^-alpha on [1, ∞); the paper's Fig. 2
          uses alpha = 2 *)
  | Discrete of { gamma : float; theta : float }
      (** two-point: value 1 with probability gamma, else theta > 1
          (the paper's ℓ = 1, h = θ, Fig. 3) *)

val name : distribution -> string
val pp : Format.formatter -> distribution -> unit (* aa-lint: ignore unused-export -- debug printer, kept for toplevel/driver use *)

val draw_pair : Aa_numerics.Rng.t -> distribution -> float * float
(** Two draws ordered as [(v, w)] with [w <= v]. *)

val utility :
  ?resolution:int ->
  Aa_numerics.Rng.t ->
  cap:float ->
  distribution ->
  Aa_utility.Utility.t
(** One random thread utility on [[0, cap]]. [resolution] is the PCHIP
    sampling density of the concave repair (default 128). *)

val instance :
  ?resolution:int ->
  Aa_numerics.Rng.t ->
  servers:int ->
  capacity:float ->
  threads:int ->
  distribution ->
  Aa_core.Instance.t
(** An AA instance with i.i.d. random utilities. *)
