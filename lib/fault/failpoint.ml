(* Named, schedule-driven fault injection points.

   The fast path is the whole design: [fire] on an unarmed process is
   one atomic load of [active_points] (zero) and a fall-through, so
   failpoints are compiled into production code unconditionally, the
   same deal [Aa_obs.Control] gives the observability probes. All the
   bookkeeping below the switch — registry, hit counters, schedule
   evaluation — only runs while a test or [--faults] has armed
   something. *)

type schedule =
  | Nth of int
  | Every of int
  | Bernoulli of { p : float; seed : int }

type t = {
  pname : string;
  mutable sched : schedule option; (* guarded by [lock] for writes *)
  hits : int Atomic.t;
  nfired : int Atomic.t;
}

exception Crash of string

(* Number of currently armed points; [fire]'s off-switch. An int (not a
   bool) so concurrent arm/disarm of distinct points compose. *)
let active_points = Atomic.make 0

(* Registry of every point ever registered, by name. Registration
   happens at module-init time of the instrumented libraries; arming
   happens from tests and CLI parsing — both cold paths, one mutex. *)
let lock = Mutex.create ()
let points : (string, t) Hashtbl.t = Hashtbl.create 16

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let register pname =
  locked (fun () ->
      match Hashtbl.find_opt points pname with
      | Some p -> p
      | None ->
          let p =
            { pname; sched = None; hits = Atomic.make 0; nfired = Atomic.make 0 }
          in
          Hashtbl.add points pname p;
          p)

let name p = p.pname

let registered () =
  locked (fun () -> Hashtbl.fold (fun k _ acc -> k :: acc) points [])
  |> List.sort String.compare

(* One 64-bit mix (splitmix64 finalizer) of (seed, hit number): the
   Bernoulli coin is a pure function of its inputs, so a seeded run
   replays bit-identically regardless of what else fires. *)
let coin ~seed ~hit ~p =
  let z = Int64.of_int ((seed * 0x9E3779B9) + hit) in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  let u =
    Int64.to_float (Int64.shift_right_logical z 11) /. 9007199254740992.0 (* 2^53 *)
  in
  u < p

let should_fail sched ~hit =
  match sched with
  | Nth k -> hit = k
  | Every n -> n >= 1 && hit mod n = 0
  | Bernoulli { p; seed } -> coin ~seed ~hit ~p

let fire p =
  if Atomic.get active_points = 0 then false
  else
    match p.sched with
    | None -> false
    | Some sched ->
        let hit = 1 + Atomic.fetch_and_add p.hits 1 in
        let fail = should_fail sched ~hit in
        if fail then Atomic.incr p.nfired;
        fail

let crash_if p = if fire p then raise (Crash p.pname)

let reset_counters p =
  Atomic.set p.hits 0;
  Atomic.set p.nfired 0

let arm pname sched =
  let p = register pname in
  locked (fun () ->
      if p.sched = None then Atomic.incr active_points;
      reset_counters p;
      p.sched <- Some sched)

let disarm pname =
  locked (fun () ->
      match Hashtbl.find_opt points pname with
      | Some p when p.sched <> None ->
          p.sched <- None;
          Atomic.decr active_points
      | Some _ | None -> ())

let disarm_all () =
  locked (fun () ->
      Hashtbl.iter
        (fun _ p ->
          if p.sched <> None then begin
            p.sched <- None;
            Atomic.decr active_points
          end;
          reset_counters p)
        points)

let active () = Atomic.get active_points > 0

let counter_of f pname =
  locked (fun () ->
      match Hashtbl.find_opt points pname with
      | Some p -> Atomic.get (f p)
      | None -> 0)

let hits pname = counter_of (fun p -> p.hits) pname
let fired pname = counter_of (fun p -> p.nfired) pname

(* --- spec parsing: name=nth:K | name=every:N | name=p:P:seed:S ------- *)

let print_schedule = function
  | Nth k -> Printf.sprintf "nth:%d" k
  | Every n -> Printf.sprintf "every:%d" n
  | Bernoulli { p; seed } -> Printf.sprintf "p:%g:seed:%d" p seed

let parse_schedule s =
  let int_arg what tok k =
    match int_of_string_opt tok with
    | Some i when i >= 1 -> k i
    | Some _ | None ->
        Error (Printf.sprintf "%s wants a positive integer, got %S" what tok)
  in
  match String.split_on_char ':' s with
  | [ "nth"; tok ] -> int_arg "nth" tok (fun k -> Ok (Nth k))
  | [ "every"; tok ] -> int_arg "every" tok (fun n -> Ok (Every n))
  | [ "p"; ptok; "seed"; stok ] -> (
      match (float_of_string_opt ptok, int_of_string_opt stok) with
      | Some p, Some seed when p >= 0.0 && p <= 1.0 ->
          Ok (Bernoulli { p; seed })
      | Some p, Some _ when not (p >= 0.0 && p <= 1.0) ->
          Error (Printf.sprintf "p wants a probability in [0,1], got %g" p)
      | _, _ -> Error (Printf.sprintf "malformed bernoulli schedule %S" s))
  | _ ->
      Error
        (Printf.sprintf
           "unknown schedule %S (want nth:K, every:N or p:P:seed:S)" s)

let parse_spec spec =
  let clauses =
    String.split_on_char ',' spec
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  if clauses = [] then Error "empty fault spec"
  else
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | clause :: rest -> (
          match String.index_opt clause '=' with
          | None ->
              Error
                (Printf.sprintf "clause %S: want <failpoint>=<schedule>" clause)
          | Some i -> (
              let pname = String.sub clause 0 i in
              let sched =
                String.sub clause (i + 1) (String.length clause - i - 1)
              in
              if pname = "" then Error (Printf.sprintf "clause %S: empty failpoint name" clause)
              else
                match parse_schedule sched with
                | Ok s -> go ((pname, s) :: acc) rest
                | Error e -> Error (Printf.sprintf "%s: %s" pname e)))
    in
    go [] clauses

let arm_spec spec =
  match parse_spec spec with
  | Error _ as e -> e
  | Ok clauses ->
      List.iter (fun (pname, sched) -> arm pname sched) clauses;
      Ok ()
