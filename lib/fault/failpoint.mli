(** Deterministic crash-fault injection points.

    A failpoint is a named site in production code where a fault — an
    I/O error, a torn write, a process crash — can be injected on a
    deterministic, seeded schedule. Sites are declared once at module
    initialization with {!register} and consulted with {!fire}; tests
    (or [aa_serve --faults] / the [AA_FAULTS] environment variable)
    {!arm} points by name with a {!schedule}.

    The whole machinery sits behind a process-global switch, mirroring
    [Aa_obs.Control]: while no point is armed, {!fire} is a single
    atomic load returning [false] — no counter bump, no allocation —
    so failpoints can live permanently in hot paths.

    Determinism contract: given the same arm specs and the same
    sequence of {!fire} calls, the same hits fail. Schedules are pure
    functions of the per-point hit counter (and, for {!Bernoulli}, of
    the seed), never of the clock. *)

type schedule =
  | Nth of int
      (** Fail exactly on the [k]-th hit (1-based) of this point, once.
          Models a transient fault: retries and later hits succeed. *)
  | Every of int
      (** Fail on every [n]-th hit ([Every 1] = always). Models a
          persistent fault that survives retries. *)
  | Bernoulli of { p : float; seed : int }
      (** Fail each hit independently with probability [p], decided by
          a hash of [(seed, hit-number)] — replayable, schedule-free. *)

type t
(** A registered failpoint. *)

exception Crash of string
(** The simulated process crash raised by {!crash_if}. Production code
    never catches it; harnesses treat it as the moment the process
    died and recover from whatever reached the disk. *)

val register : string -> t
(** Find or register the failpoint with this name (idempotent: one
    handle per name). Names use dotted lower-case paths naming the
    guarded operation, e.g. ["journal.append"]. *)

val name : t -> string (* aa-lint: ignore unused-export -- accessor symmetry with registered () *)

val registered : unit -> string list
(** Every registered point, sorted by name. A recovery sweep iterates
    this list so that new failpoints are crash-tested automatically. *)

val fire : t -> bool
(** Record a hit and report whether the armed schedule says this hit
    must fail. One atomic load (returning [false]) while the global
    switch is off. *)

val crash_if : t -> unit
(** [if fire t then raise (Crash (name t))]. *)

val arm : string -> schedule -> unit
(** Arm the named point (registering it if needed), reset its hit and
    fired counters, and turn the global switch on. *)

val disarm : string -> unit
(** Disarm one point; the global switch turns off when no point
    remains armed. Unknown names are ignored. *)

val disarm_all : unit -> unit
(** Disarm every point and reset all counters; the switch turns off. *)

val active : unit -> bool
(** The global switch (true while at least one point is armed). *)

val hits : string -> int
(** Hits recorded at the named point since it was last armed/reset
    (0 for unknown names; hits are only counted while armed). *)

val fired : string -> int
(** How many of those hits failed. *)

val parse_spec : string -> ((string * schedule) list, string) result
(** Parse an arm spec: comma-separated [name=SCHED] clauses with
    [SCHED] one of [nth:K], [every:N], [p:P:seed:S]. Example:
    ["journal.append=nth:3,engine.dispatch=every:2"]. *)

val arm_spec : string -> (unit, string) result
(** {!parse_spec} then {!arm} each clause. *)

val print_schedule : schedule -> string
(** The [SCHED] syntax accepted by {!parse_spec} (round-trips). *)
