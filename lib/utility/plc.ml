open Aa_numerics

type t = {
  xs : float array; (* strictly increasing, xs.(0) = 0 *)
  ys : float array; (* nonnegative, nondecreasing, concave *)
}

type segment = { x0 : float; x1 : float; y0 : float; slope : float }

let seg_slope (x0, y0) (x1, y1) = (y1 -. y0) /. (x1 -. x0)

(* Merge consecutive collinear segments so slopes end up strictly
   decreasing; assumes points already concave, sorted, deduped. *)
let canonicalize pts =
  let n = Array.length pts in
  if n <= 2 then pts
  else begin
    let out = ref [ pts.(0) ] in
    for i = 1 to n - 1 do
      let p = pts.(i) in
      let rec drop_collinear () =
        match !out with
        | b :: a :: rest when Util.approx_equal ~eps:1e-12 (seg_slope a b) (seg_slope b p) ->
            out := a :: rest;
            drop_collinear ()
        | _ -> ()
      in
      drop_collinear ();
      out := p :: !out
    done;
    Array.of_list (List.rev !out)
  end

let validate pts =
  let n = Array.length pts in
  if n = 0 then invalid_arg "Plc.create: no points";
  Array.iter
    (fun (x, y) ->
      if not (Float.is_finite x && Float.is_finite y) then
        invalid_arg "Plc.create: non-finite coordinate")
    pts;
  let x0, _ = pts.(0) in
  if Util.fne x0 0.0 then invalid_arg "Plc.create: domain must start at x = 0";
  Array.iter
    (fun (_, y) -> if y < 0.0 then invalid_arg "Plc.create: negative utility value")
    pts;
  if not (Convex.is_nondecreasing ~eps:1e-9 pts) then
    invalid_arg "Plc.create: utility must be nondecreasing";
  if not (Convex.is_concave ~eps:1e-9 pts) then
    invalid_arg "Plc.create: utility must be concave"

let sort_dedup pts =
  let a = Array.copy pts in
  Array.sort (fun (x1, _) (x2, _) -> compare x1 x2) a;
  let out = ref [] in
  Array.iter
    (fun (x, y) ->
      match !out with
      | (x', y') :: rest when x' = x -> out := (x, Float.max y y') :: rest
      | _ -> out := (x, y) :: !out)
    a;
  Array.of_list (List.rev !out)

let create points =
  let pts = sort_dedup points in
  (* Snap a float-noise start (|x0| within tolerance of 0) to the exact
     domain anchor so downstream code can rely on [xs.(0) = 0.]. *)
  if Array.length pts > 0 then begin
    let x0, y0 = pts.(0) in
    if Util.feq x0 0.0 then pts.(0) <- (0.0, y0)
  end;
  validate pts;
  (* Repair sub-tolerance concavity noise exactly once. *)
  let pts = if Convex.is_concave ~eps:0.0 pts then pts else Convex.upper_envelope pts in
  let pts = canonicalize pts in
  if Array.length pts < 2 then
    invalid_arg "Plc.create: need at least two distinct points (or use constant)";
  { xs = Array.map fst pts; ys = Array.map snd pts }

let constant ~cap v =
  if v < 0.0 then invalid_arg "Plc.constant: negative value";
  if not (cap > 0.0) then invalid_arg "Plc.constant: cap must be positive";
  { xs = [| 0.0; cap |]; ys = [| v; v |] }

let capped_linear ~cap ~slope ~knee =
  if not (0.0 <= knee && knee <= cap) then invalid_arg "Plc.capped_linear: knee outside [0, cap]";
  if slope < 0.0 then invalid_arg "Plc.capped_linear: negative slope";
  if Util.feq knee 0.0 || Util.feq slope 0.0 then constant ~cap 0.0
  else if knee = cap then { xs = [| 0.0; cap |]; ys = [| 0.0; slope *. cap |] }
  else { xs = [| 0.0; knee; cap |]; ys = [| 0.0; slope *. knee; slope *. knee |] }

let two_piece ~cap ~peak ~chat =
  if not (0.0 <= chat && chat <= cap) then invalid_arg "Plc.two_piece: chat outside [0, cap]";
  if peak < 0.0 then invalid_arg "Plc.two_piece: negative peak";
  if Util.feq chat 0.0 then constant ~cap peak
  else if chat = cap then { xs = [| 0.0; cap |]; ys = [| 0.0; peak |] }
  else { xs = [| 0.0; chat; cap |]; ys = [| 0.0; peak; peak |] }

let cap t = t.xs.(Array.length t.xs - 1)

let last t = Array.length t.xs - 1

(* Largest k with xs.(k) <= x, for x within range. *)
let interval t x =
  let lo = ref 0 and hi = ref (last t) in
  while !hi - !lo > 1 do
    let mid = (!lo + !hi) / 2 in
    if t.xs.(mid) <= x then lo := mid else hi := mid
  done;
  !lo

let eval t x =
  let x = Util.clamp ~lo:0.0 ~hi:(cap t) x in
  if x = cap t then t.ys.(last t)
  else begin
    let k = interval t x in
    let slope = seg_slope (t.xs.(k), t.ys.(k)) (t.xs.(k + 1), t.ys.(k + 1)) in
    t.ys.(k) +. (slope *. (x -. t.xs.(k)))
  end

let peak t = t.ys.(last t)
let max_slope t = seg_slope (t.xs.(0), t.ys.(0)) (t.xs.(1), t.ys.(1))

let slope_right t x =
  if x >= cap t then 0.0
  else begin
    let x = Float.max 0.0 x in
    (* [interval] returns the segment to the right of a breakpoint hit *)
    let k = interval t x in
    seg_slope (t.xs.(k), t.ys.(k)) (t.xs.(k + 1), t.ys.(k + 1))
  end

let demand t lambda =
  if lambda <= 0.0 then cap t
  else begin
    (* slopes strictly decrease with the segment index: binary-search the
       first segment priced below lambda. *)
    let k = last t in
    let slope_of i = seg_slope (t.xs.(i), t.ys.(i)) (t.xs.(i + 1), t.ys.(i + 1)) in
    if slope_of 0 < lambda then 0.0
    else begin
      let idx = Root.bisect_int ~f:(fun i -> i >= k || slope_of i < lambda) ~lo:0 ~hi:k in
      (* idx = first segment with slope < lambda, or k if none *)
      t.xs.(idx)
    end
  end

let segments t =
  Array.init (last t) (fun k ->
      {
        x0 = t.xs.(k);
        x1 = t.xs.(k + 1);
        y0 = t.ys.(k);
        slope = seg_slope (t.xs.(k), t.ys.(k)) (t.xs.(k + 1), t.ys.(k + 1));
      })

let points t = Array.init (Array.length t.xs) (fun i -> (t.xs.(i), t.ys.(i)))

let restrict t ~cap:c =
  if not (0.0 < c && c <= cap t) then invalid_arg "Plc.restrict: cap outside (0, cap]";
  let pts =
    Array.to_list (points t)
    |> List.filter (fun (x, _) -> x < c)
    |> fun kept -> kept @ [ (c, eval t c) ]
  in
  create (Array.of_list pts)

let scale t ~y =
  if y < 0.0 then invalid_arg "Plc.scale: negative factor";
  { xs = Array.copy t.xs; ys = Array.map (fun v -> v *. y) t.ys }

let equal ?(eps = 1e-9) a b =
  cap a = cap b
  && begin
       let xs = Array.append a.xs b.xs in
       Array.for_all (fun x -> Util.approx_equal ~eps (eval a x) (eval b x)) xs
     end

let pp ppf t =
  Format.fprintf ppf "@[<h>plc[";
  Array.iteri
    (fun i x ->
      if i > 0 then Format.fprintf ppf "; ";
      Format.fprintf ppf "(%g, %g)" x t.ys.(i))
    t.xs;
  Format.fprintf ppf "]@]"
