open Aa_numerics

(* Struct-of-arrays ("flat") representation: three parallel float arrays
   instead of boxed segment records. [ys.(k)] is the prefix utility
   accumulated at breakpoint [xs.(k)], and [slopes.(k)] the slope of the
   segment [xs.(k), xs.(k+1)] — precomputed once at construction with
   the exact same [seg_slope] expression the queries used to recompute,
   so every query answer is bit-identical to the former on-the-fly form.
   Slopes are nonincreasing (strictly decreasing in canonical form), so
   value, slope and inverse-slope queries are all O(log k) binary
   searches over flat arrays. *)
type t = {
  xs : float array; (* breakpoints: strictly increasing, xs.(0) = 0 *)
  ys : float array; (* prefix utility: nonnegative, nondecreasing, concave *)
  slopes : float array; (* per-segment slopes; length = length xs - 1 *)
}

type segment = { x0 : float; x1 : float; y0 : float; slope : float }

let seg_slope (x0, y0) (x1, y1) = (y1 -. y0) /. (x1 -. x0)

(* The only way to build a [t]: derives the slope array from the
   breakpoints so the three arrays can never drift apart. *)
let of_xs_ys xs ys =
  let k = Array.length xs - 1 in
  let slopes =
    Array.init k (fun i -> seg_slope (xs.(i), ys.(i)) (xs.(i + 1), ys.(i + 1)))
  in
  { xs; ys; slopes }

(* Merge consecutive collinear segments so slopes end up strictly
   decreasing; assumes points already concave, sorted, deduped. *)
let canonicalize pts =
  let n = Array.length pts in
  if n <= 2 then pts
  else begin
    let out = ref [ pts.(0) ] in
    for i = 1 to n - 1 do
      let p = pts.(i) in
      let rec drop_collinear () =
        match !out with
        | b :: a :: rest when Util.feq ~eps:1e-12 (seg_slope a b) (seg_slope b p) ->
            out := a :: rest;
            drop_collinear ()
        | _ -> ()
      in
      drop_collinear ();
      out := p :: !out
    done;
    Array.of_list (List.rev !out)
  end

let validate pts =
  let n = Array.length pts in
  if n = 0 then invalid_arg "Plc.create: no points";
  Array.iter
    (fun (x, y) ->
      if not (Float.is_finite x && Float.is_finite y) then
        invalid_arg "Plc.create: non-finite coordinate")
    pts;
  let x0, _ = pts.(0) in
  if Util.fne x0 0.0 then invalid_arg "Plc.create: domain must start at x = 0";
  Array.iter
    (fun (_, y) -> if y < 0.0 then invalid_arg "Plc.create: negative utility value")
    pts;
  if not (Convex.is_nondecreasing ~eps:1e-9 pts) then
    invalid_arg "Plc.create: utility must be nondecreasing";
  if not (Convex.is_concave ~eps:1e-9 pts) then
    invalid_arg "Plc.create: utility must be concave"

let sort_dedup pts =
  let a = Array.copy pts in
  Array.sort (fun (x1, _) (x2, _) -> compare x1 x2) a;
  let out = ref [] in
  Array.iter
    (fun (x, y) ->
      match !out with
      (* exact dedup on the x coordinate, via the monomorphic float
         compare: a tolerant merge here would silently move breakpoints
         supplied by the caller (and would swallow infinities before
         [validate] can reject them) *)
      | (x', y') :: rest when Float.equal x' x -> out := (x, Float.max y y') :: rest
      | _ -> out := (x, y) :: !out)
    a;
  Array.of_list (List.rev !out)

let create points =
  let pts = sort_dedup points in
  (* Snap a float-noise start (|x0| within tolerance of 0) to the exact
     domain anchor so downstream code can rely on [xs.(0) = 0.]. *)
  if Array.length pts > 0 then begin
    let x0, y0 = pts.(0) in
    if Util.feq x0 0.0 then pts.(0) <- (0.0, y0)
  end;
  validate pts;
  (* Repair sub-tolerance concavity noise exactly once. *)
  let pts = if Convex.is_concave ~eps:0.0 pts then pts else Convex.upper_envelope pts in
  let pts = canonicalize pts in
  if Array.length pts < 2 then
    invalid_arg "Plc.create: need at least two distinct points (or use constant)";
  of_xs_ys (Array.map fst pts) (Array.map snd pts)

let constant ~cap v =
  if v < 0.0 then invalid_arg "Plc.constant: negative value";
  if not (cap > 0.0) then invalid_arg "Plc.constant: cap must be positive";
  of_xs_ys [| 0.0; cap |] [| v; v |]

let capped_linear ~cap ~slope ~knee =
  if not (0.0 <= knee && knee <= cap) then invalid_arg "Plc.capped_linear: knee outside [0, cap]";
  if slope < 0.0 then invalid_arg "Plc.capped_linear: negative slope";
  if Util.feq knee 0.0 || Util.feq slope 0.0 then constant ~cap 0.0
  else if knee = cap then of_xs_ys [| 0.0; cap |] [| 0.0; slope *. cap |]
  else of_xs_ys [| 0.0; knee; cap |] [| 0.0; slope *. knee; slope *. knee |]

let two_piece ~cap ~peak ~chat =
  if not (0.0 <= chat && chat <= cap) then invalid_arg "Plc.two_piece: chat outside [0, cap]";
  if peak < 0.0 then invalid_arg "Plc.two_piece: negative peak";
  if Util.feq chat 0.0 then constant ~cap peak
  else if chat = cap then of_xs_ys [| 0.0; cap |] [| 0.0; peak |]
  else of_xs_ys [| 0.0; chat; cap |] [| 0.0; peak; peak |]

let cap t = t.xs.(Array.length t.xs - 1)

let last t = Array.length t.xs - 1

let n_pieces t = Array.length t.slopes

(* First segment index with slope <= 0, i.e. the count of
   positive-slope pieces. Slopes are nonincreasing, so this is a binary
   search, not a scan. *)
let positive_pieces t =
  let k = Array.length t.slopes in
  if k = 0 || t.slopes.(0) <= 0.0 then 0
  else if t.slopes.(k - 1) > 0.0 then k
  else begin
    (* invariant: slopes.(lo) > 0 >= slopes.(hi) *)
    let lo = ref 0 and hi = ref (k - 1) in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if t.slopes.(mid) > 0.0 then lo := mid else hi := mid
    done;
    !hi
  end

(* Largest k with xs.(k) <= x, for x within range. *)
let interval t x =
  let lo = ref 0 and hi = ref (last t) in
  while !hi - !lo > 1 do
    let mid = (!lo + !hi) / 2 in
    if t.xs.(mid) <= x then lo := mid else hi := mid
  done;
  !lo

let eval t x =
  let x = Util.clamp ~lo:0.0 ~hi:(cap t) x in
  if x = cap t then t.ys.(last t)
  else begin
    let k = interval t x in
    t.ys.(k) +. (t.slopes.(k) *. (x -. t.xs.(k)))
  end

let peak t = t.ys.(last t)
let max_slope t = t.slopes.(0)

let slope_right t x =
  if x >= cap t then 0.0
  else begin
    let x = Float.max 0.0 x in
    (* [interval] returns the segment to the right of a breakpoint hit *)
    t.slopes.(interval t x)
  end

let demand t lambda =
  if lambda <= 0.0 then cap t
  else begin
    (* slopes are nonincreasing in the segment index: binary-search the
       first segment priced below lambda directly on the flat array. *)
    let k = last t in
    if t.slopes.(0) < lambda then 0.0
    else if t.slopes.(k - 1) >= lambda then t.xs.(k)
    else begin
      (* invariant: slopes.(lo) >= lambda > slopes.(hi) *)
      let lo = ref 0 and hi = ref (k - 1) in
      while !hi - !lo > 1 do
        let mid = (!lo + !hi) / 2 in
        if t.slopes.(mid) >= lambda then lo := mid else hi := mid
      done;
      t.xs.(!hi)
    end
  end

let segments t =
  Array.init (last t) (fun k ->
      { x0 = t.xs.(k); x1 = t.xs.(k + 1); y0 = t.ys.(k); slope = t.slopes.(k) })

let points t = Array.init (Array.length t.xs) (fun i -> (t.xs.(i), t.ys.(i)))

module Flat = struct
  let breakpoints t = t.xs
  let prefix_utility t = t.ys
  let slopes t = t.slopes
end

(* Certified envelope coarsening: greedily extend a chord from the last
   kept breakpoint as far as every skipped interior breakpoint stays
   within [eps] of it. The chord of a concave function lies below it,
   and the maximum of (concave - linear) over an interval is attained
   at a breakpoint, so checking interior breakpoints certifies the
   whole interval: 0 <= f(x) - f~(x) <= eps for all x. Chord slopes of
   a concave chain are again strictly decreasing, so the result is a
   canonical Plc without re-validation. *)
let coarsen ~eps t =
  if not (eps >= 0.0) then invalid_arg "Plc.coarsen: eps must be >= 0";
  let n = Array.length t.xs in
  if eps <= 0.0 || n <= 2 then t
  else begin
    let kept = ref [ 0 ] in
    let n_kept = ref 1 in
    let a = ref 0 in
    (* Every interior i in (a, b) stays within eps of the chord a->b. *)
    let chord_ok a b =
      let sl = seg_slope (t.xs.(a), t.ys.(a)) (t.xs.(b), t.ys.(b)) in
      let ok = ref true in
      let i = ref (a + 1) in
      while !ok && !i < b do
        let dev = t.ys.(!i) -. (t.ys.(a) +. (sl *. (t.xs.(!i) -. t.xs.(a)))) in
        if dev > eps then ok := false;
        incr i
      done;
      !ok
    in
    while !a < n - 1 do
      let b = ref (!a + 1) in
      while !b < n - 1 && chord_ok !a (!b + 1) do
        incr b
      done;
      kept := !b :: !kept;
      incr n_kept;
      a := !b
    done;
    if !n_kept = n then t
    else begin
      let idx = Array.of_list (List.rev !kept) in
      of_xs_ys (Array.map (fun i -> t.xs.(i)) idx) (Array.map (fun i -> t.ys.(i)) idx)
    end
  end

let restrict t ~cap:c =
  if not (0.0 < c && c <= cap t) then invalid_arg "Plc.restrict: cap outside (0, cap]";
  let pts =
    Array.to_list (points t)
    |> List.filter (fun (x, _) -> x < c)
    |> fun kept -> kept @ [ (c, eval t c) ]
  in
  create (Array.of_list pts)

let scale t ~y =
  if y < 0.0 then invalid_arg "Plc.scale: negative factor";
  of_xs_ys (Array.copy t.xs) (Array.map (fun v -> v *. y) t.ys)

let equal ?(eps = 1e-9) a b =
  cap a = cap b
  && begin
       let xs = Array.append a.xs b.xs in
       Array.for_all (fun x -> Util.approx_equal ~eps (eval a x) (eval b x)) xs
     end

let pp ppf t =
  Format.fprintf ppf "@[<h>plc[";
  Array.iteri
    (fun i x ->
      if i > 0 then Format.fprintf ppf "; ";
      Format.fprintf ppf "(%g, %g)" x t.ys.(i))
    t.xs;
  Format.fprintf ppf "]@]"
