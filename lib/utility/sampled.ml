open Aa_numerics

let interpolant pts =
  if Array.length pts < 2 then invalid_arg "Sampled.of_points: need >= 2 points";
  let xs = Array.map fst pts and ys = Array.map snd pts in
  if Util.fne xs.(0) 0.0 then invalid_arg "Sampled.of_points: domain must start at 0";
  Array.iter (fun y -> if y < 0.0 then invalid_arg "Sampled.of_points: negative value") ys;
  Pchip.create ~xs ~ys

let of_points ?(resolution = 128) pts =
  let p = interpolant pts in
  let samples = Pchip.sample p resolution in
  (* Clip interpolation undershoot and enforce concavity by envelope. *)
  let samples = Array.map (fun (x, y) -> (x, Float.max 0.0 y)) samples in
  Utility.of_plc (Plc.create (Convex.upper_envelope samples))

let envelope_deviation ?(resolution = 128) pts =
  let p = interpolant pts in
  let u = of_points ~resolution pts in
  let peak = Utility.peak u in
  if peak <= 0.0 then 0.0
  else begin
    let xs = Array.map fst (Pchip.sample p (4 * resolution)) in
    let worst = ref 0.0 in
    Array.iter
      (fun x ->
        let d = Float.abs (Utility.eval u x -. Pchip.eval p x) in
        if d > !worst then worst := d)
      xs;
    !worst /. peak
  end
