(** Piecewise-linear concave nondecreasing utility functions on [[0, cap]].

    This is the exact, canonical representation used throughout the AA
    algorithms: slopes are strictly decreasing across segments and every
    query (value, slope, inverse slope) is answered exactly, which lets
    the super-optimal allocation and the linearized problem of Lai et
    al. §V be solved without numeric tolerance games.

    Canonical form: breakpoints start at [x = 0], end at [x = cap],
    consecutive collinear segments are merged, and all slopes are
    [>= 0]. *)

type t

type segment = { x0 : float; x1 : float; y0 : float; slope : float }
(** One linear piece: value [y0 + slope * (x - x0)] on [[x0, x1]]. *)

val create : (float * float) array -> t
(** [create points] builds the function interpolating [points]
    (pairs [(x, y)], in any order; duplicate x keeps the larger y).
    Requirements, checked and raising [Invalid_argument]:
    the smallest x is [0]; y values are nonnegative and nondecreasing in
    x; slopes are nonincreasing (concavity), within a 1e-9 relative
    tolerance — tiny violations from float noise are repaired by taking
    the upper concave envelope. *)

val constant : cap:float -> float -> t
(** [constant ~cap v] is the function identically [v >= 0] on [[0, cap]]. *)

val capped_linear : cap:float -> slope:float -> knee:float -> t
(** [capped_linear ~cap ~slope ~knee] rises with [slope] until [knee],
    then is flat until [cap] — the utility family used by the paper's
    NP-hardness reduction and tightness example. Requires
    [0 <= knee <= cap] and [slope >= 0]. *)

val two_piece : cap:float -> peak:float -> chat:float -> t
(** [two_piece ~cap ~peak ~chat] is the linearization [g] of §V-A: it
    climbs linearly from [(0, 0)] to [(chat, peak)] and is flat up to
    [cap]. [chat = 0] yields the constant-[peak] function. *)

val cap : t -> float
val eval : t -> float -> float
(** Arguments are clamped to [[0, cap]]. *)

val peak : t -> float
(** [eval t (cap t)] — the largest attainable utility. *)

val max_slope : t -> float
(** Slope of the first segment ([0] for constant functions). *)

val slope_right : t -> float -> float
(** Right derivative at [x] ([0] at and beyond [cap]). *)

val demand : t -> float -> float
(** [demand t lambda] is the largest [x] in [[0, cap]] whose right
    derivative is at least [lambda] — the thread's resource demand at
    marginal price [lambda]. [demand t 0.] = [cap]; nonincreasing in
    [lambda]. For positive [lambda] the result is always a breakpoint. *)

val segments : t -> segment array
(** The linear pieces, in increasing x, slopes strictly decreasing. *)

val points : t -> (float * float) array
(** Breakpoints [(x, y)] in increasing x. *)

val n_pieces : t -> int
(** Number of linear pieces (segments). At least 1. *)

val positive_pieces : t -> int
(** Number of leading pieces with strictly positive slope — the only
    pieces a greedy water-filling allocation can ever consume. O(log k). *)

(** Zero-copy access to the flat struct-of-arrays representation, for
    kernels (greedy allocation, linearization) that iterate pieces
    without per-segment boxing. The returned arrays are the internal
    storage: callers must treat them as read-only. *)
module Flat : sig
  val breakpoints : t -> float array
  (** Strictly increasing, [breakpoints.(0) = 0.], last entry = [cap]. *)

  val prefix_utility : t -> float array
  (** [prefix_utility.(k) = eval t breakpoints.(k)]; same length as
      [breakpoints]. *)

  val slopes : t -> float array
  (** [slopes.(k)] is the slope on
      [[breakpoints.(k), breakpoints.(k+1)]]; strictly decreasing;
      length [n_pieces]. *)
end

val coarsen : eps:float -> t -> t
(** [coarsen ~eps t] drops breakpoints whose removal changes the
    function by at most [eps] anywhere: the result [t'] satisfies
    [0 <= eval t x -. eval t' x <= eps] for every [x] (the coarse
    envelope is a chord chain of the concave original, hence a pointwise
    lower bound), has the same [cap] and the same endpoint values, and
    is again concave with strictly decreasing slopes. [eps = 0.] (or a
    function with <= 1 piece) returns [t] physically unchanged.
    Requires [eps >= 0.]. Greedy left-to-right chord extension; O(k^2)
    worst case, linear on smooth envelopes. *)

val restrict : t -> cap:float -> t
(** Restriction to a smaller domain [[0, cap]]. Requires
    [0 < cap <= cap t]. *)

val scale : t -> y:float -> t
(** Pointwise multiplication of values by [y >= 0]. *)

val equal : ?eps:float -> t -> t -> bool
(** Pointwise approximate equality (compared on the union of
    breakpoints). *)

val pp : Format.formatter -> t -> unit
