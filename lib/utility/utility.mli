(** Unified utility-function type.

    A utility function gives a thread's performance as a function of the
    resources allocated to it, on the domain [[0, cap]] where [cap] is the
    per-server capacity [C]. It must be nonnegative, nondecreasing and
    concave (the paper's Section III model).

    Two representations coexist: exact piecewise-linear concave ({!Plc})
    functions — closed under linearization and allowing exact
    water-filling — and smooth closed-form functions evaluated
    numerically. {!to_plc} converts the latter into the former. *)

type t =
  | Plc of Plc.t  (** exact piecewise-linear concave *)
  | Smooth of smooth  (** closed-form concave function *)

and smooth = {
  name : string;
  cap : float;
  eval : float -> float;
  deriv : float -> float;  (** right derivative, nonincreasing *)
  demand : (float -> float) option;
      (** [demand lambda]: largest x in [[0,cap]] with derivative >= lambda;
          when [None], it is obtained by bisection on [deriv]. *)
  spec : spec option;
      (** constructor parameters when built by {!Shapes}, letting
          serialization round-trip exactly *)
}

and spec =
  | Spec_power of { coeff : float; beta : float }
  | Spec_log of { coeff : float; rate : float }
  | Spec_saturating of { limit : float; halfway : float }
  | Spec_exp_saturating of { limit : float; rate : float }

val of_plc : Plc.t -> t

val cap : t -> float
(** Upper end of the domain. *)

val eval : t -> float -> float
(** Value at an allocation; arguments clamped to [[0, cap]]. *)

val peak : t -> float
(** Value at the full capacity [cap]. *)

val deriv : t -> float -> float
(** Right derivative ([0] at and beyond [cap]). May be [infinity] at 0 for
    shapes like [x^b], [b < 1]. *)

val demand : t -> float -> float
(** [demand t lambda] = largest x in [[0,cap]] with derivative >= lambda.
    Nonincreasing in [lambda]; [demand t 0. = cap t]. *)

val to_plc : ?samples:int -> t -> Plc.t
(** Convert to an exact piecewise-linear concave function. For [Plc] this
    is the identity. For [Smooth] the function is sampled at [samples]
    points (default 64; denser near 0 where concave functions curve the
    most) and replaced by the upper concave envelope of the samples. *)

val linearize : t -> chat:float -> Plc.t
(** The linearization [g] of §V-A at the super-optimal allocation [chat]:
    [g x = (x /. chat) *. eval t chat] for [x <= chat], then constant.
    [chat = 0] yields the constant [eval t 0.]. *)

val check : ?samples:int -> t -> (unit, string) result
(** Sample-based verification that the function is nonnegative,
    nondecreasing and concave; returns a description of the first
    violation found. *)

val pp : Format.formatter -> t -> unit (* aa-lint: ignore unused-export -- debug printer, kept for toplevel/driver use *)

(** Closed-form concave families. All take the domain cap [c] and yield
    functions that satisfy the model assumptions. *)
module Shapes : sig
  val power : cap:float -> coeff:float -> beta:float -> t
  (** [coeff * x^beta] with [beta] in (0, 1], [coeff >= 0]. *)

  val log_utility : cap:float -> coeff:float -> rate:float -> t
  (** [coeff * log(1 + rate * x)], [rate > 0]. *)

  val saturating : cap:float -> limit:float -> halfway:float -> t
  (** Michaelis–Menten [limit * x / (x + halfway)], [halfway > 0]: utility
      approaches [limit], reaching half of it at [x = halfway]. *)

  val exp_saturating : cap:float -> limit:float -> rate:float -> t
  (** [limit * (1 - exp (-rate * x))], [rate > 0]. *)

  val linear : cap:float -> slope:float -> t
  (** [slope * x] (as an exact PLC). *)

  val capped_linear : cap:float -> slope:float -> knee:float -> t
  (** Rises with [slope] to [knee], then flat (exact PLC); the reduction /
      tightness family. *)
end
