open Aa_numerics

type t = Plc of Plc.t | Smooth of smooth

and smooth = {
  name : string;
  cap : float;
  eval : float -> float;
  deriv : float -> float;
  demand : (float -> float) option;
  spec : spec option;
}

and spec =
  | Spec_power of { coeff : float; beta : float }
  | Spec_log of { coeff : float; rate : float }
  | Spec_saturating of { limit : float; halfway : float }
  | Spec_exp_saturating of { limit : float; rate : float }

let of_plc p = Plc p
let cap = function Plc p -> Plc.cap p | Smooth s -> s.cap

let eval t x =
  match t with
  | Plc p -> Plc.eval p x
  | Smooth s -> s.eval (Util.clamp ~lo:0.0 ~hi:s.cap x)

let peak t = eval t (cap t)

let deriv t x =
  match t with
  | Plc p -> Plc.slope_right p x
  | Smooth s -> if x >= s.cap then 0.0 else s.deriv (Float.max 0.0 x)

(* Numeric fallback for Smooth demand: the derivative is nonincreasing, so
   the set {x : deriv x >= lambda} is an initial interval; bisect its right
   endpoint. *)
let demand_by_bisection s lambda =
  if lambda <= 0.0 then s.cap
  else if s.deriv s.cap >= lambda then s.cap
  else if s.deriv 0.0 < lambda then 0.0
  else
    Root.bisect ~f:(fun x -> s.deriv x -. lambda) ~lo:0.0 ~hi:s.cap ()

let demand t lambda =
  match t with
  | Plc p -> Plc.demand p lambda
  | Smooth s -> (
      if lambda <= 0.0 then s.cap
      else
        match s.demand with
        | Some d -> Util.clamp ~lo:0.0 ~hi:s.cap (d lambda)
        | None -> demand_by_bisection s lambda)

let to_plc ?(samples = 64) t =
  match t with
  | Plc p -> p
  | Smooth s ->
      if samples < 3 then invalid_arg "Utility.to_plc: need samples >= 3";
      (* Mix a uniform grid with a geometric one refined near 0, where
         concave utilities have their sharpest curvature. *)
      let uniform = Util.linspace 0.0 s.cap samples in
      let geometric =
        Array.init samples (fun i ->
            s.cap *. (0.5 ** float_of_int (samples - 1 - i)))
      in
      let xs = Array.append (Array.append [| 0.0 |] uniform) geometric in
      let pts = Array.map (fun x -> (x, Float.max 0.0 (s.eval x))) xs in
      Plc.create (Convex.upper_envelope pts)

let linearize t ~chat =
  let c = cap t in
  if not (0.0 <= chat && chat <= c) then
    invalid_arg "Utility.linearize: chat outside [0, cap]";
  if Util.feq chat 0.0 then Plc.constant ~cap:c (eval t 0.0)
  else Plc.two_piece ~cap:c ~peak:(eval t chat) ~chat

let check ?(samples = 257) t =
  let pts = Array.map (fun x -> (x, eval t x)) (Util.linspace 0.0 (cap t) samples) in
  let negative = Array.exists (fun (_, y) -> y < 0.0) pts in
  if negative then Error "utility takes a negative value"
  else if not (Convex.is_nondecreasing ~eps:1e-7 pts) then
    Error "utility is not nondecreasing"
  else if not (Convex.is_concave ~eps:1e-6 pts) then Error "utility is not concave"
  else Ok ()

let pp ppf = function
  | Plc p -> Plc.pp ppf p
  | Smooth s -> Format.fprintf ppf "smooth[%s, cap=%g]" s.name s.cap

module Shapes = struct
  let require cond msg = if not cond then invalid_arg msg

  let power ~cap ~coeff ~beta =
    require (cap > 0.0) "Shapes.power: cap must be positive";
    require (0.0 < beta && beta <= 1.0) "Shapes.power: beta outside (0, 1]";
    require (coeff >= 0.0) "Shapes.power: negative coeff";
    if Util.feq beta 1.0 then Plc (Plc.capped_linear ~cap ~slope:coeff ~knee:cap)
    else
      Smooth
        {
          name = Printf.sprintf "power(%g, %g)" coeff beta;
          cap;
          eval = (fun x -> coeff *. (x ** beta));
          deriv =
            (fun x -> if Util.feq x 0.0 then Float.infinity else coeff *. beta *. (x ** (beta -. 1.0)));
          demand =
            Some
              (fun lambda ->
                if Util.feq coeff 0.0 then 0.0
                else ((coeff *. beta) /. lambda) ** (1.0 /. (1.0 -. beta)));
          spec = Some (Spec_power { coeff; beta });
        }

  let log_utility ~cap ~coeff ~rate =
    require (cap > 0.0) "Shapes.log_utility: cap must be positive";
    require (rate > 0.0) "Shapes.log_utility: rate must be positive";
    require (coeff >= 0.0) "Shapes.log_utility: negative coeff";
    Smooth
      {
        name = Printf.sprintf "log(%g, %g)" coeff rate;
        cap;
        eval = (fun x -> coeff *. log1p (rate *. x));
        deriv = (fun x -> coeff *. rate /. (1.0 +. (rate *. x)));
        demand =
          Some
            (fun lambda ->
              if Util.feq coeff 0.0 then 0.0 else ((coeff *. rate /. lambda) -. 1.0) /. rate);
        spec = Some (Spec_log { coeff; rate });
      }

  let saturating ~cap ~limit ~halfway =
    require (cap > 0.0) "Shapes.saturating: cap must be positive";
    require (halfway > 0.0) "Shapes.saturating: halfway must be positive";
    require (limit >= 0.0) "Shapes.saturating: negative limit";
    Smooth
      {
        name = Printf.sprintf "saturating(%g, %g)" limit halfway;
        cap;
        eval = (fun x -> limit *. x /. (x +. halfway));
        deriv = (fun x -> limit *. halfway /. ((x +. halfway) *. (x +. halfway)));
        demand =
          Some
            (fun lambda ->
              if Util.feq limit 0.0 then 0.0 else sqrt (limit *. halfway /. lambda) -. halfway);
        spec = Some (Spec_saturating { limit; halfway });
      }

  let exp_saturating ~cap ~limit ~rate =
    require (cap > 0.0) "Shapes.exp_saturating: cap must be positive";
    require (rate > 0.0) "Shapes.exp_saturating: rate must be positive";
    require (limit >= 0.0) "Shapes.exp_saturating: negative limit";
    Smooth
      {
        name = Printf.sprintf "exp_saturating(%g, %g)" limit rate;
        cap;
        eval = (fun x -> limit *. (1.0 -. exp (-.rate *. x)));
        deriv = (fun x -> limit *. rate *. exp (-.rate *. x));
        demand =
          Some
            (fun lambda ->
              if Util.feq limit 0.0 then 0.0 else log (limit *. rate /. lambda) /. rate);
        spec = Some (Spec_exp_saturating { limit; rate });
      }

  let linear ~cap ~slope = Plc (Plc.capped_linear ~cap ~slope ~knee:cap)
  let capped_linear ~cap ~slope ~knee = Plc (Plc.capped_linear ~cap ~slope ~knee)
end
