(* Domain pool: parked workers, one published job at a time, chunked
   work claiming over an atomic index. The protocol is deliberately
   minimal — a single mutex/condition pair for publishing jobs and one
   more for completion — because jobs here are coarse (whole experiment
   chunks), not fine-grained tasks. *)

type job = {
  work : lo:int -> hi:int -> unit;
  n : int;
  chunk : int;
  next : int Atomic.t;  (* next unclaimed index; claim = fetch_and_add chunk *)
}

type t = {
  size : int;
  mutable workers : unit Domain.t array;  (* length size - 1 *)
  lock : Mutex.t;
  wake : Condition.t;  (* workers: a new job was published, or stop *)
  done_ : Condition.t;  (* caller: a worker left the current job *)
  mutable job : job option;
  mutable epoch : int;  (* job sequence number, guards spurious wakeups *)
  mutable busy : int;  (* workers still inside the current job *)
  mutable error : exn option;  (* first exception raised by any chunk *)
  mutable stop : bool;
  (* Telemetry, populated only while Aa_obs is enabled. Slot s is
     written only by the domain owning slot s (workers 0..size-2, the
     caller is slot size-1); [stats] reads without synchronization,
     which is fine for an advisory report (immediate ints never tear). *)
  busy_ns : int array;
  chunks_done : int array;
  created_ns : int;
}

type stat = { slot : int; busy_ns : int; chunks : int }

let c_runs = Aa_obs.Registry.counter "pool.runs"
let c_chunks = Aa_obs.Registry.counter "pool.chunks"

let default_domains () =
  match Sys.getenv_opt "AA_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some j when j >= 1 -> j
      | Some _ | None -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

(* With OCaml 5's stop-the-world minor collector, every domain beyond
   the physical core count makes *all* domains wait longer at each GC
   sync — on a 1-core host, AA_JOBS=4 ran the fig1a sweep 4x slower
   than sequential. Results never depend on the domain count (chunk
   boundaries are fixed by (n, chunk)), so clamping is free. *)
let auto_domains () = max 1 (min (default_domains ()) (Domain.recommended_domain_count ()))

(* Claim and process chunks until the job is exhausted. Runs on worker
   domains and on the caller's domain alike. The first exception is
   recorded under the lock; later chunks still run (draining is simpler
   and the jobs here are short), later exceptions are dropped. *)
let drain t ~slot (j : job) =
  let rec loop () =
    let lo = Atomic.fetch_and_add j.next j.chunk in
    if lo < j.n then begin
      let hi = min (lo + j.chunk) j.n in
      let obs = Aa_obs.Control.on () in
      let t0 = if obs then Aa_obs.Clock.now_ns () else 0 in
      if obs then Aa_obs.Trace.begin_span "pool.chunk";
      (try j.work ~lo ~hi
       with e ->
         Mutex.lock t.lock;
         if t.error = None then t.error <- Some e;
         Mutex.unlock t.lock);
      if obs then begin
        Aa_obs.Trace.end_span ();
        t.busy_ns.(slot) <- t.busy_ns.(slot) + (Aa_obs.Clock.now_ns () - t0);
        t.chunks_done.(slot) <- t.chunks_done.(slot) + 1
      end;
      loop ()
    end
  in
  loop ()

let worker t slot () =
  let seen = ref 0 in
  let rec serve () =
    Mutex.lock t.lock;
    while (not t.stop) && (t.epoch = !seen || t.job = None) do
      Condition.wait t.wake t.lock
    done;
    if t.stop then Mutex.unlock t.lock
    else begin
      seen := t.epoch;
      let j = t.job in
      Mutex.unlock t.lock;
      (match j with Some j -> drain t ~slot j | None -> ());
      Mutex.lock t.lock;
      t.busy <- t.busy - 1;
      if t.busy = 0 then Condition.broadcast t.done_;
      Mutex.unlock t.lock;
      serve ()
    end
  in
  serve ()

let create ?domains () =
  let size = max 1 (match domains with Some d -> d | None -> default_domains ()) in
  let t =
    {
      size;
      workers = [||];
      lock = Mutex.create ();
      wake = Condition.create ();
      done_ = Condition.create ();
      job = None;
      epoch = 0;
      busy = 0;
      error = None;
      stop = false;
      busy_ns = Array.make size 0;
      chunks_done = Array.make size 0;
      created_ns = Aa_obs.Clock.now_ns ();
    }
  in
  t.workers <- Array.init (size - 1) (fun w -> Domain.spawn (worker t w));
  t

let size t = t.size

let run t ~n ~chunk work =
  if chunk < 1 then invalid_arg "Pool.run: chunk must be >= 1";
  if n < 0 then invalid_arg "Pool.run: negative n";
  if n > 0 then begin
    Aa_obs.Registry.Counter.incr c_runs;
    (* chunk count is ceil(n / chunk): a pure function of the job shape,
       never of the schedule — safe under the counter determinism
       contract even though which slot claims each chunk is not. *)
    Aa_obs.Registry.Counter.add c_chunks ((n + chunk - 1) / chunk);
    let j = { work; n; chunk; next = Atomic.make 0 } in
    if Array.length t.workers = 0 then begin
      (* inline pool: same chunk walk, no synchronization *)
      t.error <- None;
      drain t ~slot:(t.size - 1) j
    end
    else begin
      Mutex.lock t.lock;
      t.job <- Some j;
      t.epoch <- t.epoch + 1;
      t.busy <- Array.length t.workers;
      t.error <- None;
      Condition.broadcast t.wake;
      Mutex.unlock t.lock;
      drain t ~slot:(t.size - 1) j;
      Mutex.lock t.lock;
      while t.busy > 0 do
        Condition.wait t.done_ t.lock
      done;
      t.job <- None;
      Mutex.unlock t.lock
    end;
    match t.error with
    | Some e ->
        t.error <- None;
        raise e
    | None -> ()
  end

let map_chunked t ?(chunk = 1) n f =
  if n < 0 then invalid_arg "Pool.map_chunked: negative n";
  if n = 0 then [||]
  else begin
    let out = Array.make n None in
    run t ~n ~chunk (fun ~lo ~hi ->
        for i = lo to hi - 1 do
          out.(i) <- Some (f i)
        done);
    Array.map
      (function
        | Some v -> v
        | None ->
            (* run covers [0, n) exactly; an empty slot means it raised *)
            invalid_arg "Pool.map_chunked: unfilled slot")
      out
  end

let shutdown t =
  if Array.length t.workers > 0 then begin
    Mutex.lock t.lock;
    t.stop <- true;
    Condition.broadcast t.wake;
    Mutex.unlock t.lock;
    Array.iter Domain.join t.workers;
    t.workers <- [||]
  end

let stats t =
  Array.init t.size (fun s ->
      { slot = s; busy_ns = t.busy_ns.(s); chunks = t.chunks_done.(s) })

let utilization t =
  let elapsed = max 1 (Aa_obs.Clock.now_ns () - t.created_ns) in
  let total_chunks = Array.fold_left ( + ) 0 t.chunks_done in
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "pool: %d slot%s, %d chunk%s, %.3f s since create\n" t.size
       (if t.size = 1 then "" else "s")
       total_chunks
       (if total_chunks = 1 then "" else "s")
       (float_of_int elapsed *. 1e-9));
  for s = 0 to t.size - 1 do
    Buffer.add_string b
      (Printf.sprintf "  slot %d%s: busy %.3f s (%.1f%%), %d chunk%s\n" s
         (if s = t.size - 1 then " (caller)" else "")
         (float_of_int t.busy_ns.(s) *. 1e-9)
         (100.0 *. float_of_int t.busy_ns.(s) /. float_of_int elapsed)
         t.chunks_done.(s)
         (if t.chunks_done.(s) = 1 then "" else "s"))
  done;
  Buffer.contents b

let with_pool ?domains f =
  let t = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
