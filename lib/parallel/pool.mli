(** A small reusable domain pool for embarrassingly parallel fan-out.

    The pool owns [size - 1] worker domains (the caller's domain is the
    remaining worker) parked on a condition variable between jobs. A job
    is a half-open index range [[0, n)] processed in fixed-size chunks;
    workers claim chunks with an atomic fetch-and-add, so load balances
    dynamically while the chunk boundaries themselves stay a pure
    function of [(n, chunk)] — never of the domain count or schedule.
    Consumers that want schedule-independent (bit-identical) results
    therefore only need their per-chunk work to depend on the chunk
    index alone; see {!Aa_experiments.Run}.

    Pools are cheap to create (domain spawn is microseconds, not
    threads-from-scratch milliseconds) but not free; reuse one across
    many [run]/[map_chunked] calls when convenient. A pool is not
    re-entrant: don't call [run] from inside a job. *)

type t

val create : ?domains:int -> unit -> t
(** [create ~domains ()] spawns [domains - 1] worker domains. [domains]
    defaults to {!default_domains}; values [<= 1] yield a pool that runs
    every job inline on the caller's domain (the sequential path —
    identical results, no domains spawned). *)

val size : t -> int
(** Total parallelism, including the caller's domain ([>= 1]). *)

val default_domains : unit -> int
(** Pool size selected by the environment: [AA_JOBS] when set to a
    positive integer, otherwise [Domain.recommended_domain_count ()]. *)

val auto_domains : unit -> int
(** {!default_domains} clamped to [Domain.recommended_domain_count ()].
    OCaml 5's minor GC is stop-the-world across domains, so
    oversubscribing domains beyond physical cores slows every domain
    down (measured 4x on a 1-core host); automatic sizing should use
    this, while explicit [~domains] / [AA_JOBS] overrides stay verbatim
    for tests that deliberately oversubscribe. *)

val run : t -> n:int -> chunk:int -> (lo:int -> hi:int -> unit) -> unit
(** [run t ~n ~chunk work] executes [work ~lo ~hi] over disjoint ranges
    [lo <= i < hi] that exactly cover [[0, n)]; every range except
    possibly the last has [hi - lo = chunk]. Blocks until all chunks are
    done. Requires [chunk >= 1]. The ranges processed by one call to
    [work] never overlap another's, so [work] may freely mutate
    per-index slots of shared arrays; any other sharing needs its own
    synchronization. If [work] raises, one such exception is re-raised
    in the caller after all workers have drained. *)

val map_chunked : t -> ?chunk:int -> int -> (int -> 'a) -> 'a array
(** [map_chunked t n f] is [[| f 0; f 1; ...; f (n-1) |]], computed in
    chunks of [chunk] (default 1) across the pool. [f] runs exactly once
    per index; results land in index order regardless of schedule. *)

type stat = { slot : int; busy_ns : int; chunks : int }
(** Per-slot telemetry: total wall time spent inside chunk work and the
    number of chunks claimed. Slot [size - 1] is the caller's domain. *)

val stats : t -> stat array
(** Snapshot of per-slot telemetry, in slot order. Populated only while
    {!Aa_obs.Control} is enabled; zeros otherwise. The snapshot is
    advisory — taken without synchronization against running workers —
    and chunk-to-slot attribution is schedule-dependent, so these
    numbers are diagnostics, not part of any determinism contract. *)

val utilization : t -> string
(** Human-readable multi-line report derived from {!stats}: per-slot
    busy time as a fraction of the pool's lifetime so far. *)

val shutdown : t -> unit
(** Joins the worker domains. Idempotent; the pool must not be used
    afterwards (inline pools are unaffected). *)

val with_pool : ?domains:int -> (t -> 'a) -> 'a
(** [with_pool f] runs [f] on a fresh pool and shuts it down afterwards,
    also on exception. *)
