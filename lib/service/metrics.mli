(** Operational metrics of the allocation daemon: request counters by
    type and outcome, per-type latency histograms with p50/p95/p99, and
    the latest REBALANCE utility gap. Everything is O(1) per request —
    latencies go into fixed log-scale buckets (20 per decade from 1 ns),
    so quantiles carry ~±6% relative bucketing error, plenty for an
    operational view. Surfaced through the STATS request. *)

(** Log-bucketed latency histogram (seconds) — an alias for
    {!Aa_obs.Histogram}, where the implementation now lives so the
    observability layer shares the bucketing scheme (and gains
    [merge]). *)
module Histogram = Aa_obs.Histogram

type t

val create : unit -> t

val record : t -> kind:string -> ok:bool -> latency:float -> unit
(** Count one request of the given kind (e.g. ["admit"], ["malformed"])
    with its outcome and wall-clock latency in seconds. *)

val note_gap : t -> float -> unit
(** Remember the online/offline ratio reported by the latest REBALANCE. *)

val requests : t -> int
(** Total requests recorded. *)

val report : t -> (string * string) list
(** Stable, ordered key/value dump: totals ([requests], [ok], [err]),
    overall [p50]/[p95]/[p99] (seconds), [rebalance.gap] when one was
    measured, then per-kind [<kind>.ok], [<kind>.err], [<kind>.p50/95/99]
    in kind order. *)
