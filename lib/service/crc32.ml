(* Table-driven CRC-32 (reflected, polynomial 0xEDB88320) in plain int
   arithmetic: every intermediate fits comfortably in OCaml's 63-bit
   native int, so no boxed Int32 round trips on the journal hot path. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let string s =
  let table = Lazy.force table in
  let c = ref 0xFFFFFFFF in
  String.iter
    (fun ch -> c := table.((!c lxor Char.code ch) land 0xFF) lxor (!c lsr 8))
    s;
  !c lxor 0xFFFFFFFF

let to_hex c = Printf.sprintf "%08x" (c land 0xFFFFFFFF)
