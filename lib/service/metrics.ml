module Histogram = struct
  (* 20 log-scale buckets per decade, 12 decades: 1 ns .. 1000 s. *)
  let per_decade = 20
  let n_buckets = 12 * per_decade
  let floor_s = 1e-9

  type t = { counts : int array; mutable n : int }

  let create () = { counts = Array.make n_buckets 0; n = 0 }

  let bucket_of x =
    if not (x > floor_s) then 0
    else begin
      let i = int_of_float (float_of_int per_decade *. Float.log10 (x /. floor_s)) in
      if i < 0 then 0 else if i >= n_buckets then n_buckets - 1 else i
    end

  let add t x =
    let b = bucket_of x in
    t.counts.(b) <- t.counts.(b) + 1;
    t.n <- t.n + 1

  let count t = t.n

  let midpoint i =
    floor_s *. (10.0 ** ((float_of_int i +. 0.5) /. float_of_int per_decade))

  exception Found of float

  let quantile t q =
    if t.n = 0 then 0.0
    else begin
      let target = Float.max 1.0 (Float.round (q *. float_of_int t.n)) in
      let seen = ref 0 in
      match
        Array.iteri
          (fun i c ->
            seen := !seen + c;
            if float_of_int !seen >= target then raise (Found (midpoint i)))
          t.counts
      with
      | () -> midpoint (n_buckets - 1)
      | exception Found x -> x
    end
end

type counter = { mutable ok : int; mutable err : int; latency : Histogram.t }

type t = {
  kinds : (string, counter) Hashtbl.t;
  overall : Histogram.t;
  mutable total_ok : int;
  mutable total_err : int;
  mutable last_gap : float option;
}

let create () =
  {
    kinds = Hashtbl.create 16;
    overall = Histogram.create ();
    total_ok = 0;
    total_err = 0;
    last_gap = None;
  }

let counter t kind =
  match Hashtbl.find_opt t.kinds kind with
  | Some c -> c
  | None ->
      let c = { ok = 0; err = 0; latency = Histogram.create () } in
      Hashtbl.add t.kinds kind c;
      c

let record t ~kind ~ok ~latency =
  let c = counter t kind in
  if ok then begin
    c.ok <- c.ok + 1;
    t.total_ok <- t.total_ok + 1
  end
  else begin
    c.err <- c.err + 1;
    t.total_err <- t.total_err + 1
  end;
  Histogram.add c.latency latency;
  Histogram.add t.overall latency

let note_gap t gap = t.last_gap <- Some gap
let requests t = t.total_ok + t.total_err

let seconds x = Printf.sprintf "%.3e" x

let quantiles prefix h =
  [
    (prefix ^ "p50", seconds (Histogram.quantile h 0.50));
    (prefix ^ "p95", seconds (Histogram.quantile h 0.95));
    (prefix ^ "p99", seconds (Histogram.quantile h 0.99));
  ]

let report t =
  let totals =
    [
      ("requests", string_of_int (requests t));
      ("ok", string_of_int t.total_ok);
      ("err", string_of_int t.total_err);
    ]
    @ quantiles "" t.overall
  in
  let gap =
    match t.last_gap with
    | None -> []
    | Some g -> [ ("rebalance.gap", Printf.sprintf "%.6f" g) ]
  in
  let per_kind =
    Hashtbl.fold (fun k c acc -> (k, c) :: acc) t.kinds []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
    |> List.concat_map (fun (k, c) ->
           [ (k ^ ".ok", string_of_int c.ok); (k ^ ".err", string_of_int c.err) ]
           @ quantiles (k ^ ".") c.latency)
  in
  totals @ gap @ per_kind
